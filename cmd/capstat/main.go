// Command capstat is the cluster trace analyzer: it ingests the
// per-node request-trace JSONL files a traced cluster run produces
// (capserverd -trace, or capload -mode cluster -trace-dir), rebuilds
// every request's cross-node hop chain, checks the trace invariants —
// every chain terminates at exactly one serving node, hedges and
// retries only accompany forwards, no chain loops back through its
// origin — and, given the per-member routing counters, reconciles the
// trace-derived forward/hedge/degrade accounting against them
// exactly. Any violation or mismatch is a nonzero exit: the trace and
// the counters are two records of the same decisions, and disagreement
// means the router lied in one of them.
//
//	capstat -counters run/counters.json run/*.jsonl
//	capstat -top 10 run/n1.jsonl run/n2.jsonl run/n3.jsonl
//	capstat -status http://127.0.0.1:8080
//
// -status skips trace files entirely and prints the live federation
// snapshot (/v1/cluster/status) of a running cluster instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capstat:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("capstat", flag.ContinueOnError)
	var (
		countersPath = fs.String("counters", "", "per-member routing counters JSON (the harness's counters.json) to reconcile against")
		topK         = fs.Int("top", 5, "slowest chains to list (0 = none)")
		status       = fs.String("status", "", "base URL of a running cluster node: print its /v1/cluster/status snapshot instead of analyzing trace files")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *status != "" {
		if fs.NArg() > 0 || *countersPath != "" {
			return fmt.Errorf("-status takes no trace files or -counters")
		}
		return liveStatus(strings.TrimRight(*status, "/"), out)
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need trace files (or -status URL); see -h")
	}

	spans, err := obs.ReadReqSpanFiles(fs.Args()...)
	if err != nil {
		return err
	}
	var counters map[string]cluster.NodeCounters
	if *countersPath != "" {
		data, err := os.ReadFile(*countersPath)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &counters); err != nil {
			return fmt.Errorf("%s: %v", *countersPath, err)
		}
	}
	check := cluster.AnalyzeSpans(spans)
	fmt.Fprint(out, check.Format(counters, *topK))
	if !check.Healthy(counters) {
		mismatches := 0
		if counters != nil {
			mismatches = len(check.Reconcile(counters))
		}
		return fmt.Errorf("trace is unhealthy: %d violations, %d counter mismatches",
			len(check.Violations), mismatches)
	}
	return nil
}

// liveStatus fetches and summarizes one node's federation snapshot.
func liveStatus(base string, out io.Writer) error {
	resp, err := http.Get(base + cluster.StatusPath)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d", base+cluster.StatusPath, resp.StatusCode)
	}
	var st cluster.ClusterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("bad status payload: %v", err)
	}
	fmt.Fprintf(out, "cluster status via %s (schema %s, partial=%v)\n", st.Self, st.Schema, st.Partial)
	for _, m := range st.Members {
		state := "healthy"
		if !m.Healthy {
			state = m.Error
		}
		fmt.Fprintf(out, "member %-8s %-24s %s ring=%d‰\n", m.Name, m.URL, state, st.RingPermille[m.Name])
		for _, r := range m.Routes {
			fmt.Fprintf(out, "  route %-12s count=%-6d p50=%.3gms p99=%.3gms\n", r.Endpoint, r.Count, r.P50MS, r.P99MS)
		}
	}
	totals := make([]string, 0, len(st.Totals))
	for k := range st.Totals {
		totals = append(totals, k)
	}
	sort.Strings(totals)
	for _, k := range totals {
		fmt.Fprintf(out, "total %-28s %d\n", k, st.Totals[k])
	}
	return nil
}
