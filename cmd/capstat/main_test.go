package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cluster"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReconcilesCleanTrace(t *testing.T) {
	dir := t.TempDir()
	n1 := writeFile(t, dir, "n1.jsonl", strings.Join([]string{
		`{"t":"rspan","id":"r1","node":"n1","path":"owned","status":200,"serve_us":120}`,
		`{"t":"rspan","id":"r2","node":"n1","path":"forward","peer":"n2","winner":"n2","status":200}`,
	}, "\n")+"\n")
	n2 := writeFile(t, dir, "n2.jsonl",
		`{"t":"rspan","id":"r2","node":"n2","path":"remote","peer":"n1","status":200,"serve_us":300}`+"\n")
	counters, err := json.Marshal(map[string]cluster.NodeCounters{
		"n1": {Name: "n1", OwnedLocal: 1, Forwards: 1},
		"n2": {Name: "n2", Remote: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cpath := writeFile(t, dir, "counters.json", string(counters))

	var out bytes.Buffer
	if err := run([]string{"-counters", cpath, "-top", "2", n1, n2}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"capstat: 2 requests, 3 spans",
		"invariants: all chains terminate at exactly one serving node",
		"accounting: trace reconciles exactly with routing counters",
		"r2 n1->n2 forward",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFailsOnViolationOrMismatch(t *testing.T) {
	dir := t.TempDir()
	// A routing loop: the origin recorded a remote span for itself.
	loop := writeFile(t, dir, "loop.jsonl", strings.Join([]string{
		`{"t":"rspan","id":"r1","node":"n1","path":"forward","peer":"n2","winner":"n2"}`,
		`{"t":"rspan","id":"r1","node":"n1","path":"remote","peer":"n1"}`,
	}, "\n")+"\n")
	var out bytes.Buffer
	err := run([]string{loop}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 violations") {
		t.Fatalf("loop trace: err=%v", err)
	}
	if !strings.Contains(out.String(), "VIOLATION: ") {
		t.Fatalf("violation not printed:\n%s", out.String())
	}

	// A clean trace against drifted counters.
	clean := writeFile(t, dir, "clean.jsonl",
		`{"t":"rspan","id":"r1","node":"n1","path":"owned"}`+"\n")
	cpath := writeFile(t, dir, "counters.json", `{"n1":{"name":"n1","owned_local":2}}`)
	out.Reset()
	err = run([]string{"-counters", cpath, clean}, &out)
	if err == nil || !strings.Contains(err.Error(), "1 counter mismatches") {
		t.Fatalf("drifted counters: err=%v", err)
	}
	if !strings.Contains(out.String(), "MISMATCH: ") {
		t.Fatalf("mismatch not printed:\n%s", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("no arguments accepted")
	}
	if err := run([]string{"-status", "http://x", "extra.jsonl"}, &out); err == nil {
		t.Fatal("-status with trace files accepted")
	}
}

func TestLiveStatus(t *testing.T) {
	st := cluster.ClusterStatus{
		Schema: cluster.StatusSchema,
		Self:   "n1",
		RingPermille: map[string]int64{
			"n1": 500, "n2": 500,
		},
		Totals: map[string]int64{"cluster_forward_total": 3},
		Members: []cluster.MemberStatus{
			{Name: "n1", URL: "http://a", Healthy: true,
				Routes: []cluster.RouteLatency{{Endpoint: "bounds", Count: 4, P50MS: 1, P99MS: 2}}},
			{Name: "n2", URL: "http://b", Error: "unreachable"},
		},
	}
	srv := httptest.NewServer(httptestStatusHandler(t, st))
	defer srv.Close()

	var out bytes.Buffer
	if err := run([]string{"-status", srv.URL}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"cluster status via n1",
		"member n1",
		"route bounds",
		"member n2", "unreachable",
		"total cluster_forward_total",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func httpError(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func httptestStatusHandler(t *testing.T, st cluster.ClusterStatus) http.Handler {
	t.Helper()
	body, err := json.MarshalIndent(st, "", "  ")
	httpError(t, err)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != cluster.StatusPath {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	})
}
