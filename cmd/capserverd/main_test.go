package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"testing"
	"time"
)

// TestServeAndGracefulShutdown boots the daemon on an ephemeral port,
// verifies it serves, then cancels the run context and asserts a clean
// drain — the end-to-end shape of a SIGTERM.
func TestServeAndGracefulShutdown(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()

	logf, err := os.CreateTemp(t.TempDir(), "capserverd-log")
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s"}, logf)
	}()

	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	resp, err := http.Get("http://" + addr.String() + "/v1/bounds?n=4&pd=0.2")
	if err != nil {
		t.Fatalf("GET bounds: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("bounds: status %d, err %v, body %s", resp.StatusCode, err, body)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after cancel, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after context cancel")
	}
	if _, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-addr"}, os.Stderr); err == nil {
		t.Error("dangling -addr accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, os.Stderr); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestClusterFlags boots a single-member cluster (every key self-owned)
// with a result store and verifies the daemon serves through the node
// router, persists results, and validates its flag pairing.
func TestClusterFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-cluster", "n1=http://x"}, os.Stderr); err == nil {
		t.Error("-cluster without -self accepted")
	}
	if err := run(context.Background(), []string{"-self", "n1"}, os.Stderr); err == nil {
		t.Error("-self without -cluster accepted")
	}
	if err := run(context.Background(), []string{"-cluster", "n1=http://x", "-self", "ghost"}, os.Stderr); err == nil {
		t.Error("-self outside the membership accepted")
	}

	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()
	logf, err := os.CreateTemp(t.TempDir(), "capserverd-log")
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()

	store := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s",
			"-cluster", "n1=http://127.0.0.1:1", "-self", "n1", "-store", store,
		}, logf)
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case err := <-runErr:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the listener")
	}

	base := "http://" + addr.String()
	resp, err := http.Get(base + "/v1/bounds?n=4&pd=0.2")
	if err != nil {
		t.Fatalf("GET bounds: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Fatalf("bounds: status %d, err %v, body %s", resp.StatusCode, err, body)
	}
	// The compute landed in the store: a directory entry now exists.
	entries, err := os.ReadDir(store)
	if err != nil || len(entries) == 0 {
		t.Fatalf("store dir after compute: entries=%d err=%v", len(entries), err)
	}
	// readyz serves through the cluster router.
	resp, err = http.Get(base + "/v1/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v status %v", err, resp)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}
