// Command capserverd serves the repository's capacity-estimation
// kernels over HTTP (see internal/capserver and DESIGN.md §8):
// /v1/bounds, /v1/predict, /v1/simulate, /v1/experiments, plus
// /healthz, /metrics and /debug/pprof.
//
// Usage:
//
//	capserverd -addr 127.0.0.1:8080
//	capserverd -addr 127.0.0.1:0 -workers 8 -queue 128 -cache 4096
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight requests complete (bounded by -drain), and every admitted
// computation finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/capserver"
)

// onListen, when non-nil, observes the bound address (tests hook it to
// learn the ephemeral port).
var onListen func(net.Addr)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "capserverd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then shuts down gracefully.
func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("capserverd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		workers = fs.Int("workers", 0, "compute workers (0 = GOMAXPROCS)")
		queue   = fs.Int("queue", 64, "compute queue depth (full queue => 429)")
		cache   = fs.Int("cache", 1024, "LRU result cache entries")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		drain   = fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
		maxSym  = fs.Int("max-symbols", 200000, "largest simulate/experiment message length served")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := capserver.New(capserver.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		MaxSymbols:     *maxSym,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "capserverd: listening on http://%s\n", l.Addr())
	if onListen != nil {
		onListen(l.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "capserverd: shutting down (draining up to %v)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
