// Command capserverd serves the repository's capacity-estimation
// kernels over HTTP (see internal/capserver and DESIGN.md §8):
// /v1/bounds, /v1/predict, /v1/simulate, /v1/experiments, plus
// /healthz, /v1/healthz, /v1/readyz, /metrics, /v1/health/alerts and
// /debug/pprof. The alert engine samples the registry every
// -health-tick and evaluates its rules (-health-rules overrides the
// built-in set; watch the fleet with cmd/capwatch).
//
// Usage:
//
//	capserverd -addr 127.0.0.1:8080
//	capserverd -addr 127.0.0.1:0 -workers 8 -queue 128 -cache 4096
//
// With -cluster the daemon joins a static capserver cluster (DESIGN.md
// §11): shardable requests it does not own are forwarded to their
// owner on a consistent-hash ring, with hedging, bounded retry and
// degradation to local compute; -store points every member at a shared
// content-addressed result store so any node serves any cached point
// and a restarted node warm-starts from disk:
//
//	capserverd -addr 127.0.0.1:8081 -self n1 -store /var/cache/capest \
//	           -cluster n1=http://10.0.0.1:8081,n2=http://10.0.0.2:8081,n3=http://10.0.0.3:8081
//
// SIGINT/SIGTERM trigger a graceful shutdown: /v1/readyz flips to 503
// immediately, the listener closes, in-flight requests complete
// (bounded by -drain), and every admitted computation finishes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/capserver"
	"repro/internal/cluster"
	"repro/internal/cluster/casstore"
	"repro/internal/health"
	"repro/internal/obs"
)

// onListen, when non-nil, observes the bound address (tests hook it to
// learn the ephemeral port).
var onListen func(net.Addr)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "capserverd:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then shuts down gracefully.
func run(ctx context.Context, args []string, logw *os.File) error {
	fs := flag.NewFlagSet("capserverd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		workers = fs.Int("workers", 0, "compute workers (0 = GOMAXPROCS)")
		queue   = fs.Int("queue", 64, "compute queue depth (full queue => 429)")
		cache   = fs.Int("cache", 1024, "LRU result cache entries")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request deadline")
		drain   = fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
		maxSym  = fs.Int("max-symbols", 200000, "largest simulate/experiment message length served")

		sessTTL = fs.Duration("session-ttl", 0, "evict streaming sessions idle this long (0 = default 15m, negative = never)")
		maxSess = fs.Int("max-sessions", 0, "cap on concurrently live streaming sessions (0 = default 1<<20)")
		sessBat = fs.Int("max-session-batch", 0, "events per session ingest batch (0 = default 65536)")

		healthTick  = fs.Duration("health-tick", 5*time.Second, "alert-engine sampling interval (0 or negative = no background ticks)")
		healthRules = fs.String("health-rules", "", "alert rule file (empty = built-in default rules; see internal/health)")
		healthKeep  = fs.Int("health-retention", 0, "metric snapshots retained in the alert ring (0 = default 128)")

		storeDir    = fs.String("store", "", "content-addressed result store directory (shared across cluster members)")
		clusterFlag = fs.String("cluster", "", "static cluster membership: n1=http://host1:8081,n2=http://host2:8081,...")
		self        = fs.String("self", "", "this node's member name within -cluster")
		hedgeDelay  = fs.Duration("hedge-delay", 0, "forwarding hedge delay (0 = default, negative = no hedging)")
		peerRetries = fs.Int("peer-retries", 0, "attempts against a peer before giving up (0 = default)")
		peerBackoff = fs.Duration("peer-backoff", 0, "base backoff between peer retries (0 = default)")
		vnodes      = fs.Int("vnodes", 0, "virtual nodes per ring member (0 = default; must match across the cluster)")
		traceFile   = fs.String("trace", "", "append request-trace JSONL here (cluster mode; analyze with capstat)")
		traceSeed   = fs.Uint64("trace-seed", 1, "trace-ID incarnation seed; bump on every restart of this member")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*clusterFlag == "") != (*self == "") {
		return fmt.Errorf("-cluster and -self must be set together")
	}
	if *traceFile != "" && *clusterFlag == "" {
		return fmt.Errorf("-trace records cluster request spans and needs -cluster")
	}

	// User-supplied rules are parsed and validated against the retention
	// and tick here, where the error can name the file and line;
	// capserver.New would only be able to panic.
	var rules []*health.Rule
	if *healthRules != "" {
		raw, err := os.ReadFile(*healthRules)
		if err != nil {
			return err
		}
		rules, err = health.ParseRules(string(raw))
		if err != nil {
			return fmt.Errorf("%s: %w", *healthRules, err)
		}
		probeTick := *healthTick
		if probeTick <= 0 {
			probeTick = 5 * time.Second
		}
		if _, err := health.NewEngine(health.Config{
			Rules:        rules,
			Retention:    *healthKeep,
			TickInterval: probeTick,
		}); err != nil {
			return fmt.Errorf("%s: %w", *healthRules, err)
		}
		fmt.Fprintf(logw, "capserverd: %d alert rules from %s\n", len(rules), *healthRules)
	}

	reg := obs.NewRegistry()
	cfg := capserver.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		RequestTimeout: *timeout,
		MaxSymbols:     *maxSym,
		Metrics:        reg,

		SessionTTL:      *sessTTL,
		MaxSessions:     *maxSess,
		MaxSessionBatch: *sessBat,

		HealthTick:      *healthTick,
		HealthRules:     rules,
		HealthRetention: *healthKeep,
	}
	if *storeDir != "" {
		st, err := casstore.Open(*storeDir)
		if err != nil {
			return err
		}
		cfg.Store = st
		fmt.Fprintf(logw, "capserverd: result store at %s\n", st.Dir())
	}
	srv := capserver.New(cfg)

	// In cluster mode an outer http.Server carries the node router in
	// front of the capserver mux; standalone, capserver serves itself.
	handler := srv.Handler()
	if *clusterFlag != "" {
		mem, err := cluster.ParseMembership(*clusterFlag)
		if err != nil {
			return err
		}
		var tracer *obs.Tracer
		if *traceFile != "" {
			f, err := os.OpenFile(*traceFile, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			tracer = obs.NewTracer(f)
			defer tracer.Close()
			fmt.Fprintf(logw, "capserverd: tracing requests to %s (seed %d)\n", *traceFile, *traceSeed)
		}
		node, err := cluster.NewNode(srv, cluster.Config{
			Self:         *self,
			Membership:   mem,
			VirtualNodes: *vnodes,
			HedgeDelay:   *hedgeDelay,
			PeerAttempts: *peerRetries,
			PeerBackoff:  *peerBackoff,
			Metrics:      cluster.NewMetrics(reg),
			Tracer:       tracer,
			TraceSeed:    *traceSeed,
		})
		if err != nil {
			return err
		}
		handler = node.Handler()
		fmt.Fprintf(logw, "capserverd: cluster member %s of %v\n", *self, mem.Names())
	}
	outer := &http.Server{Handler: handler}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(logw, "capserverd: listening on http://%s\n", l.Addr())
	if onListen != nil {
		onListen(l.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- outer.Serve(l) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(logw, "capserverd: shutting down (draining up to %v)\n", *drain)
	// Drain order: flip readiness first so balancers stop sending,
	// then drain the outer listener's in-flight requests, then the
	// worker pool (srv.Shutdown also closes capserver's own unserved
	// http server, a no-op here).
	srv.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := outer.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
