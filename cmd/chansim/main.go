// Command chansim runs a synchronization protocol over a simulated
// deletion–insertion covert channel and compares the measured
// information rate with the paper's analytic bounds.
//
// Usage:
//
//	chansim -proto arq     -n 4 -pd 0.25
//	chansim -proto counter -n 4 -pd 0.2 -pi 0.1
//	chansim -proto syncvar -n 4 -psender 0.5
//	chansim -proto event   -n 4 -miss 0.2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/syncproto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chansim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chansim", flag.ContinueOnError)
	var (
		proto   = fs.String("proto", "counter", "protocol: arq | counter | syncvar | event | naive | delayed")
		n       = fs.Int("n", 4, "bits per symbol")
		pd      = fs.Float64("pd", 0.2, "deletion probability")
		pi      = fs.Float64("pi", 0, "insertion probability")
		psender = fs.Float64("psender", 0.5, "sender activation probability (syncvar)")
		miss    = fs.Float64("miss", 0.2, "per-tick miss probability (event)")
		delay   = fs.Int("delay", 1, "feedback latency in channel uses (delayed)")
		symbols = fs.Int("symbols", 50000, "message length in symbols")
		seed    = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *n > 16 {
		return fmt.Errorf("symbol width %d out of [1,16]", *n)
	}
	if *symbols < 1 {
		return fmt.Errorf("message length %d, want >= 1", *symbols)
	}

	msg := make([]uint32, *symbols)
	src := rng.New(*seed + 1)
	for i := range msg {
		msg[i] = src.Symbol(*n)
	}

	var (
		res    syncproto.Result
		err    error
		params = channel.Params{N: *n, Pd: *pd, Pi: *pi}
	)
	switch *proto {
	case "arq":
		ch, cerr := channel.NewDeletionInsertion(channel.Params{N: *n, Pd: *pd}, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		arq, cerr := syncproto.NewARQ(ch)
		if cerr != nil {
			return cerr
		}
		res, err = arq.Run(msg)
	case "counter":
		ch, cerr := channel.NewDeletionInsertion(params, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		counter, cerr := syncproto.NewCounter(ch)
		if cerr != nil {
			return cerr
		}
		res, err = counter.Run(msg)
	case "syncvar":
		sv, cerr := syncproto.NewSyncVar(*n, *psender, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = sv.Run(msg)
	case "event":
		ce, cerr := syncproto.NewCommonEvent(*n, *miss, *miss, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = ce.Run(msg)
	case "naive":
		ch, cerr := channel.NewDeletionInsertion(params, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		naive, cerr := syncproto.NewNaive(ch)
		if cerr != nil {
			return cerr
		}
		res, err = naive.Run(msg)
	case "delayed":
		ch, cerr := channel.NewDeletionInsertion(channel.Params{N: *n, Pd: *pd}, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		darq, cerr := syncproto.NewDelayedARQ(ch, *delay)
		if cerr != nil {
			return cerr
		}
		res, err = darq.Run(msg)
	default:
		return fmt.Errorf("unknown protocol %q (want arq, counter, syncvar, event, naive or delayed)", *proto)
	}
	if err != nil {
		return err
	}

	fmt.Printf("protocol:            %s\n", *proto)
	fmt.Printf("message symbols:     %d (N = %d bits)\n", res.MessageSymbols, *n)
	fmt.Printf("channel uses:        %d\n", res.Uses)
	fmt.Printf("sender operations:   %d\n", res.SenderOps)
	fmt.Printf("delivered slots:     %d\n", res.Delivered)
	fmt.Printf("slot errors:         %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
	fmt.Printf("skipped symbols:     %d\n", res.SkippedSymbols)
	fmt.Printf("measured rate:       %.4f bits/use (%.4f bits/sender-op)\n",
		res.InfoRatePerUse(), res.InfoRatePerSenderOp())

	if *proto == "arq" || *proto == "counter" {
		b, berr := core.ComputeBounds(params)
		if berr != nil {
			return berr
		}
		fmt.Printf("Theorem 1/4 upper:   %.4f bits/use\n", b.Upper)
		fmt.Printf("Theorem 5 lower:     %.4f (paper norm.), %.4f (per-use)\n", b.LowerT5, b.LowerPerUse)
	}
	return nil
}
