// Command chansim runs a synchronization protocol over a simulated
// deletion–insertion covert channel and compares the measured
// information rate with the paper's analytic bounds.
//
// Usage:
//
//	chansim -proto arq     -n 4 -pd 0.25
//	chansim -proto counter -n 4 -pd 0.2 -pi 0.1
//	chansim -proto syncvar -n 4 -psender 0.5
//	chansim -proto event   -n 4 -miss 0.2
//	chansim -proto counter -n 4 -pd 0.1 -inject "outage=0.2;jam=0.1"
//	chansim -proto counter -n 4 -pd 0.1 -trace run.jsonl
//
// With -inject the channel is wrapped in the given fault-injection
// stack and the protocol runs under syncproto.Supervisor (per-attempt
// deadlines, bounded backoff, Counter resync); the report then carries
// a supervision block. Injection applies to the channel-backed
// protocols (arq, counter, naive, delayed); syncvar and event have no
// channel to inject into.
//
// Observability: -trace records every channel use (and, with -inject,
// the supervision state machine) as a JSONL trace — a pure function of
// the seed, so reruns are byte-identical; analyze it with tracecap.
// The report then also prints the observed (Pd, Pi, Ps) estimate with
// Wilson 95% intervals next to the assumed parameters. -metrics writes
// run counters in Prometheus text format; -pprof captures CPU and heap
// profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/syncproto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chansim:", err)
		os.Exit(1)
	}
}

// obsSink bundles the optional observability outputs of one run.
type obsSink struct {
	tracer    *obs.Tracer
	traceFile *os.File
	rec       *obs.ChannelRecorder
	reg       *obs.Registry
	metrics   string // exposition output path; "" = disabled
	proto     string
	start     time.Time
}

// attach wraps or observes the run's channel so its uses are recorded.
// For channels driven directly by a protocol constructor the observer
// hook is installed; the injected path wraps explicitly instead.
func (s *obsSink) attach(ch *channel.DeletionInsertion) error {
	if s == nil || (s.tracer == nil && s.metrics == "") {
		return nil
	}
	rec, err := obs.NewChannelRecorder(ch, s.tracer, nil)
	if err != nil {
		return err
	}
	s.rec = rec
	ch.SetObserver(rec.Observe)
	return nil
}

// close flushes the trace, writes the metrics exposition and reports
// the observed-parameter block.
func (s *obsSink) close() error {
	if s == nil {
		return nil
	}
	if s.rec != nil && s.rec.Uses() > 0 {
		est := s.rec.Estimate()
		c := s.rec.Counts()
		fmt.Printf("observed uses:       %d (T %d, S %d, D %d, I %d, injected %d)\n",
			est.Uses, c.Transmits, c.Substitutes, c.Deletes, c.Inserts, c.Injected)
		fmt.Printf("observed Pd:         %.4f [%.4f, %.4f]\n", est.Pd, est.PdLo, est.PdHi)
		fmt.Printf("observed Pi:         %.4f [%.4f, %.4f]\n", est.Pi, est.PiLo, est.PiHi)
		fmt.Printf("observed Ps:         %.4f [%.4f, %.4f]\n", est.Ps, est.PsLo, est.PsHi)
	}
	if s.tracer != nil {
		if err := s.tracer.Close(); err != nil {
			s.traceFile.Close()
			return err
		}
		if err := s.traceFile.Close(); err != nil {
			return err
		}
	}
	if s.metrics != "" {
		if s.rec != nil {
			c := s.rec.Counts()
			kinds := s.reg.CounterVec("chansim_uses_total", "kind")
			kinds.With("transmit").Add(c.Transmits)
			kinds.With("substitute").Add(c.Substitutes)
			kinds.With("delete").Add(c.Deletes)
			kinds.With("insert").Add(c.Inserts)
			s.reg.Counter("chansim_injected_total").Add(c.Injected)
		}
		s.reg.LatencyVec("chansim_run_ms", "proto").Observe(s.proto, time.Since(s.start))
		f, err := os.Create(s.metrics)
		if err != nil {
			return err
		}
		s.reg.WriteProm(f)
		return f.Close()
	}
	return nil
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("chansim", flag.ContinueOnError)
	var (
		proto      = fs.String("proto", "counter", "protocol: arq | counter | syncvar | event | naive | delayed")
		n          = fs.Int("n", 4, "bits per symbol")
		pd         = fs.Float64("pd", 0.2, "deletion probability")
		pi         = fs.Float64("pi", 0, "insertion probability")
		ps         = fs.Float64("ps", 0, "substitution probability of a transmitted symbol")
		psender    = fs.Float64("psender", 0.5, "sender activation probability (syncvar)")
		miss       = fs.Float64("miss", 0.2, "per-tick miss probability (event)")
		delay      = fs.Int("delay", 1, "feedback latency in channel uses (delayed)")
		symbols    = fs.Int("symbols", 50000, "message length in symbols")
		seed       = fs.Uint64("seed", 1, "random seed")
		inject     = fs.String("inject", "", "fault-injection spec, e.g. 'outage=0.2;jam=0.1'; runs the protocol supervised")
		traceOut   = fs.String("trace", "", "write a JSONL channel-use trace to this file (analyze with tracecap)")
		metricsOut = fs.String("metrics", "", "write run metrics (Prometheus text) to this file")
		pprofDir   = fs.String("pprof", "", "write cpu.pprof and heap.pprof for this run into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *n > 16 {
		return fmt.Errorf("symbol width %d out of [1,16]", *n)
	}
	if *symbols < 1 {
		return fmt.Errorf("message length %d, want >= 1", *symbols)
	}
	if *pprofDir != "" {
		stop, perr := obs.StartProfiles(*pprofDir)
		if perr != nil {
			return perr
		}
		defer func() {
			if e := stop(); e != nil && err == nil {
				err = e
			}
		}()
	}
	sink := &obsSink{metrics: *metricsOut, proto: *proto, start: time.Now()}
	if *metricsOut != "" {
		sink.reg = obs.NewRegistry()
	}
	if *traceOut != "" {
		f, cerr := os.Create(*traceOut)
		if cerr != nil {
			return cerr
		}
		sink.tracer = obs.NewTracer(f)
		sink.traceFile = f
	}

	msg := make([]uint32, *symbols)
	src := rng.New(*seed + 1)
	for i := range msg {
		msg[i] = src.Symbol(*n)
	}

	if *inject != "" {
		if rerr := runInjected(*proto, *n, *pd, *pi, *delay, *seed, *inject, msg, sink); rerr != nil {
			return rerr
		}
		return sink.close()
	}

	var (
		res    syncproto.Result
		params = channel.Params{N: *n, Pd: *pd, Pi: *pi, Ps: *ps}
	)
	// The ARQ analyses assume a deletion-only channel.
	chParams := params
	if *proto == "arq" || *proto == "delayed" {
		chParams.Pi, chParams.Ps = 0, 0
	}
	switch *proto {
	case "arq", "counter", "naive", "delayed":
		ch, cerr := channel.NewDeletionInsertion(chParams, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		if cerr := sink.attach(ch); cerr != nil {
			return cerr
		}
		var p syncproto.Protocol
		switch *proto {
		case "arq":
			p, cerr = syncproto.NewARQ(ch)
		case "counter":
			p, cerr = syncproto.NewCounter(ch)
		case "naive":
			p, cerr = syncproto.NewNaive(ch)
		case "delayed":
			p, cerr = syncproto.NewDelayedARQ(ch, *delay)
		}
		if cerr != nil {
			return cerr
		}
		res, err = p.Run(msg)
	case "syncvar":
		sv, cerr := syncproto.NewSyncVar(*n, *psender, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = sv.Run(msg)
	case "event":
		ce, cerr := syncproto.NewCommonEvent(*n, *miss, *miss, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = ce.Run(msg)
	default:
		return fmt.Errorf("unknown protocol %q (want arq, counter, syncvar, event, naive or delayed)", *proto)
	}
	if err != nil {
		return err
	}

	fmt.Printf("protocol:            %s\n", *proto)
	fmt.Printf("message symbols:     %d (N = %d bits)\n", res.MessageSymbols, *n)
	fmt.Printf("channel uses:        %d\n", res.Uses)
	fmt.Printf("sender operations:   %d\n", res.SenderOps)
	fmt.Printf("delivered slots:     %d\n", res.Delivered)
	fmt.Printf("slot errors:         %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
	fmt.Printf("skipped symbols:     %d\n", res.SkippedSymbols)
	fmt.Printf("measured rate:       %.4f bits/use (%.4f bits/sender-op)\n",
		res.InfoRatePerUse(), res.InfoRatePerSenderOp())

	if *proto == "arq" || *proto == "counter" {
		b, berr := core.ComputeBounds(params)
		if berr != nil {
			return berr
		}
		fmt.Printf("Theorem 1/4 upper:   %.4f bits/use\n", b.Upper)
		fmt.Printf("Theorem 5 lower:     %.4f (paper norm.), %.4f (per-use)\n", b.LowerT5, b.LowerPerUse)
		if sink.rec != nil && sink.rec.Uses() > 0 {
			est := sink.rec.Estimate()
			obsParams := channel.Params{N: *n, Pd: est.Pd, Pi: est.Pi, Ps: est.Ps}
			if obsParams.Validate() == nil {
				if ob, oerr := core.ComputeBounds(obsParams); oerr == nil {
					fmt.Printf("observed upper:      %.4f bits/use (bounds at the trace-estimated parameters)\n", ob.Upper)
				}
			}
		}
	}
	return sink.close()
}

// runInjected runs a channel-backed protocol over a fault-injected
// channel under supervision: base channel -> fault stack -> use meter,
// with a Counter resync fallback and per-attempt use deadlines. With
// tracing enabled an obs.ChannelRecorder sits between the stack and
// the meter and the supervisor emits its state machine to the tracer.
func runInjected(proto string, n int, pd, pi float64, delay int, seed uint64, spec string, msg []uint32, sink *obsSink) error {
	parsed, err := faultinject.ParseSpec(spec)
	if err != nil {
		return err
	}
	params := channel.Params{N: n, Pd: pd, Pi: pi}
	if proto == "arq" || proto == "delayed" {
		// The ARQ analyses assume a deletion-only channel; hostility is
		// injected on top of it, same as the plain -proto paths.
		params.Pi = 0
	}
	base, err := channel.NewDeletionInsertion(params, rng.New(seed))
	if err != nil {
		return err
	}
	stack, err := parsed.Build(base, n, rng.NewStream(seed, 2))
	if err != nil {
		return err
	}
	var metered syncproto.UseChannel = stack
	if sink.tracer != nil || sink.metrics != "" {
		rec, rerr := obs.NewChannelRecorder(stack, sink.tracer, stack.Injected)
		if rerr != nil {
			return rerr
		}
		sink.rec = rec
		metered = rec
	}
	meter, err := syncproto.NewUseMeter(metered)
	if err != nil {
		return err
	}
	var active syncproto.Protocol
	switch proto {
	case "arq":
		active, err = syncproto.NewARQOver(meter, n)
	case "counter":
		active, err = syncproto.NewCounterOver(meter, n)
	case "naive":
		active, err = syncproto.NewNaiveOver(meter, n)
	case "delayed":
		active, err = syncproto.NewDelayedARQOver(meter, n, params.Pd, delay)
	case "syncvar", "event":
		return fmt.Errorf("-inject applies to channel-backed protocols (arq, counter, naive, delayed); %q has no channel to inject into", proto)
	default:
		return fmt.Errorf("unknown protocol %q (want arq, counter, naive or delayed with -inject)", proto)
	}
	if err != nil {
		return err
	}
	resync, err := syncproto.NewCounterOver(meter, n)
	if err != nil {
		return err
	}
	scfg := syncproto.SupervisorConfig{
		ChunkSymbols:   256,
		MaxAttempts:    4,
		BackoffBase:    32,
		ErrorThreshold: 0.25,
		Tracer:         sink.tracer,
	}
	scfg.AttemptUses = 8 * scfg.ChunkSymbols
	if proto == "delayed" {
		scfg.AttemptUses *= 1 + delay
	}
	sup, err := syncproto.NewSupervisor(active, resync, meter, scfg)
	if err != nil {
		return err
	}
	res, err := sup.Run(msg)
	if err != nil {
		return err
	}
	stack.EmitSummary(sink.tracer)

	fmt.Printf("protocol:            %s (supervised)\n", proto)
	fmt.Printf("fault spec:          %s\n", parsed.String())
	fmt.Printf("message symbols:     %d (N = %d bits)\n", res.MessageSymbols, n)
	fmt.Printf("channel uses:        %d (injected faults: %d)\n", res.Uses, stack.Injected())
	fmt.Printf("delivered slots:     %d\n", res.Delivered)
	fmt.Printf("slot errors:         %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
	fmt.Printf("measured rate:       %.4f bits/use\n", res.InfoRatePerUse())
	fmt.Printf("supervision status:  %s\n", res.Status)
	fmt.Printf("chunks:              %d (failed: %d)\n", res.Chunks, res.FailedChunks)
	fmt.Printf("attempts:            %d (retries: %d, backoff uses: %d)\n",
		res.Attempts, res.Retries, res.BackoffUses)
	fmt.Printf("resyncs:             %d (recoveries: %d)\n", res.Resyncs, res.Recoveries)
	return nil
}
