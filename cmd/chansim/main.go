// Command chansim runs a synchronization protocol over a simulated
// deletion–insertion covert channel and compares the measured
// information rate with the paper's analytic bounds.
//
// Usage:
//
//	chansim -proto arq     -n 4 -pd 0.25
//	chansim -proto counter -n 4 -pd 0.2 -pi 0.1
//	chansim -proto syncvar -n 4 -psender 0.5
//	chansim -proto event   -n 4 -miss 0.2
//	chansim -proto counter -n 4 -pd 0.1 -inject "outage=0.2;jam=0.1"
//
// With -inject the channel is wrapped in the given fault-injection
// stack and the protocol runs under syncproto.Supervisor (per-attempt
// deadlines, bounded backoff, Counter resync); the report then carries
// a supervision block. Injection applies to the channel-backed
// protocols (arq, counter, naive, delayed); syncvar and event have no
// channel to inject into.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/rng"
	"repro/internal/syncproto"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chansim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chansim", flag.ContinueOnError)
	var (
		proto   = fs.String("proto", "counter", "protocol: arq | counter | syncvar | event | naive | delayed")
		n       = fs.Int("n", 4, "bits per symbol")
		pd      = fs.Float64("pd", 0.2, "deletion probability")
		pi      = fs.Float64("pi", 0, "insertion probability")
		psender = fs.Float64("psender", 0.5, "sender activation probability (syncvar)")
		miss    = fs.Float64("miss", 0.2, "per-tick miss probability (event)")
		delay   = fs.Int("delay", 1, "feedback latency in channel uses (delayed)")
		symbols = fs.Int("symbols", 50000, "message length in symbols")
		seed    = fs.Uint64("seed", 1, "random seed")
		inject  = fs.String("inject", "", "fault-injection spec, e.g. 'outage=0.2;jam=0.1'; runs the protocol supervised")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 || *n > 16 {
		return fmt.Errorf("symbol width %d out of [1,16]", *n)
	}
	if *symbols < 1 {
		return fmt.Errorf("message length %d, want >= 1", *symbols)
	}

	msg := make([]uint32, *symbols)
	src := rng.New(*seed + 1)
	for i := range msg {
		msg[i] = src.Symbol(*n)
	}

	if *inject != "" {
		return runInjected(*proto, *n, *pd, *pi, *delay, *seed, *inject, msg)
	}

	var (
		res    syncproto.Result
		err    error
		params = channel.Params{N: *n, Pd: *pd, Pi: *pi}
	)
	switch *proto {
	case "arq":
		ch, cerr := channel.NewDeletionInsertion(channel.Params{N: *n, Pd: *pd}, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		arq, cerr := syncproto.NewARQ(ch)
		if cerr != nil {
			return cerr
		}
		res, err = arq.Run(msg)
	case "counter":
		ch, cerr := channel.NewDeletionInsertion(params, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		counter, cerr := syncproto.NewCounter(ch)
		if cerr != nil {
			return cerr
		}
		res, err = counter.Run(msg)
	case "syncvar":
		sv, cerr := syncproto.NewSyncVar(*n, *psender, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = sv.Run(msg)
	case "event":
		ce, cerr := syncproto.NewCommonEvent(*n, *miss, *miss, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		res, err = ce.Run(msg)
	case "naive":
		ch, cerr := channel.NewDeletionInsertion(params, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		naive, cerr := syncproto.NewNaive(ch)
		if cerr != nil {
			return cerr
		}
		res, err = naive.Run(msg)
	case "delayed":
		ch, cerr := channel.NewDeletionInsertion(channel.Params{N: *n, Pd: *pd}, rng.New(*seed))
		if cerr != nil {
			return cerr
		}
		darq, cerr := syncproto.NewDelayedARQ(ch, *delay)
		if cerr != nil {
			return cerr
		}
		res, err = darq.Run(msg)
	default:
		return fmt.Errorf("unknown protocol %q (want arq, counter, syncvar, event, naive or delayed)", *proto)
	}
	if err != nil {
		return err
	}

	fmt.Printf("protocol:            %s\n", *proto)
	fmt.Printf("message symbols:     %d (N = %d bits)\n", res.MessageSymbols, *n)
	fmt.Printf("channel uses:        %d\n", res.Uses)
	fmt.Printf("sender operations:   %d\n", res.SenderOps)
	fmt.Printf("delivered slots:     %d\n", res.Delivered)
	fmt.Printf("slot errors:         %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
	fmt.Printf("skipped symbols:     %d\n", res.SkippedSymbols)
	fmt.Printf("measured rate:       %.4f bits/use (%.4f bits/sender-op)\n",
		res.InfoRatePerUse(), res.InfoRatePerSenderOp())

	if *proto == "arq" || *proto == "counter" {
		b, berr := core.ComputeBounds(params)
		if berr != nil {
			return berr
		}
		fmt.Printf("Theorem 1/4 upper:   %.4f bits/use\n", b.Upper)
		fmt.Printf("Theorem 5 lower:     %.4f (paper norm.), %.4f (per-use)\n", b.LowerT5, b.LowerPerUse)
	}
	return nil
}

// runInjected runs a channel-backed protocol over a fault-injected
// channel under supervision: base channel -> fault stack -> use meter,
// with a Counter resync fallback and per-attempt use deadlines.
func runInjected(proto string, n int, pd, pi float64, delay int, seed uint64, spec string, msg []uint32) error {
	parsed, err := faultinject.ParseSpec(spec)
	if err != nil {
		return err
	}
	params := channel.Params{N: n, Pd: pd, Pi: pi}
	if proto == "arq" || proto == "delayed" {
		// The ARQ analyses assume a deletion-only channel; hostility is
		// injected on top of it, same as the plain -proto paths.
		params.Pi = 0
	}
	base, err := channel.NewDeletionInsertion(params, rng.New(seed))
	if err != nil {
		return err
	}
	stack, err := parsed.Build(base, n, rng.NewStream(seed, 2))
	if err != nil {
		return err
	}
	meter, err := syncproto.NewUseMeter(stack)
	if err != nil {
		return err
	}
	var active syncproto.Protocol
	switch proto {
	case "arq":
		active, err = syncproto.NewARQOver(meter, n)
	case "counter":
		active, err = syncproto.NewCounterOver(meter, n)
	case "naive":
		active, err = syncproto.NewNaiveOver(meter, n)
	case "delayed":
		active, err = syncproto.NewDelayedARQOver(meter, n, params.Pd, delay)
	case "syncvar", "event":
		return fmt.Errorf("-inject applies to channel-backed protocols (arq, counter, naive, delayed); %q has no channel to inject into", proto)
	default:
		return fmt.Errorf("unknown protocol %q (want arq, counter, naive or delayed with -inject)", proto)
	}
	if err != nil {
		return err
	}
	resync, err := syncproto.NewCounterOver(meter, n)
	if err != nil {
		return err
	}
	scfg := syncproto.SupervisorConfig{
		ChunkSymbols:   256,
		MaxAttempts:    4,
		BackoffBase:    32,
		ErrorThreshold: 0.25,
	}
	scfg.AttemptUses = 8 * scfg.ChunkSymbols
	if proto == "delayed" {
		scfg.AttemptUses *= 1 + delay
	}
	sup, err := syncproto.NewSupervisor(active, resync, meter, scfg)
	if err != nil {
		return err
	}
	res, err := sup.Run(msg)
	if err != nil {
		return err
	}

	fmt.Printf("protocol:            %s (supervised)\n", proto)
	fmt.Printf("fault spec:          %s\n", parsed.String())
	fmt.Printf("message symbols:     %d (N = %d bits)\n", res.MessageSymbols, n)
	fmt.Printf("channel uses:        %d (injected faults: %d)\n", res.Uses, stack.Injected())
	fmt.Printf("delivered slots:     %d\n", res.Delivered)
	fmt.Printf("slot errors:         %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
	fmt.Printf("measured rate:       %.4f bits/use\n", res.InfoRatePerUse())
	fmt.Printf("supervision status:  %s\n", res.Status)
	fmt.Printf("chunks:              %d (failed: %d)\n", res.Chunks, res.FailedChunks)
	fmt.Printf("attempts:            %d (retries: %d, backoff uses: %d)\n",
		res.Attempts, res.Retries, res.BackoffUses)
	fmt.Printf("resyncs:             %d (recoveries: %d)\n", res.Resyncs, res.Recoveries)
	return nil
}
