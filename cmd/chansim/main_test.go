package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunProtocols(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "arq",
			args: []string{"-proto", "arq", "-n", "4", "-pd", "0.25", "-symbols", "2000"},
			want: "Theorem 1/4 upper:   3.0000",
		},
		{
			name: "counter",
			args: []string{"-proto", "counter", "-n", "4", "-pd", "0.2", "-pi", "0.1", "-symbols", "2000"},
			want: "Theorem 5 lower",
		},
		{
			name: "syncvar",
			args: []string{"-proto", "syncvar", "-n", "4", "-psender", "0.5", "-symbols", "2000"},
			want: "slot errors:         0",
		},
		{
			name: "event",
			args: []string{"-proto", "event", "-n", "4", "-miss", "0.2", "-symbols", "2000"},
			want: "protocol:            event",
		},
		{
			name: "naive",
			args: []string{"-proto", "naive", "-n", "4", "-pd", "0.05", "-pi", "0.05", "-symbols", "2000"},
			want: "protocol:            naive",
		},
		{
			name: "delayed",
			args: []string{"-proto", "delayed", "-n", "4", "-pd", "0.2", "-delay", "2", "-symbols", "2000"},
			want: "protocol:            delayed",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(tt.args) })
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, tt.want) {
				t.Fatalf("output missing %q:\n%s", tt.want, out)
			}
		})
	}
}

func TestRunInjected(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "counter outage",
			args: []string{"-proto", "counter", "-n", "4", "-pd", "0.1", "-symbols", "3000",
				"-inject", "outage=0.2"},
			want: []string{"protocol:            counter (supervised)",
				"fault spec:          outage=0.2", "supervision status:"},
		},
		{
			name: "arq jam",
			args: []string{"-proto", "arq", "-n", "4", "-pd", "0.1", "-symbols", "2000",
				"-inject", "jam=0.1"},
			want: []string{"protocol:            arq (supervised)", "injected faults:"},
		},
		{
			name: "naive stuck plus drift",
			args: []string{"-proto", "naive", "-n", "4", "-pd", "0.05", "-symbols", "2000",
				"-inject", "stuck=0.1;drift=0.05"},
			want: []string{"fault spec:          stuck=0.1;drift=0.05", "resyncs:"},
		},
		{
			name: "delayed drift",
			args: []string{"-proto", "delayed", "-n", "4", "-pd", "0.1", "-delay", "1",
				"-symbols", "2000", "-inject", "drift=0.1"},
			want: []string{"protocol:            delayed (supervised)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(tt.args) })
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range tt.want {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-proto", "bogus"},
		{"-proto", "arq", "-pd", "1.5"},
		{"-proto", "counter", "-n", "0"},
		{"-proto", "syncvar", "-psender", "0"},
		{"-proto", "event", "-miss", "-0.1"},
		{"-badflag"},
		// -inject rejects channel-less protocols and malformed specs.
		{"-proto", "event", "-inject", "outage=0.1"},
		{"-proto", "syncvar", "-inject", "outage=0.1"},
		{"-proto", "counter", "-inject", "outage=1.5"},
		{"-proto", "counter", "-inject", "gremlins=0.1"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-proto", "counter", "-n", "2", "-pd", "0.1", "-pi", "0.1", "-symbols", "1000", "-seed", "9"}
	a, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different output")
	}
}

// TestRunObservabilityOutputs checks the -trace/-metrics/-pprof
// surface on the plain path: the report gains an observed-parameter
// block, the JSONL trace re-estimates the channel parameters within
// its Wilson intervals, the metrics exposition carries the per-kind
// use counters, and both profile files exist and are non-empty.
func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/run.jsonl"
	metrics := dir + "/run.prom"
	out, err := capture(t, func() error {
		return run([]string{"-proto", "counter", "-n", "4", "-pd", "0.1", "-pi", "0.05",
			"-symbols", "20000", "-seed", "7",
			"-trace", trace, "-metrics", metrics, "-pprof", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"observed Pd:", "observed Pi:", "observed Ps:", "observed upper:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	tf, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	sum, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	est := sum.Estimate()
	if est.Uses == 0 {
		t.Fatal("trace recorded no uses")
	}
	if !est.Contains(0.1, 0.05, 0) {
		t.Errorf("assumed (0.1, 0.05, 0) outside trace CIs: %+v", est)
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`chansim_uses_total{kind="transmit"}`, `chansim_run_ms_count{proto="counter"} 1`} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, prom)
		}
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(dir + "/" + name)
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

// TestRunInjectedTrace checks the supervised path's trace: the
// recorder sits inside the fault stack, so injected overrides are
// attributed, and the supervisor's state machine lands in the trace.
func TestRunInjectedTrace(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/inj.jsonl"
	out, err := capture(t, func() error {
		return run([]string{"-proto", "counter", "-n", "4", "-pd", "0.05",
			"-symbols", "5000", "-seed", "3", "-inject", "outage=0.3", "-trace", trace})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "observed Pd:") {
		t.Fatalf("supervised report missing observed block:\n%s", out)
	}
	tf, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	sum, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Injected == 0 {
		t.Error("outage regime attributed no injected uses")
	}
	if sum.Chunks == 0 || sum.Attempts == 0 {
		t.Errorf("supervision events missing from trace: %+v", sum)
	}
	if est := sum.Estimate(); est.Pd < 0.15 {
		t.Errorf("observed Pd %.4f does not reflect the outage regime", est.Pd)
	}
}

// TestRunTraceDeterministic checks a recorded trace is a pure
// function of the flags and seed: two identical runs write
// byte-identical JSONL files.
func TestRunTraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	runTrace := func(name string) []byte {
		path := dir + "/" + name
		if _, err := capture(t, func() error {
			return run([]string{"-proto", "counter", "-n", "4", "-pd", "0.1", "-pi", "0.05",
				"-symbols", "3000", "-seed", "9", "-trace", path})
		}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := runTrace("a.jsonl"), runTrace("b.jsonl"); !bytes.Equal(a, b) {
		t.Fatal("same seed produced different traces")
	}
}
