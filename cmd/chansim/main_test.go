package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunProtocols(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{
			name: "arq",
			args: []string{"-proto", "arq", "-n", "4", "-pd", "0.25", "-symbols", "2000"},
			want: "Theorem 1/4 upper:   3.0000",
		},
		{
			name: "counter",
			args: []string{"-proto", "counter", "-n", "4", "-pd", "0.2", "-pi", "0.1", "-symbols", "2000"},
			want: "Theorem 5 lower",
		},
		{
			name: "syncvar",
			args: []string{"-proto", "syncvar", "-n", "4", "-psender", "0.5", "-symbols", "2000"},
			want: "slot errors:         0",
		},
		{
			name: "event",
			args: []string{"-proto", "event", "-n", "4", "-miss", "0.2", "-symbols", "2000"},
			want: "protocol:            event",
		},
		{
			name: "naive",
			args: []string{"-proto", "naive", "-n", "4", "-pd", "0.05", "-pi", "0.05", "-symbols", "2000"},
			want: "protocol:            naive",
		},
		{
			name: "delayed",
			args: []string{"-proto", "delayed", "-n", "4", "-pd", "0.2", "-delay", "2", "-symbols", "2000"},
			want: "protocol:            delayed",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(tt.args) })
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, tt.want) {
				t.Fatalf("output missing %q:\n%s", tt.want, out)
			}
		})
	}
}

func TestRunInjected(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want []string
	}{
		{
			name: "counter outage",
			args: []string{"-proto", "counter", "-n", "4", "-pd", "0.1", "-symbols", "3000",
				"-inject", "outage=0.2"},
			want: []string{"protocol:            counter (supervised)",
				"fault spec:          outage=0.2", "supervision status:"},
		},
		{
			name: "arq jam",
			args: []string{"-proto", "arq", "-n", "4", "-pd", "0.1", "-symbols", "2000",
				"-inject", "jam=0.1"},
			want: []string{"protocol:            arq (supervised)", "injected faults:"},
		},
		{
			name: "naive stuck plus drift",
			args: []string{"-proto", "naive", "-n", "4", "-pd", "0.05", "-symbols", "2000",
				"-inject", "stuck=0.1;drift=0.05"},
			want: []string{"fault spec:          stuck=0.1;drift=0.05", "resyncs:"},
		},
		{
			name: "delayed drift",
			args: []string{"-proto", "delayed", "-n", "4", "-pd", "0.1", "-delay", "1",
				"-symbols", "2000", "-inject", "drift=0.1"},
			want: []string{"protocol:            delayed (supervised)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := capture(t, func() error { return run(tt.args) })
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range tt.want {
				if !strings.Contains(out, want) {
					t.Fatalf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-proto", "bogus"},
		{"-proto", "arq", "-pd", "1.5"},
		{"-proto", "counter", "-n", "0"},
		{"-proto", "syncvar", "-psender", "0"},
		{"-proto", "event", "-miss", "-0.1"},
		{"-badflag"},
		// -inject rejects channel-less protocols and malformed specs.
		{"-proto", "event", "-inject", "outage=0.1"},
		{"-proto", "syncvar", "-inject", "outage=0.1"},
		{"-proto", "counter", "-inject", "outage=1.5"},
		{"-proto", "counter", "-inject", "gremlins=0.1"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	args := []string{"-proto", "counter", "-n", "2", "-pd", "0.1", "-pi", "0.1", "-symbols", "1000", "-seed", "9"}
	a, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	b, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different output")
	}
}
