package main

import (
	"os"
	"strings"
	"testing"
)

// captureOut runs fn with stdout-shaped output into a temp file and
// returns what was written.
func captureOut(t *testing.T, fn func(out *os.File) error) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "capload-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := fn(f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

func TestSelfhostSmoke(t *testing.T) {
	out, err := captureOut(t, func(f *os.File) error {
		return run([]string{"-selfhost", "-mode", "smoke"}, f)
	})
	if err != nil {
		t.Fatalf("smoke: %v\n%s", err, out)
	}
	if !strings.Contains(out, "smoke: every endpoint returned 200") {
		t.Errorf("smoke output missing verdict:\n%s", out)
	}
}

func TestSelfhostLoad(t *testing.T) {
	out, err := captureOut(t, func(f *os.File) error {
		return run([]string{"-selfhost", "-mode", "load", "-requests", "40", "-c", "4", "-unique", "4"}, f)
	})
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	for _, want := range []string{"requests:", "(0 transport errors)", "status 200:   40", "cache hit rate:"} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                                 // neither -addr nor -selfhost
		{"-selfhost", "-addr", "http://x"}, // mutually exclusive
		{"-selfhost", "-mode", "warp"},
		{"-selfhost", "-mode", "load", "-mix", "bogus"},
		{"-selfhost", "-mode", "load", "-mix", "teleport=1"},
	}
	for _, args := range cases {
		if _, err := captureOut(t, func(f *os.File) error { return run(args, f) }); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("bounds=0.5, simulate=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix["bounds"] != 0.5 || mix["simulate"] != 0.5 {
		t.Errorf("mix = %v", mix)
	}
	for _, bad := range []string{"", "bounds", "bounds=-1", "bounds=x", "bounds=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestClusterModeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault harness")
	}
	bench := t.TempDir() + "/BENCH_cluster.json"
	out, err := captureOut(t, func(f *os.File) error {
		return run([]string{
			"-mode", "cluster", "-cluster", "n1,n2,n3",
			"-requests", "90", "-unique", "8", "-exact-n", "8",
			"-kill-after", "30", "-restart-after", "60",
			"-store", t.TempDir(), "-bench-out", bench, "-assert",
		}, f)
	})
	if err != nil {
		t.Fatalf("cluster run: %v\n%s", err, out)
	}
	for _, want := range []string{
		"killed n2", "restarted n2", "0 mismatches",
		"convergence:", "cluster-assert:", "wrote " + bench,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}

	// The file the run just wrote passes cluster-check.
	out, err = captureOut(t, func(f *os.File) error {
		return run([]string{"-mode", "cluster-check", bench}, f)
	})
	if err != nil {
		t.Fatalf("cluster-check: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("cluster-check output: %s", out)
	}
}

func TestClusterFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "cluster", "-cluster", "solo"},    // < 2 members
		{"-mode", "cluster", "-kill-node", "ghost"}, // unknown kill target
		{"-mode", "cluster", "-kill-after", "50", // restart before kill
			"-restart-after", "10"},
		{"-mode", "cluster-check"},                            // no file
		{"-mode", "cluster-check", "/nonexistent/bench.json"}, // missing file
	}
	for _, args := range cases {
		if _, err := captureOut(t, func(f *os.File) error { return run(args, f) }); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
