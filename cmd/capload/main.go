// Command capload is the deterministic load harness for capserverd
// (see internal/capserver): a seeded request generator with mixed
// endpoint workloads, reporting throughput, latency percentiles and
// cache hit rate. It anchors the repository's serving benchmarks.
//
// Modes:
//
//	capload -selfhost -mode smoke        # start a server in-process,
//	                                     # hit every endpoint, assert
//	                                     # 200 + valid JSON, shut down
//	capload -selfhost -mode load         # seeded mixed-workload run
//	capload -selfhost -mode bench-cache  # cache-hit vs cache-miss
//	                                     # median latency benchmark
//	capload -addr http://127.0.0.1:8080 -mode load -requests 2000 -c 16
//
//	capload -mode cluster -cluster n1,n2,n3 \
//	        -kill-after 60 -restart-after 130 -assert \
//	        -bench-out BENCH_cluster.json
//	                                     # stand up an in-process
//	                                     # 3-node cluster over a shared
//	                                     # result store, kill and
//	                                     # restart a node mid-run,
//	                                     # assert byte identity vs a
//	                                     # single-node oracle and
//	                                     # post-restart convergence
//	capload -mode cluster-check BENCH_cluster.json
//	                                     # validate a committed
//	                                     # trajectory file
//	capload -mode cluster -cluster n1,n2,n3 -trace-dir /tmp/run -assert
//	                                     # same fault run with request
//	                                     # tracing on: per-node span
//	                                     # files + counters.json for
//	                                     # cmd/capstat, and -assert
//	                                     # additionally requires the
//	                                     # trace to reconcile exactly
//	                                     # with the routing counters
//
// The request sequence (endpoints, parameter points, order) is a pure
// function of -seed, so two runs against equivalent servers issue the
// same workload; in cluster mode the dispatch choices and the
// kill/restart schedule are seeded too, so a failing fault run replays
// bit-for-bit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/capserver"
	"repro/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capload:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("capload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "base URL of a running capserverd (e.g. http://127.0.0.1:8080)")
		selfhost = fs.Bool("selfhost", false, "start a capserver in-process on an ephemeral port")
		mode     = fs.String("mode", "load", "mode: load | smoke | bench-cache")
		requests = fs.Int("requests", 400, "total requests (load mode)")
		conc     = fs.Int("c", 8, "concurrent client workers (load mode)")
		seed     = fs.Uint64("seed", 1, "request-sequence seed")
		unique   = fs.Int("unique", 16, "distinct parameter points per endpoint (load mode)")
		mixFlag  = fs.String("mix", "bounds=0.7,predict=0.2,simulate=0.1", "endpoint weights (load mode)")
		exactN   = fs.Int("exact-n", 0, "bounds requests carry exact_n=<v> so misses pay real compute (load mode)")
		benchN   = fs.Int("bench-exact-n", 9, "exact_n of the bench-cache computation")
		points   = fs.Int("bench-points", 3, "distinct cold points measured in bench-cache")
		hits     = fs.Int("bench-hits", 30, "cache-hit requests measured in bench-cache")
		minRatio = fs.Float64("min-speedup", 0, "fail bench-cache below this hit-vs-miss speedup (0 = report only)")
		workers  = fs.Int("workers", 0, "selfhost: compute workers (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 64, "selfhost: compute queue depth")
		cacheSz  = fs.Int("cache", 1024, "selfhost: LRU cache entries")

		clusterFlag = fs.String("cluster", "n1,n2,n3", "cluster mode: comma-separated member names")
		killAfter   = fs.Int("kill-after", 0, "cluster mode: kill a node before this request index (0 = requests/3, negative = no fault)")
		restart     = fs.Int("restart-after", 0, "cluster mode: restart the killed node before this request index (0 = 2*requests/3, negative = leave it down)")
		killNode    = fs.String("kill-node", "", "cluster mode: member to kill (default: middle of sorted names)")
		hedge       = fs.Duration("hedge", 0, "cluster mode: hedge delay (0 = 5ms, negative = no hedging)")
		storeDir    = fs.String("store", "", "cluster mode: shared result-store directory (default: fresh temp dir)")
		benchOut    = fs.String("bench-out", "", "cluster mode: write a BENCH_cluster.json trajectory here")
		assert      = fs.Bool("assert", false, "cluster mode: fail on any harness assertion (byte identity, convergence, fault counters)")
		trace       = fs.Bool("trace", false, "cluster mode: trace every request and reconcile spans against routing counters")
		traceDir    = fs.String("trace-dir", "", "cluster mode: write per-node trace JSONL and counters.json here for capstat (implies -trace)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "cluster":
		return runCluster(clusterOptions{
			names:        strings.Split(*clusterFlag, ","),
			requests:     *requests,
			seed:         *seed,
			unique:       *unique,
			exactN:       *exactN,
			killAfter:    *killAfter,
			restartAfter: *restart,
			killNode:     *killNode,
			hedge:        *hedge,
			storeDir:     *storeDir,
			workers:      *workers,
			queue:        *queue,
			cacheSz:      *cacheSz,
			benchOut:     *benchOut,
			assert:       *assert,
			trace:        *trace,
			traceDir:     *traceDir,
		}, out)
	case "cluster-check":
		path := *benchOut
		if fs.NArg() > 0 {
			path = fs.Arg(0)
		}
		if path == "" {
			return fmt.Errorf("cluster-check needs a trajectory file (positional or -bench-out)")
		}
		if err := cluster.CheckTrajectory(path); err != nil {
			return err
		}
		fmt.Fprintf(out, "cluster-check: %s ok\n", path)
		return nil
	}

	base := strings.TrimRight(*addr, "/")
	if *selfhost {
		if base != "" {
			return fmt.Errorf("-selfhost and -addr are mutually exclusive")
		}
		srv := capserver.New(capserver.Config{Workers: *workers, QueueDepth: *queue, CacheEntries: *cacheSz})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = srv.Serve(l) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()
		base = "http://" + l.Addr().String()
		fmt.Fprintf(out, "selfhost server on %s\n", base)
	}
	if base == "" {
		return fmt.Errorf("need -addr or -selfhost")
	}

	switch *mode {
	case "smoke":
		if err := capserver.Smoke(base, nil); err != nil {
			return err
		}
		fmt.Fprintln(out, "smoke: every endpoint returned 200 with valid JSON")
		return nil
	case "bench-cache":
		res, err := capserver.BenchCache(base, *benchN, *points, *hits, nil)
		if err != nil {
			return err
		}
		res.Format(out)
		if *minRatio > 0 && res.Speedup < *minRatio {
			return fmt.Errorf("cache speedup %.1fx below required %.1fx", res.Speedup, *minRatio)
		}
		return nil
	case "load":
		mix, err := parseMix(*mixFlag)
		if err != nil {
			return err
		}
		report, err := capserver.RunLoad(capserver.LoadOptions{
			BaseURL:     base,
			Requests:    *requests,
			Concurrency: *conc,
			Seed:        *seed,
			Unique:      *unique,
			Mix:         mix,
			ExactN:      *exactN,
		})
		if err != nil {
			return err
		}
		report.Format(out)
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want load, smoke, bench-cache, cluster or cluster-check)", *mode)
	}
}

// clusterOptions carries the cluster-mode flag values.
type clusterOptions struct {
	names                   []string
	requests                int
	seed                    uint64
	unique, exactN          int
	killAfter, restartAfter int
	killNode                string
	hedge                   time.Duration
	storeDir                string
	workers, queue, cacheSz int
	benchOut                string
	assert                  bool
	trace                   bool
	traceDir                string
}

// runCluster drives the multi-node fault harness and optionally writes
// the trajectory file.
func runCluster(o clusterOptions, out *os.File) error {
	names := make([]string, 0, len(o.names))
	for _, n := range o.names {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) < 2 {
		return fmt.Errorf("-cluster %q names fewer than 2 members", strings.Join(o.names, ","))
	}
	ho := cluster.HarnessOptions{
		Nodes:        names,
		Requests:     o.requests,
		Seed:         o.seed,
		Unique:       o.unique,
		ExactN:       o.exactN,
		KillNode:     o.killNode,
		KillAfter:    o.killAfter,
		RestartAfter: o.restartAfter,
		HedgeDelay:   o.hedge,
		StoreDir:     o.storeDir,
		Workers:      o.workers,
		QueueDepth:   o.queue,
		CacheEntries: o.cacheSz,
		Trace:        o.trace,
		TraceDir:     o.traceDir,
		Out:          out,
	}
	rep, err := cluster.RunHarness(ho)
	if err != nil {
		return err
	}
	rep.Format(out)
	if o.benchOut != "" {
		mode := "full"
		if o.requests < 200 {
			mode = "smoke"
		}
		if err := cluster.WriteTrajectory(o.benchOut, cluster.BuildTrajectory(mode, ho, rep)); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.benchOut)
	}
	if o.assert {
		if err := rep.Assert(); err != nil {
			return err
		}
		if rep.Trace != nil {
			fmt.Fprintln(out, "cluster-assert: byte identity, convergence, fault counters and trace reconciliation all hold")
		} else {
			fmt.Fprintln(out, "cluster-assert: byte identity, convergence and fault counters all hold")
		}
	}
	return nil
}

// parseMix parses "bounds=0.7,predict=0.2,simulate=0.1".
func parseMix(s string) (map[string]float64, error) {
	mix := make(map[string]float64)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix item %q is not endpoint=weight", part)
		}
		name = strings.TrimSpace(name)
		switch name {
		case "bounds", "predict", "simulate":
		default:
			return nil, fmt.Errorf("mix endpoint %q unknown (want bounds, predict or simulate)", name)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix item %q: bad weight", part)
		}
		if w > 0 {
			mix[name] = w
		}
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("mix %q selects no endpoints", s)
	}
	return mix, nil
}
