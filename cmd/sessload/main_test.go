package main

import (
	"os"
	"strings"
	"testing"
)

// captureOut runs fn with stdout-shaped output into a temp file and
// returns what was written.
func captureOut(t *testing.T, fn func(out *os.File) error) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "sessload-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := fn(f)
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

func TestRunModeAssertAndCheck(t *testing.T) {
	bench := t.TempDir() + "/BENCH_sessions.json"
	args := []string{"-mode", "run", "-sessions", "200", "-seed", "7",
		"-bench-out", bench, "-assert"}
	out, err := captureOut(t, func(f *os.File) error { return run(args, f) })
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{
		"sessload seed=7 sessions=200 drift=20",
		"converged:", "detected: 20/20 missed: 0",
		"timing: wall=", "wrote " + bench, "sessload-assert:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}

	// The trajectory the run just wrote passes check at its own scale
	// but fails the committed file's 10^5 floor.
	out, err = captureOut(t, func(f *os.File) error {
		return run([]string{"-mode", "check", "-min-sessions", "200", bench}, f)
	})
	if err != nil {
		t.Fatalf("check: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("check output: %s", out)
	}
	if _, err := captureOut(t, func(f *os.File) error {
		return run([]string{"-mode", "check", bench}, f)
	}); err == nil || !strings.Contains(err.Error(), "floor") {
		t.Errorf("200-session trajectory passed the default 100000 floor: %v", err)
	}
}

// TestRunModeDeterministic replays the same seed at different -jobs
// counts: the report (everything before the timing: line) must be
// byte-identical.
func TestRunModeDeterministic(t *testing.T) {
	report := func(jobs string) string {
		args := []string{"-mode", "run", "-sessions", "120", "-seed", "3", "-jobs", jobs}
		out, err := captureOut(t, func(f *os.File) error { return run(args, f) })
		if err != nil {
			t.Fatalf("jobs=%s: %v\n%s", jobs, err, out)
		}
		det, _, ok := strings.Cut(out, "timing:")
		if !ok {
			t.Fatalf("jobs=%s: no timing line:\n%s", jobs, out)
		}
		return det
	}
	if a, b := report("1"), report("8"); a != b {
		t.Errorf("report differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s--- jobs=8\n%s", a, b)
	}
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "warp"},
		{"-mode", "check"}, // no file
		{"-mode", "check", "/nonexistent/bench.json"}, // missing file
		{"-mode", "cluster", "-cluster", "solo"},      // < 2 members
		{"-mode", "run", "-sessions", "20", "-inject", "bogus=spec"},
	}
	for _, args := range cases {
		if _, err := captureOut(t, func(f *os.File) error { return run(args, f) }); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}

func TestClusterModeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node session fault harness")
	}
	out, err := captureOut(t, func(f *os.File) error {
		return run([]string{"-mode", "cluster", "-assert"}, f)
	})
	if err != nil {
		t.Fatalf("cluster run: %v\n%s", err, out)
	}
	for _, want := range []string{"killed n2", "restarted n2", "cluster-assert:"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}
}
