// Command sessload is the deterministic load generator and acceptance
// gate for the streaming session subsystem (internal/session): it
// simulates large populations of concurrent covert-channel sessions
// from seeded Definition 1 channel models, injects a mid-run drift
// regime through the faultinject stack, and asserts that the online
// estimators converge to the planted parameters and the change-point
// detector flags the drift within a bounded delay.
//
// Modes:
//
//	sessload -mode run -sessions 100000 -assert \
//	         -bench-out BENCH_sessions.json
//	                                  # simulate 10^5 sessions, drift a
//	                                  # tenth of them, assert
//	                                  # convergence/detection, write the
//	                                  # throughput trajectory
//	sessload -mode check BENCH_sessions.json
//	                                  # validate a committed trajectory
//	                                  # (schema, 10^5-session floor,
//	                                  # clean detection record)
//	sessload -mode cluster -assert    # 3-node sharded cluster: ingest
//	                                  # through every node, kill and
//	                                  # restart a session owner
//	                                  # mid-run, assert single
//	                                  # ownership, honest 502s during
//	                                  # the outage, and full recovery
//
// Everything the report prints is a pure function of the flags: the
// per-session channels, the drift walks, and the batch schedule all
// derive from -seed, and the output is byte-identical at any -jobs
// count (wall-clock timing goes to a separate "timing:" line so the
// deterministic report stays diffable).
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/session"

	"flag"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sessload:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("sessload", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "run", "mode: run | check | cluster")
		sessions  = fs.Int("sessions", 1000, "concurrent simulated sessions (run mode)")
		seed      = fs.Uint64("seed", 1, "simulation seed")
		jobs      = fs.Int("jobs", 0, "worker goroutines (0 = GOMAXPROCS); any value yields byte-identical output")
		cleanUses = fs.Int("clean-uses", 0, "uses per session before drift onset (0 = default 1200)")
		driftUses = fs.Int("drift-uses", 0, "uses per drifted session after onset (0 = default 1200)")
		driftEvr  = fs.Int("drift-every", 0, "every k-th session drifts (0 = default 10)")
		inject    = fs.String("inject", "", "faultinject spec for the drift regime (default drift=0.25)")
		batch     = fs.Int("batch", 0, "events per ingest batch (0 = default 400)")
		maxDelay  = fs.Int64("max-delay", 0, "assert: max allowed detection delay in uses (0 = drift window)")
		benchOut  = fs.String("bench-out", "", "write a BENCH_sessions.json trajectory here (run mode)")
		assert    = fs.Bool("assert", false, "fail on any acceptance bound (convergence, detection, false alarms)")
		minSess   = fs.Int("min-sessions", 100000, "check mode: session floor the trajectory must meet")

		clusterFlag = fs.String("cluster", "n1,n2,n3", "cluster mode: comma-separated member names")
		rounds      = fs.Int("rounds", 0, "cluster mode: batch rounds per session (0 = default 9)")
		perBatch    = fs.Int("events-per-batch", 0, "cluster mode: events per batch (0 = default 40)")
		killAfter   = fs.Int("kill-after", 0, "cluster mode: kill a node before this round (0 = rounds/3, negative = no fault)")
		restart     = fs.Int("restart-after", 0, "cluster mode: restart the killed node before this round (0 = 2*rounds/3, negative = leave it down)")
		killNode    = fs.String("kill-node", "", "cluster mode: member to kill (default: middle of sorted names)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "run":
		cfg := session.LoadConfig{
			Sessions:       *sessions,
			Seed:           *seed,
			Jobs:           *jobs,
			CleanUses:      *cleanUses,
			DriftUses:      *driftUses,
			DriftEvery:     *driftEvr,
			Inject:         *inject,
			Batch:          *batch,
			MaxDetectDelay: *maxDelay,
		}
		start := time.Now()
		rep, err := session.Run(cfg)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		rep.Format(out)
		fmt.Fprintf(out, "timing: wall=%v events/s=%.0f\n",
			wall.Round(time.Millisecond), float64(rep.EventsTotal)/wall.Seconds())
		if *benchOut != "" {
			traj := session.BuildTrajectory(cfg, rep, wall)
			if err := session.WriteTrajectory(*benchOut, traj); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *benchOut)
		}
		if *assert {
			if err := rep.Assert(); err != nil {
				return err
			}
			fmt.Fprintln(out, "sessload-assert: convergence, drift detection and false-alarm bounds all hold")
		}
		return nil

	case "check":
		path := *benchOut
		if fs.NArg() > 0 {
			path = fs.Arg(0)
		}
		if path == "" {
			return fmt.Errorf("check needs a trajectory file (positional or -bench-out)")
		}
		if err := session.CheckTrajectory(path, *minSess); err != nil {
			return err
		}
		fmt.Fprintf(out, "check: %s ok\n", path)
		return nil

	case "cluster":
		var names []string
		for _, n := range strings.Split(*clusterFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) < 2 {
			return fmt.Errorf("-cluster %q names fewer than 2 members", *clusterFlag)
		}
		rep, err := cluster.RunSessionHarness(cluster.SessionHarnessOptions{
			Nodes:          names,
			Sessions:       *sessions,
			Rounds:         *rounds,
			EventsPerBatch: *perBatch,
			Seed:           *seed,
			KillNode:       *killNode,
			KillAfter:      *killAfter,
			RestartAfter:   *restart,
			Out:            out,
		})
		if err != nil {
			return err
		}
		rep.Format(out)
		if *assert {
			if err := rep.Assert(); err != nil {
				return err
			}
			fmt.Fprintln(out, "cluster-assert: session ownership, outage honesty and recovery all hold")
		}
		return nil

	default:
		return fmt.Errorf("unknown mode %q (want run, check or cluster)", *mode)
	}
}
