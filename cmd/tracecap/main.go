// Command tracecap analyzes a JSONL channel-use trace recorded by
// chansim, experiments or the capacity server (the obs tracer format):
// it tallies the Definition 1 events, re-estimates the channel
// parameters (Pd, Pi, Ps) with Wilson 95% intervals, and summarizes
// supervision activity and kernel spans found in the trace.
//
// Usage:
//
//	tracecap run.jsonl
//	tracecap < run.jsonl
//	tracecap -n 4 -pd 0.1 -pi 0.05 -ps 0.02 run.jsonl
//
// When the assumed channel parameters are given (-pd/-pi/-ps with -n),
// tracecap compares them against the trace-driven estimate — reporting
// whether the assumed point falls inside every observed interval — and
// prints the paper's capacity bounds at both parameter points, so a
// drifted or fault-injected channel shows up as an "assumed vs.
// observed" capacity gap.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecap:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("tracecap", flag.ContinueOnError)
	var (
		n  = fs.Int("n", 0, "bits per symbol for the assumed-vs-observed bounds comparison (0 = skip)")
		pd = fs.Float64("pd", -1, "assumed deletion probability (with -n)")
		pi = fs.Float64("pi", 0, "assumed insertion probability (with -n)")
		ps = fs.Float64("ps", 0, "assumed substitution probability (with -n)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("want at most one trace file, got %d arguments", fs.NArg())
	}
	sum, err := obs.ReadTrace(in)
	if err != nil {
		return err
	}
	if sum.Events == 0 {
		return fmt.Errorf("empty trace")
	}

	fmt.Fprintf(out, "trace events:        %d\n", sum.Events)
	est := sum.Estimate()
	if est.Uses > 0 {
		fmt.Fprintf(out, "channel uses:        %d (T %d, S %d, D %d, I %d, injected %d)\n",
			est.Uses, sum.Transmits, sum.Substitutes, sum.Deletes, sum.Inserts, sum.Injected)
		fmt.Fprintf(out, "observed Pd:         %.4f [%.4f, %.4f]\n", est.Pd, est.PdLo, est.PdHi)
		fmt.Fprintf(out, "observed Pi:         %.4f [%.4f, %.4f]\n", est.Pi, est.PiLo, est.PiHi)
		fmt.Fprintf(out, "observed Ps:         %.4f [%.4f, %.4f]\n", est.Ps, est.PsLo, est.PsHi)
	}
	if sum.Chunks > 0 || sum.Attempts > 0 {
		fmt.Fprintf(out, "supervision:         %d chunks (%d failed), %d attempts (%d retries)\n",
			sum.Chunks, sum.FailedChunks, sum.Attempts, sum.Retries)
		fmt.Fprintf(out, "                     %d resyncs, %d recoveries, %d backoff uses\n",
			sum.Resyncs, sum.Recoveries, sum.BackoffUses)
	}
	if len(sum.Spans) > 0 {
		names := make([]string, 0, len(sum.Spans))
		for name := range sum.Spans {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := sum.Spans[name]
			fmt.Fprintf(out, "spans %-14s %d", name+":", st.Count)
			keys := make([]string, 0, len(st.Sums))
			for k := range st.Sums {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(out, "  sum(%s)=%g", k, st.Sums[k])
			}
			fmt.Fprintln(out)
		}
	}

	if *n == 0 {
		return nil
	}
	if est.Uses == 0 {
		return fmt.Errorf("trace has no channel uses; cannot compare bounds")
	}
	if *pd < 0 {
		return fmt.Errorf("-n set without -pd; the comparison needs the assumed parameters")
	}
	assumed := channel.Params{N: *n, Pd: *pd, Pi: *pi, Ps: *ps}
	ab, err := core.ComputeBounds(assumed)
	if err != nil {
		return fmt.Errorf("assumed parameters: %w", err)
	}
	verdict := "agrees with"
	if !est.Contains(*pd, *pi, *ps) {
		verdict = "REJECTS"
	}
	fmt.Fprintf(out, "assumed (Pd,Pi,Ps):  (%.4f, %.4f, %.4f) — trace %s the assumed point\n",
		*pd, *pi, *ps, verdict)
	fmt.Fprintf(out, "assumed upper:       %.4f bits/use (lower %.4f per-use)\n", ab.Upper, ab.LowerPerUse)
	observed := channel.Params{N: *n, Pd: est.Pd, Pi: est.Pi, Ps: est.Ps}
	if err := observed.Validate(); err != nil {
		fmt.Fprintf(out, "observed bounds:     n/a (%v)\n", err)
		return nil
	}
	ob, err := core.ComputeBounds(observed)
	if err != nil {
		fmt.Fprintf(out, "observed bounds:     n/a (%v)\n", err)
		return nil
	}
	fmt.Fprintf(out, "observed upper:      %.4f bits/use (lower %.4f per-use)\n", ob.Upper, ob.LowerPerUse)
	return nil
}
