package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/rng"
)

// writeTrace records a seeded run over a known channel into a JSONL
// file and returns its path.
func writeTrace(t *testing.T, params channel.Params, symbols int, seed uint64) string {
	t.Helper()
	ch, err := channel.NewDeletionInsertion(params, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	rec, err := obs.NewChannelRecorder(ch, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	ch.SetObserver(rec.Observe)
	msg := make([]uint32, symbols)
	src := rng.New(seed + 1)
	for i := range msg {
		msg[i] = src.Symbol(params.N)
	}
	ch.Transmit(msg)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalyzeFile checks the plain analysis: event tallies and the
// (Pd, Pi, Ps) estimate with intervals.
func TestAnalyzeFile(t *testing.T) {
	path := writeTrace(t, channel.Params{N: 4, Pd: 0.1, Pi: 0.05, Ps: 0.02}, 20000, 7)
	var out bytes.Buffer
	if err := run([]string{path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace events:", "observed Pd:", "observed Pi:", "observed Ps:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestAnalyzeStdin checks reading the trace from stdin.
func TestAnalyzeStdin(t *testing.T) {
	path := writeTrace(t, channel.Params{N: 4, Pd: 0.1}, 5000, 3)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(nil, bytes.NewReader(b), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "observed Pd:") {
		t.Fatalf("stdin analysis missing estimate:\n%s", out.String())
	}
}

// TestAssumedComparison checks the assumed-vs-observed verdict and the
// two bounds blocks: matching parameters agree, a wrong assumed point
// is rejected.
func TestAssumedComparison(t *testing.T) {
	path := writeTrace(t, channel.Params{N: 4, Pd: 0.1, Pi: 0.05, Ps: 0.02}, 20000, 2)
	var out bytes.Buffer
	if err := run([]string{"-n", "4", "-pd", "0.1", "-pi", "0.05", "-ps", "0.02", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"agrees with the assumed point", "assumed upper:", "observed upper:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := run([]string{"-n", "4", "-pd", "0.4", path}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "REJECTS the assumed point") {
		t.Fatalf("wrong assumed point not rejected:\n%s", out.String())
	}
}

// TestRunErrors covers the failure modes: missing file, empty trace,
// malformed lines, too many arguments, -n without -pd.
func TestRunErrors(t *testing.T) {
	good := writeTrace(t, channel.Params{N: 4, Pd: 0.1}, 1000, 1)
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{name: "missing file", args: []string{filepath.Join(t.TempDir(), "absent.jsonl")}},
		{name: "empty trace", args: []string{empty}},
		{name: "malformed line", stdin: "not json\n"},
		{name: "two files", args: []string{good, good}},
		{name: "n without pd", args: []string{"-n", "4", good}},
		{name: "bad flag", args: []string{"-garbage"}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tt.args, strings.NewReader(tt.stdin), &out); err == nil {
				t.Errorf("args %v: expected error", tt.args)
			}
		})
	}
}
