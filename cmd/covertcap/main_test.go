package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunSinglePoint(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-pd", "0.2", "-pi", "0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3.2000") {
		t.Fatalf("output missing upper bound 3.2000:\n%s", out)
	}
}

func TestRunSweep(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "2", "-sweep-pd", "0,0.1,0.2", "-sweep-pi", "0,0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out, "\n")
	if lines != 7 { // header + 6 combinations
		t.Fatalf("sweep produced %d lines, want 7:\n%s", lines, out)
	}
}

func TestRunDegrade(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sync-capacity", "100", "-pd", "0.25"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "75") {
		t.Fatalf("degraded capacity missing from output:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-pd", "0.2", "-format", "csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "n,pd,pi,c_upper") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "4,0.2,0,3.2") {
		t.Fatalf("missing CSV row:\n%s", out)
	}
}

func TestRunBadFormat(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-format", "xml"}) }); err == nil {
		t.Fatal("expected format error")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-n", "0"}) }); err == nil {
		t.Error("expected error for invalid width")
	}
	if _, err := capture(t, func() error { return run([]string{"-sweep-pd", "abc"}) }); err == nil {
		t.Error("expected error for malformed sweep")
	}
	if _, err := capture(t, func() error { return run([]string{"-sync-capacity", "1", "-pd", "2"}) }); err == nil {
		t.Error("expected error for invalid pd")
	}
	if _, err := capture(t, func() error { return run([]string{"-bogus"}) }); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestParseSweep(t *testing.T) {
	vals, err := parseSweep(" 0.1 , 0.2 ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 0.1 || vals[1] != 0.2 {
		t.Fatalf("parseSweep = %v", vals)
	}
	vals, err = parseSweep("", 0.7)
	if err != nil || len(vals) != 1 || vals[0] != 0.7 {
		t.Fatalf("fallback parseSweep = %v, %v", vals, err)
	}
}
