package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capserver"
)

// -update regenerates the golden files instead of comparing.
var update = flag.Bool("update", false, "rewrite golden files")

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunSinglePoint(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-pd", "0.2", "-pi", "0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3.2000") {
		t.Fatalf("output missing upper bound 3.2000:\n%s", out)
	}
}

func TestRunSweep(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "2", "-sweep-pd", "0,0.1,0.2", "-sweep-pi", "0,0.1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out, "\n")
	if lines != 7 { // header + 6 combinations
		t.Fatalf("sweep produced %d lines, want 7:\n%s", lines, out)
	}
}

func TestRunDegrade(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sync-capacity", "100", "-pd", "0.25"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "75") {
		t.Fatalf("degraded capacity missing from output:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-pd", "0.2", "-format", "csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "n,pd,pi,c_upper") {
		t.Fatalf("missing CSV header:\n%s", out)
	}
	if !strings.Contains(out, "4,0.2,0,3.2") {
		t.Fatalf("missing CSV row:\n%s", out)
	}
}

// TestRunJSONGolden locks the machine-readable output byte-for-byte:
// it is the capserverd /v1/bounds wire schema and scripted consumers
// depend on it staying stable.
func TestRunJSONGolden(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-n", "4", "-sweep-pd", "0,0.25", "-pi", "0.1", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "bounds.golden.json")
	if *update {
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Errorf("JSON output drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", out, want)
	}
	// The output must round-trip through the shared wire type.
	var points []capserver.BoundsJSON
	if err := json.Unmarshal([]byte(out), &points); err != nil {
		t.Fatalf("output does not decode as []capserver.BoundsJSON: %v", err)
	}
	if len(points) != 2 || points[0].N != 4 || points[1].Pd != 0.25 {
		t.Errorf("decoded points = %+v", points)
	}
}

func TestRunJSONDegrade(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sync-capacity", "100", "-pd", "0.25", "-json"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var d capserver.DegradeJSON
	if err := json.Unmarshal([]byte(out), &d); err != nil {
		t.Fatalf("output does not decode as capserver.DegradeJSON: %v\n%s", err, out)
	}
	if d.Corrected != 75 || d.TraditionalEstimate != 100 || d.Pd != 0.25 {
		t.Errorf("degrade JSON = %+v", d)
	}
}

func TestRunJSONFormatConflict(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-json", "-format", "csv"}) }); err == nil {
		t.Fatal("-json with -format csv accepted")
	}
}

func TestRunBadFormat(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-format", "xml"}) }); err == nil {
		t.Fatal("expected format error")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-n", "0"}) }); err == nil {
		t.Error("expected error for invalid width")
	}
	if _, err := capture(t, func() error { return run([]string{"-sweep-pd", "abc"}) }); err == nil {
		t.Error("expected error for malformed sweep")
	}
	if _, err := capture(t, func() error { return run([]string{"-sync-capacity", "1", "-pd", "2"}) }); err == nil {
		t.Error("expected error for invalid pd")
	}
	if _, err := capture(t, func() error { return run([]string{"-bogus"}) }); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestParseSweep(t *testing.T) {
	vals, err := parseSweep(" 0.1 , 0.2 ", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 0.1 || vals[1] != 0.2 {
		t.Fatalf("parseSweep = %v", vals)
	}
	vals, err = parseSweep("", 0.7)
	if err != nil || len(vals) != 1 || vals[0] != 0.7 {
		t.Fatalf("fallback parseSweep = %v, %v", vals, err)
	}
}
