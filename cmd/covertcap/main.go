// Command covertcap computes the paper's capacity estimates for a
// deletion–insertion covert channel: the Theorem 1/4 upper bound, the
// Theorem 5 lower bound (both normalizations), the converted-channel
// capacity, and the Section 4.4 degradation of a given synchronous
// estimate.
//
// Usage:
//
//	covertcap -n 4 -pd 0.2 -pi 0.1            # one parameter point
//	covertcap -n 4 -sweep-pd 0,0.1,0.2,0.3    # sweep deletions
//	covertcap -sync-capacity 100 -pd 0.25     # degrade a traditional estimate
//	covertcap -n 4 -pd 0.2 -json              # machine-readable output
//
// -json emits the same wire schema the capserverd /v1/bounds endpoint
// serves (capserver.BoundsJSON / capserver.DegradeJSON), so scripted
// consumers can switch between the CLI and the service without
// re-parsing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/capserver"
	"repro/internal/channel"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "covertcap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("covertcap", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 4, "bits per symbol")
		pd      = fs.Float64("pd", 0.1, "deletion probability")
		pi      = fs.Float64("pi", 0, "insertion probability")
		ps      = fs.Float64("ps", 0, "substitution probability")
		sweepPd = fs.String("sweep-pd", "", "comma-separated Pd values to sweep")
		sweepPi = fs.String("sweep-pi", "", "comma-separated Pi values to sweep")
		syncCap = fs.Float64("sync-capacity", -1, "traditional synchronous estimate to degrade (Section 4.4)")
		format  = fs.String("format", "table", "output format: table | csv")
		jsonOut = fs.Bool("json", false, "emit JSON (the capserverd /v1/bounds wire schema)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonOut && *format != "table" {
		return fmt.Errorf("-json and -format are mutually exclusive")
	}

	if *syncCap >= 0 {
		corrected, err := core.Degrade(*syncCap, *pd)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emitJSON(capserver.DegradeJSON{TraditionalEstimate: *syncCap, Pd: *pd, Corrected: corrected})
		}
		fmt.Printf("traditional estimate: %.6g\n", *syncCap)
		fmt.Printf("corrected C(1-Pd):    %.6g  (Pd = %g)\n", corrected, *pd)
		return nil
	}

	pds, err := parseSweep(*sweepPd, *pd)
	if err != nil {
		return fmt.Errorf("sweep-pd: %w", err)
	}
	pis, err := parseSweep(*sweepPi, *pi)
	if err != nil {
		return fmt.Errorf("sweep-pi: %w", err)
	}

	if *jsonOut {
		var points []capserver.BoundsJSON
		for _, dpd := range pds {
			for _, dpi := range pis {
				b, err := core.ComputeBounds(channel.Params{N: *n, Pd: dpd, Pi: dpi, Ps: *ps})
				if err != nil {
					return err
				}
				points = append(points, capserver.FromBounds(b))
			}
		}
		return emitJSON(points)
	}

	csv := false
	switch *format {
	case "table":
		fmt.Println("N  Pd      Pi      C_upper    C_lower(T5)  C_lower(per-use)  C_conv     ratio")
	case "csv":
		csv = true
		fmt.Println("n,pd,pi,c_upper,c_lower_t5,c_lower_per_use,c_conv,ratio")
	default:
		return fmt.Errorf("unknown format %q (want table or csv)", *format)
	}
	for _, dpd := range pds {
		for _, dpi := range pis {
			b, err := core.ComputeBounds(channel.Params{N: *n, Pd: dpd, Pi: dpi, Ps: *ps})
			if err != nil {
				return err
			}
			if csv {
				fmt.Printf("%d,%g,%g,%g,%g,%g,%g,%g\n",
					*n, dpd, dpi, b.Upper, b.LowerT5, b.LowerPerUse, b.Cconv, b.Ratio)
			} else {
				fmt.Printf("%-2d %-7.4f %-7.4f %-10.4f %-12.4f %-17.4f %-10.4f %.4f\n",
					*n, dpd, dpi, b.Upper, b.LowerT5, b.LowerPerUse, b.Cconv, b.Ratio)
			}
		}
	}
	return nil
}

// emitJSON renders v as indented JSON on stdout.
func emitJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

// parseSweep parses a comma-separated float list, defaulting to a
// single value when empty.
func parseSweep(list string, fallback float64) ([]float64, error) {
	if list == "" {
		return []float64{fallback}, nil
	}
	parts := strings.Split(list, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
