package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), runErr
}

func TestRunPolicies(t *testing.T) {
	for _, policy := range []string{"roundrobin", "random", "lottery", "fuzzy"} {
		t.Run(policy, func(t *testing.T) {
			out, err := capture(t, func() error {
				return run([]string{"-policy", policy, "-quanta", "20000"})
			})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "corrected C(1-Pd)") {
				t.Fatalf("missing corrected capacity line:\n%s", out)
			}
		})
	}
}

func TestRunRoundRobinIsClean(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-policy", "roundrobin", "-quanta", "20000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "induced Pd, Pi:     0.0000, 0.0000") {
		t.Fatalf("round-robin should induce zero rates:\n%s", out)
	}
}

func TestRunSession(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-policy", "random", "-quanta", "400000", "-session"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "session rate:") {
		t.Fatalf("missing session output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-policy", "bogus"},
		{"-policy", "random", "-quanta", "0"},
		{"-policy", "lottery", "-sender-tickets", "0"},
		{"-policy", "fuzzy", "-fuzz", "2"},
		{"-nope"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
