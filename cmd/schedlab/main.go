// Command schedlab evaluates scheduling policies as covert channel
// countermeasures (the paper's Section 3 use case): it simulates the
// uniprocessor system, measures the deletion/insertion probabilities
// each policy induces on the shared-variable covert channel, and prints
// the traditional synchronous capacity estimate next to the paper's
// corrected estimate C(1-Pd). With -session it also runs the Appendix A
// counter protocol end to end inside the simulated system.
//
// Usage:
//
//	schedlab -policy random -quanta 500000
//	schedlab -policy fuzzy -fuzz 0.3 -bystanders 4 -session
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "schedlab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("schedlab", flag.ContinueOnError)
	var (
		policy     = fs.String("policy", "random", "scheduler: roundrobin | random | lottery | fuzzy")
		fuzz       = fs.Float64("fuzz", 0.3, "random perturbation probability (fuzzy)")
		senderW    = fs.Int("sender-tickets", 1, "sender lottery tickets (lottery)")
		receiverW  = fs.Int("receiver-tickets", 1, "receiver lottery tickets (lottery)")
		bystanders = fs.Int("bystanders", 0, "unrelated CPU-bound processes")
		pblock     = fs.Float64("pblock", 0, "probability a process blocks after its quantum")
		meanblock  = fs.Float64("meanblock", 3, "mean block duration in quanta")
		quanta     = fs.Int("quanta", 500000, "quanta to simulate")
		n          = fs.Int("n", 4, "bits per covert symbol")
		session    = fs.Bool("session", false, "also run the counter protocol end to end")
		seed       = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	makeScheduler := func() (sched.Scheduler, error) {
		switch *policy {
		case "roundrobin":
			return sched.NewRoundRobin(), nil
		case "random":
			return sched.NewRandom(), nil
		case "lottery":
			tickets := []int{*senderW, *receiverW}
			for i := 0; i < *bystanders; i++ {
				tickets = append(tickets, 1)
			}
			return sched.NewLottery(tickets)
		case "fuzzy":
			return sched.NewFuzzy(sched.NewRoundRobin(), *fuzz)
		default:
			return nil, fmt.Errorf("unknown policy %q", *policy)
		}
	}

	s, err := makeScheduler()
	if err != nil {
		return err
	}
	cfg := sched.Config{
		Scheduler:  s,
		Bystanders: *bystanders,
		PBlock:     *pblock,
		MeanBlock:  *meanblock,
		Quanta:     *quanta,
		Seed:       *seed,
	}
	rep, err := sched.Run(cfg)
	if err != nil {
		return err
	}
	pd, pi := rep.Rates()
	fmt.Printf("policy:             %s\n", rep.Policy)
	fmt.Printf("quanta:             %d\n", rep.Quanta)
	fmt.Printf("runs (S/R/other):   %d / %d / %d\n", rep.SenderRuns, rep.ReceiverRuns, rep.BystanderRuns)
	fmt.Printf("events (T/D/I):     %d / %d / %d\n", rep.Transmissions, rep.Deletions, rep.Insertions)
	fmt.Printf("induced Pd, Pi:     %.4f, %.4f\n", pd, pi)

	cSync := float64(*n)
	cCorr, err := core.Degrade(cSync, pd)
	if err != nil {
		return err
	}
	fmt.Printf("traditional C:      %.4f bits/use (synchronous model)\n", cSync)
	fmt.Printf("corrected C(1-Pd):  %.4f bits/use\n", cCorr)

	if *session {
		s2, err := makeScheduler()
		if err != nil {
			return err
		}
		cfg.Scheduler = s2
		msg := make([]uint32, 5000)
		src := rng.New(*seed + 2)
		for i := range msg {
			msg[i] = src.Symbol(*n)
		}
		res, err := sched.RunCovertSession(cfg, msg, *n)
		if err != nil {
			return err
		}
		fmt.Printf("session delivered:  %d/%d symbols (completed=%v)\n",
			res.Delivered, len(msg), res.Completed)
		fmt.Printf("session errors:     %d (rate %.4f)\n", res.SymbolErrors, res.ErrorRate())
		fmt.Printf("session rate:       %.4f bits/quantum\n", res.BitsPerQuantum())
	}
	return nil
}
