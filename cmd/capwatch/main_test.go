package main

import (
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/capserver"
	"repro/internal/cluster"
	"repro/internal/obs"
)

// TestWatchOnce renders one page against a real single-member cluster
// and checks the deterministic parts of the layout.
func TestWatchOnce(t *testing.T) {
	// Listener first: the member's own URL appears in the membership, so
	// the address must exist before the node does.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	reg := obs.NewRegistry()
	srv := capserver.New(capserver.Config{Workers: 2, QueueDepth: 16, Metrics: reg, SessionSweep: -1})
	node, err := cluster.NewNode(srv, cluster.Config{
		Membership: cluster.Membership{Members: []cluster.Member{{Name: "solo", URL: base}}},
		Self:       "solo",
		Metrics:    cluster.NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: node.Handler()}
	go func() { _ = hs.Serve(l) }()
	defer hs.Close()

	if resp, err := http.Get(base + "/v1/bounds?n=4&pd=0.2&pi=0.1"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	srv.TickHealth()

	var b strings.Builder
	if err := run([]string{"-target", base, "-once"}, &b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{
		"verdict=ok firing=0 pending=0",
		"solo",
		"alerts by rule:",
		"queue-rejects",
		"degraded-routing",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q:\n%s", want, page)
		}
	}
	// A second render of a quiesced cluster is byte-identical.
	var b2 strings.Builder
	if err := run([]string{"-target", base, "-once"}, &b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != page {
		t.Errorf("quiesced pages differ:\n--- a\n%s\n--- b\n%s", page, b2.String())
	}
}

// TestBenchCheckRoundTrip writes a trajectory and validates it.
func TestBenchCheckRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_alerts.json")
	var b strings.Builder
	if err := run([]string{"-mode", "bench", "-rules", "120", "-series", "12", "-ticks", "150", "-bench-out", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wrote "+path) {
		t.Fatalf("bench output: %s", b.String())
	}
	var c strings.Builder
	if err := run([]string{"-mode", "check", path}, &c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "ok") {
		t.Fatalf("check output: %s", c.String())
	}
}

// TestHarnessSmall runs the lifecycle harness once without assert.
func TestHarnessSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness in -short")
	}
	var b strings.Builder
	if err := run([]string{"-mode", "harness", "-jobs", "2"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pending->firing", "firing->inactive"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("harness output missing %q:\n%s", want, b.String())
		}
	}
}
