// Command capwatch is the live cluster monitor and the acceptance gate
// for the health verdict layer (internal/health): it polls any
// member's /v1/cluster/status and renders a deterministic one-page
// view of the fleet — per-member alert state, session pressure, cache
// effectiveness and route latency — or drives the alert-lifecycle
// fault harness and the rule-engine benchmark.
//
// Modes:
//
//	capwatch -target http://host:8080            # live view, repainted
//	                                             # every -interval
//	capwatch -target http://host:8080 -once      # one deterministic
//	                                             # page, then exit (CI)
//	capwatch -mode harness -assert               # kill/restart a member
//	                                             # and gate the exact
//	                                             # healthy -> firing ->
//	                                             # resolved timeline,
//	                                             # byte-identical at
//	                                             # -jobs 1 and -jobs 8
//	capwatch -mode bench -bench-out BENCH_alerts.json
//	                                             # rule-engine throughput
//	                                             # trajectory
//	capwatch -mode check BENCH_alerts.json       # validate a committed
//	                                             # trajectory
//
// The harness timeline and the rendered page are pure functions of
// their inputs: wall-clock timing goes to separate "timing:" lines so
// the deterministic part stays diffable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/health"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capwatch:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("capwatch", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "watch", "mode: watch | harness | bench | check")
		target   = fs.String("target", "http://127.0.0.1:8080", "watch mode: any cluster member's base URL")
		interval = fs.Duration("interval", 5*time.Second, "watch mode: repaint interval")
		once     = fs.Bool("once", false, "watch mode: render one page and exit")
		count    = fs.Int("count", 0, "watch mode: pages to render before exiting (0 = forever)")

		jobs    = fs.Int("jobs", 4, "harness mode: request send parallelism; the timeline must not depend on it")
		seed    = fs.Uint64("seed", 1, "harness mode: scenario seed (probe path, and with it the kill target)")
		reqTick = fs.Int("requests-per-tick", 0, "harness mode: per-tick workload (0 = default 12)")
		assert  = fs.Bool("assert", false, "harness mode: fail unless the full alert lifecycle and jobs-invariance hold")

		rules    = fs.Int("rules", 400, "bench mode: rule count")
		series   = fs.Int("series", 24, "bench mode: counter series count")
		ticks    = fs.Int("ticks", 600, "bench mode: evaluation ticks")
		benchOut = fs.String("bench-out", "", "bench mode: write the BENCH_alerts.json trajectory here")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "watch":
		return watch(out, *target, *interval, *once, *count)

	case "harness":
		opts := cluster.HealthHarnessOptions{
			Jobs:            *jobs,
			Seed:            *seed,
			RequestsPerTick: *reqTick,
			Out:             out,
		}
		report, survivors, err := cluster.RunHealthHarness(opts)
		if err != nil {
			return err
		}
		report.Format(out)
		fmt.Fprintf(out, "timing: wall=%v\n", report.Wall.Round(time.Millisecond))
		if !*assert {
			return nil
		}
		if err := report.Assert(survivors); err != nil {
			return err
		}
		// Jobs invariance: the same scenario at a different parallelism
		// must produce the identical timeline, byte for byte.
		alt := opts
		alt.Jobs = 1
		if opts.Jobs == 1 {
			alt.Jobs = 8
		}
		alt.Out = io.Discard
		report2, _, err := cluster.RunHealthHarness(alt)
		if err != nil {
			return err
		}
		t1 := strings.Join(report.Timeline, "\n")
		t2 := strings.Join(report2.Timeline, "\n")
		if t1 != t2 {
			return fmt.Errorf("timeline differs between -jobs %d and -jobs %d:\n--- a\n%s\n--- b\n%s",
				opts.Jobs, alt.Jobs, t1, t2)
		}
		fmt.Fprintf(out, "capwatch-assert: lifecycle, reset immunity and jobs-invariance (jobs %d == jobs %d) all hold\n",
			opts.Jobs, alt.Jobs)
		return nil

	case "bench":
		start := time.Now()
		res, err := health.RunBench(*rules, *series, *ticks)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "bench: %d rules x %d ticks over %d series: %d transitions, %.0f evals/s, ring %d bytes\n",
			res.Rules, res.Ticks, res.Series, res.Transitions, res.EvalsPerSec, res.RingBytes)
		fmt.Fprintf(out, "timing: wall=%v\n", time.Since(start).Round(time.Millisecond))
		if *benchOut != "" {
			body, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*benchOut, append(body, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *benchOut)
		}
		return nil

	case "check":
		path := *benchOut
		if fs.NArg() > 0 {
			path = fs.Arg(0)
		}
		if path == "" {
			return fmt.Errorf("check needs a trajectory file (positional or -bench-out)")
		}
		if err := health.CheckBench(path); err != nil {
			return err
		}
		fmt.Fprintf(out, "check: %s ok\n", path)
		return nil

	default:
		return fmt.Errorf("unknown mode %q (want watch, harness, bench or check)", *mode)
	}
}

// watch polls the status endpoint and renders pages until the page
// budget runs out.
func watch(out io.Writer, target string, interval time.Duration, once bool, count int) error {
	if once {
		count = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for page := 0; count == 0 || page < count; page++ {
		if page > 0 {
			time.Sleep(interval)
		}
		st, err := fetchStatus(client, target)
		if err != nil {
			return err
		}
		renderPage(out, target, st)
	}
	return nil
}

// fetchStatus pulls one federation snapshot.
func fetchStatus(client *http.Client, target string) (*cluster.ClusterStatus, error) {
	resp, err := client.Get(strings.TrimRight(target, "/") + cluster.StatusPath)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %d", target, resp.StatusCode)
	}
	var st cluster.ClusterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("bad status document: %w", err)
	}
	if st.Schema != cluster.StatusSchema {
		return nil, fmt.Errorf("status schema %q, want %q", st.Schema, cluster.StatusSchema)
	}
	return &st, nil
}

// renderPage writes the one-page cluster view. Everything printed
// derives from the snapshot document, whose ordering the federation
// layer already fixed, so a quiesced cluster renders byte-identically
// on every poll — the property `capwatch -once` leans on in CI.
func renderPage(out io.Writer, target string, st *cluster.ClusterStatus) {
	verdict := "ok"
	if st.Alerts.Firing > 0 {
		verdict = "FIRING"
	} else if st.Alerts.Pending > 0 {
		verdict = "pending"
	}
	if st.Partial {
		verdict += " (partial)"
	}
	fmt.Fprintf(out, "capwatch %s  verdict=%s firing=%d pending=%d degraded_total=%d\n",
		target, verdict, st.Alerts.Firing, st.Alerts.Pending, st.Totals["cluster_degraded_total"])
	if len(st.Alerts.FiringRules) > 0 {
		fmt.Fprintf(out, "firing: %s\n", strings.Join(st.Alerts.FiringRules, ", "))
	}
	fmt.Fprintf(out, "%-8s %-9s %6s %7s %9s %7s %6s  %s\n",
		"member", "health", "firing", "pending", "sessions", "cache%", "ring‰", "routes p50/p99 ms")
	for _, m := range st.Members {
		if !m.Healthy {
			fmt.Fprintf(out, "%-8s %-9s %s\n", m.Name, "DOWN", m.Error)
			continue
		}
		firing, pending := 0, 0
		if m.Alerts != nil {
			firing, pending = m.Alerts.Firing, m.Alerts.Pending
		}
		hits := m.Counters["capserver_cache_hits_total"]
		misses := m.Counters["capserver_cache_misses_total"]
		ratio := 0.0
		if hits+misses > 0 {
			ratio = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(out, "%-8s %-9s %6d %7d %9d %6.1f %6d  %s\n",
			m.Name, "ok", firing, pending,
			m.Counters["capserver_sessions_active"], ratio, st.RingPermille[m.Name],
			formatRoutes(m.Routes))
	}
	fmt.Fprintf(out, "alerts by rule:\n")
	for _, line := range alertRollup(st) {
		fmt.Fprintf(out, "  %s\n", line)
	}
}

// formatRoutes renders the per-route latency summaries on one line.
func formatRoutes(routes []cluster.RouteLatency) string {
	parts := make([]string, 0, len(routes))
	for _, r := range routes {
		parts = append(parts, fmt.Sprintf("%s %.3g/%.3g", r.Endpoint, r.P50MS, r.P99MS))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// alertRollup merges the members' verdicts into per-rule lines:
// "rule state(member,...)" with members sorted, worst state first.
func alertRollup(st *cluster.ClusterStatus) []string {
	type cell struct{ rule, state, member string }
	var cells []cell
	for _, m := range st.Members {
		if m.Alerts == nil {
			continue
		}
		for _, a := range m.Alerts.Alerts {
			cells = append(cells, cell{a.Rule, a.State, m.Name})
		}
	}
	byRule := make(map[string]map[string][]string)
	for _, c := range cells {
		if byRule[c.rule] == nil {
			byRule[c.rule] = make(map[string][]string)
		}
		byRule[c.rule][c.state] = append(byRule[c.rule][c.state], c.member)
	}
	rules := make([]string, 0, len(byRule))
	for rule := range byRule {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	lines := make([]string, 0, len(rules))
	for _, rule := range rules {
		var parts []string
		for _, state := range []string{"firing", "pending", "inactive"} {
			members := byRule[rule][state]
			if len(members) == 0 {
				continue
			}
			sort.Strings(members)
			parts = append(parts, fmt.Sprintf("%s(%s)", state, strings.Join(members, ",")))
		}
		lines = append(lines, fmt.Sprintf("%-24s %s", rule, strings.Join(parts, " ")))
	}
	return lines
}
