// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per paper artifact (Theorems 1–5, equations 6–7, Figure 4,
// Figure 5, Sections 3.1, 4.1 and 4.4, and the related-work baselines).
//
// Experiments run on a deterministic parallel runner: each experiment
// draws its randomness from an independent seed stream derived from
// -seed, so the tables on stdout are byte-identical for every -jobs
// value. The per-experiment timing summary goes to stderr, where it
// cannot perturb reproducible output.
//
// Observability: -trace records the instrumented experiments' channel
// uses, supervision events and kernel spans as JSONL (also
// byte-identical for every -jobs value; analyze with tracecap),
// -metrics writes the runner's per-experiment metrics in Prometheus
// text format, and -pprof captures CPU and heap profiles.
//
// Usage:
//
//	experiments [-only E3,E8] [-jobs 8] [-timeout 30s] [-seed 1]
//	            [-symbols 20000] [-coded 200] [-quanta 200000]
//	            [-ablations] [-summary=false]
//	            [-trace out.jsonl] [-metrics out.prom] [-pprof dir]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only       = fs.String("only", "", "comma-separated experiment subset (E1..E12, A1..A5)")
		seed       = fs.Uint64("seed", 1, "master random seed (per-experiment seeds are derived streams)")
		symbols    = fs.Int("symbols", 20000, "message length for protocol simulations")
		coded      = fs.Int("coded", 200, "message length for coding experiments")
		quanta     = fs.Int("quanta", 200000, "scheduler simulation quanta")
		ablations  = fs.Bool("ablations", false, "also run the ablation studies A1..A5")
		jobs       = fs.Int("jobs", 0, "max concurrent experiments (0 = GOMAXPROCS); does not affect output")
		timeout    = fs.Duration("timeout", 0, "per-experiment wall-time limit (0 = none)")
		summary    = fs.Bool("summary", true, "print the runner timing summary to stderr")
		inject     = fs.String("inject", "", "fault-injection spec for E13's custom regime, e.g. 'outage=0.2;jam=0.1'")
		traceOut   = fs.String("trace", "", "write the instrumented experiments' JSONL trace to this file")
		metricsOut = fs.String("metrics", "", "write per-experiment runner metrics (Prometheus text) to this file")
		pprofDir   = fs.String("pprof", "", "write cpu.pprof and heap.pprof for this run into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofDir != "" {
		stop, perr := obs.StartProfiles(*pprofDir)
		if perr != nil {
			return perr
		}
		defer func() {
			if e := stop(); e != nil && err == nil {
				err = e
			}
		}()
	}
	cfg := experiments.Config{
		Symbols:      *symbols,
		CodedSymbols: *coded,
		Quanta:       *quanta,
		Seed:         *seed,
		Inject:       *inject,
	}
	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			ids = append(ids, id)
		}
	}
	exps := experiments.Registry()
	wantAblations := *ablations
	for _, id := range ids {
		if strings.HasPrefix(id, "A") {
			wantAblations = true
		}
	}
	if wantAblations {
		exps = append(exps, experiments.AblationRegistry()...)
	}
	var traceSet *obs.TraceSet
	if *traceOut != "" {
		traceSet = obs.NewTraceSet()
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	results, err := experiments.Run(context.Background(), cfg, exps, experiments.RunOptions{
		Jobs:    *jobs,
		Timeout: *timeout,
		Only:    ids,
		Trace:   traceSet,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	tables, err := experiments.Tables(results)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Format(os.Stdout); err != nil {
			return err
		}
	}
	if traceSet != nil {
		if err := writeFile(*traceOut, traceSet.WriteTo); err != nil {
			return err
		}
	}
	if reg != nil {
		if err := writeFile(*metricsOut, func(w io.Writer) (int64, error) { reg.WriteProm(w); return 0, nil }); err != nil {
			return err
		}
	}
	if *summary {
		if err := experiments.Summary(results).Format(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path, streams content into it, and surfaces the
// Close error (the write may be buffered by the OS).
func writeFile(path string, write func(io.Writer) (int64, error)) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
