// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per paper artifact (Theorems 1–5, equations 6–7, Figure 4,
// Figure 5, Sections 3.1, 4.1 and 4.4, and the related-work baselines).
//
// Experiments run on a deterministic parallel runner: each experiment
// draws its randomness from an independent seed stream derived from
// -seed, so the tables on stdout are byte-identical for every -jobs
// value. The per-experiment timing summary goes to stderr, where it
// cannot perturb reproducible output.
//
// Usage:
//
//	experiments [-only E3,E8] [-jobs 8] [-timeout 30s] [-seed 1]
//	            [-symbols 20000] [-coded 200] [-quanta 200000]
//	            [-ablations] [-summary=false]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only      = fs.String("only", "", "comma-separated experiment subset (E1..E12, A1..A5)")
		seed      = fs.Uint64("seed", 1, "master random seed (per-experiment seeds are derived streams)")
		symbols   = fs.Int("symbols", 20000, "message length for protocol simulations")
		coded     = fs.Int("coded", 200, "message length for coding experiments")
		quanta    = fs.Int("quanta", 200000, "scheduler simulation quanta")
		ablations = fs.Bool("ablations", false, "also run the ablation studies A1..A5")
		jobs      = fs.Int("jobs", 0, "max concurrent experiments (0 = GOMAXPROCS); does not affect output")
		timeout   = fs.Duration("timeout", 0, "per-experiment wall-time limit (0 = none)")
		summary   = fs.Bool("summary", true, "print the runner timing summary to stderr")
		inject    = fs.String("inject", "", "fault-injection spec for E13's custom regime, e.g. 'outage=0.2;jam=0.1'")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Symbols:      *symbols,
		CodedSymbols: *coded,
		Quanta:       *quanta,
		Seed:         *seed,
		Inject:       *inject,
	}
	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.ToUpper(strings.TrimSpace(id)); id != "" {
			ids = append(ids, id)
		}
	}
	exps := experiments.Registry()
	wantAblations := *ablations
	for _, id := range ids {
		if strings.HasPrefix(id, "A") {
			wantAblations = true
		}
	}
	if wantAblations {
		exps = append(exps, experiments.AblationRegistry()...)
	}
	results, err := experiments.Run(context.Background(), cfg, exps, experiments.RunOptions{
		Jobs:    *jobs,
		Timeout: *timeout,
		Only:    ids,
	})
	if err != nil {
		return err
	}
	tables, err := experiments.Tables(results)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.Format(os.Stdout); err != nil {
			return err
		}
	}
	if *summary {
		if err := experiments.Summary(results).Format(os.Stderr); err != nil {
			return err
		}
	}
	return nil
}
