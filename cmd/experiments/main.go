// Command experiments regenerates every table in EXPERIMENTS.md: one
// experiment per paper artifact (Theorems 1–5, equations 6–7, Figure 4,
// Figure 5, Sections 3.1, 4.1 and 4.4, and the related-work baselines).
//
// Usage:
//
//	experiments [-only E3] [-seed 1] [-symbols 20000] [-coded 200] [-quanta 200000]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only      = fs.String("only", "", "run a single experiment (E1..E11, A1..A3)")
		seed      = fs.Uint64("seed", 1, "random seed")
		symbols   = fs.Int("symbols", 20000, "message length for protocol simulations")
		coded     = fs.Int("coded", 200, "message length for coding experiments")
		quanta    = fs.Int("quanta", 200000, "scheduler simulation quanta")
		ablations = fs.Bool("ablations", false, "also run the ablation studies A1..A3")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Symbols:      *symbols,
		CodedSymbols: *coded,
		Quanta:       *quanta,
		Seed:         *seed,
	}
	tables, err := experiments.All(cfg)
	if err != nil {
		return err
	}
	wantAblations := *ablations || strings.HasPrefix(*only, "A")
	if wantAblations {
		abl, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		tables = append(tables, abl...)
	}
	printed := 0
	for _, t := range tables {
		if *only != "" && t.ID != *only {
			continue
		}
		if err := t.Format(os.Stdout); err != nil {
			return err
		}
		printed++
	}
	if printed == 0 {
		return fmt.Errorf("no experiment matches %q (valid: E1..E11, A1..A3)", *only)
	}
	return nil
}
