package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
)

// captureFD runs fn with *fd (os.Stdout or os.Stderr) redirected and
// returns what it wrote. The pipe is drained concurrently so large
// tables cannot block the writer.
func captureFD(t *testing.T, fd **os.File, fn func() error) (string, error) {
	t.Helper()
	old := *fd
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	*fd = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	*fd = old
	return <-done, runErr
}

// capture redirects os.Stdout, which is where the tables go.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	return captureFD(t, &os.Stdout, fn)
}

// fastArgs shrinks the workloads for test speed.
func fastArgs(extra ...string) []string {
	args := []string{"-symbols", "3000", "-coded", "60", "-quanta", "20000"}
	return append(args, extra...)
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs("-only", "E4")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E4 — Equations 6-7") {
		t.Fatalf("missing E4 table:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Fatal("-only leaked other experiments")
	}
}

func TestRunAllExperiments(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E5 —", "E10 —", "E11 —"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing %q in full run", id)
		}
	}
	if strings.Contains(out, "A1 —") {
		t.Error("ablations printed without -ablations")
	}
}

func TestRunAblationOnly(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs("-only", "A3")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A3 — Ablation") {
		t.Fatalf("missing A3 table:\n%s", out)
	}
}

// TestRunJobsDeterministic is the acceptance check: stdout must be
// byte-identical between -jobs 1 and -jobs 8 because every experiment
// derives its randomness from its own seed stream, and the (timing)
// summary is kept off stdout.
func TestRunJobsDeterministic(t *testing.T) {
	serial, err := capture(t, func() error { return run(fastArgs("-jobs", "1")) })
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := capture(t, func() error { return run(fastArgs("-jobs", "8")) })
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Fatalf("-jobs 8 output differs from -jobs 1:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			serial, parallel)
	}
}

// TestRunSummaryOnStderr pins the stream split: timing summary on
// stderr only, and suppressible with -summary=false.
func TestRunSummaryOnStderr(t *testing.T) {
	var stdout string
	stderr, err := captureFD(t, &os.Stderr, func() error {
		var inner error
		stdout, inner = capture(t, func() error { return run(fastArgs("-only", "E4")) })
		return inner
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "uses/sec") {
		t.Errorf("summary table missing from stderr:\n%s", stderr)
	}
	if strings.Contains(stdout, "uses/sec") {
		t.Error("summary table leaked onto stdout")
	}
	stderr, err = captureFD(t, &os.Stderr, func() error {
		_, inner := capture(t, func() error { return run(fastArgs("-only", "E4", "-summary=false")) })
		return inner
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stderr, "uses/sec") {
		t.Error("-summary=false still printed the summary")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run(fastArgs("-only", "E99")) }); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestRunFlagError(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-garbage"}) }); err == nil {
		t.Fatal("expected flag parse error")
	}
}

// TestRunObservabilityOutputs checks the -trace/-metrics/-pprof
// surface: the JSONL trace is written and analyzable, the metrics
// exposition carries the per-experiment runner series, and both
// profile files exist and are non-empty.
func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/run.jsonl"
	metrics := dir + "/run.prom"
	_, err := capture(t, func() error {
		return run(fastArgs("-only", "E5,E13", "-trace", trace, "-metrics", metrics, "-pprof", dir))
	})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	sum, err := obs.ReadTrace(tf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Uses() == 0 || sum.Spans["ba"] == nil {
		t.Errorf("trace missing channel uses or ba spans: %+v", sum)
	}
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`experiments_runs_total{id="E5"} 1`, `experiments_uses_total{id="E13"}`} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, prom)
		}
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(dir + "/" + name)
		if err != nil {
			t.Errorf("profile %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

// TestRunTraceDeterministicAcrossJobs checks the recorded trace file
// is byte-identical between -jobs 1 and -jobs 8: tracing must not
// leak scheduling order into the reproducible outputs.
func TestRunTraceDeterministicAcrossJobs(t *testing.T) {
	dir := t.TempDir()
	runTrace := func(jobs, name string) []byte {
		path := dir + "/" + name
		if _, err := capture(t, func() error {
			return run(fastArgs("-only", "E13", "-jobs", jobs, "-trace", path))
		}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := runTrace("1", "serial.jsonl")
	parallel := runTrace("8", "parallel.jsonl")
	if !bytes.Equal(serial, parallel) {
		t.Fatal("-jobs 8 trace differs from -jobs 1 trace")
	}
}
