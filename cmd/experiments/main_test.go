package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs fn with os.Stdout redirected and returns what it wrote.
// The pipe is drained concurrently so large tables cannot block the
// writer.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	if cerr := w.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	os.Stdout = old
	return <-done, runErr
}

// fastArgs shrinks the workloads for test speed.
func fastArgs(extra ...string) []string {
	args := []string{"-symbols", "3000", "-coded", "60", "-quanta", "20000"}
	return append(args, extra...)
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs("-only", "E4")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "E4 — Equations 6-7") {
		t.Fatalf("missing E4 table:\n%s", out)
	}
	if strings.Contains(out, "E1 —") {
		t.Fatal("-only leaked other experiments")
	}
}

func TestRunAllExperiments(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs()) })
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1 —", "E5 —", "E10 —", "E11 —"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing %q in full run", id)
		}
	}
	if strings.Contains(out, "A1 —") {
		t.Error("ablations printed without -ablations")
	}
}

func TestRunAblationOnly(t *testing.T) {
	out, err := capture(t, func() error { return run(fastArgs("-only", "A3")) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "A3 — Ablation") {
		t.Fatalf("missing A3 table:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run(fastArgs("-only", "E99")) }); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestRunFlagError(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-garbage"}) }); err == nil {
		t.Fatal("expected flag parse error")
	}
}
