// Command kernelbench measures the optimized hot-path kernels against
// the retained reference implementations and writes the before/after
// trajectory to a machine-readable JSON file (BENCH_kernels.json).
//
// The three kernel families are the ones the speed pass rewrote:
//
//   - ba_capacity        Blahut–Arimoto capacity solves over the E5
//     converted-channel grid (internal/infotheory batched inner loops
//     vs. the scalar CapacityReference);
//   - seq_decode /       sequential and drift-trellis convolutional
//     drift_decode       decoding of E6-style frames (pooled buffers,
//     flat DP tables, branch-metric memoization vs. the
//     container/heap + map originals);
//   - channel_transmit / per-use Definition 1 simulation (integer
//     binary_transmit    thresholds and word-at-a-time bitset blits
//     vs. the float per-use reference).
//
// Every pair runs the current kernel and its reference on identical
// prebuilt inputs, so the ratio is pure kernel time. The references are
// the pre-optimization implementations kept for differential testing;
// the differential suites assert the outputs are identical, this tool
// records how much faster the identical answers arrive.
//
// Usage:
//
//	kernelbench [-out BENCH_kernels.json] [-smoke]
//	kernelbench -check BENCH_kernels.json
//
// -smoke shrinks the measurement windows for CI; -check validates that
// an existing trajectory file parses and carries the expected metric
// keys without running any benchmarks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/channel"
	"repro/internal/coding/conv"
	"repro/internal/core"
	"repro/internal/infotheory"
	"repro/internal/rng"
)

// Schema is the trajectory file's format tag. Bump on layout changes.
const Schema = "capest/bench-kernels/v1"

// kernelPairs names every measured kernel; the file must carry
// <name> and <name>_reference benchmarks plus a speedups entry per
// name. -check enforces this list.
var kernelPairs = []string{
	"ba_capacity",
	"seq_decode",
	"drift_decode",
	"channel_transmit",
	"binary_transmit",
}

// Benchmark is one measured kernel run.
type Benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	Ops     int     `json:"ops"`
}

// Trajectory is the BENCH_kernels.json document.
type Trajectory struct {
	Schema     string             `json:"schema"`
	Go         string             `json:"go"`
	Mode       string             `json:"mode"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups"`
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "trajectory file to write")
	smoke := flag.Bool("smoke", false, "shrink measurement windows (CI smoke mode)")
	check := flag.String("check", "", "validate an existing trajectory file and exit")
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("kernelbench: %s ok (%d kernel pairs)\n", *check, len(kernelPairs))
		return
	}

	minDur := 300 * time.Millisecond
	if *smoke {
		minDur = 25 * time.Millisecond
	}
	traj, err := run(minDur, *smoke)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kernelbench: %v\n", err)
		os.Exit(1)
	}
	for _, name := range kernelPairs {
		fmt.Printf("%-18s %8.2fx\n", name, traj.Speedups[name])
	}
	fmt.Printf("wrote %s\n", *out)
}

// run measures every kernel pair and assembles the trajectory.
func run(minDur time.Duration, smoke bool) (*Trajectory, error) {
	traj := &Trajectory{
		Schema:   Schema,
		Go:       runtime.Version(),
		Mode:     map[bool]string{false: "full", true: "smoke"}[smoke],
		Speedups: make(map[string]float64),
	}
	pairs := []struct {
		name string
		make func(smoke bool) (cur, ref func() error, err error)
	}{
		{"ba_capacity", makeBA},
		{"seq_decode", makeSeqDecode},
		{"drift_decode", makeDriftDecode},
		{"channel_transmit", makeChannelTransmit},
		{"binary_transmit", makeBinaryTransmit},
	}
	for _, p := range pairs {
		cur, ref, err := p.make(smoke)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.name, err)
		}
		curBench, err := measure(p.name, minDur, cur)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.name, err)
		}
		refBench, err := measure(p.name+"_reference", minDur, ref)
		if err != nil {
			return nil, fmt.Errorf("%s_reference: %v", p.name, err)
		}
		traj.Benchmarks = append(traj.Benchmarks, curBench, refBench)
		traj.Speedups[p.name] = refBench.NsPerOp / curBench.NsPerOp
	}
	return traj, nil
}

// measure runs fn repeatedly for at least minDur (after one warmup op)
// and reports the mean ns/op.
func measure(name string, minDur time.Duration, fn func() error) (Benchmark, error) {
	if err := fn(); err != nil {
		return Benchmark{}, err
	}
	var ops int
	start := time.Now()
	for time.Since(start) < minDur {
		if err := fn(); err != nil {
			return Benchmark{}, err
		}
		ops++
	}
	elapsed := time.Since(start)
	return Benchmark{
		Name:    name,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(ops),
		Ops:     ops,
	}, nil
}

// makeBA prebuilds the E5 converted-channel grid (N in {1,2,4,6}, Pi in
// {0.01,0.05,0.2,0.5}) and times full Blahut–Arimoto solves at the E5
// tolerance. One op = all 16 solves.
func makeBA(smoke bool) (cur, ref func() error, err error) {
	ns := []int{1, 2, 4, 6}
	pis := []float64{0.01, 0.05, 0.2, 0.5}
	if smoke {
		ns = []int{1, 4}
		pis = []float64{0.05, 0.2}
	}
	var dmcs []*infotheory.DMC
	for _, n := range ns {
		for _, pi := range pis {
			dmc, err := core.ConvertedChannelDMC(n, pi)
			if err != nil {
				return nil, nil, err
			}
			dmcs = append(dmcs, dmc)
		}
	}
	cur = func() error {
		for _, dmc := range dmcs {
			if _, err := dmc.Capacity(1e-11, 0); err != nil {
				return err
			}
		}
		return nil
	}
	ref = func() error {
		for _, dmc := range dmcs {
			if _, err := dmc.CapacityReference(1e-11, 0); err != nil {
				return err
			}
		}
		return nil
	}
	return cur, ref, nil
}

// convFrames encodes and transmits E6-style frames (96 message bits,
// conv(7,5), binary deletion–insertion at pd=pi=0.004) with fixed
// seeds, outside any timed region.
func convFrames(frames int) (c *conv.Code, recvs [][]byte, msgBits int, err error) {
	c = conv.Standard()
	const bits = 96
	src := rng.New(117)
	for f := 0; f < frames; f++ {
		msg := make([]byte, bits)
		for i := range msg {
			msg[i] = src.Bit()
		}
		cw, err := c.Encode(msg)
		if err != nil {
			return nil, nil, 0, err
		}
		ch, err := channel.NewBinaryDI(0.004, 0.004, 0, rng.New(400+uint64(f)))
		if err != nil {
			return nil, nil, 0, err
		}
		recv, err := ch.Transmit(cw)
		if err != nil {
			return nil, nil, 0, err
		}
		recvs = append(recvs, recv)
	}
	return c, recvs, bits, nil
}

// makeSeqDecode times sequential decoding of the prebuilt frames. One
// op = decode every frame. Decoding erasures (work-limit hits) count as
// measured work, not errors, as in E6.
func makeSeqDecode(smoke bool) (cur, ref func() error, err error) {
	frames := 6
	if smoke {
		frames = 2
	}
	c, recvs, msgBits, err := convFrames(frames)
	if err != nil {
		return nil, nil, err
	}
	params := conv.SequentialParams{Pd: 0.004, Pi: 0.004, MaxDrift: 12}
	cur = func() error {
		for _, recv := range recvs {
			c.DecodeSequential(recv, msgBits, params)
		}
		return nil
	}
	ref = func() error {
		for _, recv := range recvs {
			c.DecodeSequentialReference(recv, msgBits, params)
		}
		return nil
	}
	return cur, ref, nil
}

// makeDriftDecode times drift-trellis Viterbi decoding of the same
// frame shape. One op = decode every frame.
func makeDriftDecode(smoke bool) (cur, ref func() error, err error) {
	frames := 4
	if smoke {
		frames = 1
	}
	c, recvs, msgBits, err := convFrames(frames)
	if err != nil {
		return nil, nil, err
	}
	params := conv.DriftParams{Pd: 0.004, Pi: 0.004, MaxDrift: 12}
	cur = func() error {
		for _, recv := range recvs {
			if _, err := c.DecodeDrift(recv, msgBits, params); err != nil {
				return err
			}
		}
		return nil
	}
	ref = func() error {
		for _, recv := range recvs {
			if _, err := c.DecodeDriftReference(recv, msgBits, params); err != nil {
				return err
			}
		}
		return nil
	}
	return cur, ref, nil
}

// makeChannelTransmit times the Definition 1 per-use simulation at
// N=4 over a fixed symbol stream. The channel (and its seeded source)
// is rebuilt inside the op so both variants consume identical draws;
// construction is a few hundred ns against a multi-hundred-µs op.
func makeChannelTransmit(smoke bool) (cur, ref func() error, err error) {
	symbols := 100000
	if smoke {
		symbols = 10000
	}
	p := channel.Params{N: 4, Pd: 0.1, Pi: 0.05, Ps: 0.02}
	gen := rng.New(7)
	input := make([]uint32, symbols)
	for i := range input {
		input[i] = gen.Symbol(p.N)
	}
	cur = func() error {
		ch, err := channel.NewDeletionInsertion(p, rng.New(11))
		if err != nil {
			return err
		}
		ch.Transmit(input)
		return nil
	}
	ref = func() error {
		ch, err := channel.NewDeletionInsertion(p, rng.New(11))
		if err != nil {
			return err
		}
		ch.TransmitReference(input)
		return nil
	}
	return cur, ref, nil
}

// makeBinaryTransmit times the word-at-a-time bitset engine (BinaryDI)
// against the scalar per-use reference on the same bit stream.
func makeBinaryTransmit(smoke bool) (cur, ref func() error, err error) {
	nbits := 200000
	if smoke {
		nbits = 20000
	}
	gen := rng.New(13)
	bits := make([]byte, nbits)
	syms := make([]uint32, nbits)
	for i := range bits {
		bits[i] = gen.Bit()
		syms[i] = uint32(bits[i])
	}
	cur = func() error {
		ch, err := channel.NewBinaryDI(0.01, 0.01, 0.005, rng.New(17))
		if err != nil {
			return err
		}
		_, err = ch.Transmit(bits)
		return err
	}
	ref = func() error {
		ch, err := channel.NewDeletionInsertion(channel.Params{N: 1, Pd: 0.01, Pi: 0.01, Ps: 0.005}, rng.New(17))
		if err != nil {
			return err
		}
		ch.TransmitReference(syms)
		return nil
	}
	return cur, ref, nil
}

// checkFile validates a trajectory file: it must parse, carry the
// current schema tag, and hold a positive ns_per_op benchmark pair and
// a speedup entry for every kernel in kernelPairs.
func checkFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var traj Trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if traj.Schema != Schema {
		return fmt.Errorf("%s: schema %q, want %q", path, traj.Schema, Schema)
	}
	byName := make(map[string]Benchmark, len(traj.Benchmarks))
	for _, bm := range traj.Benchmarks {
		byName[bm.Name] = bm
	}
	for _, name := range kernelPairs {
		for _, n := range []string{name, name + "_reference"} {
			bm, ok := byName[n]
			if !ok {
				return fmt.Errorf("%s: missing benchmark %q", path, n)
			}
			if bm.NsPerOp <= 0 || bm.Ops <= 0 {
				return fmt.Errorf("%s: benchmark %q has degenerate measurements (%+v)", path, n, bm)
			}
		}
		if s, ok := traj.Speedups[name]; !ok || s <= 0 {
			return fmt.Errorf("%s: missing or degenerate speedup for %q", path, name)
		}
	}
	return nil
}
