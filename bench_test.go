// Package repro holds the top-level benchmark harness: one testing.B
// benchmark per experiment in the registry (E1–E13 and A1–A5). Each
// benchmark re-runs the full experiment per iteration and reports its
// headline quantity as a custom metric, so `go test -bench=.` both
// times the reproduction pipeline and surfaces the reproduced numbers.
// The full tables are printed by `go run ./cmd/experiments`.
package repro

import (
	"context"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchConfig keeps a single experiment iteration around a second.
func benchConfig() experiments.Config {
	return experiments.Config{Symbols: 10000, CodedSymbols: 120, Quanta: 100000, Seed: 1}
}

// metric extracts a named column of a row as a float.
func metric(b *testing.B, t experiments.Table, row int, col string) float64 {
	b.Helper()
	for i, h := range t.Header {
		if h == col {
			v, err := strconv.ParseFloat(t.Rows[row][i], 64)
			if err != nil {
				b.Fatalf("%s row %d col %q: %v", t.ID, row, col, err)
			}
			return v
		}
	}
	b.Fatalf("%s: column %q not found", t.ID, col)
	return 0
}

func BenchmarkE1UpperBound(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E1UpperBound(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, len(last.Rows)-1, "ratio"), "MI/bound")
}

func BenchmarkE2FeedbackARQ(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E2FeedbackARQ(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// Row with N=4, Pd=0.25.
	b.ReportMetric(metric(b, last, 7, "measured(bits/use)"), "bits/use")
	b.ReportMetric(metric(b, last, 7, "C=N(1-Pd)"), "bound")
}

func BenchmarkE3CounterProtocol(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E3CounterProtocol(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 5, "meas/use"), "bits/use")
	b.ReportMetric(metric(b, last, 5, "C_perUse"), "bound")
}

func BenchmarkE4Convergence(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E4Convergence(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, len(last.Rows)-1, "ratio(Pd=0.1)"), "ratio@N16")
}

func BenchmarkE5BlahutArimoto(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E5BlahutArimoto(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, len(last.Rows)-1, "C_conv(BA)"), "bits")
}

func BenchmarkE6NoSyncCoding(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E6NoSyncCoding(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 0, "rate(info bits/ch.bit)"), "wm-rate")
	b.ReportMetric(metric(b, last, 1, "rate(info bits/ch.bit)"), "conv-rate")
}

func BenchmarkE7CommonEvents(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E7CommonEvents(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 2, "ratio"), "event/feedback")
}

func BenchmarkE8Scheduler(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E8Scheduler(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	row := -1
	for r, cells := range last.Rows {
		if cells[0] == "random" {
			row = r
			break
		}
	}
	if row == -1 {
		b.Fatal("no random-policy row in E8")
	}
	b.ReportMetric(metric(b, last, row, "C_corrected"), "random-sched-C")
}

func BenchmarkE9MLS(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E9MLS(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 1, "leak(bits/use)"), "bits/use")
}

func BenchmarkE10Baselines(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E10Baselines(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 0, "C_corrected"), "stc-corrected")
}

func BenchmarkE11DeletionRates(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E11DeletionRates(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 1, "I_n/n (n=10)"), "rate@pd0.1")
}

func BenchmarkE12TimingChannel(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E12TimingChannel(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 0, "C_sync(b/time)"), "clean-sync-C")
	b.ReportMetric(metric(b, last, len(last.Rows)-1, "C_corrected"), "miss0.3-corrected")
}

// benchAll runs the full experiment batch through the runner with the given
// worker count and reports aggregate channel-uses throughput. Comparing
// BenchmarkAllSerial against BenchmarkAllParallel shows the wall-clock
// gain from concurrent experiments on multi-core machines; the emitted
// tables are identical either way.
func benchAll(b *testing.B, jobs int) {
	b.Helper()
	cfg := benchConfig()
	var uses int64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Run(context.Background(), cfg,
			experiments.Registry(), experiments.RunOptions{Jobs: jobs})
		if err != nil {
			b.Fatal(err)
		}
		uses = 0
		for _, r := range results {
			if r.Err != nil {
				b.Fatalf("%s: %v", r.Experiment.ID, r.Err)
			}
			uses += r.Uses
		}
	}
	b.ReportMetric(float64(uses)/b.Elapsed().Seconds()*float64(b.N), "uses/sec")
}

func BenchmarkE13HostileRegimes(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.E13HostileRegimes(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	// First row is the clean calibration run of the first protocol.
	b.ReportMetric(metric(b, last, 0, "rate(b/use)"), "clean-rate")
}

func BenchmarkAllSerial(b *testing.B)   { benchAll(b, 1) }
func BenchmarkAllParallel(b *testing.B) { benchAll(b, runtime.GOMAXPROCS(0)) }

func BenchmarkAblationA1DriftWindow(b *testing.B) {
	cfg := benchConfig()
	cfg.CodedSymbols = 60
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A1DriftWindow(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA2OuterRedundancy(b *testing.B) {
	cfg := benchConfig()
	cfg.CodedSymbols = 90
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A2OuterRedundancy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA3SparseLength(b *testing.B) {
	cfg := benchConfig()
	cfg.CodedSymbols = 60
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A3SparseLength(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationA4Burstiness(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.A4Burstiness(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 0, "meas(bits/use)"), "bits/use")
	b.ReportMetric(metric(b, last, 0, "C_perUse(stat)"), "bound")
}

func BenchmarkAblationA5FeedbackDelay(b *testing.B) {
	var last experiments.Table
	for i := 0; i < b.N; i++ {
		t, err := experiments.A5FeedbackDelay(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(metric(b, last, 2, "measured(bits/use)"), "delay2-rate")
}
