package timing

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func validConfig() Config {
	return Config{D0: 1, D1: 3, Seed: 1}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero d0", func(c *Config) { c.D0 = 0 }},
		{"d1 below d0", func(c *Config) { c.D1 = 0.5 }},
		{"negative jitter", func(c *Config) { c.Jitter = -1 }},
		{"negative granularity", func(c *Config) { c.Granularity = -1 }},
		{"pmiss", func(c *Config) { c.PMiss = 0.95 }},
		{"pspurious", func(c *Config) { c.PSpurious = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func randomBits(seed uint64, n int) []byte {
	src := rng.New(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = src.Bit()
	}
	return out
}

func TestCleanChannelIsPerfect(t *testing.T) {
	ch, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(2, 2000)
	recv, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recv, bits) {
		t.Fatal("noiseless timing channel corrupted the stream")
	}
}

func TestTransmitRejectsNonBinary(t *testing.T) {
	ch, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transmit([]byte{0, 2}); err == nil {
		t.Fatal("expected bit validation error")
	}
}

func TestJitterCausesSubstitutions(t *testing.T) {
	cfg := validConfig()
	cfg.Jitter = 1.0 // threshold margin is 1.0, so errors are common
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(3, 5000)
	recv, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(recv) != len(bits) {
		t.Fatalf("length changed without misses: %d vs %d", len(recv), len(bits))
	}
	diff := 0
	for i := range bits {
		if recv[i] != bits[i] {
			diff++
		}
	}
	// One-sigma margin: error rate ~ Phi(-1) ~ 16%.
	rate := float64(diff) / float64(len(bits))
	if rate < 0.08 || rate > 0.25 {
		t.Fatalf("substitution rate %v, want ~0.16", rate)
	}
}

func TestGranularityCoarseningHurts(t *testing.T) {
	// The fuzzy-time countermeasure: with granularity comparable to
	// the duration difference, classifications degrade relative to a
	// fine clock at the same jitter.
	// Granularity must be coarse enough to alias D0 and D1 onto the
	// same tick (here 8 > 2*D1); a grid that still separates the two
	// durations leaves classification intact.
	fine := validConfig()
	fine.Jitter = 0.5
	coarse := fine
	coarse.Granularity = 8
	bits := randomBits(4, 6000)

	errRate := func(cfg Config) float64 {
		ch, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ch.Transmit(bits)
		if err != nil {
			t.Fatal(err)
		}
		diff := 0
		for i := range bits {
			if recv[i] != bits[i] {
				diff++
			}
		}
		return float64(diff) / float64(len(bits))
	}
	if ef, ec := errRate(fine), errRate(coarse); ec <= ef {
		t.Fatalf("coarse clock error %v should exceed fine clock error %v", ec, ef)
	}
}

func TestMissesShortenStream(t *testing.T) {
	cfg := validConfig()
	cfg.PMiss = 0.2
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(5, 10000)
	recv, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(recv)) / float64(len(bits))
	if math.Abs(ratio-0.8) > 0.02 {
		t.Fatalf("received/sent ratio %v, want ~0.8", ratio)
	}
}

func TestSpuriousEventsLengthenStream(t *testing.T) {
	cfg := validConfig()
	cfg.PSpurious = 0.15
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(6, 10000)
	recv, err := ch.Transmit(bits)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(len(recv)) / float64(len(bits))
	if math.Abs(ratio-1.15) > 0.02 {
		t.Fatalf("received/sent ratio %v, want ~1.15", ratio)
	}
}

func TestEstimateParamsRecoversRates(t *testing.T) {
	cfg := validConfig()
	cfg.PMiss = 0.1
	cfg.PSpurious = 0.05
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ch.EstimateParams(8000)
	if err != nil {
		t.Fatal(err)
	}
	// Alignment over a binary alphabet is biased low: inserted bits
	// often coincide with neighbours and deletion+insertion pairs merge
	// into substitutions. The estimates must still be clearly non-zero
	// and ordered like the true rates (PMiss = 0.1 > PSpurious = 0.05).
	if p.Pd < 0.04 || p.Pd > 0.15 {
		t.Errorf("estimated Pd = %v, want near 0.1", p.Pd)
	}
	if p.Pi < 0.01 || p.Pi > 0.1 {
		t.Errorf("estimated Pi = %v, want below-but-near 0.05", p.Pi)
	}
	if p.Pd <= p.Pi {
		t.Errorf("estimated Pd %v should exceed estimated Pi %v", p.Pd, p.Pi)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("estimated params invalid: %v", err)
	}
}

func TestEstimateParamsValidation(t *testing.T) {
	ch, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.EstimateParams(10); err == nil {
		t.Fatal("expected calibration length error")
	}
}

func TestSynchronousCapacityCleanChannel(t *testing.T) {
	// No jitter: the synchronous estimate is the noiseless timing
	// capacity with durations {1, 3}.
	ch, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.SynchronousCapacity(3000)
	if err != nil {
		t.Fatal(err)
	}
	// Root of x^-1 + x^-3 = 1 -> C = log2(x0) ~ 0.5515.
	if math.Abs(got-0.5515) > 0.01 {
		t.Fatalf("synchronous capacity %v, want ~0.5515", got)
	}
}

func TestSynchronousCapacityDropsWithJitter(t *testing.T) {
	clean, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	noisyCfg := validConfig()
	noisyCfg.Jitter = 1
	noisy, err := New(noisyCfg)
	if err != nil {
		t.Fatal(err)
	}
	cClean, err := clean.SynchronousCapacity(4000)
	if err != nil {
		t.Fatal(err)
	}
	cNoisy, err := noisy.SynchronousCapacity(4000)
	if err != nil {
		t.Fatal(err)
	}
	if cNoisy >= cClean {
		t.Fatalf("jitter should reduce capacity: %v vs %v", cNoisy, cClean)
	}
}

func TestCorrectedCapacityBelowSynchronous(t *testing.T) {
	cfg := validConfig()
	cfg.PMiss = 0.2
	ch, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sync, p, corrected, err := ch.CorrectedCapacity(10000)
	if err != nil {
		t.Fatal(err)
	}
	if corrected >= sync {
		t.Fatalf("corrected %v should be below synchronous %v", corrected, sync)
	}
	if math.Abs(corrected-sync*(1-p.Pd)) > 1e-12 {
		t.Fatalf("corrected %v != sync*(1-Pd) = %v", corrected, sync*(1-p.Pd))
	}
}

func TestSynchronousCapacityValidation(t *testing.T) {
	ch, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.SynchronousCapacity(5); err == nil {
		t.Fatal("expected calibration length error")
	}
}
