// Package timing implements a covert timing channel substrate for the
// paper's Section 3.1 discussion of time references: the sender encodes
// bits in the duration of observable operations (fast = 0, slow = 1),
// and the receiver classifies the gaps it measures with its own local
// clock. The receiver's clock is imperfect in exactly the ways
// high-assurance systems engineer on purpose:
//
//   - jitter blurs gap measurements (misclassification: substitutions);
//   - coarse granularity ("fuzzy time") quantizes them, amplifying
//     misclassification;
//   - the receiver may miss events entirely when it is not scheduled
//     (deletions) or attribute unrelated system activity to the sender
//     (insertions).
//
// The result is precisely a Definition 1 deletion–insertion channel;
// EstimateParams measures its parameters with a calibration sequence so
// the capacity machinery in package core applies, and
// SynchronousCapacity computes the Moskowitz-style timing capacity per
// unit time (ignoring non-synchrony) for comparison.
package timing

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/infotheory"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Config describes the timing channel and the receiver's clock.
type Config struct {
	// D0, D1 are the operation durations encoding 0 and 1 (time units;
	// 0 < D0 < D1).
	D0, D1 float64
	// Jitter is the standard deviation of Gaussian measurement noise
	// added to each observed gap (>= 0).
	Jitter float64
	// Granularity quantizes observed gaps to multiples of this value
	// (0 disables quantization) — the fuzzy-time countermeasure.
	Granularity float64
	// PMiss is the probability the receiver misses an event (the gap
	// merges with the next one): a deletion.
	PMiss float64
	// PSpurious is the probability a spurious event interrupts a gap:
	// an insertion. The spurious gap is uniform over (0, D1].
	PSpurious float64
	// Seed drives all randomness.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.D0 <= 0 || c.D1 <= c.D0 {
		return fmt.Errorf("timing: need 0 < D0 < D1, got (%v, %v)", c.D0, c.D1)
	}
	if math.IsNaN(c.Jitter) || math.IsInf(c.Jitter, 0) || c.Jitter < 0 {
		return fmt.Errorf("timing: negative jitter %v", c.Jitter)
	}
	if math.IsNaN(c.Granularity) || math.IsInf(c.Granularity, 0) || c.Granularity < 0 {
		return fmt.Errorf("timing: negative granularity %v", c.Granularity)
	}
	if math.IsNaN(c.PMiss) || c.PMiss < 0 || c.PMiss > 0.9 {
		return fmt.Errorf("timing: PMiss %v out of [0, 0.9]", c.PMiss)
	}
	if math.IsNaN(c.PSpurious) || c.PSpurious < 0 || c.PSpurious > 0.9 {
		return fmt.Errorf("timing: PSpurious %v out of [0, 0.9]", c.PSpurious)
	}
	return nil
}

// Channel is a configured covert timing channel.
type Channel struct {
	cfg Config
	src *rng.Source
}

// New returns the channel.
func New(cfg Config) (*Channel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Channel{cfg: cfg, src: rng.New(cfg.Seed)}, nil
}

// Config returns the configuration.
func (c *Channel) Config() Config { return c.cfg }

// threshold returns the gap classification boundary.
func (c *Channel) threshold() float64 { return (c.cfg.D0 + c.cfg.D1) / 2 }

// Transmit sends the bit sequence through the timing channel and
// returns the receiver's classified bit stream (which may be shorter
// or longer than the input because of misses and spurious events).
func (c *Channel) Transmit(bits []byte) ([]byte, error) {
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("timing: input bit %d is %d, want 0 or 1", i, b)
		}
	}
	out := make([]byte, 0, len(bits))
	carry := 0.0 // duration carried into the next gap after a miss
	for _, b := range bits {
		// Spurious event splits the receiver's observation window.
		if c.src.Bool(c.cfg.PSpurious) {
			gap := c.src.Float64() * c.cfg.D1
			out = append(out, c.classify(gap))
		}
		d := c.cfg.D0
		if b == 1 {
			d = c.cfg.D1
		}
		if c.src.Bool(c.cfg.PMiss) {
			// Event missed: the duration merges into the next gap.
			carry += d
			continue
		}
		out = append(out, c.classify(d+carry))
		carry = 0
	}
	return out, nil
}

// classify measures and thresholds one gap.
func (c *Channel) classify(gap float64) byte {
	observed := gap + c.cfg.Jitter*c.src.NormFloat64()
	if g := c.cfg.Granularity; g > 0 {
		// Round to the clock's tick grid.
		ticks := int(observed/g + 0.5)
		if ticks < 0 {
			ticks = 0
		}
		observed = float64(ticks) * g
	}
	if observed >= c.threshold() {
		return 1
	}
	return 0
}

// EstimateParams transmits a calibration sequence of the given length
// and aligns it against the received stream to estimate the induced
// Definition 1 parameters (N = 1). This is the paper's Section 4.4
// procedure applied to a timing channel.
func (c *Channel) EstimateParams(calibrationBits int) (channel.Params, error) {
	if calibrationBits < 100 {
		return channel.Params{}, fmt.Errorf("timing: calibration needs >= 100 bits, got %d", calibrationBits)
	}
	bits := make([]byte, calibrationBits)
	for i := range bits {
		bits[i] = c.src.Bit()
	}
	recv, err := c.Transmit(bits)
	if err != nil {
		return channel.Params{}, err
	}
	sent32 := make([]uint32, len(bits))
	for i, b := range bits {
		sent32[i] = uint32(b)
	}
	recv32 := make([]uint32, len(recv))
	for i, b := range recv {
		recv32[i] = uint32(b)
	}
	pd, pi, ps := stats.Align(sent32, recv32).Rates()
	return channel.Params{N: 1, Pd: pd, Pi: pi, Ps: ps}, nil
}

// SynchronousCapacity returns the traditional timing-channel capacity
// in bits per unit time, ignoring non-synchrony: the per-unit-cost
// capacity of the binary substitution channel induced by jitter and
// granularity, with symbol costs D0 and D1 (Moskowitz's timed-channel
// style estimate). The substitution probabilities are measured from a
// calibration run without misses or spurious events.
func (c *Channel) SynchronousCapacity(calibrationBits int) (float64, error) {
	if calibrationBits < 100 {
		return 0, fmt.Errorf("timing: calibration needs >= 100 bits, got %d", calibrationBits)
	}
	clean := c.cfg
	clean.PMiss = 0
	clean.PSpurious = 0
	clean.Seed = c.cfg.Seed + 1
	probe, err := New(clean)
	if err != nil {
		return 0, err
	}
	// Measure the 2x2 confusion matrix.
	var counts [2][2]int
	for i := 0; i < calibrationBits; i++ {
		b := probe.src.Bit()
		recv, err := probe.Transmit([]byte{b})
		if err != nil {
			return 0, err
		}
		counts[b][recv[0]]++
	}
	w := make([][]float64, 2)
	for x := 0; x < 2; x++ {
		total := counts[x][0] + counts[x][1]
		if total == 0 {
			return 0, fmt.Errorf("timing: calibration starved input %d", x)
		}
		w[x] = []float64{
			float64(counts[x][0]) / float64(total),
			float64(counts[x][1]) / float64(total),
		}
	}
	dmc, err := infotheory.NewDMC(w)
	if err != nil {
		return 0, err
	}
	perCost, _, err := dmc.CapacityPerCost([]float64{c.cfg.D0, c.cfg.D1}, 1e-9, 0)
	if err != nil {
		return 0, err
	}
	return perCost, nil
}

// CorrectedCapacity applies the paper's full procedure: estimate the
// non-synchronous parameters, then degrade the synchronous estimate by
// (1 - Pd). It returns the synchronous estimate, the estimated
// parameters, and the corrected capacity.
func (c *Channel) CorrectedCapacity(calibrationBits int) (sync float64, p channel.Params, corrected float64, err error) {
	sync, err = c.SynchronousCapacity(calibrationBits)
	if err != nil {
		return 0, channel.Params{}, 0, err
	}
	p, err = c.EstimateParams(calibrationBits)
	if err != nil {
		return 0, channel.Params{}, 0, err
	}
	corrected = sync * (1 - p.Pd)
	return sync, p, corrected, nil
}
