// Package baseline implements the "traditional" synchronous covert
// channel capacity estimators the paper compares against — Millen's
// finite-state noiseless channels [5], Moskowitz's Simple Timing
// Channels [10], and the timed Z-channel [11] — together with the
// paper's Section 4.4 correction: every synchronous estimate C becomes
// C*(1-Pd) once the channel's non-synchronous deletions are accounted
// for.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/infotheory"
)

// STC is Moskowitz's Simple Timing Channel: a discrete, noiseless,
// memoryless channel whose symbols are response times t_1..t_n.
type STC struct {
	durations []float64
}

// NewSTC returns a Simple Timing Channel with the given positive
// symbol durations (at least two).
func NewSTC(durations []float64) (*STC, error) {
	if len(durations) < 2 {
		return nil, fmt.Errorf("baseline: STC needs at least 2 durations, got %d", len(durations))
	}
	for i, d := range durations {
		if d <= 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return nil, fmt.Errorf("baseline: duration %d is %v, want positive finite", i, d)
		}
	}
	return &STC{durations: append([]float64(nil), durations...)}, nil
}

// Capacity returns the synchronous capacity in bits per unit time
// (Shannon's noiseless-channel formula, as in [10]).
func (s *STC) Capacity() (float64, error) {
	return infotheory.NoiselessTimingCapacity(s.durations)
}

// DegradedCapacity applies the paper's non-synchronous correction
// C*(1-Pd).
func (s *STC) DegradedCapacity(pd float64) (float64, error) {
	c, err := s.Capacity()
	if err != nil {
		return 0, err
	}
	return core.Degrade(c, pd)
}

// Millen is a finite-state noiseless covert channel [5].
type Millen struct {
	states      int
	transitions []infotheory.FSMTransition
}

// NewMillen returns the finite-state channel; arguments are validated
// by the capacity computation.
func NewMillen(states int, transitions []infotheory.FSMTransition) (*Millen, error) {
	if states < 1 {
		return nil, fmt.Errorf("baseline: FSM needs at least one state")
	}
	if len(transitions) == 0 {
		return nil, fmt.Errorf("baseline: FSM needs transitions")
	}
	return &Millen{states: states, transitions: append([]infotheory.FSMTransition(nil), transitions...)}, nil
}

// Capacity returns the synchronous capacity in bits per unit time.
func (m *Millen) Capacity() (float64, error) {
	return infotheory.FSMCapacity(m.states, m.transitions)
}

// DegradedCapacity applies the paper's correction C*(1-Pd).
func (m *Millen) DegradedCapacity(pd float64) (float64, error) {
	c, err := m.Capacity()
	if err != nil {
		return 0, err
	}
	return core.Degrade(c, pd)
}

// ExampleAcknowledgedChannel returns the classic two-state machine from
// the finite-state covert channel literature: in state 0 the sender may
// emit a fast (1 tick) or slow (2 ticks) operation and move to state 1,
// from which the handshake returns in 1 tick.
func ExampleAcknowledgedChannel() *Millen {
	m, err := NewMillen(2, []infotheory.FSMTransition{
		{From: 0, To: 1, Duration: 1},
		{From: 0, To: 1, Duration: 2},
		{From: 1, To: 0, Duration: 1},
	})
	if err != nil {
		panic("baseline: example construction failed: " + err.Error())
	}
	return m
}

// TimedZ is the timed Z-channel of Moskowitz, Greenwald and Kang [11]:
// binary inputs with durations t0, t1; input 1 flips to 0 with
// probability p (input 0 is always received correctly).
type TimedZ struct {
	t0, t1 float64
	p      float64
}

// NewTimedZ returns a timed Z-channel.
func NewTimedZ(t0, t1, p float64) (*TimedZ, error) {
	if t0 <= 0 || t1 <= 0 || math.IsNaN(t0) || math.IsNaN(t1) {
		return nil, fmt.Errorf("baseline: durations (%v, %v) must be positive", t0, t1)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("baseline: flip probability %v out of [0,1]", p)
	}
	return &TimedZ{t0: t0, t1: t1, p: p}, nil
}

// Capacity returns the synchronous capacity in bits per unit time:
// max over the input distribution of I(X;Y) / E[duration], computed by
// the generic capacity-per-unit-cost solver (Dinkelbach iteration over
// cost-tilted Blahut–Arimoto).
func (z *TimedZ) Capacity() (float64, error) {
	ch, err := infotheory.ZChannel(z.p)
	if err != nil {
		return 0, err
	}
	perCost, _, err := ch.CapacityPerCost([]float64{z.t0, z.t1}, 1e-10, 0)
	if err != nil {
		return 0, err
	}
	return perCost, nil
}

// DegradedCapacity applies the paper's correction C*(1-Pd).
func (z *TimedZ) DegradedCapacity(pd float64) (float64, error) {
	c, err := z.Capacity()
	if err != nil {
		return 0, err
	}
	return core.Degrade(c, pd)
}
