package baseline

import (
	"math"
	"testing"

	"repro/internal/infotheory"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewSTCValidation(t *testing.T) {
	if _, err := NewSTC([]float64{1}); err == nil {
		t.Error("expected error for single duration")
	}
	if _, err := NewSTC([]float64{1, -1}); err == nil {
		t.Error("expected error for negative duration")
	}
	if _, err := NewSTC([]float64{1, math.NaN()}); err == nil {
		t.Error("expected error for NaN duration")
	}
}

func TestSTCCapacityBinaryUnit(t *testing.T) {
	s, err := NewSTC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-9) {
		t.Fatalf("capacity = %v, want 1", c)
	}
}

func TestSTCDegradedCapacity(t *testing.T) {
	s, err := NewSTC([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.DegradedCapacity(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.75, 1e-9) {
		t.Fatalf("degraded = %v, want 0.75", d)
	}
	if _, err := s.DegradedCapacity(1.5); err == nil {
		t.Error("expected error for bad pd")
	}
}

func TestMillenValidation(t *testing.T) {
	if _, err := NewMillen(0, nil); err == nil {
		t.Error("expected state error")
	}
	if _, err := NewMillen(2, nil); err == nil {
		t.Error("expected transition error")
	}
}

func TestMillenExampleChannel(t *testing.T) {
	m := ExampleAcknowledgedChannel()
	c, err := m.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	// Messages are sequences of (fast|slow)+ack: durations 2 or 3 per
	// round trip, so capacity = log2(x) with x^-2 + x^-3 = 1.
	want, err := infotheory.NoiselessTimingCapacity([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, want, 1e-9) {
		t.Fatalf("capacity = %v, want %v", c, want)
	}
	d, err := m.DegradedCapacity(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, c/2, 1e-12) {
		t.Fatalf("degraded = %v, want %v", d, c/2)
	}
}

func TestTimedZValidation(t *testing.T) {
	if _, err := NewTimedZ(0, 1, 0.1); err == nil {
		t.Error("expected duration error")
	}
	if _, err := NewTimedZ(1, 1, 1.5); err == nil {
		t.Error("expected probability error")
	}
}

func TestTimedZReducesToZChannel(t *testing.T) {
	// Equal unit durations: capacity equals the plain Z-channel's.
	for _, p := range []float64{0, 0.1, 0.3, 0.5} {
		z, err := NewTimedZ(1, 1, p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := z.Capacity()
		if err != nil {
			t.Fatal(err)
		}
		if want := infotheory.ZChannelCapacity(p); !almostEqual(c, want, 1e-6) {
			t.Errorf("p=%v: capacity %v, want %v", p, c, want)
		}
	}
}

func TestTimedZNoiselessMatchesShannon(t *testing.T) {
	// With p = 0 the timed Z-channel is a noiseless timing channel:
	// max_q H(q)/E[t] = log2 of the root of x^-t0 + x^-t1 = 1.
	z, err := NewTimedZ(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := z.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	want, err := infotheory.NoiselessTimingCapacity([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, want, 1e-6) {
		t.Fatalf("capacity %v, want Shannon root %v", c, want)
	}
}

func TestTimedZNoiseReducesCapacity(t *testing.T) {
	clean, err := NewTimedZ(1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := NewTimedZ(1, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	cClean, err := clean.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	cNoisy, err := noisy.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if cNoisy >= cClean {
		t.Fatalf("noise should reduce capacity: %v vs %v", cNoisy, cClean)
	}
	d, err := noisy.DegradedCapacity(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, cNoisy*0.8, 1e-9) {
		t.Fatalf("degraded = %v, want %v", d, cNoisy*0.8)
	}
}

func TestTimedZFullNoise(t *testing.T) {
	z, err := NewTimedZ(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := z.Capacity()
	if err != nil {
		t.Fatal(err)
	}
	if c > 1e-9 {
		t.Fatalf("capacity %v, want 0 at p=1", c)
	}
}
