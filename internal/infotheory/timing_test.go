package infotheory

import (
	"math"
	"testing"
)

func TestNoiselessTimingCapacityEqualDurations(t *testing.T) {
	// k symbols of unit duration: C = log2(k).
	for _, k := range []int{2, 4, 8} {
		durations := make([]float64, k)
		for i := range durations {
			durations[i] = 1
		}
		c, err := NoiselessTimingCapacity(durations)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(c, math.Log2(float64(k)), 1e-9) {
			t.Errorf("capacity(%d unit symbols) = %v, want %v", k, c, math.Log2(float64(k)))
		}
	}
}

func TestNoiselessTimingCapacityScaling(t *testing.T) {
	// Scaling all durations by s divides the capacity by s.
	c1, err := NoiselessTimingCapacity([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NoiselessTimingCapacity([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c1, 2*c2, 1e-9) {
		t.Fatalf("scaling property violated: %v vs %v", c1, 2*c2)
	}
}

func TestNoiselessTimingCapacityTelegraph(t *testing.T) {
	// Shannon's classic example sanity check: durations {1, 2} give
	// C = log2(golden ratio) since x^-1 + x^-2 = 1 => x = phi.
	c, err := NoiselessTimingCapacity([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	phi := (1 + math.Sqrt(5)) / 2
	if !almostEqual(c, math.Log2(phi), 1e-9) {
		t.Fatalf("capacity({1,2}) = %v, want log2(phi) = %v", c, math.Log2(phi))
	}
}

func TestNoiselessTimingCapacitySingleSymbol(t *testing.T) {
	c, err := NoiselessTimingCapacity([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("single-symbol capacity = %v, want 0", c)
	}
}

func TestNoiselessTimingCapacityErrors(t *testing.T) {
	if _, err := NoiselessTimingCapacity(nil); err == nil {
		t.Error("expected error for empty durations")
	}
	if _, err := NoiselessTimingCapacity([]float64{1, 0}); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := NoiselessTimingCapacity([]float64{1, -2}); err == nil {
		t.Error("expected error for negative duration")
	}
	if _, err := NoiselessTimingCapacity([]float64{1, math.Inf(1)}); err == nil {
		t.Error("expected error for infinite duration")
	}
}

func TestNoiselessTimingMoreSymbolsMoreCapacity(t *testing.T) {
	c2, err := NoiselessTimingCapacity([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := NoiselessTimingCapacity([]float64{1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= c2 {
		t.Fatalf("adding a symbol should raise capacity: %v vs %v", c3, c2)
	}
}

func TestFSMCapacitySingleStateEqualsTiming(t *testing.T) {
	// One state with self-loop transitions of durations t_i reduces to
	// the plain noiseless timing channel.
	durations := []float64{1, 2, 3}
	trs := make([]FSMTransition, len(durations))
	for i, d := range durations {
		trs[i] = FSMTransition{From: 0, To: 0, Duration: d}
	}
	fsm, err := FSMCapacity(1, trs)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NoiselessTimingCapacity(durations)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fsm, plain, 1e-9) {
		t.Fatalf("FSM capacity %v != timing capacity %v", fsm, plain)
	}
}

func TestFSMCapacityTwoStateCycle(t *testing.T) {
	// Two states, two unit-duration transitions each way: sequences
	// alternate between 2 choices per step... with 2 parallel
	// transitions 0->1 and 2 parallel 1->0 (all unit duration), the
	// adjacency has spectral radius 2, so C = 1 bit per unit time.
	trs := []FSMTransition{
		{From: 0, To: 1, Duration: 1},
		{From: 0, To: 1, Duration: 1},
		{From: 1, To: 0, Duration: 1},
		{From: 1, To: 0, Duration: 1},
	}
	c, err := FSMCapacity(2, trs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-9) {
		t.Fatalf("two-state cycle capacity = %v, want 1", c)
	}
}

func TestFSMCapacityDeterministicCycleIsZero(t *testing.T) {
	// A single forced cycle conveys no information.
	trs := []FSMTransition{
		{From: 0, To: 1, Duration: 1},
		{From: 1, To: 0, Duration: 2},
	}
	c, err := FSMCapacity(2, trs)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("forced-cycle capacity = %v, want 0", c)
	}
}

func TestFSMCapacityMillenExample(t *testing.T) {
	// A state machine where state 0 offers a fast (1) and a slow (2)
	// self-loop: same as the telegraph channel, C = log2(phi).
	trs := []FSMTransition{
		{From: 0, To: 0, Duration: 1},
		{From: 0, To: 0, Duration: 2},
	}
	c, err := FSMCapacity(1, trs)
	if err != nil {
		t.Fatal(err)
	}
	phi := (1 + math.Sqrt(5)) / 2
	if !almostEqual(c, math.Log2(phi), 1e-9) {
		t.Fatalf("capacity = %v, want %v", c, math.Log2(phi))
	}
}

func TestFSMCapacityUnreachableBranchIgnored(t *testing.T) {
	// State 2 is a dead end; capacity is governed by the core loop.
	trs := []FSMTransition{
		{From: 0, To: 0, Duration: 1},
		{From: 0, To: 0, Duration: 1},
		{From: 0, To: 1, Duration: 1},
	}
	c, err := FSMCapacity(2, trs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(c, 1, 1e-9) {
		t.Fatalf("capacity = %v, want 1", c)
	}
}

func TestFSMCapacityErrors(t *testing.T) {
	if _, err := FSMCapacity(0, []FSMTransition{{From: 0, To: 0, Duration: 1}}); err == nil {
		t.Error("expected error for zero states")
	}
	if _, err := FSMCapacity(2, nil); err == nil {
		t.Error("expected error for no transitions")
	}
	if _, err := FSMCapacity(2, []FSMTransition{{From: 0, To: 5, Duration: 1}}); err == nil {
		t.Error("expected error for invalid state index")
	}
	if _, err := FSMCapacity(2, []FSMTransition{{From: 0, To: 1, Duration: -1}}); err == nil {
		t.Error("expected error for negative duration")
	}
}
