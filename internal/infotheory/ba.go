package infotheory

import "math"

// This file holds the shared Blahut–Arimoto inner-loop kernels used by
// Capacity, CapacityPerCost and MutualInformation. The kernels operate
// on the DMC's contiguous flat backing and hoist math.Log2 out of the
// per-cell loops via a per-iteration log table over the matrix's
// distinct cell values. Bit-exactness contract: every kernel performs
// the same floating-point operations on the same operands in the same
// order as the scalar reference loops (see reference.go), so results
// are identical to the last bit — E5's |closed − BA| column is printed
// at 1e-16 granularity and must not move.

// maxValueClasses caps the distinct-value dictionary built by NewDMC.
// Channels in this repository are highly structured (MSC, converted
// channels, cascades) and have a handful of distinct entries; a matrix
// with more distinct values than this falls back to the per-cell
// math.Log2 path, which is exactly the reference loop.
const maxValueClasses = 64

// nonNegative clamps tiny negative values arising from floating-point
// cancellation to zero. Mutual information, capacity and the BA duality
// gap are all mathematically non-negative; any negative result is
// numerical jitter. NaN is passed through unchanged.
func nonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// buildClasses scans the flat matrix and assigns each cell the index of
// its value in a dictionary of distinct values (exact float64 equality,
// so substituting vals[cls[i]] for flat[i] is a no-op bit-wise). It
// returns (nil, nil) when the matrix has more than maxValueClasses
// distinct values.
func buildClasses(flat []float64) (vals []float64, cls []uint16) {
	cls = make([]uint16, len(flat))
	for i, p := range flat {
		j := 0
		for ; j < len(vals); j++ {
			if vals[j] == p {
				break
			}
		}
		if j == len(vals) {
			if len(vals) == maxValueClasses {
				return nil, nil
			}
			vals = append(vals, p)
		}
		cls[i] = uint16(j)
	}
	return vals, cls
}

// logsLen returns the size of the per-iteration log-table scratch a
// caller must provide to divergences/tiltedDivergences, or 0 when the
// matrix has no value dictionary and the kernels use the fallback path.
func (c *DMC) logsLen() int {
	if c.cls == nil {
		return 0
	}
	return len(c.vals) * c.NumOutputs()
}

// outputDist computes the output distribution py induced by px with the
// same accumulation order as the reference loop.
//
// The columns are processed four at a time so that four accumulators
// ride in registers across the x scan: the reference loop's
// py[y] += px[x]·W(y|x) is a load-add-store per cell whose carried
// dependency (the same py[y] across consecutive x) serializes on FMA
// latency; four independent register chains overlap it. Each py[y]
// still sums exactly the reference's operands in ascending-x order
// (including the px[x] == 0 skip), so the result is bit-identical.
func (c *DMC) outputDist(px, py []float64) {
	ny := len(py)
	y := 0
	for ; y+4 <= ny; y += 4 {
		var s0, s1, s2, s3 float64
		for x, row := range c.w {
			pxx := px[x]
			if pxx == 0 {
				continue
			}
			r := row[y : y+4 : y+4]
			s0 += pxx * r[0]
			s1 += pxx * r[1]
			s2 += pxx * r[2]
			s3 += pxx * r[3]
		}
		py[y], py[y+1], py[y+2], py[y+3] = s0, s1, s2, s3
	}
	for ; y < ny; y++ {
		var s float64
		for x, row := range c.w {
			pxx := px[x]
			if pxx == 0 {
				continue
			}
			s += pxx * row[y]
		}
		py[y] = s
	}
}

// logRatios fills logs[v*ny+y] = log2(vals[v]/py[y]) for every positive
// dictionary value. This is the math.Log2 hoist: nv·ny calls instead of
// one per positive matrix cell per iteration. The layout is class-major
// so each class is one contiguous row of the table. When skipZeroPy is
// set, entries for outputs with py[y] == 0 are left untouched; callers
// using that mode must guard reads with py[y] > 0 (the cost-tilted
// kernels do).
func (c *DMC) logRatios(py, logs []float64, skipZeroPy bool) {
	ny := len(py)
	for v, val := range c.vals {
		if val <= 0 {
			continue
		}
		row := logs[v*ny : v*ny+ny : v*ny+ny]
		for y, pyy := range py {
			if skipZeroPy && pyy == 0 {
				continue
			}
			row[y] = math.Log2(val / pyy)
		}
	}
}

// divergences fills d[x] = D(W(·|x) || py) in bits with the Capacity
// guard (p > 0 only; py[y] == 0 with p > 0 yields +Inf, as in the
// reference). logs must have logsLen() capacity and is clobbered.
func (c *DMC) divergences(py, logs, d []float64) {
	ny := len(py)
	if c.cls == nil {
		for x, row := range c.w {
			var dx float64
			for y, p := range row {
				if p > 0 {
					dx += p * math.Log2(p/py[y])
				}
			}
			d[x] = dx
		}
		return
	}
	c.logRatios(py, logs, false)
	// Rows are processed four at a time: each d[x] is a strictly
	// sequential sum (y ascending, the reference's association order),
	// which serializes on FMA latency; four rows' independent chains
	// overlap it. Per-row operand order and the p > 0 guard are exactly
	// the reference's, so every d[x] is bit-identical. Two-class
	// matrices (MSC, the converted channels) take a branchless-select
	// path over the two contiguous log-table rows; reading the
	// not-selected entry is safe because the guard only uses the term
	// when p > 0, and then the selected entry is initialized.
	nv := len(c.vals)
	nx := len(c.w)
	x := 0
	if nv == 2 && c.vals[0] > 0 && c.vals[1] > 0 {
		// Both dictionary values positive: the p > 0 guard is true for
		// every cell, so dropping it skips no terms and the sums stay
		// bit-identical — the loop becomes a pure 4-chain FMA stream.
		l0 := logs[0:ny:ny]
		l1 := logs[ny : 2*ny : 2*ny]
		for ; x+4 <= nx; x += 4 {
			r0 := c.flat[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			r1 := c.flat[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			r2 := c.flat[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			r3 := c.flat[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			c0 := c.cls[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			c1 := c.cls[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			c2 := c.cls[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			c3 := c.cls[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			var d0, d1, d2, d3 float64
			for y := 0; y < ny; y++ {
				t0, t1, t2, t3 := l0[y], l0[y], l0[y], l0[y]
				if c0[y] != 0 {
					t0 = l1[y]
				}
				if c1[y] != 0 {
					t1 = l1[y]
				}
				if c2[y] != 0 {
					t2 = l1[y]
				}
				if c3[y] != 0 {
					t3 = l1[y]
				}
				d0 += r0[y] * t0
				d1 += r1[y] * t1
				d2 += r2[y] * t2
				d3 += r3[y] * t3
			}
			d[x], d[x+1], d[x+2], d[x+3] = d0, d1, d2, d3
		}
	} else if nv == 2 {
		l0 := logs[0:ny:ny]
		l1 := logs[ny : 2*ny : 2*ny]
		for ; x+4 <= nx; x += 4 {
			r0 := c.flat[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			r1 := c.flat[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			r2 := c.flat[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			r3 := c.flat[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			c0 := c.cls[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			c1 := c.cls[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			c2 := c.cls[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			c3 := c.cls[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			var d0, d1, d2, d3 float64
			for y := 0; y < ny; y++ {
				t0, t1, t2, t3 := l0[y], l0[y], l0[y], l0[y]
				if c0[y] != 0 {
					t0 = l1[y]
				}
				if c1[y] != 0 {
					t1 = l1[y]
				}
				if c2[y] != 0 {
					t2 = l1[y]
				}
				if c3[y] != 0 {
					t3 = l1[y]
				}
				if p := r0[y]; p > 0 {
					d0 += p * t0
				}
				if p := r1[y]; p > 0 {
					d1 += p * t1
				}
				if p := r2[y]; p > 0 {
					d2 += p * t2
				}
				if p := r3[y]; p > 0 {
					d3 += p * t3
				}
			}
			d[x], d[x+1], d[x+2], d[x+3] = d0, d1, d2, d3
		}
	} else {
		for ; x+4 <= nx; x += 4 {
			r0 := c.flat[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			r1 := c.flat[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			r2 := c.flat[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			r3 := c.flat[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			c0 := c.cls[(x+0)*ny : (x+0)*ny+ny : (x+0)*ny+ny]
			c1 := c.cls[(x+1)*ny : (x+1)*ny+ny : (x+1)*ny+ny]
			c2 := c.cls[(x+2)*ny : (x+2)*ny+ny : (x+2)*ny+ny]
			c3 := c.cls[(x+3)*ny : (x+3)*ny+ny : (x+3)*ny+ny]
			var d0, d1, d2, d3 float64
			for y := 0; y < ny; y++ {
				if p := r0[y]; p > 0 {
					d0 += p * logs[int(c0[y])*ny+y]
				}
				if p := r1[y]; p > 0 {
					d1 += p * logs[int(c1[y])*ny+y]
				}
				if p := r2[y]; p > 0 {
					d2 += p * logs[int(c2[y])*ny+y]
				}
				if p := r3[y]; p > 0 {
					d3 += p * logs[int(c3[y])*ny+y]
				}
			}
			d[x], d[x+1], d[x+2], d[x+3] = d0, d1, d2, d3
		}
	}
	for ; x < nx; x++ {
		row := c.flat[x*ny : x*ny+ny : x*ny+ny]
		cls := c.cls[x*ny : x*ny+ny : x*ny+ny]
		var dx float64
		for y, p := range row {
			if p > 0 {
				dx += p * logs[int(cls[y])*ny+y]
			}
		}
		d[x] = dx
	}
}

// tiltedDivergences fills d[x] = D(W(·|x) || py) − λ·cost[x] with the
// cost-constrained guard (p > 0 && py[y] > 0), matching the reference
// tilted loop bit-for-bit.
func (c *DMC) tiltedDivergences(py, logs, d, costs []float64, lambda float64) {
	ny := len(py)
	if c.cls == nil {
		for x, row := range c.w {
			var dx float64
			for y, p := range row {
				if p > 0 && py[y] > 0 {
					dx += p * math.Log2(p/py[y])
				}
			}
			d[x] = dx - lambda*costs[x]
		}
		return
	}
	c.logRatios(py, logs, true)
	for x := range c.w {
		row := c.flat[x*ny : x*ny+ny : x*ny+ny]
		cls := c.cls[x*ny : x*ny+ny : x*ny+ny]
		var dx float64
		for y, p := range row {
			if p > 0 && py[y] > 0 {
				dx += p * logs[int(cls[y])*ny+y]
			}
		}
		d[x] = dx - lambda*costs[x]
	}
}
