package infotheory

import (
	"fmt"
	"math"
)

// StationaryDistribution returns the stationary distribution of a
// row-stochastic transition matrix by power iteration. The chain must
// be non-empty and square; for periodic chains the iteration runs on
// the lazy chain (I + P)/2, which has the same stationary distribution
// and always converges for irreducible chains.
func StationaryDistribution(p [][]float64) ([]float64, error) {
	n := len(p)
	if n == 0 {
		return nil, fmt.Errorf("infotheory: empty chain")
	}
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("infotheory: row %d has %d entries, want %d", i, len(row), n)
		}
		if err := validateDist(row); err != nil {
			return nil, fmt.Errorf("infotheory: row %d: %w", i, err)
		}
	}
	pi := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for iter := 0; iter < 100000; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := range pi {
			// Lazy step: stay with probability 1/2.
			next[i] += pi[i] / 2
			for j := range p[i] {
				next[j] += pi[i] * p[i][j] / 2
			}
		}
		var delta float64
		for i := range pi {
			delta += math.Abs(next[i] - pi[i])
		}
		copy(pi, next)
		if delta < 1e-14 {
			break
		}
	}
	return pi, nil
}

// MarkovEntropyRate returns the entropy rate in bits per step of a
// stationary Markov chain with the given row-stochastic transition
// matrix: H = -sum_i pi_i sum_j P_ij log2 P_ij. For the bursty channel
// of package channel this measures how predictable the Good/Bad
// modulation is (0 for deterministic switching, at most 1 bit for a
// two-state chain).
func MarkovEntropyRate(p [][]float64) (float64, error) {
	pi, err := StationaryDistribution(p)
	if err != nil {
		return 0, err
	}
	var h float64
	for i, row := range p {
		for _, pij := range row {
			if pij > 0 {
				h -= pi[i] * pij * math.Log2(pij)
			}
		}
	}
	return h, nil
}
