package infotheory

import (
	"fmt"
	"math"
)

// This file implements the "traditional" synchronous capacity estimates
// the paper contrasts with: Shannon's capacity of a discrete noiseless
// channel whose symbols have unequal durations, and Millen's
// finite-state noiseless covert channel capacity [5], which generalizes
// it to state-dependent symbol sets. Both assume a synchronous channel;
// Section 4.4 of the paper corrects them by the factor (1 - Pd).

// NoiselessTimingCapacity returns the capacity in bits per unit time of
// a noiseless channel with the given positive symbol durations:
// C = log2(X0) where X0 is the largest real root of sum_i X^(-t_i) = 1
// (Shannon 1948; used for Moskowitz's Simple Timing Channels [10]).
// It returns an error if no duration is given or any is non-positive.
func NoiselessTimingCapacity(durations []float64) (float64, error) {
	if len(durations) == 0 {
		return 0, fmt.Errorf("infotheory: no symbol durations")
	}
	tmin := math.Inf(1)
	for i, t := range durations {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return 0, fmt.Errorf("infotheory: duration %d is %v, want positive finite", i, t)
		}
		if t < tmin {
			tmin = t
		}
	}
	if len(durations) == 1 {
		return 0, nil // a single symbol conveys no information
	}
	f := func(x float64) float64 {
		var s float64
		for _, t := range durations {
			s += math.Pow(x, -t)
		}
		return s
	}
	// f is strictly decreasing for x > 1 with f(1) = k >= 2 and
	// f(k^(1/tmin)) <= 1, so the root is bracketed.
	lo, hi := 1.0, math.Pow(float64(len(durations)), 1/tmin)
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Log2((lo + hi) / 2), nil
}

// FSMTransition is one transition of a finite-state noiseless channel:
// from state From, emitting one distinguishable symbol, taking Duration
// time units, ending in state To.
type FSMTransition struct {
	From, To int
	Duration float64
}

// FSMCapacity returns the capacity in bits per unit time of a
// finite-state noiseless channel with the given number of states and
// transitions (Millen [5], after Shannon): C = log2(z0) where z0 makes
// the spectral radius of B(z), B(z)[i][j] = sum over transitions i->j of
// z^(-duration), equal to 1.
//
// The transition graph must be non-empty with valid state indices and
// positive durations; states with no outgoing transitions are permitted
// (they simply cannot sustain long sequences). If the graph supports no
// two distinct unbounded sequences, the capacity is 0.
func FSMCapacity(states int, transitions []FSMTransition) (float64, error) {
	if states < 1 {
		return 0, fmt.Errorf("infotheory: FSM needs at least one state, got %d", states)
	}
	if len(transitions) == 0 {
		return 0, fmt.Errorf("infotheory: FSM has no transitions")
	}
	for i, tr := range transitions {
		if tr.From < 0 || tr.From >= states || tr.To < 0 || tr.To >= states {
			return 0, fmt.Errorf("infotheory: transition %d references invalid state (%d -> %d of %d)",
				i, tr.From, tr.To, states)
		}
		if tr.Duration <= 0 || math.IsNaN(tr.Duration) || math.IsInf(tr.Duration, 0) {
			return 0, fmt.Errorf("infotheory: transition %d duration %v, want positive finite", i, tr.Duration)
		}
	}
	rho := func(z float64) float64 {
		b := make([][]float64, states)
		for i := range b {
			b[i] = make([]float64, states)
		}
		for _, tr := range transitions {
			b[tr.From][tr.To] += math.Pow(z, -tr.Duration)
		}
		return spectralRadius(b)
	}
	// rho is strictly decreasing in z for z >= 1. If rho(1) <= 1 the
	// graph cannot sustain more than one unbounded symbol sequence and
	// the capacity is 0 (rho(1) is the spectral radius of the plain
	// adjacency/multiplicity matrix).
	if rho(1) <= 1+1e-12 {
		return 0, nil
	}
	lo, hi := 1.0, 2.0
	for rho(hi) > 1 {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("infotheory: FSM capacity root exceeds bracket")
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if rho(mid) > 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Log2((lo + hi) / 2), nil
}

// spectralRadius estimates the Perron root of a non-negative matrix by
// power iteration. Periodic matrices (for example a pure two-state
// cycle) make plain power iteration oscillate, so the iteration runs on
// the shifted matrix M + I, which is aperiodic and satisfies
// rho(M + I) = rho(M) + 1 for non-negative M.
func spectralRadius(m [][]float64) float64 {
	n := len(m)
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	radius := 0.0
	for iter := 0; iter < 2000; iter++ {
		var norm float64
		for i := 0; i < n; i++ {
			s := v[i] // the +I shift
			for j := 0; j < n; j++ {
				s += m[i][j] * v[j]
			}
			next[i] = s
			norm += s
		}
		// norm >= 1 always because of the shift; with v normalized to
		// sum 1 it converges to rho(M + I).
		prev := radius
		radius = norm
		for i := range next {
			next[i] /= norm
		}
		v, next = next, v
		if iter > 10 && math.Abs(radius-prev) < 1e-14*math.Max(1, radius) {
			break
		}
	}
	r := radius - 1
	if r < 0 {
		r = 0
	}
	return r
}
