package infotheory

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBinaryEntropyKnown(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0, 0},
		{1, 0},
		{0.5, 1},
		{0.25, 0.811278124459},
		{0.75, 0.811278124459},
		{0.11, 0.499915958165},
		{-0.3, 0}, // clamped
		{1.5, 0},  // clamped
	}
	for _, tt := range tests {
		if got := BinaryEntropy(tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("BinaryEntropy(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestBinaryEntropySymmetryAndBounds(t *testing.T) {
	err := quick.Check(func(raw uint16) bool {
		p := float64(raw) / math.MaxUint16
		h := BinaryEntropy(p)
		return h >= 0 && h <= 1 && almostEqual(h, BinaryEntropy(1-p), 1e-12)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEntropyKnown(t *testing.T) {
	h, err := Entropy([]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, 2, 1e-12) {
		t.Fatalf("Entropy(uniform 4) = %v, want 2", h)
	}
	h, err = Entropy([]float64{1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("Entropy(point mass) = %v, want 0", h)
	}
}

func TestEntropyErrors(t *testing.T) {
	if _, err := Entropy(nil); err == nil {
		t.Error("expected error for empty distribution")
	}
	if _, err := Entropy([]float64{0.5, 0.6}); err == nil {
		t.Error("expected error for unnormalized distribution")
	}
	if _, err := Entropy([]float64{1.5, -0.5}); err == nil {
		t.Error("expected error for negative entry")
	}
}

func TestEntropyMaximizedByUniform(t *testing.T) {
	err := quick.Check(func(a, b, c uint8) bool {
		sum := float64(a) + float64(b) + float64(c) + 3
		p := []float64{(float64(a) + 1) / sum, (float64(b) + 1) / sum, (float64(c) + 1) / sum}
		h, err := Entropy(p)
		return err == nil && h <= math.Log2(3)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestKL(t *testing.T) {
	p := []float64{0.5, 0.5}
	q := []float64{0.25, 0.75}
	d, err := KL(p, q)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5*math.Log2(2) + 0.5*math.Log2(0.5/0.75)
	if !almostEqual(d, want, 1e-12) {
		t.Fatalf("KL = %v, want %v", d, want)
	}

	// D(p||p) = 0.
	d, err = KL(p, p)
	if err != nil || d != 0 {
		t.Fatalf("KL(p,p) = %v, %v", d, err)
	}

	// Infinite divergence when q lacks support.
	d, err = KL([]float64{1, 0}, []float64{0, 1})
	if err != nil || !math.IsInf(d, 1) {
		t.Fatalf("KL(no support) = %v, %v, want +Inf", d, err)
	}

	if _, err := KL(p, []float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestKLNonNegative(t *testing.T) {
	err := quick.Check(func(a, b, c, d uint8) bool {
		s1 := float64(a) + float64(b) + 2
		s2 := float64(c) + float64(d) + 2
		p := []float64{(float64(a) + 1) / s1, (float64(b) + 1) / s1}
		q := []float64{(float64(c) + 1) / s2, (float64(d) + 1) / s2}
		kl, err := KL(p, q)
		return err == nil && kl >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
