package infotheory

import (
	"fmt"
	"math"
)

// CapacityPerCost computes the capacity per unit cost of a DMC whose
// input symbols have positive costs (for covert timing channels, the
// cost is the symbol's duration): the maximum over input distributions
// q of I(q) / sum_x q(x) cost(x), in bits per unit cost.
//
// The objective is a ratio of a concave functional and a positive
// linear functional of q, so it is quasi-concave; the solver uses the
// Dinkelbach parametric method: for a rate guess λ, maximize
// I(q) - λ·E[cost] (a concave problem solved by a Blahut–Arimoto-style
// iteration with per-symbol cost tilts) and bisect on λ until the
// optimal value is zero.
func (c *DMC) CapacityPerCost(costs []float64, tol float64, maxIter int) (float64, []float64, error) {
	if len(costs) != c.NumInputs() {
		return 0, nil, fmt.Errorf("infotheory: %d costs for %d inputs", len(costs), c.NumInputs())
	}
	minCost := math.Inf(1)
	for i, t := range costs {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return 0, nil, fmt.Errorf("infotheory: cost %d is %v, want positive finite", i, t)
		}
		if t < minCost {
			minCost = t
		}
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 200
	}

	// value(λ) = max_q I(q) − λ·E_q[cost]; strictly decreasing in λ.
	// The root λ* is the capacity per unit cost. Upper bracket: even a
	// noiseless channel cannot beat log2|X| bits per use, so
	// λ <= log2|X| / minCost. The scratch buffers are shared across all
	// bisection steps — each λ evaluation runs up to 2000 BA iterations,
	// so per-call allocation would dominate small channels.
	scratch := newTiltedScratch(c)
	value := func(lambda float64) (float64, []float64) {
		return c.maxTiltedInfo(lambda, costs, scratch)
	}
	lo, hi := 0.0, math.Log2(float64(c.NumInputs()))/minCost+1e-12
	v0, bestQ := value(lo)
	if v0 <= tol {
		return 0, bestQ, nil // capacity is zero
	}
	for iter := 0; iter < maxIter; iter++ {
		mid := (lo + hi) / 2
		v, q := value(mid)
		if v > 0 {
			lo = mid
			bestQ = q
		} else {
			hi = mid
		}
		if hi-lo < tol {
			break
		}
	}
	return (lo + hi) / 2, bestQ, nil
}

// tiltedScratch holds the per-channel buffers the tilted BA iteration
// reuses across bisection steps: the input/output distributions, the
// divergence vector and the hoisted-log table.
type tiltedScratch struct {
	q, py, d, logs []float64
}

func newTiltedScratch(c *DMC) *tiltedScratch {
	return &tiltedScratch{
		q:    make([]float64, c.NumInputs()),
		py:   make([]float64, c.NumOutputs()),
		d:    make([]float64, c.NumInputs()),
		logs: make([]float64, c.logsLen()),
	}
}

// maxTiltedInfo maximizes I(q) - λ·E_q[cost] by the standard
// cost-constrained Blahut–Arimoto iteration and returns the optimum
// value and optimizing distribution. Results are bit-identical to
// maxTiltedInfoReference; the inner loops run on the kernels in ba.go.
func (c *DMC) maxTiltedInfo(lambda float64, costs []float64, s *tiltedScratch) (float64, []float64) {
	nx := c.NumInputs()
	q, py, d := s.q, s.py, s.d
	for x := range q {
		q[x] = 1 / float64(nx)
	}
	best := math.Inf(-1)
	for iter := 0; iter < 2000; iter++ {
		c.outputDist(q, py)
		c.tiltedDivergences(py, s.logs, d, costs, lambda)
		var cur float64
		for x := range q {
			cur += q[x] * d[x]
		}
		if cur > best {
			best = cur
		}
		// Multiplicative update toward the tilted optimum.
		var norm float64
		for x := range q {
			q[x] *= math.Exp2(d[x])
			norm += q[x]
		}
		if norm == 0 {
			break
		}
		for x := range q {
			q[x] /= norm
		}
		// Convergence check via the duality-style gap.
		maxD := math.Inf(-1)
		for x := range d {
			if d[x] > maxD {
				maxD = d[x]
			}
		}
		if maxD-cur < 1e-12 {
			best = cur
			break
		}
	}
	return best, append([]float64(nil), q...)
}
