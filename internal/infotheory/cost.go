package infotheory

import (
	"fmt"
	"math"
)

// CapacityPerCost computes the capacity per unit cost of a DMC whose
// input symbols have positive costs (for covert timing channels, the
// cost is the symbol's duration): the maximum over input distributions
// q of I(q) / sum_x q(x) cost(x), in bits per unit cost.
//
// The objective is a ratio of a concave functional and a positive
// linear functional of q, so it is quasi-concave; the solver uses the
// Dinkelbach parametric method: for a rate guess λ, maximize
// I(q) - λ·E[cost] (a concave problem solved by a Blahut–Arimoto-style
// iteration with per-symbol cost tilts) and bisect on λ until the
// optimal value is zero.
func (c *DMC) CapacityPerCost(costs []float64, tol float64, maxIter int) (float64, []float64, error) {
	if len(costs) != c.NumInputs() {
		return 0, nil, fmt.Errorf("infotheory: %d costs for %d inputs", len(costs), c.NumInputs())
	}
	minCost := math.Inf(1)
	for i, t := range costs {
		if t <= 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return 0, nil, fmt.Errorf("infotheory: cost %d is %v, want positive finite", i, t)
		}
		if t < minCost {
			minCost = t
		}
	}
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 200
	}

	// value(λ) = max_q I(q) − λ·E_q[cost]; strictly decreasing in λ.
	// The root λ* is the capacity per unit cost. Upper bracket: even a
	// noiseless channel cannot beat log2|X| bits per use, so
	// λ <= log2|X| / minCost.
	value := func(lambda float64) (float64, []float64) {
		return c.maxTiltedInfo(lambda, costs)
	}
	lo, hi := 0.0, math.Log2(float64(c.NumInputs()))/minCost+1e-12
	v0, bestQ := value(lo)
	if v0 <= tol {
		return 0, bestQ, nil // capacity is zero
	}
	for iter := 0; iter < maxIter; iter++ {
		mid := (lo + hi) / 2
		v, q := value(mid)
		if v > 0 {
			lo = mid
			bestQ = q
		} else {
			hi = mid
		}
		if hi-lo < tol {
			break
		}
	}
	return (lo + hi) / 2, bestQ, nil
}

// maxTiltedInfo maximizes I(q) - λ·E_q[cost] by the standard
// cost-constrained Blahut–Arimoto iteration and returns the optimum
// value and optimizing distribution.
func (c *DMC) maxTiltedInfo(lambda float64, costs []float64) (float64, []float64) {
	nx, ny := c.NumInputs(), c.NumOutputs()
	q := make([]float64, nx)
	for x := range q {
		q[x] = 1 / float64(nx)
	}
	py := make([]float64, ny)
	d := make([]float64, nx)
	best := math.Inf(-1)
	for iter := 0; iter < 2000; iter++ {
		for y := range py {
			py[y] = 0
		}
		for x, row := range c.w {
			if q[x] == 0 {
				continue
			}
			for y, p := range row {
				py[y] += q[x] * p
			}
		}
		for x, row := range c.w {
			var dx float64
			for y, p := range row {
				if p > 0 && py[y] > 0 {
					dx += p * math.Log2(p/py[y])
				}
			}
			d[x] = dx - lambda*costs[x]
		}
		var cur float64
		for x := range q {
			cur += q[x] * d[x]
		}
		if cur > best {
			best = cur
		}
		// Multiplicative update toward the tilted optimum.
		var norm float64
		for x := range q {
			q[x] *= math.Exp2(d[x])
			norm += q[x]
		}
		if norm == 0 {
			break
		}
		for x := range q {
			q[x] /= norm
		}
		// Convergence check via the duality-style gap.
		maxD := math.Inf(-1)
		for x := range d {
			if d[x] > maxD {
				maxD = d[x]
			}
		}
		if maxD-cur < 1e-12 {
			best = cur
			break
		}
	}
	return best, append([]float64(nil), q...)
}
