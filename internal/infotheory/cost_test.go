package infotheory

import (
	"math"
	"testing"
)

func TestCapacityPerCostValidation(t *testing.T) {
	c, err := BSC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CapacityPerCost([]float64{1}, 0, 0); err == nil {
		t.Error("expected length error")
	}
	if _, _, err := c.CapacityPerCost([]float64{1, 0}, 0, 0); err == nil {
		t.Error("expected positivity error")
	}
	if _, _, err := c.CapacityPerCost([]float64{1, math.NaN()}, 0, 0); err == nil {
		t.Error("expected NaN error")
	}
}

func TestCapacityPerCostUnitCostsEqualCapacity(t *testing.T) {
	// With all costs 1 the per-cost capacity equals the plain capacity.
	for _, p := range []float64{0, 0.1, 0.3} {
		c, err := BSC(p)
		if err != nil {
			t.Fatal(err)
		}
		perCost, _, err := c.CapacityPerCost([]float64{1, 1}, 1e-10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := BSCCapacity(p); math.Abs(perCost-want) > 1e-6 {
			t.Errorf("p=%v: per-cost capacity %v, want %v", p, perCost, want)
		}
	}
}

func TestCapacityPerCostNoiselessMatchesShannonRoot(t *testing.T) {
	// Noiseless binary channel with durations {1, 2}: the per-cost
	// capacity is Shannon's log2 of the root of x^-1 + x^-2 = 1.
	c, err := NewDMC([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	perCost, q, err := c.CapacityPerCost([]float64{1, 2}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NoiselessTimingCapacity([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(perCost-want) > 1e-6 {
		t.Fatalf("per-cost capacity %v, want Shannon root %v", perCost, want)
	}
	// The optimizing distribution favours the cheaper symbol.
	if q[0] <= q[1] {
		t.Fatalf("optimizer %v should favour the cheap symbol", q)
	}
}

func TestCapacityPerCostTimedZMatchesGoldenSection(t *testing.T) {
	// The generic solver must agree with a direct scan over the
	// Z-channel's input distribution.
	const flip = 0.2
	z, err := ZChannel(flip)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{1, 3}
	perCost, _, err := z.CapacityPerCost(costs, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for q1 := 0.001; q1 < 1; q1 += 0.001 {
		mi, err := z.MutualInformation([]float64{1 - q1, q1})
		if err != nil {
			t.Fatal(err)
		}
		if r := mi / ((1-q1)*costs[0] + q1*costs[1]); r > best {
			best = r
		}
	}
	if math.Abs(perCost-best) > 1e-4 {
		t.Fatalf("per-cost capacity %v, grid scan %v", perCost, best)
	}
}

func TestCapacityPerCostUselessChannel(t *testing.T) {
	c, err := NewDMC([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	perCost, _, err := c.CapacityPerCost([]float64{1, 2}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perCost > 1e-6 {
		t.Fatalf("useless channel per-cost capacity %v, want 0", perCost)
	}
}

func TestCapacityPerCostScaling(t *testing.T) {
	// Doubling all costs halves the per-cost capacity.
	c, err := BSC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := c.CapacityPerCost([]float64{1, 2}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.CapacityPerCost([]float64{2, 4}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-2*b) > 1e-6 {
		t.Fatalf("scaling violated: %v vs %v", a, 2*b)
	}
}
