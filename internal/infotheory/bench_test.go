package infotheory

import "testing"

func BenchmarkBlahutArimotoMSC64(b *testing.B) {
	c, err := MSC(64, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Capacity(1e-9, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapacityPerCostZ(b *testing.B) {
	z, err := ZChannel(0.2)
	if err != nil {
		b.Fatal(err)
	}
	costs := []float64{1, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := z.CapacityPerCost(costs, 1e-9, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFSMCapacity(b *testing.B) {
	trs := []FSMTransition{
		{From: 0, To: 1, Duration: 1},
		{From: 0, To: 1, Duration: 2},
		{From: 1, To: 0, Duration: 1},
		{From: 1, To: 2, Duration: 3},
		{From: 2, To: 0, Duration: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FSMCapacity(3, trs); err != nil {
			b.Fatal(err)
		}
	}
}
