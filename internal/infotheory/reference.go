package infotheory

import "math"

// This file retains the pre-optimization scalar Blahut–Arimoto kernels.
// They are the ground truth the optimized kernels in ba.go are measured
// against: differential tests assert bit-identical results, and
// cmd/kernelbench times them to produce the "before" numbers in
// BENCH_kernels.json. Keep them dumb and per-cell — their value is
// being obviously equivalent to the textbook iteration.

// CapacityReference computes the channel capacity with the original
// per-cell scalar Blahut–Arimoto loop (one math.Log2 per positive
// matrix cell per iteration). Results are bit-identical to Capacity.
func (c *DMC) CapacityReference(tol float64, maxIter int) (CapacityResult, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	nx, ny := c.NumInputs(), c.NumOutputs()
	px := make([]float64, nx)
	for x := range px {
		px[x] = 1 / float64(nx)
	}
	d := make([]float64, nx)
	py := make([]float64, ny)

	var res CapacityResult
	for iter := 1; iter <= maxIter; iter++ {
		for y := range py {
			py[y] = 0
		}
		for x, row := range c.w {
			if px[x] == 0 {
				continue
			}
			for y, p := range row {
				py[y] += px[x] * p
			}
		}
		for x, row := range c.w {
			var dx float64
			for y, p := range row {
				if p > 0 {
					dx += p * math.Log2(p/py[y])
				}
			}
			d[x] = dx
		}
		var lower float64
		upper := math.Inf(-1)
		for x := range d {
			lower += px[x] * d[x]
			if d[x] > upper {
				upper = d[x]
			}
		}
		res = CapacityResult{Capacity: lower, Iterations: iter, Gap: nonNegative(upper - lower)}
		if res.Gap <= tol {
			break
		}
		var norm float64
		for x := range px {
			px[x] *= math.Exp2(d[x] - lower)
			norm += px[x]
		}
		for x := range px {
			px[x] /= norm
		}
	}
	res.Capacity = nonNegative(res.Capacity)
	res.Input = append([]float64(nil), px...)
	return res, nil
}

// maxTiltedInfoReference is the original scalar cost-tilted BA
// iteration; maxTiltedInfo must match it bit-for-bit.
func (c *DMC) maxTiltedInfoReference(lambda float64, costs []float64) (float64, []float64) {
	nx, ny := c.NumInputs(), c.NumOutputs()
	q := make([]float64, nx)
	for x := range q {
		q[x] = 1 / float64(nx)
	}
	py := make([]float64, ny)
	d := make([]float64, nx)
	best := math.Inf(-1)
	for iter := 0; iter < 2000; iter++ {
		for y := range py {
			py[y] = 0
		}
		for x, row := range c.w {
			if q[x] == 0 {
				continue
			}
			for y, p := range row {
				py[y] += q[x] * p
			}
		}
		for x, row := range c.w {
			var dx float64
			for y, p := range row {
				if p > 0 && py[y] > 0 {
					dx += p * math.Log2(p/py[y])
				}
			}
			d[x] = dx - lambda*costs[x]
		}
		var cur float64
		for x := range q {
			cur += q[x] * d[x]
		}
		if cur > best {
			best = cur
		}
		var norm float64
		for x := range q {
			q[x] *= math.Exp2(d[x])
			norm += q[x]
		}
		if norm == 0 {
			break
		}
		for x := range q {
			q[x] /= norm
		}
		maxD := math.Inf(-1)
		for x := range d {
			if d[x] > maxD {
				maxD = d[x]
			}
		}
		if maxD-cur < 1e-12 {
			best = cur
			break
		}
	}
	return best, append([]float64(nil), q...)
}
