package infotheory

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// randomDMC builds a random nx×ny channel with a controllable number of
// zero cells, normalized exactly (last entry absorbs the residual), so
// rows pass validateDist.
func randomDMC(t *testing.T, src *rng.Source, nx, ny int, zeroP float64) *DMC {
	t.Helper()
	w := make([][]float64, nx)
	for x := range w {
		row := make([]float64, ny)
		var sum float64
		for y := range row {
			if !src.Bool(zeroP) {
				row[y] = src.Float64() + 1e-3
			}
			sum += row[y]
		}
		if sum == 0 {
			row[src.Intn(ny)] = 1
			sum = 1
		}
		for y := range row {
			row[y] /= sum
		}
		// Re-normalize the largest entry so the row sums to 1 within
		// validateDist's tolerance even after division rounding.
		var resid float64 = 1
		for y := 0; y < ny-1; y++ {
			resid -= row[y]
		}
		if resid >= 0 {
			row[ny-1] = resid
		}
		w[x] = row
	}
	c, err := NewDMC(w)
	if err != nil {
		t.Fatalf("randomDMC: %v", err)
	}
	return c
}

// TestCapacityMatchesReferenceBitExact checks the optimized BA kernel
// against the retained scalar reference on structured and random
// channels: capacity, gap, iteration count and the full input
// distribution must agree to the last bit.
func TestCapacityMatchesReferenceBitExact(t *testing.T) {
	var channels []*DMC
	mk := func(c *DMC, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		channels = append(channels, c)
	}
	mk(BSC(0.11))
	mk(BEC(0.3))
	mk(ZChannel(0.25))
	mk(MSC(64, 0.1))
	mk(MSC(16, 0.5))
	src := rng.New(7)
	for i := 0; i < 20; i++ {
		channels = append(channels, randomDMC(t, src, 2+src.Intn(9), 2+src.Intn(9), 0.3))
	}
	// A channel with more distinct values than maxValueClasses exercises
	// the fallback path.
	channels = append(channels, randomDMC(t, src, 12, 12, 0))

	for i, c := range channels {
		got, err := c.Capacity(1e-11, 500)
		if err != nil {
			t.Fatalf("channel %d: Capacity: %v", i, err)
		}
		want, err := c.CapacityReference(1e-11, 500)
		if err != nil {
			t.Fatalf("channel %d: CapacityReference: %v", i, err)
		}
		if got.Capacity != want.Capacity || got.Gap != want.Gap || got.Iterations != want.Iterations {
			t.Errorf("channel %d: optimized (C=%v gap=%v iters=%d) != reference (C=%v gap=%v iters=%d)",
				i, got.Capacity, got.Gap, got.Iterations, want.Capacity, want.Gap, want.Iterations)
		}
		for x := range got.Input {
			if got.Input[x] != want.Input[x] {
				t.Errorf("channel %d: input[%d] %v != %v", i, x, got.Input[x], want.Input[x])
			}
		}
	}
}

// TestTiltedInfoMatchesReferenceBitExact checks the cost-tilted BA
// kernel (the CapacityPerCost inner loop) against its scalar reference.
func TestTiltedInfoMatchesReferenceBitExact(t *testing.T) {
	src := rng.New(11)
	for i := 0; i < 15; i++ {
		nx := 2 + src.Intn(6)
		c := randomDMC(t, src, nx, 2+src.Intn(6), 0.25)
		costs := make([]float64, nx)
		for x := range costs {
			costs[x] = 0.5 + 2*src.Float64()
		}
		for _, lambda := range []float64{0, 0.1, 0.5, 1.3} {
			scratch := newTiltedScratch(c)
			gotV, gotQ := c.maxTiltedInfo(lambda, costs, scratch)
			wantV, wantQ := c.maxTiltedInfoReference(lambda, costs)
			if gotV != wantV {
				t.Errorf("case %d λ=%v: value %v != reference %v", i, lambda, gotV, wantV)
			}
			for x := range gotQ {
				if gotQ[x] != wantQ[x] {
					t.Errorf("case %d λ=%v: q[%d] %v != %v", i, lambda, x, gotQ[x], wantQ[x])
				}
			}
		}
	}
}

// TestScratchReuseIsStateless runs the same λ twice with a shared
// scratch and expects identical results: the scratch must carry no
// state between calls.
func TestScratchReuseIsStateless(t *testing.T) {
	c, err := MSC(8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	costs := []float64{1, 2, 1, 3, 1, 2, 1, 4}
	scratch := newTiltedScratch(c)
	v1, q1 := c.maxTiltedInfo(0.3, costs, scratch)
	c.maxTiltedInfo(1.1, costs, scratch) // clobber
	v2, q2 := c.maxTiltedInfo(0.3, costs, scratch)
	if v1 != v2 {
		t.Errorf("scratch reuse changed value: %v != %v", v1, v2)
	}
	for x := range q1 {
		if q1[x] != q2[x] {
			t.Errorf("scratch reuse changed q[%d]: %v != %v", x, q1[x], q2[x])
		}
	}
}

// TestNonNegativeInvariants is the property test for the shared clamp:
// mutual information, capacity and the BA gap are never negative for
// any valid channel and input distribution.
func TestNonNegativeInvariants(t *testing.T) {
	src := rng.New(23)
	for i := 0; i < 60; i++ {
		nx := 2 + src.Intn(7)
		c := randomDMC(t, src, nx, 2+src.Intn(7), 0.4)
		px := make([]float64, nx)
		var sum float64
		for x := range px {
			px[x] = src.Float64()
			sum += px[x]
		}
		for x := range px {
			px[x] /= sum
		}
		var resid float64 = 1
		for x := 0; x < nx-1; x++ {
			resid -= px[x]
		}
		if resid >= 0 {
			px[nx-1] = resid
		}
		mi, err := c.MutualInformation(px)
		if err != nil {
			t.Fatalf("case %d: MutualInformation: %v", i, err)
		}
		if mi < 0 || math.IsNaN(mi) {
			t.Errorf("case %d: MI = %v, want >= 0", i, mi)
		}
		res, err := c.Capacity(1e-9, 50) // few iterations: gap jitter most likely mid-run
		if err != nil {
			t.Fatalf("case %d: Capacity: %v", i, err)
		}
		if res.Capacity < 0 {
			t.Errorf("case %d: capacity = %v, want >= 0", i, res.Capacity)
		}
		if res.Gap < 0 {
			t.Errorf("case %d: gap = %v, want >= 0", i, res.Gap)
		}
	}
}

// TestNonNegativeHelper pins the clamp semantics, including NaN
// passthrough.
func TestNonNegativeHelper(t *testing.T) {
	if got := nonNegative(-1e-17); got != 0 {
		t.Errorf("nonNegative(-1e-17) = %v, want 0", got)
	}
	if got := nonNegative(0.5); got != 0.5 {
		t.Errorf("nonNegative(0.5) = %v, want 0.5", got)
	}
	if got := nonNegative(0); got != 0 {
		t.Errorf("nonNegative(0) = %v, want 0", got)
	}
	if got := nonNegative(math.NaN()); !math.IsNaN(got) {
		t.Errorf("nonNegative(NaN) = %v, want NaN", got)
	}
}

// TestBuildClassesFallback checks the dictionary cap: a matrix with too
// many distinct values must drop to the per-cell fallback (nil classes)
// while structured channels keep a small dictionary.
func TestBuildClassesFallback(t *testing.T) {
	c, err := MSC(64, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if c.cls == nil || len(c.vals) != 2 {
		t.Errorf("MSC(64): want 2 value classes, got vals=%v cls-nil=%v", c.vals, c.cls == nil)
	}
	src := rng.New(5)
	big := randomDMC(t, src, 16, 16, 0)
	if big.cls != nil {
		t.Errorf("random 16x16 channel: want fallback (nil classes), got %d classes", len(big.vals))
	}
}
