// Package infotheory implements the information-theoretic machinery the
// paper's capacity estimates are built on: entropy functions, discrete
// memoryless channels (DMCs) with a general Blahut–Arimoto capacity
// solver, closed-form capacities for the standard channels the paper
// references (binary symmetric, binary erasure, M-ary symmetric,
// Z-channel), Shannon's capacity for noiseless channels with unequal
// symbol durations (the basis of Millen's finite-state covert channel
// capacity [5] and Moskowitz's Simple Timing Channels [10]), and the
// finite-state-machine capacity itself.
package infotheory

import (
	"fmt"
	"math"
)

// BinaryEntropy returns H(p) = -p log2 p - (1-p) log2 (1-p) in bits,
// with the standard convention H(0) = H(1) = 0. Inputs outside [0, 1]
// are clamped.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Entropy returns the Shannon entropy in bits of a probability
// distribution. It returns an error if the distribution has negative
// entries or does not sum to 1 within tolerance.
func Entropy(p []float64) (float64, error) {
	if err := validateDist(p); err != nil {
		return 0, err
	}
	var h float64
	for _, pi := range p {
		if pi > 0 {
			h -= pi * math.Log2(pi)
		}
	}
	return h, nil
}

// KL returns the Kullback–Leibler divergence D(p || q) in bits. It
// returns an error if the inputs are not distributions of equal length,
// or +Inf if p puts mass where q does not.
func KL(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("infotheory: KL length mismatch %d != %d", len(p), len(q))
	}
	if err := validateDist(p); err != nil {
		return 0, err
	}
	if err := validateDist(q); err != nil {
		return 0, err
	}
	var d float64
	for i := range p {
		if p[i] == 0 {
			continue
		}
		if q[i] == 0 {
			return math.Inf(1), nil
		}
		d += p[i] * math.Log2(p[i]/q[i])
	}
	if d < 0 {
		d = 0 // numerical jitter
	}
	return d, nil
}

// validateDist checks non-negativity and normalization.
func validateDist(p []float64) error {
	if len(p) == 0 {
		return fmt.Errorf("infotheory: empty distribution")
	}
	var sum float64
	for i, pi := range p {
		if pi < 0 || math.IsNaN(pi) {
			return fmt.Errorf("infotheory: distribution entry %d is %v", i, pi)
		}
		sum += pi
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("infotheory: distribution sums to %v, want 1", sum)
	}
	return nil
}
