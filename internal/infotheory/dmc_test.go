package infotheory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDMCErrors(t *testing.T) {
	if _, err := NewDMC(nil); err == nil {
		t.Error("expected error for empty matrix")
	}
	if _, err := NewDMC([][]float64{{0.5, 0.5}, {1}}); err == nil {
		t.Error("expected error for ragged matrix")
	}
	if _, err := NewDMC([][]float64{{0.5, 0.4}}); err == nil {
		t.Error("expected error for unnormalized row")
	}
}

func TestDMCMatrixIsCopied(t *testing.T) {
	w := [][]float64{{0.5, 0.5}, {0.5, 0.5}}
	c, err := NewDMC(w)
	if err != nil {
		t.Fatal(err)
	}
	w[0][0] = 99
	if c.Prob(0, 0) != 0.5 {
		t.Fatal("NewDMC did not copy its input")
	}
}

func TestMutualInformationNoiseless(t *testing.T) {
	c, err := NewDMC([][]float64{{1, 0}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	mi, err := c.MutualInformation([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mi, 1, 1e-12) {
		t.Fatalf("MI = %v, want 1", mi)
	}
}

func TestMutualInformationErrors(t *testing.T) {
	c, err := BSC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MutualInformation([]float64{1}); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := c.MutualInformation([]float64{0.4, 0.4}); err == nil {
		t.Error("expected unnormalized error")
	}
}

func TestBSCCapacityMatchesBlahutArimoto(t *testing.T) {
	for _, p := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.9} {
		c, err := BSC(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Capacity(1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := BSCCapacity(p); !almostEqual(res.Capacity, want, 1e-9) {
			t.Errorf("BSC(%v): BA capacity %v, closed form %v", p, res.Capacity, want)
		}
	}
}

func TestBECCapacityMatchesBlahutArimoto(t *testing.T) {
	for _, p := range []float64{0, 0.2, 0.5, 0.99} {
		c, err := BEC(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Capacity(1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := BECCapacity(p); !almostEqual(res.Capacity, want, 1e-9) {
			t.Errorf("BEC(%v): BA capacity %v, closed form %v", p, res.Capacity, want)
		}
	}
}

func TestZChannelCapacityMatchesBlahutArimoto(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1} {
		c, err := ZChannel(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Capacity(1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := ZChannelCapacity(p); !almostEqual(res.Capacity, want, 1e-8) {
			t.Errorf("Z(%v): BA capacity %v, closed form %v", p, res.Capacity, want)
		}
	}
}

func TestMSCCapacityMatchesBlahutArimoto(t *testing.T) {
	for _, m := range []int{2, 4, 16} {
		for _, e := range []float64{0, 0.05, 0.2, 0.5} {
			c, err := MSC(m, e)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Capacity(1e-12, 0)
			if err != nil {
				t.Fatal(err)
			}
			if want := MSCCapacity(m, e); !almostEqual(res.Capacity, want, 1e-8) {
				t.Errorf("MSC(%d, %v): BA capacity %v, closed form %v", m, e, res.Capacity, want)
			}
		}
	}
}

func TestCapacityInputIsOptimalUniformForSymmetric(t *testing.T) {
	c, err := MSC(4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Capacity(1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Input {
		if !almostEqual(p, 0.25, 1e-6) {
			t.Fatalf("input[%d] = %v, want 0.25 (symmetric channel)", i, p)
		}
	}
	if res.Gap > 1e-12 {
		t.Fatalf("gap %v did not converge", res.Gap)
	}
}

func TestCapacityBounds(t *testing.T) {
	// Property: 0 <= C <= log2(min(|X|, |Y|)) for random channels.
	err := quick.Check(func(a, b, c, d uint8) bool {
		row := func(x, y uint8) []float64 {
			s := float64(x) + float64(y) + 2
			return []float64{(float64(x) + 1) / s, (float64(y) + 1) / s}
		}
		ch, err := NewDMC([][]float64{row(a, b), row(c, d)})
		if err != nil {
			return false
		}
		res, err := ch.Capacity(1e-9, 0)
		if err != nil {
			return false
		}
		return res.Capacity >= 0 && res.Capacity <= 1+1e-9
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCapacityUselessChannel(t *testing.T) {
	// All rows identical: output independent of input, capacity 0.
	c, err := NewDMC([][]float64{{0.3, 0.7}, {0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Capacity(1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capacity > 1e-9 {
		t.Fatalf("useless channel capacity = %v, want 0", res.Capacity)
	}
}

func TestCompose(t *testing.T) {
	// Cascading two BSCs gives a BSC with crossover p*(1-q)+q*(1-p).
	p, q := 0.1, 0.2
	a, err := BSC(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BSC(q)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Compose(b)
	if err != nil {
		t.Fatal(err)
	}
	want := p*(1-q) + q*(1-p)
	if !almostEqual(ab.Prob(0, 1), want, 1e-12) {
		t.Fatalf("cascade crossover = %v, want %v", ab.Prob(0, 1), want)
	}

	// Data processing: capacity of the cascade does not exceed either stage.
	resA, err := a.Capacity(1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	resAB, err := ab.Capacity(1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resAB.Capacity > resA.Capacity+1e-9 {
		t.Fatalf("cascade capacity %v exceeds stage capacity %v", resAB.Capacity, resA.Capacity)
	}
}

func TestComposeMismatch(t *testing.T) {
	a, err := BEC(0.1) // 2x3
	if err != nil {
		t.Fatal(err)
	}
	b, err := BSC(0.1) // 2x2
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Compose(b); err == nil {
		t.Fatal("expected cascade mismatch error")
	}
}

func TestChannelConstructorsValidate(t *testing.T) {
	if _, err := BSC(-0.1); err == nil {
		t.Error("BSC should reject negative p")
	}
	if _, err := BEC(1.1); err == nil {
		t.Error("BEC should reject p > 1")
	}
	if _, err := ZChannel(2); err == nil {
		t.Error("ZChannel should reject p > 1")
	}
	if _, err := MSC(1, 0.1); err == nil {
		t.Error("MSC should reject m < 2")
	}
	if _, err := MSC(4, -0.2); err == nil {
		t.Error("MSC should reject negative e")
	}
}

func TestErasureCapacity(t *testing.T) {
	tests := []struct {
		n    int
		p    float64
		want float64
	}{
		{1, 0, 1},
		{1, 0.3, 0.7},
		{8, 0.25, 6},
		{4, 1, 0},
	}
	for _, tt := range tests {
		if got := ErasureCapacity(tt.n, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("ErasureCapacity(%d, %v) = %v, want %v", tt.n, tt.p, got, tt.want)
		}
	}
}

func TestZChannelCapacityKnown(t *testing.T) {
	// At p = 0.5 the Z-channel capacity is log2(5/4) ~ 0.3219.
	if got, want := ZChannelCapacity(0.5), math.Log2(1.25); !almostEqual(got, want, 1e-12) {
		t.Fatalf("ZChannelCapacity(0.5) = %v, want %v", got, want)
	}
	if ZChannelCapacity(0) != 1 {
		t.Fatal("ZChannelCapacity(0) should be 1")
	}
	if ZChannelCapacity(1) != 0 {
		t.Fatal("ZChannelCapacity(1) should be 0")
	}
}

func TestMSCCapacityEdge(t *testing.T) {
	// e = (m-1)/m makes the output uniform regardless of input: capacity 0.
	if got := MSCCapacity(4, 0.75); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("MSCCapacity(4, 0.75) = %v, want 0", got)
	}
	if got := MSCCapacity(2, 0); got != 1 {
		t.Fatalf("MSCCapacity(2, 0) = %v, want 1", got)
	}
}
