package infotheory_test

import (
	"fmt"

	"repro/internal/infotheory"
)

// ExampleDMC_Capacity computes a binary symmetric channel's capacity
// with the Blahut–Arimoto solver and compares it with the closed form.
func ExampleDMC_Capacity() {
	ch, err := infotheory.BSC(0.11)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := ch.Capacity(1e-12, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Blahut-Arimoto: %.6f bits/use\n", res.Capacity)
	fmt.Printf("closed form:    %.6f bits/use\n", infotheory.BSCCapacity(0.11))
	// Output:
	// Blahut-Arimoto: 0.500084 bits/use
	// closed form:    0.500084 bits/use
}

// ExampleNoiselessTimingCapacity solves Shannon's classic telegraph
// example: symbol durations {1, 2} give C = log2(golden ratio).
func ExampleNoiselessTimingCapacity() {
	c, err := infotheory.NoiselessTimingCapacity([]float64{1, 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("capacity: %.6f bits per unit time\n", c)
	// Output:
	// capacity: 0.694242 bits per unit time
}

// ExampleFSMCapacity evaluates a Millen-style finite-state noiseless
// covert channel: fast/slow operations followed by an acknowledgement.
func ExampleFSMCapacity() {
	c, err := infotheory.FSMCapacity(2, []infotheory.FSMTransition{
		{From: 0, To: 1, Duration: 1}, // fast op
		{From: 0, To: 1, Duration: 2}, // slow op
		{From: 1, To: 0, Duration: 1}, // ack
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("capacity: %.4f bits per unit time\n", c)
	// Output:
	// capacity: 0.4057 bits per unit time
}
