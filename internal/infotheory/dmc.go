package infotheory

import (
	"fmt"
	"math"
)

// DMC is a discrete memoryless channel given by its transition matrix:
// W[x][y] = P(output y | input x). Rows must be probability
// distributions over a common output alphabet.
//
// The matrix is stored in one contiguous float64 slab (flat) with w
// holding per-row views into it, so the Blahut–Arimoto inner loops in
// ba.go stream over dense memory. vals/cls form the distinct-value
// dictionary those kernels use to hoist math.Log2 out of the per-cell
// loops; both are nil when the matrix has more than maxValueClasses
// distinct entries.
type DMC struct {
	w    [][]float64
	flat []float64
	vals []float64
	cls  []uint16
}

// NewDMC validates and wraps a transition matrix. The matrix is copied.
func NewDMC(w [][]float64) (*DMC, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("infotheory: DMC needs at least one input symbol")
	}
	ny := len(w[0])
	flat := make([]float64, 0, len(w)*ny)
	for x, row := range w {
		if len(row) != ny {
			return nil, fmt.Errorf("infotheory: DMC row %d has %d entries, want %d", x, len(row), ny)
		}
		if err := validateDist(row); err != nil {
			return nil, fmt.Errorf("infotheory: DMC row %d: %w", x, err)
		}
		flat = append(flat, row...)
	}
	rows := make([][]float64, len(w))
	for x := range rows {
		rows[x] = flat[x*ny : x*ny+ny : x*ny+ny]
	}
	c := &DMC{w: rows, flat: flat}
	c.vals, c.cls = buildClasses(flat)
	return c, nil
}

// NumInputs returns the input alphabet size.
func (c *DMC) NumInputs() int { return len(c.w) }

// NumOutputs returns the output alphabet size.
func (c *DMC) NumOutputs() int { return len(c.w[0]) }

// Prob returns P(y | x).
func (c *DMC) Prob(x, y int) float64 { return c.w[x][y] }

// MutualInformation returns I(X;Y) in bits for the given input
// distribution px. It returns an error if px is not a valid distribution
// over the input alphabet.
func (c *DMC) MutualInformation(px []float64) (float64, error) {
	if len(px) != c.NumInputs() {
		return 0, fmt.Errorf("infotheory: input distribution has %d entries, want %d", len(px), c.NumInputs())
	}
	if err := validateDist(px); err != nil {
		return 0, err
	}
	ny := c.NumOutputs()
	py := make([]float64, ny)
	for x, row := range c.w {
		for y, p := range row {
			py[y] += px[x] * p
		}
	}
	var mi float64
	for x, row := range c.w {
		if px[x] == 0 {
			continue
		}
		for y, p := range row {
			if p > 0 && py[y] > 0 {
				mi += px[x] * p * math.Log2(p/py[y])
			}
		}
	}
	return nonNegative(mi), nil
}

// CapacityResult holds the output of the Blahut–Arimoto iteration.
type CapacityResult struct {
	// Capacity is the channel capacity estimate in bits per use.
	Capacity float64
	// Input is the capacity-achieving input distribution.
	Input []float64
	// Iterations is the number of iterations performed.
	Iterations int
	// Gap is the final upper-lower capacity gap, a convergence bound.
	Gap float64
}

// Capacity computes the channel capacity by the Blahut–Arimoto
// algorithm, iterating until the duality gap falls below tol or maxIter
// iterations elapse. A tol of 0 defaults to 1e-10 and maxIter of 0
// defaults to 10000.
func (c *DMC) Capacity(tol float64, maxIter int) (CapacityResult, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	nx, ny := c.NumInputs(), c.NumOutputs()
	px := make([]float64, nx)
	for x := range px {
		px[x] = 1 / float64(nx)
	}
	d := make([]float64, nx) // per-input divergence D(W(.|x) || py)
	py := make([]float64, ny)
	logs := make([]float64, c.logsLen())

	var res CapacityResult
	for iter := 1; iter <= maxIter; iter++ {
		c.outputDist(px, py)
		c.divergences(py, logs, d)
		// Lower bound: I(px) = sum_x px[x] d[x]; upper bound: max_x d[x].
		var lower float64
		upper := math.Inf(-1)
		for x := range d {
			lower += px[x] * d[x]
			if d[x] > upper {
				upper = d[x]
			}
		}
		res = CapacityResult{Capacity: lower, Iterations: iter, Gap: nonNegative(upper - lower)}
		if res.Gap <= tol {
			break
		}
		// Multiplicative update: px[x] *= 2^{d[x] - lower}, renormalize.
		var norm float64
		for x := range px {
			px[x] *= math.Exp2(d[x] - lower)
			norm += px[x]
		}
		for x := range px {
			px[x] /= norm
		}
	}
	res.Capacity = nonNegative(res.Capacity)
	res.Input = append([]float64(nil), px...)
	return res, nil
}

// Compose returns the cascade channel c followed by d; the output
// alphabet of c must match the input alphabet of d.
func (c *DMC) Compose(d *DMC) (*DMC, error) {
	if c.NumOutputs() != d.NumInputs() {
		return nil, fmt.Errorf("infotheory: cascade mismatch: %d outputs vs %d inputs",
			c.NumOutputs(), d.NumInputs())
	}
	nx, nz := c.NumInputs(), d.NumOutputs()
	w := make([][]float64, nx)
	for x := 0; x < nx; x++ {
		w[x] = make([]float64, nz)
		for y := 0; y < c.NumOutputs(); y++ {
			pxy := c.w[x][y]
			if pxy == 0 {
				continue
			}
			for z := 0; z < nz; z++ {
				w[x][z] += pxy * d.w[y][z]
			}
		}
	}
	return NewDMC(w)
}

// BSC returns the binary symmetric channel with crossover probability p.
func BSC(p float64) (*DMC, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("infotheory: BSC crossover %v out of [0,1]", p)
	}
	return NewDMC([][]float64{{1 - p, p}, {p, 1 - p}})
}

// BEC returns the binary erasure channel with erasure probability p;
// output symbol 2 is the erasure.
func BEC(p float64) (*DMC, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("infotheory: BEC erasure %v out of [0,1]", p)
	}
	return NewDMC([][]float64{{1 - p, 0, p}, {0, 1 - p, p}})
}

// ZChannel returns the Z-channel in which input 1 flips to 0 with
// probability p and input 0 is always received correctly, the model
// underlying Moskowitz's timed Z-channel analysis [11].
func ZChannel(p float64) (*DMC, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("infotheory: Z-channel flip %v out of [0,1]", p)
	}
	return NewDMC([][]float64{{1, 0}, {p, 1 - p}})
}

// MSC returns the M-ary symmetric channel over m symbols in which a
// symbol is received correctly with probability 1-e and otherwise is
// replaced by one of the m-1 other symbols uniformly. This is the
// "converted channel" of the paper's Figure 5.
func MSC(m int, e float64) (*DMC, error) {
	if m < 2 {
		return nil, fmt.Errorf("infotheory: MSC needs m >= 2, got %d", m)
	}
	if math.IsNaN(e) || e < 0 || e > 1 {
		return nil, fmt.Errorf("infotheory: MSC error rate %v out of [0,1]", e)
	}
	w := make([][]float64, m)
	slab := make([]float64, m*m)
	off := e / float64(m-1)
	for x := range w {
		row := slab[x*m : x*m+m : x*m+m]
		for y := range row {
			if x == y {
				row[y] = 1 - e
			} else {
				row[y] = off
			}
		}
		w[x] = row
	}
	return NewDMC(w)
}

// BSCCapacity returns 1 - H(p), the closed-form BSC capacity.
func BSCCapacity(p float64) float64 { return 1 - BinaryEntropy(p) }

// BECCapacity returns 1 - p, the closed-form binary erasure capacity.
func BECCapacity(p float64) float64 { return 1 - p }

// ErasureCapacity returns the capacity n(1-p) in bits per use of an
// erasure channel over n-bit symbols, the paper's Theorem 1 bound.
func ErasureCapacity(n int, p float64) float64 { return float64(n) * (1 - p) }

// MSCCapacity returns the closed-form capacity of the M-ary symmetric
// channel: log2(m) - H(e) - e*log2(m-1).
func MSCCapacity(m int, e float64) float64 {
	c := math.Log2(float64(m)) - BinaryEntropy(e) - e*math.Log2(float64(m-1))
	if c < 0 {
		c = 0
	}
	return c
}

// ZChannelCapacity returns the closed-form Z-channel capacity
// log2(1 + (1-p) * p^(p/(1-p))).
func ZChannelCapacity(p float64) float64 {
	if p >= 1 {
		return 0
	}
	if p == 0 {
		return 1
	}
	return math.Log2(1 + (1-p)*math.Pow(p, p/(1-p)))
}
