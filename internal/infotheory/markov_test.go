package infotheory

import (
	"math"
	"testing"
)

func TestStationaryDistributionValidation(t *testing.T) {
	if _, err := StationaryDistribution(nil); err == nil {
		t.Error("expected empty chain error")
	}
	if _, err := StationaryDistribution([][]float64{{1, 0}, {1}}); err == nil {
		t.Error("expected ragged matrix error")
	}
	if _, err := StationaryDistribution([][]float64{{0.5, 0.4}, {0.5, 0.5}}); err == nil {
		t.Error("expected unnormalized row error")
	}
}

func TestStationaryDistributionTwoState(t *testing.T) {
	// P(G->B) = 0.1, P(B->G) = 0.4: pi = (0.8, 0.2).
	p := [][]float64{{0.9, 0.1}, {0.4, 0.6}}
	pi, err := StationaryDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 0.8, 1e-9) || !almostEqual(pi[1], 0.2, 1e-9) {
		t.Fatalf("stationary = %v, want [0.8, 0.2]", pi)
	}
}

func TestStationaryDistributionPeriodicChain(t *testing.T) {
	// A deterministic 2-cycle is periodic; the lazy iteration must
	// still converge to the uniform stationary distribution.
	p := [][]float64{{0, 1}, {1, 0}}
	pi, err := StationaryDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pi[0], 0.5, 1e-9) || !almostEqual(pi[1], 0.5, 1e-9) {
		t.Fatalf("stationary = %v, want uniform", pi)
	}
}

func TestMarkovEntropyRateIIDChain(t *testing.T) {
	// Rows identical to (q, 1-q): the chain is i.i.d. with entropy H(q).
	q := 0.3
	p := [][]float64{{q, 1 - q}, {q, 1 - q}}
	h, err := MarkovEntropyRate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, BinaryEntropy(q), 1e-9) {
		t.Fatalf("entropy rate %v, want H(%v) = %v", h, q, BinaryEntropy(q))
	}
}

func TestMarkovEntropyRateDeterministic(t *testing.T) {
	p := [][]float64{{0, 1}, {1, 0}}
	h, err := MarkovEntropyRate(p)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Fatalf("deterministic chain entropy rate %v, want 0", h)
	}
}

func TestMarkovEntropyRateBounded(t *testing.T) {
	// Sticky chains have lower entropy rate than their i.i.d.
	// marginals; all rates stay within [0, log2 n].
	sticky := [][]float64{{0.95, 0.05}, {0.2, 0.8}}
	h, err := MarkovEntropyRate(sticky)
	if err != nil {
		t.Fatal(err)
	}
	if h <= 0 || h >= 1 {
		t.Fatalf("entropy rate %v out of (0, 1)", h)
	}
	// The stationary marginal is (0.8, 0.2); i.i.d. entropy H(0.2).
	if h >= BinaryEntropy(0.2) {
		t.Fatalf("sticky chain rate %v should be below marginal entropy %v", h, BinaryEntropy(0.2))
	}
	if math.IsNaN(h) {
		t.Fatal("NaN entropy rate")
	}
}
