package obs

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics registers process self-observation on r,
// sampled at scrape time via GaugeFunc: goroutine count, live heap
// bytes, completed GC cycles, and whole seconds since start. The
// values are scrape-time samples and therefore exempt from the
// byte-identical exposition contract every other family honors —
// consumers that need deterministic snapshots (the cluster status
// federation, the exposition golden test) filter on the process_
// prefix. Registering twice on one registry is idempotent, matching
// the registry's re-registration rule.
func RegisterRuntimeMetrics(r *Registry, start time.Time) {
	r.GaugeFunc("process_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc("process_heap_alloc_bytes", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.HeapAlloc)
	})
	r.GaugeFunc("process_gc_cycles_total", func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.NumGC)
	})
	r.GaugeFunc("process_uptime_seconds", func() int64 {
		return int64(time.Since(start) / time.Second)
	})
}
