package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/stats"
)

// Estimate is the empirical Definition 1 parameter estimate implied by
// observed channel-use events, with Wilson 95% confidence intervals.
// Pd and Pi are event fractions over all uses; Ps is the substitution
// fraction over transmission events only, matching Definition 1's
// conditioning.
type Estimate struct {
	Pd, Pi, Ps                         float64
	PdLo, PdHi, PiLo, PiHi, PsLo, PsHi float64
	// Uses is the number of channel uses the estimate is based on.
	Uses int64
}

// Estimate computes the parameter estimate from event tallies.
func (c UseCounts) Estimate() Estimate {
	uses := c.Uses()
	e := Estimate{Uses: uses}
	if uses == 0 {
		e.PdHi, e.PiHi, e.PsHi = 1, 1, 1
		return e
	}
	pd := stats.Proportion{K: int(c.Deletes), N: int(uses)}
	pi := stats.Proportion{K: int(c.Inserts), N: int(uses)}
	e.Pd, e.Pi = pd.Estimate(), pi.Estimate()
	e.PdLo, e.PdHi = pd.Wilson95()
	e.PiLo, e.PiHi = pi.Wilson95()
	trans := c.Transmits + c.Substitutes
	ps := stats.Proportion{K: int(c.Substitutes), N: int(trans)}
	e.Ps = ps.Estimate()
	e.PsLo, e.PsHi = ps.Wilson95()
	if trans == 0 {
		e.PsLo, e.PsHi = 0, 1
	}
	return e
}

// Contains reports whether the given assumed parameters fall inside
// the estimate's confidence intervals, the agreement check the
// trace-smoke gate asserts. NaN assumptions never agree.
func (e Estimate) Contains(pd, pi, ps float64) bool {
	in := func(v, lo, hi float64) bool { return !math.IsNaN(v) && v >= lo && v <= hi }
	return in(pd, e.PdLo, e.PdHi) && in(pi, e.PiLo, e.PiHi) && in(ps, e.PsLo, e.PsHi)
}

// SpanStats aggregates the spans of one kernel name seen in a trace.
type SpanStats struct {
	// Count is the number of spans recorded.
	Count int64
	// Sums accumulates each numeric span field (e.g. iters, nodes).
	Sums map[string]float64
}

// TraceSummary is the aggregate of one recorded JSONL trace.
type TraceSummary struct {
	// UseCounts tallies the per-use events.
	UseCounts
	// Events is the total number of trace lines read.
	Events int64
	// Supervision-layer event counts (0 when the trace has none).
	Chunks, Attempts, Retries, Resyncs, Recoveries, FailedChunks int64
	// BackoffUses sums the channel uses burned backing off.
	BackoffUses int64
	// Spans aggregates kernel spans by name.
	Spans map[string]*SpanStats
}

// Estimate returns the parameter estimate implied by the trace's
// per-use events.
func (s *TraceSummary) Estimate() Estimate { return s.UseCounts.Estimate() }

// traceLine is the loose decoding schema for one JSONL line; unknown
// keys are ignored so the reader stays forward-compatible.
type traceLine struct {
	T       string `json:"t"`
	K       string `json:"k"`
	Sp      string `json:"sp"`
	Inj     int    `json:"inj"`
	Attempt int64  `json:"attempt"`
	Uses    int64  `json:"uses"`
}

// ReadTrace streams a JSONL trace and returns its aggregate summary.
// Unknown event types are counted in Events and otherwise skipped, so
// traces from newer writers still analyze.
func ReadTrace(r io.Reader) (*TraceSummary, error) {
	sum := &TraceSummary{Spans: make(map[string]*SpanStats)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev traceLine
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", lineNo, err)
		}
		sum.Events++
		switch ev.T {
		case "use":
			switch ev.K {
			case "T":
				sum.Transmits++
			case "S":
				sum.Substitutes++
			case "D":
				sum.Deletes++
			case "I":
				sum.Inserts++
			default:
				return nil, fmt.Errorf("obs: trace line %d: unknown use kind %q", lineNo, ev.K)
			}
			if ev.Inj != 0 {
				sum.Injected++
			}
		case "chunk":
			sum.Chunks++
		case "attempt":
			sum.Attempts++
			if ev.Attempt >= 2 {
				sum.Retries++
			}
		case "backoff":
			sum.BackoffUses += ev.Uses
		case "resync":
			sum.Resyncs++
		case "recover":
			sum.Recoveries++
		case "chunkfail":
			sum.FailedChunks++
		case "span":
			st := sum.Spans[ev.Sp]
			if st == nil {
				st = &SpanStats{Sums: make(map[string]float64)}
				sum.Spans[ev.Sp] = st
			}
			st.Count++
			// Re-decode the line generically to sum its numeric fields.
			var m map[string]any
			if err := json.Unmarshal(line, &m); err == nil {
				for k, v := range m {
					if f, ok := v.(float64); ok && k != "inj" {
						st.Sums[k] += f
					}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return sum, nil
}
