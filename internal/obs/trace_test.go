package obs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func TestTracerJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Use(1, "T", 5, 5, false, false)
	tr.Use(2, "D", 6, 0, true, true)
	tr.Use(3, "I", 6, 9, false, false)
	tr.Event("chunk", I("chunk", 3), S("proto", "fallback"))
	tr.Span("blahut_arimoto", I("iters", 147), F("gap", 1e-11))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`{"t":"use","i":1,"k":"T","q":5,"d":5}`,
		`{"t":"use","i":2,"k":"D","q":6,"inj":1}`,
		`{"t":"use","i":3,"k":"I","q":6,"d":9}`,
		`{"t":"chunk","chunk":3,"proto":"fallback"}`,
		`{"t":"span","sp":"blahut_arimoto","iters":147,"gap":1e-11}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace:\n%s\nwant:\n%s", got, want)
	}
	if tr.Events() != 5 {
		t.Errorf("events = %d, want 5", tr.Events())
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Use(1, "T", 0, 0, false, false)
	tr.Event("chunk")
	tr.Span("x")
	if err := tr.Flush(); err != nil {
		t.Errorf("nil flush: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil close: %v", err)
	}
	if tr.Events() != 0 || tr.Err() != nil {
		t.Error("nil tracer carries state")
	}
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) is not the disabled tracer")
	}
}

func TestTracerBoundedBuffering(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.flushAt = 64
	for i := int64(1); i <= 10; i++ {
		tr.Use(i, "T", 1, 1, false, false)
	}
	if buf.Len() == 0 {
		t.Error("no flush despite exceeding the buffer bound")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 10 {
		t.Errorf("%d lines after close, want 10", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	params := channel.Params{N: 4, Pd: 0.2, Pi: 0.1, Ps: 0.05}
	ch, err := channel.NewDeletionInsertion(params, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewChannelRecorder(ch, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		rec.Use(uint32(i % 16))
	}
	tr.Event("chunk", I("chunk", 0), S("proto", "active"))
	tr.Event("attempt", I("chunk", 0), I("attempt", 1))
	tr.Event("attempt", I("chunk", 0), I("attempt", 2))
	tr.Event("backoff", I("uses", 32))
	tr.Event("resync", I("chunk", 0))
	tr.Event("chunkfail", I("chunk", 1))
	tr.Span("seqdecode", I("nodes", 1234))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.UseCounts != rec.Counts() {
		t.Errorf("trace counts %+v != live counts %+v", sum.UseCounts, rec.Counts())
	}
	if sum.Uses() != 5000 || rec.Uses() != 5000 {
		t.Errorf("uses %d / %d, want 5000", sum.Uses(), rec.Uses())
	}
	if sum.Chunks != 1 || sum.Attempts != 2 || sum.Retries != 1 ||
		sum.Resyncs != 1 || sum.FailedChunks != 1 || sum.BackoffUses != 32 {
		t.Errorf("supervision counts off: %+v", sum)
	}
	sp := sum.Spans["seqdecode"]
	if sp == nil || sp.Count != 1 || sp.Sums["nodes"] != 1234 {
		t.Errorf("span aggregation off: %+v", sp)
	}
	// The live estimate and the trace-derived estimate must agree.
	if live, traced := rec.Estimate(), sum.Estimate(); live != traced {
		t.Errorf("live estimate %+v != traced %+v", live, traced)
	}
}

// TestEstimatorRecovers locks the round-trip accuracy contract: on a
// seeded 1e5-use run, the trace-driven estimator must recover the
// injected (Pd, Pi, Ps) within its own Wilson 95% intervals.
func TestEstimatorRecovers(t *testing.T) {
	truth := channel.Params{N: 8, Pd: 0.12, Pi: 0.05, Ps: 0.03}
	ch, err := channel.NewDeletionInsertion(truth, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	rec, err := NewChannelRecorder(ch, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	for i := 0; i < 100000; i++ {
		rec.Use(src.Symbol(truth.N))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	est := sum.Estimate()
	if est.Uses != 100000 {
		t.Fatalf("uses = %d", est.Uses)
	}
	if !est.Contains(truth.Pd, truth.Pi, truth.Ps) {
		t.Errorf("truth (%.3f, %.3f, %.3f) outside estimate CIs: %+v",
			truth.Pd, truth.Pi, truth.Ps, est)
	}
	// The intervals should be tight at this sample size.
	if est.PdHi-est.PdLo > 0.02 || est.PiHi-est.PiLo > 0.02 || est.PsHi-est.PsLo > 0.02 {
		t.Errorf("intervals implausibly wide at 1e5 uses: %+v", est)
	}
}

func TestTraceSetDeterministicOrder(t *testing.T) {
	emit := func(order []string) string {
		set := NewTraceSet()
		for _, name := range order {
			set.Tracer(name).Event("cell", S("exp", name))
		}
		var buf bytes.Buffer
		if _, err := set.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := emit([]string{"E9", "E1", "E13"})
	b := emit([]string{"E13", "E9", "E1"})
	if a != b {
		t.Errorf("trace set output depends on stream creation order:\n%s\nvs\n%s", a, b)
	}
	// Per-stream payloads differ (the i field tracks creation order),
	// but stream order is sorted: E1 before E13 before E9.
	if !(strings.Index(a, `"exp":"E1"`) < strings.Index(a, `"exp":"E13"`) &&
		strings.Index(a, `"exp":"E13"`) < strings.Index(a, `"exp":"E9"`)) {
		t.Errorf("streams not in sorted order:\n%s", a)
	}
}

func TestNilTraceSet(t *testing.T) {
	var set *TraceSet
	if tr := set.Tracer("x"); tr != nil {
		t.Error("nil set returned a live tracer")
	}
	if n, err := set.WriteTo(&bytes.Buffer{}); n != 0 || err != nil {
		t.Errorf("nil set WriteTo = (%d, %v)", n, err)
	}
	if set.Events() != 0 || set.Names() != nil {
		t.Error("nil set carries state")
	}
}

// BenchmarkRecorderDisabled measures the per-use overhead of a
// count-only recorder (nil tracer) against the raw channel, the
// contract behind the <3% hot-path regression bound.
func BenchmarkRecorderDisabled(b *testing.B) {
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4, Pd: 0.2, Pi: 0.1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	rec, err := NewChannelRecorder(ch, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Use(uint32(i & 15))
	}
}

func BenchmarkRawChannelUse(b *testing.B) {
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4, Pd: 0.2, Pi: 0.1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Use(uint32(i & 15))
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4, Pd: 0.2, Pi: 0.1}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	rec, err := NewChannelRecorder(ch, NewTracer(&buf), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Use(uint32(i & 15))
		if buf.Len() > 1<<22 {
			buf.Reset()
		}
	}
}
