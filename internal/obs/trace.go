package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// defaultFlushAt is the buffered-byte threshold at which a tracer
// writes its pending lines to the sink.
const defaultFlushAt = 1 << 16

// Tracer records structured observability events as JSONL: one JSON
// object per line, keys in fixed emission order, no wall-clock or
// scheduling-dependent values — so a trace is a pure function of the
// traced run's seed and replays byte-identically.
//
// A nil *Tracer is the no-op fast path: every method nil-checks its
// receiver, so instrumented hot loops pay one predictable branch when
// tracing is disabled. Methods are safe for concurrent use, but
// interleaving streams from multiple goroutines into one tracer is
// not deterministic — give each deterministic stream its own tracer
// (see TraceSet) and concatenate.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	buf     []byte
	flushAt int
	events  int64
	err     error
}

// NewTracer returns a tracer writing JSONL to w with bounded
// buffering: lines accumulate in memory and flush to w whenever the
// pending buffer exceeds 64KiB (and at Flush/Close).
func NewTracer(w io.Writer) *Tracer {
	if w == nil {
		return nil
	}
	return &Tracer{w: w, flushAt: defaultFlushAt}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Events returns the number of events emitted so far.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first sink write error, if any. Tracing degrades to
// dropping events after a sink error rather than failing the run.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Flush writes pending lines to the sink.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
	return t.err
}

// Close flushes pending lines. It does not close the sink, which the
// caller owns.
func (t *Tracer) Close() error { return t.Flush() }

func (t *Tracer) flushLocked() {
	if len(t.buf) == 0 || t.err != nil {
		return
	}
	if _, err := t.w.Write(t.buf); err != nil {
		t.err = fmt.Errorf("obs: trace sink: %w", err)
	}
	t.buf = t.buf[:0]
}

// commit finishes one line started in t.buf under t.mu.
func (t *Tracer) commit() {
	t.buf = append(t.buf, '}', '\n')
	t.events++
	if len(t.buf) >= t.flushAt {
		t.flushLocked()
	}
}

// Field is one key/value pair of a trace event.
type Field struct {
	Key string
	s   string
	i   int64
	f   float64
	// kind: 0 int, 1 string, 2 float
	kind uint8
}

// I returns an integer field.
func I(key string, v int64) Field { return Field{Key: key, i: v, kind: 0} }

// S returns a string field.
func S(key, v string) Field { return Field{Key: key, s: v, kind: 1} }

// F returns a float field, rendered with strconv 'g' shortest form
// (deterministic across platforms for the same value).
func F(key string, v float64) Field { return Field{Key: key, f: v, kind: 2} }

// appendField appends ,"key":value.
func appendField(b []byte, f Field) []byte {
	b = append(b, ',')
	b = strconv.AppendQuote(b, f.Key)
	b = append(b, ':')
	switch f.kind {
	case 0:
		b = strconv.AppendInt(b, f.i, 10)
	case 1:
		b = strconv.AppendQuote(b, f.s)
	default:
		b = strconv.AppendFloat(b, f.f, 'g', -1, 64)
	}
	return b
}

// Use records one channel use: its global index i (1-based within the
// stream), the Definition 1 event code k ("T", "S", "D", "I"),
// the queued symbol, the delivered symbol (omitted for deletions,
// which deliver nothing), and whether a fault-injection layer overrode
// the use.
func (t *Tracer) Use(i int64, k string, queued, delivered uint32, deleted, injected bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := append(t.buf, `{"t":"use","i":`...)
	b = strconv.AppendInt(b, i, 10)
	b = append(b, `,"k":`...)
	b = strconv.AppendQuote(b, k)
	b = append(b, `,"q":`...)
	b = strconv.AppendUint(b, uint64(queued), 10)
	if !deleted {
		b = append(b, `,"d":`...)
		b = strconv.AppendUint(b, uint64(delivered), 10)
	}
	if injected {
		b = append(b, `,"inj":1`...)
	}
	t.buf = b
	t.commit()
	t.mu.Unlock()
}

// Event records a named protocol-layer event ({"t":"<name>",...}).
// Names used by this repository: chunk, attempt, backoff, resync,
// recover, chunkfail, sup, cell, layer.
func (t *Tracer) Event(name string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := append(t.buf, `{"t":`...)
	b = strconv.AppendQuote(b, name)
	for _, f := range fields {
		b = appendField(b, f)
	}
	t.buf = b
	t.commit()
	t.mu.Unlock()
}

// Span records a named kernel span ({"t":"span","sp":"<name>",...}):
// a deterministic summary of one kernel execution, e.g. Blahut–Arimoto
// iteration counts or sequential-decoding node counts. Durations are
// deliberately excluded — wall-clock belongs in the metrics registry,
// never in a deterministic trace.
func (t *Tracer) Span(name string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	b := append(t.buf, `{"t":"span","sp":`...)
	b = strconv.AppendQuote(b, name)
	for _, f := range fields {
		b = appendField(b, f)
	}
	t.buf = b
	t.commit()
	t.mu.Unlock()
}
