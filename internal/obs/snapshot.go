package obs

// Structured registry snapshots (DESIGN.md §14). The Prometheus text
// exposition is the registry's wire form for scrapers; the health
// layer's snapshot ring needs the same data as values, not text, on a
// deterministic tick. Snapshot() is that API: every family flattened
// into its exposed series names with integer samples, plus the raw
// bucket counts of every latency histogram (the exposition collapses
// them into quantiles; windowed quantile queries need the buckets
// themselves so they can difference two snapshots).
//
// Determinism contract: two snapshots of identically-updated registries
// are deeply equal — families render in registration order, series
// within a family in sorted label-value order, exactly like WriteProm.
// Nothing time-dependent enters a snapshot except GaugeFunc families,
// which by design sample live state (callers that need byte-identical
// artifacts filter those the same way the cluster status federation
// filters process_ series).

// SeriesSample is one flattened integer series: a counter, gauge, or
// gauge-func cell under its fully rendered name (labels included,
// escaped exactly as the exposition renders them).
type SeriesSample struct {
	// Name is the exposed series name, e.g. "cluster_forward_total" or
	// `capserver_requests_total{endpoint="bounds",code="200"}`.
	Name string
	// Kind is "counter", "gauge", or "gaugefunc".
	Kind string
	// Value is the sample.
	Value int64
}

// HistSample is one latency-histogram cell: the family's single label
// rendered into the series name plus the raw log10(ms) bucket counts.
type HistSample struct {
	// Name is the exposed series name, e.g.
	// `capserver_latency_ms{endpoint="bounds"}`.
	Name string
	// Counts are the per-bucket observation counts (LatencyLogBins
	// buckets over [LatencyLogMin, LatencyLogMax]).
	Counts []int
	// Total is the total observation count.
	Total int
}

// RegistrySnapshot is one deterministic point-in-time copy of a
// registry's samples.
type RegistrySnapshot struct {
	Series []SeriesSample
	Hists  []HistSample
}

// Snapshot captures every family's current samples. See the package
// comment above for the determinism contract.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var snap RegistrySnapshot
	for _, f := range families {
		switch f.kind {
		case counterKind, gaugeKind:
			kind := "counter"
			if f.kind == gaugeKind {
				kind = "gauge"
			}
			for _, c := range f.sorted() {
				snap.Series = append(snap.Series, SeriesSample{
					Name:  f.name + labelString(f.labels, c.values),
					Kind:  kind,
					Value: c.v.Load(),
				})
			}
		case gaugeFuncKind:
			snap.Series = append(snap.Series, SeriesSample{
				Name:  f.name,
				Kind:  "gaugefunc",
				Value: f.fn(),
			})
		case latencyKind:
			for _, c := range f.sorted() {
				c.histMu.Lock()
				counts, total := c.hist.Counts(), c.hist.Total()
				c.histMu.Unlock()
				snap.Hists = append(snap.Hists, HistSample{
					Name:   f.name + labelString(f.labels, c.values),
					Counts: counts,
					Total:  total,
				})
			}
		}
	}
	return snap
}

// QuantileFromCounts computes the q-th latency quantile in milliseconds
// from raw log10(ms) bucket counts, by exactly the upper-bin-edge rule
// the exposition and LatencyVec.Quantile use (including the empty /
// q<=0 / q>=1 edge pinning documented on quantileUpperMS). The health
// layer computes windowed quantiles by differencing two snapshots'
// bucket counts and feeding the deltas here, which is what makes a
// windowed p99 agree bit-for-bit with LatencyVec.Quantile over the same
// observations.
func QuantileFromCounts(counts []int, total int, q float64) float64 {
	return quantileUpperMS(counts, total, q)
}
