package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling into dir/cpu.pprof and returns a
// stop function that finishes the CPU profile and writes a heap
// profile to dir/heap.pprof. It backs the -pprof flag of the CLIs
// (stdlib runtime/pprof only).
func StartProfiles(dir string) (stop func() error, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: pprof dir: %w", err)
	}
	cpuFile, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return fmt.Errorf("obs: close cpu profile: %w", err)
		}
		heapFile, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		runtime.GC() // materialize up-to-date allocation stats
		if err := pprof.WriteHeapProfile(heapFile); err != nil {
			heapFile.Close()
			return fmt.Errorf("obs: write heap profile: %w", err)
		}
		return heapFile.Close()
	}, nil
}
