package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Latency histograms bin log10(milliseconds) over [10µs, 100s] — 0.1
// decade per bin — so one fixed-size histogram resolves both
// microsecond cache hits and multi-second cold computations. The
// boundaries are part of the exposition contract (the capserver golden
// test locks them).
const (
	LatencyLogMin  = -2.0 // log10(ms): 10µs
	LatencyLogMax  = 5.0  // log10(ms): 100s
	LatencyLogBins = 70
)

// metricKind discriminates the registry's family types.
type metricKind int

const (
	counterKind metricKind = iota + 1
	gaugeKind
	gaugeFuncKind
	latencyKind
)

// labelSep joins label values into cell keys; label values containing
// it would collide, but every label value in this repository is an
// endpoint or status token.
const labelSep = "\x00"

// Registry is a race-safe set of named metric families with
// deterministic Prometheus-text exposition: families render in
// registration order and cells within a family in sorted label-value
// order, so two scrapes of identically-updated registries are
// byte-identical.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	help     map[string]string
}

// family is one named metric with its cells (one per label-value
// tuple; a single anonymous cell when unlabeled).
type family struct {
	name   string
	kind   metricKind
	labels []string
	fn     func() int64 // gaugeFuncKind only, sampled at scrape

	mu    sync.Mutex
	cells map[string]*cell
}

// cell is one (family, label values) series.
type cell struct {
	values []string
	v      atomic.Int64

	histMu sync.Mutex
	hist   *stats.Histogram // latencyKind only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family), help: make(map[string]string)}
}

// Help attaches HELP text to a family. Families with help render a
// `# HELP` / `# TYPE` comment pair before their samples, with the
// Prometheus text-format escaping for help strings (`\` and newline;
// quotes are NOT escaped in help text — that rule applies only to label
// values). Families without help render bare samples, exactly as every
// pre-existing exposition in this repository does, so attaching help to
// new families never perturbs golden-tested ones.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// register adds or retrieves a family, enforcing shape consistency:
// re-registering a name is allowed (components sharing a registry may
// race to declare the same series) but only with the identical kind
// and label names.
func (r *Registry) register(name string, kind metricKind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || strings.Join(f.labels, labelSep) != strings.Join(labels, labelSep) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{name: name, kind: kind, labels: labels, cells: make(map[string]*cell)}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// cell retrieves or creates the series for the given label values.
func (f *family) cell(values []string) *cell {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, labelSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.cells[key]
	if !ok {
		c = &cell{values: append([]string(nil), values...)}
		if f.kind == latencyKind {
			// The range is static and valid, so the constructor cannot fail.
			c.hist, _ = stats.NewHistogram(LatencyLogMin, LatencyLogMax, LatencyLogBins)
		}
		f.cells[key] = c
	}
	return c
}

// peek retrieves the series without creating it (nil if absent), so
// read-backs do not materialize zero-valued series in the exposition.
func (f *family) peek(values []string) *cell {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cells[strings.Join(values, labelSep)]
}

// sorted returns the family's cells in sorted label-value order.
func (f *family) sorted() []*cell {
	f.mu.Lock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	cs := make([]*cell, len(keys))
	for i, k := range keys {
		cs[i] = f.cells[k]
	}
	f.mu.Unlock()
	return cs
}

// Counter is a monotone int64 series.
type Counter struct{ c *cell }

// Inc adds one.
func (c *Counter) Inc() { c.c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.v.Load() }

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name string) *Counter {
	return &Counter{c: r.register(name, counterKind, nil).cell(nil)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or retrieves) a counter family with the given
// label names.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, counterKind, labels)}
}

// With returns the counter for the given label values, creating the
// series on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return &Counter{c: v.f.cell(values)}
}

// Value returns the series' count without creating it (0 if absent).
func (v *CounterVec) Value(values ...string) int64 {
	if c := v.f.peek(values); c != nil {
		return c.v.Load()
	}
	return 0
}

// Gauge is a settable int64 series.
type Gauge struct{ c *cell }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.c.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.c.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.c.v.Load() }

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name string) *Gauge {
	return &Gauge{c: r.register(name, gaugeKind, nil).cell(nil)}
}

// GaugeVec is a labeled gauge family. Its first use in this repository
// is the capserver_build_info constant metric, which follows the
// Prometheus build-info convention: the interesting values live in the
// labels and the sample is pinned to 1.
type GaugeVec struct{ f *family }

// GaugeVec registers (or retrieves) a gauge family with the given
// label names.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, gaugeKind, labels)}
}

// With returns the gauge for the given label values, creating the
// series on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return &Gauge{c: v.f.cell(values)}
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time, for quantities owned elsewhere (queue depths, cache sizes).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	f := r.register(name, gaugeFuncKind, nil)
	f.fn = fn
}

// LatencyVec is a labeled family of log10(ms)-bucketed latency
// histograms exposed as a count plus 0.5/0.9/0.99 quantiles.
type LatencyVec struct{ f *family }

// LatencyVec registers (or retrieves) a latency family keyed by one
// label.
func (r *Registry) LatencyVec(name, label string) *LatencyVec {
	return &LatencyVec{f: r.register(name, latencyKind, []string{label})}
}

// Observe records one duration for the given label value.
//
// Zero and negative durations (a cache hit timed at clock granularity)
// are clamped to the lowest bucket explicitly: feeding log10(0) = -Inf
// into bucket selection is exactly the failure mode the clamp guards
// against, and sub-lowest-edge positives clamp the same way.
func (v *LatencyVec) Observe(value string, d time.Duration) {
	c := v.f.cell([]string{value})
	ms := float64(d) / float64(time.Millisecond)
	x := LatencyLogMin // lowest bucket
	if ms > 0 {
		x = math.Log10(ms) // Histogram.Add clamps both out-of-range sides
	}
	c.histMu.Lock()
	c.hist.Add(x)
	c.histMu.Unlock()
}

// Total returns the number of observations for the label value.
func (v *LatencyVec) Total(value string) int64 {
	c := v.f.peek([]string{value})
	if c == nil {
		return 0
	}
	c.histMu.Lock()
	defer c.histMu.Unlock()
	return int64(c.hist.Total())
}

// Quantile returns the q-th latency quantile in milliseconds for the
// label value, by the same upper-bin-edge rule the exposition uses
// (see quantileUpperMS, including its q<=0 / q>=1 / empty-histogram
// edge behavior). An absent series returns 0 without materializing it.
func (v *LatencyVec) Quantile(value string, q float64) float64 {
	c := v.f.peek([]string{value})
	if c == nil {
		return 0
	}
	c.histMu.Lock()
	counts, total := c.hist.Counts(), c.hist.Total()
	c.histMu.Unlock()
	return quantileUpperMS(counts, total, q)
}

// quantileUpperMS approximates the q-th latency quantile in
// milliseconds from the log-binned histogram (upper bin edge, a
// conservative estimate). Edge behavior, pinned by tests:
//
//   - an empty histogram returns 0 — no observations, no estimate;
//   - q <= 0 returns the upper edge of the first occupied bucket (the
//     smallest value the histogram can attribute any mass to — the
//     rank is clamped to the first observation, never "below" it);
//   - q >= 1 returns the upper edge of the last occupied bucket (q is
//     clamped to 1, so an out-of-range quantile never reports the
//     histogram's global upper bound when all mass sits lower).
func quantileUpperMS(counts []int, total int, q float64) float64 {
	if total == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := int(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	width := (LatencyLogMax - LatencyLogMin) / float64(len(counts))
	for i, c := range counts {
		cum += c
		if cum >= target {
			return math.Pow(10, LatencyLogMin+float64(i+1)*width)
		}
	}
	return math.Pow(10, LatencyLogMax)
}

// WriteProm renders the registry in flat Prometheus text format with
// deterministic line ordering: families in registration order, series
// within a family in sorted label-value order.
func (r *Registry) WriteProm(w io.Writer) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	for _, f := range families {
		if h := help[f.name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(h))
			fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType())
		}
		switch f.kind {
		case counterKind, gaugeKind:
			for _, c := range f.sorted() {
				fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, c.values), c.v.Load())
			}
		case gaugeFuncKind:
			fmt.Fprintf(w, "%s %d\n", f.name, f.fn())
		case latencyKind:
			for _, c := range f.sorted() {
				c.histMu.Lock()
				counts, total := c.hist.Counts(), c.hist.Total()
				c.histMu.Unlock()
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, c.values), total)
				for _, q := range []float64{0.5, 0.9, 0.99} {
					fmt.Fprintf(w, "%s{%s=\"%s\",quantile=\"%g\"} %.4g\n",
						f.name, f.labels[0], escapeLabelValue(c.values[0]), q, quantileUpperMS(counts, total, q))
				}
			}
		}
	}
}

// labelString renders {k1="v1",k2="v2"}, or "" when unlabeled, with
// the Prometheus text-format escaping for label values. Go's %q is
// deliberately NOT used here: it escapes tabs, control bytes and
// non-ASCII runes Go-style (\t, \u2028, ...), which the Prometheus
// format does not define — a scraper would read the backslash
// sequences literally. The format's own rule is minimal: exactly
// backslash, double-quote, and newline are escaped; every other byte
// (including raw UTF-8) passes through.
func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelEscaper implements the label-value escaping of the Prometheus
// text format version 0.0.4: `\` -> `\\`, `"` -> `\"`, newline -> `\n`.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper implements HELP-text escaping: only `\` and newline.
// Double quotes are legal raw in help text and escaping them would
// change the rendered documentation.
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeLabelValue escapes one label value for exposition.
func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// escapeHelp escapes HELP text for exposition.
func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// promType maps a family kind onto its # TYPE keyword. Latency
// families render as count + quantiles, which is the summary shape.
func (k metricKind) promType() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case latencyKind:
		return "summary"
	}
	return "untyped"
}
