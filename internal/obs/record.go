package obs

import (
	"fmt"

	"repro/internal/channel"
)

// UseChannel is the per-use channel surface the recorder wraps and
// implements; it is structurally identical to syncproto.UseChannel and
// faultinject.UseChannel, so a recorder slots anywhere in a stack.
type UseChannel interface {
	Use(queued uint32) channel.Use
}

// UseCounts tallies Definition 1 events observed on a channel.
type UseCounts struct {
	// Transmits counts clean transmissions, Substitutes transmissions
	// delivered with a substitution error; Deletes and Inserts count
	// deletion and insertion events.
	Transmits, Substitutes, Deletes, Inserts int64
	// Injected counts uses a fault-injection layer overrode (0 when no
	// fault stack was attached).
	Injected int64
}

// Uses returns the total number of channel uses observed.
func (c UseCounts) Uses() int64 {
	return c.Transmits + c.Substitutes + c.Deletes + c.Inserts
}

// Add accumulates other into c.
func (c *UseCounts) Add(other UseCounts) {
	c.Transmits += other.Transmits
	c.Substitutes += other.Substitutes
	c.Deletes += other.Deletes
	c.Inserts += other.Inserts
	c.Injected += other.Injected
}

// ChannelRecorder wraps a per-use channel, keeping live UseCounts and
// (when a tracer is attached) emitting one trace event per use. It is
// a transparent pass-through: the wrapped channel's randomness and
// outcomes are untouched, so wrapping never changes simulation
// results.
//
// Like the channels it wraps, a recorder serves one goroutine.
type ChannelRecorder struct {
	inner    UseChannel
	tr       *Tracer
	injected func() int64 // cumulative injection count of the stack, nil = none
	lastInj  int64
	uses     int64
	counts   UseCounts
}

// NewChannelRecorder wraps inner. tr may be nil (count-only mode).
// injected, when non-nil, is polled after every use to attribute
// fault-layer overrides (pass faultinject's Stack.Injected).
func NewChannelRecorder(inner UseChannel, tr *Tracer, injected func() int64) (*ChannelRecorder, error) {
	if inner == nil {
		return nil, fmt.Errorf("obs: nil inner channel")
	}
	r := &ChannelRecorder{inner: inner, tr: tr, injected: injected}
	if injected != nil {
		r.lastInj = injected()
	}
	return r, nil
}

// Use forwards one use, recording its outcome.
func (r *ChannelRecorder) Use(queued uint32) channel.Use {
	u := r.inner.Use(queued)
	r.record(queued, u)
	return u
}

// Observe records one use observed elsewhere. It is a
// channel.SetObserver-compatible hook for channels driven directly
// rather than through the recorder's Use (install with
// ch.SetObserver(rec.Observe)); do not combine both on one channel or
// every use counts twice.
func (r *ChannelRecorder) Observe(queued uint32, u channel.Use) { r.record(queued, u) }

// record tallies one use and emits its trace event.
func (r *ChannelRecorder) record(queued uint32, u channel.Use) {
	r.uses++
	switch u.Kind {
	case channel.EventTransmit:
		r.counts.Transmits++
	case channel.EventSubstitute:
		r.counts.Substitutes++
	case channel.EventDelete:
		r.counts.Deletes++
	case channel.EventInsert:
		r.counts.Inserts++
	}
	inj := false
	if r.injected != nil {
		if cur := r.injected(); cur != r.lastInj {
			inj = true
			r.counts.Injected += cur - r.lastInj
			r.lastInj = cur
		}
	}
	if r.tr != nil {
		r.tr.Use(r.uses, u.Kind.String(), queued, u.Delivered, u.Kind == channel.EventDelete, inj)
	}
}

// Uses returns the number of uses served through the recorder.
func (r *ChannelRecorder) Uses() int64 { return r.uses }

// Counts returns the live event tallies.
func (r *ChannelRecorder) Counts() UseCounts { return r.counts }

// Estimate returns the live (Pd, Pi, Ps) estimate from the tallies so
// far, without needing a recorded trace.
func (r *ChannelRecorder) Estimate() Estimate { return r.counts.Estimate() }
