package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExpositionDeterministic(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		reqs := r.CounterVec("requests_total", "endpoint", "code")
		hits := r.Counter("hits_total")
		r.GaugeFunc("depth", func() int64 { return 7 })
		g := r.Gauge("inflight")
		for _, ep := range order {
			reqs.With(ep, "200").Inc()
		}
		reqs.With("a", "400").Add(2)
		hits.Add(3)
		g.Set(5)
		var b strings.Builder
		r.WriteProm(&b)
		return b.String()
	}
	got := build([]string{"b", "a", "c"})
	want := strings.Join([]string{
		`requests_total{endpoint="a",code="200"} 1`,
		`requests_total{endpoint="a",code="400"} 2`,
		`requests_total{endpoint="b",code="200"} 1`,
		`requests_total{endpoint="c",code="200"} 1`,
		`hits_total 3`,
		`depth 7`,
		`inflight 5`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
	// Cell creation order must not affect the bytes.
	if again := build([]string{"c", "b", "a"}); again != got {
		t.Errorf("exposition depends on creation order:\n%s\nvs\n%s", got, again)
	}
}

func TestCounterVecValueDoesNotCreate(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "l")
	if got := v.Value("absent"); got != 0 {
		t.Fatalf("absent value = %d", got)
	}
	var b strings.Builder
	r.WriteProm(&b)
	if b.Len() != 0 {
		t.Errorf("read-back materialized a series:\n%s", b.String())
	}
}

func TestRegistryReRegister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total")
	b := r.Counter("c_total")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("re-registered counter split state: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("shape conflict did not panic")
		}
	}()
	r.Gauge("c_total")
}

// TestLatencyClampZeroDuration locks the log10(0) audit: zero,
// negative and sub-lowest-edge durations land in the lowest bucket
// (never a -Inf/NaN bucket selection), and the quantile read-back is
// the lowest bucket's upper edge.
func TestLatencyClampZeroDuration(t *testing.T) {
	r := NewRegistry()
	lv := r.LatencyVec("lat_ms", "ep")
	lv.Observe("x", 0)
	lv.Observe("x", -time.Second)
	lv.Observe("x", time.Nanosecond) // 1e-6 ms, below the 10µs lowest edge
	if got := lv.Total("x"); got != 3 {
		t.Fatalf("total = %d, want 3 (observations dropped)", got)
	}
	c := lv.f.peek([]string{"x"})
	counts := c.hist.Counts()
	if counts[0] != 3 {
		t.Errorf("lowest bucket holds %d of 3 clamped observations; counts[0..3]=%v", counts[0], counts[:4])
	}
	var b strings.Builder
	r.WriteProm(&b)
	// Upper edge of bucket 0 is 10^(-2+0.1) ms.
	if !strings.Contains(b.String(), `lat_ms{ep="x",quantile="0.5"} 0.01259`) {
		t.Errorf("quantile not at lowest bucket edge:\n%s", b.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("n_total", "w")
	lv := r.LatencyVec("lat_ms", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%4))
			for i := 0; i < 500; i++ {
				v.With(name).Inc()
				lv.Observe(name, time.Duration(i)*time.Microsecond)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			var b strings.Builder
			r.WriteProm(&b)
		}
		close(done)
	}()
	wg.Wait()
	<-done
	var total int64
	for _, name := range []string{"a", "b", "c", "d"} {
		total += v.Value(name)
	}
	if total != 8*500 {
		t.Errorf("lost increments: %d of %d", total, 8*500)
	}
}
