package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// TraceSet is a deterministic multi-stream trace sink for parallel
// runs: each independent stream (one experiment, one worker task)
// records into its own named in-memory tracer, and WriteTo emits the
// buffers concatenated in sorted-name order. The resulting JSONL file
// is therefore byte-identical regardless of worker count or goroutine
// schedule, as long as each stream is individually deterministic.
//
// A nil *TraceSet is the disabled fast path: Tracer returns a nil
// *Tracer, which no-ops everywhere.
type TraceSet struct {
	mu      sync.Mutex
	bufs    map[string]*bytes.Buffer
	tracers map[string]*Tracer
}

// NewTraceSet returns an empty set.
func NewTraceSet() *TraceSet {
	return &TraceSet{
		bufs:    make(map[string]*bytes.Buffer),
		tracers: make(map[string]*Tracer),
	}
}

// Tracer returns the named stream's tracer, creating it on first use.
// Calling Tracer on a nil set returns a nil (disabled) tracer.
func (s *TraceSet) Tracer(name string) *Tracer {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tracers[name]; ok {
		return t
	}
	buf := &bytes.Buffer{}
	t := NewTracer(buf)
	s.bufs[name] = buf
	s.tracers[name] = t
	return t
}

// Names returns the stream names in sorted (emission) order.
func (s *TraceSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.bufs))
	for n := range s.bufs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Events returns the total events recorded across all streams.
func (s *TraceSet) Events() int64 {
	if s == nil {
		return 0
	}
	var n int64
	for _, name := range s.Names() {
		s.mu.Lock()
		t := s.tracers[name]
		s.mu.Unlock()
		n += t.Events()
	}
	return n
}

// WriteTo flushes every stream and writes the buffers to w in sorted
// stream-name order.
func (s *TraceSet) WriteTo(w io.Writer) (int64, error) {
	if s == nil {
		return 0, nil
	}
	var total int64
	for _, name := range s.Names() {
		s.mu.Lock()
		t, buf := s.tracers[name], s.bufs[name]
		s.mu.Unlock()
		if err := t.Flush(); err != nil {
			return total, fmt.Errorf("obs: stream %q: %w", name, err)
		}
		n, err := w.Write(buf.Bytes())
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
