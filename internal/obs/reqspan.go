package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Request-scoped tracing (DESIGN.md §12). A request span ("rspan") is
// one hop's record of a cluster request: which node touched it, on
// which routing path, with what outcome. Unlike channel-use traces,
// request spans deliberately carry wall-clock durations (queue wait,
// compute, total serve) — the serving layer's contract is weaker than
// the kernel layer's: span *structure* (IDs, nodes, paths, counts) is
// deterministic under a seeded harness while the timing fields are
// measurements. Every consumer that asserts reproducibility (the
// cluster fault harness, capstat reconciliation) asserts on structure
// and counts only, never on the durations.

// TraceHeader carries a request's trace ID across cluster hops and
// back to the client. It lives here, not in internal/cluster, because
// both the cluster router (which propagates it) and capserver (which
// keys its per-request timing exposition off its presence) need it
// without importing each other.
const TraceHeader = "X-Capserver-Trace"

// Request-span path codes. One request yields at most one owned OR
// one forward span at its origin; forward requests add hedge/retry
// spans at the origin, remote spans at each peer that served the
// pre-routed hop, and a degraded span when no peer answered.
const (
	// PathOwned: the origin node owned the key and served locally.
	PathOwned = "owned"
	// PathRemote: this node served a pre-routed request for a peer.
	PathRemote = "remote"
	// PathForward: the origin routed the key toward its owner; the
	// span records the target and, when a peer answered, the winner.
	PathForward = "forward"
	// PathHedge: the origin fired a hedged second request.
	PathHedge = "hedge"
	// PathRetry: the origin re-attempted a peer after a retryable
	// failure.
	PathRetry = "retry"
	// PathDegraded: the origin computed a non-owned key locally
	// because no peer path succeeded.
	PathDegraded = "degraded"
)

// ReqSpan is one hop of a request's cross-node trace.
type ReqSpan struct {
	// ID is the request's deterministic trace ID (see DESIGN.md §12
	// for the derivation rule).
	ID string `json:"id"`
	// Node is the member that recorded the span.
	Node string `json:"node"`
	// Path is one of the Path* codes above.
	Path string `json:"path"`
	// Peer is the hop's counterpart: the key's owner on a forward span,
	// the attempted peer on hedge/retry spans, the unreachable owner on
	// a degraded span, the forwarding origin on a remote span.
	Peer string `json:"peer,omitempty"`
	// Winner, on a forward span, names the peer whose answer was
	// relayed; empty means no peer answered and a degraded span
	// terminates the request instead.
	Winner string `json:"winner,omitempty"`
	// Hedge is 1 on a forward span won by the hedged second request.
	Hedge int64 `json:"hedge,omitempty"`
	// Status is the HTTP status of the hop's response (serving and
	// forward spans).
	Status int64 `json:"status,omitempty"`
	// Cache is the X-Capserver-Cache class of a locally-served hop.
	Cache string `json:"cache,omitempty"`
	// QueueUS and ComputeUS split a locally-served hop's time into
	// compute-queue wait and kernel compute, in microseconds; ServeUS
	// is the hop's total local serve time. Wall-clock measurements —
	// see the package comment at the top of this file.
	QueueUS   int64 `json:"queue_us,omitempty"`
	ComputeUS int64 `json:"compute_us,omitempty"`
	ServeUS   int64 `json:"serve_us,omitempty"`
}

// ReqSpan appends one request span to the trace. Field order is fixed
// so span structure stays byte-stable for identical inputs.
func (t *Tracer) ReqSpan(sp ReqSpan) {
	if t == nil {
		return
	}
	fields := make([]Field, 0, 11)
	fields = append(fields, S("id", sp.ID), S("node", sp.Node), S("path", sp.Path))
	if sp.Peer != "" {
		fields = append(fields, S("peer", sp.Peer))
	}
	if sp.Winner != "" {
		fields = append(fields, S("winner", sp.Winner))
	}
	if sp.Hedge != 0 {
		fields = append(fields, I("hedge", sp.Hedge))
	}
	if sp.Status != 0 {
		fields = append(fields, I("status", sp.Status))
	}
	if sp.Cache != "" {
		fields = append(fields, S("cache", sp.Cache))
	}
	if sp.QueueUS != 0 {
		fields = append(fields, I("queue_us", sp.QueueUS))
	}
	if sp.ComputeUS != 0 {
		fields = append(fields, I("compute_us", sp.ComputeUS))
	}
	if sp.ServeUS != 0 {
		fields = append(fields, I("serve_us", sp.ServeUS))
	}
	t.Event("rspan", fields...)
}

// reqSpanPrefix is the byte prefix every rspan line starts with: the
// tracer emits keys in fixed order, so non-rspan events (channel uses,
// protocol events, kernel spans) are filtered without JSON decoding.
var reqSpanPrefix = []byte(`{"t":"rspan"`)

// ReadReqSpans parses the request spans out of a JSONL trace stream,
// silently skipping every other event type, so a node's combined
// trace file (channel uses, supervisor events, request spans) feeds
// the analyzer directly.
func ReadReqSpans(r io.Reader) ([]ReqSpan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var spans []ReqSpan
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || !bytes.HasPrefix(raw, reqSpanPrefix) {
			continue
		}
		var sp ReqSpan
		if err := json.Unmarshal(raw, &sp); err != nil {
			return nil, fmt.Errorf("obs: rspan line %d: %w", line, err)
		}
		if sp.ID == "" || sp.Node == "" || sp.Path == "" {
			return nil, fmt.Errorf("obs: rspan line %d: missing id, node or path", line)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return spans, nil
}

// ReadReqSpanFiles reads and concatenates the request spans of several
// per-node trace files (the capstat ingestion path).
func ReadReqSpanFiles(paths ...string) ([]ReqSpan, error) {
	var all []ReqSpan
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		spans, err := ReadReqSpans(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		all = append(all, spans...)
	}
	return all, nil
}
