package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReqSpanRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	full := ReqSpan{
		ID: "n1-1.1-deadbeef", Node: "n1", Path: PathForward,
		Peer: "n2", Winner: "n3", Hedge: 1, Status: 200, Cache: "hit",
		QueueUS: 10, ComputeUS: 20, ServeUS: 35,
	}
	sparse := ReqSpan{ID: "n1-1.2-cafecafe", Node: "n1", Path: PathOwned}
	tr.ReqSpan(full)
	tr.ReqSpan(sparse)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadReqSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2", len(spans))
	}
	if spans[0] != full {
		t.Fatalf("full span roundtrip:\n got %+v\nwant %+v", spans[0], full)
	}
	if spans[1] != sparse {
		t.Fatalf("sparse span roundtrip:\n got %+v\nwant %+v", spans[1], sparse)
	}
	// Zero-valued fields must be omitted from the wire line, and every
	// line must carry the fixed filterable prefix.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if strings.Contains(lines[1], "peer") || strings.Contains(lines[1], "serve_us") {
		t.Fatalf("sparse span leaked zero fields: %s", lines[1])
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, `{"t":"rspan"`) {
			t.Fatalf("rspan line lacks the filter prefix: %s", line)
		}
	}
}

func TestReqSpanNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.ReqSpan(ReqSpan{ID: "x", Node: "n", Path: PathOwned}) // must not panic
}

func TestReadReqSpansSkipsOtherEvents(t *testing.T) {
	input := strings.Join([]string{
		`{"t":"use","chan":"c1","sym":1}`,
		`{"t":"rspan","id":"r1","node":"n1","path":"owned"}`,
		``,
		`{"t":"kernel_span","name":"bounds"}`,
		`{"t":"rspan","id":"r2","node":"n2","path":"remote","peer":"n1"}`,
	}, "\n")
	spans, err := ReadReqSpans(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].ID != "r1" || spans[1].Peer != "n1" {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestReadReqSpansRejectsMalformed(t *testing.T) {
	if _, err := ReadReqSpans(strings.NewReader(`{"t":"rspan","id":"r1"`)); err == nil {
		t.Fatal("truncated rspan line accepted")
	}
	if _, err := ReadReqSpans(strings.NewReader(`{"t":"rspan","id":"r1","node":"n1"}`)); err == nil {
		t.Fatal("rspan without a path accepted")
	}
}

func TestReadReqSpanFiles(t *testing.T) {
	dir := t.TempDir()
	for name, id := range map[string]string{"n1.jsonl": "r1", "n2.jsonl": "r2"} {
		line := `{"t":"rspan","id":"` + id + `","node":"` + strings.TrimSuffix(name, ".jsonl") + `","path":"owned"}` + "\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	spans, err := ReadReqSpanFiles(filepath.Join(dir, "n1.jsonl"), filepath.Join(dir, "n2.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 || spans[0].ID != "r1" || spans[1].ID != "r2" {
		t.Fatalf("spans = %+v", spans)
	}
	if _, err := ReadReqSpanFiles(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestLatencyVecQuantileEdges(t *testing.T) {
	r := NewRegistry()
	lv := r.LatencyVec("t_latency_ms", "endpoint")

	if got := lv.Quantile("absent", 0.5); got != 0 {
		t.Fatalf("absent series quantile = %v, want 0 (and no materialized cell)", got)
	}
	lv.Observe("bounds", 1*time.Millisecond)
	lv.Observe("bounds", 100*time.Millisecond)
	p50 := lv.Quantile("bounds", 0.5)
	p99 := lv.Quantile("bounds", 0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("p50=%v p99=%v, want 0 < p50 <= p99", p50, p99)
	}
	// q <= 0 clamps to the first occupied bucket, q >= 1 to the last:
	// both finite, ordered, and stable against wilder inputs.
	lo, hi := lv.Quantile("bounds", -1), lv.Quantile("bounds", 2)
	if lo <= 0 || hi < lo {
		t.Fatalf("q<=0 gives %v, q>=1 gives %v", lo, hi)
	}
	if hi != lv.Quantile("bounds", 1) {
		t.Fatalf("q=2 (%v) != q=1 (%v) after clamping", hi, lv.Quantile("bounds", 1))
	}
	if lo != lv.Quantile("bounds", 0.0001) {
		t.Fatalf("q<=0 (%v) not clamped to the first observation's bucket (%v)",
			lo, lv.Quantile("bounds", 0.0001))
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("t_info", "version")
	gv.With("go1.x").Set(1)
	if got := gv.With("go1.x").Value(); got != 1 {
		t.Fatalf("gauge value %d", got)
	}
	var buf bytes.Buffer
	r.WriteProm(&buf)
	if !strings.Contains(buf.String(), `t_info{version="go1.x"} 1`) {
		t.Fatalf("exposition missing labeled gauge:\n%s", buf.String())
	}
}

func TestRegisterRuntimeMetricsIdempotent(t *testing.T) {
	r := NewRegistry()
	start := time.Now()
	RegisterRuntimeMetrics(r, start)
	RegisterRuntimeMetrics(r, start) // re-registration must not panic

	var buf bytes.Buffer
	r.WriteProm(&buf)
	out := buf.String()
	for _, name := range []string{
		"process_goroutines", "process_heap_alloc_bytes",
		"process_gc_cycles_total", "process_uptime_seconds",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s:\n%s", name, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "process_") && strings.Contains(line, "-") {
			t.Errorf("negative runtime sample: %s", line)
		}
	}
}
