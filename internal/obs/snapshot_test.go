package obs

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPromEscaping locks the text-format v0.0.4 escaping rules the
// exposition audit introduced: label values escape backslash, quote and
// newline (and nothing else — tabs and non-ASCII pass through raw);
// HELP text escapes backslash and newline but leaves quotes alone.
func TestPromEscaping(t *testing.T) {
	r := NewRegistry()
	r.Help("hostile_total", "line one\nline \\two \"quoted\"")
	v := r.CounterVec("hostile_total", "path")
	v.With(`C:\tmp`).Inc()
	v.With("two\nlines").Inc()
	v.With(`say "hi"`).Inc()
	v.With("tab\there é").Inc()
	var b strings.Builder
	r.WriteProm(&b)
	got := b.String()
	want := strings.Join([]string{
		`# HELP hostile_total line one\nline \\two "quoted"`,
		`# TYPE hostile_total counter`,
		`hostile_total{path="C:\\tmp"} 1`,
		`hostile_total{path="say \"hi\""} 1`,
		"hostile_total{path=\"tab\there é\"} 1",
		`hostile_total{path="two\nlines"} 1`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestHelpOptIn verifies families without registered help render bare
// samples — the property that keeps the capserver exposition golden
// test byte-stable while new families carry documentation.
func TestHelpOptIn(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total").Inc()
	r.Help("doc_total", "documented")
	r.Counter("doc_total").Add(2)
	var b strings.Builder
	r.WriteProm(&b)
	want := strings.Join([]string{
		`plain_total 1`,
		`# HELP doc_total documented`,
		`# TYPE doc_total counter`,
		`doc_total 2`,
	}, "\n") + "\n"
	if got := b.String(); got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestHelpTypeKeywords checks the TYPE line per family kind.
func TestHelpTypeKeywords(t *testing.T) {
	r := NewRegistry()
	r.Help("c_total", "c")
	r.Help("g", "g")
	r.Help("gf", "gf")
	r.Help("lat_ms", "lat")
	r.Counter("c_total")
	r.Gauge("g").Set(1)
	r.GaugeFunc("gf", func() int64 { return 2 })
	r.LatencyVec("lat_ms", "ep").Observe("x", time.Millisecond)
	var b strings.Builder
	r.WriteProm(&b)
	got := b.String()
	for _, line := range []string{
		"# TYPE c_total counter",
		"# TYPE g gauge",
		"# TYPE gf gauge",
		"# TYPE lat_ms summary",
	} {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, got)
		}
	}
}

// TestSnapshotDeterministic: two identically-updated registries
// snapshot deeply equal regardless of cell-creation order, with series
// names rendered exactly as the exposition renders them.
func TestSnapshotDeterministic(t *testing.T) {
	build := func(order []string) RegistrySnapshot {
		r := NewRegistry()
		reqs := r.CounterVec("requests_total", "endpoint", "code")
		lv := r.LatencyVec("lat_ms", "endpoint")
		r.GaugeFunc("depth", func() int64 { return 7 })
		g := r.Gauge("inflight")
		for _, ep := range order {
			reqs.With(ep, "200").Inc()
			lv.Observe(ep, 3*time.Millisecond)
		}
		g.Set(5)
		return r.Snapshot()
	}
	a := build([]string{"b", "a", "c"})
	b := build([]string{"c", "b", "a"})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("snapshot depends on creation order:\n%+v\nvs\n%+v", a, b)
	}
	wantSeries := []SeriesSample{
		{Name: `requests_total{endpoint="a",code="200"}`, Kind: "counter", Value: 1},
		{Name: `requests_total{endpoint="b",code="200"}`, Kind: "counter", Value: 1},
		{Name: `requests_total{endpoint="c",code="200"}`, Kind: "counter", Value: 1},
		{Name: "depth", Kind: "gaugefunc", Value: 7},
		{Name: "inflight", Kind: "gauge", Value: 5},
	}
	if !reflect.DeepEqual(a.Series, wantSeries) {
		t.Errorf("series:\n%+v\nwant:\n%+v", a.Series, wantSeries)
	}
	if len(a.Hists) != 3 || a.Hists[0].Name != `lat_ms{endpoint="a"}` || a.Hists[0].Total != 1 {
		t.Errorf("hists: %+v", a.Hists)
	}
}

// TestSnapshotIsolation: mutating the registry after Snapshot must not
// alter the snapshot's histogram counts (the ring retains snapshots
// across ticks, so they must be copies, not views).
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	lv := r.LatencyVec("lat_ms", "ep")
	lv.Observe("x", time.Millisecond)
	snap := r.Snapshot()
	before := append([]int(nil), snap.Hists[0].Counts...)
	for i := 0; i < 100; i++ {
		lv.Observe("x", time.Second)
	}
	if !reflect.DeepEqual(snap.Hists[0].Counts, before) {
		t.Error("snapshot histogram counts aliased live histogram")
	}
	if snap.Hists[0].Total != 1 {
		t.Errorf("snapshot total mutated: %d", snap.Hists[0].Total)
	}
}

// TestQuantileFromCountsMatchesLatencyVec: the exported bucket-delta
// quantile is the same code path as LatencyVec.Quantile, so the two
// must agree exactly on identical observations.
func TestQuantileFromCountsMatchesLatencyVec(t *testing.T) {
	r := NewRegistry()
	lv := r.LatencyVec("lat_ms", "ep")
	durs := []time.Duration{
		0, time.Microsecond, 50 * time.Microsecond, time.Millisecond,
		3 * time.Millisecond, 40 * time.Millisecond, time.Second, 90 * time.Second,
	}
	for _, d := range durs {
		lv.Observe("x", d)
	}
	snap := r.Snapshot()
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.9, 0.99, 1, 2} {
		want := lv.Quantile("x", q)
		got := QuantileFromCounts(snap.Hists[0].Counts, snap.Hists[0].Total, q)
		if got != want {
			t.Errorf("q=%g: QuantileFromCounts=%g, LatencyVec.Quantile=%g", q, got, want)
		}
	}
	if got := QuantileFromCounts(make([]int, LatencyLogBins), 0, 0.5); got != 0 {
		t.Errorf("empty counts quantile = %g, want 0", got)
	}
}
