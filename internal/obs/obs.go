// Package obs is the repository's unified observability layer: a
// shared metrics registry, a structured channel-use tracer, and a
// trace-analysis stage that re-estimates the Definition 1 parameters
// (Pd, Pi, Ps) from what a run actually did — closing the gap between
// the parameters a simulation *assumes* and the events it *observes*
// (DESIGN.md §9).
//
// The layer is stdlib-only and obeys two contracts everything else in
// this repository already lives by:
//
//   - Determinism. Trace output is a pure function of the run's seed:
//     no wall-clock time, goroutine IDs or map-iteration order ever
//     reaches a trace line, and multi-stream runs (the parallel
//     experiment runner) write per-stream buffers that are
//     concatenated in a fixed order, so a recorded trace is
//     byte-identical across runs and worker counts. Wall-clock
//     quantities (latencies) go to the metrics registry, which is
//     deliberately non-deterministic in values but deterministic in
//     exposition order.
//
//   - Near-zero disabled overhead. A nil *Tracer is the no-op fast
//     path: every emission method nil-checks its receiver first, so
//     instrumented hot loops pay one predictable branch when tracing
//     is off. The registry's counters are single atomic adds.
//
// Three pieces:
//
//   - Registry (registry.go): named counters, gauges and log-bucketed
//     latency histograms with deterministic Prometheus-text
//     exposition. internal/capserver serves its /metrics from one;
//     the experiment runner can record batch metrics into one.
//
//   - Tracer (trace.go) + ChannelRecorder (record.go) + TraceSet
//     (traceset.go): bounded-buffer JSONL event streams. The recorder
//     wraps any per-use channel (channel.DeletionInsertion, a
//     faultinject stack, ...) and emits one event per channel use —
//     delete / insert / transmit / substitute, plus whether a fault
//     layer overrode the use — while keeping live event counts.
//     Protocol layers (syncproto.Supervisor) add chunk, attempt,
//     backoff, resync and recovery events; kernels add spans
//     (Blahut–Arimoto iteration counts, sequential-decoding node
//     counts).
//
//   - Analysis (analyze.go): UseCounts.Estimate() turns observed
//     event counts into (Pd, Pi, Ps) point estimates with Wilson 95%
//     confidence intervals, and ReadTrace streams a recorded JSONL
//     trace back into a TraceSummary, so cmd/tracecap (and the
//     capserver /v1/trace endpoint) can report assumed-vs-observed
//     capacity side by side.
package obs
