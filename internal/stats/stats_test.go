package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorKnown(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d, want 8", a.N())
	}
	if !almostEqual(a.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", a.Mean())
	}
	// Unbiased sample variance of this classic data set is 32/7.
	if !almostEqual(a.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Fatal("zero accumulator should report zeros")
	}
	a.Add(3.5)
	if a.Mean() != 3.5 || a.Variance() != 0 {
		t.Fatalf("single observation: mean %v var %v", a.Mean(), a.Variance())
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	err := quick.Check(func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var a Accumulator
		for i, v := range raw {
			xs[i] = float64(v)
			a.Add(xs[i])
		}
		return almostEqual(a.Mean(), Mean(xs), 1e-9) &&
			almostEqual(a.Variance(), Variance(xs), 1e-9)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCI95Shrinks(t *testing.T) {
	var small, large Accumulator
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 2))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI should shrink with more data: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{K: 50, N: 100}
	if p.Estimate() != 0.5 {
		t.Fatalf("Estimate = %v", p.Estimate())
	}
	lo, hi := p.Wilson95()
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson interval [%v, %v] should bracket 0.5", lo, hi)
	}
	if lo < 0.39 || hi > 0.61 {
		t.Fatalf("Wilson interval [%v, %v] implausibly wide", lo, hi)
	}
}

func TestProportionEdges(t *testing.T) {
	lo, hi := Proportion{K: 0, N: 20}.Wilson95()
	if lo != 0 || hi <= 0 || hi >= 0.3 {
		t.Fatalf("Wilson for 0/20 = [%v, %v]", lo, hi)
	}
	lo, hi = Proportion{K: 20, N: 20}.Wilson95()
	if hi != 1 || lo <= 0.7 {
		t.Fatalf("Wilson for 20/20 = [%v, %v]", lo, hi)
	}
	lo, hi = Proportion{}.Wilson95()
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson for 0/0 = [%v, %v], want [0, 1]", lo, hi)
	}
}

func TestAutoCorrelationValidation(t *testing.T) {
	if _, err := AutoCorrelation([]float64{1, 2, 3}, 0); err == nil {
		t.Error("expected lag error")
	}
	if _, err := AutoCorrelation([]float64{1, 2}, 1); err == nil {
		t.Error("expected short series error")
	}
}

func TestAutoCorrelationAlternating(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	r1, err := AutoCorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > -0.9 {
		t.Fatalf("lag-1 ACF of alternating series = %v, want near -1", r1)
	}
	r2, err := AutoCorrelation(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.9 {
		t.Fatalf("lag-2 ACF of alternating series = %v, want near +1", r2)
	}
}

func TestAutoCorrelationConstantSeries(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5}
	r, err := AutoCorrelation(xs, 1)
	if err != nil || r != 0 {
		t.Fatalf("constant series ACF = %v, %v; want 0, nil", r, err)
	}
}

func TestAutoCorrelationPersistentSeries(t *testing.T) {
	// Long runs of equal values: strong positive lag-1 correlation.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64((i / 20) % 2)
	}
	r, err := AutoCorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.8 {
		t.Fatalf("run-structured series lag-1 ACF = %v, want > 0.8", r)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	counts := h.Counts()
	want := []int{3, 1, 1, 0, 2} // -3 clamps to bin 0, 42 to bin 4
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", counts, want)
		}
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Error("expected error for empty range")
	}
}

func TestHistogramCountsIsCopy(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.1)
	c := h.Counts()
	c[0] = 99
	if h.Counts()[0] != 1 {
		t.Fatal("Counts exposed internal state")
	}
}
