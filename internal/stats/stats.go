// Package stats provides the statistical utilities shared by the
// simulations and experiment harnesses: streaming moments and confidence
// intervals, histograms, empirical mutual information, and edit-distance
// alignment used to count deletion/insertion/substitution events in
// observed symbol traces.
package stats

import (
	"fmt"
	"math"
)

// Accumulator computes streaming mean and variance using Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean (0 for n == 0).
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for n < 2).
func Variance(xs []float64) float64 {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Variance()
}

// Proportion summarizes a Bernoulli estimate k successes out of n trials
// with a Wilson 95% confidence interval, which behaves sensibly at the
// extremes (k = 0 or k = n) where the normal interval collapses.
type Proportion struct {
	K, N int
}

// Estimate returns the point estimate k/n (0 if n == 0).
func (p Proportion) Estimate() float64 {
	if p.N == 0 {
		return 0
	}
	return float64(p.K) / float64(p.N)
}

// Wilson95 returns the Wilson score 95% confidence interval.
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.N == 0 {
		return 0, 1
	}
	const z = 1.96
	n := float64(p.N)
	phat := float64(p.K) / n
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	// At the boundaries the Wilson endpoint is exactly 0 (K = 0) or 1
	// (K = N) analytically, but center and half only agree to rounding
	// error; pin them so interval-membership tests of the boundary
	// succeed.
	if lo < 0 || p.K == 0 {
		lo = 0
	}
	if hi > 1 || p.K == p.N {
		hi = 1
	}
	return lo, hi
}

// AutoCorrelation returns the lag-k sample autocorrelation of xs,
// used to diagnose burstiness in channel event traces. It returns an
// error for non-positive lags or series too short to estimate, and 0
// for a constant series (zero variance).
func AutoCorrelation(xs []float64, lag int) (float64, error) {
	if lag < 1 {
		return 0, fmt.Errorf("stats: lag %d, want >= 1", lag)
	}
	if len(xs) <= lag+1 {
		return 0, fmt.Errorf("stats: series of %d too short for lag %d", len(xs), lag)
	}
	mean := Mean(xs)
	var num, den float64
	for i := range xs {
		d := xs[i] - mean
		den += d * d
		if i+lag < len(xs) {
			num += d * (xs[i+lag] - mean)
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// Histogram counts observations in equal-width bins over [min, max).
// Observations outside the range are counted in the nearest edge bin;
// NaN observations are discarded (and counted separately) rather than
// fed through a float-to-int conversion, whose result for NaN is
// implementation-defined in Go.
type Histogram struct {
	min, max  float64
	counts    []int
	total     int
	discarded int
}

// NewHistogram returns a histogram with the given bin count over
// [min, max). It returns an error if bins < 1 or max <= min.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", min, max)
	}
	return &Histogram{min: min, max: max, counts: make([]int, bins)}, nil
}

// Add records one observation. NaN observations are discarded.
func (h *Histogram) Add(x float64) {
	if math.IsNaN(x) {
		h.discarded++
		return
	}
	h.total++
	// Resolve out-of-range values (including ±Inf) by float comparison
	// before the int conversion, which is only defined in range.
	if x <= h.min {
		h.counts[0]++
		return
	}
	if x >= h.max {
		h.counts[len(h.counts)-1]++
		return
	}
	idx := int(float64(len(h.counts)) * (x - h.min) / (h.max - h.min))
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// Total returns the number of observations recorded (NaNs excluded).
func (h *Histogram) Total() int { return h.total }

// Discarded returns the number of NaN observations dropped by Add.
func (h *Histogram) Discarded() int { return h.discarded }
