package stats

import (
	"math"
	"testing"
)

// Regression: Histogram.Add fed NaN through an int(float64) conversion
// whose result is implementation-defined; NaN must instead land in an
// explicit discarded counter.
func TestHistogramDiscardsNaN(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.1)
	h.Add(math.NaN())
	h.Add(0.9)
	h.Add(math.NaN())
	if got := h.Total(); got != 2 {
		t.Errorf("Total() = %d, want 2 (NaNs excluded)", got)
	}
	if got := h.Discarded(); got != 2 {
		t.Errorf("Discarded() = %d, want 2", got)
	}
	sum := 0
	for _, c := range h.Counts() {
		sum += c
	}
	if sum != 2 {
		t.Errorf("bin counts sum to %d, want 2", sum)
	}
}

func TestHistogramInfGoesToEdgeBins(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.Inf(-1))
	h.Add(math.Inf(1))
	counts := h.Counts()
	if counts[0] != 1 || counts[len(counts)-1] != 1 {
		t.Errorf("±Inf not clamped to edge bins: %v", counts)
	}
	if h.Total() != 2 || h.Discarded() != 0 {
		t.Errorf("Total/Discarded = %d/%d, want 2/0", h.Total(), h.Discarded())
	}
}
