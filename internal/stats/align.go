package stats

// Edit-distance alignment between a transmitted and a received symbol
// sequence. The paper's capacity estimation procedure (Section 4.4)
// requires estimating the deletion probability Pd of a covert channel
// from observed behaviour; aligning transmitted against received traces
// and counting deletion/insertion/substitution operations is how those
// probabilities are measured empirically in the experiment harness.

// EditOp is one alignment operation.
type EditOp int

// Alignment operation kinds. Match means the symbols agree.
const (
	OpMatch EditOp = iota + 1
	OpSubstitute
	OpDelete // symbol present in sent, absent in received
	OpInsert // symbol absent in sent, present in received
)

// String returns a single-letter code for the operation.
func (op EditOp) String() string {
	switch op {
	case OpMatch:
		return "M"
	case OpSubstitute:
		return "S"
	case OpDelete:
		return "D"
	case OpInsert:
		return "I"
	default:
		return "?"
	}
}

// EditCounts aggregates alignment operations.
type EditCounts struct {
	Matches       int
	Substitutions int
	Deletions     int
	Insertions    int
}

// Distance returns the Levenshtein distance implied by the counts.
func (c EditCounts) Distance() int {
	return c.Substitutions + c.Deletions + c.Insertions
}

// Rates converts counts to empirical per-channel-use event rates using
// the paper's Definition 1 accounting: the number of channel uses is the
// number of alignment operations (every use either deletes a queued
// symbol, inserts a spurious one, or transmits).
func (c EditCounts) Rates() (pd, pi, ps float64) {
	uses := c.Matches + c.Substitutions + c.Deletions + c.Insertions
	if uses == 0 {
		return 0, 0, 0
	}
	n := float64(uses)
	pd = float64(c.Deletions) / n
	pi = float64(c.Insertions) / n
	transmitted := c.Matches + c.Substitutions
	if transmitted > 0 {
		ps = float64(c.Substitutions) / float64(transmitted)
	}
	return pd, pi, ps
}

// Align computes a minimal-cost alignment (unit costs for substitution,
// deletion and insertion) between sent and received symbol sequences and
// returns the operation counts. Ties are broken in favour of matches,
// then substitutions, then deletions.
func Align(sent, received []uint32) EditCounts {
	ops := AlignOps(sent, received)
	var c EditCounts
	for _, op := range ops {
		switch op {
		case OpMatch:
			c.Matches++
		case OpSubstitute:
			c.Substitutions++
		case OpDelete:
			c.Deletions++
		case OpInsert:
			c.Insertions++
		}
	}
	return c
}

// AlignOps returns the full operation sequence of a minimal alignment.
func AlignOps(sent, received []uint32) []EditOp {
	n, m := len(sent), len(received)
	// dp[i][j] = edit distance between sent[:i] and received[:j].
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if sent[i-1] == received[j-1] {
				cost = 0
			}
			best := dp[i-1][j-1] + cost // match or substitute
			if d := dp[i-1][j] + 1; d < best {
				best = d // delete
			}
			if d := dp[i][j-1] + 1; d < best {
				best = d // insert
			}
			dp[i][j] = best
		}
	}
	// Trace back, preferring match/substitute over delete over insert.
	ops := make([]EditOp, 0, n+m)
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && sent[i-1] == received[j-1] && dp[i][j] == dp[i-1][j-1]:
			ops = append(ops, OpMatch)
			i--
			j--
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			ops = append(ops, OpSubstitute)
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			ops = append(ops, OpDelete)
			i--
		default:
			ops = append(ops, OpInsert)
			j--
		}
	}
	// Reverse into forward order.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return ops
}

// EditDistance returns the Levenshtein distance between the sequences.
func EditDistance(sent, received []uint32) int {
	return Align(sent, received).Distance()
}
