package stats

import (
	"fmt"
	"math"
)

// JointCounter accumulates joint observations of a discrete input X and
// output Y and estimates the empirical mutual information I(X;Y) in
// bits. It is used to measure the information actually conveyed by a
// simulated protocol run, for comparison with the analytic bounds.
type JointCounter struct {
	nx, ny int
	counts []int // row-major [x][y]
	total  int
}

// NewJointCounter returns a counter over alphabets of the given sizes.
// It returns an error if either size is non-positive.
func NewJointCounter(nx, ny int) (*JointCounter, error) {
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("stats: joint counter needs positive alphabet sizes, got %dx%d", nx, ny)
	}
	return &JointCounter{nx: nx, ny: ny, counts: make([]int, nx*ny)}, nil
}

// Add records one (x, y) observation. It returns an error if either
// index is out of range.
func (j *JointCounter) Add(x, y int) error {
	if x < 0 || x >= j.nx || y < 0 || y >= j.ny {
		return fmt.Errorf("stats: observation (%d, %d) out of range %dx%d", x, y, j.nx, j.ny)
	}
	j.counts[x*j.ny+y]++
	j.total++
	return nil
}

// Total returns the number of observations.
func (j *JointCounter) Total() int { return j.total }

// MutualInformation returns the plug-in estimate of I(X;Y) in bits
// (0 for an empty counter).
func (j *JointCounter) MutualInformation() float64 {
	if j.total == 0 {
		return 0
	}
	n := float64(j.total)
	px := make([]float64, j.nx)
	py := make([]float64, j.ny)
	for x := 0; x < j.nx; x++ {
		for y := 0; y < j.ny; y++ {
			p := float64(j.counts[x*j.ny+y]) / n
			px[x] += p
			py[y] += p
		}
	}
	var mi float64
	for x := 0; x < j.nx; x++ {
		for y := 0; y < j.ny; y++ {
			p := float64(j.counts[x*j.ny+y]) / n
			if p > 0 {
				mi += p * math.Log2(p/(px[x]*py[y]))
			}
		}
	}
	if mi < 0 {
		mi = 0 // guard against floating point jitter
	}
	return mi
}

// ConditionalErrorRate returns the empirical probability that Y != X,
// defined only for equal alphabet sizes. It returns an error otherwise.
func (j *JointCounter) ConditionalErrorRate() (float64, error) {
	if j.nx != j.ny {
		return 0, fmt.Errorf("stats: error rate undefined for %dx%d alphabets", j.nx, j.ny)
	}
	if j.total == 0 {
		return 0, nil
	}
	wrong := 0
	for x := 0; x < j.nx; x++ {
		for y := 0; y < j.ny; y++ {
			if x != y {
				wrong += j.counts[x*j.ny+y]
			}
		}
	}
	return float64(wrong) / float64(j.total), nil
}
