package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestJointCounterErrors(t *testing.T) {
	if _, err := NewJointCounter(0, 2); err == nil {
		t.Error("expected error for zero alphabet")
	}
	j, err := NewJointCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Add(2, 0); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := j.Add(0, -1); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestMutualInformationPerfectChannel(t *testing.T) {
	j, err := NewJointCounter(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for i := 0; i < 100000; i++ {
		x := r.Intn(4)
		if err := j.Add(x, x); err != nil {
			t.Fatal(err)
		}
	}
	// Uniform input over 4 symbols through a noiseless channel: 2 bits.
	if mi := j.MutualInformation(); math.Abs(mi-2) > 0.01 {
		t.Fatalf("MI = %v, want ~2", mi)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	j, err := NewJointCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 200000; i++ {
		if err := j.Add(r.Intn(2), r.Intn(2)); err != nil {
			t.Fatal(err)
		}
	}
	// Independent X and Y: MI ~ 0 (plug-in bias is O(1/n)).
	if mi := j.MutualInformation(); mi > 0.001 {
		t.Fatalf("MI = %v, want ~0", mi)
	}
}

func TestMutualInformationBSC(t *testing.T) {
	// Binary symmetric channel with crossover 0.11 and uniform input:
	// I = 1 - H(0.11) = 1 - 0.4999... ~ 0.5 bits.
	j, err := NewJointCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const p = 0.11
	for i := 0; i < 400000; i++ {
		x := r.Intn(2)
		y := x
		if r.Bool(p) {
			y = 1 - x
		}
		if err := j.Add(x, y); err != nil {
			t.Fatal(err)
		}
	}
	want := 1 + p*math.Log2(p) + (1-p)*math.Log2(1-p)
	if mi := j.MutualInformation(); math.Abs(mi-want) > 0.01 {
		t.Fatalf("MI = %v, want ~%v", mi, want)
	}
}

func TestMutualInformationEmpty(t *testing.T) {
	j, err := NewJointCounter(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if j.MutualInformation() != 0 {
		t.Fatal("empty counter should report zero MI")
	}
	if j.Total() != 0 {
		t.Fatal("empty counter should report zero total")
	}
}

func TestConditionalErrorRate(t *testing.T) {
	j, err := NewJointCounter(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if err := j.Add(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	rate, err := j.ConditionalErrorRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.1) > 1e-12 {
		t.Fatalf("error rate = %v, want 0.1", rate)
	}

	rect, err := NewJointCounter(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rect.ConditionalErrorRate(); err == nil {
		t.Fatal("expected error for rectangular counter")
	}
}
