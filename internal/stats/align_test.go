package stats

import (
	"testing"
	"testing/quick"
)

func TestAlignIdentical(t *testing.T) {
	s := []uint32{1, 2, 3, 4}
	c := Align(s, s)
	if c.Matches != 4 || c.Distance() != 0 {
		t.Fatalf("Align(identical) = %+v", c)
	}
}

func TestAlignPureDeletion(t *testing.T) {
	c := Align([]uint32{1, 2, 3, 4, 5}, []uint32{1, 3, 5})
	if c.Deletions != 2 || c.Insertions != 0 || c.Substitutions != 0 || c.Matches != 3 {
		t.Fatalf("Align = %+v", c)
	}
}

func TestAlignPureInsertion(t *testing.T) {
	c := Align([]uint32{1, 2}, []uint32{9, 1, 9, 2, 9})
	if c.Insertions != 3 || c.Deletions != 0 || c.Matches != 2 {
		t.Fatalf("Align = %+v", c)
	}
}

func TestAlignSubstitution(t *testing.T) {
	c := Align([]uint32{1, 2, 3}, []uint32{1, 7, 3})
	if c.Substitutions != 1 || c.Matches != 2 || c.Distance() != 1 {
		t.Fatalf("Align = %+v", c)
	}
}

func TestAlignEmpty(t *testing.T) {
	if c := Align(nil, nil); c.Distance() != 0 {
		t.Fatalf("Align(nil, nil) = %+v", c)
	}
	if c := Align([]uint32{1, 2}, nil); c.Deletions != 2 {
		t.Fatalf("Align(s, nil) = %+v", c)
	}
	if c := Align(nil, []uint32{1, 2, 3}); c.Insertions != 3 {
		t.Fatalf("Align(nil, r) = %+v", c)
	}
}

func TestEditDistanceKnown(t *testing.T) {
	tests := []struct {
		sent, recv []uint32
		want       int
	}{
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 0},
		{[]uint32{1, 2, 3}, []uint32{2, 3}, 1},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3, 4}, 1},
		{[]uint32{1, 2, 3}, []uint32{3, 2, 1}, 2},
		{[]uint32{1, 1, 1, 1}, []uint32{2, 2, 2, 2}, 4},
	}
	for _, tt := range tests {
		if got := EditDistance(tt.sent, tt.recv); got != tt.want {
			t.Errorf("EditDistance(%v, %v) = %d, want %d", tt.sent, tt.recv, got, tt.want)
		}
	}
}

// truncate keeps quick-generated sequences small so the O(nm) alignment
// stays fast.
func truncate(raw []byte, limit int) []uint32 {
	if len(raw) > limit {
		raw = raw[:limit]
	}
	out := make([]uint32, len(raw))
	for i, b := range raw {
		out[i] = uint32(b % 4)
	}
	return out
}

func TestAlignOpsConsistency(t *testing.T) {
	// Property: the operation sequence must consume exactly the two
	// sequences, and replaying it must reproduce the received sequence
	// modulo inserted/substituted values.
	err := quick.Check(func(rawA, rawB []byte) bool {
		sent := truncate(rawA, 20)
		recv := truncate(rawB, 20)
		ops := AlignOps(sent, recv)
		i, j := 0, 0
		for _, op := range ops {
			switch op {
			case OpMatch:
				if i >= len(sent) || j >= len(recv) || sent[i] != recv[j] {
					return false
				}
				i++
				j++
			case OpSubstitute:
				if i >= len(sent) || j >= len(recv) || sent[i] == recv[j] {
					return false
				}
				i++
				j++
			case OpDelete:
				i++
			case OpInsert:
				j++
			default:
				return false
			}
		}
		return i == len(sent) && j == len(recv)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlignDistanceTriangle(t *testing.T) {
	// Property: distance is symmetric, bounded by the longer length,
	// and deletions minus insertions equals the length difference
	// (ties between optimal alignments may trade S for D+I pairs, so
	// individual op counts need not swap exactly under reversal).
	err := quick.Check(func(rawA, rawB []byte) bool {
		a := truncate(rawA, 20)
		b := truncate(rawB, 20)
		ab := Align(a, b)
		ba := Align(b, a)
		if ab.Distance() != ba.Distance() {
			return false
		}
		if ab.Deletions-ab.Insertions != len(a)-len(b) {
			return false
		}
		max := len(a)
		if len(b) > max {
			max = len(b)
		}
		return ab.Distance() <= max
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEditCountsRates(t *testing.T) {
	c := EditCounts{Matches: 70, Substitutions: 10, Deletions: 15, Insertions: 5}
	pd, pi, ps := c.Rates()
	if !almostEqual(pd, 0.15, 1e-12) || !almostEqual(pi, 0.05, 1e-12) || !almostEqual(ps, 0.125, 1e-12) {
		t.Fatalf("Rates = %v, %v, %v", pd, pi, ps)
	}
	var zero EditCounts
	pd, pi, ps = zero.Rates()
	if pd != 0 || pi != 0 || ps != 0 {
		t.Fatal("zero counts should yield zero rates")
	}
}

func TestEditOpString(t *testing.T) {
	tests := []struct {
		op   EditOp
		want string
	}{
		{OpMatch, "M"}, {OpSubstitute, "S"}, {OpDelete, "D"}, {OpInsert, "I"}, {EditOp(0), "?"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("EditOp(%d).String() = %q, want %q", tt.op, got, tt.want)
		}
	}
}
