package session

import (
	"repro/internal/channel"
	"repro/internal/obs"
)

// Estimator is the O(1)-memory online (Pd, Pi, Ps) estimator. Its
// entire state is the obs.UseCounts tally plus the last applied use
// index: five int64 counters and one int64 cursor, independent of how
// many events have streamed through. Estimates are produced by the
// same obs.UseCounts.Estimate the batch pipeline uses, so online and
// batch results are bit-identical by construction — the integer
// tallies after n events equal the batch tallies over the same n
// events, and identical integer inputs drive identical float64
// arithmetic.
type Estimator struct {
	counts  obs.UseCounts
	lastUse int64
}

// Apply tallies one event. The caller (Session.Apply) enforces use
// ordering; Apply itself just accumulates.
func (e *Estimator) Apply(ev Event) {
	switch ev.Kind {
	case channel.EventTransmit:
		e.counts.Transmits++
	case channel.EventSubstitute:
		e.counts.Substitutes++
	case channel.EventDelete:
		e.counts.Deletes++
	case channel.EventInsert:
		e.counts.Inserts++
	}
	if ev.Injected {
		e.counts.Injected++
	}
	if ev.Use > e.lastUse {
		e.lastUse = ev.Use
	}
}

// Counts returns the accumulated tallies.
func (e *Estimator) Counts() obs.UseCounts { return e.counts }

// LastUse returns the highest applied use index (0 before any event).
func (e *Estimator) LastUse() int64 { return e.lastUse }

// Estimate returns the current (Pd, Pi, Ps) estimate with Wilson 95%
// intervals, exactly as batch analysis of the same events would.
func (e *Estimator) Estimate() obs.Estimate { return e.counts.Estimate() }
