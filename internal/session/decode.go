package session

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/channel"
)

// Event is one decoded channel-use event.
type Event struct {
	// Use is the 1-based use index; events within a session are
	// strictly increasing in Use.
	Use int64
	// Kind is the Definition 1 event kind.
	Kind channel.EventKind
	// Sent is the symbol the covert sender queued (meaningful for
	// T/S/D events; insertions deliver a symbol nobody sent).
	Sent uint32
	// Received is the delivered symbol (meaningful for T/S/I events;
	// deletions deliver nothing).
	Received uint32
	// Injected marks uses a fault layer overrode.
	Injected bool
}

// MaxSymbol bounds wire symbols to the widest channel alphabet the
// system serves (16-bit, matching capserver's MaxSymbols ceiling).
const MaxSymbol = 1<<16 - 1

// MaxLineBytes bounds one NDJSON line; a use event is ~50 bytes, so
// 4 KiB is generous while keeping hostile input from ballooning the
// scanner buffer.
const MaxLineBytes = 4096

// ErrOutOfOrder reports a use index at or below one already applied.
var ErrOutOfOrder = errors.New("session: out-of-order use index")

// DecodeError locates the first rejected line of a batch.
type DecodeError struct {
	// Line is the 1-based NDJSON line number of the first bad line.
	Line int
	Err  error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("session: event line %d: %v", e.Line, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// wireEvent is the strict wire schema for one event line:
//
//	{"u":<use index>,"k":"T|S|D|I","s":<sent>,"r":<received>,"inj":1}
//
// "s" is required for T/S/D and forbidden for I (an insertion delivers
// a symbol nobody sent); "r" is required for T/S/I and forbidden for D
// (a deletion delivers nothing) — the same convention the obs trace
// writer uses for its "d" field. "inj" is optional. Pointer fields
// distinguish absent from zero.
type wireEvent struct {
	U   *int64  `json:"u"`
	K   *string `json:"k"`
	S   *int64  `json:"s"`
	R   *int64  `json:"r"`
	Inj *int64  `json:"inj"`
}

// decodeLine strictly decodes one NDJSON line into an Event.
func decodeLine(line []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var w wireEvent
	if err := dec.Decode(&w); err != nil {
		return Event{}, err
	}
	// One JSON value per line: trailing bytes are a framing error.
	if _, err := dec.Token(); err != io.EOF {
		return Event{}, fmt.Errorf("trailing data after event object")
	}
	if w.U == nil {
		return Event{}, fmt.Errorf("missing use index \"u\"")
	}
	if *w.U < 1 {
		return Event{}, fmt.Errorf("use index %d < 1", *w.U)
	}
	if w.K == nil {
		return Event{}, fmt.Errorf("missing event kind \"k\"")
	}
	kind, ok := KindFromCode(*w.K)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", *w.K)
	}
	symbol := func(name string, p *int64) (uint32, error) {
		if *p < 0 || *p > MaxSymbol {
			return 0, fmt.Errorf("symbol %q = %d out of [0, %d]", name, *p, MaxSymbol)
		}
		return uint32(*p), nil
	}
	ev := Event{Use: *w.U, Kind: kind, Injected: w.Inj != nil && *w.Inj != 0}
	wantS := kind != channel.EventInsert
	wantR := kind != channel.EventDelete
	if wantS != (w.S != nil) {
		if wantS {
			return Event{}, fmt.Errorf("%s event missing sent symbol \"s\"", kind)
		}
		return Event{}, fmt.Errorf("%s event must not carry sent symbol \"s\"", kind)
	}
	if wantR != (w.R != nil) {
		if wantR {
			return Event{}, fmt.Errorf("%s event missing received symbol \"r\"", kind)
		}
		return Event{}, fmt.Errorf("%s event must not carry received symbol \"r\" (deletions deliver nothing)", kind)
	}
	var err error
	if w.S != nil {
		if ev.Sent, err = symbol("s", w.S); err != nil {
			return Event{}, err
		}
	}
	if w.R != nil {
		if ev.Received, err = symbol("r", w.R); err != nil {
			return Event{}, err
		}
	}
	// Kind/symbol consistency: a clean transmit delivers what was sent,
	// a substitution by definition does not.
	if kind == channel.EventTransmit && ev.Received != ev.Sent {
		return Event{}, fmt.Errorf("T event delivered %d != sent %d (substitutions are kind S)", ev.Received, ev.Sent)
	}
	if kind == channel.EventSubstitute && ev.Received == ev.Sent {
		return Event{}, fmt.Errorf("S event delivered the sent symbol %d (clean transmits are kind T)", ev.Sent)
	}
	return ev, nil
}

// DecodeBatch strictly decodes an NDJSON event batch. Blank lines are
// skipped (but numbered). Use indices must be strictly increasing
// within the batch and all above after (the caller's session cursor,
// 0 for no constraint). On any malformed, truncated, oversized or
// out-of-order line the whole batch is rejected with a *DecodeError
// carrying the first bad line number; limit > 0 bounds the number of
// events accepted. DecodeBatch never panics on hostile input.
func DecodeBatch(r io.Reader, after int64, limit int) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024), MaxLineBytes)
	var events []Event
	prev := after
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		ev, err := decodeLine(raw)
		if err != nil {
			return nil, &DecodeError{Line: line, Err: err}
		}
		if ev.Use <= prev {
			return nil, &DecodeError{Line: line, Err: fmt.Errorf("%w: use %d after use %d", ErrOutOfOrder, ev.Use, prev)}
		}
		prev = ev.Use
		if limit > 0 && len(events) >= limit {
			return nil, &DecodeError{Line: line, Err: fmt.Errorf("batch exceeds %d events", limit)}
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		// Scanner errors (line too long, reader failure) surface on the
		// line after the last good one.
		return nil, &DecodeError{Line: line + 1, Err: err}
	}
	return events, nil
}

// EncodeEvents writes events in the NDJSON wire form, the inverse of
// DecodeBatch (used by the loadgen and tests).
func EncodeEvents(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, ev := range events {
		bw.WriteString(`{"u":`)
		writeInt(bw, ev.Use)
		bw.WriteString(`,"k":"`)
		bw.WriteString(ev.Kind.String())
		bw.WriteString(`"`)
		if ev.Kind != channel.EventInsert {
			bw.WriteString(`,"s":`)
			writeInt(bw, int64(ev.Sent))
		}
		if ev.Kind != channel.EventDelete {
			bw.WriteString(`,"r":`)
			writeInt(bw, int64(ev.Received))
		}
		if ev.Injected {
			bw.WriteString(`,"inj":1`)
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// writeInt appends a decimal int64 without fmt overhead.
func writeInt(bw *bufio.Writer, v int64) {
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		buf[i] = '-'
	}
	bw.Write(buf[i:])
}
