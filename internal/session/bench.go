package session

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchSchema is BENCH_sessions.json's format tag. Bump on layout
// changes.
const BenchSchema = "capest/bench-sessions/v1"

// Trajectory is the BENCH_sessions.json document: one sessload run's
// configuration, throughput and estimation-quality outcome, written by
// `sessload -bench-out` and validated by `sessload -mode check` in the
// bench-smoke gate. Like BENCH_kernels.json and BENCH_cluster.json it
// is a committed, machine-checkable record of where the subsystem's
// scale stands: the committed file must describe a passing 10^5+
// session run.
type Trajectory struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`

	Seed          uint64 `json:"seed"`
	Sessions      int    `json:"sessions"`
	DriftSessions int    `json:"drift_sessions"`
	CleanUses     int    `json:"clean_uses"`
	DriftUses     int    `json:"drift_uses"`
	Inject        string `json:"inject"`
	Jobs          int    `json:"jobs"`

	EventsTotal    int64   `json:"events_total"`
	WallMS         float64 `json:"wall_ms"`
	EventsPerSec   float64 `json:"events_per_sec"`
	NsPerEvent     float64 `json:"ns_per_event"`
	SessionsPerSec float64 `json:"sessions_per_sec"`

	Converged      int     `json:"converged"`
	Detected       int     `json:"detected"`
	Missed         int     `json:"missed"`
	FalsePositives int     `json:"false_positives"`
	MaxDelay       int64   `json:"max_delay_uses"`
	MeanDelay      float64 `json:"mean_delay_uses"`
	Passed         bool    `json:"passed"`
}

// BuildTrajectory assembles the document from a finished run.
func BuildTrajectory(cfg LoadConfig, rep *Report, wall time.Duration) *Trajectory {
	cfg = cfg.withDefaults()
	t := &Trajectory{
		Schema:         BenchSchema,
		Go:             runtime.Version(),
		Seed:           rep.Seed,
		Sessions:       rep.Sessions,
		DriftSessions:  rep.DriftSessions,
		CleanUses:      rep.CleanUses,
		DriftUses:      rep.DriftUses,
		Inject:         rep.Inject,
		Jobs:           cfg.Jobs,
		EventsTotal:    rep.EventsTotal,
		WallMS:         float64(wall) / float64(time.Millisecond),
		Converged:      rep.Converged,
		Detected:       rep.Detected,
		Missed:         rep.Missed,
		FalsePositives: rep.FalsePositives,
		MaxDelay:       rep.MaxDelay,
		MeanDelay:      rep.MeanDelay,
		Passed:         rep.Assert() == nil,
	}
	if wall > 0 && rep.EventsTotal > 0 {
		secs := wall.Seconds()
		t.EventsPerSec = float64(rep.EventsTotal) / secs
		t.NsPerEvent = float64(wall.Nanoseconds()) / float64(rep.EventsTotal)
		t.SessionsPerSec = float64(rep.Sessions) / secs
	}
	return t
}

// WriteTrajectory writes the document as indented JSON.
func WriteTrajectory(path string, t *Trajectory) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckTrajectory validates a trajectory file: it must parse, carry
// the current schema tag, and record a passing run. minSessions
// guards scale: the committed BENCH_sessions.json is checked with
// 100000 (the 10^5-concurrent-sessions acceptance floor), smoke-run
// files with their own smaller size.
func CheckTrajectory(path string, minSessions int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var t Trajectory
	if err := json.Unmarshal(raw, &t); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if t.Schema != BenchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, t.Schema, BenchSchema)
	}
	if t.Sessions < minSessions {
		return fmt.Errorf("%s: %d sessions below the %d floor", path, t.Sessions, minSessions)
	}
	if t.EventsTotal <= 0 {
		return fmt.Errorf("%s: no events recorded", path)
	}
	if t.EventsPerSec <= 0 || t.NsPerEvent <= 0 {
		return fmt.Errorf("%s: missing throughput figures", path)
	}
	if t.DriftSessions <= 0 {
		return fmt.Errorf("%s: run had no drift sessions, detection unexercised", path)
	}
	if t.Missed > t.DriftSessions/1000 {
		return fmt.Errorf("%s: records %d missed drift detections (budget %d)",
			path, t.Missed, t.DriftSessions/1000)
	}
	if !t.Passed {
		return fmt.Errorf("%s: records a failed sessload run", path)
	}
	return nil
}
