package session

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// feedRates drives a detector with n synthetic uses at the given event
// rates, starting at use index start+1, and returns the final index.
func feedRates(d *Detector, src *rng.Source, start int64, n int, pd, pi, ps float64) int64 {
	use := start
	for i := 0; i < n; i++ {
		use++
		u := src.Float64()
		switch {
		case u < pd:
			d.Observe(channel.EventDelete, use)
		case u < pd+pi:
			d.Observe(channel.EventInsert, use)
		default:
			if src.Bool(ps) {
				d.Observe(channel.EventSubstitute, use)
			} else {
				d.Observe(channel.EventTransmit, use)
			}
		}
	}
	return use
}

func newTestDetector(t *testing.T) *Detector {
	t.Helper()
	sess, err := New("det", Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sess.Detector()
}

// TestDetectorLifecycle pins the warmup -> ok -> resync -> ok status
// cycle around an injected deletion-rate shift.
func TestDetectorLifecycle(t *testing.T) {
	d := newTestDetector(t)
	src := rng.New(42)
	if d.Status() != StatusWarmup {
		t.Fatalf("initial status %q, want warmup", d.Status())
	}
	use := feedRates(d, src, 0, 2000, 0.05, 0.05, 0.03)
	if d.Status() != StatusOK {
		t.Fatalf("post-baseline status %q, want ok", d.Status())
	}
	if d.Drifts() != 0 {
		t.Fatalf("%d drifts on a stationary stream", d.Drifts())
	}
	// Shift Pd 0.05 -> 0.30: the pd CUSUM must fire well inside the
	// shifted window.
	use = feedRates(d, src, use, 2000, 0.30, 0.05, 0.03)
	if d.Drifts() == 0 {
		t.Fatal("deletion-rate shift not detected")
	}
	first := d.LastChangeUse()
	if first <= 2000 || first > 2600 {
		t.Fatalf("change point at use %d, want shortly after onset at 2000", first)
	}
	// Keep feeding the new regime: the detector re-baselines and
	// recovers to ok.
	feedRates(d, src, use, 3000, 0.30, 0.05, 0.03)
	if d.Status() != StatusOK {
		t.Fatalf("post-recovery status %q, want ok", d.Status())
	}
	if d.Recoveries() == 0 {
		t.Fatal("no recovery recorded")
	}
}

// TestDetectorQuietOnStationary bounds false alarms: a long stationary
// stream must not fire.
func TestDetectorQuietOnStationary(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		d := newTestDetector(t)
		feedRates(d, rng.New(seed), 0, 20000, 0.08, 0.06, 0.04)
		if n := d.Drifts(); n != 0 {
			t.Fatalf("seed %d: %d false change points on a stationary stream", seed, n)
		}
	}
}

// TestDetectorCatchesEachStream verifies all three monitored rates
// trigger independently, including downward shifts.
func TestDetectorCatchesEachStream(t *testing.T) {
	cases := []struct {
		name           string
		pd, pi, ps     float64 // post-shift rates; baseline is 0.08/0.06/0.04
		wantWithinUses int64
	}{
		{"pd up", 0.35, 0.06, 0.04, 600},
		{"pi up", 0.08, 0.30, 0.04, 600},
		{"ps up", 0.08, 0.06, 0.35, 800},
		{"pd down", 0.001, 0.06, 0.04, 1500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := newTestDetector(t)
			src := rng.New(7)
			use := feedRates(d, src, 0, 3000, 0.08, 0.06, 0.04)
			if d.Drifts() != 0 {
				t.Fatalf("fired during baseline")
			}
			feedRates(d, src, use, 4000, tc.pd, tc.pi, tc.ps)
			if d.Drifts() == 0 {
				t.Fatal("shift not detected")
			}
			if delay := d.LastChangeUse() - use; delay > tc.wantWithinUses {
				t.Fatalf("first detection %d uses after onset, want <= %d", delay, tc.wantWithinUses)
			}
		})
	}
}

// TestDetectorConfigValidate rejects unusable tunings.
func TestDetectorConfigValidate(t *testing.T) {
	bad := []DetectorConfig{
		{Warmup: -1},
		{Delta: 0.7},
		{Delta: -0.1},
		{Threshold: -3},
		{MinP: 0.9},
	}
	// withDefaults only fills zero-valued fields, so each invalid value
	// survives into validation and New must reject it.
	for _, cfg := range bad {
		if _, err := New("bad", Config{Detector: cfg}); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

// TestDetectorAllDeleteStream pins the ps-stream exemption: a stream
// with no transmission events must still arm and reach ok on the
// per-use streams instead of waiting forever for ps warmup.
func TestDetectorAllDeleteStream(t *testing.T) {
	d := newTestDetector(t)
	for use := int64(1); use <= 2000; use++ {
		d.Observe(channel.EventDelete, use)
	}
	if d.Status() != StatusOK {
		t.Fatalf("all-delete stream status %q, want ok", d.Status())
	}
}
