package session

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/channel"
)

func TestDecodeBatchAccepts(t *testing.T) {
	in := strings.Join([]string{
		`{"u":1,"k":"T","s":3,"r":3}`,
		`{"u":2,"k":"S","s":3,"r":5}`,
		``,
		`{"u":4,"k":"D","s":7}`,
		`  {"u":9,"k":"I","r":2,"inj":1}  `,
	}, "\n")
	events, err := DecodeBatch(strings.NewReader(in), 0, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := []Event{
		{Use: 1, Kind: channel.EventTransmit, Sent: 3, Received: 3},
		{Use: 2, Kind: channel.EventSubstitute, Sent: 3, Received: 5},
		{Use: 4, Kind: channel.EventDelete, Sent: 7},
		{Use: 9, Kind: channel.EventInsert, Received: 2, Injected: true},
	}
	if len(events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestDecodeBatchRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
		line int
	}{
		{"not json", "nonsense\n", 1},
		{"truncated", `{"u":1,"k":"T","s":3,"r"` + "\n", 1},
		{"missing u", `{"k":"T","s":1,"r":1}` + "\n", 1},
		{"zero u", `{"u":0,"k":"T","s":1,"r":1}` + "\n", 1},
		{"negative u", `{"u":-4,"k":"T","s":1,"r":1}` + "\n", 1},
		{"missing kind", `{"u":1,"s":1,"r":1}` + "\n", 1},
		{"bad kind", `{"u":1,"k":"X","s":1,"r":1}` + "\n", 1},
		{"unknown field", `{"u":1,"k":"T","s":1,"r":1,"bogus":2}` + "\n", 1},
		{"trailing data", `{"u":1,"k":"T","s":1,"r":1}{"u":2}` + "\n", 1},
		{"delete with r", `{"u":1,"k":"D","s":1,"r":1}` + "\n", 1},
		{"delete missing s", `{"u":1,"k":"D"}` + "\n", 1},
		{"insert with s", `{"u":1,"k":"I","s":1,"r":1}` + "\n", 1},
		{"transmit missing r", `{"u":1,"k":"T","s":1}` + "\n", 1},
		{"transmit r!=s", `{"u":1,"k":"T","s":1,"r":2}` + "\n", 1},
		{"substitute r==s", `{"u":1,"k":"S","s":1,"r":1}` + "\n", 1},
		{"symbol too big", `{"u":1,"k":"T","s":70000,"r":70000}` + "\n", 1},
		{"negative symbol", `{"u":1,"k":"T","s":-1,"r":-1}` + "\n", 1},
		{"float use", `{"u":1.5,"k":"T","s":1,"r":1}` + "\n", 1},
		{"second line bad", `{"u":1,"k":"T","s":1,"r":1}` + "\n" + `broken` + "\n", 2},
		{"out of order", `{"u":2,"k":"T","s":1,"r":1}` + "\n" + `{"u":2,"k":"T","s":1,"r":1}` + "\n", 2},
		{"regressing", `{"u":5,"k":"T","s":1,"r":1}` + "\n" + `{"u":3,"k":"T","s":1,"r":1}` + "\n", 2},
		{"oversized line", `{"u":1,"k":"T","s":1,"r":1,` + strings.Repeat(" ", MaxLineBytes) + "}\n", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, err := DecodeBatch(strings.NewReader(tc.in), 0, 0)
			if err == nil {
				t.Fatalf("accepted %d events from %q", len(events), tc.in)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if de.Line != tc.line {
				t.Fatalf("reported line %d, want %d (%v)", de.Line, tc.line, err)
			}
		})
	}
}

func TestDecodeBatchCursorAndLimit(t *testing.T) {
	in := `{"u":5,"k":"T","s":1,"r":1}` + "\n"
	if _, err := DecodeBatch(strings.NewReader(in), 5, 0); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("stale batch error %v, want ErrOutOfOrder", err)
	}
	if events, err := DecodeBatch(strings.NewReader(in), 4, 0); err != nil || len(events) != 1 {
		t.Fatalf("fresh batch: %v (%d events)", err, len(events))
	}
	two := in + `{"u":6,"k":"T","s":1,"r":1}` + "\n"
	var de *DecodeError
	if _, err := DecodeBatch(strings.NewReader(two), 0, 1); !errors.As(err, &de) || de.Line != 2 {
		t.Fatalf("limit error %v, want line-2 DecodeError", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := []Event{
		{Use: 1, Kind: channel.EventTransmit, Sent: 9, Received: 9},
		{Use: 2, Kind: channel.EventDelete, Sent: 4},
		{Use: 3, Kind: channel.EventInsert, Received: 15, Injected: true},
		{Use: 7, Kind: channel.EventSubstitute, Sent: 0, Received: 12},
	}
	var buf bytes.Buffer
	if err := EncodeEvents(&buf, want); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeBatch(&buf, 0, 0)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

// FuzzDecodeBatch is the satellite fuzz target: arbitrary input must
// either decode cleanly or be rejected with a positive first-bad-line
// number — never a panic, and accepted batches must obey the ordering
// and field invariants the decoder promises.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte(`{"u":1,"k":"T","s":3,"r":3}` + "\n"))
	f.Add([]byte(`{"u":1,"k":"D","s":3}` + "\n" + `{"u":2,"k":"I","r":1}` + "\n"))
	f.Add([]byte(`{"u":1,"k":"T","s":3,"r"`))
	f.Add([]byte(`{"u":2,"k":"T","s":1,"r":1}` + "\n" + `{"u":1,"k":"T","s":1,"r":1}` + "\n"))
	f.Add([]byte("\x00\xff{{{"))
	f.Add([]byte(`{"u":1e300,"k":"T","s":0,"r":0}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := DecodeBatch(bytes.NewReader(data), 0, 1024)
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error %v is not a *DecodeError", err)
			}
			if de.Line < 1 {
				t.Fatalf("bad line number %d", de.Line)
			}
			return
		}
		prev := int64(0)
		for _, ev := range events {
			if ev.Use <= prev {
				t.Fatalf("accepted out-of-order use %d after %d", ev.Use, prev)
			}
			prev = ev.Use
			switch ev.Kind {
			case channel.EventTransmit:
				if ev.Sent != ev.Received {
					t.Fatalf("accepted T with r != s: %+v", ev)
				}
			case channel.EventSubstitute:
				if ev.Sent == ev.Received {
					t.Fatalf("accepted S with r == s: %+v", ev)
				}
			case channel.EventDelete, channel.EventInsert:
			default:
				t.Fatalf("accepted unknown kind %v", ev.Kind)
			}
			if ev.Sent > MaxSymbol || ev.Received > MaxSymbol {
				t.Fatalf("accepted oversized symbol: %+v", ev)
			}
		}
	})
}
