// Package session is the streaming estimation layer (DESIGN.md §13):
// sessionized online (Pd, Pi, Ps) estimation with live drift detection
// at 10^5+ concurrent sessions.
//
// The offline pipeline (internal/obs: record a trace, ReadTrace,
// Estimate) answers "what were this channel's parameters?" after the
// fact. A serving system tracking live covert channels needs the same
// answer while the channel is in use, for sessions that arrive as
// streams of per-use events over long-lived connections. This package
// provides that:
//
//   - Event/DecodeBatch: the NDJSON wire form of one channel use
//     (use index, Definition 1 event kind, sent symbol, received
//     symbol or nothing for an erasure), decoded strictly — malformed
//     input is rejected with the first bad line number, never a panic;
//   - Estimator: O(1)-memory online (Pd, Pi, Ps) estimation. It keeps
//     exactly the obs.UseCounts tallies and defers to obs.Estimate for
//     the point estimates and Wilson 95% intervals, so feeding a trace
//     event-by-event yields bit-identical results to batch analysis
//     of the full trace (a property the tests pin);
//   - Detector: a per-stream Bernoulli CUSUM change-point detector
//     over the deletion, insertion and substitution indicator streams.
//     A warmup prefix fixes the baseline rates; after that each
//     observation updates two one-sided CUSUM statistics in O(1), and
//     crossing the decision threshold flags drift at a known use
//     index. Detection proactively drives a Supervisor-style resync
//     status (warmup -> ok -> resync -> ok) instead of waiting for
//     downstream chunk failures;
//   - Store: a sharded, TTL-evicting map of live sessions with
//     obs-registry counters (capserver_sessions_evicted_total and
//     friends) and deterministic paged listing.
//
// capserver exposes the store as POST /v1/sessions/{id}/events,
// GET /v1/sessions/{id} (live estimate plus capacity bounds at the
// quantized estimate, served through the shared LRU) and
// GET /v1/sessions; the cluster layer shards session ownership across
// members by session ID on the same consistent-hash ring the cache
// keyspace uses. cmd/sessload is the deterministic 10^5-session load
// harness over this package.
package session

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/obs"
)

// Config tunes one session. The zero value selects workable defaults.
type Config struct {
	// N is the symbol width in bits (default 4). It is fixed at session
	// creation; later batches must agree.
	N int
	// Detector tunes the change-point detector.
	Detector DetectorConfig
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.N == 0 {
		c.N = 4
	}
	c.Detector = c.Detector.withDefaults()
	return c
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.N < 1 || c.N > 16 {
		return fmt.Errorf("session: symbol width N = %d out of [1,16]", c.N)
	}
	return c.Detector.validate()
}

// Session is one live channel-estimation session: an online estimator
// plus a drift detector, fed strictly increasing use events. It is not
// safe for concurrent use; the Store serializes access per session.
type Session struct {
	id  string
	cfg Config
	est Estimator
	det Detector
}

// New creates a session.
func New(id string, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Session{id: id, cfg: cfg}
	s.det.init(cfg.Detector)
	return s, nil
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// N returns the session's symbol width in bits.
func (s *Session) N() int { return s.cfg.N }

// LastUse returns the highest use index applied so far (0 before the
// first event).
func (s *Session) LastUse() int64 { return s.est.LastUse() }

// Apply feeds one event. Events must arrive in strictly increasing
// use-index order; a violation is rejected as ErrOutOfOrder without
// mutating the session.
func (s *Session) Apply(ev Event) error {
	if ev.Use <= s.est.LastUse() {
		return fmt.Errorf("%w: use %d after use %d", ErrOutOfOrder, ev.Use, s.est.LastUse())
	}
	s.est.Apply(ev)
	s.det.Observe(ev.Kind, ev.Use)
	return nil
}

// Estimate returns the live parameter estimate, bit-identical to what
// batch obs.Estimate would produce over the same events.
func (s *Session) Estimate() obs.Estimate { return s.est.Estimate() }

// Counts returns the live event tallies.
func (s *Session) Counts() obs.UseCounts { return s.est.Counts() }

// Detector exposes the drift detector's state (read-only use).
func (s *Session) Detector() *Detector { return &s.det }

// Snapshot is a point-in-time copy of a session's observable state,
// safe to use after the session itself has moved on or been evicted.
type Snapshot struct {
	ID     string
	N      int
	Counts obs.UseCounts
	// Estimate is the live obs.Estimate at snapshot time.
	Estimate obs.Estimate
	// LastUse is the highest applied use index.
	LastUse int64
	// Status is the detector's supervision status.
	Status Status
	// Drifts counts detected change points; LastChangeUse is the use
	// index at which the most recent one fired (0 if none).
	Drifts        int64
	LastChangeUse int64
	// Recoveries counts completed post-drift re-baselines.
	Recoveries int64
}

// Snapshot captures the session's current state.
func (s *Session) Snapshot() Snapshot {
	return Snapshot{
		ID:            s.id,
		N:             s.cfg.N,
		Counts:        s.est.Counts(),
		Estimate:      s.est.Estimate(),
		LastUse:       s.est.LastUse(),
		Status:        s.det.Status(),
		Drifts:        s.det.Drifts(),
		LastChangeUse: s.det.LastChangeUse(),
		Recoveries:    s.det.Recoveries(),
	}
}

// KindFromCode maps a Definition 1 event code ("T", "S", "D", "I") to
// its channel.EventKind, reporting ok=false for anything else.
func KindFromCode(code string) (channel.EventKind, bool) {
	switch code {
	case "T":
		return channel.EventTransmit, true
	case "S":
		return channel.EventSubstitute, true
	case "D":
		return channel.EventDelete, true
	case "I":
		return channel.EventInsert, true
	}
	return 0, false
}
