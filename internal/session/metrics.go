package session

import "repro/internal/obs"

// Metrics is the session subsystem's obs-registry instrument set. It
// registers on the server's shared registry (capserver passes its own)
// so session families appear in /metrics next to the serving families.
type Metrics struct {
	reg *obs.Registry
	// Active is the live session count.
	Active *obs.Gauge
	// Created counts sessions created; Evicted counts idle sessions
	// reclaimed by TTL sweep (capserver_sessions_evicted_total, the
	// memory-hygiene regression gate's counter).
	Created *obs.Counter
	Evicted *obs.Counter
	// Events counts accepted events; Rejected counts rejected batches.
	Events   *obs.Counter
	Rejected *obs.Counter
	// Drifts counts change points detected across all sessions;
	// Resyncs counts completed post-drift re-baselines.
	Drifts  *obs.Counter
	Resyncs *obs.Counter
}

// NewMetrics registers the session families on reg (nil: a private
// registry, for tests).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:      reg,
		Active:   reg.Gauge("capserver_sessions_active"),
		Created:  reg.Counter("capserver_sessions_created_total"),
		Evicted:  reg.Counter("capserver_sessions_evicted_total"),
		Events:   reg.Counter("capserver_session_events_total"),
		Rejected: reg.Counter("capserver_session_rejected_total"),
		Drifts:   reg.Counter("capserver_session_drift_total"),
		Resyncs:  reg.Counter("capserver_session_resync_total"),
	}
}

// Registry returns the registry the metrics live on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }
