package session

import "repro/internal/obs"

// Metrics is the session subsystem's obs-registry instrument set. It
// registers on the server's shared registry (capserver passes its own)
// so session families appear in /metrics next to the serving families.
type Metrics struct {
	reg *obs.Registry
	// Active is the live session count.
	Active *obs.Gauge
	// Created counts sessions created; Evicted counts idle sessions
	// reclaimed by TTL sweep (capserver_sessions_evicted_total, the
	// memory-hygiene regression gate's counter).
	Created *obs.Counter
	Evicted *obs.Counter
	// Events counts accepted events; Rejected counts rejected batches.
	Events   *obs.Counter
	Rejected *obs.Counter
	// Drifts counts change points detected across all sessions;
	// Resyncs counts completed post-drift re-baselines.
	Drifts  *obs.Counter
	Resyncs *obs.Counter
	// Limit mirrors the store's MaxSessions cap, so pressure rules can
	// compute active/limit without knowing the deployment's flags.
	Limit *obs.Gauge
	// StreamFires and StreamUses aggregate the detector's per-stream
	// accounting across all sessions (stream ∈ pd, pi, ps): change
	// points attributed to the stream, and observations fed while
	// armed. Their ratio is the measured per-observation alarm rate.
	StreamFires *obs.CounterVec
	StreamUses  *obs.CounterVec
	// FalseAlarmPPM is the all-streams alarm rate in parts per million
	// (1e6 × fires / armed uses; 0 until anything is armed), and
	// StreamFalseAlarmPPM the same per stream. On stationary traffic
	// these estimate the false-alarm rate directly — the quantity the
	// 2% budget rules watch; under genuine drift they count true
	// detections too and read as an upper bound.
	FalseAlarmPPM       *obs.Gauge
	StreamFalseAlarmPPM *obs.GaugeVec
}

// streams are the detector's stream labels in registration order.
var streams = []string{"pd", "pi", "ps"}

// NewMetrics registers the session families on reg (nil: a private
// registry, for tests).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Metrics{
		reg:                 reg,
		Active:              reg.Gauge("capserver_sessions_active"),
		Created:             reg.Counter("capserver_sessions_created_total"),
		Evicted:             reg.Counter("capserver_sessions_evicted_total"),
		Events:              reg.Counter("capserver_session_events_total"),
		Rejected:            reg.Counter("capserver_session_rejected_total"),
		Drifts:              reg.Counter("capserver_session_drift_total"),
		Resyncs:             reg.Counter("capserver_session_resync_total"),
		Limit:               reg.Gauge("capserver_sessions_limit"),
		StreamFires:         reg.CounterVec("capserver_session_stream_fires_total", "stream"),
		StreamUses:          reg.CounterVec("capserver_session_stream_uses_total", "stream"),
		FalseAlarmPPM:       reg.Gauge("capserver_session_false_alarm_ppm"),
		StreamFalseAlarmPPM: reg.GaugeVec("capserver_session_stream_false_alarm_ppm", "stream"),
	}
	reg.Help("capserver_session_stream_fires_total",
		"Change points attributed to each detector stream, summed over all sessions.")
	reg.Help("capserver_session_stream_uses_total",
		"Observations fed to each detector stream while armed, summed over all sessions.")
	reg.Help("capserver_session_false_alarm_ppm",
		"All-streams alarm rate in parts per million (fires per armed observation).")
	reg.Help("capserver_session_stream_false_alarm_ppm",
		"Per-stream alarm rate in parts per million (fires per armed observation).")
	// Materialize every stream cell at zero: labeled series otherwise
	// appear only on first increment, and health rules (plus the
	// exposition-lint test) want the full family present from tick 0.
	for _, st := range streams {
		m.StreamFires.With(st).Add(0)
		m.StreamUses.With(st).Add(0)
		m.StreamFalseAlarmPPM.With(st).Set(0)
	}
	return m
}

// updateAlarmRates recomputes the ppm gauges from the fires/uses
// counters. Callers invoke it after bumping the counters; integer ppm
// is exact at the precision an alert threshold cares about.
func (m *Metrics) updateAlarmRates() {
	var fires, uses int64
	for _, st := range streams {
		f, u := m.StreamFires.Value(st), m.StreamUses.Value(st)
		fires += f
		uses += u
		if u > 0 {
			m.StreamFalseAlarmPPM.With(st).Set(f * 1_000_000 / u)
		}
	}
	if uses > 0 {
		m.FalseAlarmPPM.Set(fires * 1_000_000 / uses)
	}
}

// Registry returns the registry the metrics live on.
func (m *Metrics) Registry() *obs.Registry { return m.reg }
