package session

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/channel"
)

// fakeClock is an injectable deterministic clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestStore(t *testing.T, cfg StoreConfig) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func transmits(from int64, n int) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = Event{Use: from + int64(i), Kind: channel.EventTransmit, Sent: 1, Received: 1}
	}
	return events
}

func TestStoreIngestAndGet(t *testing.T) {
	s := newTestStore(t, StoreConfig{})
	in := `{"u":1,"k":"T","s":3,"r":3}` + "\n" + `{"u":2,"k":"D","s":4}` + "\n"
	n, snap, err := s.Ingest("alpha", strings.NewReader(in))
	if err != nil || n != 2 {
		t.Fatalf("ingest: n=%d err=%v", n, err)
	}
	if snap.Counts.Transmits != 1 || snap.Counts.Deletes != 1 || snap.LastUse != 2 {
		t.Fatalf("snapshot %+v", snap)
	}
	got, err := s.Get("alpha")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got.Counts != snap.Counts || got.ID != "alpha" {
		t.Fatalf("get %+v != ingest snapshot %+v", got, snap)
	}
	if _, err := s.Get("beta"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing session error %v, want ErrNotFound", err)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
	// A stale batch is rejected whole without mutation.
	if _, _, err := s.Ingest("alpha", strings.NewReader(in)); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("stale batch error %v, want ErrOutOfOrder", err)
	}
	if got, _ := s.Get("alpha"); got.LastUse != 2 {
		t.Fatalf("stale batch mutated session to use %d", got.LastUse)
	}
	// Decode failures identify the bad line and leave no session.
	var de *DecodeError
	if _, _, err := s.Ingest("gamma", strings.NewReader("junk\n")); !errors.As(err, &de) || de.Line != 1 {
		t.Fatalf("junk ingest error %v, want line-1 DecodeError", err)
	}
	if _, err := s.Get("gamma"); !errors.Is(err, ErrNotFound) {
		t.Fatal("failed decode created a session")
	}
	if bad := s.Metrics().Rejected.Value(); bad != 2 {
		t.Fatalf("rejected counter %d, want 2", bad)
	}
}

func TestStoreValidatesIDs(t *testing.T) {
	s := newTestStore(t, StoreConfig{})
	for _, id := range []string{"", "a/b", "x y", "a\nb", strings.Repeat("z", 129), "é"} {
		if _, _, err := s.Ingest(id, strings.NewReader("")); err == nil {
			t.Fatalf("id %q accepted", id)
		}
	}
	if _, _, err := s.Ingest(strings.Repeat("z", 128), strings.NewReader("")); err != nil {
		t.Fatalf("max-length id rejected: %v", err)
	}
}

func TestStoreMaxSessions(t *testing.T) {
	s := newTestStore(t, StoreConfig{MaxSessions: 2})
	for i := 0; i < 2; i++ {
		if _, _, err := s.IngestEvents(fmt.Sprintf("s%d", i), transmits(1, 1)); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if _, _, err := s.IngestEvents("overflow", transmits(1, 1)); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("overflow error %v, want ErrTooManySessions", err)
	}
	// Existing sessions keep ingesting at the cap.
	if _, _, err := s.IngestEvents("s0", transmits(2, 1)); err != nil {
		t.Fatalf("existing session blocked at cap: %v", err)
	}
}

func TestStoreTTLEviction(t *testing.T) {
	clock := newFakeClock()
	s := newTestStore(t, StoreConfig{TTL: time.Minute, Now: clock.Now})
	s.IngestEvents("old", transmits(1, 1))
	clock.Advance(45 * time.Second)
	s.IngestEvents("fresh", transmits(1, 1))
	clock.Advance(30 * time.Second) // old idle 75s, fresh idle 30s
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, err := s.Get("old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("idle session survived eviction")
	}
	if _, err := s.Get("fresh"); err != nil {
		t.Fatalf("fresh session evicted: %v", err)
	}
	// Touching a session resets its idle clock.
	clock.Advance(45 * time.Second)
	s.IngestEvents("fresh", transmits(2, 1))
	clock.Advance(30 * time.Second)
	if n := s.EvictIdle(); n != 0 {
		t.Fatalf("touched session evicted (%d)", n)
	}
	if got := s.Metrics().Evicted.Value(); got != 1 {
		t.Fatalf("capserver_sessions_evicted_total = %d, want 1", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d, want 1", s.Len())
	}
}

// TestStoreEvictionReclaimsMemory is the satellite memory-hygiene
// regression: 10^5 expired sessions must be reclaimed — the evicted
// counter reflects all of them and heap growth after the
// create/evict cycle stays bounded.
func TestStoreEvictionReclaimsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-session sweep")
	}
	const sessions = 100000
	clock := newFakeClock()
	s := newTestStore(t, StoreConfig{TTL: time.Minute, Now: clock.Now, MaxSessions: sessions})

	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := heapNow()

	batch := transmits(1, 8)
	for i := 0; i < sessions; i++ {
		if _, _, err := s.IngestEvents(fmt.Sprintf("evict-%06d", i), batch); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if s.Len() != sessions {
		t.Fatalf("len %d, want %d", s.Len(), sessions)
	}
	clock.Advance(2 * time.Minute)
	if n := s.EvictIdle(); n != sessions {
		t.Fatalf("evicted %d, want %d", n, sessions)
	}
	if got := s.Metrics().Evicted.Value(); got != sessions {
		t.Fatalf("capserver_sessions_evicted_total = %d, want %d", got, sessions)
	}
	if s.Len() != 0 {
		t.Fatalf("len %d after full eviction", s.Len())
	}

	after := heapNow()
	// The cycle must not strand the ~10^5 session objects (~400 bytes
	// each would be ~40 MB). Allow generous slack for map bucket arrays
	// the runtime keeps; what matters is the order of magnitude.
	const bound = 8 << 20
	if after > before && after-before > bound {
		t.Fatalf("heap grew %d bytes across create/evict cycle (bound %d)", after-before, bound)
	}
}

func TestStoreList(t *testing.T) {
	s := newTestStore(t, StoreConfig{})
	for _, id := range []string{"c", "a", "e", "b", "d"} {
		s.IngestEvents(id, transmits(1, 1))
	}
	page1, next := s.List("", 2)
	if len(page1) != 2 || page1[0].ID != "a" || page1[1].ID != "b" || next != "b" {
		t.Fatalf("page1 %v next %q", ids(page1), next)
	}
	page2, next := s.List(next, 2)
	if len(page2) != 2 || page2[0].ID != "c" || page2[1].ID != "d" || next != "d" {
		t.Fatalf("page2 %v next %q", ids(page2), next)
	}
	page3, next := s.List(next, 2)
	if len(page3) != 1 || page3[0].ID != "e" || next != "" {
		t.Fatalf("page3 %v next %q", ids(page3), next)
	}
}

func ids(snaps []Snapshot) []string {
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.ID
	}
	return out
}

// TestStoreConcurrentIngest exercises shard locking under the race
// detector: concurrent sessions land their exact event counts.
func TestStoreConcurrentIngest(t *testing.T) {
	s := newTestStore(t, StoreConfig{})
	const goroutines, batches = 16, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("conc-%02d", g)
			for b := 0; b < batches; b++ {
				if _, _, err := s.IngestEvents(id, transmits(int64(b*5+1), 5)); err != nil {
					t.Errorf("%s batch %d: %v", id, b, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		snap, err := s.Get(fmt.Sprintf("conc-%02d", g))
		if err != nil || snap.Counts.Transmits != batches*5 {
			t.Fatalf("session %d: %+v err=%v", g, snap.Counts, err)
		}
	}
	if got := s.Metrics().Events.Value(); got != goroutines*batches*5 {
		t.Fatalf("events counter %d, want %d", got, goroutines*batches*5)
	}
}
