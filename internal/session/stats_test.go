package session

import (
	"strings"
	"testing"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestDetectorStreamStats pins the per-stream accounting: armed uses
// accrue only after warmup, and a fired change point is attributed to
// the stream whose CUSUM crossed.
func TestDetectorStreamStats(t *testing.T) {
	d := newTestDetector(t)
	src := rng.New(42)
	pd, pi, ps := d.Stats()
	if pd.ArmedUses != 0 || pi.ArmedUses != 0 || ps.ArmedUses != 0 {
		t.Fatal("armed uses before any observation")
	}
	// Warmup (512 by default): no armed uses during it.
	use := feedRates(d, src, 0, 512, 0.05, 0.05, 0.03)
	pd, _, _ = d.Stats()
	if pd.ArmedUses != 0 {
		t.Fatalf("pd armed uses during warmup: %d", pd.ArmedUses)
	}
	use = feedRates(d, src, use, 1488, 0.05, 0.05, 0.03)
	pd, pi, ps = d.Stats()
	// 2000 total uses, 512 warmup: the per-use streams saw 1488 armed.
	if pd.ArmedUses != 1488 || pi.ArmedUses != 1488 {
		t.Errorf("armed uses pd=%d pi=%d, want 1488", pd.ArmedUses, pi.ArmedUses)
	}
	// ps only advances on transmissions, so it saw fewer.
	if ps.ArmedUses == 0 || ps.ArmedUses >= 1488 {
		t.Errorf("ps armed uses = %d, want in (0, 1488)", ps.ArmedUses)
	}
	if pd.Fires+pi.Fires+ps.Fires != 0 {
		t.Fatalf("fires on a stationary stream: %+v %+v %+v", pd, pi, ps)
	}
	// Shift the deletion rate: the fire lands on the pd stream.
	feedRates(d, src, use, 2000, 0.30, 0.05, 0.03)
	pd, pi, ps = d.Stats()
	if pd.Fires == 0 {
		t.Error("deletion shift not attributed to the pd stream")
	}
	if pi.Fires != 0 || ps.Fires != 0 {
		t.Errorf("shift attributed to the wrong stream: pi=%d ps=%d", pi.Fires, ps.Fires)
	}
	if int64(d.Drifts()) != pd.Fires+pi.Fires+ps.Fires {
		t.Errorf("drifts %d != summed fires %d", d.Drifts(), pd.Fires+pi.Fires+ps.Fires)
	}
}

// TestStoreExportsStreamStats drives drift through the store and
// checks the aggregate gauge/counter families the health rules consume.
func TestStoreExportsStreamStats(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := NewStore(StoreConfig{Metrics: NewMetrics(reg), MaxSessions: 64})
	if err != nil {
		t.Fatal(err)
	}
	m := st.Metrics()
	// The stream cells exist at zero before any traffic, so rules and
	// the exposition see the full families from the start.
	var b strings.Builder
	reg.WriteProm(&b)
	for _, line := range []string{
		`capserver_sessions_limit 64`,
		`capserver_session_stream_fires_total{stream="pd"} 0`,
		`capserver_session_stream_uses_total{stream="ps"} 0`,
		`capserver_session_stream_false_alarm_ppm{stream="pi"} 0`,
		`capserver_session_false_alarm_ppm 0`,
	} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in pre-traffic exposition", line)
		}
	}

	// One clean stream, one drifting stream, ingested in batches.
	src := rng.New(9)
	gen := func(n int, start int64, pdRate float64) []Event {
		events := make([]Event, 0, n)
		use := start
		for i := 0; i < n; i++ {
			use++
			kind := channel.EventTransmit
			if src.Bool(pdRate) {
				kind = channel.EventDelete
			}
			events = append(events, Event{Use: use, Kind: kind})
		}
		return events
	}
	if _, _, err := st.IngestEvents("clean", gen(3000, 0, 0.05)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.IngestEvents("drifty", gen(1500, 0, 0.05)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.IngestEvents("drifty", gen(2500, 1500, 0.45)); err != nil {
		t.Fatal(err)
	}

	if m.StreamUses.Value("pd") == 0 || m.StreamUses.Value("pi") == 0 {
		t.Error("armed uses not aggregated")
	}
	if m.StreamFires.Value("pd") == 0 {
		t.Error("pd drift not aggregated into stream fires")
	}
	if m.Drifts.Value() == 0 {
		t.Fatal("no drift detected — scenario broken")
	}
	// The ppm gauges reflect fires/uses.
	wantPPM := m.StreamFires.Value("pd") * 1_000_000 / m.StreamUses.Value("pd")
	b.Reset()
	reg.WriteProm(&b)
	got := b.String()
	if !strings.Contains(got, `capserver_session_stream_false_alarm_ppm{stream="pd"} `+itoa(wantPPM)+"\n") {
		t.Errorf("pd ppm gauge missing/wrong (want %d):\n%s", wantPPM, got)
	}
}

// itoa avoids importing strconv for one call site.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
