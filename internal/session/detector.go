package session

import (
	"fmt"
	"math"

	"repro/internal/channel"
)

// Status is a session's supervision status, the streaming analogue of
// syncproto's Supervisor status: it tells an operator (or an automated
// Supervisor driving resync) whether the session's parameter estimate
// is currently trustworthy.
type Status string

const (
	// StatusWarmup: still collecting the baseline window; the estimate
	// exists but drift detection is not yet armed.
	StatusWarmup Status = "warmup"
	// StatusOK: baseline armed, no change point detected.
	StatusOK Status = "ok"
	// StatusResync: a change point fired; the detector is re-learning
	// the post-change baseline. Consumers should treat the whole-history
	// estimate as mixing two regimes and prefer to resynchronize.
	StatusResync Status = "resync"
)

// DetectorConfig tunes the change-point detector. The zero value
// selects defaults sized for per-use event streams in the paper's
// parameter regime (rates of a few percent, sessions of 10^3–10^5
// uses).
type DetectorConfig struct {
	// Warmup is the number of uses over which each baseline is learned
	// (default 512). Larger warmup gives tighter baselines and fewer
	// false alarms but delays arming.
	Warmup int64
	// Delta is the minimum absolute up-shift the CUSUM is tuned for
	// (default 0.08). The actual up alternative is rate-relative,
	// max(2·p0, p0+Delta): a doubling of a common event rate and a
	// Delta-sized jump of a rare one are both "the designed shift".
	// The down alternative is always a halving, p0/2 — an additive
	// down-shift of a rare event would clamp to ~0 and make every
	// non-event weak positive evidence, which turns long gaps between
	// events into false alarms. Smaller shifts than the design point
	// are still detected, just later.
	Delta float64
	// Threshold is the CUSUM decision threshold h in nats (default 8).
	// Raising it trades detection delay for fewer false alarms; at the
	// defaults an injected shift of the design size fires within a few
	// hundred uses while stationary streams of 10^4 uses fire at well
	// under the 1% level (measured, not just the classical e^h ARL
	// heuristic — baseline estimation noise is the real driver, which
	// is what Guard absorbs).
	Threshold float64
	// Guard widens the null hypotheses by this many standard errors of
	// the warmup baseline estimate (default 2.5). A CUSUM armed from an
	// estimated baseline inherits that estimate's noise: a baseline
	// underestimated by 2 SE turns the in-control drift of the up-CUSUM
	// nearly flat and fires spuriously. Testing against p0 ± Guard·SE
	// instead of p0 makes "in control" mean "within the warmup
	// window's own uncertainty", which empirically cuts per-stream
	// false alarms by an order of magnitude at the cost of ignoring
	// shifts smaller than the guard band.
	Guard float64
	// MinP clamps baseline rates away from 0 and 1 (default 1e-3) so
	// the log-likelihood increments stay finite when the warmup window
	// observed no events of a stream.
	MinP float64
}

// withDefaults fills unset fields.
func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Warmup == 0 {
		c.Warmup = 512
	}
	if c.Delta == 0 {
		c.Delta = 0.08
	}
	if c.Threshold == 0 {
		c.Threshold = 8
	}
	if c.Guard == 0 {
		c.Guard = 2.5
	}
	if c.MinP == 0 {
		c.MinP = 1e-3
	}
	return c
}

// validate rejects unusable configurations.
func (c DetectorConfig) validate() error {
	if c.Warmup < 1 {
		return fmt.Errorf("session: detector warmup %d < 1", c.Warmup)
	}
	if !(c.Delta > 0 && c.Delta < 0.5) {
		return fmt.Errorf("session: detector delta %v out of (0, 0.5)", c.Delta)
	}
	if !(c.Threshold > 0) || math.IsInf(c.Threshold, 0) {
		return fmt.Errorf("session: detector threshold %v must be positive and finite", c.Threshold)
	}
	if !(c.Guard > 0) || c.Guard > 10 {
		return fmt.Errorf("session: detector guard %v out of (0, 10]", c.Guard)
	}
	if !(c.MinP > 0 && c.MinP < 0.5) {
		return fmt.Errorf("session: detector min-p %v out of (0, 0.5)", c.MinP)
	}
	return nil
}

// cusum is one two-sided Bernoulli CUSUM over a 0/1 indicator stream.
// During warmup it only tallies; once armed, each observation x adds
// the log-likelihood ratio of the shifted-rate hypothesis against the
// baseline to two one-sided statistics (rate up to max(2·p0, p0+Delta),
// rate down to p0/2), each floored at zero (the classical CUSUM
// recursion). Crossing the threshold on either side is a change point.
// State is six float64s and three int64s — O(1) regardless of stream
// length.
type cusum struct {
	seen, ones int64 // warmup tallies
	armed      bool
	// Armed-state log-likelihood increment tables: lrUp[x] is the
	// increment for observation x under the rate-up alternative,
	// lrDown[x] under rate-down. Precomputed at arming so the per-event
	// cost is one add, one compare, one max.
	lrUp, lrDown [2]float64
	up, down     float64 // one-sided CUSUM statistics
}

// observe feeds one indicator observation, arming after warmup uses
// and reporting whether a change point fired.
func (s *cusum) observe(x int64, cfg DetectorConfig) bool {
	if !s.armed {
		s.seen++
		s.ones += x
		if s.seen >= cfg.Warmup {
			s.arm(cfg)
		}
		return false
	}
	s.up = math.Max(0, s.up+s.lrUp[x])
	s.down = math.Max(0, s.down+s.lrDown[x])
	return s.up > cfg.Threshold || s.down > cfg.Threshold
}

// arm fixes the baseline from the warmup tallies and precomputes the
// increment tables. Each side tests its alternative against a
// guard-banded null (p0 ± Guard standard errors of the warmup
// estimate) rather than p0 itself; see DetectorConfig.Guard.
func (s *cusum) arm(cfg DetectorConfig) {
	clamp := func(p float64) float64 {
		return math.Min(1-cfg.MinP, math.Max(cfg.MinP, p))
	}
	p0 := clamp(float64(s.ones) / float64(s.seen))
	se := math.Sqrt(p0 * (1 - p0) / float64(s.seen))
	nullUp := clamp(p0 + cfg.Guard*se)
	p1 := clamp(math.Max(2*nullUp, nullUp+cfg.Delta))
	nullDown := clamp(p0 - cfg.Guard*se)
	p2 := clamp(nullDown / 2)
	// log L(x|p1)/L(x|nullUp) for x in {0,1}; likewise p2 vs nullDown.
	// When the clamp collapses an alternative onto its null (baseline
	// already at the boundary) the increments are 0 and that side
	// simply never fires, which is correct: there is no room to shift
	// further.
	s.lrUp = [2]float64{math.Log((1 - p1) / (1 - nullUp)), math.Log(p1 / nullUp)}
	s.lrDown = [2]float64{math.Log((1 - p2) / (1 - nullDown)), math.Log(p2 / nullDown)}
	s.up, s.down = 0, 0
	s.armed = true
}

// reset returns the stream to warmup for post-change re-baselining.
func (s *cusum) reset() { *s = cusum{} }

// Detector watches a session's event stream for parameter drift. It
// runs three two-sided Bernoulli CUSUMs, one per Definition 1 rate:
//
//   - pd stream: deletion indicator, one observation per use;
//   - pi stream: insertion indicator, one observation per use;
//   - ps stream: substitution indicator, one observation per
//     transmission event (T or S), matching Ps's conditioning.
//
// A change point on any stream increments Drifts, records the firing
// use index, and resets all three streams to warmup (the proactive
// resync): the post-change baseline is re-learned from fresh data
// rather than polluted by the old regime. Status reads
// warmup -> ok -> (drift) -> resync -> ok.
type Detector struct {
	cfg        DetectorConfig
	pd, pi, ps cusum
	inResync   bool
	drifts     int64
	lastChange int64
	recoveries int64

	statPd, statPi, statPs StreamStats
}

// StreamStats is one CUSUM stream's aggregate accounting, the raw
// material of a false-alarm estimate: how often the armed stream was
// fed and how often it fired. On a stationary stream every fire is by
// definition a false alarm, so fires/armed-uses estimates the
// per-observation false-alarm rate; under real drift it mixes true
// detections in and reads as an upper bound.
type StreamStats struct {
	// Fires counts change points attributed to this stream (a single
	// use can fire several streams; each counts its own).
	Fires int64
	// ArmedUses counts observations fed while the stream was armed —
	// the denominator warmup observations are excluded from, since an
	// unarmed CUSUM cannot fire.
	ArmedUses int64
}

// init prepares the detector (cfg must already have defaults applied).
func (d *Detector) init(cfg DetectorConfig) { d.cfg = cfg }

// Observe feeds one event's kind at the given use index.
func (d *Detector) Observe(kind channel.EventKind, use int64) {
	del, ins, sub := int64(0), int64(0), int64(0)
	switch kind {
	case channel.EventDelete:
		del = 1
	case channel.EventInsert:
		ins = 1
	case channel.EventSubstitute:
		sub = 1
	}
	feed := func(s *cusum, st *StreamStats, x int64) bool {
		if s.armed {
			st.ArmedUses++
		}
		if !s.observe(x, d.cfg) {
			return false
		}
		st.Fires++
		return true
	}
	fired := feed(&d.pd, &d.statPd, del)
	fired = feed(&d.pi, &d.statPi, ins) || fired
	if kind == channel.EventTransmit || kind == channel.EventSubstitute {
		fired = feed(&d.ps, &d.statPs, sub) || fired
	}
	if fired {
		d.drifts++
		d.lastChange = use
		d.inResync = true
		d.pd.reset()
		d.pi.reset()
		d.ps.reset()
		return
	}
	// Leaving resync: once every stream has re-armed on post-change
	// data, the estimate of the new regime is trustworthy again.
	if d.inResync && d.armed() {
		d.inResync = false
		d.recoveries++
	}
}

// armed reports whether all per-use streams have finished warmup. The
// ps stream is intentionally excluded: it only advances on
// transmission events, so on a deletion-heavy channel it arms later
// than the per-use streams — and on an all-delete stream, never.
func (d *Detector) armed() bool { return d.pd.armed && d.pi.armed }

// Status returns the current supervision status.
func (d *Detector) Status() Status {
	switch {
	case d.inResync:
		return StatusResync
	case !d.armed():
		return StatusWarmup
	default:
		return StatusOK
	}
}

// Drifts returns the number of change points detected.
func (d *Detector) Drifts() int64 { return d.drifts }

// LastChangeUse returns the use index at which the most recent change
// point fired (0 if none).
func (d *Detector) LastChangeUse() int64 { return d.lastChange }

// Recoveries returns the number of completed post-drift re-baselines.
func (d *Detector) Recoveries() int64 { return d.recoveries }

// Stats returns the per-stream aggregate accounting in pd, pi, ps
// order. Unlike the CUSUM state it survives post-drift resets: the
// totals accumulate over the session's whole life.
func (d *Detector) Stats() (pd, pi, ps StreamStats) {
	return d.statPd, d.statPi, d.statPs
}
