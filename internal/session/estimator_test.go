package session

import (
	"bytes"
	"encoding/json"
	"testing"
	"testing/quick"

	"repro/internal/channel"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/rng"
)

// traceUse is the test-side decoding of one obs trace "use" line.
type traceUse struct {
	T   string `json:"t"`
	I   int64  `json:"i"`
	K   string `json:"k"`
	Q   uint32 `json:"q"`
	D   uint32 `json:"d"`
	Inj int    `json:"inj"`
}

// recordTrace simulates uses of a seeded channel (optionally under a
// fault stack) through a ChannelRecorder with a tracer attached and
// returns the raw JSONL trace.
func recordTrace(t *testing.T, params channel.Params, inject string, uses int, seed uint64) []byte {
	t.Helper()
	src := rng.NewStream(seed, 0)
	ch, err := channel.NewDeletionInsertion(params, src)
	if err != nil {
		t.Fatalf("channel: %v", err)
	}
	spec, err := faultinject.ParseSpec(inject)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	stack, err := spec.Build(ch, params.N, rng.NewStream(seed, 1))
	if err != nil {
		t.Fatalf("stack: %v", err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	rec, err := obs.NewChannelRecorder(stack, tr, stack.Injected)
	if err != nil {
		t.Fatalf("recorder: %v", err)
	}
	symbols := rng.NewStream(seed, 2)
	queued, have := uint32(0), false
	for i := 0; i < uses; i++ {
		if !have {
			queued = symbols.Symbol(params.N)
			have = true
		}
		if rec.Use(queued).Consumed {
			have = false
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("tracer: %v", err)
	}
	return buf.Bytes()
}

// eventsFromTrace converts a recorded trace's "use" lines into session
// Events, the replay a streaming client would send.
func eventsFromTrace(t *testing.T, raw []byte) []Event {
	t.Helper()
	var events []Event
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var u traceUse
		if err := json.Unmarshal(line, &u); err != nil {
			t.Fatalf("trace line %q: %v", line, err)
		}
		if u.T != "use" {
			continue
		}
		kind, ok := KindFromCode(u.K)
		if !ok {
			t.Fatalf("trace line %q: bad kind", line)
		}
		ev := Event{Use: u.I, Kind: kind, Injected: u.Inj != 0}
		switch kind {
		case channel.EventTransmit, channel.EventSubstitute:
			ev.Sent, ev.Received = u.Q, u.D
		case channel.EventDelete:
			ev.Sent = u.Q
		case channel.EventInsert:
			ev.Received = u.D
		}
		events = append(events, ev)
	}
	return events
}

// mustEqualEstimates asserts exact (bitwise) float equality on every
// estimate field — the online path must be indistinguishable from
// batch, not merely close.
func mustEqualEstimates(t *testing.T, online, batch obs.Estimate) {
	t.Helper()
	if online != batch {
		t.Fatalf("online estimate diverges from batch:\nonline: %+v\nbatch:  %+v", online, batch)
	}
}

// TestOnlineMatchesBatchBitExact is the satellite property test:
// feeding a recorded trace event-by-event through the online session
// estimator yields exactly the same (Pd, Pi, Ps) point estimates and
// Wilson intervals as batch obs.Estimate on the full trace — at every
// prefix length, not just the end, since an online estimator is
// queried mid-stream.
func TestOnlineMatchesBatchBitExact(t *testing.T) {
	cases := []struct {
		name   string
		params channel.Params
		inject string
		uses   int
		seed   uint64
	}{
		{"typical", channel.Params{N: 4, Pd: 0.08, Pi: 0.05, Ps: 0.03}, "", 5000, 7},
		{"hostile", channel.Params{N: 3, Pd: 0.2, Pi: 0.15, Ps: 0.1}, "drift=0.3;jam=0.1", 5000, 11},
		{"deletion-heavy", channel.Params{N: 2, Pd: 0.7, Pi: 0.0, Ps: 0.5}, "", 2000, 13},
		{"tiny", channel.Params{N: 1, Pd: 0.1, Pi: 0.1, Ps: 0.2}, "", 17, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := recordTrace(t, tc.params, tc.inject, tc.uses, tc.seed)
			events := eventsFromTrace(t, raw)

			sess, err := New("prop", Config{N: tc.params.N})
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			var running obs.UseCounts
			for i, ev := range events {
				if err := sess.Apply(ev); err != nil {
					t.Fatalf("apply event %d: %v", i, err)
				}
				// Prefix check: online estimate after i+1 events equals
				// batch estimate of the first i+1 events.
				switch ev.Kind {
				case channel.EventTransmit:
					running.Transmits++
				case channel.EventSubstitute:
					running.Substitutes++
				case channel.EventDelete:
					running.Deletes++
				case channel.EventInsert:
					running.Inserts++
				}
				if ev.Injected {
					running.Injected++
				}
				mustEqualEstimates(t, sess.Estimate(), running.Estimate())
			}

			// Full-trace check against the real batch pipeline.
			sum, err := obs.ReadTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadTrace: %v", err)
			}
			if got, want := sess.Counts(), sum.UseCounts; got != want {
				t.Fatalf("online counts %+v != batch counts %+v", got, want)
			}
			mustEqualEstimates(t, sess.Estimate(), sum.Estimate())
			if sess.LastUse() != int64(len(events)) {
				t.Fatalf("last use %d, want %d", sess.LastUse(), len(events))
			}
		})
	}
}

// TestOnlineMatchesBatchQuick drives the same property through
// testing/quick over arbitrary count vectors: any tally reachable by
// accumulation produces the identical estimate both ways.
func TestOnlineMatchesBatchQuick(t *testing.T) {
	f := func(tr, sub, del, ins uint16) bool {
		var est Estimator
		use := int64(0)
		emit := func(kind channel.EventKind, n uint16) {
			for i := uint16(0); i < n; i++ {
				use++
				est.Apply(Event{Use: use, Kind: kind})
			}
		}
		emit(channel.EventTransmit, tr%200)
		emit(channel.EventSubstitute, sub%200)
		emit(channel.EventDelete, del%200)
		emit(channel.EventInsert, ins%200)
		batch := obs.UseCounts{
			Transmits:   int64(tr % 200),
			Substitutes: int64(sub % 200),
			Deletes:     int64(del % 200),
			Inserts:     int64(ins % 200),
		}
		return est.Estimate() == batch.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSessionRejectsOutOfOrder pins the ordering contract.
func TestSessionRejectsOutOfOrder(t *testing.T) {
	sess, err := New("ord", Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []int64{1, 2, 5} {
		if err := sess.Apply(Event{Use: u, Kind: channel.EventTransmit}); err != nil {
			t.Fatalf("apply use %d: %v", u, err)
		}
	}
	before := sess.Counts()
	if err := sess.Apply(Event{Use: 5, Kind: channel.EventDelete}); err == nil {
		t.Fatal("replayed use index accepted")
	}
	if err := sess.Apply(Event{Use: 3, Kind: channel.EventDelete}); err == nil {
		t.Fatal("stale use index accepted")
	}
	if sess.Counts() != before {
		t.Fatal("rejected events mutated the estimator")
	}
}
