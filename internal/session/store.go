package session

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// ErrTooManySessions reports the store at its session cap.
var ErrTooManySessions = errors.New("session: too many live sessions")

// ErrNotFound reports an unknown session ID.
var ErrNotFound = errors.New("session: not found")

// StoreConfig tunes a Store. The zero value selects production-shaped
// defaults.
type StoreConfig struct {
	// Session configures new sessions (symbol width, detector tuning).
	Session Config
	// TTL evicts sessions idle this long (default 15m). EvictIdle
	// applies it; the store itself never spawns goroutines, so owners
	// control sweep cadence (capserver runs a janitor ticker).
	TTL time.Duration
	// MaxSessions caps live sessions (default 1 << 20). Ingest for a
	// new ID beyond the cap fails with ErrTooManySessions; existing
	// sessions keep ingesting.
	MaxSessions int
	// MaxBatchEvents bounds one ingest batch (default 65536).
	MaxBatchEvents int
	// Shards is the lock-shard count (default 128, rounded up to a
	// power of two).
	Shards int
	// Now supplies the clock (default time.Now; tests inject a fake to
	// make TTL eviction deterministic).
	Now func() time.Time
	// Metrics receives the session instrument set (nil: a private
	// registry).
	Metrics *Metrics
}

// withDefaults fills unset fields.
func (c StoreConfig) withDefaults() StoreConfig {
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxSessions == 0 {
		c.MaxSessions = 1 << 20
	}
	if c.MaxBatchEvents == 0 {
		c.MaxBatchEvents = 1 << 16
	}
	if c.Shards == 0 {
		c.Shards = 128
	}
	for c.Shards&(c.Shards-1) != 0 {
		c.Shards++
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = NewMetrics(nil)
	}
	return c
}

// entry is one live session with its idle-tracking timestamp.
type entry struct {
	sess     *Session
	lastSeen time.Time
}

// storeShard is one lock shard of the session map.
type storeShard struct {
	mu sync.Mutex
	m  map[string]*entry
}

// Store holds the live sessions of one node, sharded by session ID to
// keep 10^5+ concurrent sessions off a single lock. Per-session state
// is O(1) (the estimator's counters plus the detector's fixed CUSUM
// state), so memory scales with session count, not event count, and
// TTL eviction returns it.
type Store struct {
	cfg    StoreConfig
	shards []storeShard
	// count tracks live sessions under its own lock so the MaxSessions
	// check does not scan shards.
	countMu sync.Mutex
	count   int
}

// NewStore builds a store.
func NewStore(cfg StoreConfig) (*Store, error) {
	cfg = cfg.withDefaults()
	cfg.Session = cfg.Session.withDefaults()
	if err := cfg.Session.validate(); err != nil {
		return nil, err
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("session: negative TTL %v", cfg.TTL)
	}
	s := &Store{cfg: cfg, shards: make([]storeShard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*entry)
	}
	cfg.Metrics.Limit.Set(int64(cfg.MaxSessions))
	return s, nil
}

// Metrics returns the store's instrument set.
func (s *Store) Metrics() *Metrics { return s.cfg.Metrics }

// MaxBatchEvents returns the per-batch event cap.
func (s *Store) MaxBatchEvents() int { return s.cfg.MaxBatchEvents }

// TTL returns the idle-eviction threshold.
func (s *Store) TTL() time.Duration { return s.cfg.TTL }

// ValidateID accepts session IDs safe for URL paths and ring keys:
// 1–128 bytes of [A-Za-z0-9._-].
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("session: empty session id")
	}
	if len(id) > 128 {
		return fmt.Errorf("session: session id longer than 128 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("session: session id byte %d (%q) not in [A-Za-z0-9._-]", i, c)
		}
	}
	return nil
}

// shardFor picks the lock shard for an ID. The ring's stable fnv hash
// is reused; only even distribution matters here.
func (s *Store) shardFor(id string) *storeShard {
	return &s.shards[fnvShard(id)&(uint64(len(s.shards))-1)]
}

// Ingest decodes one NDJSON batch and applies it to the session,
// creating the session on first contact. The batch is decoded before
// any lock is taken (a slow client never blocks other sessions), then
// applied atomically: either every event lands or none do. Returns the
// number of events applied and the post-apply snapshot.
func (s *Store) Ingest(id string, r io.Reader) (int, Snapshot, error) {
	if err := ValidateID(id); err != nil {
		s.cfg.Metrics.Rejected.Inc()
		return 0, Snapshot{}, err
	}
	events, err := DecodeBatch(r, 0, s.cfg.MaxBatchEvents)
	if err != nil {
		s.cfg.Metrics.Rejected.Inc()
		return 0, Snapshot{}, err
	}
	return s.IngestEvents(id, events)
}

// IngestEvents applies pre-decoded, intra-batch-ordered events (the
// loadgen's fast path: at 10^5 sessions the JSON round trip would
// dominate the benchmark). Ordering against the session cursor is
// enforced here; a stale batch is rejected whole with ErrOutOfOrder
// and no mutation.
func (s *Store) IngestEvents(id string, events []Event) (int, Snapshot, error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.m[id]
	if e == nil {
		if err := s.reserve(); err != nil {
			s.cfg.Metrics.Rejected.Inc()
			return 0, Snapshot{}, err
		}
		sess, err := New(id, s.cfg.Session)
		if err != nil {
			s.release(1)
			s.cfg.Metrics.Rejected.Inc()
			return 0, Snapshot{}, err
		}
		e = &entry{sess: sess}
		sh.m[id] = e
		s.cfg.Metrics.Created.Inc()
	}
	if len(events) > 0 && events[0].Use <= e.sess.LastUse() {
		s.cfg.Metrics.Rejected.Inc()
		return 0, Snapshot{}, fmt.Errorf("%w: batch starts at use %d, session at use %d",
			ErrOutOfOrder, events[0].Use, e.sess.LastUse())
	}
	det := e.sess.Detector()
	drifts, recoveries := det.Drifts(), det.Recoveries()
	pd0, pi0, ps0 := det.Stats()
	for _, ev := range events {
		// Cannot fail: the batch is intra-ordered and starts above the
		// cursor, both checked above.
		if err := e.sess.Apply(ev); err != nil {
			s.cfg.Metrics.Rejected.Inc()
			return 0, Snapshot{}, err
		}
	}
	e.lastSeen = s.cfg.Now()
	m := s.cfg.Metrics
	m.Events.Add(int64(len(events)))
	m.Drifts.Add(det.Drifts() - drifts)
	m.Resyncs.Add(det.Recoveries() - recoveries)
	pd1, pi1, ps1 := det.Stats()
	for _, d := range []struct {
		stream    string
		pre, post StreamStats
	}{{"pd", pd0, pd1}, {"pi", pi0, pi1}, {"ps", ps0, ps1}} {
		if n := d.post.Fires - d.pre.Fires; n > 0 {
			m.StreamFires.With(d.stream).Add(n)
		}
		if n := d.post.ArmedUses - d.pre.ArmedUses; n > 0 {
			m.StreamUses.With(d.stream).Add(n)
		}
	}
	m.updateAlarmRates()
	return len(events), e.sess.Snapshot(), nil
}

// reserve claims one session slot against MaxSessions.
func (s *Store) reserve() error {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	if s.count >= s.cfg.MaxSessions {
		return fmt.Errorf("%w: %d live", ErrTooManySessions, s.count)
	}
	s.count++
	s.cfg.Metrics.Active.Set(int64(s.count))
	return nil
}

// release returns n session slots.
func (s *Store) release(n int) {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	s.count -= n
	s.cfg.Metrics.Active.Set(int64(s.count))
}

// Get snapshots one session.
func (s *Store) Get(id string) (Snapshot, error) {
	if err := ValidateID(id); err != nil {
		return Snapshot{}, err
	}
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.m[id]
	if e == nil {
		return Snapshot{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.sess.Snapshot(), nil
}

// Len returns the live session count.
func (s *Store) Len() int {
	s.countMu.Lock()
	defer s.countMu.Unlock()
	return s.count
}

// List returns up to limit session snapshots in ascending ID order,
// strictly after the given ID ("" starts from the beginning), plus the
// page token for the next call ("" when exhausted). The ID sweep is
// O(sessions) per page; listing is an operator surface, not a hot
// path.
func (s *Store) List(afterID string, limit int) ([]Snapshot, string) {
	if limit <= 0 {
		limit = 100
	}
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id := range sh.m {
			if id > afterID {
				ids = append(ids, id)
			}
		}
		sh.mu.Unlock()
	}
	sort.Strings(ids)
	more := len(ids) > limit
	if more {
		ids = ids[:limit]
	}
	snaps := make([]Snapshot, 0, len(ids))
	for _, id := range ids {
		// A session may be evicted between the sweep and this read;
		// skip holes rather than failing the page.
		if snap, err := s.Get(id); err == nil {
			snaps = append(snaps, snap)
		}
	}
	next := ""
	if more && len(ids) > 0 {
		next = ids[len(ids)-1]
	}
	return snaps, next
}

// EvictIdle removes every session idle for at least the TTL and
// returns how many were reclaimed. TTL 0 keeps sessions forever.
func (s *Store) EvictIdle() int {
	if s.cfg.TTL == 0 {
		return 0
	}
	cutoff := s.cfg.Now().Add(-s.cfg.TTL)
	evicted := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for id, e := range sh.m {
			if !e.lastSeen.After(cutoff) {
				delete(sh.m, id)
				evicted++
			}
		}
		// Go maps never release bucket arrays on delete; after a mass
		// eviction drains a shard, swap in a fresh map so the heap
		// actually returns (the 10^5-eviction regression test's bound).
		if len(sh.m) == 0 {
			sh.m = make(map[string]*entry)
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		s.release(evicted)
		s.cfg.Metrics.Evicted.Add(int64(evicted))
	}
	return evicted
}

// fnvShard is FNV-1a with the ring's avalanche finalizer, duplicated
// here (three lines) rather than importing internal/cluster: the
// session layer must not depend on the cluster layer.
func fnvShard(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
