package session

import (
	"bytes"
	"testing"
	"time"
)

// smokeLoad is the small-but-meaningful configuration the package
// tests and the sessload -smoke mode share: enough sessions and uses
// for the convergence and detection assertions to bite, small enough
// for CI.
func smokeLoad() LoadConfig {
	return LoadConfig{Sessions: 400, Seed: 1}
}

func TestLoadRunAsserts(t *testing.T) {
	if testing.Short() {
		t.Skip("full smoke load")
	}
	rep, err := Run(smokeLoad())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := rep.Assert(); err != nil {
		var buf bytes.Buffer
		rep.Format(&buf)
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if rep.DriftSessions == 0 || rep.Detected != rep.DriftSessions {
		t.Fatalf("drift detection incomplete: %d/%d", rep.Detected, rep.DriftSessions)
	}
	// The acceptance criterion: detection lands inside the drift
	// window, i.e. before an offline analysis of that window could even
	// begin.
	if rep.MaxDelay >= int64(rep.DriftUses) {
		t.Fatalf("max detection delay %d not inside the %d-use drift window", rep.MaxDelay, rep.DriftUses)
	}
}

// TestLoadRunJobsByteIdentical is the determinism gate: the formatted
// report is byte-identical at any worker count under a fixed seed.
func TestLoadRunJobsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated smoke loads")
	}
	var want []byte
	for _, jobs := range []int{1, 4, 13} {
		cfg := smokeLoad()
		cfg.Sessions = 120
		cfg.Jobs = jobs
		rep, err := Run(cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		rep.Format(&buf)
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("jobs=%d output diverges:\n%s\n--- vs jobs=1 ---\n%s", jobs, buf.String(), want)
		}
	}
}

func TestLoadRunSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated smoke loads")
	}
	cfg := smokeLoad()
	cfg.Sessions = 60
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	a.Format(&ba)
	b.Format(&bb)
	if bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestTrajectoryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke load")
	}
	cfg := smokeLoad()
	cfg.Sessions = 120
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	traj := BuildTrajectory(cfg, rep, 250*time.Millisecond)
	path := t.TempDir() + "/BENCH_sessions.json"
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := CheckTrajectory(path, 120); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := CheckTrajectory(path, 100000); err == nil {
		t.Fatal("smoke-sized trajectory passed the 10^5 floor")
	}
}

// TestLoadRunHonestErrors pins that sink failures surface as session
// errors, not silent gaps.
func TestLoadRunHonestErrors(t *testing.T) {
	cfg := smokeLoad()
	cfg.Sessions = 10
	cfg.Ingest = func(id string, events []Event) (Snapshot, error) {
		return Snapshot{}, ErrTooManySessions
	}
	cfg.Fetch = func(id string) (Snapshot, error) { return Snapshot{}, ErrNotFound }
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 10 {
		t.Fatalf("errors %d, want 10", rep.Errors)
	}
	if rep.Assert() == nil {
		t.Fatal("Assert passed a run where every session failed")
	}
}
