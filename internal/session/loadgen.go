package session

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/channel"
	"repro/internal/faultinject"
	"repro/internal/rng"
)

// LoadConfig tunes one sessload run: Sessions independent simulated
// channels, each with planted (Pd, Pi, Ps) drawn from seeded ranges,
// streamed through the session layer in batches. Every DriftEvery-th
// session switches to a fault-injected regime halfway through, so the
// run exercises both convergence (clean phase) and change-point
// detection (drift phase).
type LoadConfig struct {
	// Sessions is the number of concurrent simulated sessions
	// (default 1000; the bench run uses 10^5+).
	Sessions int
	// Seed drives every random choice; a fixed seed makes the whole
	// run byte-identical at any Jobs count.
	Seed uint64
	// Jobs is the worker count (default GOMAXPROCS). Sessions are
	// independent, so concurrency never changes results, only wall
	// time.
	Jobs int
	// CleanUses and DriftUses are the per-session use counts of the
	// clean and (for drift sessions) injected phases (defaults 1200).
	CleanUses, DriftUses int
	// DriftEvery marks every k-th session (index % k == 0) as a drift
	// session (default 10; 0 disables drift).
	DriftEvery int
	// Inject is the faultinject spec wrapped around drift sessions'
	// channels for the drift phase (default "drift=0.25").
	Inject string
	// Batch is the events-per-ingest batch size (default 400).
	Batch int
	// N is the symbol width in bits (default 4).
	N int
	// Detector tunes the per-session change-point detector.
	Detector DetectorConfig
	// MaxDetectDelay bounds the accepted drift-detection delay in uses
	// (default DriftUses: detection must land inside the drift window,
	// i.e. before an offline analysis of that window would even close).
	MaxDetectDelay int64
	// Ingest and Fetch override the sink; both or neither. The default
	// sink is Store (built internally when nil). The cluster harness
	// substitutes HTTP calls here.
	Ingest func(id string, events []Event) (Snapshot, error)
	Fetch  func(id string) (Snapshot, error)
	// Store receives sessions when Ingest is nil (built internally
	// when also nil; exposed so callers can inspect it afterwards).
	Store *Store
}

// withDefaults fills unset fields.
func (c LoadConfig) withDefaults() LoadConfig {
	if c.Sessions == 0 {
		c.Sessions = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.CleanUses == 0 {
		c.CleanUses = 1200
	}
	if c.DriftUses == 0 {
		c.DriftUses = 1200
	}
	if c.DriftEvery == 0 {
		c.DriftEvery = 10
	}
	if c.Inject == "" {
		c.Inject = "drift=0.25"
	}
	if c.Batch == 0 {
		c.Batch = 400
	}
	if c.N == 0 {
		c.N = 4
	}
	if c.MaxDetectDelay == 0 {
		c.MaxDetectDelay = int64(c.DriftUses)
	}
	return c
}

// SessionID names session i of a run. The seed is baked in so runs
// with different seeds never collide in a shared store.
func SessionID(seed uint64, i int) string {
	return fmt.Sprintf("sess-%d-%06d", seed, i)
}

// Outcome is one session's result.
type Outcome struct {
	Index   int
	ID      string
	Planted channel.Params
	Drift   bool
	// Events is the number of events fed.
	Events int64
	// Converged reports the clean-phase estimate containing the
	// planted parameters (joint Wilson 95% membership).
	Converged bool
	// CleanDrifts counts change points fired during the clean phase —
	// false alarms, the planted parameters do not move there.
	CleanDrifts int64
	// Detected/Delay report drift-phase change-point detection and its
	// delay in uses from drift onset (drift sessions only).
	Detected bool
	Delay    int64
	// Status is the final session status.
	Status Status
	// Err is a non-empty description when the session failed outright.
	Err string
}

// Report aggregates a run.
type Report struct {
	Seed                    uint64
	Sessions, DriftSessions int
	CleanUses, DriftUses    int
	Inject                  string
	EventsTotal             int64
	// Converged counts sessions whose clean-phase estimate contained
	// the planted parameters.
	Converged int
	// Detected/Missed partition drift sessions by drift-phase
	// change-point detection; MaxDelay/MeanDelay summarize detection
	// delay in uses over detected sessions.
	Detected, Missed int
	MaxDelay         int64
	MeanDelay        float64
	// FalsePositives counts sessions with clean-phase change points.
	FalsePositives int
	// Errors counts failed sessions; Failures lists the first few,
	// sorted by session index.
	Errors   int
	Failures []string
	// MaxDetectDelay echoes the configured bound for Assert.
	MaxDetectDelay int64
}

// Run executes the load. Results are deterministic for a fixed
// (Seed, Sessions, CleanUses, DriftUses, DriftEvery, Inject, Batch, N,
// Detector) tuple regardless of Jobs: every session derives its own
// rng streams from (Seed, index) and outcomes aggregate in index
// order.
func Run(cfg LoadConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	spec, err := faultinject.ParseSpec(cfg.Inject)
	if err != nil {
		return nil, err
	}
	if (cfg.Ingest == nil) != (cfg.Fetch == nil) {
		return nil, fmt.Errorf("session: Ingest and Fetch must be overridden together")
	}
	if cfg.Ingest == nil {
		store := cfg.Store
		if store == nil {
			store, err = NewStore(StoreConfig{
				Session:     Config{N: cfg.N, Detector: cfg.Detector},
				MaxSessions: cfg.Sessions + 1,
			})
			if err != nil {
				return nil, err
			}
			cfg.Store = store
		}
		cfg.Ingest = func(id string, events []Event) (Snapshot, error) {
			_, snap, err := store.IngestEvents(id, events)
			return snap, err
		}
		cfg.Fetch = store.Get
	}
	outcomes := make([]Outcome, cfg.Sessions)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outcomes[i] = runSession(cfg, spec, i)
			}
		}()
	}
	for i := 0; i < cfg.Sessions; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return buildReport(cfg, outcomes), nil
}

// runSession simulates one session end to end.
func runSession(cfg LoadConfig, spec faultinject.Spec, i int) Outcome {
	out := Outcome{Index: i, ID: SessionID(cfg.Seed, i)}
	out.Drift = cfg.DriftEvery > 0 && i%cfg.DriftEvery == 0 && len(spec) > 0
	// The session's master stream: splitmix64 of (Seed, index) seeds a
	// xoshiro stream, split into independent param/symbol/fault
	// sources. Nothing here touches global state, so sessions are
	// order- and concurrency-independent.
	src := rng.NewStream(cfg.Seed, uint64(i))
	out.Planted = plantParams(cfg.N, src)
	chSrc, symSrc, faultSrc := src.Split(), src.Split(), src.Split()
	ch, err := channel.NewDeletionInsertion(out.Planted, chSrc)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	f := &feeder{ch: ch, symSrc: symSrc, n: cfg.N, batch: cfg.Batch}

	// Clean phase: feed, then check convergence to the planted truth.
	snap, err := f.feed(cfg.Ingest, out.ID, cfg.CleanUses, nil)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Events = f.use
	out.Converged = snap.Estimate.Contains(out.Planted.Pd, out.Planted.Pi, out.Planted.Ps)
	out.CleanDrifts = snap.Drifts
	out.Status = snap.Status
	if !out.Drift {
		return out
	}

	// Drift phase: wrap the same channel in the fault stack and watch
	// for the change point. onDetect sees every post-batch snapshot, so
	// the recorded delay is the detector's actual firing use, not a
	// batch boundary.
	stack, err := spec.Build(ch, cfg.N, faultSrc)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	f.ch = stack
	f.injected = stack.Injected
	driftStart := f.use
	final, err := f.feed(cfg.Ingest, out.ID, cfg.DriftUses, func(s Snapshot) {
		if !out.Detected && s.Drifts > out.CleanDrifts {
			out.Detected = true
			out.Delay = s.LastChangeUse - driftStart
		}
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Events = f.use
	out.Status = final.Status
	return out
}

// plantParams draws a session's true channel parameters from ranges
// that keep every rate estimable within a ~10^3-use clean phase while
// spanning the paper's regime of interest.
func plantParams(n int, src *rng.Source) channel.Params {
	in := func(lo, hi float64) float64 { return lo + (hi-lo)*src.Float64() }
	return channel.Params{
		N:  n,
		Pd: in(0.02, 0.12),
		Pi: in(0.02, 0.10),
		Ps: in(0.01, 0.08),
	}
}

// feeder drives one simulated channel and streams its events in
// batches.
type feeder struct {
	ch interface {
		Use(queued uint32) channel.Use
	}
	injected   func() int64
	lastInj    int64
	symSrc     *rng.Source
	n          int
	queued     uint32
	haveQueued bool
	use        int64
	batch      int
	buf        []Event
}

// next generates one event.
func (f *feeder) next() Event {
	if !f.haveQueued {
		f.queued = f.symSrc.Symbol(f.n)
		f.haveQueued = true
	}
	u := f.ch.Use(f.queued)
	f.use++
	ev := Event{Use: f.use, Kind: u.Kind}
	switch u.Kind {
	case channel.EventTransmit, channel.EventSubstitute:
		ev.Sent, ev.Received = f.queued, u.Delivered
	case channel.EventDelete:
		ev.Sent = f.queued
	case channel.EventInsert:
		ev.Received = u.Delivered
	}
	if u.Consumed {
		f.haveQueued = false
	}
	if f.injected != nil {
		if cur := f.injected(); cur != f.lastInj {
			ev.Injected = true
			f.lastInj = cur
		}
	}
	return ev
}

// feed streams uses more events in Batch-sized flushes, invoking
// onFlush (when non-nil) with each post-ingest snapshot, and returns
// the final one.
func (f *feeder) feed(ingest func(string, []Event) (Snapshot, error), id string, uses int, onFlush func(Snapshot)) (Snapshot, error) {
	if cap(f.buf) == 0 {
		f.buf = make([]Event, 0, f.batch)
	}
	var snap Snapshot
	for done := 0; done < uses; {
		f.buf = f.buf[:0]
		for len(f.buf) < f.batch && done < uses {
			f.buf = append(f.buf, f.next())
			done++
		}
		var err error
		if snap, err = ingest(id, f.buf); err != nil {
			return Snapshot{}, err
		}
		if onFlush != nil {
			onFlush(snap)
		}
	}
	return snap, nil
}

// buildReport aggregates outcomes in index order.
func buildReport(cfg LoadConfig, outcomes []Outcome) *Report {
	r := &Report{
		Seed:           cfg.Seed,
		Sessions:       cfg.Sessions,
		CleanUses:      cfg.CleanUses,
		DriftUses:      cfg.DriftUses,
		Inject:         cfg.Inject,
		MaxDetectDelay: cfg.MaxDetectDelay,
	}
	var delaySum int64
	for i := range outcomes {
		o := &outcomes[i]
		r.EventsTotal += o.Events
		if o.Err != "" {
			r.Errors++
			if len(r.Failures) < 10 {
				r.Failures = append(r.Failures, fmt.Sprintf("session %d (%s): %s", o.Index, o.ID, o.Err))
			}
			continue
		}
		if o.Converged {
			r.Converged++
		}
		if o.CleanDrifts > 0 {
			r.FalsePositives++
		}
		if o.Drift {
			r.DriftSessions++
			if o.Detected {
				r.Detected++
				delaySum += o.Delay
				if o.Delay > r.MaxDelay {
					r.MaxDelay = o.Delay
				}
			} else {
				r.Missed++
			}
		}
	}
	if r.Detected > 0 {
		r.MeanDelay = float64(delaySum) / float64(r.Detected)
	}
	sort.Strings(r.Failures)
	return r
}

// Format writes the deterministic run report: every line is a pure
// function of the seed and configuration, so diffing two runs is the
// byte-identity gate. Wall-clock figures deliberately do not appear
// here; cmd/sessload prints those separately as "timing:" lines.
func (r *Report) Format(w io.Writer) {
	fmt.Fprintf(w, "sessload seed=%d sessions=%d drift=%d clean_uses=%d drift_uses=%d inject=%q\n",
		r.Seed, r.Sessions, r.DriftSessions, r.CleanUses, r.DriftUses, r.Inject)
	fmt.Fprintf(w, "events: %d\n", r.EventsTotal)
	fmt.Fprintf(w, "converged: %d/%d (%.4f)\n", r.Converged, r.Sessions, ratio(r.Converged, r.Sessions))
	fmt.Fprintf(w, "detected: %d/%d missed: %d max_delay: %d mean_delay: %.1f\n",
		r.Detected, r.DriftSessions, r.Missed, r.MaxDelay, r.MeanDelay)
	fmt.Fprintf(w, "false_positives: %d/%d (%.4f)\n", r.FalsePositives, r.Sessions, ratio(r.FalsePositives, r.Sessions))
	fmt.Fprintf(w, "errors: %d\n", r.Errors)
	for _, f := range r.Failures {
		fmt.Fprintf(w, "  fail: %s\n", f)
	}
}

// ratio divides counts, mapping 0/0 to 0.
func ratio(k, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(k) / float64(n)
}

// Assert applies the smoke-gate acceptance bounds: no failed sessions,
// ≥80% joint-CI convergence (three simultaneous 95% intervals give
// ~86% expected joint coverage), injected drift detected within
// MaxDetectDelay uses of onset, and clean-phase false alarms under 2%.
// Misses get a 0.1% budget, symmetric with the false-alarm budget: the
// drift layer is a reflected random walk, and across 10^4+ sessions a
// handful of walks wander back to baseline before the detector can
// tell them from noise. At smoke scale (tens of drift sessions) the
// budget truncates to zero, so small runs still demand every drift be
// caught.
func (r *Report) Assert() error {
	if r.Errors > 0 {
		return fmt.Errorf("sessload: %d sessions failed (first: %s)", r.Errors, r.Failures[0])
	}
	if got := ratio(r.Converged, r.Sessions); got < 0.80 {
		return fmt.Errorf("sessload: converged fraction %.4f < 0.80", got)
	}
	if budget := r.DriftSessions / 1000; r.Missed > budget {
		return fmt.Errorf("sessload: %d/%d drift sessions undetected (budget %d)",
			r.Missed, r.DriftSessions, budget)
	}
	if r.DriftSessions > 0 && r.MaxDelay > r.MaxDetectDelay {
		return fmt.Errorf("sessload: max detection delay %d uses exceeds bound %d", r.MaxDelay, r.MaxDetectDelay)
	}
	if got := ratio(r.FalsePositives, r.Sessions); got > 0.02 {
		return fmt.Errorf("sessload: false-positive fraction %.4f > 0.02", got)
	}
	return nil
}
