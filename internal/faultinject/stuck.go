package faultinject

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/rng"
)

// StuckConfig describes stuck-at windows: the shared medium keeps
// reporting the last value it delivered (a wedged shared variable or a
// saturated sensor), regardless of what the sender queues.
type StuckConfig struct {
	// Fraction is the long-run fraction of uses spent stuck, in [0, 1).
	Fraction float64
	// MeanLength is the mean stuck window length in uses (>= 1). Zero
	// selects the default of 20 uses.
	MeanLength float64
}

// withDefaults fills unset fields.
func (c StuckConfig) withDefaults() StuckConfig {
	if c.MeanLength == 0 {
		c.MeanLength = 20
	}
	return c
}

// Stuck is the stuck-at fault layer. The underlying event process
// (deletions, insertions, consumption) is untouched; only the
// delivered value is frozen, so a transmit whose frozen value differs
// from the queued symbol surfaces as a substitution.
type Stuck struct {
	inner    UseChannel
	gate     *gate
	held     uint32
	haveHeld bool
	injected int64
}

// NewStuck wraps inner with stuck-at windows drawn from src.
func NewStuck(inner UseChannel, cfg StuckConfig, src *rng.Source) (*Stuck, error) {
	if inner == nil {
		return nil, fmt.Errorf("faultinject: nil inner channel")
	}
	cfg = cfg.withDefaults()
	g, err := newGate(cfg.Fraction, cfg.MeanLength, src)
	if err != nil {
		return nil, fmt.Errorf("faultinject: stuck: %w", err)
	}
	return &Stuck{inner: inner, gate: g}, nil
}

// Use passes the use through the wrapped channel; inside a stuck
// window any delivered value is replaced by the held value.
func (s *Stuck) Use(queued uint32) channel.Use {
	stuck := s.gate.step()
	u := s.inner.Use(queued)
	if u.Kind == channel.EventDelete {
		return u
	}
	if !stuck || !s.haveHeld {
		s.held, s.haveHeld = u.Delivered, true
		return u
	}
	if u.Delivered != s.held {
		s.injected++
	}
	u.Delivered = s.held
	// Re-classify transmissions: a frozen value differing from the
	// queued symbol is a substitution, and a substitution frozen back
	// onto the queued symbol is a clean transmit.
	if u.Kind == channel.EventTransmit && s.held != queued {
		u.Kind = channel.EventSubstitute
	} else if u.Kind == channel.EventSubstitute && s.held == queued {
		u.Kind = channel.EventTransmit
	}
	return u
}

// Injected returns the number of delivered values the layer overrode.
func (s *Stuck) Injected() int64 { return s.injected }

// Name identifies the layer.
func (s *Stuck) Name() string { return "stuck" }
