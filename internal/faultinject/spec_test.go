package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(" Outage=0.2 ; jam=0.1, stuck=0.05 ")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{{Kind: "outage", Value: 0.2}, {Kind: "jam", Value: 0.1}, {Kind: "stuck", Value: 0.05}}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("ParseSpec = %+v, want %+v", spec, want)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", " ", ";;,"} {
		spec, err := ParseSpec(s)
		if err != nil || len(spec) != 0 {
			t.Errorf("ParseSpec(%q) = %v, %v; want empty, nil", s, spec, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{"outage", "outage=", "outage=x", "outage=0", "outage=1", "outage=-0.1", "outage=NaN", "flood=0.2"} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): expected error", s)
		}
	}
}

func TestSpecBuildComposesInOrder(t *testing.T) {
	spec, err := ParseSpec("outage=0.2;drift=0.1;jam=0.1;stuck=0.05")
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Build(cleanChannel(t, 1), 4, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, l := range st.Layers() {
		names = append(names, l.Name())
	}
	if got := strings.Join(names, ","); got != "outage,drift,jam,stuck" {
		t.Fatalf("layer order = %s, want outage,drift,jam,stuck", got)
	}
	for i := 0; i < 50000; i++ {
		st.Use(uint32(i % 16))
	}
	if st.Injected() == 0 {
		t.Error("full stack injected nothing in 50000 uses")
	}
}

func TestSpecBuildEmptyIsTransparent(t *testing.T) {
	a := cleanChannel(t, 3)
	b := cleanChannel(t, 3)
	st, err := Spec(nil).Build(b, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if ua, ub := a.Use(uint32(i%16)), st.Use(uint32(i%16)); ua != ub {
			t.Fatalf("use %d: empty stack altered the channel: %+v vs %+v", i, ua, ub)
		}
	}
	if st.Injected() != 0 {
		t.Errorf("empty stack reports %d injected uses", st.Injected())
	}
}

// FuzzParseSpec pins two properties: the parser never panics on
// arbitrary input, and every accepted spec round-trips through its
// String rendering unchanged.
func FuzzParseSpec(f *testing.F) {
	f.Add("outage=0.2;jam=0.1")
	f.Add("drift=0.05, stuck=0.9")
	f.Add("")
	f.Add("outage=1e-3")
	f.Add("flood=0.2")
	f.Add("outage=0.2;;,")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		again, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("rendered spec %q failed to reparse: %v", spec.String(), err)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("round-trip changed spec: %+v -> %q -> %+v", spec, spec.String(), again)
		}
	})
}
