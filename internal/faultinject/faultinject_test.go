package faultinject

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// cleanChannel returns a mild deletion–insertion channel for wrapping.
func cleanChannel(t *testing.T, seed uint64) *channel.DeletionInsertion {
	t.Helper()
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4, Pd: 0.05, Pi: 0.02}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

// eventCounts drives a layer for uses uses and tallies event kinds.
func eventCounts(ch UseChannel, uses int) map[channel.EventKind]int {
	counts := make(map[channel.EventKind]int)
	for i := 0; i < uses; i++ {
		counts[ch.Use(uint32(i%16)).Kind]++
	}
	return counts
}

func TestOutageFractionConverges(t *testing.T) {
	const uses = 400000
	for _, frac := range []float64{0.1, 0.2, 0.4} {
		o, err := NewOutage(cleanChannel(t, 1), OutageConfig{Fraction: frac, MeanLength: 50}, rng.New(2))
		if err != nil {
			t.Fatal(err)
		}
		eventCounts(o, uses)
		got := float64(o.Injected()) / uses
		if math.Abs(got-frac) > 0.03 {
			t.Errorf("outage fraction %v: injected fraction %v, want within 0.03", frac, got)
		}
	}
}

func TestOutageDeletesEverythingInsideWindows(t *testing.T) {
	// Fraction ~1 is disallowed; instead drive a gate that is pinned
	// open via a long window and check uses inside report deletions.
	o, err := NewOutage(cleanChannel(t, 1), OutageConfig{Fraction: 0.5, MeanLength: 100}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	deletes := 0
	for i := 0; i < 10000; i++ {
		before := o.Injected()
		u := o.Use(5)
		if o.Injected() > before {
			if u.Kind != channel.EventDelete || !u.Consumed {
				t.Fatalf("in-outage use produced %v (consumed %v), want consuming deletion", u.Kind, u.Consumed)
			}
			deletes++
		}
	}
	if deletes == 0 {
		t.Fatal("no outage windows opened in 10000 uses at fraction 0.5")
	}
}

func TestDriftStaysWithinBounds(t *testing.T) {
	d, err := NewDrift(cleanChannel(t, 1), DriftConfig{MaxPd: 0.2, MaxPi: 0.1, N: 4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		d.Use(3)
		pd, pi := d.Extra()
		if pd < 0 || pd > 0.2 || pi < 0 || pi > 0.1 {
			t.Fatalf("use %d: drift walked out of bounds: extraPd=%v extraPi=%v", i, pd, pi)
		}
	}
	if d.Injected() == 0 {
		t.Error("drift layer injected nothing in 100000 uses")
	}
}

func TestJamSpikesInsertions(t *testing.T) {
	base := eventCounts(cleanChannel(t, 1), 200000)
	j, err := NewJam(cleanChannel(t, 1), JamConfig{Fraction: 0.3, Pi: 0.8, N: 4}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	jammed := eventCounts(j, 200000)
	baseFrac := float64(base[channel.EventInsert]) / 200000
	jamFrac := float64(jammed[channel.EventInsert]) / 200000
	// Expected extra insertions: fraction * Pi = 0.24 on top of ~0.02.
	if jamFrac < baseFrac+0.15 {
		t.Errorf("jam insertion fraction %v vs base %v: spike too small", jamFrac, baseFrac)
	}
	if got := float64(j.Injected()) / 200000; math.Abs(got-0.3*0.8) > 0.03 {
		t.Errorf("jam injected fraction %v, want ~0.24", got)
	}
}

func TestStuckFreezesDeliveredValue(t *testing.T) {
	// A noiseless pass-through channel makes frozen values visible:
	// any delivered symbol differing from the queued one was overridden.
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStuck(ch, StuckConfig{Fraction: 0.4, MeanLength: 30}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	overridden := 0
	for i := 0; i < 50000; i++ {
		queued := uint32(i % 16)
		before := s.Injected()
		u := s.Use(queued)
		if s.Injected() > before {
			overridden++
			if u.Kind != channel.EventSubstitute {
				t.Fatalf("overridden transmit reported %v, want substitution", u.Kind)
			}
			if u.Delivered == queued {
				t.Fatal("overridden delivery equals queued symbol but was counted as injected")
			}
		} else if u.Delivered != queued {
			t.Fatalf("uncounted override: queued %d delivered %d", queued, u.Delivered)
		}
	}
	if overridden == 0 {
		t.Fatal("stuck layer never froze a value in 50000 uses at fraction 0.4")
	}
}

func TestScheduleSequencesAndCycles(t *testing.T) {
	clean := cleanChannel(t, 1)
	out, err := NewOutage(clean, OutageConfig{Fraction: 0.5, MeanLength: 10}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedule(clean, []Phase{
		{Name: "calm", Uses: 100},
		{Name: "storm", Uses: 50, Layer: out},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Walk two full cycles checking the phase boundaries.
	for cycle := 0; cycle < 2; cycle++ {
		if got := sched.PhaseName(); got != "calm" {
			t.Fatalf("cycle %d: phase %q, want calm", cycle, got)
		}
		for i := 0; i < 100; i++ {
			sched.Use(1)
		}
		if got := sched.PhaseName(); got != "storm" {
			t.Fatalf("cycle %d: phase %q after 100 uses, want storm", cycle, got)
		}
		for i := 0; i < 50; i++ {
			sched.Use(1)
		}
	}
	if sched.Injected() != 100 {
		t.Errorf("schedule served %d uses from the fault layer, want 100", sched.Injected())
	}
}

func TestScheduleEndsCleanWithoutCycle(t *testing.T) {
	clean := cleanChannel(t, 1)
	out, err := NewOutage(clean, OutageConfig{Fraction: 0.5}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewSchedule(clean, []Phase{{Name: "storm", Uses: 10, Layer: out}}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		sched.Use(1)
	}
	if got := sched.PhaseName(); got != "clean" {
		t.Errorf("phase after schedule end = %q, want clean", got)
	}
	if sched.Injected() != 10 {
		t.Errorf("schedule served %d faulted uses, want 10", sched.Injected())
	}
}

// TestLayersAreDeterministic replays a full stack twice from the same
// seeds and requires identical event traces — the property every
// experiment's byte-identical output rests on.
func TestLayersAreDeterministic(t *testing.T) {
	build := func() UseChannel {
		ch := cleanChannel(t, 11)
		spec, err := ParseSpec("outage=0.2;drift=0.1;jam=0.1;stuck=0.05")
		if err != nil {
			t.Fatal(err)
		}
		st, err := spec.Build(ch, 4, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := build(), build()
	for i := 0; i < 100000; i++ {
		ua, ub := a.Use(uint32(i%16)), b.Use(uint32(i%16))
		if ua != ub {
			t.Fatalf("use %d: replay diverged: %+v vs %+v", i, ua, ub)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ch := cleanChannel(t, 1)
	src := rng.New(1)
	cases := []struct {
		name  string
		build func() error
	}{
		{"outage fraction 1", func() error {
			_, err := NewOutage(ch, OutageConfig{Fraction: 1}, src)
			return err
		}},
		{"outage nil inner", func() error {
			_, err := NewOutage(nil, OutageConfig{Fraction: 0.1}, src)
			return err
		}},
		{"drift bounds sum to 1", func() error {
			_, err := NewDrift(ch, DriftConfig{MaxPd: 0.5, MaxPi: 0.5, N: 4}, src)
			return err
		}},
		{"drift zero magnitude", func() error {
			_, err := NewDrift(ch, DriftConfig{N: 4}, src)
			return err
		}},
		{"drift bad width", func() error {
			_, err := NewDrift(ch, DriftConfig{MaxPd: 0.1, N: 0}, src)
			return err
		}},
		{"jam bad pi", func() error {
			_, err := NewJam(ch, JamConfig{Fraction: 0.1, Pi: 1.5, N: 4}, src)
			return err
		}},
		{"stuck nil source", func() error {
			_, err := NewStuck(ch, StuckConfig{Fraction: 0.1}, nil)
			return err
		}},
		{"schedule empty", func() error {
			_, err := NewSchedule(ch, nil, false)
			return err
		}},
		{"schedule zero-length phase", func() error {
			_, err := NewSchedule(ch, []Phase{{Uses: 0}}, false)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.build() == nil {
				t.Fatal("expected a validation error")
			}
		})
	}
}
