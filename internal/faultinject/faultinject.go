// Package faultinject provides composable fault-injection middleware
// over the per-use channel surface of the synchronization protocols.
//
// Every protocol in internal/syncproto runs against a channel whose
// Definition 1 parameters are stationary and known exactly to both
// parties. Real synchronization-error channels are neither: parameters
// drift, the medium goes away for whole windows, bystanders jam it,
// and shared state gets stuck. Each layer in this package wraps any
// per-use channel (channel.DeletionInsertion, channel.Bursty, or
// another layer) and superimposes one hostile regime:
//
//   - Outage: windows during which every use is a deletion (Pd -> 1);
//   - Drift: extra deletion/insertion probabilities that random-walk
//     within validated bounds;
//   - Jam: bursts during which insertions spike (Pi -> JamConfig.Pi);
//   - Stuck: windows during which the delivered value is frozen at the
//     last delivered symbol (a stuck-at fault);
//   - Schedule: a sequencer that switches between layers on a fixed
//     per-use timetable, for composing regimes into scenarios.
//
// All layers draw their randomness from explicit *rng.Source values,
// so a fault pattern is a pure function of its seed: experiments
// replay byte-identically regardless of worker count or schedule.
// Layers are not safe for concurrent use, matching the channels they
// wrap.
package faultinject

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/rng"
)

// UseChannel is the per-use channel surface the middleware wraps and
// implements. It is structurally identical to syncproto.UseChannel, so
// any wrapped channel can be handed straight to a protocol.
type UseChannel interface {
	Use(queued uint32) channel.Use
}

// Layer is a fault-injection middleware: a channel that also reports
// how often it overrode the wrapped channel's behaviour.
type Layer interface {
	UseChannel
	// Injected returns the number of uses this layer overrode (forced
	// a deletion/insertion, froze a value, ...).
	Injected() int64
	// Name identifies the layer kind for diagnostics.
	Name() string
}

// gate is a two-state (in-window / out-of-window) Markov switch shared
// by the windowed fault layers. Window membership of the current use
// is decided before the transition to the next use, so the stationary
// in-window fraction is pEnter/(pEnter+pExit) and the mean window
// length is 1/pExit uses.
type gate struct {
	pEnter, pExit float64
	active        bool
	src           *rng.Source
}

// newGate builds a gate with the given long-run in-window fraction and
// mean window length in uses. fraction must lie in [0, 1) and
// meanLength must be >= 1.
func newGate(fraction, meanLength float64, src *rng.Source) (*gate, error) {
	if math.IsNaN(fraction) || fraction < 0 || fraction >= 1 {
		return nil, fmt.Errorf("faultinject: window fraction %v out of [0,1)", fraction)
	}
	if math.IsNaN(meanLength) || meanLength < 1 {
		return nil, fmt.Errorf("faultinject: mean window length %v, want >= 1", meanLength)
	}
	if src == nil {
		return nil, fmt.Errorf("faultinject: nil randomness source")
	}
	pExit := 1 / meanLength
	pEnter := 0.0
	if fraction > 0 {
		pEnter = fraction * pExit / (1 - fraction)
		if pEnter > 1 {
			pEnter = 1
		}
	}
	return &gate{pEnter: pEnter, pExit: pExit, src: src}, nil
}

// step reports whether the current use falls inside a window, then
// advances the switch.
func (g *gate) step() bool {
	cur := g.active
	if cur {
		if g.src.Bool(g.pExit) {
			g.active = false
		}
	} else if g.src.Bool(g.pEnter) {
		g.active = true
	}
	return cur
}
