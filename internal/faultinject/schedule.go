package faultinject

import (
	"fmt"

	"repro/internal/channel"
)

// Phase is one slot in a regime schedule.
type Phase struct {
	// Name labels the phase in diagnostics.
	Name string
	// Uses is the phase duration in channel uses (> 0).
	Uses int
	// Layer is the channel active during the phase — typically a fault
	// layer wrapping the schedule's clean channel. A nil Layer selects
	// the clean channel itself.
	Layer UseChannel
}

// Schedule sequences fault regimes on a fixed per-use timetable: phase
// 0 for its configured number of uses, then phase 1, and so on. With
// Cycle the timetable repeats forever; without it the channel stays
// clean after the last phase. Layer state (drift walks, open windows)
// persists across revisits, so a schedule is still a pure function of
// the sources its layers were built from.
type Schedule struct {
	clean    UseChannel
	phases   []Phase
	cycle    bool
	idx      int   // current phase; len(phases) = past the end (no cycle)
	remain   int   // uses left in the current phase
	injected int64 // uses served by a fault layer
}

// NewSchedule builds the sequencer over the clean channel.
func NewSchedule(clean UseChannel, phases []Phase, cycle bool) (*Schedule, error) {
	if clean == nil {
		return nil, fmt.Errorf("faultinject: nil clean channel")
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("faultinject: schedule needs at least one phase")
	}
	for i, p := range phases {
		if p.Uses <= 0 {
			return nil, fmt.Errorf("faultinject: schedule phase %d (%q) duration %d, want > 0", i, p.Name, p.Uses)
		}
	}
	return &Schedule{clean: clean, phases: phases, cycle: cycle, remain: phases[0].Uses}, nil
}

// Use serves the use from the current phase's layer and advances the
// timetable.
func (s *Schedule) Use(queued uint32) channel.Use {
	ch := s.clean
	if s.idx < len(s.phases) {
		if l := s.phases[s.idx].Layer; l != nil {
			ch = l
			s.injected++
		}
	}
	u := ch.Use(queued)
	if s.idx < len(s.phases) {
		if s.remain--; s.remain == 0 {
			s.idx++
			if s.idx == len(s.phases) && s.cycle {
				s.idx = 0
			}
			if s.idx < len(s.phases) {
				s.remain = s.phases[s.idx].Uses
			}
		}
	}
	return u
}

// PhaseName returns the label of the phase the next use falls in
// ("clean" past the end of a non-cycling schedule).
func (s *Schedule) PhaseName() string {
	if s.idx >= len(s.phases) {
		return "clean"
	}
	if n := s.phases[s.idx].Name; n != "" {
		return n
	}
	return fmt.Sprintf("phase%d", s.idx)
}

// Injected returns the number of uses served by a fault layer.
func (s *Schedule) Injected() int64 { return s.injected }

// Name identifies the layer.
func (s *Schedule) Name() string { return "schedule" }
