package faultinject

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/rng"
)

// JamConfig describes jamming bursts: windows during which a bystander
// floods the medium, so insertions spike to the given probability.
type JamConfig struct {
	// Fraction is the long-run fraction of uses spent inside a burst,
	// in [0, 1).
	Fraction float64
	// MeanLength is the mean burst length in uses (>= 1). Zero selects
	// the default of 20 uses.
	MeanLength float64
	// Pi is the insertion probability while a burst is active, in
	// (0, 1]. Zero selects the default of 0.5.
	Pi float64
	// N is the symbol width, needed to draw inserted symbols.
	N int
}

// validate checks the configuration and fills defaults.
func (c JamConfig) validate() (JamConfig, error) {
	if c.MeanLength == 0 {
		c.MeanLength = 20
	}
	if c.Pi == 0 {
		c.Pi = 0.5
	}
	if math.IsNaN(c.Pi) || c.Pi <= 0 || c.Pi > 1 {
		return c, fmt.Errorf("faultinject: jam Pi = %v out of (0,1]", c.Pi)
	}
	if c.N < 1 || c.N > 16 {
		return c, fmt.Errorf("faultinject: jam symbol width %d out of [1,16]", c.N)
	}
	return c, nil
}

// Jam is the insertion-burst fault layer.
type Jam struct {
	inner    UseChannel
	cfg      JamConfig
	gate     *gate
	src      *rng.Source
	injected int64
}

// NewJam wraps inner with jamming bursts drawn from src.
func NewJam(inner UseChannel, cfg JamConfig, src *rng.Source) (*Jam, error) {
	if inner == nil {
		return nil, fmt.Errorf("faultinject: nil inner channel")
	}
	if src == nil {
		return nil, fmt.Errorf("faultinject: nil randomness source")
	}
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	g, err := newGate(cfg.Fraction, cfg.MeanLength, src.Split())
	if err != nil {
		return nil, fmt.Errorf("faultinject: jam: %w", err)
	}
	return &Jam{inner: inner, cfg: cfg, gate: g, src: src}, nil
}

// Use inserts a uniform garbage symbol with probability cfg.Pi during
// a burst and defers to the wrapped channel otherwise. Insertions do
// not consume the queued symbol, matching Definition 1.
func (j *Jam) Use(queued uint32) channel.Use {
	if j.gate.step() && j.src.Bool(j.cfg.Pi) {
		j.injected++
		return channel.Use{Kind: channel.EventInsert, Delivered: j.src.Symbol(j.cfg.N)}
	}
	return j.inner.Use(queued)
}

// Injected returns the number of forced insertions.
func (j *Jam) Injected() int64 { return j.injected }

// Name identifies the layer.
func (j *Jam) Name() string { return "jam" }
