package faultinject

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/rng"
)

// OutageConfig describes total-loss windows: while a window is open
// the channel behaves as if Pd = 1, deleting every queued symbol
// without consulting the wrapped channel.
type OutageConfig struct {
	// Fraction is the long-run fraction of uses spent in outage,
	// in [0, 1).
	Fraction float64
	// MeanLength is the mean outage window length in uses (>= 1).
	// Zero selects the default of 50 uses.
	MeanLength float64
}

// withDefaults fills unset fields.
func (c OutageConfig) withDefaults() OutageConfig {
	if c.MeanLength == 0 {
		c.MeanLength = 50
	}
	return c
}

// Outage is the total-loss fault layer.
type Outage struct {
	inner    UseChannel
	gate     *gate
	injected int64
}

// NewOutage wraps inner with outage windows drawn from src.
func NewOutage(inner UseChannel, cfg OutageConfig, src *rng.Source) (*Outage, error) {
	if inner == nil {
		return nil, fmt.Errorf("faultinject: nil inner channel")
	}
	cfg = cfg.withDefaults()
	g, err := newGate(cfg.Fraction, cfg.MeanLength, src)
	if err != nil {
		return nil, fmt.Errorf("faultinject: outage: %w", err)
	}
	return &Outage{inner: inner, gate: g}, nil
}

// Use deletes the queued symbol during an outage window and defers to
// the wrapped channel otherwise.
func (o *Outage) Use(queued uint32) channel.Use {
	if o.gate.step() {
		o.injected++
		return channel.Use{Kind: channel.EventDelete, Consumed: true}
	}
	return o.inner.Use(queued)
}

// Injected returns the number of forced deletions.
func (o *Outage) Injected() int64 { return o.injected }

// Name identifies the layer.
func (o *Outage) Name() string { return "outage" }
