package faultinject

import (
	"fmt"
	"math"

	"repro/internal/channel"
	"repro/internal/rng"
)

// DriftConfig describes slow parameter drift: extra deletion and
// insertion probabilities that random-walk within [0, MaxPd] and
// [0, MaxPi], reflecting at the bounds. The wrapped channel keeps its
// own parameters; the layer's drifting probabilities are superimposed,
// so the composed channel's effective Pd(t)/Pi(t) wander around the
// nominal values both parties believe in.
type DriftConfig struct {
	// MaxPd and MaxPi bound the extra deletion and insertion
	// probabilities. MaxPd + MaxPi must stay below 1.
	MaxPd, MaxPi float64
	// Step is the per-use random-walk step magnitude (0 < Step <= max
	// bound). Zero selects max/25: the walk crosses its range in a few
	// hundred uses, slow against a protocol run.
	Step float64
	// N is the symbol width, needed to draw inserted symbols.
	N int
}

// validate checks the configuration and fills the Step default.
func (c DriftConfig) validate() (DriftConfig, error) {
	for _, v := range []struct {
		name string
		val  float64
	}{{"MaxPd", c.MaxPd}, {"MaxPi", c.MaxPi}} {
		if math.IsNaN(v.val) || v.val < 0 || v.val >= 1 {
			return c, fmt.Errorf("faultinject: drift %s = %v out of [0,1)", v.name, v.val)
		}
	}
	if c.MaxPd+c.MaxPi >= 1 {
		return c, fmt.Errorf("faultinject: drift MaxPd + MaxPi = %v, want < 1", c.MaxPd+c.MaxPi)
	}
	if c.MaxPd+c.MaxPi == 0 {
		return c, fmt.Errorf("faultinject: drift with MaxPd = MaxPi = 0 injects nothing")
	}
	if c.N < 1 || c.N > 16 {
		return c, fmt.Errorf("faultinject: drift symbol width %d out of [1,16]", c.N)
	}
	bound := math.Max(c.MaxPd, c.MaxPi)
	if c.Step == 0 {
		c.Step = bound / 25
	}
	if math.IsNaN(c.Step) || c.Step <= 0 || c.Step > bound {
		return c, fmt.Errorf("faultinject: drift step %v out of (0,%v]", c.Step, bound)
	}
	return c, nil
}

// Drift is the parameter-drift fault layer.
type Drift struct {
	inner            UseChannel
	cfg              DriftConfig
	extraPd, extraPi float64
	src              *rng.Source
	injected         int64
}

// NewDrift wraps inner with random-walking extra deletion/insertion
// probabilities. Both walks start at half their bound.
func NewDrift(inner UseChannel, cfg DriftConfig, src *rng.Source) (*Drift, error) {
	if inner == nil {
		return nil, fmt.Errorf("faultinject: nil inner channel")
	}
	if src == nil {
		return nil, fmt.Errorf("faultinject: nil randomness source")
	}
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	return &Drift{
		inner:   inner,
		cfg:     cfg,
		extraPd: cfg.MaxPd / 2,
		extraPi: cfg.MaxPi / 2,
		src:     src,
	}, nil
}

// walk advances one random-walk coordinate, reflecting at [0, max].
func (d *Drift) walk(x, max float64) float64 {
	if max == 0 {
		return 0
	}
	if d.src.Bool(0.5) {
		x += d.cfg.Step
	} else {
		x -= d.cfg.Step
	}
	if x < 0 {
		x = -x
	}
	if x > max {
		x = 2*max - x
	}
	return x
}

// Use applies the current extra probabilities, then advances the walk.
func (d *Drift) Use(queued uint32) channel.Use {
	u := d.src.Float64()
	var out channel.Use
	switch {
	case u < d.extraPd:
		d.injected++
		out = channel.Use{Kind: channel.EventDelete, Consumed: true}
	case u < d.extraPd+d.extraPi:
		d.injected++
		out = channel.Use{Kind: channel.EventInsert, Delivered: d.src.Symbol(d.cfg.N)}
	default:
		out = d.inner.Use(queued)
	}
	d.extraPd = d.walk(d.extraPd, d.cfg.MaxPd)
	d.extraPi = d.walk(d.extraPi, d.cfg.MaxPi)
	return out
}

// Injected returns the number of forced deletions and insertions.
func (d *Drift) Injected() int64 { return d.injected }

// Name identifies the layer.
func (d *Drift) Name() string { return "drift" }

// Extra returns the walk's current extra probabilities (for tests).
func (d *Drift) Extra() (extraPd, extraPi float64) { return d.extraPd, d.extraPi }
