package faultinject

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/channel"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Spec is a parsed -inject flag: an ordered list of fault layers, each
// with one magnitude. The compact grammar keeps command lines and
// experiment configs readable; programmatic callers wanting full
// control use the layer constructors directly.
//
// Grammar: comma- or semicolon-separated items of the form kind=value,
// where kind is one of outage, drift, jam, stuck, and value is the
// layer's magnitude:
//
//	outage=F  outage windows covering long-run fraction F of uses
//	drift=M   extra Pd and Pi each random-walking in [0, M]
//	jam=F     jamming bursts covering fraction F of uses (Pi 0.5 inside)
//	stuck=F   stuck-at windows covering fraction F of uses
//
// Layers are applied in listed order, each wrapping the previous, so
// the last item is outermost. Example: "outage=0.2;jam=0.1".
type Spec []SpecItem

// SpecItem is one layer request.
type SpecItem struct {
	// Kind is the layer name: outage, drift, jam or stuck.
	Kind string
	// Value is the layer magnitude (a fraction or probability bound).
	Value float64
}

// specKinds lists the accepted kinds, for error messages.
func specKinds() []string {
	ks := []string{"outage", "drift", "jam", "stuck"}
	sort.Strings(ks)
	return ks
}

// ParseSpec parses the -inject grammar. The empty string parses to an
// empty Spec (no injection).
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, item := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, val, ok := strings.Cut(item, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: spec item %q is not kind=value", item)
		}
		kind = strings.ToLower(strings.TrimSpace(kind))
		switch kind {
		case "outage", "drift", "jam", "stuck":
		default:
			return nil, fmt.Errorf("faultinject: unknown fault kind %q (want %s)", kind, strings.Join(specKinds(), ", "))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: spec item %q: bad value: %v", item, err)
		}
		if math.IsNaN(v) || v <= 0 || v >= 1 {
			return nil, fmt.Errorf("faultinject: spec item %q: magnitude must be in (0,1)", item)
		}
		spec = append(spec, SpecItem{Kind: kind, Value: v})
	}
	return spec, nil
}

// String renders the spec back in the grammar ParseSpec accepts.
func (s Spec) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = fmt.Sprintf("%s=%v", it.Kind, it.Value)
	}
	return strings.Join(parts, ";")
}

// Stack is a built spec: the outermost channel plus the individual
// layers for inspection.
type Stack struct {
	top    UseChannel
	layers []Layer
}

// Use serves one use from the outermost layer.
func (st *Stack) Use(queued uint32) channel.Use { return st.top.Use(queued) }

// Injected sums the override counts of every layer.
func (st *Stack) Injected() int64 {
	var n int64
	for _, l := range st.layers {
		n += l.Injected()
	}
	return n
}

// Layers returns the built layers, innermost first.
func (st *Stack) Layers() []Layer { return st.layers }

// EmitSummary records one "layer" trace event per built layer
// (innermost first) with its name and cumulative override count — the
// fault-injection layer state a trace analysis sees alongside the
// per-use events. A nil tracer no-ops.
func (st *Stack) EmitSummary(tr *obs.Tracer) {
	for _, l := range st.layers {
		tr.Event("layer", obs.S("layer", l.Name()), obs.I("injected", l.Injected()))
	}
}

// Build wraps inner with the spec's layers in order, drawing each
// layer's randomness from an independent split of src. Symbol width n
// is needed by insertion-generating layers. An empty spec returns a
// stack that is a transparent view of inner.
func (s Spec) Build(inner UseChannel, n int, src *rng.Source) (*Stack, error) {
	if inner == nil {
		return nil, fmt.Errorf("faultinject: nil inner channel")
	}
	if src == nil {
		return nil, fmt.Errorf("faultinject: nil randomness source")
	}
	st := &Stack{top: inner}
	for _, it := range s {
		var (
			l   Layer
			err error
		)
		switch it.Kind {
		case "outage":
			l, err = NewOutage(st.top, OutageConfig{Fraction: it.Value}, src.Split())
		case "drift":
			l, err = NewDrift(st.top, DriftConfig{MaxPd: it.Value, MaxPi: it.Value, N: n}, src.Split())
		case "jam":
			l, err = NewJam(st.top, JamConfig{Fraction: it.Value, N: n}, src.Split())
		case "stuck":
			l, err = NewStuck(st.top, StuckConfig{Fraction: it.Value}, src.Split())
		default:
			err = fmt.Errorf("faultinject: unknown fault kind %q", it.Kind)
		}
		if err != nil {
			return nil, err
		}
		st.top = l
		st.layers = append(st.layers, l)
	}
	return st, nil
}
