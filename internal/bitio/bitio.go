// Package bitio provides bit-level sequence utilities used throughout the
// covert channel library: bit vectors, conversion between byte payloads
// and bit streams, and packing/unpacking of N-bit channel symbols.
//
// The deletion–insertion channel of the paper operates on abstract
// symbols of N bits each; encoders and protocols need to move freely
// between application payloads ([]byte), bit sequences ([]byte with one
// bit per element) and symbol sequences ([]uint32 with N significant bits
// per element). All functions here are pure and allocation-explicit.
package bitio

import "fmt"

// BytesToBits expands a byte payload to a bit sequence, most significant
// bit of each byte first. The result has one bit (0 or 1) per element.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs a bit sequence back into bytes, most significant bit
// first. It returns an error if len(bits) is not a multiple of 8 or if
// any element is not 0 or 1.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("bitio: bit length %d is not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, bit := range bits {
		if bit > 1 {
			return nil, fmt.Errorf("bitio: element %d is %d, want 0 or 1", i, bit)
		}
		out[i/8] |= bit << uint(7-i%8)
	}
	return out, nil
}

// PackSymbols groups a bit sequence into n-bit symbols, first bit most
// significant. The bit sequence is zero-padded at the end to a multiple
// of n. It panics unless 1 <= n <= 32.
func PackSymbols(bits []byte, n int) []uint32 {
	checkWidth(n)
	count := (len(bits) + n - 1) / n
	syms := make([]uint32, count)
	for i, bit := range bits {
		syms[i/n] |= uint32(bit&1) << uint(n-1-i%n)
	}
	return syms
}

// UnpackSymbols expands n-bit symbols into a bit sequence, most
// significant bit of each symbol first. It panics unless 1 <= n <= 32.
func UnpackSymbols(syms []uint32, n int) []byte {
	checkWidth(n)
	bits := make([]byte, 0, len(syms)*n)
	for _, s := range syms {
		for i := n - 1; i >= 0; i-- {
			bits = append(bits, byte((s>>uint(i))&1))
		}
	}
	return bits
}

// ValidSymbols reports whether every symbol fits in n bits.
func ValidSymbols(syms []uint32, n int) bool {
	checkWidth(n)
	if n == 32 {
		return true
	}
	limit := uint32(1) << uint(n)
	for _, s := range syms {
		if s >= limit {
			return false
		}
	}
	return true
}

// HammingBits counts positions where two equal-length bit sequences
// differ. It returns an error on length mismatch.
func HammingBits(a, b []byte) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("bitio: length mismatch %d != %d", len(a), len(b))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// HammingSymbols counts positions where two equal-length symbol
// sequences differ. It returns an error on length mismatch.
func HammingSymbols(a, b []uint32) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("bitio: length mismatch %d != %d", len(a), len(b))
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}

// XORBits returns the element-wise XOR of two equal-length bit
// sequences. It returns an error on length mismatch.
func XORBits(a, b []byte) ([]byte, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("bitio: length mismatch %d != %d", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = (a[i] ^ b[i]) & 1
	}
	return out, nil
}

// OnesCount returns the number of one bits in the sequence.
func OnesCount(bits []byte) int {
	n := 0
	for _, b := range bits {
		if b&1 == 1 {
			n++
		}
	}
	return n
}

// checkWidth validates a symbol bit width.
func checkWidth(n int) {
	if n < 1 || n > 32 {
		panic(fmt.Sprintf("bitio: symbol width %d out of range [1,32]", n))
	}
}

// Writer accumulates bits into a growing buffer.
// The zero value is ready to use.
type Writer struct {
	bits []byte
}

// WriteBit appends a single bit (only the low bit of b is used).
func (w *Writer) WriteBit(b byte) {
	w.bits = append(w.bits, b&1)
}

// WriteBits appends a bit sequence.
func (w *Writer) WriteBits(bits []byte) {
	for _, b := range bits {
		w.bits = append(w.bits, b&1)
	}
}

// WriteUint appends the low n bits of v, most significant first.
func (w *Writer) WriteUint(v uint32, n int) {
	checkWidth(n)
	for i := n - 1; i >= 0; i-- {
		w.bits = append(w.bits, byte((v>>uint(i))&1))
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return len(w.bits) }

// Bits returns a copy of the accumulated bit sequence.
func (w *Writer) Bits() []byte {
	out := make([]byte, len(w.bits))
	copy(out, w.bits)
	return out
}

// Reader consumes bits from a fixed sequence.
type Reader struct {
	bits []byte
	pos  int
}

// NewReader returns a Reader over the given bit sequence. The Reader
// does not copy the slice; callers must not mutate it while reading.
func NewReader(bits []byte) *Reader {
	return &Reader{bits: bits}
}

// ReadBit returns the next bit, or an error at end of input.
func (r *Reader) ReadBit() (byte, error) {
	if r.pos >= len(r.bits) {
		return 0, fmt.Errorf("bitio: read past end at bit %d", r.pos)
	}
	b := r.bits[r.pos] & 1
	r.pos++
	return b, nil
}

// ReadUint reads n bits as an unsigned value, most significant first.
func (r *Reader) ReadUint(n int) (uint32, error) {
	checkWidth(n)
	var v uint32
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint32(b)
	}
	return v, nil
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.bits) - r.pos }
