package bitio

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBytesToBitsKnown(t *testing.T) {
	got := BytesToBits([]byte{0xA5})
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("BytesToBits(0xA5) = %v, want %v", got, want)
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		bits := BytesToBits(data)
		back, err := BitsToBytes(bits)
		return err == nil && bytes.Equal(back, data)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBitsToBytesErrors(t *testing.T) {
	if _, err := BitsToBytes([]byte{1, 0, 1}); err == nil {
		t.Error("expected error for length not multiple of 8")
	}
	if _, err := BitsToBytes([]byte{1, 0, 1, 2, 0, 0, 0, 0}); err == nil {
		t.Error("expected error for non-binary element")
	}
}

func TestPackUnpackSymbolsKnown(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 1}
	syms := PackSymbols(bits, 3)
	want := []uint32{0b101, 0b101}
	if !reflect.DeepEqual(syms, want) {
		t.Fatalf("PackSymbols = %v, want %v", syms, want)
	}
	back := UnpackSymbols(syms, 3)
	if !bytes.Equal(back, bits) {
		t.Fatalf("UnpackSymbols = %v, want %v", back, bits)
	}
}

func TestPackSymbolsPadding(t *testing.T) {
	bits := []byte{1, 1}
	syms := PackSymbols(bits, 4)
	if len(syms) != 1 || syms[0] != 0b1100 {
		t.Fatalf("PackSymbols with padding = %v, want [0b1100]", syms)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	for n := 1; n <= 16; n++ {
		err := quick.Check(func(raw []byte) bool {
			bits := make([]byte, len(raw))
			for i, b := range raw {
				bits[i] = b & 1
			}
			// Pad to a multiple of n so the round trip is exact.
			for len(bits)%n != 0 {
				bits = append(bits, 0)
			}
			syms := PackSymbols(bits, n)
			if !ValidSymbols(syms, n) {
				return false
			}
			return bytes.Equal(UnpackSymbols(syms, n), bits)
		}, &quick.Config{MaxCount: 50})
		if err != nil {
			t.Fatalf("width %d: %v", n, err)
		}
	}
}

func TestValidSymbols(t *testing.T) {
	if !ValidSymbols([]uint32{0, 1, 2, 3}, 2) {
		t.Error("0..3 should be valid 2-bit symbols")
	}
	if ValidSymbols([]uint32{4}, 2) {
		t.Error("4 should be invalid as a 2-bit symbol")
	}
	if !ValidSymbols([]uint32{^uint32(0)}, 32) {
		t.Error("max uint32 should be valid as a 32-bit symbol")
	}
}

func TestWidthPanics(t *testing.T) {
	for _, n := range []int{0, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PackSymbols width %d did not panic", n)
				}
			}()
			PackSymbols([]byte{1}, n)
		}()
	}
}

func TestHammingBits(t *testing.T) {
	d, err := HammingBits([]byte{1, 0, 1, 1}, []byte{1, 1, 1, 0})
	if err != nil || d != 2 {
		t.Fatalf("HammingBits = %d, %v; want 2, nil", d, err)
	}
	if _, err := HammingBits([]byte{1}, []byte{1, 0}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestHammingSymbols(t *testing.T) {
	d, err := HammingSymbols([]uint32{1, 2, 3}, []uint32{1, 9, 3})
	if err != nil || d != 1 {
		t.Fatalf("HammingSymbols = %d, %v; want 1, nil", d, err)
	}
	if _, err := HammingSymbols([]uint32{1}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestXORBits(t *testing.T) {
	got, err := XORBits([]byte{1, 0, 1, 0}, []byte{1, 1, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 1, 0}) {
		t.Fatalf("XORBits = %v", got)
	}
	if _, err := XORBits([]byte{1}, []byte{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestXORSelfInverse(t *testing.T) {
	err := quick.Check(func(raw []byte) bool {
		a := make([]byte, len(raw))
		b := make([]byte, len(raw))
		for i, v := range raw {
			a[i] = v & 1
			b[i] = (v >> 1) & 1
		}
		x, err := XORBits(a, b)
		if err != nil {
			return false
		}
		back, err := XORBits(x, b)
		return err == nil && bytes.Equal(back, a)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnesCount(t *testing.T) {
	if got := OnesCount([]byte{1, 0, 1, 1, 0}); got != 3 {
		t.Fatalf("OnesCount = %d, want 3", got)
	}
	if got := OnesCount(nil); got != 0 {
		t.Fatalf("OnesCount(nil) = %d, want 0", got)
	}
}

func TestWriterReader(t *testing.T) {
	var w Writer
	w.WriteBit(1)
	w.WriteBits([]byte{0, 1})
	w.WriteUint(0b1011, 4)
	if w.Len() != 7 {
		t.Fatalf("Writer.Len = %d, want 7", w.Len())
	}
	bits := w.Bits()
	want := []byte{1, 0, 1, 1, 0, 1, 1}
	if !bytes.Equal(bits, want) {
		t.Fatalf("Writer.Bits = %v, want %v", bits, want)
	}

	r := NewReader(bits)
	b, err := r.ReadBit()
	if err != nil || b != 1 {
		t.Fatalf("ReadBit = %d, %v", b, err)
	}
	v, err := r.ReadUint(4)
	if err != nil || v != 0b0110 {
		t.Fatalf("ReadUint = %04b, %v; want 0110, nil", v, err)
	}
	if r.Remaining() != 2 {
		t.Fatalf("Remaining = %d, want 2", r.Remaining())
	}
	if _, err := r.ReadUint(3); err == nil {
		t.Fatal("expected error reading past end")
	}
}

func TestWriterBitsIsCopy(t *testing.T) {
	var w Writer
	w.WriteBits([]byte{1, 1})
	got := w.Bits()
	got[0] = 0
	if w.Bits()[0] != 1 {
		t.Fatal("Writer.Bits exposed internal state")
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	err := quick.Check(func(vals []uint16, widthSeed uint8) bool {
		width := int(widthSeed%16) + 1
		var w Writer
		for _, v := range vals {
			w.WriteUint(uint32(v)&((1<<uint(width))-1), width)
		}
		r := NewReader(w.Bits())
		for _, v := range vals {
			got, err := r.ReadUint(width)
			if err != nil || got != uint32(v)&((1<<uint(width))-1) {
				return false
			}
		}
		return r.Remaining() == 0
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}
