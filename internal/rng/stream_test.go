package rng

import "testing"

func TestStreamDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63} {
		for i := uint64(0); i < 20; i++ {
			if Stream(seed, i) != Stream(seed, i) {
				t.Fatalf("Stream(%d, %d) not deterministic", seed, i)
			}
		}
	}
}

func TestStreamDistinctAcrossIndexAndSeed(t *testing.T) {
	seen := map[uint64][2]uint64{}
	for _, seed := range []uint64{0, 1, 2, 42, 1 << 32} {
		for i := uint64(0); i < 64; i++ {
			s := Stream(seed, i)
			if s == 0 {
				t.Fatalf("Stream(%d, %d) = 0, must be nonzero", seed, i)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("Stream collision: (%d,%d) and (%d,%d) both map to %d",
					prev[0], prev[1], seed, i, s)
			}
			seen[s] = [2]uint64{seed, i}
		}
	}
}

func TestStreamSubSourcesDecorrelated(t *testing.T) {
	// Adjacent streams of the same master seed must not produce
	// correlated output; a crude but effective check is that the
	// leading values differ and bitwise agreement stays near 50%.
	a := NewStream(1, 0)
	b := NewStream(1, 1)
	agree, total := 0, 0
	for k := 0; k < 1000; k++ {
		x, y := a.Uint64(), b.Uint64()
		if k == 0 && x == y {
			t.Fatal("adjacent streams emit identical first value")
		}
		for bit := 0; bit < 64; bit++ {
			if x>>uint(bit)&1 == y>>uint(bit)&1 {
				agree++
			}
			total++
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("bitwise agreement between adjacent streams = %.4f, want ~0.5", frac)
	}
}

func TestNewStreamMatchesStream(t *testing.T) {
	got := NewStream(7, 3).Uint64()
	want := New(Stream(7, 3)).Uint64()
	if got != want {
		t.Fatalf("NewStream(7,3) first value %d != New(Stream(7,3)) %d", got, want)
	}
}
