// Package rng provides a small, deterministic, seedable pseudo-random
// number generator used by every simulation in this repository.
//
// All randomness in the library flows through explicit *rng.Source values
// created from caller-supplied seeds, so simulations, tests and benchmarks
// are reproducible bit-for-bit across runs and Go versions. The generator
// is xoshiro256** seeded through splitmix64, which has excellent
// statistical quality for simulation workloads and is far faster than
// cryptographic generators (covert channel simulation is not adversarial
// randomness; determinism and speed are what matter here).
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random number generator.
// It is not safe for concurrent use; create one Source per goroutine.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	// splitmix64 expansion of the seed into the 256-bit state, as
	// recommended by the xoshiro authors. Guarantees a nonzero state.
	x := seed
	for i := range src.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	return &src
}

// Uint64 returns the next value in the stream.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Bool returns true with probability p. Values of p outside [0, 1] are
// clamped to that range.
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bit returns a uniform bit (0 or 1).
func (r *Source) Bit() byte {
	return byte(r.Uint64() >> 63)
}

// Symbol returns a uniform n-bit symbol in [0, 2^n). It panics unless
// 1 <= n <= 32.
func (r *Source) Symbol(n int) uint32 {
	if n < 1 || n > 32 {
		panic("rng: Symbol bit width out of range [1,32]")
	}
	return uint32(r.Uint64() >> (64 - uint(n)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Split returns a new Source whose stream is independent of r's future
// output. It consumes one value from r.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// mix64 is the splitmix64 output function: a full-avalanche 64-bit
// mixer, the same finalizer New uses to expand seeds into state.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream derives the i-th sub-seed of seed: element i of the splitmix64
// sequence keyed by seed. Distinct (seed, i) pairs yield decorrelated
// sub-seeds, so independent components (e.g. experiments run by a
// parallel harness) can each draw from their own stream while remaining
// a pure function of the master seed — results do not depend on
// scheduling or execution order. The result is never 0, so callers that
// treat a zero seed as "unset" cannot be confused by a derived seed.
func Stream(seed, i uint64) uint64 {
	const golden = 0x9e3779b97f4a7c15
	base := mix64(seed + golden)
	s := mix64(base + (i+1)*golden)
	if s == 0 {
		s = golden
	}
	return s
}

// NewStream returns New(Stream(seed, i)): a Source positioned on the
// i-th independent sub-stream of the master seed.
func NewStream(seed, i uint64) *Source {
	return New(Stream(seed, i))
}

// ExpFloat64 returns an exponentially distributed value with rate 1,
// via inversion. Multiply by the desired mean to rescale.
func (r *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], avoiding log(0).
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal value via the Box–Muller
// transform (one value per call; the second is discarded for
// simplicity — throughput is not a concern at simulation scales).
func (r *Source) NormFloat64() float64 {
	u := 1 - r.Float64() // in (0, 1]
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
