package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 100", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	var all uint64
	for i := 0; i < 64; i++ {
		all |= r.Uint64()
	}
	if all == 0 {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(5)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d deviates from expected %.0f", v, c, want)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 0},
		{p: 1, want: 1},
		{p: -0.5, want: 0},
		{p: 1.5, want: 1},
		{p: 0.25, want: 0.25},
		{p: 0.9, want: 0.9},
	}
	for _, tt := range tests {
		r := New(99)
		const trials = 100000
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bool(tt.p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-tt.want) > 0.01 {
			t.Errorf("Bool(%v) frequency = %v, want ~%v", tt.p, got, tt.want)
		}
	}
}

func TestBitBalance(t *testing.T) {
	r := New(13)
	const trials = 100000
	ones := 0
	for i := 0; i < trials; i++ {
		b := r.Bit()
		if b > 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += int(b)
	}
	if math.Abs(float64(ones)/trials-0.5) > 0.01 {
		t.Fatalf("Bit frequency of ones = %v, want ~0.5", float64(ones)/trials)
	}
}

func TestSymbolRange(t *testing.T) {
	r := New(17)
	for n := 1; n <= 32; n++ {
		for i := 0; i < 1000; i++ {
			s := r.Symbol(n)
			if n < 32 && s >= uint32(1)<<uint(n) {
				t.Fatalf("Symbol(%d) = %d out of range", n, s)
			}
		}
	}
}

func TestSymbolPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, 33, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Symbol(%d) did not panic", n)
				}
			}()
			New(1).Symbol(n)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(31)
	child := r.Split()
	// The child stream must not be a shifted copy of the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams share %d of 100 values", same)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 returned negative value %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(43)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestNormFloat64TailMass(t *testing.T) {
	r := New(47)
	const n = 100000
	beyond2 := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.NormFloat64()) > 2 {
			beyond2++
		}
	}
	// P(|Z| > 2) ~ 4.55%.
	frac := float64(beyond2) / n
	if frac < 0.035 || frac > 0.057 {
		t.Fatalf("two-sigma tail mass = %v, want ~0.0455", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}
