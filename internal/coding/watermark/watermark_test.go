package watermark

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func defaultParams() Params {
	return Params{
		ChunkBits: 4,
		SparseLen: 8,
		Pd:        0.01,
		Pi:        0.01,
		MaxDrift:  16,
		Seed:      7,
	}
}

func mustCode(t *testing.T, p Params) *Code {
	t.Helper()
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomSymbols(seed uint64, count, width int) []uint32 {
	src := rng.New(seed)
	out := make([]uint32, count)
	for i := range out {
		out[i] = src.Symbol(width)
	}
	return out
}

func TestParamsValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"chunk low", func(p *Params) { p.ChunkBits = 0 }},
		{"chunk high", func(p *Params) { p.ChunkBits = 9 }},
		{"sparse too short", func(p *Params) { p.SparseLen = 4 }},
		{"sparse too long", func(p *Params) { p.SparseLen = 65 }},
		{"pd", func(p *Params) { p.Pd = 0.6 }},
		{"pi", func(p *Params) { p.Pi = -0.1 }},
		{"ps", func(p *Params) { p.Ps = 0.7 }},
		{"drift low", func(p *Params) { p.MaxDrift = 0 }},
		{"drift high", func(p *Params) { p.MaxDrift = 2000 }},
		{"insrun", func(p *Params) { p.MaxInsertRun = 9 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := defaultParams()
			tt.mutate(&p)
			if _, err := New(p); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestCodebookIsSparse(t *testing.T) {
	c := mustCode(t, defaultParams())
	if c.SymbolAlphabet() != 16 {
		t.Fatalf("alphabet = %d", c.SymbolAlphabet())
	}
	// The 16 lightest 8-bit words: 1 of weight 0, 8 of weight 1, and 7
	// of weight 2 -> max weight 2, density (0+8+14)/(16*8).
	for v := 0; v < 16; v++ {
		if w := c.codebookWeight(v); w > 2 {
			t.Fatalf("codeword %d has weight %d, want <= 2", v, w)
		}
	}
	want := 22.0 / 128.0
	if d := c.Density(); d != want {
		t.Fatalf("density = %v, want %v", d, want)
	}
	if r := c.Rate(); r != 0.5 {
		t.Fatalf("rate = %v, want 0.5", r)
	}
}

func TestCodebookDistinct(t *testing.T) {
	c := mustCode(t, defaultParams())
	seen := make(map[string]bool)
	for v := 0; v < c.SymbolAlphabet(); v++ {
		key := string(c.book[v])
		if seen[key] {
			t.Fatalf("duplicate codeword for symbol %d", v)
		}
		seen[key] = true
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCode(t, defaultParams())
	if _, err := c.Encode([]uint32{16}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestEncodeLengthAndDeterminism(t *testing.T) {
	c := mustCode(t, defaultParams())
	syms := randomSymbols(1, 50, 4)
	a, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50*8 {
		t.Fatalf("encoded length %d, want 400", len(a))
	}
	b, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding is not deterministic")
		}
	}
}

func TestDecodeCleanChannel(t *testing.T) {
	c := mustCode(t, defaultParams())
	syms := randomSymbols(2, 100, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(tx, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range dec.Symbols {
		if v != syms[i] {
			t.Fatalf("symbol %d decoded as %d, want %d", i, v, syms[i])
		}
		if dec.Confidence[i] < 0.5 {
			t.Fatalf("clean-channel confidence %v too low at %d", dec.Confidence[i], i)
		}
	}
}

func TestDecodeSingleDeletion(t *testing.T) {
	c := mustCode(t, defaultParams())
	syms := randomSymbols(3, 60, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	recv := append(append([]byte(nil), tx[:100]...), tx[101:]...)
	dec, err := c.Decode(recv, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, v := range dec.Symbols {
		if v != syms[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("%d symbol errors after a single deletion", errs)
	}
}

func TestDecodeSingleInsertion(t *testing.T) {
	c := mustCode(t, defaultParams())
	syms := randomSymbols(4, 60, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]byte(nil), tx[:200]...)
	recv = append(recv, 1)
	recv = append(recv, tx[200:]...)
	dec, err := c.Decode(recv, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, v := range dec.Symbols {
		if v != syms[i] {
			errs++
		}
	}
	if errs > 2 {
		t.Fatalf("%d symbol errors after a single insertion", errs)
	}
}

func TestDecodeOverDIChannelLowSER(t *testing.T) {
	// The headline capability: reliable-ish symbol recovery over the
	// Definition 1 channel with no synchronization at all. At
	// Pd = Pi = 1% the residual symbol error rate should be well under
	// 10%, leaving easy work for the RS outer code.
	p := defaultParams()
	c := mustCode(t, p)
	syms := randomSymbols(5, 300, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(p.Pd, p.Pi, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(tx)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(recv, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, v := range dec.Symbols {
		if v != syms[i] {
			errs++
		}
	}
	if ser := float64(errs) / float64(len(syms)); ser > 0.10 {
		t.Fatalf("symbol error rate %v too high", ser)
	}
}

func TestConfidenceFlagsErrors(t *testing.T) {
	// Decisions at erroneous chunks should on average carry lower
	// confidence than correct ones.
	p := defaultParams()
	p.Pd, p.Pi = 0.02, 0.02
	c := mustCode(t, p)
	syms := randomSymbols(7, 400, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(p.Pd, p.Pi, 0, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(tx)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(recv, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	var confErr, confOK float64
	nErr, nOK := 0, 0
	for i, v := range dec.Symbols {
		if v != syms[i] {
			confErr += dec.Confidence[i]
			nErr++
		} else {
			confOK += dec.Confidence[i]
			nOK++
		}
	}
	if nErr == 0 {
		t.Skip("no symbol errors at this seed; nothing to compare")
	}
	if confErr/float64(nErr) >= confOK/float64(nOK) {
		t.Fatalf("error confidence %v not below correct confidence %v",
			confErr/float64(nErr), confOK/float64(nOK))
	}
}

func TestDecodeValidation(t *testing.T) {
	c := mustCode(t, defaultParams())
	if _, err := c.Decode([]byte{0, 1}, 0); err == nil {
		t.Error("expected symbol count error")
	}
	if _, err := c.Decode([]byte{0, 2}, 1); err == nil {
		t.Error("expected bit error")
	}
	// Drift beyond the window.
	if _, err := c.Decode(make([]byte, 100), 1); err == nil {
		t.Error("expected drift bound error")
	}
}

func TestWrongSeedScramblesDecoding(t *testing.T) {
	// The watermark is a shared secret: a receiver with the wrong seed
	// should decode garbage (here: not match the clean-channel result).
	p := defaultParams()
	cTx := mustCode(t, p)
	p.Seed = 999
	cRx := mustCode(t, p)
	syms := randomSymbols(9, 100, 4)
	tx, err := cTx.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cRx.Decode(tx, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i, v := range dec.Symbols {
		if v != syms[i] {
			errs++
		}
	}
	if errs < len(syms)/2 {
		t.Fatalf("wrong-seed decode recovered %d/%d symbols; watermark not load-bearing", len(syms)-errs, len(syms))
	}
}
