package watermark

import (
	"fmt"

	"repro/internal/coding/gf"
	"repro/internal/coding/rs"
)

// Pipeline is the full Davey–MacKay construction: this watermark inner
// code concatenated with a Reed–Solomon outer code over GF(2^ChunkBits).
// The inner decoder's per-chunk posterior confidence marks unreliable
// chunks as erasures for the outer errors-and-erasures decoder, which
// roughly doubles the outer code's correction budget on flagged
// positions.
type Pipeline struct {
	inner *Code
	outer *rs.Code
	// erasureBelow flags chunks whose posterior confidence falls below
	// this threshold as outer-code erasures.
	erasureBelow float64
}

// NewPipeline builds the concatenated system. outerN and outerK are the
// RS block parameters over GF(2^ChunkBits); erasureBelow in [0, 1) sets
// the confidence threshold for erasure flagging (0 disables flagging).
func NewPipeline(p Params, outerN, outerK int, erasureBelow float64) (*Pipeline, error) {
	inner, err := New(p)
	if err != nil {
		return nil, err
	}
	if p.ChunkBits < 2 {
		return nil, fmt.Errorf("watermark: pipeline needs ChunkBits >= 2 for a GF(2^m) outer code")
	}
	field, err := gf.Default(p.ChunkBits)
	if err != nil {
		return nil, err
	}
	outer, err := rs.New(field, outerN, outerK)
	if err != nil {
		return nil, err
	}
	if erasureBelow < 0 || erasureBelow >= 1 {
		return nil, fmt.Errorf("watermark: erasure threshold %v out of [0,1)", erasureBelow)
	}
	return &Pipeline{inner: inner, outer: outer, erasureBelow: erasureBelow}, nil
}

// BlockPayload returns the payload symbols per outer block.
func (p *Pipeline) BlockPayload() int { return p.outer.K() }

// Rate returns the end-to-end code rate in information bits per
// transmitted channel bit.
func (p *Pipeline) Rate() float64 {
	return p.inner.Rate() * float64(p.outer.K()) / float64(p.outer.N())
}

// Encode maps payload symbols (a multiple of BlockPayload, each within
// the chunk alphabet) to the transmitted bit stream.
func (p *Pipeline) Encode(payload []uint32) ([]byte, error) {
	k := p.outer.K()
	if len(payload) == 0 || len(payload)%k != 0 {
		return nil, fmt.Errorf("watermark: payload length %d not a positive multiple of %d", len(payload), k)
	}
	blocks := len(payload) / k
	stream := make([]uint32, 0, blocks*p.outer.N())
	for b := 0; b < blocks; b++ {
		cw, err := p.outer.Encode(payload[b*k : (b+1)*k])
		if err != nil {
			return nil, err
		}
		stream = append(stream, cw...)
	}
	return p.inner.Encode(stream)
}

// PipelineResult reports a decode.
type PipelineResult struct {
	// Payload holds the recovered symbols.
	Payload []uint32
	// InnerErasures counts chunks flagged as erasures.
	InnerErasures int
	// FailedBlocks counts outer blocks that were uncorrectable (their
	// systematic symbols are passed through as-is).
	FailedBlocks int
}

// Decode recovers the payload for the given number of payload symbols.
func (p *Pipeline) Decode(recv []byte, payloadSymbols int) (PipelineResult, error) {
	k := p.outer.K()
	if payloadSymbols == 0 || payloadSymbols%k != 0 {
		return PipelineResult{}, fmt.Errorf("watermark: payload length %d not a positive multiple of %d", payloadSymbols, k)
	}
	blocks := payloadSymbols / k
	streamLen := blocks * p.outer.N()
	dec, err := p.inner.Decode(recv, streamLen)
	if err != nil {
		return PipelineResult{}, err
	}
	var res PipelineResult
	res.Payload = make([]uint32, 0, payloadSymbols)
	n := p.outer.N()
	for b := 0; b < blocks; b++ {
		block := append([]uint32(nil), dec.Symbols[b*n:(b+1)*n]...)
		// Errors-only decoding first: when it succeeds it is already a
		// verified codeword, and spending redundancy on erasure flags
		// that may point at correct symbols can only lose ground.
		msg, err := p.outer.Decode(block)
		if err != nil && p.erasureBelow > 0 {
			// Beyond the errors-only radius: spend the flags.
			var erasures []int
			for i := 0; i < n; i++ {
				if dec.Confidence[b*n+i] < p.erasureBelow {
					erasures = append(erasures, i)
				}
			}
			// The outer decoder rejects more erasures than redundancy;
			// keep only the least confident ones.
			if len(erasures) > n-k {
				erasures = lowestConfidence(dec.Confidence[b*n:(b+1)*n], erasures, n-k)
			}
			res.InnerErasures += len(erasures)
			msg, err = p.outer.DecodeErasures(block, erasures)
		}
		if err != nil {
			res.FailedBlocks++
			msg = block[:k]
		}
		res.Payload = append(res.Payload, msg...)
	}
	return res, nil
}

// lowestConfidence keeps the `keep` positions with the smallest
// confidence values.
func lowestConfidence(conf []float64, candidates []int, keep int) []int {
	if keep <= 0 {
		return nil
	}
	sorted := append([]int(nil), candidates...)
	// Simple selection sort: candidate lists are tiny (<= block size).
	for i := 0; i < len(sorted) && i < keep; i++ {
		min := i
		for j := i + 1; j < len(sorted); j++ {
			if conf[sorted[j]] < conf[sorted[min]] {
				min = j
			}
		}
		sorted[i], sorted[min] = sorted[min], sorted[i]
	}
	if len(sorted) > keep {
		sorted = sorted[:keep]
	}
	return sorted
}
