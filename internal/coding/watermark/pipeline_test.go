package watermark

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func pipelineParams() Params {
	return Params{
		ChunkBits: 4,
		SparseLen: 8,
		Pd:        0.01,
		Pi:        0.01,
		MaxDrift:  24,
		Seed:      7,
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(Params{}, 15, 11, 0.2); err == nil {
		t.Error("expected inner params error")
	}
	p := pipelineParams()
	p.ChunkBits = 1
	p.SparseLen = 4
	if _, err := NewPipeline(p, 15, 11, 0.2); err == nil {
		t.Error("expected chunk width error for outer field")
	}
	if _, err := NewPipeline(pipelineParams(), 16, 11, 0.2); err == nil {
		t.Error("expected RS block length error")
	}
	if _, err := NewPipeline(pipelineParams(), 15, 11, 1.5); err == nil {
		t.Error("expected threshold error")
	}
}

func TestPipelineAccessors(t *testing.T) {
	p, err := NewPipeline(pipelineParams(), 15, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockPayload() != 11 {
		t.Fatalf("BlockPayload = %d", p.BlockPayload())
	}
	want := 0.5 * 11.0 / 15.0
	if got := p.Rate(); got != want {
		t.Fatalf("Rate = %v, want %v", got, want)
	}
}

func TestPipelineEncodeValidation(t *testing.T) {
	p, err := NewPipeline(pipelineParams(), 15, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Encode(make([]uint32, 5)); err == nil {
		t.Error("expected payload multiple error")
	}
	if _, err := p.Encode(nil); err == nil {
		t.Error("expected empty payload error")
	}
	bad := make([]uint32, 11)
	bad[0] = 16
	if _, err := p.Encode(bad); err == nil {
		t.Error("expected alphabet error")
	}
}

func randomPayload(seed uint64, blocks, k int) []uint32 {
	src := rng.New(seed)
	out := make([]uint32, blocks*k)
	for i := range out {
		out[i] = uint32(src.Intn(16))
	}
	return out
}

func TestPipelineCleanRoundTrip(t *testing.T) {
	p, err := NewPipeline(pipelineParams(), 15, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	payload := randomPayload(1, 6, 11)
	tx, err := p.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Decode(tx, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedBlocks != 0 {
		t.Fatalf("clean channel had %d failed blocks", res.FailedBlocks)
	}
	for i := range payload {
		if res.Payload[i] != payload[i] {
			t.Fatalf("payload symbol %d mismatch", i)
		}
	}
}

func TestPipelineOverChannelZeroErrors(t *testing.T) {
	// The headline Section 4.1 capability end to end: with the outer
	// code, the pipeline delivers error-free payloads over the
	// deletion-insertion channel at 1% event rates.
	params := pipelineParams()
	p, err := NewPipeline(params, 15, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	payload := randomPayload(2, 15, 11)
	tx, err := p.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(params.Pd, params.Pi, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(tx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Decode(recv, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := range payload {
		if res.Payload[i] != payload[i] {
			wrong++
		}
	}
	if frac := float64(wrong) / float64(len(payload)); frac > 0.01 {
		t.Fatalf("payload error rate %v after outer code", frac)
	}
}

func TestPipelineErasureFlaggingHelps(t *testing.T) {
	// At a stress event rate, erasure flagging should do at least as
	// well as errors-only decoding.
	params := pipelineParams()
	params.Pd, params.Pi = 0.02, 0.02
	payload := randomPayload(4, 12, 11)

	errorsFor := func(threshold float64, seed uint64) int {
		p, err := NewPipeline(params, 15, 11, threshold)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := p.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := channel.NewBinaryDI(params.Pd, params.Pi, 0, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ch.Transmit(tx)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Decode(recv, len(payload))
		if err != nil {
			t.Fatal(err)
		}
		wrong := 0
		for i := range payload {
			if res.Payload[i] != payload[i] {
				wrong++
			}
		}
		return wrong
	}
	totalPlain, totalFlagged := 0, 0
	for seed := uint64(10); seed < 16; seed++ {
		totalPlain += errorsFor(0, seed)
		totalFlagged += errorsFor(0.5, seed)
	}
	if totalFlagged > totalPlain {
		t.Fatalf("erasure flagging hurt: %d vs %d payload errors", totalFlagged, totalPlain)
	}
}

func TestPipelineDecodeValidation(t *testing.T) {
	p, err := NewPipeline(pipelineParams(), 15, 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decode([]byte{0, 1}, 5); err == nil {
		t.Error("expected payload multiple error")
	}
	if _, err := p.Decode([]byte{0, 1}, 0); err == nil {
		t.Error("expected empty payload error")
	}
}

func TestLowestConfidence(t *testing.T) {
	conf := []float64{0.9, 0.1, 0.5, 0.05, 0.7}
	got := lowestConfidence(conf, []int{0, 1, 2, 3, 4}, 2)
	if len(got) != 2 {
		t.Fatalf("kept %d, want 2", len(got))
	}
	seen := map[int]bool{got[0]: true, got[1]: true}
	if !seen[3] || !seen[1] {
		t.Fatalf("kept %v, want the two least confident {3, 1}", got)
	}
	if lowestConfidence(conf, []int{0}, 0) != nil {
		t.Fatal("keep=0 should return nil")
	}
}
