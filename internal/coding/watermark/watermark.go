// Package watermark implements Davey–MacKay watermark codes (the
// paper's reference [13]) for binary deletion–insertion channels: the
// construction the paper points to as the state of the art for
// reliable communication over non-synchronous channels *without* any
// synchronization mechanism (Section 4.1).
//
// Symbols of k bits are mapped to sparse n-bit codewords, XORed with a
// pseudorandom watermark sequence shared with the receiver, and sent
// through the channel. The receiver runs a forward–backward algorithm
// over a hidden Markov model whose state is the synchronization drift
// (received position minus transmitted position), treating the sparse
// bits as low-density noise on the watermark; the resulting per-chunk
// symbol posteriors feed an outer Reed–Solomon code (internal/coding/rs)
// that removes residual errors.
package watermark

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Params configures a watermark code.
type Params struct {
	// ChunkBits is k: bits per outer symbol (1..8; alphabet 2^k).
	ChunkBits int
	// SparseLen is n: sparse bits transmitted per symbol (> ChunkBits).
	SparseLen int
	// Pd, Pi, Ps are the decoder's channel model (Definition 1 at bit
	// level; Ps is the flip probability of a transmitted bit).
	Pd, Pi, Ps float64
	// MaxDrift bounds the |drift| tracked by the decoder.
	MaxDrift int
	// MaxInsertRun caps insertions considered per transmitted bit
	// (default 2 when 0).
	MaxInsertRun int
	// Seed generates the watermark sequence (the shared secret).
	Seed uint64
}

// validate checks the parameters.
func (p Params) validate() error {
	if p.ChunkBits < 1 || p.ChunkBits > 8 {
		return fmt.Errorf("watermark: chunk bits %d out of [1,8]", p.ChunkBits)
	}
	if p.SparseLen <= p.ChunkBits || p.SparseLen > 64 {
		return fmt.Errorf("watermark: sparse length %d must be in (%d, 64]", p.SparseLen, p.ChunkBits)
	}
	for _, v := range []struct {
		name string
		val  float64
	}{{"Pd", p.Pd}, {"Pi", p.Pi}, {"Ps", p.Ps}} {
		if v.val < 0 || v.val > 0.5 {
			return fmt.Errorf("watermark: %s = %v out of [0,0.5]", v.name, v.val)
		}
	}
	if p.Pd+p.Pi >= 1 {
		return fmt.Errorf("watermark: Pd + Pi must be < 1")
	}
	if p.MaxDrift < 1 || p.MaxDrift > 1024 {
		return fmt.Errorf("watermark: MaxDrift %d out of [1,1024]", p.MaxDrift)
	}
	if p.MaxInsertRun < 0 || p.MaxInsertRun > 8 {
		return fmt.Errorf("watermark: MaxInsertRun %d out of [0,8]", p.MaxInsertRun)
	}
	return nil
}

// Code is a configured watermark code.
type Code struct {
	p       Params
	book    [][]byte // sparse codeword bits per symbol value
	density float64  // mean fraction of ones in the codebook
	insCap  int
}

// New constructs the code, building the sparse codebook from the
// 2^ChunkBits lowest-weight SparseLen-bit words.
func New(p Params) (*Code, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	insCap := p.MaxInsertRun
	if insCap == 0 {
		insCap = 2
	}
	size := 1 << uint(p.ChunkBits)
	// Order all n-bit words by (weight, value) and keep the lightest.
	type cand struct {
		w int
		v uint64
	}
	// Enumerating 2^n words is infeasible for n up to 64; generate the
	// lightest words directly by weight layers instead.
	var cands []cand
	for w := 0; w <= p.SparseLen && len(cands) < size; w++ {
		layer := wordsOfWeight(p.SparseLen, w, size-len(cands))
		for _, v := range layer {
			cands = append(cands, cand{w: w, v: v})
		}
	}
	if len(cands) < size {
		return nil, fmt.Errorf("watermark: codebook underfull (%d of %d)", len(cands), size)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].w != cands[j].w {
			return cands[i].w < cands[j].w
		}
		return cands[i].v < cands[j].v
	})
	book := make([][]byte, size)
	ones := 0
	for i := 0; i < size; i++ {
		bitsOut := make([]byte, p.SparseLen)
		for j := 0; j < p.SparseLen; j++ {
			bitsOut[j] = byte(cands[i].v >> uint(j) & 1)
		}
		book[i] = bitsOut
		ones += cands[i].w
	}
	density := float64(ones) / float64(size*p.SparseLen)
	if density == 0 {
		density = 1 / float64(2*p.SparseLen) // all-zero degenerate guard
	}
	return &Code{p: p, book: book, density: density, insCap: insCap}, nil
}

// wordsOfWeight returns up to limit n-bit words of the given weight in
// ascending value order.
func wordsOfWeight(n, w, limit int) []uint64 {
	if limit <= 0 {
		return nil
	}
	var out []uint64
	if w == 0 {
		return []uint64{0}
	}
	// Iterate combinations via Gosper's hack, smallest value first.
	v := uint64(1)<<uint(w) - 1
	maxv := uint64(1) << uint(n)
	for v < maxv && len(out) < limit {
		out = append(out, v)
		// Next word with the same popcount.
		c := v & -v
		r := v + c
		if r >= maxv || c == 0 {
			break
		}
		v = (((r ^ v) >> 2) / c) | r
	}
	return out
}

// Params returns the configuration.
func (c *Code) Params() Params { return c.p }

// Density returns the mean sparse density f.
func (c *Code) Density() float64 { return c.density }

// SymbolAlphabet returns 2^ChunkBits.
func (c *Code) SymbolAlphabet() int { return 1 << uint(c.p.ChunkBits) }

// Rate returns the inner code rate ChunkBits/SparseLen.
func (c *Code) Rate() float64 { return float64(c.p.ChunkBits) / float64(c.p.SparseLen) }

// watermarkBits generates the shared watermark for numSyms symbols.
func (c *Code) watermarkBits(numSyms int) []byte {
	src := rng.New(c.p.Seed)
	w := make([]byte, numSyms*c.p.SparseLen)
	for i := range w {
		w[i] = src.Bit()
	}
	return w
}

// Encode maps outer symbols to the transmitted bit stream: sparse
// codeword bits XOR watermark.
func (c *Code) Encode(syms []uint32) ([]byte, error) {
	limit := uint32(c.SymbolAlphabet())
	w := c.watermarkBits(len(syms))
	out := make([]byte, 0, len(syms)*c.p.SparseLen)
	for i, s := range syms {
		if s >= limit {
			return nil, fmt.Errorf("watermark: symbol %d (=%d) outside %d-bit alphabet", i, s, c.p.ChunkBits)
		}
		cw := c.book[s]
		base := i * c.p.SparseLen
		for j, b := range cw {
			out = append(out, b^w[base+j])
		}
	}
	return out, nil
}

// Decoded holds the decoder output for one run.
type Decoded struct {
	// Symbols are the MAP symbol decisions per chunk.
	Symbols []uint32
	// Confidence is the posterior probability of each decision in
	// [0, 1]; low values flag likely errors (outer-code erasures).
	Confidence []float64
}

// Decode runs the drift forward–backward algorithm and returns MAP
// symbols with posterior confidences for numSyms chunks.
func (c *Code) Decode(recv []byte, numSyms int) (Decoded, error) {
	if numSyms < 1 {
		return Decoded{}, fmt.Errorf("watermark: symbol count %d, want >= 1", numSyms)
	}
	for i, b := range recv {
		if b > 1 {
			return Decoded{}, fmt.Errorf("watermark: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	var (
		n = c.p.SparseLen
		T = numSyms * n
		D = c.p.MaxDrift
	)
	finalDrift := len(recv) - T
	if finalDrift < -D || finalDrift > D {
		return Decoded{}, fmt.Errorf("watermark: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	w := c.watermarkBits(numSyms)

	// Marginal emission probability of received bit r when transmitted
	// bit is watermark XOR sparse with density f.
	f := c.density
	emitMarginal := func(i int, r byte) float64 {
		pSame := (1-f)*(1-c.p.Ps) + f*c.p.Ps // P(channel output equals w_i)
		if r == w[i] {
			return pSame
		}
		return 1 - pSame
	}
	// Exact emission when the transmitted bit t is known.
	emitExact := func(t, r byte) float64 {
		if t == r {
			return 1 - c.p.Ps
		}
		return c.p.Ps
	}

	alpha, err := c.forward(recv, T, emitMarginal)
	if err != nil {
		return Decoded{}, err
	}
	beta, err := c.backward(recv, T, finalDrift, emitMarginal)
	if err != nil {
		return Decoded{}, err
	}

	nd := 2*D + 1
	out := Decoded{
		Symbols:    make([]uint32, numSyms),
		Confidence: make([]float64, numSyms),
	}
	gamma := make([]float64, nd)
	scratch := make([]float64, nd)
	like := make([]float64, c.SymbolAlphabet())
	for chunk := 0; chunk < numSyms; chunk++ {
		i0 := chunk * n
		var total float64
		for v := range like {
			copy(gamma, alpha[i0])
			cw := c.book[v]
			for l := 0; l < n; l++ {
				i := i0 + l
				t := cw[l] ^ w[i]
				c.stepForward(gamma, scratch, recv, i, func(_ int, r byte) float64 {
					return emitExact(t, r)
				})
				gamma, scratch = scratch, gamma
			}
			var s float64
			for a := 0; a < nd; a++ {
				s += gamma[a] * beta[i0+n][a]
			}
			like[v] = s
			total += s
		}
		best := 0
		for v := 1; v < len(like); v++ {
			if like[v] > like[best] {
				best = v
			}
		}
		out.Symbols[chunk] = uint32(best)
		if total > 0 {
			out.Confidence[chunk] = like[best] / total
		}
	}
	return out, nil
}

// stepForward advances one transmitted bit: dst[b] = sum over drift a
// and insertion count m of src[a] * P(transition, emissions). emit
// gives the probability of the received bit consumed by the
// transmission itself.
func (c *Code) stepForward(src, dst []float64, recv []byte, i int, emit func(i int, r byte) float64) {
	D := c.p.MaxDrift
	nd := 2*D + 1
	pt := 1 - c.p.Pd - c.p.Pi
	for b := range dst {
		dst[b] = 0
	}
	for ai := 0; ai < nd; ai++ {
		pa := src[ai]
		if pa == 0 {
			continue
		}
		a := ai - D
		insP := 1.0
		for m := 0; m <= c.insCap; m++ {
			if m > 0 {
				idx := i + a + m - 1
				if idx < 0 || idx >= len(recv) {
					break
				}
				insP *= c.p.Pi * 0.5
			}
			// Deletion: drift a+m-1.
			if bd := a + m - 1; bd >= -D && bd <= D {
				dst[bd+D] += pa * insP * c.p.Pd
			}
			// Transmission: consumes recv[i+a+m], drift a+m.
			if bt := a + m; bt >= -D && bt <= D {
				idx := i + a + m
				if idx >= 0 && idx < len(recv) {
					dst[bt+D] += pa * insP * pt * emit(i, recv[idx])
				}
			}
		}
	}
}

// forward computes normalized alpha[i][drift] for i = 0..T.
func (c *Code) forward(recv []byte, T int, emit func(i int, r byte) float64) ([][]float64, error) {
	D := c.p.MaxDrift
	nd := 2*D + 1
	alpha := make([][]float64, T+1)
	alpha[0] = make([]float64, nd)
	alpha[0][D] = 1
	for i := 0; i < T; i++ {
		alpha[i+1] = make([]float64, nd)
		c.stepForward(alpha[i], alpha[i+1], recv, i, emit)
		if err := normalize(alpha[i+1]); err != nil {
			return nil, fmt.Errorf("watermark: forward pass died at bit %d (raise MaxDrift?)", i)
		}
	}
	return alpha, nil
}

// backward computes normalized beta[i][drift] for i = T..0.
func (c *Code) backward(recv []byte, T, finalDrift int, emit func(i int, r byte) float64) ([][]float64, error) {
	var (
		D   = c.p.MaxDrift
		nd  = 2*D + 1
		pt  = 1 - c.p.Pd - c.p.Pi
		res = make([][]float64, T+1)
	)
	res[T] = make([]float64, nd)
	res[T][finalDrift+D] = 1
	for i := T - 1; i >= 0; i-- {
		cur := make([]float64, nd)
		nxt := res[i+1]
		for ai := 0; ai < nd; ai++ {
			a := ai - D
			var sum float64
			insP := 1.0
			for m := 0; m <= c.insCap; m++ {
				if m > 0 {
					idx := i + a + m - 1
					if idx < 0 || idx >= len(recv) {
						break
					}
					insP *= c.p.Pi * 0.5
				}
				if bd := a + m - 1; bd >= -D && bd <= D {
					sum += insP * c.p.Pd * nxt[bd+D]
				}
				if bt := a + m; bt >= -D && bt <= D {
					idx := i + a + m
					if idx >= 0 && idx < len(recv) {
						sum += insP * pt * emit(i, recv[idx]) * nxt[bt+D]
					}
				}
			}
			cur[ai] = sum
		}
		if err := normalize(cur); err != nil {
			return nil, fmt.Errorf("watermark: backward pass died at bit %d (raise MaxDrift?)", i)
		}
		res[i] = cur
	}
	return res, nil
}

// normalize scales a distribution to sum 1; an all-zero vector is an
// error (the lattice disconnected).
func normalize(v []float64) error {
	var s float64
	for _, x := range v {
		s += x
	}
	if s <= 0 || math.IsNaN(s) {
		return fmt.Errorf("watermark: zero mass")
	}
	for i := range v {
		v[i] /= s
	}
	return nil
}

// codebookWeight reports the Hamming weight of symbol v's codeword
// (exported for tests and diagnostics).
func (c *Code) codebookWeight(v int) int {
	w := 0
	for _, b := range c.book[v] {
		w += int(b)
	}
	return w
}
