package watermark

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func BenchmarkEncode(b *testing.B) {
	c, err := New(defaultParams())
	if err != nil {
		b.Fatal(err)
	}
	syms := randomSymbols(1, 200, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode200Symbols(b *testing.B) {
	p := defaultParams()
	c, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	syms := randomSymbols(2, 200, 4)
	tx, err := c.Encode(syms)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(p.Pd, p.Pi, 0, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	recv, err := ch.Transmit(tx)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(recv, len(syms)); err != nil {
			b.Fatal(err)
		}
	}
}
