// Package rs implements systematic Reed–Solomon codes over GF(2^m) with
// a Berlekamp–Massey errors-and-erasures decoder. In this repository RS
// serves as the outer code above the watermark inner code
// (internal/coding/watermark), cleaning up the residual symbol errors
// the drift decoder leaves — the role non-binary LDPC codes play in
// Davey–MacKay's construction (the paper's reference [13]).
package rs

import (
	"fmt"

	"repro/internal/coding/gf"
)

// Code is an (n, k) Reed–Solomon code over a field, correcting up to
// t = (n-k)/2 symbol errors, or more generally 2*errors + erasures <= n-k.
type Code struct {
	f   *gf.Field
	n   int
	k   int
	gen []uint32 // generator polynomial, ascending, degree n-k
}

// New returns an (n, k) code over the field. n must not exceed the
// field's symbol range (2^m - 1) and 0 < k < n.
func New(f *gf.Field, n, k int) (*Code, error) {
	if f == nil {
		return nil, fmt.Errorf("rs: nil field")
	}
	if n < 2 || n > f.Size()-1 {
		return nil, fmt.Errorf("rs: block length %d out of [2, %d]", n, f.Size()-1)
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("rs: dimension %d out of [1, %d)", k, n)
	}
	// g(x) = prod_{j=1}^{n-k} (x - α^j), built ascending.
	gen := []uint32{1}
	for j := 1; j <= n-k; j++ {
		gen = f.PolyMul(gen, []uint32{f.Exp(j), 1})
	}
	return &Code{f: f, n: n, k: k, gen: gen}, nil
}

// N returns the block length.
func (c *Code) N() int { return c.n }

// K returns the message length.
func (c *Code) K() int { return c.k }

// T returns the guaranteed error-correction radius (n-k)/2.
func (c *Code) T() int { return (c.n - c.k) / 2 }

// Encode produces the systematic codeword [msg || parity]. Symbols must
// be field elements; msg must have length k.
func (c *Code) Encode(msg []uint32) ([]uint32, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("rs: message length %d, want %d", len(msg), c.k)
	}
	for i, s := range msg {
		if s >= uint32(c.f.Size()) {
			return nil, fmt.Errorf("rs: message symbol %d (=%d) outside GF(2^%d)", i, s, c.f.M())
		}
	}
	// Long division of msg(x)*x^(n-k) by g(x); cw[i] holds the
	// coefficient of x^(n-1-i).
	cw := make([]uint32, c.n)
	copy(cw, msg)
	rem := make([]uint32, c.n)
	copy(rem, msg)
	deg := c.n - c.k
	for i := 0; i < c.k; i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		// Subtract coef * g(x) * x^(shift). gen is ascending with
		// leading coefficient gen[deg] = 1 aligned at rem[i].
		for j := 0; j <= deg; j++ {
			rem[i+j] = c.f.Add(rem[i+j], c.f.Mul(coef, c.gen[deg-j]))
		}
	}
	copy(cw[c.k:], rem[c.k:])
	return cw, nil
}

// Syndromes returns the 2t syndromes of the received word; all zero
// means the word is a codeword.
func (c *Code) Syndromes(recv []uint32) ([]uint32, error) {
	if len(recv) != c.n {
		return nil, fmt.Errorf("rs: received length %d, want %d", len(recv), c.n)
	}
	for i, s := range recv {
		if s >= uint32(c.f.Size()) {
			return nil, fmt.Errorf("rs: received symbol %d (=%d) outside GF(2^%d)", i, s, c.f.M())
		}
	}
	syn := make([]uint32, c.n-c.k)
	for j := 1; j <= c.n-c.k; j++ {
		x := c.f.Exp(j)
		var acc uint32
		for _, s := range recv {
			acc = c.f.Add(c.f.Mul(acc, x), s)
		}
		syn[j-1] = acc
	}
	return syn, nil
}

// Decode corrects up to T() symbol errors in place of unknown location
// and returns the recovered message. It returns an error when the word
// is uncorrectable.
func (c *Code) Decode(recv []uint32) ([]uint32, error) {
	return c.DecodeErasures(recv, nil)
}

// DecodeErasures corrects a received word given known erasure
// positions, succeeding whenever 2*errors + erasures <= n-k. Erasure
// positions index into recv (whose symbols there may hold anything
// in-field). It returns the recovered message or an error when
// uncorrectable.
func (c *Code) DecodeErasures(recv []uint32, erasures []int) ([]uint32, error) {
	syn, err := c.Syndromes(recv)
	if err != nil {
		return nil, err
	}
	if len(erasures) > c.n-c.k {
		return nil, fmt.Errorf("rs: %d erasures exceed redundancy %d", len(erasures), c.n-c.k)
	}
	seen := make(map[int]bool, len(erasures))
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, fmt.Errorf("rs: erasure position %d out of range", e)
		}
		if seen[e] {
			return nil, fmt.Errorf("rs: duplicate erasure position %d", e)
		}
		seen[e] = true
	}
	allZero := true
	for _, s := range syn {
		if s != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		// Already a codeword (erasures, if any, hold correct values).
		return append([]uint32(nil), recv[:c.k]...), nil
	}

	f := c.f
	nk := c.n - c.k

	// Erasure locator Γ(x) = prod (1 - X_e x), ascending coefficients.
	gamma := []uint32{1}
	for _, e := range erasures {
		x := f.Exp(c.n - 1 - e)
		gamma = f.PolyMul(gamma, []uint32{1, x})
	}
	// Modified syndromes Ξ(x) = S(x)·Γ(x) mod x^{2t}.
	spoly := append([]uint32(nil), syn...)
	xi := polyMulMod(f, spoly, gamma, nk)

	// Berlekamp–Massey on the modified syndromes.
	lambda := berlekampMassey(f, xi, len(erasures))

	// Combined locator Ψ = Λ·Γ and evaluator Ω = S·Ψ mod x^{2t}.
	psi := f.PolyMul(lambda, gamma)
	omega := polyMulMod(f, spoly, psi, nk)

	// Chien search over all positions.
	var positions []int
	for pos := 0; pos < c.n; pos++ {
		xinv := f.Exp(-(c.n - 1 - pos))
		if f.PolyEval(psi, xinv) == 0 {
			positions = append(positions, pos)
		}
	}
	if len(positions) != polyDeg(psi) {
		return nil, fmt.Errorf("rs: locator degree %d but %d roots found (uncorrectable)",
			polyDeg(psi), len(positions))
	}

	// Forney: e = Ω(X^{-1}) / Ψ'(X^{-1}) for the b=1 convention.
	corrected := append([]uint32(nil), recv...)
	dpsi := polyDeriv(f, psi)
	for _, pos := range positions {
		xinv := f.Exp(-(c.n - 1 - pos))
		den := f.PolyEval(dpsi, xinv)
		if den == 0 {
			return nil, fmt.Errorf("rs: Forney denominator vanished (uncorrectable)")
		}
		mag, err := f.Div(f.PolyEval(omega, xinv), den)
		if err != nil {
			return nil, err
		}
		corrected[pos] = f.Add(corrected[pos], mag)
	}

	// Verify the correction actually produced a codeword.
	check, err := c.Syndromes(corrected)
	if err != nil {
		return nil, err
	}
	for _, s := range check {
		if s != 0 {
			return nil, fmt.Errorf("rs: correction failed verification (uncorrectable)")
		}
	}
	return corrected[:c.k], nil
}

// berlekampMassey finds the minimal error-locator polynomial for the
// (possibly erasure-modified) syndromes. rho is the erasure count; the
// search allows up to (len(syn)-rho)/2 errors.
func berlekampMassey(f *gf.Field, syn []uint32, rho int) []uint32 {
	lambda := []uint32{1}
	prev := []uint32{1}
	l := 0
	m := 1
	b := uint32(1)
	for i := rho; i < len(syn); i++ {
		// Discrepancy δ = syn[i] + Σ_{j=1..l} λ[j]·syn[i-j].
		delta := syn[i]
		for j := 1; j <= l && j < len(lambda); j++ {
			if i-j >= 0 {
				delta = f.Add(delta, f.Mul(lambda[j], syn[i-j]))
			}
		}
		if delta == 0 {
			m++
			continue
		}
		scale, err := f.Div(delta, b)
		if err != nil {
			// b is never zero by construction.
			panic("rs: zero reference discrepancy")
		}
		// candidate = λ - scale · x^m · prev
		candidate := make([]uint32, maxInt(len(lambda), len(prev)+m))
		copy(candidate, lambda)
		for j, pv := range prev {
			candidate[j+m] = f.Add(candidate[j+m], f.Mul(scale, pv))
		}
		if 2*l <= i-rho {
			prev = lambda
			l = i - rho + 1 - l
			b = delta
			m = 1
		} else {
			m++
		}
		lambda = candidate
	}
	return trimPoly(lambda)
}

// polyMulMod returns (a*b) mod x^deg with ascending coefficients.
func polyMulMod(f *gf.Field, a, b []uint32, deg int) []uint32 {
	out := make([]uint32, deg)
	for i, ai := range a {
		if ai == 0 || i >= deg {
			continue
		}
		for j, bj := range b {
			if i+j >= deg {
				break
			}
			out[i+j] = f.Add(out[i+j], f.Mul(ai, bj))
		}
	}
	return out
}

// polyDeriv returns the formal derivative (char 2: odd terms survive).
func polyDeriv(f *gf.Field, p []uint32) []uint32 {
	if len(p) < 2 {
		return []uint32{0}
	}
	out := make([]uint32, len(p)-1)
	for i := 1; i < len(p); i++ {
		if i%2 == 1 {
			out[i-1] = p[i]
		}
	}
	_ = f
	return out
}

// polyDeg returns the degree of p ignoring trailing zeros.
func polyDeg(p []uint32) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] != 0 {
			return i
		}
	}
	return 0
}

// trimPoly drops trailing zero coefficients.
func trimPoly(p []uint32) []uint32 {
	return p[:polyDeg(p)+1]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
