package rs

import (
	"testing"

	"repro/internal/coding/gf"
)

// FuzzDecode asserts that the decoder never panics and never returns a
// non-codeword correction for arbitrary received words.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Add(make([]byte, 15))
	f.Fuzz(func(t *testing.T, raw []byte) {
		field, err := gf.Default(4)
		if err != nil {
			t.Fatal(err)
		}
		code, err := New(field, 15, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < 15 {
			return
		}
		recv := make([]uint32, 15)
		for i := range recv {
			recv[i] = uint32(raw[i]) & 0xF
		}
		msg, err := code.Decode(recv)
		if err != nil {
			return // uncorrectable is a legal outcome
		}
		// Any accepted decode must re-encode to a zero-syndrome word.
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		syn, err := code.Syndromes(cw)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range syn {
			if s != 0 {
				t.Fatal("decode returned a non-codeword")
			}
		}
	})
}

// FuzzDecodeErasures exercises the erasure path with arbitrary flags.
func FuzzDecodeErasures(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, uint8(0x05))
	f.Fuzz(func(t *testing.T, raw []byte, mask uint8) {
		field, err := gf.Default(4)
		if err != nil {
			t.Fatal(err)
		}
		code, err := New(field, 15, 11)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) < 15 {
			return
		}
		recv := make([]uint32, 15)
		for i := range recv {
			recv[i] = uint32(raw[i]) & 0xF
		}
		var erasures []int
		for i := 0; i < 8 && len(erasures) < 4; i++ {
			if mask>>uint(i)&1 == 1 {
				erasures = append(erasures, i)
			}
		}
		// Must not panic regardless of outcome.
		_, _ = code.DecodeErasures(recv, erasures)
	})
}
