package rs

import (
	"testing"

	"repro/internal/coding/gf"
	"repro/internal/rng"
)

func mustCode(t *testing.T, m, n, k int) *Code {
	t.Helper()
	f, err := gf.Default(m)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(f, n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomMsg(src *rng.Source, k, m int) []uint32 {
	msg := make([]uint32, k)
	for i := range msg {
		msg[i] = uint32(src.Intn(1 << uint(m)))
	}
	return msg
}

func TestNewValidation(t *testing.T) {
	f, err := gf.Default(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, 15, 11); err == nil {
		t.Error("expected nil field error")
	}
	if _, err := New(f, 16, 11); err == nil {
		t.Error("expected block length error (n > 2^m - 1)")
	}
	if _, err := New(f, 15, 15); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := New(f, 15, 0); err == nil {
		t.Error("expected dimension error")
	}
}

func TestAccessors(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	if c.N() != 15 || c.K() != 11 || c.T() != 2 {
		t.Fatalf("N=%d K=%d T=%d", c.N(), c.K(), c.T())
	}
}

func TestEncodeIsSystematicCodeword(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	src := rng.New(1)
	for trial := 0; trial < 50; trial++ {
		msg := randomMsg(src, 11, 4)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range msg {
			if cw[i] != msg[i] {
				t.Fatal("encoding is not systematic")
			}
		}
		syn, err := c.Syndromes(cw)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range syn {
			if s != 0 {
				t.Fatalf("codeword has non-zero syndrome %v", syn)
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	if _, err := c.Encode(make([]uint32, 5)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]uint32, 11)
	bad[3] = 16
	if _, err := c.Encode(bad); err == nil {
		t.Error("expected alphabet error")
	}
}

func TestSyndromesValidation(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	if _, err := c.Syndromes(make([]uint32, 3)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]uint32, 15)
	bad[0] = 99
	if _, err := c.Syndromes(bad); err == nil {
		t.Error("expected alphabet error")
	}
}

func TestDecodeNoErrors(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	src := rng.New(2)
	msg := randomMsg(src, 11, 4)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, msg)
}

func TestDecodeCorrectsUpToT(t *testing.T) {
	// Exhaustive over error weights for several codes.
	for _, tc := range []struct{ m, n, k int }{
		{4, 15, 11}, // t = 2
		{4, 15, 7},  // t = 4
		{8, 255, 239},
	} {
		c := mustCode(t, tc.m, tc.n, tc.k)
		src := rng.New(uint64(tc.n))
		for trial := 0; trial < 30; trial++ {
			msg := randomMsg(src, tc.k, tc.m)
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			weight := 1 + src.Intn(c.T())
			recv := append([]uint32(nil), cw...)
			for _, pos := range src.Perm(tc.n)[:weight] {
				delta := 1 + src.Intn((1<<uint(tc.m))-1)
				recv[pos] ^= uint32(delta)
			}
			got, err := c.Decode(recv)
			if err != nil {
				t.Fatalf("(%d,%d) weight %d: %v", tc.n, tc.k, weight, err)
			}
			assertEqual(t, got, msg)
		}
	}
}

func TestDecodeErasuresFullRedundancy(t *testing.T) {
	// n-k erasures with no errors must be correctable.
	c := mustCode(t, 4, 15, 11)
	src := rng.New(5)
	msg := randomMsg(src, 11, 4)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]uint32(nil), cw...)
	erasures := src.Perm(15)[:4]
	for _, pos := range erasures {
		recv[pos] = uint32(src.Intn(16))
	}
	got, err := c.DecodeErasures(recv, erasures)
	if err != nil {
		t.Fatal(err)
	}
	assertEqual(t, got, msg)
}

func TestDecodeErrorsAndErasuresCombined(t *testing.T) {
	// 2*errors + erasures <= n-k: one error plus two erasures with
	// n-k = 4 must decode.
	c := mustCode(t, 4, 15, 11)
	src := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		msg := randomMsg(src, 11, 4)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		recv := append([]uint32(nil), cw...)
		perm := src.Perm(15)
		erasures := perm[:2]
		errPos := perm[2]
		for _, pos := range erasures {
			recv[pos] = uint32(src.Intn(16))
		}
		recv[errPos] ^= uint32(1 + src.Intn(15))
		got, err := c.DecodeErasures(recv, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertEqual(t, got, msg)
	}
}

func TestDecodeBeyondRadiusFailsCleanly(t *testing.T) {
	// Far beyond the radius the decoder must either report an error or
	// return some message; it must never panic. (Within-distance
	// miscorrection onto another codeword is legitimate RS behaviour.)
	c := mustCode(t, 4, 15, 11)
	src := rng.New(7)
	failures := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		msg := randomMsg(src, 11, 4)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		recv := append([]uint32(nil), cw...)
		for _, pos := range src.Perm(15)[:9] {
			recv[pos] ^= uint32(1 + src.Intn(15))
		}
		if _, err := c.Decode(recv); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Error("9 errors in a t=2 code never reported uncorrectable across 50 trials")
	}
}

func TestDecodeErasuresValidation(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	cw := make([]uint32, 15)
	if _, err := c.DecodeErasures(cw, []int{0, 1, 2, 3, 4}); err == nil {
		t.Error("expected too-many-erasures error")
	}
	if _, err := c.DecodeErasures(cw, []int{-1}); err == nil {
		t.Error("expected out-of-range erasure error")
	}
	if _, err := c.DecodeErasures(cw, []int{1, 1}); err == nil {
		t.Error("expected duplicate erasure error")
	}
}

func TestDecodeReturnsCopy(t *testing.T) {
	c := mustCode(t, 4, 15, 11)
	src := rng.New(8)
	msg := randomMsg(src, 11, 4)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	got[0] ^= 1
	if cw[0] == got[0] && msg[0] == got[0] {
		t.Fatal("decode aliased its input")
	}
}

func assertEqual(t *testing.T, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symbol %d: got %d, want %d", i, got[i], want[i])
		}
	}
}
