package rs

import (
	"testing"

	"repro/internal/coding/gf"
	"repro/internal/rng"
)

func benchCode(b *testing.B, m, n, k int) *Code {
	b.Helper()
	field, err := gf.Default(m)
	if err != nil {
		b.Fatal(err)
	}
	code, err := New(field, n, k)
	if err != nil {
		b.Fatal(err)
	}
	return code
}

func BenchmarkEncode255_239(b *testing.B) {
	code := benchCode(b, 8, 255, 239)
	src := rng.New(1)
	msg := make([]uint32, 239)
	for i := range msg {
		msg[i] = uint32(src.Intn(256))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode255_239_8Errors(b *testing.B) {
	code := benchCode(b, 8, 255, 239)
	src := rng.New(2)
	msg := make([]uint32, 239)
	for i := range msg {
		msg[i] = uint32(src.Intn(256))
	}
	cw, err := code.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	recv := append([]uint32(nil), cw...)
	for _, pos := range src.Perm(255)[:8] {
		recv[pos] ^= uint32(1 + src.Intn(255))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(recv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode15_11Clean(b *testing.B) {
	code := benchCode(b, 4, 15, 11)
	src := rng.New(3)
	msg := make([]uint32, 11)
	for i := range msg {
		msg[i] = uint32(src.Intn(16))
	}
	cw, err := code.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
