package conv

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// benchReceived prepares a 96-bit frame pushed through the binary
// deletion-insertion channel.
func benchReceived(b *testing.B, pd, pi float64) ([]byte, []byte, *Code) {
	b.Helper()
	c := Standard()
	src := rng.New(1)
	msg := randomBits(src, 96)
	cw, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(pd, pi, 0, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	recv, err := ch.Transmit(cw)
	if err != nil {
		b.Fatal(err)
	}
	return msg, recv, c
}

func BenchmarkViterbiSynchronous(b *testing.B) {
	c := Standard()
	src := rng.New(3)
	msg := randomBits(src, 96)
	cw, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeViterbi(cw, len(msg)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriftViterbi(b *testing.B) {
	msg, recv, c := benchReceived(b, 0.005, 0.005)
	p := DriftParams{Pd: 0.005, Pi: 0.005, MaxDrift: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeDrift(recv, len(msg), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialStack(b *testing.B) {
	msg, recv, c := benchReceived(b, 0.005, 0.005)
	p := SequentialParams{Pd: 0.005, Pi: 0.005, MaxDrift: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.DecodeSequential(recv, len(msg), p); err != nil {
			b.Fatal(err)
		}
	}
}
