package conv

import (
	"container/heap"
	"fmt"
	"math"
)

// This file retains the pre-optimization decoders verbatim. They are
// the ground truth for the pooled/memoized decoders in drift.go and
// sequential.go: differential tests assert identical messages,
// expansion counts and errors, and cmd/kernelbench times them for the
// "before" column of BENCH_kernels.json.

// refSeqNode is one partial path in the reference decoding tree.
type refSeqNode struct {
	metric float64
	step   int
	state  uint32
	drift  int
	parent *refSeqNode
	bit    byte
	index  int
}

// refSeqHeap is a max-heap on the metric.
type refSeqHeap []*refSeqNode

func (h refSeqHeap) Len() int           { return len(h) }
func (h refSeqHeap) Less(i, j int) bool { return h[i].metric > h[j].metric }
func (h refSeqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *refSeqHeap) Push(x any)        { n := x.(*refSeqNode); n.index = len(*h); *h = append(*h, n) }
func (h *refSeqHeap) Pop() any {
	old := *h
	n := len(old)
	node := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return node
}

// DecodeSequentialReference is the original per-node-allocating stack
// decoder. DecodeSequential must match it bit-for-bit: same message,
// same expansion count, same error cases.
func (c *Code) DecodeSequentialReference(recv []byte, msgLen int, p SequentialParams) ([]byte, int, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	if msgLen < 1 {
		return nil, 0, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, 0, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	var (
		n     = len(c.gens)
		steps = msgLen + c.k - 1
		sent  = steps * n
		D     = p.MaxDrift
	)
	finalDrift := len(recv) - sent
	if finalDrift < -D || finalDrift > D {
		return nil, 0, fmt.Errorf("conv: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	maxExp := p.MaxExpansions
	if maxExp == 0 {
		maxExp = 200 * msgLen
	}

	pt := 1 - p.Pd - p.Pi
	var (
		lDel      = negLog(p.Pd) / math.Ln2
		lIns      = negLog(p.Pi*0.5) / math.Ln2
		lMatch    = negLog(pt*(1-p.Ps)) / math.Ln2
		lMismatch = negLog(pt*p.Ps) / math.Ln2
	)
	bias := p.Pd*lDel + p.Pi*lIns + pt*((1-p.Ps)*lMatch+p.Ps*lMismatch)
	bias *= 1 + p.Pi

	ddMax := n + 2
	gw := 2*ddMax + 1
	gamma := make([][]float64, n+1)
	for j := range gamma {
		gamma[j] = make([]float64, gw)
	}
	chunk := make([]byte, n)
	inf := math.Inf(1)
	branchCost := func(base, d int, state uint32, b byte) (uint32, []float64) {
		next := c.stepInto(chunk, state, b)
		for j := range gamma {
			for g := range gamma[j] {
				gamma[j][g] = inf
			}
		}
		gamma[0][ddMax] = 0
		for j := 0; j < n; j++ {
			for g := 0; g < gw; g++ {
				cur := gamma[j][g]
				if math.IsInf(cur, 1) {
					continue
				}
				dd := g - ddMax
				idx := base + j + d + dd
				if g+1 < gw && idx >= 0 && idx < len(recv) && d+dd+1 <= D {
					if v := cur + lIns; v < gamma[j][g+1] {
						gamma[j][g+1] = v
					}
				}
				if g-1 >= 0 && d+dd-1 >= -D {
					if v := cur + lDel; v < gamma[j+1][g-1] {
						gamma[j+1][g-1] = v
					}
				}
				if idx >= 0 && idx < len(recv) {
					l := lMatch
					if recv[idx] != chunk[j] {
						l = lMismatch
					}
					if v := cur + l; v < gamma[j+1][g] {
						gamma[j+1][g] = v
					}
				}
			}
		}
		return next, gamma[n]
	}

	var stack refSeqHeap
	heap.Push(&stack, &refSeqNode{drift: 0})
	expansions := 0
	for stack.Len() > 0 {
		node := heap.Pop(&stack).(*refSeqNode)
		if node.step == steps {
			if node.state != 0 || node.drift != finalDrift {
				continue
			}
			msg := make([]byte, msgLen)
			for cur := node; cur.parent != nil; cur = cur.parent {
				if cur.step-1 < msgLen {
					msg[cur.step-1] = cur.bit
				}
			}
			return msg, expansions, nil
		}
		expansions++
		if expansions > maxExp {
			return nil, expansions, fmt.Errorf("conv: sequential decoder hit the work limit (%d expansions)", maxExp)
		}
		maxBit := byte(1)
		if node.step >= msgLen {
			maxBit = 0
		}
		base := node.step * n
		for b := byte(0); b <= maxBit; b++ {
			nextState, exit := branchCost(base, node.drift, node.state, b)
			for g, cost := range exit {
				if math.IsInf(cost, 1) {
					continue
				}
				nd := node.drift + g - ddMax
				if nd < -D || nd > D {
					continue
				}
				heap.Push(&stack, &refSeqNode{
					metric: node.metric - cost + bias*float64(n),
					step:   node.step + 1,
					state:  nextState,
					drift:  nd,
					parent: node,
					bit:    b,
				})
			}
		}
	}
	return nil, expansions, fmt.Errorf("conv: no drift-consistent path found")
}

// DecodeDriftReference is the original per-step-allocating drift
// Viterbi decoder; DecodeDrift must match it bit-for-bit.
func (c *Code) DecodeDriftReference(recv []byte, msgLen int, p DriftParams) ([]byte, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if msgLen < 1 {
		return nil, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	insCap := p.MaxInsertionsPerBit
	if insCap == 0 {
		insCap = 2
	}
	var (
		n     = len(c.gens)
		steps = msgLen + c.k - 1
		sent  = steps * n
		ns    = c.numStates()
		D     = p.MaxDrift
		nd    = 2*D + 1
	)
	finalDrift := len(recv) - sent
	if finalDrift < -D || finalDrift > D {
		return nil, fmt.Errorf("conv: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	pt := 1 - p.Pd - p.Pi
	var (
		lDel      = negLog(p.Pd)
		lIns      = negLog(p.Pi * 0.5)
		lMatch    = negLog(pt * (1 - p.Ps))
		lMismatch = negLog(pt * p.Ps)
	)

	inf := math.Inf(1)
	cost := make([]float64, ns*nd)
	for i := range cost {
		cost[i] = inf
	}
	cost[0*nd+D] = 0
	pred := make([][]driftHop, steps)

	ddMax := n + insCap
	gw := 2*ddMax + 1
	gamma := make([][]float64, n+1)
	for j := range gamma {
		gamma[j] = make([]float64, gw)
	}
	chunk := make([]byte, n)

	for t := 0; t < steps; t++ {
		next := make([]float64, ns*nd)
		for i := range next {
			next[i] = inf
		}
		pred[t] = make([]driftHop, ns*nd)
		maxBit := byte(1)
		if t >= msgLen {
			maxBit = 0
		}
		base := t * n
		for s := 0; s < ns; s++ {
			for di := 0; di < nd; di++ {
				start := cost[s*nd+di]
				if math.IsInf(start, 1) {
					continue
				}
				d := di - D
				for b := byte(0); b <= maxBit; b++ {
					nextState := c.stepInto(chunk, uint32(s), b)
					for j := range gamma {
						for k := range gamma[j] {
							gamma[j][k] = inf
						}
					}
					gamma[0][ddMax] = 0
					for j := 0; j < n; j++ {
						for g := 0; g < gw; g++ {
							cur := gamma[j][g]
							if math.IsInf(cur, 1) {
								continue
							}
							dd := g - ddMax
							idx := base + j + d + dd
							if dd < insCap+j+1 && g+1 < gw && idx >= 0 && idx < len(recv) &&
								d+dd+1 <= D {
								if v := cur + lIns; v < gamma[j][g+1] {
									gamma[j][g+1] = v
								}
							}
							if g-1 >= 0 && d+dd-1 >= -D {
								if v := cur + lDel; v < gamma[j+1][g-1] {
									gamma[j+1][g-1] = v
								}
							}
							if idx >= 0 && idx < len(recv) {
								l := lMatch
								if recv[idx] != chunk[j] {
									l = lMismatch
								}
								if v := cur + l; v < gamma[j+1][g] {
									gamma[j+1][g] = v
								}
							}
						}
					}
					for g := 0; g < gw; g++ {
						branch := gamma[n][g]
						if math.IsInf(branch, 1) {
							continue
						}
						dd := g - ddMax
						ndrift := d + dd
						if ndrift < -D || ndrift > D {
							continue
						}
						slot := int(nextState)*nd + (ndrift + D)
						if v := start + branch; v < next[slot] {
							next[slot] = v
							pred[t][slot] = driftHop{
								prevState: uint32(s),
								prevDrift: int16(d),
								bit:       b,
								ok:        true,
							}
						}
					}
				}
			}
		}
		cost = next
	}

	finalSlot := 0*nd + (finalDrift + D)
	if math.IsInf(cost[finalSlot], 1) {
		return nil, fmt.Errorf("conv: no drift-trellis path reaches termination (raise MaxDrift?)")
	}
	msg := make([]byte, msgLen)
	state, drift := uint32(0), finalDrift
	for t := steps - 1; t >= 0; t-- {
		h := pred[t][int(state)*nd+(drift+D)]
		if !h.ok {
			return nil, fmt.Errorf("conv: drift traceback broke at step %d", t)
		}
		if t < msgLen {
			msg[t] = h.bit
		}
		state, drift = h.prevState, int(h.prevDrift)
	}
	return msg, nil
}
