package conv

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func seqParams() SequentialParams {
	return SequentialParams{Pd: 0.01, Pi: 0.01, MaxDrift: 8}
}

func TestSequentialParamsValidation(t *testing.T) {
	c := Standard()
	recv := make([]byte, 20)
	bad := []SequentialParams{
		{Pd: -0.1, MaxDrift: 4},
		{Pd: 0.6, Pi: 0.5, MaxDrift: 4},
		{Pd: 0.1, MaxDrift: -1},
		{Pd: 0.1, MaxDrift: 4, MaxExpansions: -1},
	}
	for i, p := range bad {
		if _, _, err := c.DecodeSequential(recv, 8, p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if _, _, err := c.DecodeSequential(recv, 0, seqParams()); err == nil {
		t.Error("expected message length error")
	}
	if _, _, err := c.DecodeSequential([]byte{2}, 8, seqParams()); err == nil {
		t.Error("expected bit error")
	}
}

func TestSequentialCleanDecode(t *testing.T) {
	c := Standard()
	src := rng.New(1)
	msg := randomBits(src, 64)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, exp, err := c.DecodeSequential(cw, len(msg), seqParams())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean sequential decode mismatch")
	}
	// On a clean stream the stack should track essentially one path:
	// expansions close to the number of steps, far below the trellis.
	if exp > 5*(len(msg)+2) {
		t.Fatalf("clean decode used %d expansions, expected near-linear", exp)
	}
}

func TestSequentialSingleDeletion(t *testing.T) {
	c := Standard()
	src := rng.New(2)
	msg := randomBits(src, 48)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, del := range []int{0, 31, len(cw) - 1} {
		recv := append(append([]byte(nil), cw[:del]...), cw[del+1:]...)
		got, _, err := c.DecodeSequential(recv, len(msg), seqParams())
		if err != nil {
			t.Fatalf("del at %d: %v", del, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("del at %d: wrong message", del)
		}
	}
}

func TestSequentialSingleInsertion(t *testing.T) {
	c := Standard()
	src := rng.New(3)
	msg := randomBits(src, 48)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range []int{0, 40, len(cw)} {
		recv := append([]byte(nil), cw[:ins]...)
		recv = append(recv, 1)
		recv = append(recv, cw[ins:]...)
		got, _, err := c.DecodeSequential(recv, len(msg), seqParams())
		if err != nil {
			t.Fatalf("ins at %d: %v", ins, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("ins at %d: wrong message", ins)
		}
	}
}

func TestSequentialAgreesWithViterbiOverChannel(t *testing.T) {
	c := Standard()
	p := seqParams()
	p.Pd, p.Pi = 0.005, 0.005
	agree, attempts := 0, 0
	for trial := 0; trial < 15; trial++ {
		src := rng.New(uint64(100 + trial))
		msg := randomBits(src, 64)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := channel.NewBinaryDI(p.Pd, p.Pi, 0, rng.New(uint64(200+trial)))
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ch.Transmit(cw)
		if err != nil {
			t.Fatal(err)
		}
		vit, errV := c.DecodeDrift(recv, len(msg), DriftParams{Pd: p.Pd, Pi: p.Pi, MaxDrift: p.MaxDrift})
		seq, _, errS := c.DecodeSequential(recv, len(msg), p)
		if errV != nil || errS != nil {
			continue
		}
		attempts++
		if bytes.Equal(vit, seq) {
			agree++
		}
	}
	if attempts == 0 {
		t.Fatal("no comparable decodes")
	}
	if agree < attempts*8/10 {
		t.Fatalf("sequential and Viterbi agreed on only %d/%d frames", agree, attempts)
	}
}

func TestSequentialWorkLimit(t *testing.T) {
	// A hostile stream with a tiny expansion budget must return the
	// erasure error rather than loop.
	c := Standard()
	src := rng.New(5)
	msg := randomBits(src, 64)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt heavily.
	recv := append([]byte(nil), cw...)
	for i := range recv {
		if i%3 == 0 {
			recv[i] ^= 1
		}
	}
	p := seqParams()
	p.Ps = 0.01
	p.MaxExpansions = 50
	if _, _, err := c.DecodeSequential(recv, len(msg), p); err == nil {
		t.Skip("decoder solved the hostile stream within the budget; nothing to assert")
	}
}

func TestSequentialDriftBound(t *testing.T) {
	c := Standard()
	src := rng.New(6)
	msg := randomBits(src, 32)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := cw[:len(cw)-6]
	p := seqParams()
	p.MaxDrift = 2
	if _, _, err := c.DecodeSequential(recv, len(msg), p); err == nil {
		t.Fatal("expected drift bound error")
	}
}
