package conv

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

// diChannel runs a message through encode + a seeded binary
// deletion–insertion channel and returns the received stream.
func diChannel(t *testing.T, c *Code, msg []byte, pd, pi, ps float64, seed uint64) []byte {
	t.Helper()
	coded, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(pd, pi, ps, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(coded)
	if err != nil {
		t.Fatal(err)
	}
	return recv
}

// TestDecodeDriftMatchesReference checks the pooled/memoized drift
// Viterbi decoder against the retained reference across noise regimes:
// identical message or identical failure.
func TestDecodeDriftMatchesReference(t *testing.T) {
	c := Standard()
	src := rng.New(41)
	cases := []struct{ pd, pi, ps float64 }{
		{0, 0, 0},
		{0.02, 0, 0},
		{0, 0.02, 0},
		{0.01, 0.01, 0.01},
		{0.05, 0.05, 0.02},
		{0.1, 0.08, 0.05},
	}
	for i, tc := range cases {
		for trial := 0; trial < 6; trial++ {
			msg := make([]byte, 40+src.Intn(40))
			for j := range msg {
				msg[j] = src.Bit()
			}
			recv := diChannel(t, c, msg, tc.pd, tc.pi, tc.ps, uint64(1000*i+trial))
			p := DriftParams{Pd: tc.pd, Pi: tc.pi, Ps: tc.ps, MaxDrift: 12}
			got, gotErr := c.DecodeDrift(recv, len(msg), p)
			want, wantErr := c.DecodeDriftReference(recv, len(msg), p)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("case %d trial %d: error mismatch: %v vs %v", i, trial, gotErr, wantErr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("case %d trial %d: decoded message differs from reference", i, trial)
			}
		}
	}
}

// TestDecodeSequentialMatchesReference checks the arena/memo stack
// decoder against the reference: identical message, identical expansion
// count (the pop order must match, so ties in the heap must resolve the
// same way), identical failures.
func TestDecodeSequentialMatchesReference(t *testing.T) {
	c := Standard()
	src := rng.New(43)
	cases := []struct{ pd, pi, ps float64 }{
		{0, 0, 0},
		{0.02, 0, 0},
		{0, 0.02, 0},
		{0.01, 0.01, 0.01},
		{0.06, 0.04, 0.03},
		{0.12, 0.1, 0.06}, // hostile: exercises the work-limit path
	}
	for i, tc := range cases {
		for trial := 0; trial < 6; trial++ {
			msg := make([]byte, 40+src.Intn(40))
			for j := range msg {
				msg[j] = src.Bit()
			}
			recv := diChannel(t, c, msg, tc.pd, tc.pi, tc.ps, uint64(2000*i+trial))
			p := SequentialParams{Pd: tc.pd, Pi: tc.pi, Ps: tc.ps, MaxDrift: 12}
			got, gotExp, gotErr := c.DecodeSequential(recv, len(msg), p)
			want, wantExp, wantErr := c.DecodeSequentialReference(recv, len(msg), p)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("case %d trial %d: error mismatch: %v vs %v", i, trial, gotErr, wantErr)
			}
			if gotExp != wantExp {
				t.Fatalf("case %d trial %d: expansions %d != reference %d", i, trial, gotExp, wantExp)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("case %d trial %d: decoded message differs from reference", i, trial)
			}
		}
	}
}

// TestDecodeScratchReuse reruns the same decode back-to-back so the
// second call sees a dirty pooled scratch; results must not change.
func TestDecodeScratchReuse(t *testing.T) {
	c := Standard()
	src := rng.New(47)
	msg := make([]byte, 64)
	for j := range msg {
		msg[j] = src.Bit()
	}
	recv := diChannel(t, c, msg, 0.03, 0.02, 0.01, 99)
	dp := DriftParams{Pd: 0.03, Pi: 0.02, Ps: 0.01, MaxDrift: 12}
	sp := SequentialParams{Pd: 0.03, Pi: 0.02, Ps: 0.01, MaxDrift: 12}

	d1, err1 := c.DecodeDrift(recv, len(msg), dp)
	s1, e1, serr1 := c.DecodeSequential(recv, len(msg), sp)
	// Interleave a decode with different geometry to dirty the buffers.
	other := diChannel(t, c, msg[:20], 0.1, 0.1, 0.05, 7)
	c.DecodeDrift(other, 20, DriftParams{Pd: 0.1, Pi: 0.1, Ps: 0.05, MaxDrift: 8})
	c.DecodeSequential(other, 20, SequentialParams{Pd: 0.1, Pi: 0.1, Ps: 0.05, MaxDrift: 8})

	d2, err2 := c.DecodeDrift(recv, len(msg), dp)
	s2, e2, serr2 := c.DecodeSequential(recv, len(msg), sp)
	if (err1 == nil) != (err2 == nil) || !bytes.Equal(d1, d2) {
		t.Fatalf("drift decode changed across scratch reuse")
	}
	if (serr1 == nil) != (serr2 == nil) || e1 != e2 || !bytes.Equal(s1, s2) {
		t.Fatalf("sequential decode changed across scratch reuse")
	}
}
