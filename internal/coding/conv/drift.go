package conv

import (
	"fmt"
	"math"
)

// DriftParams configures the deletion–insertion Viterbi decoder.
type DriftParams struct {
	// Pd, Pi, Ps are the Definition 1 channel parameters at bit level
	// (Ps is the flip probability of a transmitted bit).
	Pd, Pi, Ps float64
	// MaxDrift bounds |received - transmitted| position offset tracked
	// by the decoder. It must cover the realized drift; 3–4 standard
	// deviations of the drift random walk is a good choice.
	MaxDrift int
	// MaxInsertionsPerBit caps consecutive insertions considered
	// before each coded bit (default 2 when 0).
	MaxInsertionsPerBit int
}

// validate checks the parameters.
func (p DriftParams) validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{{"Pd", p.Pd}, {"Pi", p.Pi}, {"Ps", p.Ps}} {
		if v.val < 0 || v.val > 1 {
			return fmt.Errorf("conv: %s = %v out of [0,1]", v.name, v.val)
		}
	}
	if p.Pd+p.Pi >= 1 {
		return fmt.Errorf("conv: Pd + Pi = %v must be < 1", p.Pd+p.Pi)
	}
	if p.MaxDrift < 0 || p.MaxDrift > 512 {
		return fmt.Errorf("conv: MaxDrift %d out of [0,512]", p.MaxDrift)
	}
	if p.MaxInsertionsPerBit < 0 {
		return fmt.Errorf("conv: negative insertion cap")
	}
	return nil
}

// negLog returns -ln(p) with a floor so impossible events stay finite
// but strongly disfavoured (keeps the trellis connected under model
// mismatch).
func negLog(p float64) float64 {
	const floor = 1e-12
	if p < floor {
		p = floor
	}
	return -math.Log(p)
}

// driftHop records one traceback step of the drift trellis.
type driftHop struct {
	prevState uint32
	prevDrift int16
	bit       byte
	ok        bool
}

// DecodeDrift decodes a received bit stream that passed through a
// binary deletion–insertion channel, jointly estimating the message and
// the drift trajectory by Viterbi search over (encoder state, drift).
// msgLen is the number of message bits (the encoder appended K-1 flush
// bits). It returns the most likely message, or an error if no path is
// consistent with the drift bound.
//
// The trellis sweep runs on pooled buffers (double-buffered columns, a
// flat predecessor slab) and memoizes the per-branch inner DP: its exit
// vector depends only on (coded chunk, entry drift) within a step, so
// the several (state, bit) pairs emitting the same chunk share one DP.
// Results are bit-identical to DecodeDriftReference.
func (c *Code) DecodeDrift(recv []byte, msgLen int, p DriftParams) ([]byte, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if msgLen < 1 {
		return nil, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	insCap := p.MaxInsertionsPerBit
	if insCap == 0 {
		insCap = 2
	}
	var (
		n     = len(c.gens)
		steps = msgLen + c.k - 1
		sent  = steps * n
		ns    = c.numStates()
		D     = p.MaxDrift
		nd    = 2*D + 1
	)
	finalDrift := len(recv) - sent
	if finalDrift < -D || finalDrift > D {
		return nil, fmt.Errorf("conv: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	pt := 1 - p.Pd - p.Pi
	var (
		lDel      = negLog(p.Pd)
		lIns      = negLog(p.Pi * 0.5)
		lMatch    = negLog(pt * (1 - p.Ps))
		lMismatch = negLog(pt * p.Ps)
	)

	sc := scratchPool.Get().(*decodeScratch)
	defer scratchPool.Put(sc)
	nextTab, chunkTab, keyTab := sc.encoderTables(c)

	inf := math.Inf(1)
	cost := growFloat(&sc.cost, ns*nd)
	for i := range cost {
		cost[i] = inf
	}
	cost[0*nd+D] = 0 // state 0, drift 0
	pred := growHop(&sc.pred, steps*ns*nd)

	// Inner DP scratch: gamma row j, slot dd+ddMax over local drift dd
	// with one extra slot per allowed insertion.
	ddMax := n + insCap
	gw := 2*ddMax + 1
	gamma := growFloat(&sc.gamma, (n+1)*gw)

	// computeExit runs the inner DP over the n coded bits of one branch,
	// leaving the exit-drift cost vector in gamma's last row.
	computeExit := func(base, d int, chunk []byte) []float64 {
		for i := range gamma {
			gamma[i] = inf
		}
		gamma[ddMax] = 0
		for j := 0; j < n; j++ {
			row := gamma[j*gw : j*gw+gw : (j+1)*gw]
			down := gamma[(j+1)*gw : (j+1)*gw+gw : (j+2)*gw]
			cb := chunk[j]
			// Ascending dd so insertion self-loops resolve.
			for g := 0; g < gw; g++ {
				cur := row[g]
				if math.IsInf(cur, 1) {
					continue
				}
				dd := g - ddMax
				idx := base + j + d + dd // next received bit
				// Insertion before coded bit j.
				if dd < insCap+j+1 && g+1 < gw && idx >= 0 && idx < len(recv) &&
					d+dd+1 <= D {
					if v := cur + lIns; v < row[g+1] {
						row[g+1] = v
					}
				}
				// Deletion of coded bit j.
				if g-1 >= 0 && d+dd-1 >= -D {
					if v := cur + lDel; v < down[g-1] {
						down[g-1] = v
					}
				}
				// Transmission of coded bit j.
				if idx >= 0 && idx < len(recv) {
					l := lMatch
					if recv[idx] != cb {
						l = lMismatch
					}
					if v := cur + l; v < down[g] {
						down[g] = v
					}
				}
			}
		}
		return gamma[n*gw : n*gw+gw]
	}

	// Per-step branch memo keyed by (coded chunk, entry drift).
	memoOK := n <= memoChunkLimit
	nchunk := 0
	var exits []float64
	var have []bool
	if memoOK {
		nchunk = 1 << uint(n)
		exits = growFloat(&sc.exits, nchunk*nd*gw)
		have = growBool(&sc.have, nchunk*nd)
	}

	next := growFloat(&sc.next, ns*nd)
	for t := 0; t < steps; t++ {
		for i := range next {
			next[i] = inf
		}
		predT := pred[t*ns*nd : (t+1)*ns*nd]
		for i := range predT {
			predT[i] = driftHop{}
		}
		if memoOK {
			for i := range have {
				have[i] = false
			}
		}
		maxBit := byte(1)
		if t >= msgLen {
			maxBit = 0
		}
		base := t * n // transmitted bits before this step
		for s := 0; s < ns; s++ {
			for di := 0; di < nd; di++ {
				start := cost[s*nd+di]
				if math.IsInf(start, 1) {
					continue
				}
				d := di - D
				for b := byte(0); b <= maxBit; b++ {
					ti := s*2 + int(b)
					nextState := nextTab[ti]
					var exit []float64
					if memoOK {
						mi := int(keyTab[ti])*nd + di
						exit = exits[mi*gw : mi*gw+gw : mi*gw+gw]
						if !have[mi] {
							copy(exit, computeExit(base, d, chunkTab[ti*n:ti*n+n]))
							have[mi] = true
						}
					} else {
						exit = computeExit(base, d, chunkTab[ti*n:ti*n+n])
					}
					for g := 0; g < gw; g++ {
						branch := exit[g]
						if math.IsInf(branch, 1) {
							continue
						}
						dd := g - ddMax
						ndrift := d + dd
						if ndrift < -D || ndrift > D {
							continue
						}
						slot := int(nextState)*nd + (ndrift + D)
						if v := start + branch; v < next[slot] {
							next[slot] = v
							predT[slot] = driftHop{
								prevState: uint32(s),
								prevDrift: int16(d),
								bit:       b,
								ok:        true,
							}
						}
					}
				}
			}
		}
		cost, next = next, cost
	}

	finalSlot := 0*nd + (finalDrift + D)
	if math.IsInf(cost[finalSlot], 1) {
		return nil, fmt.Errorf("conv: no drift-trellis path reaches termination (raise MaxDrift?)")
	}
	msg := make([]byte, msgLen)
	state, drift := uint32(0), finalDrift
	for t := steps - 1; t >= 0; t-- {
		h := pred[t*ns*nd+int(state)*nd+(drift+D)]
		if !h.ok {
			return nil, fmt.Errorf("conv: drift traceback broke at step %d", t)
		}
		if t < msgLen {
			msg[t] = h.bit
		}
		state, drift = h.prevState, int(h.prevDrift)
	}
	return msg, nil
}
