package conv

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, []uint32{1, 1}); err == nil {
		t.Error("expected constraint length error")
	}
	if _, err := New(11, []uint32{1, 1}); err == nil {
		t.Error("expected constraint length error")
	}
	if _, err := New(3, []uint32{0b111}); err == nil {
		t.Error("expected generator count error")
	}
	if _, err := New(3, []uint32{0b111, 0}); err == nil {
		t.Error("expected zero generator error")
	}
	if _, err := New(3, []uint32{0b111, 0b1000}); err == nil {
		t.Error("expected generator width error")
	}
}

func TestStandardCodeProperties(t *testing.T) {
	c := Standard()
	if c.ConstraintLen() != 3 || c.OutputsPerBit() != 2 {
		t.Fatalf("K=%d n=%d", c.ConstraintLen(), c.OutputsPerBit())
	}
}

func TestEncodeKnownVector(t *testing.T) {
	// (7,5) code, input 1011: classic textbook output with flush.
	c := Standard()
	got, err := c.Encode([]byte{1, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed: state register [current, s1, s0], g0=111, g1=101.
	// in=1: reg=100 out=(1,1) state=10
	// in=0: reg=010 out=(1,0) state=01
	// in=1: reg=101 out=(0,0) state=10
	// in=1: reg=110 out=(0,1) state=11
	// flush 0: reg=011 out=(0,1) state=01
	// flush 0: reg=001 out=(1,1) state=00
	want := []byte{1, 1, 1, 0, 0, 0, 0, 1, 0, 1, 1, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("Encode = %v, want %v", got, want)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Standard().Encode([]byte{0, 2}); err == nil {
		t.Fatal("expected bit error")
	}
}

func TestViterbiNoErrors(t *testing.T) {
	c := Standard()
	src := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		msg := randomBits(src, 64)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeViterbi(cw, len(msg))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: clean decode mismatch", trial)
		}
	}
}

func TestViterbiCorrectsScatteredErrors(t *testing.T) {
	// The (7,5) code has free distance 5: any 2 errors in one
	// constraint span are correctable; scattered 4% errors decode.
	c := Standard()
	src := rng.New(2)
	ok := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		msg := randomBits(src, 128)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		recv := append([]byte(nil), cw...)
		for i := range recv {
			if src.Bool(0.02) {
				recv[i] ^= 1
			}
		}
		got, err := c.DecodeViterbi(recv, len(msg))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(got, msg) {
			ok++
		}
	}
	if ok < trials*8/10 {
		t.Fatalf("only %d/%d noisy decodes succeeded", ok, trials)
	}
}

func TestViterbiValidation(t *testing.T) {
	c := Standard()
	if _, err := c.DecodeViterbi(make([]byte, 10), 0); err == nil {
		t.Error("expected message length error")
	}
	if _, err := c.DecodeViterbi(make([]byte, 9), 4); err == nil {
		t.Error("expected received length error")
	}
	bad := make([]byte, 12)
	bad[0] = 3
	if _, err := c.DecodeViterbi(bad, 4); err == nil {
		t.Error("expected bit error")
	}
}

func TestLongerConstraintCode(t *testing.T) {
	// K=5 (23, 35 octal) code round trip.
	c, err := New(5, []uint32{0o23, 0o35})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	msg := randomBits(src, 100)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeViterbi(cw, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("K=5 clean decode mismatch")
	}
}

func randomBits(src *rng.Source, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = src.Bit()
	}
	return out
}
