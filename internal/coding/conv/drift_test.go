package conv

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func TestDriftParamsValidation(t *testing.T) {
	c := Standard()
	recv := make([]byte, 20)
	tests := []struct {
		name string
		p    DriftParams
	}{
		{"bad pd", DriftParams{Pd: -0.1, MaxDrift: 4}},
		{"bad pi", DriftParams{Pi: 1.1, MaxDrift: 4}},
		{"bad ps", DriftParams{Ps: 2, MaxDrift: 4}},
		{"sum", DriftParams{Pd: 0.6, Pi: 0.5, MaxDrift: 4}},
		{"drift", DriftParams{Pd: 0.1, MaxDrift: -1}},
		{"inscap", DriftParams{Pd: 0.1, MaxDrift: 4, MaxInsertionsPerBit: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := c.DecodeDrift(recv, 8, tt.p); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
	if _, err := c.DecodeDrift(recv, 0, DriftParams{Pd: 0.1, MaxDrift: 4}); err == nil {
		t.Error("expected message length error")
	}
	if _, err := c.DecodeDrift([]byte{2}, 8, DriftParams{Pd: 0.1, MaxDrift: 4}); err == nil {
		t.Error("expected bit error")
	}
}

func TestDecodeDriftCleanChannel(t *testing.T) {
	c := Standard()
	src := rng.New(1)
	msg := randomBits(src, 64)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DecodeDrift(cw, len(msg), DriftParams{Pd: 0.01, Pi: 0.01, MaxDrift: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean drift decode mismatch")
	}
}

func TestDecodeDriftSingleDeletion(t *testing.T) {
	c := Standard()
	src := rng.New(2)
	msg := randomBits(src, 48)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, del := range []int{0, 17, len(cw) - 1} {
		recv := append(append([]byte(nil), cw[:del]...), cw[del+1:]...)
		got, err := c.DecodeDrift(recv, len(msg), DriftParams{Pd: 0.02, Pi: 0.01, MaxDrift: 4})
		if err != nil {
			t.Fatalf("del at %d: %v", del, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("del at %d: wrong message", del)
		}
	}
}

func TestDecodeDriftSingleInsertion(t *testing.T) {
	c := Standard()
	src := rng.New(3)
	msg := randomBits(src, 48)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range []int{0, 25, len(cw)} {
		recv := append([]byte(nil), cw[:ins]...)
		recv = append(recv, 1)
		recv = append(recv, cw[ins:]...)
		got, err := c.DecodeDrift(recv, len(msg), DriftParams{Pd: 0.01, Pi: 0.02, MaxDrift: 4})
		if err != nil {
			t.Fatalf("ins at %d: %v", ins, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("ins at %d: wrong message", ins)
		}
	}
}

func TestDecodeDriftOverChannel(t *testing.T) {
	// End-to-end over the Definition 1 binary channel at low event
	// rates: most frames decode exactly.
	c := Standard()
	src := rng.New(4)
	p := DriftParams{Pd: 0.004, Pi: 0.004, MaxDrift: 10}
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		msg := randomBits(src, 96)
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := channel.NewBinaryDI(p.Pd, p.Pi, 0, rng.New(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		recv, err := ch.Transmit(cw)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeDrift(recv, len(msg), p)
		if err != nil {
			continue
		}
		if bytes.Equal(got, msg) {
			ok++
		}
	}
	if ok < trials*6/10 {
		t.Fatalf("only %d/%d frames decoded over DI channel", ok, trials)
	}
}

func TestDecodeDriftWithSubstitutions(t *testing.T) {
	c := Standard()
	src := rng.New(5)
	msg := randomBits(src, 64)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]byte(nil), cw...)
	recv[10] ^= 1
	recv[60] ^= 1
	got, err := c.DecodeDrift(recv, len(msg), DriftParams{Pd: 0.01, Pi: 0.01, Ps: 0.02, MaxDrift: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("substitution drift decode mismatch")
	}
}

func TestDecodeDriftExceedsWindow(t *testing.T) {
	c := Standard()
	src := rng.New(6)
	msg := randomBits(src, 32)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop 6 bits with a window of 2: realized drift exceeds bound.
	recv := cw[:len(cw)-6]
	if _, err := c.DecodeDrift(recv, len(msg), DriftParams{Pd: 0.1, MaxDrift: 2}); err == nil {
		t.Fatal("expected drift bound error")
	}
}

func TestDecodeDriftMatchesViterbiOnSyncChannel(t *testing.T) {
	// With no deletions/insertions the drift decoder must agree with
	// the synchronous Viterbi decoder.
	c := Standard()
	src := rng.New(7)
	msg := randomBits(src, 80)
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	recv := append([]byte(nil), cw...)
	recv[5] ^= 1
	recv[40] ^= 1
	a, err := c.DecodeViterbi(recv, len(msg))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.DecodeDrift(recv, len(msg), DriftParams{Ps: 0.02, MaxDrift: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("drift and synchronous decoders disagree on a synchronous channel")
	}
}
