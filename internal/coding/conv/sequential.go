package conv

import (
	"container/heap"
	"fmt"
	"math"
)

// This file implements stack-algorithm sequential decoding over the
// joint (encoder state × drift) tree — the direct descendant of
// Zigangirov's sequential decoding for binary channels with drop-outs
// and insertions, the paper's reference [12]. Unlike the Viterbi
// decoder in drift.go, which explores the full trellis, the stack
// algorithm extends only the most promising path, visiting a tiny
// fraction of the tree at moderate noise at the cost of a work-limit
// failure mode at high noise (the classic sequential-decoding
// computational cutoff).

// seqNode is one partial path in the decoding tree.
type seqNode struct {
	metric float64 // Fano-style metric: log2 prob - bias*depth
	step   int     // input bits decoded
	state  uint32
	drift  int
	parent *seqNode
	bit    byte
	index  int // heap bookkeeping
}

// seqHeap is a max-heap on the metric.
type seqHeap []*seqNode

func (h seqHeap) Len() int           { return len(h) }
func (h seqHeap) Less(i, j int) bool { return h[i].metric > h[j].metric }
func (h seqHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *seqHeap) Push(x any)        { n := x.(*seqNode); n.index = len(*h); *h = append(*h, n) }
func (h *seqHeap) Pop() any {
	old := *h
	n := len(old)
	node := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return node
}

// SequentialParams configures the sequential decoder.
type SequentialParams struct {
	// Channel model, as for DecodeDrift.
	Pd, Pi, Ps float64
	// MaxDrift bounds the tracked drift.
	MaxDrift int
	// MaxExpansions caps the number of node expansions before the
	// decoder gives up (the sequential-decoding erasure event);
	// 0 defaults to 200 per message bit.
	MaxExpansions int
}

// validate checks the parameters.
func (p SequentialParams) validate() error {
	d := DriftParams{Pd: p.Pd, Pi: p.Pi, Ps: p.Ps, MaxDrift: p.MaxDrift}
	if err := d.validate(); err != nil {
		return err
	}
	if p.MaxExpansions < 0 {
		return fmt.Errorf("conv: negative expansion cap")
	}
	return nil
}

// DecodeSequential decodes a received stream from a binary
// deletion–insertion channel with the stack algorithm. It returns the
// decoded message and the number of node expansions performed, or an
// error when the work limit is hit before reaching a terminated path
// (a decoding erasure) or no path is drift-consistent.
func (c *Code) DecodeSequential(recv []byte, msgLen int, p SequentialParams) ([]byte, int, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	if msgLen < 1 {
		return nil, 0, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, 0, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	var (
		n     = len(c.gens)
		steps = msgLen + c.k - 1
		sent  = steps * n
		D     = p.MaxDrift
	)
	finalDrift := len(recv) - sent
	if finalDrift < -D || finalDrift > D {
		return nil, 0, fmt.Errorf("conv: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	maxExp := p.MaxExpansions
	if maxExp == 0 {
		maxExp = 200 * msgLen
	}

	pt := 1 - p.Pd - p.Pi
	var (
		lDel      = negLog(p.Pd) / math.Ln2
		lIns      = negLog(p.Pi*0.5) / math.Ln2
		lMatch    = negLog(pt*(1-p.Ps)) / math.Ln2
		lMismatch = negLog(pt*p.Ps) / math.Ln2
	)
	// Fano bias: the expected per-coded-bit cost of the *correct* path,
	// so the true path's metric performs a near-zero-drift random walk
	// while wrong paths drift downward.
	bias := p.Pd*lDel + p.Pi*lIns + pt*((1-p.Ps)*lMatch+p.Ps*lMismatch)
	bias *= 1 + p.Pi // insertions add events beyond one per coded bit

	// branchCost computes, for one input bit's n coded bits starting at
	// transmitted position base with entry drift d, the minimum cost to
	// each exit drift (the same inner DP as DecodeDrift, min-cost
	// variant).
	ddMax := n + 2
	gw := 2*ddMax + 1
	gamma := make([][]float64, n+1)
	for j := range gamma {
		gamma[j] = make([]float64, gw)
	}
	chunk := make([]byte, n)
	inf := math.Inf(1)
	branchCost := func(base, d int, state uint32, b byte) (uint32, []float64) {
		next := c.stepInto(chunk, state, b)
		for j := range gamma {
			for g := range gamma[j] {
				gamma[j][g] = inf
			}
		}
		gamma[0][ddMax] = 0
		for j := 0; j < n; j++ {
			for g := 0; g < gw; g++ {
				cur := gamma[j][g]
				if math.IsInf(cur, 1) {
					continue
				}
				dd := g - ddMax
				idx := base + j + d + dd
				if g+1 < gw && idx >= 0 && idx < len(recv) && d+dd+1 <= D {
					if v := cur + lIns; v < gamma[j][g+1] {
						gamma[j][g+1] = v
					}
				}
				if g-1 >= 0 && d+dd-1 >= -D {
					if v := cur + lDel; v < gamma[j+1][g-1] {
						gamma[j+1][g-1] = v
					}
				}
				if idx >= 0 && idx < len(recv) {
					l := lMatch
					if recv[idx] != chunk[j] {
						l = lMismatch
					}
					if v := cur + l; v < gamma[j+1][g] {
						gamma[j+1][g] = v
					}
				}
			}
		}
		return next, gamma[n]
	}

	var stack seqHeap
	heap.Push(&stack, &seqNode{drift: 0})
	expansions := 0
	for stack.Len() > 0 {
		node := heap.Pop(&stack).(*seqNode)
		if node.step == steps {
			if node.state != 0 || node.drift != finalDrift {
				continue // mis-terminated path
			}
			// Reconstruct the message from the parent chain.
			msg := make([]byte, msgLen)
			for cur := node; cur.parent != nil; cur = cur.parent {
				if cur.step-1 < msgLen {
					msg[cur.step-1] = cur.bit
				}
			}
			return msg, expansions, nil
		}
		expansions++
		if expansions > maxExp {
			return nil, expansions, fmt.Errorf("conv: sequential decoder hit the work limit (%d expansions)", maxExp)
		}
		maxBit := byte(1)
		if node.step >= msgLen {
			maxBit = 0 // flush bits
		}
		base := node.step * n
		for b := byte(0); b <= maxBit; b++ {
			nextState, exit := branchCost(base, node.drift, node.state, b)
			for g, cost := range exit {
				if math.IsInf(cost, 1) {
					continue
				}
				nd := node.drift + g - ddMax
				if nd < -D || nd > D {
					continue
				}
				heap.Push(&stack, &seqNode{
					metric: node.metric - cost + bias*float64(n),
					step:   node.step + 1,
					state:  nextState,
					drift:  nd,
					parent: node,
					bit:    b,
				})
			}
		}
	}
	return nil, expansions, fmt.Errorf("conv: no drift-consistent path found")
}
