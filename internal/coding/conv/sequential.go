package conv

import (
	"fmt"
	"math"
)

// This file implements stack-algorithm sequential decoding over the
// joint (encoder state × drift) tree — the direct descendant of
// Zigangirov's sequential decoding for binary channels with drop-outs
// and insertions, the paper's reference [12]. Unlike the Viterbi
// decoder in drift.go, which explores the full trellis, the stack
// algorithm extends only the most promising path, visiting a tiny
// fraction of the tree at moderate noise at the cost of a work-limit
// failure mode at high noise (the classic sequential-decoding
// computational cutoff).
//
// The hot loop is organized around three ideas (results stay
// bit-identical to DecodeSequentialReference):
//   - nodes live in a pooled arena addressed by index, so expanding a
//     path appends a value instead of allocating, and parent links
//     survive arena growth;
//   - the agenda is an inline max-heap of (metric, node index) pairs
//     replicating container/heap's sift order exactly;
//   - the per-branch inner DP depends only on (step, entry drift,
//     coded chunk), so its exit vector is memoized on that key — the
//     stack revisits the same (step, drift) region through many paths
//     and the second visit costs two loads.

// seqNode is one partial path in the decoding tree, addressed by index
// into the pooled arena.
type seqNode struct {
	metric float64 // Fano-style metric: log2 prob - bias*depth
	step   int32   // input bits decoded
	state  uint32
	drift  int16
	parent int32 // arena index of the parent, -1 at the root
	bit    byte
}

// SequentialParams configures the sequential decoder.
type SequentialParams struct {
	// Channel model, as for DecodeDrift.
	Pd, Pi, Ps float64
	// MaxDrift bounds the tracked drift.
	MaxDrift int
	// MaxExpansions caps the number of node expansions before the
	// decoder gives up (the sequential-decoding erasure event);
	// 0 defaults to 200 per message bit.
	MaxExpansions int
}

// validate checks the parameters.
func (p SequentialParams) validate() error {
	d := DriftParams{Pd: p.Pd, Pi: p.Pi, Ps: p.Ps, MaxDrift: p.MaxDrift}
	if err := d.validate(); err != nil {
		return err
	}
	if p.MaxExpansions < 0 {
		return fmt.Errorf("conv: negative expansion cap")
	}
	return nil
}

// DecodeSequential decodes a received stream from a binary
// deletion–insertion channel with the stack algorithm. It returns the
// decoded message and the number of node expansions performed, or an
// error when the work limit is hit before reaching a terminated path
// (a decoding erasure) or no path is drift-consistent.
func (c *Code) DecodeSequential(recv []byte, msgLen int, p SequentialParams) ([]byte, int, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	if msgLen < 1 {
		return nil, 0, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, 0, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	var (
		n     = len(c.gens)
		steps = msgLen + c.k - 1
		sent  = steps * n
		D     = p.MaxDrift
	)
	finalDrift := len(recv) - sent
	if finalDrift < -D || finalDrift > D {
		return nil, 0, fmt.Errorf("conv: realized drift %d exceeds MaxDrift %d", finalDrift, D)
	}
	maxExp := p.MaxExpansions
	if maxExp == 0 {
		maxExp = 200 * msgLen
	}

	pt := 1 - p.Pd - p.Pi
	var (
		lDel      = negLog(p.Pd) / math.Ln2
		lIns      = negLog(p.Pi*0.5) / math.Ln2
		lMatch    = negLog(pt*(1-p.Ps)) / math.Ln2
		lMismatch = negLog(pt*p.Ps) / math.Ln2
	)
	// Fano bias: the expected per-coded-bit cost of the *correct* path,
	// so the true path's metric performs a near-zero-drift random walk
	// while wrong paths drift downward.
	bias := p.Pd*lDel + p.Pi*lIns + pt*((1-p.Ps)*lMatch+p.Ps*lMismatch)
	bias *= 1 + p.Pi // insertions add events beyond one per coded bit

	sc := scratchPool.Get().(*decodeScratch)
	nextTab, chunkTab, keyTab := sc.encoderTables(c)

	// Inner DP geometry, as in the reference branchCost.
	ddMax := n + 2
	gw := 2*ddMax + 1
	gamma := growFloat(&sc.gamma, (n+1)*gw)
	inf := math.Inf(1)

	// computeExit runs the inner DP for one input bit's n coded bits
	// starting at transmitted position base with entry drift d, writing
	// the minimum cost to each exit drift into gamma's last row.
	computeExit := func(base, d int, chunk []byte) []float64 {
		for i := range gamma {
			gamma[i] = inf
		}
		gamma[ddMax] = 0
		for j := 0; j < n; j++ {
			row := gamma[j*gw : j*gw+gw : (j+1)*gw]
			down := gamma[(j+1)*gw : (j+1)*gw+gw : (j+2)*gw]
			cb := chunk[j]
			for g := 0; g < gw; g++ {
				cur := row[g]
				if math.IsInf(cur, 1) {
					continue
				}
				dd := g - ddMax
				idx := base + j + d + dd
				if g+1 < gw && idx >= 0 && idx < len(recv) && d+dd+1 <= D {
					if v := cur + lIns; v < row[g+1] {
						row[g+1] = v
					}
				}
				if g-1 >= 0 && d+dd-1 >= -D {
					if v := cur + lDel; v < down[g-1] {
						down[g-1] = v
					}
				}
				if idx >= 0 && idx < len(recv) {
					l := lMatch
					if recv[idx] != cb {
						l = lMismatch
					}
					if v := cur + l; v < down[g] {
						down[g] = v
					}
				}
			}
		}
		return gamma[n*gw : n*gw+gw]
	}

	// Branch-metric memo keyed by (step, coded chunk, entry drift).
	nd := 2*D + 1
	memoOK := n <= memoChunkLimit
	var exits []float64
	var have []bool
	nchunk := 0
	if memoOK {
		nchunk = 1 << uint(n)
		exits = growFloat(&sc.exits, steps*nchunk*nd*gw)
		have = growBool(&sc.have, steps*nchunk*nd)
		for i := range have {
			have[i] = false
		}
	}
	branchExit := func(step, d int, s uint32, b byte) (uint32, []float64) {
		ti := int(s)*2 + int(b)
		chunk := chunkTab[ti*n : ti*n+n]
		if !memoOK {
			return nextTab[ti], computeExit(step*n, d, chunk)
		}
		mi := (step*nchunk+int(keyTab[ti]))*nd + (d + D)
		slot := exits[mi*gw : mi*gw+gw : mi*gw+gw]
		if !have[mi] {
			copy(slot, computeExit(step*n, d, chunk))
			have[mi] = true
		}
		return nextTab[ti], slot
	}

	nodes := sc.nodes[:0]
	hp := sc.heap[:0]
	defer func() {
		sc.nodes = nodes[:0]
		sc.heap = hp[:0]
		scratchPool.Put(sc)
	}()

	nodes = append(nodes, seqNode{parent: -1})
	heapPush(&hp, heapEntry{metric: 0, idx: 0})
	expansions := 0
	for len(hp) > 0 {
		e := heapPop(&hp)
		node := nodes[e.idx] // copy: the arena may grow while expanding
		if int(node.step) == steps {
			if node.state != 0 || int(node.drift) != finalDrift {
				continue // mis-terminated path
			}
			// Reconstruct the message from the parent chain.
			msg := make([]byte, msgLen)
			for cur := node; cur.parent >= 0; cur = nodes[cur.parent] {
				if int(cur.step)-1 < msgLen {
					msg[cur.step-1] = cur.bit
				}
			}
			return msg, expansions, nil
		}
		expansions++
		if expansions > maxExp {
			return nil, expansions, fmt.Errorf("conv: sequential decoder hit the work limit (%d expansions)", maxExp)
		}
		maxBit := byte(1)
		if int(node.step) >= msgLen {
			maxBit = 0 // flush bits
		}
		for b := byte(0); b <= maxBit; b++ {
			nextState, exit := branchExit(int(node.step), int(node.drift), node.state, b)
			for g, cost := range exit {
				if math.IsInf(cost, 1) {
					continue
				}
				ndrift := int(node.drift) + g - ddMax
				if ndrift < -D || ndrift > D {
					continue
				}
				metric := node.metric - cost + bias*float64(n)
				nodes = append(nodes, seqNode{
					metric: metric,
					step:   node.step + 1,
					state:  nextState,
					drift:  int16(ndrift),
					parent: e.idx,
					bit:    b,
				})
				heapPush(&hp, heapEntry{metric: metric, idx: int32(len(nodes) - 1)})
			}
		}
	}
	return nil, expansions, fmt.Errorf("conv: no drift-consistent path found")
}
