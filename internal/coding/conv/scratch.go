package conv

import "sync"

// This file holds the pooled decoder scratch shared by DecodeDrift and
// DecodeSequential: trellis/metric buffers, the branch-metric memo
// slabs, the sequential decoder's node arena and its inline max-heap.
// Both decoders are allocation-heavy in their original form (a fresh
// trellis column and predecessor slab per step, one heap node per
// expansion); pooling drops that to near-zero steady-state allocation
// without changing any computed value.

// decodeScratch is the reusable buffer set. A zero value is valid; the
// grow helpers (re)allocate on demand and decoders must not assume any
// buffer content survives between uses unless they cleared it.
type decodeScratch struct {
	gamma []float64 // inner-DP matrix, flat (n+1)×gw
	exits []float64 // branch-metric memo slab, rows of width gw
	have  []bool    // memo occupancy, parallel to exits rows
	cost  []float64 // drift-trellis column
	next  []float64 // drift-trellis next column (double buffer)
	pred  []driftHop

	nextTab  []uint32 // per-(state,bit) next encoder state
	chunkTab []byte   // per-(state,bit) coded output bits, rows of width n
	keyTab   []uint16 // per-(state,bit) coded output packed as an integer

	nodes []seqNode
	heap  []heapEntry
}

var scratchPool = sync.Pool{New: func() any { return new(decodeScratch) }}

func growFloat(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	return (*buf)[:n]
}

func growHop(buf *[]driftHop, n int) []driftHop {
	if cap(*buf) < n {
		*buf = make([]driftHop, n)
	}
	return (*buf)[:n]
}

// encoderTables precomputes, for every (state, input bit) pair, the
// next state, the n coded output bits, and those bits packed MSB-first
// into an integer key (the memo index). This replaces a stepInto call
// per visited branch with two table loads.
func (sc *decodeScratch) encoderTables(c *Code) (nextTab []uint32, chunkTab []byte, keyTab []uint16) {
	n := len(c.gens)
	ns := c.numStates()
	if cap(sc.nextTab) < ns*2 {
		sc.nextTab = make([]uint32, ns*2)
		sc.keyTab = make([]uint16, ns*2)
	}
	nextTab = sc.nextTab[:ns*2]
	keyTab = sc.keyTab[:ns*2]
	if cap(sc.chunkTab) < ns*2*n {
		sc.chunkTab = make([]byte, ns*2*n)
	}
	chunkTab = sc.chunkTab[:ns*2*n]
	for s := 0; s < ns; s++ {
		for b := 0; b < 2; b++ {
			ti := s*2 + b
			row := chunkTab[ti*n : ti*n+n]
			nextTab[ti] = c.stepInto(row, uint32(s), byte(b))
			var key uint16
			for _, bit := range row {
				key = key<<1 | uint16(bit)
			}
			keyTab[ti] = key
		}
	}
	return nextTab, chunkTab, keyTab
}

// memoChunkLimit gates the branch-metric memo: the memo is indexed by
// the packed coded chunk, so it only pays off (and fits) for small n.
// Beyond the limit decoders recompute each branch, which is exactly the
// reference behavior.
const memoChunkLimit = 8

// heapEntry is one element of the sequential decoder's inline max-heap:
// the node's metric (the sort key, copied here to avoid a pointer chase
// per comparison) and its index in the node arena.
type heapEntry struct {
	metric float64
	idx    int32
}

// heapPush and heapPop replicate container/heap's sift algorithms
// exactly (Less being "greater metric"), so the pop order — including
// tie resolution, which depends on element positions — is identical to
// the retained reference decoder's container/heap usage.
func heapPush(h *[]heapEntry, e heapEntry) {
	*h = append(*h, e)
	hp := *h
	j := len(hp) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(hp[j].metric > hp[i].metric) {
			break
		}
		hp[i], hp[j] = hp[j], hp[i]
		j = i
	}
}

func heapPop(h *[]heapEntry) heapEntry {
	hp := *h
	last := len(hp) - 1
	hp[0], hp[last] = hp[last], hp[0]
	heapDown(hp[:last])
	e := hp[last]
	*h = hp[:last]
	return e
}

func heapDown(hp []heapEntry) {
	n := len(hp)
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && hp[j2].metric > hp[j1].metric {
			j = j2
		}
		if !(hp[j].metric > hp[i].metric) {
			break
		}
		hp[i], hp[j] = hp[j], hp[i]
		i = j
	}
}
