// Package conv implements rate-1/n binary convolutional codes with two
// decoders: the classic synchronous Viterbi decoder for substitution
// channels, and a joint (encoder-state × drift) Viterbi decoder for
// deletion–insertion channels. The latter is the modern dynamic-
// programming rendering of Zigangirov's sequential decoding for
// channels with drop-outs and insertions, the paper's reference [12].
package conv

import (
	"fmt"
	"math"
	"math/bits"
)

// Code is a rate-1/n convolutional code with constraint length K: each
// input bit emits len(gens) coded bits computed from the last K input
// bits. Generator masks are K bits wide with the current input at the
// most significant bit.
type Code struct {
	k    int
	gens []uint32
}

// New returns a code with the given constraint length and generator
// masks. K must lie in [2, 10] (states = 2^(K-1)) and each generator
// must be a non-zero K-bit mask.
func New(constraintLen int, gens []uint32) (*Code, error) {
	if constraintLen < 2 || constraintLen > 10 {
		return nil, fmt.Errorf("conv: constraint length %d out of [2,10]", constraintLen)
	}
	if len(gens) < 2 {
		return nil, fmt.Errorf("conv: need at least 2 generators, got %d", len(gens))
	}
	limit := uint32(1) << uint(constraintLen)
	for i, g := range gens {
		if g == 0 || g >= limit {
			return nil, fmt.Errorf("conv: generator %d (%#o) not a non-zero %d-bit mask", i, g, constraintLen)
		}
	}
	return &Code{k: constraintLen, gens: append([]uint32(nil), gens...)}, nil
}

// Standard returns the ubiquitous K=3 (7,5) code.
func Standard() *Code {
	c, err := New(3, []uint32{0b111, 0b101})
	if err != nil {
		panic("conv: standard code construction failed: " + err.Error())
	}
	return c
}

// ConstraintLen returns K.
func (c *Code) ConstraintLen() int { return c.k }

// OutputsPerBit returns the number of coded bits per input bit.
func (c *Code) OutputsPerBit() int { return len(c.gens) }

// numStates returns 2^(K-1).
func (c *Code) numStates() int { return 1 << uint(c.k-1) }

// step returns the coded bits and next state for (state, input bit).
// The register is [input, state] with input at the MSB.
func (c *Code) step(state uint32, bit byte) (out []byte, next uint32) {
	reg := uint32(bit&1)<<uint(c.k-1) | state
	out = make([]byte, len(c.gens))
	for i, g := range c.gens {
		out[i] = byte(bits.OnesCount32(reg&g) & 1)
	}
	return out, reg >> 1
}

// stepInto writes the coded bits into dst (len(gens) entries) and
// returns the next state, avoiding per-branch allocation in decoders.
func (c *Code) stepInto(dst []byte, state uint32, bit byte) uint32 {
	reg := uint32(bit&1)<<uint(c.k-1) | state
	for i, g := range c.gens {
		dst[i] = byte(bits.OnesCount32(reg&g) & 1)
	}
	return reg >> 1
}

// Encode convolutionally encodes the message and appends K-1 zero
// flush bits so the trellis terminates in state 0. The output length is
// (len(msg)+K-1) * OutputsPerBit().
func (c *Code) Encode(msg []byte) ([]byte, error) {
	for i, b := range msg {
		if b > 1 {
			return nil, fmt.Errorf("conv: message bit %d is %d, want 0 or 1", i, b)
		}
	}
	out := make([]byte, 0, (len(msg)+c.k-1)*len(c.gens))
	state := uint32(0)
	var chunk []byte
	for _, b := range msg {
		chunk, state = c.step(state, b)
		out = append(out, chunk...)
	}
	for i := 0; i < c.k-1; i++ {
		chunk, state = c.step(state, 0)
		out = append(out, chunk...)
	}
	return out, nil
}

// DecodeViterbi performs synchronous hard-decision Viterbi decoding of
// a received word of exactly the encoded length for msgLen message
// bits, assuming a substitution-only channel. It returns the most
// likely message.
func (c *Code) DecodeViterbi(recv []byte, msgLen int) ([]byte, error) {
	if msgLen < 1 {
		return nil, fmt.Errorf("conv: message length %d, want >= 1", msgLen)
	}
	steps := msgLen + c.k - 1
	if len(recv) != steps*len(c.gens) {
		return nil, fmt.Errorf("conv: received length %d, want %d", len(recv), steps*len(c.gens))
	}
	for i, b := range recv {
		if b > 1 {
			return nil, fmt.Errorf("conv: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	ns := c.numStates()
	const inf = math.MaxInt32
	cost := make([]int, ns)
	for s := 1; s < ns; s++ {
		cost[s] = inf
	}
	// pred[t][s] stores the input bit and previous state packed.
	type hop struct {
		prev uint32
		bit  byte
		ok   bool
	}
	pred := make([][]hop, steps)
	chunk := make([]byte, len(c.gens))
	for t := 0; t < steps; t++ {
		next := make([]int, ns)
		for i := range next {
			next[i] = inf
		}
		pred[t] = make([]hop, ns)
		maxBit := byte(1)
		if t >= msgLen {
			maxBit = 0 // flush bits are zero
		}
		for s := 0; s < ns; s++ {
			if cost[s] == inf {
				continue
			}
			for b := byte(0); b <= maxBit; b++ {
				nextState := c.stepInto(chunk, uint32(s), b)
				d := 0
				for j, cb := range chunk {
					if recv[t*len(c.gens)+j] != cb {
						d++
					}
				}
				if nc := cost[s] + d; nc < next[nextState] {
					next[nextState] = nc
					pred[t][nextState] = hop{prev: uint32(s), bit: b, ok: true}
				}
			}
		}
		cost = next
	}
	if cost[0] == inf {
		return nil, fmt.Errorf("conv: trellis termination unreachable")
	}
	// Trace back from state 0.
	msg := make([]byte, msgLen)
	state := uint32(0)
	for t := steps - 1; t >= 0; t-- {
		h := pred[t][state]
		if !h.ok {
			return nil, fmt.Errorf("conv: traceback broke at step %d", t)
		}
		if t < msgLen {
			msg[t] = h.bit
		}
		state = h.prev
	}
	return msg, nil
}
