package marker

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/rng"
)

func mustCode(t *testing.T, blockLen, maxDrift, maxErrors int) *Code {
	t.Helper()
	c, err := New(DefaultMarker(), blockLen, maxDrift, maxErrors)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomBlocks(src *rng.Source, count, blockLen int) [][]byte {
	blocks := make([][]byte, count)
	for i := range blocks {
		blk := make([]byte, blockLen)
		for j := range blk {
			blk[j] = src.Bit()
		}
		blocks[i] = blk
	}
	return blocks
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]byte{1, 0}, 8, 2, 0); err == nil {
		t.Error("expected short marker error")
	}
	if _, err := New([]byte{1, 0, 2}, 8, 2, 0); err == nil {
		t.Error("expected marker bit error")
	}
	if _, err := New(DefaultMarker(), 0, 2, 0); err == nil {
		t.Error("expected block length error")
	}
	if _, err := New(DefaultMarker(), 8, -1, 0); err == nil {
		t.Error("expected drift error")
	}
	if _, err := New(DefaultMarker(), 8, 2, 7); err == nil {
		t.Error("expected error budget error")
	}
}

func TestAccessors(t *testing.T) {
	c := mustCode(t, 13, 2, 1)
	if c.BlockLen() != 13 || c.FrameLen() != 20 {
		t.Fatalf("BlockLen=%d FrameLen=%d", c.BlockLen(), c.FrameLen())
	}
	if got := c.Overhead(); got != 7.0/20 {
		t.Fatalf("Overhead = %v", got)
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCode(t, 4, 2, 1)
	if _, err := c.Encode([][]byte{{1, 0}}); err == nil {
		t.Error("expected block length error")
	}
	if _, err := c.Encode([][]byte{{1, 0, 2, 0}}); err == nil {
		t.Error("expected bit error")
	}
}

func TestRoundTripNoiseless(t *testing.T) {
	c := mustCode(t, 16, 3, 1)
	src := rng.New(1)
	blocks := randomBlocks(src, 20, 16)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := c.Decode(stream, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range decoded {
		if blk.Erased || !bytes.Equal(blk.Bits, blocks[i]) {
			t.Fatalf("block %d mismatch (erased=%v)", i, blk.Erased)
		}
	}
}

func TestResyncAfterSingleDeletion(t *testing.T) {
	c := mustCode(t, 16, 3, 1)
	src := rng.New(2)
	blocks := randomBlocks(src, 10, 16)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one bit inside block 2's payload.
	del := 2*c.FrameLen() + len(DefaultMarker()) + 5
	mangled := append(append([]byte(nil), stream[:del]...), stream[del+1:]...)
	decoded, err := c.Decode(mangled, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks before the deletion are untouched; blocks after must have
	// re-synced on their markers.
	for i := 0; i < 2; i++ {
		if decoded[i].Erased || !bytes.Equal(decoded[i].Bits, blocks[i]) {
			t.Fatalf("pre-deletion block %d corrupted", i)
		}
	}
	for i := 3; i < 10; i++ {
		if decoded[i].Erased || !bytes.Equal(decoded[i].Bits, blocks[i]) {
			t.Fatalf("post-deletion block %d failed to resync", i)
		}
	}
}

func TestResyncAfterSingleInsertion(t *testing.T) {
	c := mustCode(t, 16, 3, 1)
	src := rng.New(3)
	blocks := randomBlocks(src, 10, 16)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	ins := 4*c.FrameLen() + len(DefaultMarker()) + 2
	mangled := append([]byte(nil), stream[:ins]...)
	mangled = append(mangled, 1)
	mangled = append(mangled, stream[ins:]...)
	decoded, err := c.Decode(mangled, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 10; i++ {
		if decoded[i].Erased || !bytes.Equal(decoded[i].Bits, blocks[i]) {
			t.Fatalf("post-insertion block %d failed to resync", i)
		}
	}
}

func TestLowRateChannelMostBlocksSurvive(t *testing.T) {
	// Integration: over a mild deletion-insertion channel the decoder
	// should recover a clear majority of blocks intact or erased —
	// never panic, and keep block count.
	c := mustCode(t, 16, 4, 1)
	src := rng.New(4)
	blocks := randomBlocks(src, 200, 16)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(0.002, 0.002, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(stream)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := c.Decode(recv, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 200 {
		t.Fatalf("decoded %d blocks, want 200", len(decoded))
	}
	good := 0
	for i, blk := range decoded {
		if !blk.Erased && bytes.Equal(blk.Bits, blocks[i]) {
			good++
		}
	}
	if good < 120 {
		t.Fatalf("only %d/200 blocks recovered over mild channel", good)
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	c := mustCode(t, 8, 2, 1)
	src := rng.New(6)
	blocks := randomBlocks(src, 5, 8)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the stream mid-way: later blocks become erasures, no panic.
	decoded, err := c.Decode(stream[:len(stream)/2], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 5 {
		t.Fatalf("decoded %d blocks, want 5", len(decoded))
	}
	if !decoded[4].Erased {
		t.Fatal("final block should be erased on truncated input")
	}
}

func TestDecodeValidation(t *testing.T) {
	c := mustCode(t, 8, 2, 1)
	if _, err := c.Decode([]byte{0, 1}, -1); err == nil {
		t.Error("expected block count error")
	}
	if _, err := c.Decode([]byte{0, 2}, 1); err == nil {
		t.Error("expected bit error")
	}
}

func TestDecodeEmptyStream(t *testing.T) {
	c := mustCode(t, 8, 2, 1)
	decoded, err := c.Decode(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range decoded {
		if !blk.Erased {
			t.Fatalf("block %d not erased on empty stream", i)
		}
	}
}

func TestMarkerWithSubstitutionTolerance(t *testing.T) {
	// A single flipped marker bit must still sync when maxErrors = 1.
	c := mustCode(t, 16, 2, 1)
	src := rng.New(7)
	blocks := randomBlocks(src, 3, 16)
	stream, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	stream[c.FrameLen()] ^= 1 // first bit of block 1's marker
	decoded, err := c.Decode(stream, 3)
	if err != nil {
		t.Fatal(err)
	}
	if decoded[1].Erased || !bytes.Equal(decoded[1].Bits, blocks[1]) {
		t.Fatal("marker substitution broke sync despite error budget")
	}
}
