// Package marker implements marker (comma) codes for channels with
// synchronization errors: the payload is framed into fixed-size blocks,
// each preceded by a known marker pattern, and the decoder re-acquires
// block boundaries by searching for the markers within a drift window.
// Blocks whose marker cannot be found are declared erasures, which an
// outer Reed–Solomon code can fill in — the classic low-tech
// alternative to watermark codes for the paper's Section 4.1 setting.
package marker

import (
	"fmt"
)

// DefaultMarker returns a 7-bit Barker-like pattern with a sharp
// autocorrelation peak, a good sync word.
func DefaultMarker() []byte { return []byte{1, 1, 1, 0, 0, 1, 0} }

// Code frames blocks of BlockLen payload bits behind a marker.
type Code struct {
	marker    []byte
	blockLen  int
	maxDrift  int
	maxErrors int
}

// New returns a marker code. maxDrift bounds how far (in bits) the
// decoder searches for each marker around its nominal position;
// maxErrors is the Hamming slack allowed when matching the marker.
func New(markerBits []byte, blockLen, maxDrift, maxErrors int) (*Code, error) {
	if len(markerBits) < 3 {
		return nil, fmt.Errorf("marker: marker length %d too short (need >= 3)", len(markerBits))
	}
	for i, b := range markerBits {
		if b > 1 {
			return nil, fmt.Errorf("marker: marker bit %d is %d, want 0 or 1", i, b)
		}
	}
	if blockLen < 1 {
		return nil, fmt.Errorf("marker: block length %d, want >= 1", blockLen)
	}
	if maxDrift < 0 {
		return nil, fmt.Errorf("marker: negative drift window %d", maxDrift)
	}
	if maxErrors < 0 || maxErrors >= len(markerBits) {
		return nil, fmt.Errorf("marker: marker error budget %d out of [0, %d)", maxErrors, len(markerBits))
	}
	return &Code{
		marker:    append([]byte(nil), markerBits...),
		blockLen:  blockLen,
		maxDrift:  maxDrift,
		maxErrors: maxErrors,
	}, nil
}

// BlockLen returns the payload bits per block.
func (c *Code) BlockLen() int { return c.blockLen }

// FrameLen returns the transmitted bits per block (marker + payload).
func (c *Code) FrameLen() int { return len(c.marker) + c.blockLen }

// Overhead returns the fractional rate loss of the framing.
func (c *Code) Overhead() float64 {
	return float64(len(c.marker)) / float64(c.FrameLen())
}

// Encode frames the blocks. Every block must have exactly BlockLen
// bits with binary elements.
func (c *Code) Encode(blocks [][]byte) ([]byte, error) {
	out := make([]byte, 0, len(blocks)*c.FrameLen())
	for i, blk := range blocks {
		if len(blk) != c.blockLen {
			return nil, fmt.Errorf("marker: block %d has %d bits, want %d", i, len(blk), c.blockLen)
		}
		for j, b := range blk {
			if b > 1 {
				return nil, fmt.Errorf("marker: block %d bit %d is %d, want 0 or 1", i, j, b)
			}
		}
		out = append(out, c.marker...)
		out = append(out, blk...)
	}
	return out, nil
}

// Block is one decoded payload block.
type Block struct {
	// Bits holds BlockLen payload bits (zero-filled when Erased).
	Bits []byte
	// Erased reports that the block's marker could not be acquired and
	// Bits are unreliable — treat the block as an erasure.
	Erased bool
}

// Decode re-frames a received bit stream into numBlocks blocks.
func (c *Code) Decode(recv []byte, numBlocks int) ([]Block, error) {
	if numBlocks < 0 {
		return nil, fmt.Errorf("marker: negative block count %d", numBlocks)
	}
	for i, b := range recv {
		if b > 1 {
			return nil, fmt.Errorf("marker: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	blocks := make([]Block, numBlocks)
	pos := 0 // nominal start of the next frame in recv
	for i := range blocks {
		start, ok := c.findMarker(recv, pos)
		if !ok {
			blocks[i] = Block{Bits: make([]byte, c.blockLen), Erased: true}
			pos += c.FrameLen()
			continue
		}
		payload := start + len(c.marker)
		bits := make([]byte, c.blockLen)
		n := copy(bits, safeSlice(recv, payload, payload+c.blockLen))
		blocks[i] = Block{Bits: bits, Erased: n < c.blockLen}
		pos = payload + c.blockLen
	}
	return blocks, nil
}

// findMarker searches for the marker around the nominal position,
// preferring the smallest drift, then the fewest bit errors.
func (c *Code) findMarker(recv []byte, nominal int) (int, bool) {
	bestPos, bestErrs := -1, c.maxErrors+1
	for d := 0; d <= c.maxDrift; d++ {
		for _, pos := range []int{nominal + d, nominal - d} {
			if pos < 0 || pos+len(c.marker) > len(recv) {
				continue
			}
			errs := 0
			for j, mb := range c.marker {
				if recv[pos+j]&1 != mb {
					errs++
					if errs > c.maxErrors {
						break
					}
				}
			}
			if errs < bestErrs {
				bestPos, bestErrs = pos, errs
				if errs == 0 {
					return bestPos, true
				}
			}
			if d == 0 {
				break // +0 and -0 are the same offset
			}
		}
		if bestPos != -1 {
			// A hit at the smallest drift wins even with some errors.
			return bestPos, true
		}
	}
	return 0, false
}

// safeSlice returns recv[from:to] clipped to bounds.
func safeSlice(recv []byte, from, to int) []byte {
	if from < 0 {
		from = 0
	}
	if from > len(recv) {
		from = len(recv)
	}
	if to > len(recv) {
		to = len(recv)
	}
	if to < from {
		to = from
	}
	return recv[from:to]
}
