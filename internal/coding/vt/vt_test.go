package vt

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func mustCode(t *testing.T, n int) *Code {
	t.Helper()
	c, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("expected error for tiny block")
	}
	c := mustCode(t, 10)
	// Parity positions 1,2,4,8 -> k = 6.
	if c.N() != 10 || c.K() != 6 {
		t.Fatalf("N=%d K=%d, want 10, 6", c.N(), c.K())
	}
}

func TestEncodeProducesCodewords(t *testing.T) {
	for _, n := range []int{3, 7, 10, 16, 31} {
		c := mustCode(t, n)
		src := rng.New(uint64(n))
		for trial := 0; trial < 50; trial++ {
			msg := randomBits(src, c.K())
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			if !c.IsCodeword(cw) {
				t.Fatalf("n=%d: Encode produced non-codeword %v", n, cw)
			}
			back, err := c.Extract(cw)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, msg) {
				t.Fatalf("n=%d: Extract mismatch", n)
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCode(t, 10)
	if _, err := c.Encode(make([]byte, 3)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]byte, c.K())
	bad[0] = 2
	if _, err := c.Encode(bad); err == nil {
		t.Error("expected bit error")
	}
}

func TestDecodeExactCodeword(t *testing.T) {
	c := mustCode(t, 12)
	src := rng.New(1)
	msg := randomBits(src, c.K())
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("Decode(codeword) mismatch")
	}
}

func TestDecodeRejectsSubstitution(t *testing.T) {
	c := mustCode(t, 12)
	src := rng.New(2)
	msg := randomBits(src, c.K())
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[5] ^= 1
	if _, err := c.Decode(cw); err == nil {
		t.Fatal("expected checksum failure for substituted word")
	}
}

func TestDecodeAllSingleDeletionsExhaustive(t *testing.T) {
	// Gold-standard property: for every message, every single deletion
	// position must decode back to the message. Exhaustive over all
	// messages for n=10 (64 messages x 10 positions).
	for _, n := range []int{7, 10} {
		c := mustCode(t, n)
		for m := 0; m < 1<<uint(c.K()); m++ {
			msg := intToBits(m, c.K())
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			for del := 0; del < n; del++ {
				recv := make([]byte, 0, n-1)
				recv = append(recv, cw[:del]...)
				recv = append(recv, cw[del+1:]...)
				got, err := c.Decode(recv)
				if err != nil {
					t.Fatalf("n=%d msg=%d del=%d: %v", n, m, del, err)
				}
				if !bytes.Equal(got, msg) {
					t.Fatalf("n=%d msg=%d del=%d: wrong message", n, m, del)
				}
			}
		}
	}
}

func TestDecodeAllSingleInsertionsExhaustive(t *testing.T) {
	for _, n := range []int{7, 10} {
		c := mustCode(t, n)
		for m := 0; m < 1<<uint(c.K()); m++ {
			msg := intToBits(m, c.K())
			cw, err := c.Encode(msg)
			if err != nil {
				t.Fatal(err)
			}
			for pos := 0; pos <= n; pos++ {
				for bit := byte(0); bit <= 1; bit++ {
					recv := make([]byte, 0, n+1)
					recv = append(recv, cw[:pos]...)
					recv = append(recv, bit)
					recv = append(recv, cw[pos:]...)
					got, err := c.Decode(recv)
					if err != nil {
						t.Fatalf("n=%d msg=%d pos=%d bit=%d: %v", n, m, pos, bit, err)
					}
					if !bytes.Equal(got, msg) {
						t.Fatalf("n=%d msg=%d pos=%d bit=%d: wrong message", n, m, pos, bit)
					}
				}
			}
		}
	}
}

func TestDecodeLengthValidation(t *testing.T) {
	c := mustCode(t, 10)
	if _, err := c.Decode(make([]byte, 5)); err == nil {
		t.Error("expected length error")
	}
	if _, err := c.Decode([]byte{0, 1, 2, 0, 1, 0, 1, 0, 1, 0}); err == nil {
		t.Error("expected bit validation error")
	}
}

func TestExtractValidation(t *testing.T) {
	c := mustCode(t, 10)
	if _, err := c.Extract(make([]byte, 4)); err == nil {
		t.Error("expected length error")
	}
}

func TestIsCodewordRejects(t *testing.T) {
	c := mustCode(t, 10)
	if c.IsCodeword(make([]byte, 4)) {
		t.Error("wrong length accepted")
	}
	if c.IsCodeword([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 2}) {
		t.Error("non-binary accepted")
	}
	// All-zero word is a codeword (checksum 0).
	if !c.IsCodeword(make([]byte, 10)) {
		t.Error("all-zero word rejected")
	}
}

func TestCodeSizeMatchesVTBound(t *testing.T) {
	// VT_0(n) is the largest VT class; our systematic subcode has
	// exactly 2^K codewords, all distinct.
	c := mustCode(t, 10)
	seen := make(map[string]bool)
	for m := 0; m < 1<<uint(c.K()); m++ {
		cw, err := c.Encode(intToBits(m, c.K()))
		if err != nil {
			t.Fatal(err)
		}
		seen[string(cw)] = true
	}
	if len(seen) != 1<<uint(c.K()) {
		t.Fatalf("only %d distinct codewords of %d", len(seen), 1<<uint(c.K()))
	}
}

func randomBits(src *rng.Source, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = src.Bit()
	}
	return out
}

func intToBits(v, n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = byte((v >> uint(i)) & 1)
	}
	return out
}
