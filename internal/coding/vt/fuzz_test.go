package vt

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts the decoder's total robustness contract: for any
// byte string interpreted as a bit sequence, Decode either returns a
// valid message or an error — never a panic — and when the input is a
// true single-deletion corruption of a codeword, it round-trips.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{1, 0, 1, 1, 0, 1, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		code, err := New(10)
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		msg, err := code.Decode(bits)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// A successful decode must re-encode to a codeword compatible
		// with the received length class.
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !code.IsCodeword(cw) {
			t.Fatal("re-encoded message is not a codeword")
		}
	})
}

// FuzzDeletionRoundTrip checks the correction guarantee itself under
// fuzzed messages and deletion positions.
func FuzzDeletionRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0))
	f.Add(uint8(63), uint8(9))
	f.Fuzz(func(t *testing.T, msgRaw, posRaw uint8) {
		code, err := New(10)
		if err != nil {
			t.Fatal(err)
		}
		msg := make([]byte, code.K())
		for i := range msg {
			msg[i] = (msgRaw >> uint(i%8)) & 1
		}
		cw, err := code.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		pos := int(posRaw) % code.N()
		recv := append(append([]byte(nil), cw[:pos]...), cw[pos+1:]...)
		got, err := code.Decode(recv)
		if err != nil {
			t.Fatalf("single deletion at %d uncorrectable: %v", pos, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("deletion at %d decoded wrong message", pos)
		}
	})
}
