// Package vt implements binary Varshamov–Tenengolts codes
// VT_0(n) = { x in {0,1}^n : sum i*x_i ≡ 0 (mod n+1) },
// which correct a single deletion or a single insertion — the simplest
// non-trivial codes for the synchronization-error channels of the
// paper's Section 4.1, and the classical backdrop to its references
// [12]–[14].
//
// The encoder is systematic: message bits occupy the positions that are
// not powers of two, and the power-of-two positions carry the checksum
// correction (analogous to Hamming code parity placement; the deficit's
// binary representation selects which parity bits are set).
package vt

import "fmt"

// Code is a VT_0(n) code.
type Code struct {
	n         int
	parityPos []int // 1-based power-of-two positions
}

// New returns VT_0(n). n must be at least 2 so the code carries at
// least one message bit... (n=2 gives k=0); n >= 3 is required.
func New(n int) (*Code, error) {
	if n < 3 {
		return nil, fmt.Errorf("vt: block length %d too small (need >= 3)", n)
	}
	var parity []int
	for p := 1; p <= n; p <<= 1 {
		parity = append(parity, p)
	}
	return &Code{n: n, parityPos: parity}, nil
}

// N returns the block length.
func (c *Code) N() int { return c.n }

// K returns the number of message bits per block.
func (c *Code) K() int { return c.n - len(c.parityPos) }

// checksum returns sum i*x_i mod (n+1) over 1-based positions.
func (c *Code) checksum(bits []byte) int {
	s := 0
	for i, b := range bits {
		if b&1 == 1 {
			s += i + 1
		}
	}
	return s % (c.n + 1)
}

// isParityPos reports whether the 1-based position is a power of two.
func isParityPos(p int) bool { return p&(p-1) == 0 }

// Encode maps K() message bits to an n-bit codeword with checksum 0.
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.K() {
		return nil, fmt.Errorf("vt: message length %d, want %d", len(msg), c.K())
	}
	cw := make([]byte, c.n)
	j := 0
	for p := 1; p <= c.n; p++ {
		if isParityPos(p) {
			continue
		}
		if msg[j] > 1 {
			return nil, fmt.Errorf("vt: message bit %d is %d, want 0 or 1", j, msg[j])
		}
		cw[p-1] = msg[j]
		j++
	}
	// Deficit d with 0 <= d <= n; its binary representation selects
	// parity positions (all powers of two <= n since d <= n).
	d := (c.n + 1 - c.checksum(cw)) % (c.n + 1)
	for _, p := range c.parityPos {
		if d&p != 0 {
			cw[p-1] = 1
		}
	}
	if c.checksum(cw) != 0 {
		// Unreachable by construction; guard against regressions.
		return nil, fmt.Errorf("vt: internal checksum error")
	}
	return cw, nil
}

// IsCodeword reports whether bits is a length-n word of VT_0(n).
func (c *Code) IsCodeword(bits []byte) bool {
	if len(bits) != c.n {
		return false
	}
	for _, b := range bits {
		if b > 1 {
			return false
		}
	}
	return c.checksum(bits) == 0
}

// Extract returns the message bits of a codeword (no error checking
// beyond length).
func (c *Code) Extract(cw []byte) ([]byte, error) {
	if len(cw) != c.n {
		return nil, fmt.Errorf("vt: codeword length %d, want %d", len(cw), c.n)
	}
	msg := make([]byte, 0, c.K())
	for p := 1; p <= c.n; p++ {
		if !isParityPos(p) {
			msg = append(msg, cw[p-1]&1)
		}
	}
	return msg, nil
}

// Decode recovers the message from a received word of length n (must
// be a codeword), n-1 (one deletion) or n+1 (one insertion). Any other
// length, or a length-n non-codeword, is an error.
func (c *Code) Decode(recv []byte) ([]byte, error) {
	for i, b := range recv {
		if b > 1 {
			return nil, fmt.Errorf("vt: received bit %d is %d, want 0 or 1", i, b)
		}
	}
	switch len(recv) {
	case c.n:
		if !c.IsCodeword(recv) {
			return nil, fmt.Errorf("vt: length-%d word fails the checksum (substitution errors are not correctable)", c.n)
		}
		return c.Extract(recv)
	case c.n - 1:
		cw, err := c.correctDeletion(recv)
		if err != nil {
			return nil, err
		}
		return c.Extract(cw)
	case c.n + 1:
		cw, err := c.correctInsertion(recv)
		if err != nil {
			return nil, err
		}
		return c.Extract(cw)
	default:
		return nil, fmt.Errorf("vt: received length %d not in {%d, %d, %d}", len(recv), c.n-1, c.n, c.n+1)
	}
}

// correctDeletion reinserts the single deleted bit (Levenshtein's
// algorithm). recv has length n-1.
func (c *Code) correctDeletion(recv []byte) ([]byte, error) {
	w := 0
	syn := 0
	for i, b := range recv {
		if b&1 == 1 {
			w++
			syn += i + 1
		}
	}
	s := ((0-syn)%(c.n+1) + c.n + 1) % (c.n + 1)
	cw := make([]byte, 0, c.n)
	if s <= w {
		// A 0 was deleted; reinsert it with exactly s ones to its right.
		onesRight := 0
		pos := len(recv) // insertion index counted from the left
		for pos > 0 && onesRight < s {
			pos--
			if recv[pos]&1 == 1 {
				onesRight++
			}
		}
		if onesRight != s {
			return nil, fmt.Errorf("vt: deletion syndrome %d inconsistent with weight %d", s, w)
		}
		cw = append(cw, recv[:pos]...)
		cw = append(cw, 0)
		cw = append(cw, recv[pos:]...)
	} else {
		// A 1 was deleted; reinsert it with s-w-1 zeros to its left.
		zerosNeeded := s - w - 1
		zeros := 0
		pos := 0
		for pos < len(recv) && zeros < zerosNeeded {
			if recv[pos]&1 == 0 {
				zeros++
			}
			pos++
		}
		if zeros != zerosNeeded {
			return nil, fmt.Errorf("vt: deletion syndrome %d inconsistent with weight %d", s, w)
		}
		// Skip any further... insert after the zerosNeeded-th zero,
		// before the next zero (equivalently, after any run of ones).
		for pos < len(recv) && recv[pos]&1 == 1 {
			pos++
		}
		cw = append(cw, recv[:pos]...)
		cw = append(cw, 1)
		cw = append(cw, recv[pos:]...)
	}
	if !c.IsCodeword(cw) {
		return nil, fmt.Errorf("vt: deletion correction failed verification")
	}
	return cw, nil
}

// correctInsertion removes the single inserted bit. recv has length
// n+1. All candidate removals that yield a VT_0(n) codeword are the
// same word (single-deletion-correcting codes correct single
// insertions, Levenshtein 1966), so the scan returns the first hit.
func (c *Code) correctInsertion(recv []byte) ([]byte, error) {
	cand := make([]byte, c.n)
	for skip := 0; skip <= len(recv)-1; skip++ {
		copy(cand, recv[:skip])
		copy(cand[skip:], recv[skip+1:])
		if c.checksum(cand) == 0 {
			out := append([]byte(nil), cand...)
			return out, nil
		}
	}
	return nil, fmt.Errorf("vt: no single-bit removal yields a codeword")
}
