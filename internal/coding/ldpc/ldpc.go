// Package ldpc implements binary low-density parity-check codes with
// normalized min-sum belief-propagation decoding. Davey and MacKay's
// watermark construction (the paper's reference [13]) used sparse-graph
// outer codes; this package provides the binary variant, consuming the
// soft per-bit information the watermark inner decoder produces when
// configured with one-bit chunks (see the integration test).
//
// The code is a regular Gallager ensemble: a random sparse parity-check
// matrix with fixed column weight, made systematic-encodable by GF(2)
// Gaussian elimination over the parity columns.
package ldpc

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Code is a binary LDPC code with an (m x n) parity-check matrix.
type Code struct {
	n, k int
	// checks[i] lists the variable indices participating in check i,
	// after the encoding permutation has been applied.
	checks [][]int
	// varAdj[v] lists the checks adjacent to variable v.
	varAdj [][]int
	// encRows[i] holds, for parity bit i (variable k+i), the message
	// variables XORed to produce it (from the eliminated system).
	encRows [][]int
}

// NewRegular builds a regular Gallager code with n variables, n-k
// checks, and the given column weight (2 or 3 are typical). The
// construction retries random sparse matrices until one yields a
// full-rank parity part, so very small or extreme parameters may fail.
func NewRegular(n, k, colWeight int, seed uint64) (*Code, error) {
	if n < 4 || k < 1 || k >= n {
		return nil, fmt.Errorf("ldpc: invalid dimensions (n=%d, k=%d)", n, k)
	}
	m := n - k
	if colWeight < 2 || colWeight > m {
		return nil, fmt.Errorf("ldpc: column weight %d out of [2, %d]", colWeight, m)
	}
	src := rng.New(seed)
	for attempt := 0; attempt < 50; attempt++ {
		h := randomSparse(n, m, colWeight, src)
		code, err := fromMatrix(h, n, k)
		if err == nil {
			return code, nil
		}
	}
	return nil, fmt.Errorf("ldpc: no full-rank construction found for (n=%d, k=%d, w=%d)", n, k, colWeight)
}

// randomSparse builds an m x n binary matrix with colWeight ones per
// column, spreading ones across checks as evenly as possible.
func randomSparse(n, m, colWeight int, src *rng.Source) [][]bool {
	h := make([][]bool, m)
	for i := range h {
		h[i] = make([]bool, n)
	}
	rowLoad := make([]int, m)
	for v := 0; v < n; v++ {
		for w := 0; w < colWeight; w++ {
			// Pick among the least-loaded rows not already used by v.
			best := -1
			for trial := 0; trial < 4*m; trial++ {
				r := src.Intn(m)
				if h[r][v] {
					continue
				}
				if best == -1 || rowLoad[r] < rowLoad[best] {
					best = r
				}
			}
			if best == -1 {
				continue
			}
			h[best][v] = true
			rowLoad[best]++
		}
	}
	return h
}

// fromMatrix Gaussian-eliminates the last m columns of h to express
// each parity bit as an XOR of message bits, permuting columns into
// [message | parity] form when necessary.
func fromMatrix(h [][]bool, n, k int) (*Code, error) {
	m := n - k
	// Work on a copy; track the column permutation (identity initially:
	// message bits 0..k-1, parity candidates k..n-1).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	work := make([][]bool, m)
	for i := range work {
		work[i] = append([]bool(nil), h[i]...)
	}
	// Eliminate to put an identity into columns k..n-1 (pivoting among
	// all columns; swap pivot columns into the parity region).
	for row := 0; row < m; row++ {
		col := k + row
		// Find a pivot with a one in this row at column >= k+row, else
		// swap in any column (message region) holding a one.
		pivot := -1
		for c := col; c < n; c++ {
			if work[row][c] {
				pivot = c
				break
			}
		}
		if pivot == -1 {
			for c := 0; c < k; c++ {
				if work[row][c] {
					pivot = c
					break
				}
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("ldpc: rank deficiency at row %d", row)
		}
		if pivot != col {
			for r := 0; r < m; r++ {
				work[r][pivot], work[r][col] = work[r][col], work[r][pivot]
			}
			perm[pivot], perm[col] = perm[col], perm[pivot]
		}
		for r := 0; r < m; r++ {
			if r != row && work[r][col] {
				for c := 0; c < n; c++ {
					work[r][c] = work[r][c] != work[row][c]
				}
			}
		}
	}
	// After elimination, row i reads: parity_i = XOR of message bits
	// with ones in columns 0..k-1.
	encRows := make([][]int, m)
	for i := 0; i < m; i++ {
		for c := 0; c < k; c++ {
			if work[i][c] {
				encRows[i] = append(encRows[i], c)
			}
		}
	}
	// Express the original checks in permuted variable order for the
	// decoder: variable v (permuted) is original column perm[v]; we
	// need the inverse map.
	inv := make([]int, n)
	for newPos, orig := range perm {
		inv[orig] = newPos
	}
	checks := make([][]int, m)
	varAdj := make([][]int, n)
	for i := 0; i < m; i++ {
		for c := 0; c < n; c++ {
			if h[i][c] {
				v := inv[c]
				checks[i] = append(checks[i], v)
				varAdj[v] = append(varAdj[v], i)
			}
		}
	}
	return &Code{n: n, k: k, checks: checks, varAdj: varAdj, encRows: encRows}, nil
}

// N returns the block length.
func (c *Code) N() int { return c.n }

// K returns the message length.
func (c *Code) K() int { return c.k }

// Rate returns k/n.
func (c *Code) Rate() float64 { return float64(c.k) / float64(c.n) }

// Encode maps k message bits to an n-bit codeword [message | parity].
func (c *Code) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.k {
		return nil, fmt.Errorf("ldpc: message length %d, want %d", len(msg), c.k)
	}
	cw := make([]byte, c.n)
	for i, b := range msg {
		if b > 1 {
			return nil, fmt.Errorf("ldpc: message bit %d is %d, want 0 or 1", i, b)
		}
		cw[i] = b
	}
	for i, row := range c.encRows {
		var p byte
		for _, v := range row {
			p ^= msg[v]
		}
		cw[c.k+i] = p
	}
	return cw, nil
}

// IsCodeword reports whether the word satisfies every parity check.
func (c *Code) IsCodeword(cw []byte) bool {
	if len(cw) != c.n {
		return false
	}
	for _, check := range c.checks {
		var p byte
		for _, v := range check {
			p ^= cw[v] & 1
		}
		if p != 0 {
			return false
		}
	}
	return true
}

// Decode runs normalized min-sum belief propagation on the channel
// log-likelihood ratios (llr[v] > 0 favours bit 0) and returns the
// message bits. It returns an error if the decoder fails to converge
// to a codeword within maxIter iterations (0 defaults to 50).
func (c *Code) Decode(llr []float64, maxIter int) ([]byte, error) {
	if len(llr) != c.n {
		return nil, fmt.Errorf("ldpc: LLR length %d, want %d", len(llr), c.n)
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	const scale = 0.8 // normalized min-sum correction

	// Messages indexed by (check, position within check).
	c2v := make([][]float64, len(c.checks))
	for i, check := range c.checks {
		c2v[i] = make([]float64, len(check))
	}
	posterior := append([]float64(nil), llr...)
	hard := make([]byte, c.n)

	for iter := 0; iter < maxIter; iter++ {
		// Variable-to-check implicit: v2c = posterior - c2v(prev).
		for i, check := range c.checks {
			// Min-sum: for each edge, the product of signs and min of
			// magnitudes over the other edges.
			minAbs1, minAbs2 := math.Inf(1), math.Inf(1)
			minIdx := -1
			signProd := 1.0
			for j, v := range check {
				m := posterior[v] - c2v[i][j]
				if m < 0 {
					signProd = -signProd
				}
				a := math.Abs(m)
				if a < minAbs1 {
					minAbs2 = minAbs1
					minAbs1 = a
					minIdx = j
				} else if a < minAbs2 {
					minAbs2 = a
				}
			}
			for j, v := range check {
				m := posterior[v] - c2v[i][j]
				sign := signProd
				if m < 0 {
					sign = -sign
				}
				mag := minAbs1
				if j == minIdx {
					mag = minAbs2
				}
				c2v[i][j] = scale * sign * mag
			}
		}
		// Update posteriors.
		copy(posterior, llr)
		for i, check := range c.checks {
			for j, v := range check {
				posterior[v] += c2v[i][j]
			}
		}
		for v := range hard {
			if posterior[v] < 0 {
				hard[v] = 1
			} else {
				hard[v] = 0
			}
		}
		if c.IsCodeword(hard) {
			return append([]byte(nil), hard[:c.k]...), nil
		}
	}
	return nil, fmt.Errorf("ldpc: no codeword after %d iterations", maxIter)
}
