package ldpc

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/coding/watermark"
	"repro/internal/rng"
)

func mustCode(t *testing.T, n, k, w int, seed uint64) *Code {
	t.Helper()
	c, err := NewRegular(n, k, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomBits(seed uint64, n int) []byte {
	src := rng.New(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = src.Bit()
	}
	return out
}

func TestNewRegularValidation(t *testing.T) {
	if _, err := NewRegular(3, 1, 2, 1); err == nil {
		t.Error("expected dimension error")
	}
	if _, err := NewRegular(8, 8, 2, 1); err == nil {
		t.Error("expected k < n error")
	}
	if _, err := NewRegular(8, 4, 1, 1); err == nil {
		t.Error("expected column weight error")
	}
	if _, err := NewRegular(8, 4, 5, 1); err == nil {
		t.Error("expected column weight error")
	}
}

func TestAccessors(t *testing.T) {
	c := mustCode(t, 96, 48, 3, 1)
	if c.N() != 96 || c.K() != 48 {
		t.Fatalf("N=%d K=%d", c.N(), c.K())
	}
	if c.Rate() != 0.5 {
		t.Fatalf("Rate = %v", c.Rate())
	}
}

func TestEncodeProducesCodewords(t *testing.T) {
	c := mustCode(t, 96, 48, 3, 2)
	for trial := 0; trial < 30; trial++ {
		msg := randomBits(uint64(trial+10), c.K())
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.IsCodeword(cw) {
			t.Fatalf("trial %d: encoded word fails parity", trial)
		}
		if !bytes.Equal(cw[:c.K()], msg) {
			t.Fatalf("trial %d: encoding not systematic", trial)
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	c := mustCode(t, 48, 24, 3, 3)
	if _, err := c.Encode(make([]byte, 5)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]byte, 24)
	bad[0] = 2
	if _, err := c.Encode(bad); err == nil {
		t.Error("expected bit error")
	}
}

func TestIsCodewordRejects(t *testing.T) {
	c := mustCode(t, 48, 24, 3, 4)
	if c.IsCodeword(make([]byte, 5)) {
		t.Error("wrong length accepted")
	}
	msg := randomBits(5, c.K())
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cw[0] ^= 1
	if c.IsCodeword(cw) {
		t.Error("corrupted word accepted (degenerate check matrix?)")
	}
}

// bscLLR converts hard bits to LLRs for a BSC with crossover p.
func bscLLR(bits []byte, p float64) []float64 {
	l := math.Log((1 - p) / p)
	out := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			out[i] = l
		} else {
			out[i] = -l
		}
	}
	return out
}

func TestDecodeCleanChannel(t *testing.T) {
	c := mustCode(t, 96, 48, 3, 6)
	msg := randomBits(7, c.K())
	cw, err := c.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(bscLLR(cw, 0.05), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("clean decode mismatch")
	}
}

func TestDecodeCorrectsBSCErrors(t *testing.T) {
	// A rate-1/2 LDPC at 4% crossover: most frames decode exactly.
	c := mustCode(t, 256, 128, 3, 8)
	src := rng.New(9)
	const p = 0.04
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		msg := randomBits(uint64(100+trial), c.K())
		cw, err := c.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		recv := append([]byte(nil), cw...)
		for i := range recv {
			if src.Bool(p) {
				recv[i] ^= 1
			}
		}
		got, err := c.Decode(bscLLR(recv, p), 0)
		if err != nil {
			continue
		}
		if bytes.Equal(got, msg) {
			ok++
		}
	}
	if ok < trials*7/10 {
		t.Fatalf("only %d/%d frames decoded at %v crossover", ok, trials, p)
	}
}

func TestDecodeValidation(t *testing.T) {
	c := mustCode(t, 48, 24, 3, 10)
	if _, err := c.Decode(make([]float64, 3), 0); err == nil {
		t.Error("expected LLR length error")
	}
}

func TestDecodeFailsCleanly(t *testing.T) {
	// All-zero LLRs carry no information: the decoder must give up
	// with an error, not loop or panic.
	c := mustCode(t, 48, 24, 3, 11)
	if _, err := c.Decode(make([]float64, 48), 5); err == nil {
		t.Skip("zero-information input happened to converge; nothing to assert")
	}
}

func TestWatermarkLDPCIntegration(t *testing.T) {
	// The Davey-MacKay construction proper: watermark inner code with
	// one-bit chunks produces per-bit posteriors; a binary LDPC outer
	// code consumes them as LLRs and removes the residual errors —
	// reliable communication over the deletion-insertion channel with
	// no synchronization.
	const (
		pd, pi = 0.005, 0.005
	)
	inner, err := watermark.New(watermark.Params{
		ChunkBits: 1,
		SparseLen: 3,
		Pd:        pd,
		Pi:        pi,
		MaxDrift:  16,
		Seed:      77,
	})
	if err != nil {
		t.Fatal(err)
	}
	outer := mustCode(t, 192, 96, 3, 12)

	msg := randomBits(13, outer.K())
	cw, err := outer.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	syms := make([]uint32, len(cw))
	for i, b := range cw {
		syms[i] = uint32(b)
	}
	tx, err := inner.Encode(syms)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.NewBinaryDI(pd, pi, 0, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := ch.Transmit(tx)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := inner.Decode(recv, len(syms))
	if err != nil {
		t.Fatal(err)
	}
	// Convert MAP decisions + confidence into LLRs.
	llr := make([]float64, len(cw))
	for i := range llr {
		conf := dec.Confidence[i]
		if conf > 0.999 {
			conf = 0.999
		}
		if conf < 0.501 {
			conf = 0.501
		}
		l := math.Log(conf / (1 - conf))
		if dec.Symbols[i] == 1 {
			l = -l
		}
		llr[i] = l
	}
	got, err := outer.Decode(llr, 100)
	if err != nil {
		t.Fatalf("outer LDPC decode failed: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("watermark+LDPC pipeline corrupted the payload")
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := mustCode(t, 96, 48, 3, 21)
	b := mustCode(t, 96, 48, 3, 21)
	msg := randomBits(22, 48)
	cwA, err := a.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	cwB, err := b.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cwA, cwB) {
		t.Fatal("same seed produced different codes")
	}
}

func BenchmarkDecode256(b *testing.B) {
	c, err := NewRegular(256, 128, 3, 8)
	if err != nil {
		b.Fatal(err)
	}
	msg := randomBits(30, c.K())
	cw, err := c.Encode(msg)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(31)
	recv := append([]byte(nil), cw...)
	for i := range recv {
		if src.Bool(0.03) {
			recv[i] ^= 1
		}
	}
	llr := bscLLR(recv, 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(llr, 0); err != nil {
			b.Fatal(err)
		}
	}
}
