// Package gf implements arithmetic over the finite fields GF(2^m),
// 2 <= m <= 8, via log/antilog tables. It is the algebra under the
// Reed–Solomon outer codes used with the watermark scheme
// (internal/coding/watermark) for non-synchronized communication.
package gf

import "fmt"

// Field is GF(2^m) represented by a primitive polynomial.
type Field struct {
	m    int
	size int      // 2^m
	exp  []uint32 // exp[i] = α^i, doubled for cheap modular indexing
	log  []int    // log[a] = i with α^i = a, defined for a != 0
}

// defaultPoly holds a primitive polynomial per degree (including the
// x^m term), the conventional choices.
var defaultPoly = map[int]uint32{
	2: 0x7,   // x^2 + x + 1
	3: 0xB,   // x^3 + x + 1
	4: 0x13,  // x^4 + x + 1
	5: 0x25,  // x^5 + x^2 + 1
	6: 0x43,  // x^6 + x + 1
	7: 0x89,  // x^7 + x^3 + 1
	8: 0x11D, // x^8 + x^4 + x^3 + x^2 + 1
}

// NewField constructs GF(2^m) from the given polynomial (with the x^m
// bit set). It returns an error if m is out of range or the polynomial
// is not primitive (the generated element α does not have full order).
func NewField(m int, poly uint32) (*Field, error) {
	if m < 2 || m > 8 {
		return nil, fmt.Errorf("gf: field degree %d out of [2,8]", m)
	}
	size := 1 << uint(m)
	if poly < uint32(size) || poly >= uint32(2*size) {
		return nil, fmt.Errorf("gf: polynomial %#x has wrong degree for GF(2^%d)", poly, m)
	}
	f := &Field{
		m:    m,
		size: size,
		exp:  make([]uint32, 2*(size-1)),
		log:  make([]int, size),
	}
	for i := range f.log {
		f.log[i] = -1
	}
	x := uint32(1)
	for i := 0; i < size-1; i++ {
		if f.log[x] != -1 {
			return nil, fmt.Errorf("gf: polynomial %#x is not primitive for GF(2^%d)", poly, m)
		}
		f.exp[i] = x
		f.exp[i+size-1] = x
		f.log[x] = i
		x <<= 1
		if x&uint32(size) != 0 {
			x ^= poly
		}
	}
	if x != 1 {
		return nil, fmt.Errorf("gf: polynomial %#x is not primitive for GF(2^%d)", poly, m)
	}
	return f, nil
}

// Default returns GF(2^m) with the conventional primitive polynomial.
func Default(m int) (*Field, error) {
	poly, ok := defaultPoly[m]
	if !ok {
		return nil, fmt.Errorf("gf: no default polynomial for degree %d", m)
	}
	return NewField(m, poly)
}

// M returns the field degree m.
func (f *Field) M() int { return f.m }

// Size returns the field size 2^m.
func (f *Field) Size() int { return f.size }

// valid panics on out-of-field elements; the coding layers validate
// external inputs, so an invalid element here is a programming error.
func (f *Field) valid(a uint32) {
	if a >= uint32(f.size) {
		panic(fmt.Sprintf("gf: element %d outside GF(2^%d)", a, f.m))
	}
}

// Add returns a + b (XOR in characteristic 2); subtraction is identical.
func (f *Field) Add(a, b uint32) uint32 {
	f.valid(a)
	f.valid(b)
	return a ^ b
}

// Mul returns a * b.
func (f *Field) Mul(a, b uint32) uint32 {
	f.valid(a)
	f.valid(b)
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a. It returns an error for
// a = 0.
func (f *Field) Inv(a uint32) (uint32, error) {
	f.valid(a)
	if a == 0 {
		return 0, fmt.Errorf("gf: zero has no inverse")
	}
	return f.exp[(f.size-1-f.log[a])%(f.size-1)], nil
}

// Div returns a / b. It returns an error for b = 0.
func (f *Field) Div(a, b uint32) (uint32, error) {
	inv, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, inv), nil
}

// Exp returns α^i for any integer i (negative allowed).
func (f *Field) Exp(i int) uint32 {
	n := f.size - 1
	i %= n
	if i < 0 {
		i += n
	}
	return f.exp[i]
}

// Log returns the discrete logarithm of a to base α. It returns an
// error for a = 0.
func (f *Field) Log(a uint32) (int, error) {
	f.valid(a)
	if a == 0 {
		return 0, fmt.Errorf("gf: zero has no logarithm")
	}
	return f.log[a], nil
}

// Pow returns a^e for e >= 0 (0^0 = 1).
func (f *Field) Pow(a uint32, e int) uint32 {
	f.valid(a)
	if e < 0 {
		panic("gf: negative exponent")
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return f.exp[(f.log[a]*e)%(f.size-1)]
}

// PolyEval evaluates the polynomial p (p[i] is the coefficient of x^i)
// at x by Horner's rule.
func (f *Field) PolyEval(p []uint32, x uint32) uint32 {
	var acc uint32
	for i := len(p) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), p[i])
	}
	return acc
}

// PolyMul multiplies two polynomials (coefficients ascending).
func (f *Field) PolyMul(a, b []uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint32, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] = f.Add(out[i+j], f.Mul(ai, bj))
		}
	}
	return out
}
