package gf

import (
	"testing"
	"testing/quick"
)

func mustField(t *testing.T, m int) *Field {
	t.Helper()
	f, err := Default(m)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(1, 0x3); err == nil {
		t.Error("expected degree error")
	}
	if _, err := NewField(9, 0x211); err == nil {
		t.Error("expected degree error")
	}
	if _, err := NewField(4, 0x3); err == nil {
		t.Error("expected wrong-degree polynomial error")
	}
	// x^4 + x^3 + x^2 + x + 1 = 0x1F divides x^5-1: not primitive.
	if _, err := NewField(4, 0x1F); err == nil {
		t.Error("expected non-primitive polynomial error")
	}
}

func TestDefaultFields(t *testing.T) {
	for m := 2; m <= 8; m++ {
		f, err := Default(m)
		if err != nil {
			t.Fatalf("Default(%d): %v", m, err)
		}
		if f.M() != m || f.Size() != 1<<uint(m) {
			t.Fatalf("Default(%d): M=%d Size=%d", m, f.M(), f.Size())
		}
	}
	if _, err := Default(9); err == nil {
		t.Error("expected error for unsupported degree")
	}
}

func TestGF16KnownProducts(t *testing.T) {
	// GF(16) with x^4+x+1: known multiplication facts.
	f := mustField(t, 4)
	tests := []struct {
		a, b, want uint32
	}{
		{0, 5, 0},
		{1, 7, 7},
		{2, 2, 4},
		{8, 2, 3},  // x^3 * x = x^4 = x + 1
		{9, 9, 13}, // (x^3+1)^2 = x^6+1 = x^3+x^2+1
	}
	for _, tt := range tests {
		if got := f.Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%d, %d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestFieldAxioms(t *testing.T) {
	// Exhaustive checks on GF(16); sampled via quick on GF(256).
	f := mustField(t, 4)
	n := uint32(f.Size())
	for a := uint32(0); a < n; a++ {
		for b := uint32(0); b < n; b++ {
			if f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("commutativity fails at %d, %d", a, b)
			}
			for c := uint32(0); c < n; c++ {
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("distributivity fails at %d, %d, %d", a, b, c)
				}
			}
		}
		if f.Mul(a, 1) != a || f.Add(a, 0) != a || f.Add(a, a) != 0 {
			t.Fatalf("identity axioms fail at %d", a)
		}
	}
}

func TestInverses(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		f := mustField(t, m)
		if _, err := f.Inv(0); err == nil {
			t.Error("expected error inverting zero")
		}
		for a := uint32(1); a < uint32(f.Size()); a++ {
			inv, err := f.Inv(a)
			if err != nil {
				t.Fatal(err)
			}
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(2^%d): %d * %d != 1", m, a, inv)
			}
		}
	}
}

func TestDiv(t *testing.T) {
	f := mustField(t, 4)
	for a := uint32(0); a < 16; a++ {
		for b := uint32(1); b < 16; b++ {
			q, err := f.Div(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if f.Mul(q, b) != a {
				t.Fatalf("Div(%d, %d) = %d fails check", a, b, q)
			}
		}
	}
	if _, err := f.Div(3, 0); err == nil {
		t.Error("expected division by zero error")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	f := mustField(t, 8)
	for a := uint32(1); a < 256; a++ {
		l, err := f.Log(a)
		if err != nil {
			t.Fatal(err)
		}
		if f.Exp(l) != a {
			t.Fatalf("Exp(Log(%d)) = %d", a, f.Exp(l))
		}
	}
	if _, err := f.Log(0); err == nil {
		t.Error("expected error for Log(0)")
	}
	// Negative and large exponents wrap.
	if f.Exp(-1) != f.Exp(254) {
		t.Error("Exp(-1) should equal Exp(size-2)")
	}
	if f.Exp(255) != 1 {
		t.Error("Exp(order) should be 1")
	}
}

func TestPow(t *testing.T) {
	f := mustField(t, 4)
	for a := uint32(0); a < 16; a++ {
		if f.Pow(a, 0) != 1 {
			t.Fatalf("Pow(%d, 0) != 1", a)
		}
		acc := uint32(1)
		for e := 1; e < 20; e++ {
			acc = f.Mul(acc, a)
			if got := f.Pow(a, e); got != acc {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, e, got, acc)
			}
		}
	}
}

func TestPolyEval(t *testing.T) {
	f := mustField(t, 4)
	// p(x) = 3 + 2x + x^2 at x=1: 3^2^1 = 0 (xor).
	p := []uint32{3, 2, 1}
	if got := f.PolyEval(p, 1); got != 0 {
		t.Fatalf("PolyEval at 1 = %d, want 0", got)
	}
	if got := f.PolyEval(p, 0); got != 3 {
		t.Fatalf("PolyEval at 0 = %d, want 3", got)
	}
	if got := f.PolyEval(nil, 5); got != 0 {
		t.Fatalf("PolyEval(nil) = %d, want 0", got)
	}
}

func TestPolyMul(t *testing.T) {
	f := mustField(t, 4)
	// (1 + x)(1 + x) = 1 + x^2 over GF(2^m).
	got := f.PolyMul([]uint32{1, 1}, []uint32{1, 1})
	want := []uint32{1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("PolyMul length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PolyMul = %v, want %v", got, want)
		}
	}
	if f.PolyMul(nil, []uint32{1}) != nil {
		t.Fatal("PolyMul with empty operand should be nil")
	}
}

func TestPolyMulEvalHomomorphism(t *testing.T) {
	f := mustField(t, 8)
	err := quick.Check(func(rawA, rawB []byte, xRaw byte) bool {
		if len(rawA) > 8 {
			rawA = rawA[:8]
		}
		if len(rawB) > 8 {
			rawB = rawB[:8]
		}
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		a := make([]uint32, len(rawA))
		for i, v := range rawA {
			a[i] = uint32(v)
		}
		b := make([]uint32, len(rawB))
		for i, v := range rawB {
			b[i] = uint32(v)
		}
		x := uint32(xRaw)
		lhs := f.PolyEval(f.PolyMul(a, b), x)
		rhs := f.Mul(f.PolyEval(a, x), f.PolyEval(b, x))
		return lhs == rhs
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMulPanicsOnOutOfField(t *testing.T) {
	f := mustField(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-field element")
		}
	}()
	f.Mul(16, 1)
}
