// Package delcap computes information rates of the binary deletion
// channel without feedback — the quantity the paper's Section 4.1
// discusses through its references [7][8][9] (Dobrushin's coding
// theorem for synchronization-error channels, Vvedenskaya–Dobrushin's
// computer computation of drop-out channel capacity, and Dolgopolov's
// capacity bounds). The exact capacity is unknown to this day; this
// package provides
//
//   - the exact finite-blocklength information rate I(X^n; Y)/n for
//     i.i.d. uniform inputs with known block boundaries, computed by
//     exhaustive enumeration with a subsequence-embedding dynamic
//     program (the modern rendering of Vvedenskaya–Dobrushin's
//     computation). Known boundaries act as synchronization side
//     information, so the series *decreases* with n toward the
//     channel's i.u.d. information rate; the n = 1 point recovers the
//     erasure channel rate 1-Pd exactly;
//   - an unbiased Monte-Carlo estimator of the same quantity for
//     blocklengths where enumeration is infeasible (exploiting that
//     the uniform-input output law of the deletion channel is
//     closed-form: H(Y) = H(Binomial(n, 1-Pd)) + E[M]);
//   - the classic analytic bounds 1-H(Pd) (achievable, Gallager) and
//     1-Pd (erasure upper bound).
package delcap

import (
	"fmt"
	"math"

	"repro/internal/infotheory"
	"repro/internal/rng"
)

// EmbeddingCount returns the number of ways y occurs as a subsequence
// of x, the combinatorial core of the deletion channel's transition
// probability: P(y | x) = count * Pd^(len(x)-len(y)) * (1-Pd)^len(y).
// Sequences are bit strings packed little-endian into uint32 with
// explicit lengths (n, m <= 20).
func EmbeddingCount(x uint32, n int, y uint32, m int) (int64, error) {
	if n < 0 || n > 20 || m < 0 || m > 20 {
		return 0, fmt.Errorf("delcap: lengths (%d, %d) out of [0,20]", n, m)
	}
	if m > n {
		return 0, nil
	}
	// dp[j] = embeddings of y[:j] in the processed prefix of x.
	dp := make([]int64, m+1)
	dp[0] = 1
	for i := 0; i < n; i++ {
		xb := x >> uint(i) & 1
		// Descend j so each x bit is used at most once per embedding.
		for j := m; j >= 1; j-- {
			if y>>uint(j-1)&1 == xb {
				dp[j] += dp[j-1]
			}
		}
	}
	return dp[m], nil
}

// ExactUniformRate computes I(X^n; Y)/n in bits for the binary
// deletion channel with i.i.d. uniform inputs of blocklength n, by
// exact enumeration over all inputs and all output lengths. It is
// exponential in n; n is limited to 12.
func ExactUniformRate(n int, pd float64) (float64, error) {
	if n < 1 || n > 12 {
		return 0, fmt.Errorf("delcap: blocklength %d out of [1,12] for exact enumeration", n)
	}
	if math.IsNaN(pd) || pd < 0 || pd > 1 {
		return 0, fmt.Errorf("delcap: deletion probability %v out of [0,1]", pd)
	}
	if pd == 1 {
		return 0, nil
	}
	numX := 1 << uint(n)
	px := 1 / float64(numX)

	// Precompute pd^(n-m)(1-pd)^m per output length m.
	lenP := make([]float64, n+1)
	for m := 0; m <= n; m++ {
		lenP[m] = math.Pow(pd, float64(n-m)) * math.Pow(1-pd, float64(m))
	}

	// outIndex(y, m) = unique index for output string y of length m.
	outOffset := make([]int, n+2)
	for m := 0; m <= n; m++ {
		outOffset[m+1] = outOffset[m] + (1 << uint(m))
	}
	numY := outOffset[n+1]

	py := make([]float64, numY)
	var hYgivenX float64 // sum_x p(x) H(Y|X=x)
	for x := 0; x < numX; x++ {
		var hx float64
		for m := 0; m <= n; m++ {
			for y := 0; y < 1<<uint(m); y++ {
				cnt, err := EmbeddingCount(uint32(x), n, uint32(y), m)
				if err != nil {
					return 0, err
				}
				p := float64(cnt) * lenP[m]
				if p > 0 {
					py[outOffset[m]+y] += px * p
					hx -= p * math.Log2(p)
				}
			}
		}
		hYgivenX += px * hx
	}
	var hY float64
	for _, p := range py {
		if p > 0 {
			hY -= p * math.Log2(p)
		}
	}
	rate := (hY - hYgivenX) / float64(n)
	if rate < 0 {
		rate = 0
	}
	return rate, nil
}

// MonteCarloUniformRate estimates I(X^n; Y)/n for i.i.d. uniform
// inputs. The key simplification: for uniform i.i.d. inputs the
// deletion channel's output law is closed-form — deletions are
// value-independent and surviving bits are i.i.d. uniform, so
// P(Y = y, |y| = m) = Binom(n, 1-pd)(m) * 2^(-m) and
// H(Y) = H(M) + E[M] exactly. Only H(Y|X) = -E[log2 P(y|x)] is
// estimated by sampling, with P(y|x) computed exactly per sample via
// the embedding-count dynamic program, so the estimator is unbiased
// with variance O(1/samples). n is limited to 20 so embedding counts
// stay in range.
func MonteCarloUniformRate(n int, pd float64, samples int, src *rng.Source) (float64, error) {
	if n < 1 || n > 20 {
		return 0, fmt.Errorf("delcap: blocklength %d out of [1,20]", n)
	}
	if math.IsNaN(pd) || pd < 0 || pd > 1 {
		return 0, fmt.Errorf("delcap: deletion probability %v out of [0,1]", pd)
	}
	if samples < 1 {
		return 0, fmt.Errorf("delcap: sample size must be positive")
	}
	if src == nil {
		return 0, fmt.Errorf("delcap: nil randomness source")
	}
	if pd == 1 {
		return 0, nil
	}
	// Exact H(Y) = H(M) + E[M] with M ~ Binomial(n, 1-pd).
	var hM, eM float64
	for m := 0; m <= n; m++ {
		p := binomPMF(n, m, 1-pd)
		if p > 0 {
			hM -= p * math.Log2(p)
			eM += p * float64(m)
		}
	}
	hY := hM + eM

	// Sampled H(Y|X) = -E[log2 p(y|x)].
	var hYX float64
	for s := 0; s < samples; s++ {
		x := uint32(src.Uint64n(1 << uint(n)))
		var y uint32
		m := 0
		for i := 0; i < n; i++ {
			if !src.Bool(pd) {
				y |= (x >> uint(i) & 1) << uint(m)
				m++
			}
		}
		pyx, err := transitionProb(x, n, y, m, pd)
		if err != nil {
			return 0, err
		}
		if pyx > 0 {
			hYX -= math.Log2(pyx)
		}
	}
	hYX /= float64(samples)

	rate := (hY - hYX) / float64(n)
	if rate < 0 {
		rate = 0
	}
	return rate, nil
}

// binomPMF returns the Binomial(n, p) probability mass at k, computed
// in log space for stability.
func binomPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	logP := lg - lk - lnk + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(logP)
}

// transitionProb returns P(y | x) for the deletion channel.
func transitionProb(x uint32, n int, y uint32, m int, pd float64) (float64, error) {
	cnt, err := EmbeddingCount(x, n, y, m)
	if err != nil {
		return 0, err
	}
	if cnt == 0 {
		return 0, nil
	}
	return float64(cnt) * math.Pow(pd, float64(n-m)) * math.Pow(1-pd, float64(m)), nil
}

// GallagerLowerBound returns the achievable rate 1 - H(pd), clamped
// at 0 (valid as a lower bound for pd < 1/2).
func GallagerLowerBound(pd float64) float64 {
	if pd >= 0.5 {
		return 0
	}
	c := 1 - infotheory.BinaryEntropy(pd)
	if c < 0 {
		c = 0
	}
	return c
}

// ErasureUpperBound returns 1 - pd, the Theorem 1 bound.
func ErasureUpperBound(pd float64) float64 { return 1 - pd }
