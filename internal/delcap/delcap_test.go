package delcap

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEmbeddingCountKnown(t *testing.T) {
	tests := []struct {
		name string
		x    uint32
		n    int
		y    uint32
		m    int
		want int64
	}{
		{name: "empty in empty", want: 1},
		{name: "empty in anything", x: 0b101, n: 3, want: 1},
		{name: "identity", x: 0b101, n: 3, y: 0b101, m: 3, want: 1},
		{name: "longer y", x: 0b1, n: 1, y: 0b11, m: 2, want: 0},
		{name: "single bit in 111", x: 0b111, n: 3, y: 0b1, m: 1, want: 3},
		{name: "0 in 111", x: 0b111, n: 3, y: 0, m: 1, want: 0},
		{name: "11 in 111", x: 0b111, n: 3, y: 0b11, m: 2, want: 3},
		{name: "01 in 0101", x: 0b0101, n: 4, y: 0b01, m: 2, want: 3},
		{name: "mismatch", x: 0b0000, n: 4, y: 0b1, m: 1, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EmbeddingCount(tt.x, tt.n, tt.y, tt.m)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Fatalf("EmbeddingCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestEmbeddingCountErrors(t *testing.T) {
	if _, err := EmbeddingCount(0, 21, 0, 1); err == nil {
		t.Error("expected length error")
	}
	if _, err := EmbeddingCount(0, 1, 0, -1); err == nil {
		t.Error("expected length error")
	}
}

func TestEmbeddingCountTotalMass(t *testing.T) {
	// Property: over all outputs y, sum of P(y|x) must be 1 for any x.
	const n = 8
	for _, pd := range []float64{0.1, 0.37, 0.8} {
		for x := uint32(0); x < 1<<n; x += 17 {
			var total float64
			for m := 0; m <= n; m++ {
				for y := uint32(0); y < 1<<uint(m); y++ {
					p, err := transitionProb(x, n, y, int(m), pd)
					if err != nil {
						t.Fatal(err)
					}
					total += p
				}
			}
			if !almostEqual(total, 1, 1e-9) {
				t.Fatalf("pd=%v x=%b: transition mass %v != 1", pd, x, total)
			}
		}
	}
}

func TestExactUniformRateEdges(t *testing.T) {
	// pd = 0: noiseless, rate = 1 bit per bit.
	r, err := ExactUniformRate(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-9) {
		t.Fatalf("rate at pd=0 is %v, want 1", r)
	}
	// pd = 1: nothing arrives.
	r, err = ExactUniformRate(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("rate at pd=1 is %v, want 0", r)
	}
}

func TestExactUniformRateErrors(t *testing.T) {
	if _, err := ExactUniformRate(0, 0.1); err == nil {
		t.Error("expected blocklength error")
	}
	if _, err := ExactUniformRate(13, 0.1); err == nil {
		t.Error("expected blocklength error")
	}
	if _, err := ExactUniformRate(4, -0.1); err == nil {
		t.Error("expected probability error")
	}
}

func TestExactUniformRateBelowErasureBound(t *testing.T) {
	for _, pd := range []float64{0.05, 0.1, 0.2, 0.5} {
		for _, n := range []int{4, 8} {
			r, err := ExactUniformRate(n, pd)
			if err != nil {
				t.Fatal(err)
			}
			if r > ErasureUpperBound(pd)+1e-9 {
				t.Errorf("n=%d pd=%v: rate %v exceeds erasure bound %v", n, pd, r, ErasureUpperBound(pd))
			}
			if r <= 0 {
				t.Errorf("n=%d pd=%v: rate %v should be positive", n, pd, r)
			}
		}
	}
}

func TestExactUniformRateDecreasesWithBlocklength(t *testing.T) {
	// Known block boundaries act as synchronization markers, so the
	// per-bit rate decreases with n toward the boundary-free i.u.d.
	// information rate.
	const pd = 0.2
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 6, 8, 10} {
		r, err := ExactUniformRate(n, pd)
		if err != nil {
			t.Fatal(err)
		}
		if r > prev+1e-9 {
			t.Fatalf("rate increased at n=%d: %v > %v", n, r, prev)
		}
		prev = r
	}
}

func TestExactUniformRateN1IsErasure(t *testing.T) {
	// A single bit per block: the receiver sees either the bit or an
	// empty block, which is exactly a binary erasure channel.
	for _, pd := range []float64{0.1, 0.3, 0.7} {
		r, err := ExactUniformRate(1, pd)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, 1-pd, 1e-9) {
			t.Fatalf("pd=%v: n=1 rate %v, want erasure rate %v", pd, r, 1-pd)
		}
	}
}

func TestBoundsOrdering(t *testing.T) {
	err := quick.Check(func(raw uint8) bool {
		pd := float64(raw) / 255 * 0.49
		return GallagerLowerBound(pd) <= ErasureUpperBound(pd)+1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if GallagerLowerBound(0.6) != 0 {
		t.Error("Gallager bound should clamp at pd >= 0.5")
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	const (
		n  = 8
		pd = 0.15
	)
	exact, err := ExactUniformRate(n, pd)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloUniformRate(n, pd, 5000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc-exact) > 0.05 {
		t.Fatalf("Monte Carlo %v vs exact %v", mc, exact)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarloUniformRate(0, 0.1, 10, rng.New(1)); err == nil {
		t.Error("expected blocklength error")
	}
	if _, err := MonteCarloUniformRate(4, 1.5, 10, rng.New(1)); err == nil {
		t.Error("expected probability error")
	}
	if _, err := MonteCarloUniformRate(4, 0.1, 0, rng.New(1)); err == nil {
		t.Error("expected sample size error")
	}
	if _, err := MonteCarloUniformRate(4, 0.1, 10, nil); err == nil {
		t.Error("expected nil source error")
	}
}

func TestMonteCarloLargeBlocklength(t *testing.T) {
	// n = 16 is out of reach for enumeration; the estimate must land
	// between plausible bounds.
	const pd = 0.1
	mc, err := MonteCarloUniformRate(16, pd, 3000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if mc <= 0.4 || mc > ErasureUpperBound(pd)+0.05 {
		t.Fatalf("n=16 estimate %v outside plausible range (0.4, %v]", mc, ErasureUpperBound(pd))
	}
}

func TestMonteCarloFullDeletion(t *testing.T) {
	mc, err := MonteCarloUniformRate(8, 1, 100, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if mc != 0 {
		t.Fatalf("rate at pd=1 is %v, want 0", mc)
	}
}
