package delcap

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// Regression: NaN passed the pd range checks and produced NaN rates.
func TestRateFunctionsRejectNaN(t *testing.T) {
	if _, err := ExactUniformRate(4, math.NaN()); err == nil {
		t.Error("ExactUniformRate accepted NaN deletion probability")
	}
	if _, err := MonteCarloUniformRate(8, math.NaN(), 10, rng.New(1)); err == nil {
		t.Error("MonteCarloUniformRate accepted NaN deletion probability")
	}
	if _, err := ExactUniformRate(4, math.Inf(1)); err == nil {
		t.Error("ExactUniformRate accepted +Inf deletion probability")
	}
}
