package mls

import (
	"errors"
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
)

func TestBellLaPadulaMatrix(t *testing.T) {
	tests := []struct {
		subject, object Level
		read, write     bool
	}{
		{Low, Low, true, true},
		{Low, High, false, true}, // no read up; write up legal
		{High, Low, true, false}, // read down legal; no write down
		{High, High, true, true},
	}
	for _, tt := range tests {
		if got := CanRead(tt.subject, tt.object); got != tt.read {
			t.Errorf("CanRead(%v, %v) = %v, want %v", tt.subject, tt.object, got, tt.read)
		}
		if got := CanWrite(tt.subject, tt.object); got != tt.write {
			t.Errorf("CanWrite(%v, %v) = %v, want %v", tt.subject, tt.object, got, tt.write)
		}
	}
}

func TestSystemEnforcesMonitor(t *testing.T) {
	sys := NewSystem()
	if err := sys.Create("secret", High); err != nil {
		t.Fatal(err)
	}
	if err := sys.Create("public", Low); err != nil {
		t.Fatal(err)
	}

	// Legal: High writes High, Low reads Low.
	if err := sys.Write(High, "secret", 42); err != nil {
		t.Fatalf("legal write denied: %v", err)
	}
	if _, err := sys.Read(Low, "public"); err != nil {
		t.Fatalf("legal read denied: %v", err)
	}

	// Illegal: Low reads High (read up).
	_, err := sys.Read(Low, "secret")
	var denied *AccessError
	if !errors.As(err, &denied) {
		t.Fatalf("read up allowed: %v", err)
	}
	if denied.Op != "read" {
		t.Errorf("denial op = %q", denied.Op)
	}

	// Illegal: High writes Low (write down) — the flow the covert
	// channel circumvents.
	if err := sys.Write(High, "public", 1); !errors.As(err, &denied) {
		t.Fatalf("write down allowed: %v", err)
	}

	// Legal: Low writes High (write up) — the feedback path.
	if err := sys.Write(Low, "secret", 7); err != nil {
		t.Fatalf("write up denied: %v", err)
	}
}

func TestSystemObjectErrors(t *testing.T) {
	sys := NewSystem()
	if err := sys.Create("x", Level(9)); err == nil {
		t.Error("expected invalid level error")
	}
	if err := sys.Create("x", Low); err != nil {
		t.Fatal(err)
	}
	if err := sys.Create("x", Low); err == nil {
		t.Error("expected duplicate error")
	}
	if _, err := sys.Read(High, "missing"); err == nil {
		t.Error("expected missing object error")
	}
	if err := sys.Write(High, "missing", 0); err == nil {
		t.Error("expected missing object error")
	}
}

func TestLevelString(t *testing.T) {
	if Low.String() != "low" || High.String() != "high" || Level(0).String() != "invalid" {
		t.Fatal("Level.String mismatch")
	}
}

func TestExploitAchievesDegradedCapacity(t *testing.T) {
	// E9: the exploit's measured rate should approach the paper's
	// corrected capacity N*(1-Pd) despite the reference monitor.
	p := channel.Params{N: 4, Pd: 0.25}
	sys := NewSystem()
	ex, err := NewExploit(sys, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	msg := make([]uint32, 20000)
	for i := range msg {
		msg[i] = src.Symbol(4)
	}
	res, err := ex.Leak(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolErrors != 0 {
		t.Fatalf("deletion-only leak had %d errors", res.SymbolErrors)
	}
	want, err := core.UpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.InfoRatePerUse(); math.Abs(got-want) > 0.15 {
		t.Fatalf("leak rate %v, want ~%v", got, want)
	}
	if res.FeedbackWrites == 0 {
		t.Fatal("feedback path unused")
	}
}

func TestExploitWithInsertions(t *testing.T) {
	p := channel.Params{N: 4, Pd: 0.15, Pi: 0.1}
	sys := NewSystem()
	ex, err := NewExploit(sys, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(4)
	msg := make([]uint32, 20000)
	for i := range msg {
		msg[i] = src.Symbol(4)
	}
	res, err := ex.Leak(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolErrors == 0 {
		t.Fatal("insertions should cause slot errors")
	}
	lower, err := core.LowerBoundPerUse(p)
	if err != nil {
		t.Fatal(err)
	}
	upper, err := core.UpperBound(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.InfoRatePerUse()
	if got < lower-0.15 || got > upper+0.15 {
		t.Fatalf("leak rate %v outside [%v, %v]", got, lower, upper)
	}
}

func TestExploitValidation(t *testing.T) {
	if _, err := NewExploit(nil, channel.Params{N: 1}, 1); err == nil {
		t.Error("expected nil system error")
	}
	if _, err := NewExploit(NewSystem(), channel.Params{N: 0}, 1); err == nil {
		t.Error("expected params error")
	}
	sys := NewSystem()
	ex, err := NewExploit(sys, channel.Params{N: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Leak([]uint32{9}); err == nil {
		t.Error("expected alphabet error")
	}
}

func TestExploitReusesAckObject(t *testing.T) {
	sys := NewSystem()
	if _, err := NewExploit(sys, channel.Params{N: 2}, 1); err != nil {
		t.Fatal(err)
	}
	// A second exploit on the same system must not fail on Create.
	if _, err := NewExploit(sys, channel.Params{N: 2}, 2); err != nil {
		t.Fatalf("second exploit failed: %v", err)
	}
}

func TestResultZero(t *testing.T) {
	var r Result
	if r.InfoRatePerUse() != 0 {
		t.Fatal("zero Result should report zero rate")
	}
}
