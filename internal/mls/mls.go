// Package mls implements the paper's Section 4.4 multi-level-security
// scenario: in an MLS system the legal information flow (low to high)
// can serve as a perfect feedback path for a high-to-low covert
// channel, so "covert channels in MLS systems are relatively easy to
// exploit in general and tend to be fast" — the synchronized capacity
// C*(1-Pd) is practically achievable with the simple counter protocol.
//
// The package models a two-level system with a Bell–LaPadula reference
// monitor (no read up, no write down), a covert high-to-low path built
// on a shared resource attribute subject to Definition 1 non-synchrony,
// and the exploit that routes the receiver's counter back up through a
// perfectly legal write-up.
package mls

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Level is a security level in the two-level lattice.
type Level int

// The two levels of the lattice.
const (
	Low Level = iota + 1
	High
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case Low:
		return "low"
	case High:
		return "high"
	default:
		return "invalid"
	}
}

// CanRead implements the simple security property: a subject may read
// an object only at or below its own level (no read up).
func CanRead(subject, object Level) bool { return subject >= object }

// CanWrite implements the *-property: a subject may write an object
// only at or above its own level (no write down).
func CanWrite(subject, object Level) bool { return subject <= object }

// AccessError reports a reference-monitor denial.
type AccessError struct {
	Op      string
	Subject Level
	Object  Level
}

// Error implements the error interface.
func (e *AccessError) Error() string {
	return fmt.Sprintf("mls: %s subject may not %s %s object", e.Subject, e.Op, e.Object)
}

// object is a labeled storage cell.
type object struct {
	level Level
	value uint32
}

// System is a two-level MLS machine with labeled objects behind a
// reference monitor.
type System struct {
	objects map[string]*object
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{objects: make(map[string]*object)}
}

// Create adds an object at the given level. It returns an error if the
// name is taken or the level invalid.
func (s *System) Create(name string, level Level) error {
	if level != Low && level != High {
		return fmt.Errorf("mls: invalid level %d", level)
	}
	if _, ok := s.objects[name]; ok {
		return fmt.Errorf("mls: object %q already exists", name)
	}
	s.objects[name] = &object{level: level}
	return nil
}

// Read returns the object's value if the monitor allows the access.
func (s *System) Read(subject Level, name string) (uint32, error) {
	obj, ok := s.objects[name]
	if !ok {
		return 0, fmt.Errorf("mls: no object %q", name)
	}
	if !CanRead(subject, obj.level) {
		return 0, &AccessError{Op: "read", Subject: subject, Object: obj.level}
	}
	return obj.value, nil
}

// Write stores a value if the monitor allows the access.
func (s *System) Write(subject Level, name string, v uint32) error {
	obj, ok := s.objects[name]
	if !ok {
		return fmt.Errorf("mls: no object %q", name)
	}
	if !CanWrite(subject, obj.level) {
		return &AccessError{Op: "write", Subject: subject, Object: obj.level}
	}
	obj.value = v
	return nil
}

// Exploit is the Section 4.4 attack: a High sender leaks a message to a
// Low receiver over a non-synchronous covert path (Definition 1
// parameters), using a legal Low-to-High object as the feedback path
// carrying the receiver's counter, and the Appendix A counter protocol
// for synchronization.
type Exploit struct {
	sys *System
	ch  *channel.DeletionInsertion
	// ackName is the High-level object used as the legal feedback path.
	ackName string
}

// NewExploit wires an exploit into the system. The covert path's
// parameters model the non-synchrony of the shared-resource channel.
func NewExploit(sys *System, params channel.Params, seed uint64) (*Exploit, error) {
	if sys == nil {
		return nil, fmt.Errorf("mls: nil system")
	}
	ch, err := channel.NewDeletionInsertion(params, rng.New(seed))
	if err != nil {
		return nil, err
	}
	const ackName = "covert-ack"
	if _, ok := sys.objects[ackName]; !ok {
		if err := sys.Create(ackName, High); err != nil {
			return nil, err
		}
	}
	return &Exploit{sys: sys, ch: ch, ackName: ackName}, nil
}

// Result of one leak.
type Result struct {
	// Uses is the number of covert channel uses.
	Uses int
	// Delivered is the number of message positions resolved at Low.
	Delivered int
	// SymbolErrors counts wrong delivered positions.
	SymbolErrors int
	// MutualInfoPerSlot is the empirical per-slot mutual information.
	MutualInfoPerSlot float64
	// FeedbackWrites counts legal Low-to-High acknowledgement writes.
	FeedbackWrites int
}

// InfoRatePerUse returns the measured leak rate in bits per channel use.
func (r Result) InfoRatePerUse() float64 {
	if r.Uses == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Uses) * r.MutualInfoPerSlot
}

// Leak transmits msg from High to Low. Every feedback step goes through
// the reference monitor as a legal Low write / High read of the ack
// object; any denial is returned as an error (none should occur — that
// is the point of the scenario).
func (e *Exploit) Leak(msg []uint32) (Result, error) {
	p := e.ch.Params()
	limit := uint32(1) << uint(p.N)
	for i, s := range msg {
		if s >= limit {
			return Result{}, fmt.Errorf("mls: message symbol %d (=%d) outside %d-bit alphabet", i, s, p.N)
		}
	}
	var res Result
	received := make([]uint32, 0, len(msg))
	sent := 0
	for len(received) < len(msg) {
		// High reads the receiver counter over the legal path.
		ack, err := e.sys.Read(High, e.ackName)
		if err != nil {
			return Result{}, fmt.Errorf("mls: feedback read: %w", err)
		}
		if int(ack) > sent {
			sent = int(ack) // skip past inserted slots
		}
		res.Uses++
		u := e.ch.Use(msg[sent])
		switch u.Kind {
		case channel.EventDelete:
			// Lost; resend on the next opportunity.
		case channel.EventInsert:
			received = append(received, u.Delivered)
		default:
			received = append(received, u.Delivered)
			sent++
		}
		if len(received) > len(msg) {
			received = received[:len(msg)]
		}
		// Low acknowledges its count over the legal write-up path.
		if err := e.sys.Write(Low, e.ackName, uint32(len(received))); err != nil {
			return Result{}, fmt.Errorf("mls: feedback write: %w", err)
		}
		res.FeedbackWrites++
	}
	res.Delivered = len(received)
	jc, err := stats.NewJointCounter(int(limit), int(limit))
	if err != nil {
		return Result{}, err
	}
	for k, got := range received {
		if got != msg[k] {
			res.SymbolErrors++
		}
		if err := jc.Add(int(msg[k]), int(got)); err != nil {
			return Result{}, err
		}
	}
	res.MutualInfoPerSlot = jc.MutualInformation()
	return res, nil
}
