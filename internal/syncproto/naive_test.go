package syncproto

import (
	"testing"

	"repro/internal/channel"
)

func TestNewNaiveValidation(t *testing.T) {
	if _, err := NewNaive(nil); err == nil {
		t.Fatal("expected nil channel error")
	}
}

func TestNaiveCleanChannelIsPerfect(t *testing.T) {
	naive, err := NewNaive(mustChannel(t, channel.Params{N: 4}, 1))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(2, 2000, 4)
	res, err := naive.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolErrors != 0 || res.InfoRatePerUse() < 3.9 {
		t.Fatalf("clean naive run degraded: %+v", res)
	}
}

func TestNaiveCollapsesUnderDrift(t *testing.T) {
	// The motivating failure: a few percent of deletions destroys the
	// positional channel almost completely for long messages, while
	// the counter protocol on the same channel parameters stays near
	// capacity.
	p := channel.Params{N: 4, Pd: 0.05, Pi: 0.05}
	naive, err := NewNaive(mustChannel(t, p, 3))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(4, 20000, 4)
	resNaive, err := naive.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounter(mustChannel(t, p, 5))
	if err != nil {
		t.Fatal(err)
	}
	resCounter, err := counter.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if resNaive.InfoRatePerUse() > 0.2 {
		t.Fatalf("naive rate %v should have collapsed", resNaive.InfoRatePerUse())
	}
	if resCounter.InfoRatePerUse() < 3 {
		t.Fatalf("counter rate %v should stay near capacity", resCounter.InfoRatePerUse())
	}
	if resNaive.SkippedSymbols == 0 {
		t.Fatal("alignment diagnostics should report drift events")
	}
}

func TestNaiveRejectsInvalidSymbols(t *testing.T) {
	naive, err := NewNaive(mustChannel(t, channel.Params{N: 2}, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.Run([]uint32{4}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestNaiveSenderOpsExcludeInsertions(t *testing.T) {
	p := channel.Params{N: 2, Pi: 0.3}
	naive, err := NewNaive(mustChannel(t, p, 9))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(10, 5000, 2)
	res, err := naive.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SenderOps != len(msg) {
		t.Fatalf("sender ops %d, want %d (one per message symbol)", res.SenderOps, len(msg))
	}
	if res.Uses <= res.SenderOps {
		t.Fatal("insertions should add channel uses beyond sender ops")
	}
}
