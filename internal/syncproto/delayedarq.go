package syncproto

import (
	"fmt"

	"repro/internal/channel"
)

// DelayedARQ quantifies the mechanism-specific overhead the paper's
// Theorem 3 analysis deliberately excludes ("the capacity degradation
// modeled in our method ... does not include any specific overhead
// introduced by such mechanisms"): a stop-and-wait ARQ whose feedback
// arrives only after Delay further channel uses, during which the
// sender idles. Expected cost per symbol is (1 + Delay) / (1 - Pd)
// uses, so the achieved rate is N(1-Pd)/(1+Delay) — the inherent
// (1-Pd) factor times the mechanism's own 1/(1+Delay) factor.
type DelayedARQ struct {
	ch    UseChannel
	n     int
	pd    float64
	delay int
}

// NewDelayedARQ returns the protocol. The channel must be
// deletion-only and noiseless as in Theorem 3; delay >= 0 counts the
// channel uses that elapse before an acknowledgement arrives.
func NewDelayedARQ(ch *channel.DeletionInsertion, delay int) (*DelayedARQ, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	p := ch.Params()
	if p.Pi != 0 {
		return nil, fmt.Errorf("syncproto: delayed ARQ requires a deletion-only channel, got Pi = %v", p.Pi)
	}
	if p.Ps != 0 {
		return nil, fmt.Errorf("syncproto: delayed ARQ assumes a noiseless data channel, got Ps = %v", p.Ps)
	}
	if delay < 0 {
		return nil, fmt.Errorf("syncproto: negative feedback delay %d", delay)
	}
	return &DelayedARQ{ch: ch, n: p.N, pd: p.Pd, delay: delay}, nil
}

// NewDelayedARQOver returns the protocol over any per-use channel with
// n-bit symbols, with the same caveats as NewARQOver. nominalPd is the
// deletion probability PredictedRate assumes; a hostile wrapped
// channel may deviate from it at runtime.
func NewDelayedARQOver(ch UseChannel, n int, nominalPd float64, delay int) (*DelayedARQ, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	if nominalPd < 0 || nominalPd >= 1 {
		return nil, fmt.Errorf("syncproto: nominal Pd %v out of [0,1)", nominalPd)
	}
	if delay < 0 {
		return nil, fmt.Errorf("syncproto: negative feedback delay %d", delay)
	}
	return &DelayedARQ{ch: ch, n: n, pd: nominalPd, delay: delay}, nil
}

// Run transmits the message. Every message symbol is delivered exactly
// once and error-free; the feedback latency shows up as idle channel
// uses.
func (a *DelayedARQ) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, a.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", a.n)
	}
	res := Result{MessageSymbols: len(msg)}
	received := make([]uint32, 0, len(msg))
	for _, sym := range msg {
		for {
			res.Uses++
			res.SenderOps++
			u := a.ch.Use(sym)
			// The sender idles while the acknowledgement (or its
			// absence) propagates back.
			res.Uses += a.delay
			res.SenderOps += a.delay // wait/check operations
			if u.Kind == channel.EventTransmit {
				received = append(received, u.Delivered)
				break
			}
		}
	}
	if err := measureSlots(&res, msg, received, a.n); err != nil {
		return Result{}, err
	}
	return res, nil
}

// PredictedRate returns the analytic rate N(1-Pd)/(1+Delay) at the
// channel's nominal deletion probability.
func (a *DelayedARQ) PredictedRate() float64 {
	return float64(a.n) * (1 - a.pd) / float64(1+a.delay)
}
