package syncproto

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// CommonEvent models the Figure 3(b) mechanism: a common event source E
// (a shared clock or self-incrementing counter) paces both parties, but
// there is no feedback path. On every tick the sender, if it gets to
// run, writes the tick's message symbol into the shared variable; the
// receiver, if it gets to run, samples the variable and attributes the
// value to the tick.
//
// Each party independently misses a tick (is not scheduled in time)
// with its miss probability. A sender miss leaves a stale value that
// the receiver cannot detect (a substitution in the converted stream);
// a receiver miss loses the slot outright. The paper's Figure 4
// argument — a common event source achieves no more than feedback —
// shows up here as the measured rate staying below the ARQ feedback
// rate at the same deletion parameter (experiment E7).
type CommonEvent struct {
	n            int
	missS, missR float64
	src          *rng.Source
}

// NewCommonEvent returns the mechanism for n-bit symbols with the given
// per-tick miss probabilities.
func NewCommonEvent(n int, missS, missR float64, src *rng.Source) (*CommonEvent, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	if math.IsNaN(missS) || missS < 0 || missS > 1 {
		return nil, fmt.Errorf("syncproto: sender miss probability %v out of [0,1]", missS)
	}
	if math.IsNaN(missR) || missR < 0 || missR > 1 {
		return nil, fmt.Errorf("syncproto: receiver miss probability %v out of [0,1]", missR)
	}
	if src == nil {
		return nil, fmt.Errorf("syncproto: nil randomness source")
	}
	return &CommonEvent{n: n, missS: missS, missR: missR, src: src}, nil
}

// RunWithSenderPath models Figure 4(b): an additional path from the
// sender to the event source lets E observe whether the sender acted
// on each tick and relay that to the receiver, and symmetrically relay
// the receiver's progress to the sender. The paper's argument is that
// this configuration "indeed can be regarded as one single party and
// ... actually becomes the synchronization method using feedback". The
// simulation confirms the ordering: the enriched mechanism is
// error-free (the receiver discards slots E marks stale; the sender
// re-sends symbols E reports unread), strictly better than the plain
// common-event mechanism, and still no better than pure feedback ARQ.
func (c *CommonEvent) RunWithSenderPath(msg []uint32) (Result, error) {
	if !validSymbols(msg, c.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", c.n)
	}
	res := Result{MessageSymbols: len(msg)}
	var (
		shared   uint32
		fresh    bool // E knows whether the shared value is unread
		next     int
		received = make([]uint32, 0, len(msg))
		slotMsg  = make([]uint32, 0, len(msg))
	)
	for len(received) < len(msg) {
		res.Uses++
		if !c.src.Bool(c.missS) {
			res.SenderOps++
			// E tells the sender whether the last symbol was consumed.
			if !fresh && next < len(msg) {
				shared = msg[next]
				next++
				fresh = true
			}
		}
		if !c.src.Bool(c.missR) && fresh {
			// E marks the slot fresh, so the receiver never consumes a
			// stale value.
			slotMsg = append(slotMsg, msg[len(received)])
			received = append(received, shared)
			fresh = false
		}
	}
	if err := measureSlots(&res, slotMsg, received, c.n); err != nil {
		return Result{}, err
	}
	return res, nil
}

// Run transmits the message, one tick per message symbol, and returns
// the accounting. Uses counts ticks; SenderOps counts sender-attended
// ticks. Delivered counts receiver-attended ticks; a slot is in error
// when the sampled value is stale and differs from the tick's symbol.
func (c *CommonEvent) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, c.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", c.n)
	}
	res := Result{MessageSymbols: len(msg)}
	// The shared variable starts with channel noise rather than a
	// message symbol.
	shared := c.src.Symbol(c.n)

	// Slot-aligned measurement: slotMsg/slotGot collect the
	// receiver-attended (message symbol, sampled value) pairs. The
	// message index is the tick number, mirroring the counter
	// protocol's position discipline, so measureSlots applies with the
	// attended subsequence.
	slotMsg := make([]uint32, 0, len(msg))
	slotGot := make([]uint32, 0, len(msg))
	for t, sym := range msg {
		res.Uses++
		if !c.src.Bool(c.missS) {
			res.SenderOps++
			shared = sym
		}
		if !c.src.Bool(c.missR) {
			slotMsg = append(slotMsg, msg[t])
			slotGot = append(slotGot, shared)
		}
	}
	if err := measureSlots(&res, slotMsg, slotGot, c.n); err != nil {
		return Result{}, err
	}
	if res.SkippedSymbols = len(msg) - res.Delivered; res.SkippedSymbols < 0 {
		res.SkippedSymbols = 0
	}
	return res, nil
}
