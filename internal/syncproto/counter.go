package syncproto

import (
	"fmt"

	"repro/internal/channel"
)

// Counter is the Appendix A protocol proving Theorem 5. Both parties
// keep counters: the receiver counts symbols received and reports the
// count over the perfect feedback path; the sender counts message
// symbols sent or skipped. On each opportunity the sender compares the
// counts:
//
//   - receiver behind: the last symbol was deleted; wait and resend;
//   - counts equal: send the next message symbol;
//   - receiver ahead: symbols were inserted; skip message symbols so the
//     next sent symbol lands at its correct position in the received
//     stream.
//
// The result is a synchronous stream in which position k holds the k-th
// message symbol unless an insertion filled it (wrong with probability
// α = 1 - 2^-N), i.e. exactly the Figure 5 converted channel.
type Counter struct {
	ch UseChannel
	n  int
}

// UseChannel is the per-use channel surface the interactive protocols
// need: one Definition 1 event per call. Both the i.i.d.
// channel.DeletionInsertion and the Markov-modulated channel.Bursty
// satisfy it.
type UseChannel interface {
	Use(queued uint32) channel.Use
}

// NewCounter returns the protocol bound to a deletion–insertion
// channel (any Pd, Pi; Ps adds ordinary substitutions on top of the
// converted channel's insertion noise).
func NewCounter(ch *channel.DeletionInsertion) (*Counter, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	return &Counter{ch: ch, n: ch.Params().N}, nil
}

// NewCounterOver returns the protocol over any per-use channel with
// n-bit symbols (for example a bursty channel).
func NewCounterOver(ch UseChannel, n int) (*Counter, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	return &Counter{ch: ch, n: n}, nil
}

// Run transmits the message and returns the run accounting. The
// receiver's slot k estimate of message symbol k is received[k]; slots
// filled by insertions (or hit by substitutions) count as symbol
// errors. The run ends when every message position is resolved
// (delivered or skipped past).
func (c *Counter) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, c.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", c.n)
	}
	res := Result{MessageSymbols: len(msg)}
	received := make([]uint32, 0, len(msg))
	sent := 0 // sender counter: message symbols sent or skipped
	for len(received) < len(msg) {
		// Sender opportunity: perfect feedback gives it len(received).
		if sent < len(received) {
			// Insertions ran ahead; skip to re-synchronize.
			res.SkippedSymbols += len(received) - sent
			sent = len(received)
		}
		res.Uses++
		res.SenderOps++
		u := c.ch.Use(msg[sent])
		switch u.Kind {
		case channel.EventDelete:
			// Lost; the counters now disagree and the sender resends.
		case channel.EventInsert:
			// The receiver believes a symbol arrived. The sender was
			// not involved, so this use cost it only the check it
			// performs anyway; the dedicated send did not happen.
			res.SenderOps--
			received = append(received, u.Delivered)
		default: // transmit or substitute
			received = append(received, u.Delivered)
			sent++
		}
	}
	if err := measureSlots(&res, msg, received, c.n); err != nil {
		return Result{}, err
	}
	return res, nil
}
