package syncproto

import (
	"bytes"
	"testing"

	"repro/internal/channel"
	"repro/internal/obs"
)

// tracedDeadRun drives the dead-channel supervision scenario (every
// attempt fails, every chunk is abandoned) with a tracer attached and
// returns the result plus the raw trace bytes.
func tracedDeadRun(t *testing.T) (SupervisedResult, []byte) {
	t.Helper()
	const n = 4
	meter := meteredChannel(t, channel.Params{N: n, Pd: 1}, 4)
	arq, err := NewARQOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sup, err := NewSupervisor(arq, counter, meter, SupervisorConfig{
		ChunkSymbols: 64, AttemptUses: 128, MaxAttempts: 2, BackoffBase: 8,
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run(superMsg(5, 256, n))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSupervisorTraceMatchesResult checks that the supervision events a
// traced run emits reproduce the SupervisedResult accounting when read
// back through obs.ReadTrace.
func TestSupervisorTraceMatchesResult(t *testing.T) {
	res, raw := tracedDeadRun(t)
	sum, err := obs.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Chunks != int64(res.Chunks) {
		t.Errorf("trace chunks = %d, result has %d", sum.Chunks, res.Chunks)
	}
	if sum.Attempts != int64(res.Attempts) {
		t.Errorf("trace attempts = %d, result has %d", sum.Attempts, res.Attempts)
	}
	if sum.FailedChunks != int64(res.FailedChunks) {
		t.Errorf("trace failed chunks = %d, result has %d", sum.FailedChunks, res.FailedChunks)
	}
	if sum.BackoffUses != res.BackoffUses {
		t.Errorf("trace backoff uses = %d, result has %d", sum.BackoffUses, res.BackoffUses)
	}
	if sum.Resyncs != int64(res.Resyncs) {
		t.Errorf("trace resyncs = %d, result has %d", sum.Resyncs, res.Resyncs)
	}
	// On a dead channel every chunk needs a second attempt per protocol
	// pass: the analyzer's retry count (attempts beyond a chunk's first)
	// must be exactly the attempt events with attempt >= 2.
	if want := int64(res.Attempts / 2); sum.Retries != want {
		t.Errorf("trace retries = %d, want %d second attempts", sum.Retries, want)
	}
}

// TestSupervisorTraceResyncAndRecover checks the divergence-driven
// events: a naive protocol that drifts off sync forces a resync to the
// counter fallback, and with RecoverAfter set the supervisor returns to
// the active protocol — both transitions must appear in the trace.
func TestSupervisorTraceResyncAndRecover(t *testing.T) {
	const n = 4
	meter := meteredChannel(t, channel.Params{N: n, Pd: 0.1, Pi: 0.05}, 11)
	naive, err := NewNaiveOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	sup, err := NewSupervisor(naive, counter, meter, SupervisorConfig{
		ChunkSymbols: 256, RecoverAfter: 2, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run(superMsg(12, 8000, n))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Resyncs != int64(res.Resyncs) || sum.Resyncs < 2 {
		t.Errorf("trace resyncs = %d, result %d, want >= 2", sum.Resyncs, res.Resyncs)
	}
	if sum.Recoveries != int64(res.Recoveries) || sum.Recoveries == 0 {
		t.Errorf("trace recoveries = %d, result %d, want > 0", sum.Recoveries, res.Recoveries)
	}
}

// TestSupervisorTraceDeterministic replays the traced dead-channel run
// and requires byte-identical trace output.
func TestSupervisorTraceDeterministic(t *testing.T) {
	_, a := tracedDeadRun(t)
	_, b := tracedDeadRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("trace is not replayable:\n%q\n%q", a, b)
	}
}
