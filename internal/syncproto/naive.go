package syncproto

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/stats"
)

// Naive is the strawman that motivates the whole paper: the sender
// pushes symbols with no feedback, no common events and no coding; the
// receiver assumes slot k of the received stream is message symbol k.
// A single unrepaired deletion or insertion shifts every later slot,
// so the per-slot mutual information collapses toward zero as the
// message grows — quantifying why non-synchronous channels cannot be
// treated as synchronous ones.
type Naive struct {
	ch UseChannel
	n  int
}

// NewNaive returns the protocol bound to a deletion–insertion channel.
func NewNaive(ch *channel.DeletionInsertion) (*Naive, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	return &Naive{ch: ch, n: ch.Params().N}, nil
}

// NewNaiveOver returns the protocol over any per-use channel with
// n-bit symbols (for example a fault-injected stack).
func NewNaiveOver(ch UseChannel, n int) (*Naive, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	return &Naive{ch: ch, n: n}, nil
}

// Run transmits the message once, with the receiver reading slots
// positionally. Result.Delivered counts the slots that have a
// positional counterpart; alignment-based deletion/insertion counts go
// to SkippedSymbols via the edit-distance trace for diagnostics.
func (p *Naive) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, p.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", p.n)
	}
	received, trace := transmitOver(p.ch, msg)
	res := Result{
		MessageSymbols: len(msg),
		Uses:           len(trace),
	}
	for _, e := range trace {
		if e != channel.EventInsert {
			res.SenderOps++
		}
	}
	// Positional comparison over the overlapping prefix.
	overlap := received
	if len(overlap) > len(msg) {
		overlap = overlap[:len(msg)]
	}
	if err := measureSlots(&res, msg, overlap, p.n); err != nil {
		return Result{}, err
	}
	// Diagnostics: how much of the damage is pure misalignment.
	counts := stats.Align(msg, received)
	res.SkippedSymbols = counts.Deletions + counts.Insertions
	return res, nil
}

// transmitOver pushes the whole input through a per-use channel,
// mirroring channel.DeletionInsertion.Transmit: the channel is used
// until every input symbol has been consumed, with insertions
// interleaved per Definition 1.
func transmitOver(ch UseChannel, input []uint32) (received []uint32, trace []channel.EventKind) {
	received = make([]uint32, 0, len(input))
	trace = make([]channel.EventKind, 0, len(input)+4)
	for i := 0; i < len(input); {
		u := ch.Use(input[i])
		trace = append(trace, u.Kind)
		switch u.Kind {
		case channel.EventDelete:
			i++
		case channel.EventInsert:
			received = append(received, u.Delivered)
		default:
			received = append(received, u.Delivered)
			i++
		}
	}
	return received, trace
}
