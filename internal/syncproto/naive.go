package syncproto

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/stats"
)

// Naive is the strawman that motivates the whole paper: the sender
// pushes symbols with no feedback, no common events and no coding; the
// receiver assumes slot k of the received stream is message symbol k.
// A single unrepaired deletion or insertion shifts every later slot,
// so the per-slot mutual information collapses toward zero as the
// message grows — quantifying why non-synchronous channels cannot be
// treated as synchronous ones.
type Naive struct {
	ch *channel.DeletionInsertion
}

// NewNaive returns the protocol bound to a deletion–insertion channel.
func NewNaive(ch *channel.DeletionInsertion) (*Naive, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	return &Naive{ch: ch}, nil
}

// Run transmits the message once, with the receiver reading slots
// positionally. Result.Delivered counts the slots that have a
// positional counterpart; alignment-based deletion/insertion counts go
// to SkippedSymbols via the edit-distance trace for diagnostics.
func (p *Naive) Run(msg []uint32) (Result, error) {
	params := p.ch.Params()
	if !validSymbols(msg, params.N) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", params.N)
	}
	received, trace := p.ch.Transmit(msg)
	res := Result{
		MessageSymbols: len(msg),
		Uses:           len(trace),
	}
	for _, e := range trace {
		if e != channel.EventInsert {
			res.SenderOps++
		}
	}
	// Positional comparison over the overlapping prefix.
	overlap := received
	if len(overlap) > len(msg) {
		overlap = overlap[:len(msg)]
	}
	if err := measureSlots(&res, msg, overlap, params.N); err != nil {
		return Result{}, err
	}
	// Diagnostics: how much of the damage is pure misalignment.
	counts := stats.Align(msg, received)
	res.SkippedSymbols = counts.Deletions + counts.Insertions
	return res, nil
}
