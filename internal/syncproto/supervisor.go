package syncproto

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/obs"
)

// Protocol is any synchronization protocol runner in this package:
// Naive, ARQ, DelayedARQ, Counter, CommonEvent and SyncVar all
// satisfy it.
type Protocol interface {
	Run(msg []uint32) (Result, error)
}

// budgetExhausted is the panic sentinel the UseMeter throws when an
// attempt's use budget runs out. The protocols' transmission loops are
// not preemptible (they loop until the channel delivers), so the meter
// unwinds them from inside the channel; the Supervisor recovers the
// sentinel and converts it into a failed attempt. Any other panic is
// re-thrown untouched.
type budgetExhausted struct{}

// UseMeter wraps a per-use channel, counting total uses and optionally
// enforcing a per-attempt budget. It is the supervision point that
// turns "deadline" into a channel-use quantity rather than wall time,
// keeping supervised runs deterministic.
type UseMeter struct {
	inner  UseChannel
	total  int64
	budget int64 // remaining uses this attempt; < 0 means unlimited
}

// NewUseMeter wraps inner with an unlimited budget.
func NewUseMeter(inner UseChannel) (*UseMeter, error) {
	if inner == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	return &UseMeter{inner: inner, budget: -1}, nil
}

// Use forwards one use, enforcing the budget.
func (m *UseMeter) Use(queued uint32) channel.Use {
	if m.budget == 0 {
		panic(budgetExhausted{})
	}
	if m.budget > 0 {
		m.budget--
	}
	m.total++
	return m.inner.Use(queued)
}

// Total returns the number of uses served, including burned ones.
func (m *UseMeter) Total() int64 { return m.total }

// SetBudget arms the per-attempt budget: the next n uses succeed, the
// n+1-th panics with the budget sentinel.
func (m *UseMeter) SetBudget(n int64) { m.budget = n }

// ClearBudget disarms the budget.
func (m *UseMeter) ClearBudget() { m.budget = -1 }

// Burn consumes n uses from the wrapped channel, bypassing the budget.
// The supervisor backs off by burning uses — the channel (and any
// fault regime riding on it) keeps evolving while the sender waits,
// which is what a deterministic, wall-clock-free backoff means here.
func (m *UseMeter) Burn(n int64) {
	for i := int64(0); i < n; i++ {
		m.total++
		m.inner.Use(0)
	}
}

// Status classifies a supervised run.
type Status int

const (
	// StatusOK: every chunk completed first try with clean error rates
	// and (if configured) an achieved rate above the floor.
	StatusOK Status = iota
	// StatusDegraded: the run completed and delivered data, but needed
	// retries, resynchronization or chunk skips, or the achieved
	// quality fell below the configured thresholds. The reported rate
	// is the honestly achieved one.
	StatusDegraded
	// StatusFailed: nothing was delivered.
	StatusFailed
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDegraded:
		return "degraded"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// SupervisorConfig tunes the supervision loop. The zero value selects
// workable defaults; all quantities are counted in channel uses or
// chunks, never wall time, so supervised runs replay byte-identically.
type SupervisorConfig struct {
	// ChunkSymbols is the supervision granularity: the message is
	// transferred in chunks of this many symbols, each supervised
	// independently (default 256).
	ChunkSymbols int
	// AttemptUses is the per-attempt deadline in channel uses (0 = no
	// deadline). Requires a UseMeter; attempts exceeding the budget
	// are aborted and retried.
	AttemptUses int
	// MaxAttempts bounds attempts per chunk per protocol (default 3).
	MaxAttempts int
	// BackoffBase is the number of uses burned after the first failed
	// attempt; each further failure doubles it (default 16).
	BackoffBase int
	// ErrorThreshold is the chunk symbol-error rate above which the
	// supervisor falls back from the active protocol to the resync
	// protocol (default 0.25).
	ErrorThreshold float64
	// RecoverAfter is the number of consecutive clean fallback chunks
	// (error rate <= ErrorThreshold/2) after which the supervisor
	// returns to the active protocol (0 = stay on the fallback).
	RecoverAfter int
	// DegradedRateFloor marks the run Degraded when the achieved
	// information rate (bits per channel use) falls below this floor
	// (0 = disabled). Callers typically set it from a clean
	// calibration run. Bounding the information rate rather than raw
	// throughput matters under insertion-heavy regimes, which keep
	// slots flowing while quietly destroying their information
	// content.
	DegradedRateFloor float64
	// Tracer, when non-nil, records the supervision state machine as
	// structured events: chunk starts (with the protocol phase),
	// attempts, backoff burns, resyncs, recoveries, abandoned chunks
	// and a final summary. Every recorded field is a deterministic
	// count, so supervised traces replay byte-identically.
	Tracer *obs.Tracer
}

// withDefaults fills unset fields.
func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.ChunkSymbols == 0 {
		c.ChunkSymbols = 256
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 16
	}
	if c.ErrorThreshold == 0 {
		c.ErrorThreshold = 0.25
	}
	return c
}

// validate rejects nonsensical configurations.
func (c SupervisorConfig) validate() error {
	if c.ChunkSymbols < 1 {
		return fmt.Errorf("syncproto: supervisor chunk size %d, want >= 1", c.ChunkSymbols)
	}
	if c.AttemptUses < 0 {
		return fmt.Errorf("syncproto: negative attempt budget %d", c.AttemptUses)
	}
	if c.MaxAttempts < 1 {
		return fmt.Errorf("syncproto: max attempts %d, want >= 1", c.MaxAttempts)
	}
	if c.BackoffBase < 0 {
		return fmt.Errorf("syncproto: negative backoff base %d", c.BackoffBase)
	}
	if c.ErrorThreshold < 0 || c.ErrorThreshold > 1 {
		return fmt.Errorf("syncproto: error threshold %v out of [0,1]", c.ErrorThreshold)
	}
	if c.RecoverAfter < 0 {
		return fmt.Errorf("syncproto: negative recover-after %d", c.RecoverAfter)
	}
	if c.DegradedRateFloor < 0 {
		return fmt.Errorf("syncproto: negative degraded-rate floor %v", c.DegradedRateFloor)
	}
	return nil
}

// SupervisedResult is the aggregate accounting of a supervised run.
type SupervisedResult struct {
	// Result aggregates the per-chunk accounting. MutualInfoPerSlot is
	// the delivered-slot-weighted mean of the chunk measurements; Uses
	// includes aborted attempts and backoff burns when a meter is
	// attached, because those uses were really consumed.
	Result
	// Status classifies the run.
	Status Status
	// Chunks is the number of supervised chunks.
	Chunks int
	// Attempts is the total number of protocol attempts.
	Attempts int
	// Retries is the number of failed attempts that were retried.
	Retries int
	// Resyncs counts active->fallback transitions.
	Resyncs int
	// Recoveries counts fallback->active transitions.
	Recoveries int
	// FailedChunks is the number of chunks abandoned after every
	// attempt (their symbols are never delivered).
	FailedChunks int
	// BackoffUses is the number of channel uses burned backing off.
	BackoffUses int64
}

// Supervisor runs a protocol chunk by chunk with per-attempt deadlines
// (in channel uses), bounded deterministic exponential backoff, and
// fallback to a resynchronization protocol when the measured error
// rate diverges. It exists so that hostile channel regimes degrade a
// transfer instead of wedging or silently corrupting it: the result
// reports the honestly achieved rate plus a Status classifying the
// run.
//
// The supervisor state machine (see DESIGN.md §7):
//
//	ACTIVE   --chunk error rate > threshold-->            FALLBACK
//	ACTIVE   --attempts exhausted, fallback succeeds-->   FALLBACK
//	FALLBACK --RecoverAfter consecutive clean chunks-->   ACTIVE
//	any      --attempts exhausted on both protocols-->    chunk skipped
type Supervisor struct {
	cfg    SupervisorConfig
	active Protocol
	resync Protocol // fallback; nil = no fallback
	meter  *UseMeter
}

// NewSupervisor builds a supervisor for the active protocol. resync is
// the fallback protocol (typically a Counter over the same metered
// channel; nil disables fallback). meter must be the UseMeter the
// protocols run over for deadlines and backoff to work; nil disables
// both (chunking, retry accounting and degradation detection still
// apply).
func NewSupervisor(active, resync Protocol, meter *UseMeter, cfg SupervisorConfig) (*Supervisor, error) {
	if active == nil {
		return nil, fmt.Errorf("syncproto: nil protocol")
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.AttemptUses > 0 && meter == nil {
		return nil, fmt.Errorf("syncproto: attempt deadline requires a UseMeter")
	}
	return &Supervisor{cfg: cfg, active: active, resync: resync, meter: meter}, nil
}

// runAttempt executes one attempt, converting a budget-sentinel panic
// into ok = false.
func (s *Supervisor) runAttempt(p Protocol, chunk []uint32) (res Result, ok bool, err error) {
	if s.meter != nil && s.cfg.AttemptUses > 0 {
		s.meter.SetBudget(int64(s.cfg.AttemptUses))
		defer s.meter.ClearBudget()
	}
	defer func() {
		if r := recover(); r != nil {
			if _, isBudget := r.(budgetExhausted); isBudget {
				ok = false
				return
			}
			panic(r)
		}
	}()
	res, err = p.Run(chunk)
	return res, err == nil, err
}

// tryChunk drives one chunk through up to MaxAttempts attempts of one
// protocol, backing off between failures. Alongside the chunk result
// it returns the attempt's accounting uses that never touched the
// channel (DelayedARQ's idle feedback slots), which the meter cannot
// see but the aggregate Uses must include. chunkIdx labels the trace
// events.
func (s *Supervisor) tryChunk(p Protocol, chunk []uint32, chunkIdx int, sup *SupervisedResult) (Result, int, bool, error) {
	backoff := int64(s.cfg.BackoffBase)
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		sup.Attempts++
		s.cfg.Tracer.Event("attempt", obs.I("chunk", int64(chunkIdx)), obs.I("attempt", int64(attempt+1)))
		var before int64
		if s.meter != nil {
			before = s.meter.Total()
		}
		res, ok, err := s.runAttempt(p, chunk)
		if err != nil {
			// A protocol error (as opposed to a deadline) is a caller
			// mistake — invalid symbols, misconfiguration — and
			// retrying cannot fix it.
			return Result{}, 0, false, err
		}
		if ok {
			idle := 0
			if s.meter != nil {
				if d := res.Uses - int(s.meter.Total()-before); d > 0 {
					idle = d
				}
			}
			return res, idle, true, nil
		}
		sup.Retries++
		if s.meter != nil && backoff > 0 && attempt < s.cfg.MaxAttempts-1 {
			s.meter.Burn(backoff)
			sup.BackoffUses += backoff
			s.cfg.Tracer.Event("backoff", obs.I("chunk", int64(chunkIdx)), obs.I("uses", backoff))
			if backoff <= 1<<30 {
				backoff *= 2
			}
		}
	}
	return Result{}, 0, false, nil
}

// Run transfers the message under supervision.
func (s *Supervisor) Run(msg []uint32) (SupervisedResult, error) {
	sup := SupervisedResult{}
	sup.MessageSymbols = len(msg)
	var startUses int64
	if s.meter != nil {
		startUses = s.meter.Total()
	}
	var (
		onFallback  bool
		cleanStreak int
		miWeighted  float64
		sumUses     int
		idleUses    int
	)
	for start := 0; start < len(msg); start += s.cfg.ChunkSymbols {
		end := start + s.cfg.ChunkSymbols
		if end > len(msg) {
			end = len(msg)
		}
		chunk := msg[start:end]
		chunkIdx := sup.Chunks
		sup.Chunks++

		proto := s.active
		phase := "active"
		if onFallback && s.resync != nil {
			proto = s.resync
			phase = "fallback"
		}
		s.cfg.Tracer.Event("chunk", obs.I("chunk", int64(chunkIdx)), obs.S("proto", phase))
		res, idle, ok, err := s.tryChunk(proto, chunk, chunkIdx, &sup)
		if err != nil {
			return SupervisedResult{}, err
		}
		if !ok && !onFallback && s.resync != nil {
			// The active protocol could not finish the chunk within
			// its deadlines; resynchronize via the fallback.
			res, idle, ok, err = s.tryChunk(s.resync, chunk, chunkIdx, &sup)
			if err != nil {
				return SupervisedResult{}, err
			}
			if ok {
				onFallback = true
				cleanStreak = 0
				sup.Resyncs++
				s.cfg.Tracer.Event("resync", obs.I("chunk", int64(chunkIdx)))
			}
		}
		if !ok {
			sup.FailedChunks++
			s.cfg.Tracer.Event("chunkfail", obs.I("chunk", int64(chunkIdx)))
			continue
		}

		// Aggregate the chunk accounting.
		sup.SenderOps += res.SenderOps
		sup.Delivered += res.Delivered
		sup.SymbolErrors += res.SymbolErrors
		sup.SkippedSymbols += res.SkippedSymbols
		miWeighted += res.MutualInfoPerSlot * float64(res.Delivered)
		sumUses += res.Uses
		idleUses += idle

		// Divergence detection and recovery.
		errRate := res.ErrorRate()
		if !onFallback {
			if errRate > s.cfg.ErrorThreshold && s.resync != nil {
				onFallback = true
				cleanStreak = 0
				sup.Resyncs++
				s.cfg.Tracer.Event("resync", obs.I("chunk", int64(chunkIdx)))
			}
		} else {
			if errRate <= s.cfg.ErrorThreshold/2 {
				cleanStreak++
				if s.cfg.RecoverAfter > 0 && cleanStreak >= s.cfg.RecoverAfter {
					onFallback = false
					cleanStreak = 0
					sup.Recoveries++
					s.cfg.Tracer.Event("recover", obs.I("chunk", int64(chunkIdx)))
				}
			} else {
				cleanStreak = 0
			}
		}
	}

	if s.meter != nil {
		// Channel uses (including aborted attempts and backoff burns)
		// plus accounting-only idle uses the meter cannot observe.
		sup.Uses = int(s.meter.Total()-startUses) + idleUses
	} else {
		sup.Uses = sumUses
	}
	if sup.Delivered > 0 {
		sup.MutualInfoPerSlot = miWeighted / float64(sup.Delivered)
	}

	switch {
	case len(msg) == 0:
		sup.Status = StatusOK
	case sup.Delivered == 0:
		sup.Status = StatusFailed
	case sup.Retries > 0 || sup.Resyncs > 0 || sup.FailedChunks > 0,
		sup.ErrorRate() > s.cfg.ErrorThreshold,
		s.cfg.DegradedRateFloor > 0 && sup.InfoRatePerUse() < s.cfg.DegradedRateFloor:
		sup.Status = StatusDegraded
	default:
		sup.Status = StatusOK
	}
	s.cfg.Tracer.Event("sup",
		obs.S("status", sup.Status.String()),
		obs.I("chunks", int64(sup.Chunks)),
		obs.I("attempts", int64(sup.Attempts)),
		obs.I("retries", int64(sup.Retries)),
		obs.I("resyncs", int64(sup.Resyncs)),
		obs.I("recoveries", int64(sup.Recoveries)),
		obs.I("failed", int64(sup.FailedChunks)),
		obs.I("uses", int64(sup.Uses)),
		obs.I("backoff_uses", sup.BackoffUses))
	return sup, nil
}
