// Package syncproto implements the synchronization mechanisms the paper
// studies for non-synchronous covert channels (Section 4.2):
//
//   - the resend-until-acknowledged ARQ protocol of Theorem 3, which
//     achieves the erasure-channel capacity of a deletion channel with
//     perfect feedback;
//   - the counter protocol of Theorem 5 / Appendix A, which converts a
//     deletion–insertion channel with perfect feedback into the M-ary
//     symmetric "converted channel" of Figure 5;
//   - the two-variable synchronization protocol of Figure 1, which
//     trades channel uses for perfectly synchronous transfer;
//   - the common-event-source mechanism of Figures 3(b) and 4, shown by
//     the paper to be no better than feedback.
//
// Every protocol runs over the Definition 1 channel model with
// deterministic randomness and reports enough accounting (channel uses,
// sender operations, delivered slots, errors, empirical mutual
// information) to compare measured rates against the analytic bounds in
// package core.
package syncproto

import (
	"fmt"

	"repro/internal/infotheory"
	"repro/internal/stats"
)

// Result is the accounting of one protocol run.
type Result struct {
	// MessageSymbols is the length of the transmitted message.
	MessageSymbols int
	// Uses is the number of channel uses consumed (Definition 1 events).
	Uses int
	// SenderOps is the number of sender operations: actual sends plus
	// wait/check operations. Insertions happen without sender action.
	SenderOps int
	// Delivered is the number of message positions resolved at the
	// receiver (for slot-aligned protocols, the received slot count).
	Delivered int
	// SymbolErrors is the number of delivered positions whose symbol
	// differs from the message symbol at that position.
	SymbolErrors int
	// SkippedSymbols counts message symbols the counter protocol
	// skipped to re-synchronize after insertions (always 0 for ARQ).
	SkippedSymbols int
	// MutualInfoPerSlot is the empirical mutual information in bits
	// between the message symbol and the delivered symbol at aligned
	// positions (0 if not measured).
	MutualInfoPerSlot float64
}

// ThroughputPerUse returns delivered symbols per channel use.
func (r Result) ThroughputPerUse() float64 {
	if r.Uses == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Uses)
}

// RawBitRatePerUse returns delivered raw bits (errors included) per
// channel use for symbols of n bits.
func (r Result) RawBitRatePerUse(n int) float64 {
	return r.ThroughputPerUse() * float64(n)
}

// InfoRatePerUse returns the measured information rate in bits per
// channel use: empirical per-slot mutual information times delivered
// slots per use. This is the quantity the paper's bounds constrain.
func (r Result) InfoRatePerUse() float64 {
	return r.ThroughputPerUse() * r.MutualInfoPerSlot
}

// InfoRatePerSenderOp returns the measured information rate in bits per
// sender operation, the normalization used by the paper's Theorem 5
// coefficient (1-Pd)/(1-Pi) (see DESIGN.md).
func (r Result) InfoRatePerSenderOp() float64 {
	if r.SenderOps == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.SenderOps) * r.MutualInfoPerSlot
}

// MSCInfoPerSlot returns the per-slot information implied by the
// measured slot error rate under the converted channel's M-ary
// symmetric model (Figure 5). Unlike the plug-in estimate in
// MutualInfoPerSlot, this closed form stays unbiased for large symbol
// alphabets, where the empirical joint distribution would need far
// more samples than a protocol run provides.
func (r Result) MSCInfoPerSlot(n int) float64 {
	return infotheory.MSCCapacity(1<<uint(n), r.ErrorRate())
}

// ErrorRate returns the fraction of delivered positions in error.
func (r Result) ErrorRate() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.SymbolErrors) / float64(r.Delivered)
}

// measureSlots fills the delivered/error/MI fields by comparing
// position-aligned message and received slices over an n-bit alphabet.
func measureSlots(res *Result, msg, received []uint32, n int) error {
	if len(received) > len(msg) {
		return fmt.Errorf("syncproto: %d received slots exceed %d message symbols", len(received), len(msg))
	}
	jc, err := stats.NewJointCounter(1<<uint(n), 1<<uint(n))
	if err != nil {
		return err
	}
	res.Delivered = len(received)
	for k, got := range received {
		if got != msg[k] {
			res.SymbolErrors++
		}
		if err := jc.Add(int(msg[k]), int(got)); err != nil {
			return err
		}
	}
	res.MutualInfoPerSlot = jc.MutualInformation()
	return nil
}
