package syncproto

import (
	"testing"

	"repro/internal/channel"
	"repro/internal/faultinject"
	"repro/internal/rng"
)

// superMsg builds a deterministic n-bit message.
func superMsg(seed uint64, symbols, n int) []uint32 {
	src := rng.New(seed)
	msg := make([]uint32, symbols)
	for i := range msg {
		msg[i] = src.Symbol(n)
	}
	return msg
}

// meteredChannel builds params -> DeletionInsertion -> UseMeter.
func meteredChannel(t *testing.T, params channel.Params, seed uint64) *UseMeter {
	t.Helper()
	ch, err := channel.NewDeletionInsertion(params, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewUseMeter(ch)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSupervisorCleanRunIsOK(t *testing.T) {
	const n = 4
	meter := meteredChannel(t, channel.Params{N: n, Pd: 0.1, Pi: 0.05}, 1)
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(counter, nil, meter, SupervisorConfig{AttemptUses: 4096})
	if err != nil {
		t.Fatal(err)
	}
	msg := superMsg(2, 4000, n)
	res, err := sup.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK {
		t.Fatalf("status = %v (retries %d, resyncs %d, failed %d), want ok",
			res.Status, res.Retries, res.Resyncs, res.FailedChunks)
	}
	if res.Delivered != len(msg) {
		t.Errorf("delivered %d of %d symbols", res.Delivered, len(msg))
	}
	if int64(res.Uses) != meter.Total() {
		t.Errorf("aggregate uses %d != meter total %d", res.Uses, meter.Total())
	}
	if res.InfoRatePerUse() <= 0 {
		t.Errorf("info rate %v, want > 0", res.InfoRatePerUse())
	}
}

func TestSupervisorMatchesUnsupervisedOnCleanChannel(t *testing.T) {
	const n = 4
	msg := superMsg(3, 8000, n)
	params := channel.Params{N: n, Pd: 0.15, Pi: 0.05}

	plainCh, err := channel.NewDeletionInsertion(params, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewCounterOver(plainCh, n)
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plain.Run(msg)
	if err != nil {
		t.Fatal(err)
	}

	meter := meteredChannel(t, params, 7)
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(counter, nil, meter, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	supRes, err := sup.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	// Chunking changes where each chunk's rng draws land, so compare
	// rates statistically rather than exactly.
	lo, hi := plainRes.ThroughputPerUse()*0.95, plainRes.ThroughputPerUse()*1.05
	if got := supRes.ThroughputPerUse(); got < lo || got > hi {
		t.Errorf("supervised throughput %v outside 5%% of unsupervised %v", got, plainRes.ThroughputPerUse())
	}
}

func TestSupervisorFailsWhenChannelIsDead(t *testing.T) {
	const n = 4
	// Pd = 1: nothing is ever delivered; every protocol attempt must
	// hit its deadline and the run must end Failed, not hang.
	meter := meteredChannel(t, channel.Params{N: n, Pd: 1}, 4)
	arq, err := NewARQOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(arq, counter, meter, SupervisorConfig{
		ChunkSymbols: 64, AttemptUses: 128, MaxAttempts: 2, BackoffBase: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := superMsg(5, 256, n)
	res, err := sup.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", res.Status)
	}
	if res.Delivered != 0 {
		t.Errorf("delivered %d symbols over a dead channel", res.Delivered)
	}
	if res.FailedChunks != 4 {
		t.Errorf("failed chunks = %d, want 4", res.FailedChunks)
	}
	// Each chunk: 2 ARQ attempts + 2 fallback attempts, all failed.
	if res.Attempts != 16 || res.Retries != 16 {
		t.Errorf("attempts = %d retries = %d, want 16 and 16", res.Attempts, res.Retries)
	}
	// One backoff burn of BackoffBase between the two attempts of each
	// tryChunk pass: 2 passes x 4 chunks x 8 uses.
	if res.BackoffUses != 64 {
		t.Errorf("backoff uses = %d, want 64", res.BackoffUses)
	}
}

func TestSupervisorResyncsOnDivergence(t *testing.T) {
	const n = 4
	meter := meteredChannel(t, channel.Params{N: n, Pd: 0.1, Pi: 0.05}, 9)
	naive, err := NewNaiveOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(naive, counter, meter, SupervisorConfig{ChunkSymbols: 512})
	if err != nil {
		t.Fatal(err)
	}
	msg := superMsg(10, 8000, n)
	res, err := sup.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want exactly 1 (naive diverges, counter holds)", res.Resyncs)
	}
	if res.Status != StatusDegraded {
		t.Fatalf("status = %v, want degraded", res.Status)
	}
	// The fallback must rescue the transfer: the aggregate error rate
	// has to sit far below naive's (which approaches 1 - 1/M on a
	// drifting positional read) because all but the first chunk ran
	// over the counter protocol.
	if res.ErrorRate() > 0.3 {
		t.Errorf("aggregate error rate %v: fallback did not rescue the run", res.ErrorRate())
	}
	if res.InfoRatePerUse() <= 0 {
		t.Errorf("info rate %v, want > 0", res.InfoRatePerUse())
	}
}

func TestSupervisorRecoversAfterCleanStreak(t *testing.T) {
	const n = 4
	meter := meteredChannel(t, channel.Params{N: n, Pd: 0.1, Pi: 0.05}, 11)
	naive, err := NewNaiveOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := NewCounterOver(meter, n)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(naive, counter, meter, SupervisorConfig{
		ChunkSymbols: 256, RecoverAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run(superMsg(12, 8000, n))
	if err != nil {
		t.Fatal(err)
	}
	// Naive diverges -> fallback; counter runs clean -> recovery;
	// naive diverges again -> fallback again. Both transitions must
	// appear.
	if res.Recoveries == 0 {
		t.Errorf("recoveries = 0, want > 0 with RecoverAfter = 2")
	}
	if res.Resyncs < 2 {
		t.Errorf("resyncs = %d, want >= 2 (re-divergence after recovery)", res.Resyncs)
	}
}

func TestSupervisorDegradedUnderOutage(t *testing.T) {
	const n = 4
	// runCounter builds base channel -> optional outage -> meter ->
	// counter -> supervisor and runs one supervised transfer.
	runCounter := func(outageFraction, floor float64) SupervisedResult {
		t.Helper()
		base, err := channel.NewDeletionInsertion(channel.Params{N: n, Pd: 0.05, Pi: 0.02}, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		var ch UseChannel = base
		if outageFraction > 0 {
			out, err := faultinject.NewOutage(base, faultinject.OutageConfig{Fraction: outageFraction}, rng.New(14))
			if err != nil {
				t.Fatal(err)
			}
			ch = out
		}
		meter, err := NewUseMeter(ch)
		if err != nil {
			t.Fatal(err)
		}
		counter, err := NewCounterOver(meter, n)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := NewSupervisor(counter, nil, meter, SupervisorConfig{
			AttemptUses: 4096, DegradedRateFloor: floor,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sup.Run(superMsg(15, 8000, n))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := runCounter(0, 0)
	if clean.Status != StatusOK {
		t.Fatalf("clean calibration run status = %v, want ok", clean.Status)
	}
	res := runCounter(0.2, 0.9*clean.InfoRatePerUse())
	if res.Status != StatusDegraded {
		t.Fatalf("status = %v under 20%% outage, want degraded (rate %v vs clean %v)",
			res.Status, res.InfoRatePerUse(), clean.InfoRatePerUse())
	}
	if res.InfoRatePerUse() <= 0 {
		t.Errorf("info rate %v under outage, want strictly positive", res.InfoRatePerUse())
	}
	if res.Delivered != 8000 {
		t.Errorf("delivered %d of 8000: outage must slow the counter protocol, not lose data", res.Delivered)
	}
}

func TestSupervisorDeterministicReplay(t *testing.T) {
	run := func() SupervisedResult {
		const n = 4
		base, err := channel.NewDeletionInsertion(channel.Params{N: n, Pd: 0.05, Pi: 0.02}, rng.New(21))
		if err != nil {
			t.Fatal(err)
		}
		spec, err := faultinject.ParseSpec("outage=0.3;jam=0.1")
		if err != nil {
			t.Fatal(err)
		}
		stack, err := spec.Build(base, n, rng.New(22))
		if err != nil {
			t.Fatal(err)
		}
		meter, err := NewUseMeter(stack)
		if err != nil {
			t.Fatal(err)
		}
		arq, err := NewARQOver(meter, n)
		if err != nil {
			t.Fatal(err)
		}
		counter, err := NewCounterOver(meter, n)
		if err != nil {
			t.Fatal(err)
		}
		sup, err := NewSupervisor(arq, counter, meter, SupervisorConfig{
			ChunkSymbols: 128, AttemptUses: 1024, MaxAttempts: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sup.Run(superMsg(23, 4000, n))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("supervised run is not replayable:\n%+v\n%+v", a, b)
	}
}

func TestSupervisorPropagatesRealPanics(t *testing.T) {
	meter := meteredChannel(t, channel.Params{N: 4, Pd: 0.1}, 1)
	sup, err := NewSupervisor(panicProtocol{}, nil, meter, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-budget panic was swallowed by the supervisor")
		}
	}()
	sup.Run(superMsg(1, 10, 4))
}

// panicProtocol panics with a non-sentinel value.
type panicProtocol struct{}

func (panicProtocol) Run([]uint32) (Result, error) { panic("unrelated bug") }

func TestSupervisorConfigErrors(t *testing.T) {
	meter := meteredChannel(t, channel.Params{N: 4, Pd: 0.1}, 1)
	counter, err := NewCounterOver(meter, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSupervisor(nil, nil, meter, SupervisorConfig{}); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := NewSupervisor(counter, nil, nil, SupervisorConfig{AttemptUses: 100}); err == nil {
		t.Error("attempt deadline without a meter accepted")
	}
	if _, err := NewSupervisor(counter, nil, meter, SupervisorConfig{ErrorThreshold: 2}); err == nil {
		t.Error("error threshold 2 accepted")
	}
	if _, err := NewSupervisor(counter, nil, meter, SupervisorConfig{RecoverAfter: -1}); err == nil {
		t.Error("negative recover-after accepted")
	}
}

func TestSupervisorEmptyMessage(t *testing.T) {
	meter := meteredChannel(t, channel.Params{N: 4, Pd: 0.1}, 1)
	counter, err := NewCounterOver(meter, 4)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(counter, nil, meter, SupervisorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sup.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOK || res.Chunks != 0 {
		t.Errorf("empty message: status %v chunks %d, want ok and 0", res.Status, res.Chunks)
	}
}
