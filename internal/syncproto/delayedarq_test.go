package syncproto

import (
	"math"
	"testing"

	"repro/internal/channel"
)

func TestNewDelayedARQValidation(t *testing.T) {
	if _, err := NewDelayedARQ(nil, 1); err == nil {
		t.Error("expected nil channel error")
	}
	if _, err := NewDelayedARQ(mustChannel(t, channel.Params{N: 2, Pi: 0.1}, 1), 1); err == nil {
		t.Error("expected insertion channel error")
	}
	if _, err := NewDelayedARQ(mustChannel(t, channel.Params{N: 2, Ps: 0.1}, 1), 1); err == nil {
		t.Error("expected noisy channel error")
	}
	if _, err := NewDelayedARQ(mustChannel(t, channel.Params{N: 2}, 1), -1); err == nil {
		t.Error("expected delay error")
	}
}

func TestDelayedARQZeroDelayMatchesARQ(t *testing.T) {
	p := channel.Params{N: 4, Pd: 0.25}
	msg := randomMessage(2, 10000, 4)

	d, err := NewDelayedARQ(mustChannel(t, p, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := d.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * (1 - p.Pd)
	if math.Abs(resD.InfoRatePerUse()-want) > 0.15 {
		t.Fatalf("zero-delay rate %v, want ~%v", resD.InfoRatePerUse(), want)
	}
	if resD.SymbolErrors != 0 {
		t.Fatal("delayed ARQ must be error-free")
	}
}

func TestDelayedARQMatchesPrediction(t *testing.T) {
	p := channel.Params{N: 4, Pd: 0.2}
	msg := randomMessage(4, 10000, 4)
	for _, delay := range []int{1, 3, 9} {
		a, err := NewDelayedARQ(mustChannel(t, p, uint64(5+delay)), delay)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		want := a.PredictedRate()
		got := res.InfoRatePerUse()
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("delay %d: rate %v, predicted %v", delay, got, want)
		}
	}
}

// TestDelayedARQSoakPredictionAccuracy is the long-run version of the
// prediction check: at 100k symbols per cell the finite-sample noise is
// small enough that a systematic accounting bug anywhere in the
// (1+Delay)-use bookkeeping — not just bad luck — is what a >5%
// deviation from N(1-Pd)/(1+Delay) would mean. Skipped under -short.
func TestDelayedARQSoakPredictionAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: ~1M simulated uses per cell")
	}
	const symbols = 100000
	for _, pd := range []float64{0.1, 0.3} {
		p := channel.Params{N: 4, Pd: pd}
		for _, delay := range []int{0, 1, 2, 4, 8} {
			msg := randomMessage(uint64(31+delay), symbols, 4)
			a, err := NewDelayedARQ(mustChannel(t, p, uint64(17+delay)), delay)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.Run(msg)
			if err != nil {
				t.Fatal(err)
			}
			want := a.PredictedRate()
			got := res.InfoRatePerUse()
			if dev := math.Abs(got-want) / want; dev > 0.05 {
				t.Errorf("pd %.1f delay %d: measured %.4f vs predicted %.4f (%.1f%% off, want <= 5%%)",
					pd, delay, got, want, 100*dev)
			}
			if res.SymbolErrors != 0 {
				t.Errorf("pd %.1f delay %d: %d symbol errors, ARQ must be error-free",
					pd, delay, res.SymbolErrors)
			}
		}
	}
}

func TestDelayedARQRateDecreasesWithDelay(t *testing.T) {
	p := channel.Params{N: 4, Pd: 0.1}
	msg := randomMessage(6, 5000, 4)
	prev := math.Inf(1)
	for _, delay := range []int{0, 2, 5} {
		a, err := NewDelayedARQ(mustChannel(t, p, 7), delay)
		if err != nil {
			t.Fatal(err)
		}
		res, err := a.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		rate := res.InfoRatePerUse()
		if rate >= prev {
			t.Fatalf("rate did not decrease with delay %d: %v >= %v", delay, rate, prev)
		}
		prev = rate
	}
}

func TestDelayedARQRejectsInvalidSymbols(t *testing.T) {
	a, err := NewDelayedARQ(mustChannel(t, channel.Params{N: 2}, 9), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run([]uint32{4}); err == nil {
		t.Fatal("expected alphabet error")
	}
}
