package syncproto

import (
	"math"
	"testing"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/rng"
)

func randomMessage(seed uint64, count, width int) []uint32 {
	src := rng.New(seed)
	msg := make([]uint32, count)
	for i := range msg {
		msg[i] = src.Symbol(width)
	}
	return msg
}

func mustChannel(t *testing.T, p channel.Params, seed uint64) *channel.DeletionInsertion {
	t.Helper()
	ch, err := channel.NewDeletionInsertion(p, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewARQValidation(t *testing.T) {
	if _, err := NewARQ(nil); err == nil {
		t.Error("expected error for nil channel")
	}
	if _, err := NewARQ(mustChannel(t, channel.Params{N: 2, Pi: 0.1}, 1)); err == nil {
		t.Error("expected error for insertion channel")
	}
	if _, err := NewARQ(mustChannel(t, channel.Params{N: 2, Ps: 0.1}, 1)); err == nil {
		t.Error("expected error for noisy channel")
	}
}

func TestARQDeliversExactly(t *testing.T) {
	arq, err := NewARQ(mustChannel(t, channel.Params{N: 4, Pd: 0.3}, 2))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(3, 2000, 4)
	res, err := arq.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(msg) || res.SymbolErrors != 0 || res.SkippedSymbols != 0 {
		t.Fatalf("ARQ result %+v: want exact delivery", res)
	}
	if res.ErrorRate() != 0 {
		t.Fatalf("ARQ error rate %v, want 0", res.ErrorRate())
	}
}

func TestARQAchievesErasureCapacity(t *testing.T) {
	// Theorem 3 (experiment E2): measured information rate per channel
	// use must approach N*(1-Pd).
	for _, pd := range []float64{0, 0.1, 0.25, 0.5} {
		p := channel.Params{N: 4, Pd: pd}
		arq, err := NewARQ(mustChannel(t, p, 4))
		if err != nil {
			t.Fatal(err)
		}
		msg := randomMessage(5, 20000, 4)
		res, err := arq.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.FeedbackDeletionCapacity(p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.InfoRatePerUse()
		// MI estimation bias and finite-run variance allow a few percent.
		if math.Abs(got-want) > 0.05*4 {
			t.Errorf("Pd=%v: measured rate %v, want ~%v", pd, got, want)
		}
	}
}

func TestARQRejectsInvalidSymbols(t *testing.T) {
	arq, err := NewARQ(mustChannel(t, channel.Params{N: 2}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arq.Run([]uint32{4}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestNewCounterValidation(t *testing.T) {
	if _, err := NewCounter(nil); err == nil {
		t.Error("expected error for nil channel")
	}
}

func TestCounterDeletionOnlyMatchesARQ(t *testing.T) {
	// With Pi = 0 the counter protocol reduces to ARQ behaviour.
	p := channel.Params{N: 4, Pd: 0.2}
	c, err := NewCounter(mustChannel(t, p, 7))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(8, 10000, 4)
	res, err := c.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SymbolErrors != 0 || res.SkippedSymbols != 0 {
		t.Fatalf("deletion-only counter run had errors: %+v", res)
	}
	want := 4 * (1 - p.Pd)
	if math.Abs(res.InfoRatePerUse()-want) > 0.2 {
		t.Fatalf("rate %v, want ~%v", res.InfoRatePerUse(), want)
	}
}

func TestCounterInducedSubstitutionRate(t *testing.T) {
	// Appendix A: the converted channel's substitution probability per
	// delivered slot is alpha*Pi/(1-Pd) under per-use accounting.
	p := channel.Params{N: 4, Pd: 0.2, Pi: 0.1}
	c, err := NewCounter(mustChannel(t, p, 9))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(10, 40000, 4)
	res, err := c.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := core.Alpha(4) * p.Pi / (1 - p.Pd)
	if math.Abs(res.ErrorRate()-wantErr) > 0.01 {
		t.Errorf("slot error rate %v, want ~%v", res.ErrorRate(), wantErr)
	}
	if res.SkippedSymbols == 0 {
		t.Error("expected skipped symbols with Pi > 0")
	}
}

func TestCounterMeasuredRateMatchesPerUseBound(t *testing.T) {
	// Experiment E3 core claim: the protocol's measured information
	// rate per channel use matches core.LowerBoundPerUse.
	for _, tc := range []struct{ pd, pi float64 }{
		{0.1, 0.05}, {0.2, 0.1}, {0.3, 0.2},
	} {
		p := channel.Params{N: 4, Pd: tc.pd, Pi: tc.pi}
		c, err := NewCounter(mustChannel(t, p, 11))
		if err != nil {
			t.Fatal(err)
		}
		msg := randomMessage(12, 40000, 4)
		res, err := c.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.LowerBoundPerUse(p)
		if err != nil {
			t.Fatal(err)
		}
		got := res.InfoRatePerUse()
		if math.Abs(got-want) > 0.1 {
			t.Errorf("Pd=%v Pi=%v: measured %v, want ~%v", tc.pd, tc.pi, got, want)
		}
		upper, err := core.UpperBound(p)
		if err != nil {
			t.Fatal(err)
		}
		if got > upper+0.05 {
			t.Errorf("Pd=%v Pi=%v: measured %v exceeds Theorem 1 bound %v", tc.pd, tc.pi, got, upper)
		}
	}
}

func TestCounterSenderOpNormalization(t *testing.T) {
	// The paper's Theorem 5 coefficient (1-Pd)/(1-Pi) corresponds to
	// per-sender-operation accounting; check the measured per-op rate
	// sits near the printed bound (within the small substitution-rate
	// difference documented in DESIGN.md).
	p := channel.Params{N: 8, Pd: 0.15, Pi: 0.08}
	c, err := NewCounter(mustChannel(t, p, 13))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(14, 30000, 8)
	res, err := c.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := core.LowerBoundTheorem5(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.InfoRatePerSenderOp()
	if math.Abs(got-paper)/paper > 0.05 {
		t.Fatalf("per-sender-op rate %v vs paper bound %v", got, paper)
	}
}

func TestCounterRejectsInvalidSymbols(t *testing.T) {
	c, err := NewCounter(mustChannel(t, channel.Params{N: 2}, 15))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run([]uint32{9}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestSyncVarValidation(t *testing.T) {
	if _, err := NewSyncVar(0, 0.5, rng.New(1)); err == nil {
		t.Error("expected width error")
	}
	if _, err := NewSyncVar(4, 0, rng.New(1)); err == nil {
		t.Error("expected pSender error")
	}
	if _, err := NewSyncVar(4, 1, rng.New(1)); err == nil {
		t.Error("expected pSender error")
	}
	if _, err := NewSyncVar(4, 0.5, nil); err == nil {
		t.Error("expected nil source error")
	}
}

func TestSyncVarPerfectDelivery(t *testing.T) {
	s, err := NewSyncVar(4, 0.5, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(17, 3000, 4)
	res, err := s.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(msg) || res.SymbolErrors != 0 {
		t.Fatalf("sync-var result %+v: want perfect delivery", res)
	}
	// Expected cost: 1/p + 1/(1-p) activations per symbol = 4 at p=0.5.
	perSymbol := float64(res.Uses) / float64(len(msg))
	if math.Abs(perSymbol-4) > 0.3 {
		t.Fatalf("activations per symbol %v, want ~4", perSymbol)
	}
}

func TestSyncVarAsymmetricScheduling(t *testing.T) {
	// Starving one side raises the cost: 1/0.1 + 1/0.9 ~ 11.1.
	s, err := NewSyncVar(4, 0.1, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(19, 2000, 4)
	res, err := s.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	perSymbol := float64(res.Uses) / float64(len(msg))
	if math.Abs(perSymbol-11.11) > 1 {
		t.Fatalf("activations per symbol %v, want ~11.1", perSymbol)
	}
}

func TestSyncVarRejectsInvalidSymbols(t *testing.T) {
	s, err := NewSyncVar(2, 0.5, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run([]uint32{4}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestCommonEventValidation(t *testing.T) {
	if _, err := NewCommonEvent(0, 0, 0, rng.New(1)); err == nil {
		t.Error("expected width error")
	}
	if _, err := NewCommonEvent(4, -0.1, 0, rng.New(1)); err == nil {
		t.Error("expected missS error")
	}
	if _, err := NewCommonEvent(4, 0, 1.1, rng.New(1)); err == nil {
		t.Error("expected missR error")
	}
	if _, err := NewCommonEvent(4, 0, 0, nil); err == nil {
		t.Error("expected nil source error")
	}
}

func TestCommonEventPerfectAttendance(t *testing.T) {
	ce, err := NewCommonEvent(4, 0, 0, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	msg := randomMessage(22, 2000, 4)
	res, err := ce.Run(msg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(msg) || res.SymbolErrors != 0 {
		t.Fatalf("perfect attendance result %+v", res)
	}
	if math.Abs(res.InfoRatePerUse()-4) > 0.05 {
		t.Fatalf("rate %v, want ~4", res.InfoRatePerUse())
	}
}

func TestCommonEventNeverBeatsFeedback(t *testing.T) {
	// Figure 4 / experiment E7: at matched deletion parameters the
	// common-event mechanism must not exceed the ARQ feedback rate.
	for _, miss := range []float64{0.1, 0.25, 0.4} {
		ce, err := NewCommonEvent(4, miss, miss, rng.New(23))
		if err != nil {
			t.Fatal(err)
		}
		msg := randomMessage(24, 20000, 4)
		resCE, err := ce.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		arqRate := 4 * (1 - miss) // Theorem 3 capacity at Pd = miss
		if resCE.InfoRatePerUse() > arqRate+0.05 {
			t.Errorf("miss=%v: common-event rate %v exceeds feedback rate %v",
				miss, resCE.InfoRatePerUse(), arqRate)
		}
	}
}

func TestCommonEventSenderPathOrdering(t *testing.T) {
	// Figure 4(b): adding the sender-to-E path makes the mechanism
	// error-free and strictly better than the plain mechanism, while
	// staying below pure feedback ARQ.
	for _, miss := range []float64{0.1, 0.3} {
		msg := randomMessage(31, 15000, 4)
		plain, err := NewCommonEvent(4, miss, miss, rng.New(32))
		if err != nil {
			t.Fatal(err)
		}
		resPlain, err := plain.Run(msg)
		if err != nil {
			t.Fatal(err)
		}
		enriched, err := NewCommonEvent(4, miss, miss, rng.New(33))
		if err != nil {
			t.Fatal(err)
		}
		resEnriched, err := enriched.RunWithSenderPath(msg)
		if err != nil {
			t.Fatal(err)
		}
		if resEnriched.SymbolErrors != 0 {
			t.Fatalf("miss=%v: enriched mechanism had %d errors", miss, resEnriched.SymbolErrors)
		}
		if resEnriched.InfoRatePerUse() <= resPlain.InfoRatePerUse() {
			t.Errorf("miss=%v: sender path did not help (%v vs %v)",
				miss, resEnriched.InfoRatePerUse(), resPlain.InfoRatePerUse())
		}
		arqRate := 4 * (1 - miss)
		if resEnriched.InfoRatePerUse() > arqRate+0.05 {
			t.Errorf("miss=%v: enriched mechanism %v beat feedback %v",
				miss, resEnriched.InfoRatePerUse(), arqRate)
		}
	}
}

func TestCommonEventSenderPathValidation(t *testing.T) {
	ce, err := NewCommonEvent(2, 0.1, 0.1, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.RunWithSenderPath([]uint32{7}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestCommonEventRejectsInvalidSymbols(t *testing.T) {
	ce, err := NewCommonEvent(2, 0.1, 0.1, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Run([]uint32{5}); err == nil {
		t.Fatal("expected alphabet error")
	}
}

func TestResultAccessorsZero(t *testing.T) {
	var r Result
	if r.ThroughputPerUse() != 0 || r.InfoRatePerUse() != 0 ||
		r.InfoRatePerSenderOp() != 0 || r.ErrorRate() != 0 {
		t.Fatal("zero Result should report zero rates")
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Uses: 100, SenderOps: 80, Delivered: 60, SymbolErrors: 6, MutualInfoPerSlot: 2}
	if got := r.ThroughputPerUse(); got != 0.6 {
		t.Errorf("ThroughputPerUse = %v", got)
	}
	if got := r.RawBitRatePerUse(4); got != 2.4 {
		t.Errorf("RawBitRatePerUse = %v", got)
	}
	if got := r.InfoRatePerUse(); got != 1.2 {
		t.Errorf("InfoRatePerUse = %v", got)
	}
	if got := r.InfoRatePerSenderOp(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("InfoRatePerSenderOp = %v", got)
	}
	if got := r.ErrorRate(); got != 0.1 {
		t.Errorf("ErrorRate = %v", got)
	}
}
