package syncproto_test

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/syncproto"
)

// ExampleARQ runs the Theorem 3 protocol over a deletion channel and
// shows the achieved rate meeting N(1-Pd).
func ExampleARQ() {
	ch, err := channel.NewDeletionInsertion(channel.Params{N: 4, Pd: 0.25}, rng.New(42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	arq, err := syncproto.NewARQ(ch)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	src := rng.New(7)
	msg := make([]uint32, 100000)
	for i := range msg {
		msg[i] = src.Symbol(4)
	}
	res, err := arq.Run(msg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("errors: %d\n", res.SymbolErrors)
	fmt.Printf("rate:   %.2f bits/use (capacity %.2f)\n", res.InfoRatePerUse(), 4*(1-0.25))
	// Output:
	// errors: 0
	// rate:   3.00 bits/use (capacity 3.00)
}
