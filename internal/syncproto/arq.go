package syncproto

import (
	"fmt"

	"repro/internal/channel"
)

// ARQ is the Theorem 3 protocol: over a deletion channel with perfect
// feedback, the receiver acknowledges every received symbol and the
// sender resends until acknowledged, so no drop-outs ever reach the
// application and the erasure-channel capacity N*(1-Pd) is achieved.
type ARQ struct {
	ch UseChannel
	n  int
}

// NewARQ returns the protocol bound to a deletion channel. The paper's
// Theorem 3 setting requires Pi = 0 (pure deletions; the counter
// protocol handles insertions) and a noiseless data channel is assumed
// for the synchronization analysis, so Ps must also be 0.
func NewARQ(ch *channel.DeletionInsertion) (*ARQ, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	p := ch.Params()
	if p.Pi != 0 {
		return nil, fmt.Errorf("syncproto: ARQ requires a deletion-only channel, got Pi = %v", p.Pi)
	}
	if p.Ps != 0 {
		return nil, fmt.Errorf("syncproto: ARQ analysis assumes a noiseless data channel, got Ps = %v", p.Ps)
	}
	return &ARQ{ch: ch, n: p.N}, nil
}

// NewARQOver returns the protocol over any per-use channel with n-bit
// symbols. Unlike NewARQ it cannot verify the Theorem 3 preconditions
// (a fault-injected channel may impose insertions or substitutions at
// runtime); the protocol stays safe regardless — any event other than
// a clean transmission of the queued symbol triggers a resend, and
// inserted symbols are discarded by the idealized feedback — but the
// analytic rate N(1-Pd) only applies when the preconditions hold.
func NewARQOver(ch UseChannel, n int) (*ARQ, error) {
	if ch == nil {
		return nil, fmt.Errorf("syncproto: nil channel")
	}
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	return &ARQ{ch: ch, n: n}, nil
}

// Run transmits the message and returns the run accounting. Every
// message symbol is delivered exactly once, in order, without error;
// the cost appears as extra channel uses for resends.
func (a *ARQ) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, a.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", a.n)
	}
	res := Result{MessageSymbols: len(msg)}
	received := make([]uint32, 0, len(msg))
	for _, sym := range msg {
		for {
			res.Uses++
			res.SenderOps++
			u := a.ch.Use(sym)
			if u.Kind == channel.EventTransmit {
				received = append(received, u.Delivered)
				break
			}
			// Deletion: feedback says not received; resend. Insertion
			// or substitution (possible only over a hostile wrapped
			// channel): feedback flags the stray symbol, the receiver
			// discards it, and the sender resends.
		}
	}
	if err := measureSlots(&res, msg, received, a.n); err != nil {
		return Result{}, err
	}
	return res, nil
}

// validSymbols reports whether all symbols fit the n-bit alphabet.
func validSymbols(msg []uint32, n int) bool {
	if n >= 32 {
		return true
	}
	limit := uint32(1) << uint(n)
	for _, s := range msg {
		if s >= limit {
			return false
		}
	}
	return true
}
