package syncproto

import (
	"fmt"

	"repro/internal/rng"
)

// SyncVar is the Figure 1 mechanism: two synchronization variables on
// top of a shared data variable. The sender toggles the S→R variable
// after writing a symbol; the receiver reads only when the toggles
// disagree and answers by toggling the R→S variable; the sender writes
// the next symbol only when the toggles agree again.
//
// The mechanism makes the covert channel perfectly synchronous — no
// deletions, no insertions, no errors — but wastes the activations in
// which the active party finds the channel not ready. That wasted time
// is exactly the capacity degradation the paper's estimation method
// accounts for and traditional synchronous estimates ignore.
type SyncVar struct {
	n       int
	pSender float64
	src     *rng.Source
}

// NewSyncVar returns the protocol for n-bit symbols where each
// activation opportunity goes to the sender with probability pSender
// (the scheduler model of Section 3.1). It returns an error for invalid
// arguments; pSender must lie strictly inside (0, 1) so both parties
// eventually run.
func NewSyncVar(n int, pSender float64, src *rng.Source) (*SyncVar, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("syncproto: symbol width %d out of [1,16]", n)
	}
	if pSender <= 0 || pSender >= 1 {
		return nil, fmt.Errorf("syncproto: sender activation probability %v must be in (0,1)", pSender)
	}
	if src == nil {
		return nil, fmt.Errorf("syncproto: nil randomness source")
	}
	return &SyncVar{n: n, pSender: pSender, src: src}, nil
}

// Run transmits the message and returns the accounting. Uses counts
// activation opportunities (the time base of the covert channel);
// SenderOps counts sender activations.
func (s *SyncVar) Run(msg []uint32) (Result, error) {
	if !validSymbols(msg, s.n) {
		return Result{}, fmt.Errorf("syncproto: message contains symbols outside the %d-bit alphabet", s.n)
	}
	res := Result{MessageSymbols: len(msg)}
	received := make([]uint32, 0, len(msg))
	var (
		data         uint32
		flagS, flagR bool
		next         int
	)
	for len(received) < len(msg) {
		res.Uses++
		if s.src.Bool(s.pSender) {
			res.SenderOps++
			// Sender runs: ready to write only when the receiver has
			// consumed the previous symbol.
			if flagS == flagR && next < len(msg) {
				data = msg[next]
				next++
				flagS = !flagS
			}
		} else if flagS != flagR {
			// Receiver runs and a fresh symbol is pending.
			received = append(received, data)
			flagR = !flagR
		}
	}
	if err := measureSlots(&res, msg, received, s.n); err != nil {
		return Result{}, err
	}
	return res, nil
}
