// Package casstore is a content-addressed on-disk result store for
// capserver's deterministic response bodies (it implements
// capserver.ResultStore). Every entry is one file whose path is
// derived from the SHA-256 of the canonical request key, written with
// atomic write-rename semantics: a writer creates a temp file in the
// target directory, writes header+body, then renames it into place.
// Rename is atomic on POSIX filesystems, so readers — including other
// node processes sharing the directory — always see either the old
// complete entry or the new complete entry, never a torn write, with
// no locking. Because response bodies are pure functions of their
// canonical keys, concurrent writers racing on one entry are writing
// identical bytes and last-rename-wins is harmless.
//
// This is what lets any node in a capserver cluster serve any cached
// point (nodes share the directory) and lets a restarted node
// warm-start from disk instead of recomputing its shard.
package casstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
)

// header tags every entry file; bump on layout changes.
const header = "capcas/v1"

// Stats is a point-in-time snapshot of store activity.
type Stats struct {
	Hits      int64 // Get found a valid entry
	Misses    int64 // Get found nothing
	Corrupt   int64 // Get found a file that failed verification
	Puts      int64 // successful writes
	PutErrors int64 // failed writes (best-effort: the answer recomputes)
}

// Store is the on-disk result store. All methods are safe for
// concurrent use by any number of goroutines and processes.
type Store struct {
	dir string

	hits, misses, corrupt, puts, putErrors atomic.Int64
}

// Open prepares the store directory (creating it if needed).
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("casstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("casstore: %v", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entryPath fans entries out over 256 subdirectories keyed by the
// first address byte, keeping directory listings short at millions of
// cached points.
func (s *Store) entryPath(key string) (dir, path string) {
	sum := sha256.Sum256([]byte(key))
	addr := hex.EncodeToString(sum[:])
	dir = filepath.Join(s.dir, addr[:2])
	return dir, filepath.Join(dir, addr[2:])
}

// encode renders an entry: header, the key's byte length, the key,
// then the body. Embedding the key makes Get verification exact (a
// SHA-256 collision or a corrupted file can never alias another
// point) and keeps entries debuggable with cat.
func encode(key string, body []byte) []byte {
	var b bytes.Buffer
	b.Grow(len(header) + len(key) + len(body) + 24)
	fmt.Fprintf(&b, "%s %d\n%s", header, len(key), key)
	b.Write(body)
	return b.Bytes()
}

// decode parses and verifies an entry, returning the body.
func decode(raw []byte, key string) ([]byte, bool) {
	rest, ok := bytes.CutPrefix(raw, []byte(header+" "))
	if !ok {
		return nil, false
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	klen, err := strconv.Atoi(string(rest[:nl]))
	if err != nil || klen < 0 || klen > len(rest)-nl-1 {
		return nil, false
	}
	rest = rest[nl+1:]
	if string(rest[:klen]) != key {
		return nil, false
	}
	return rest[klen:], true
}

// Get returns the stored body for a canonical key. A file that fails
// verification counts as corrupt and reads as a miss: the caller
// recomputes and Put overwrites the bad entry.
func (s *Store) Get(key string) ([]byte, bool) {
	_, path := s.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	body, ok := decode(raw, key)
	if !ok {
		s.corrupt.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return body, true
}

// Put stores the body for a canonical key with write-rename
// atomicity. Best-effort: an error is counted, never surfaced — a
// lost write costs one future recompute.
func (s *Store) Put(key string, body []byte) {
	dir, path := s.entryPath(key)
	if err := s.put(dir, path, encode(key, body)); err != nil {
		s.putErrors.Add(1)
		return
	}
	s.puts.Add(1)
}

func (s *Store) put(dir, path string, raw []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// The temp file lives in the destination directory so the rename
	// never crosses a filesystem boundary (cross-device renames are
	// copies, not atomic).
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Len walks the store and returns the number of entries on disk (a
// test and warm-start diagnostic, not a hot-path operation).
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && !bytes.HasPrefix([]byte(d.Name()), []byte(".tmp-")) {
			n++
		}
		return nil
	})
	return n, err
}

// Stats snapshots store activity.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Corrupt:   s.corrupt.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
	}
}
