package casstore

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "bounds?n=4&pd=0.2&pf=0.01"
	body := []byte(`{"capacity":1.234}` + "\n")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	s.Put(key, body)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("round trip: ok=%v got=%q want=%q", ok, got, body)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len: %d err=%v", n, err)
	}
}

func TestSharedDirectoryAcrossStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Put("predict?n=5&pd=0.1", []byte("body-a"))

	// A second Store over the same directory models a peer node (or a
	// restarted node warm-starting): it must see the first one's entry.
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("predict?n=5&pd=0.1")
	if !ok || string(got) != "body-a" {
		t.Fatalf("peer store read: ok=%v got=%q", ok, got)
	}
}

func TestCorruptEntryReadsAsMiss(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "trace?n=3&seed=7"
	s.Put(key, []byte("good"))
	_, path := s.entryPath(key)

	for _, raw := range [][]byte{
		[]byte("not an entry"),
		[]byte("capcas/v1 bogus\nxx"),
		[]byte("capcas/v1 9999\nshort"),
		[]byte("capcas/v1 5\nwrongbody"), // embedded key mismatch
	} {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("corrupt entry %q served as a hit", raw)
		}
	}
	if st := s.Stats(); st.Corrupt != 4 {
		t.Fatalf("corrupt count: %+v", st)
	}

	// Recovery: a fresh Put overwrites the bad entry atomically.
	s.Put(key, []byte("good again"))
	got, ok := s.Get(key)
	if !ok || string(got) != "good again" {
		t.Fatalf("recovery: ok=%v got=%q", ok, got)
	}
}

func TestNoTempFilesSurviveAndNoTornReads(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "bounds?n=9&pd=0.3&pf=0.02"
	body := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB

	// Hammer one entry from writers while readers verify they only
	// ever see complete, verified bodies (rename atomicity).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.Put(key, body)
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got, ok := s.Get(key); ok && !bytes.Equal(got, body) {
					t.Errorf("torn read: %d bytes", len(got))
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("readers saw corrupt entries: %+v", st)
	}

	// After the dust settles the directory holds exactly the entry —
	// every temp file was renamed or removed.
	tmps := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && len(info.Name()) >= 5 && info.Name()[:5] == ".tmp-" {
			tmps++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tmps != 0 {
		t.Fatalf("%d temp files left behind", tmps)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len after hammer: %d err=%v", n, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}
