package cluster

import "repro/internal/obs"

// Metrics is the per-node cluster instrumentation, registered on the
// same obs.Registry as the wrapped capserver so one /metrics page
// carries both layers. Every counter is a deterministic count of
// routing decisions; only which of primary/hedge wins a race is
// timing-dependent, and the harness asserts on the decision counters,
// not the race outcomes.
type Metrics struct {
	reg        *obs.Registry
	ownedLocal *obs.Counter
	forwards   *obs.Counter
	hedges     *obs.Counter
	hedgeWins  *obs.Counter
	retries    *obs.Counter
	peerErrors *obs.Counter
	degraded   *obs.Counter
	remote     *obs.Counter
}

// NewMetrics registers the node's metric families on reg (a nil reg
// gets a private registry). Registration order is exposition order.
// Pass the wrapped capserver's registry (capserver.Config.Metrics) so
// one /metrics page serves both layers.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:        reg,
		ownedLocal: reg.Counter("cluster_owned_local_total"),
		forwards:   reg.Counter("cluster_forward_total"),
		hedges:     reg.Counter("cluster_hedge_total"),
		hedgeWins:  reg.Counter("cluster_hedge_wins_total"),
		retries:    reg.Counter("cluster_retry_total"),
		peerErrors: reg.Counter("cluster_peer_errors_total"),
		degraded:   reg.Counter("cluster_degraded_total"),
		remote:     reg.Counter("cluster_remote_serve_total"),
	}
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// OwnedLocal returns the number of shardable requests this node
// served because it owns their keys (or received them pre-routed).
func (m *Metrics) OwnedLocal() int64 { return m.ownedLocal.Value() }

// Forwards returns the number of requests forwarded toward an owner.
func (m *Metrics) Forwards() int64 { return m.forwards.Value() }

// Hedges returns the number of hedged second requests fired.
func (m *Metrics) Hedges() int64 { return m.hedges.Value() }

// HedgeWins returns the number of forwards answered by the hedge.
func (m *Metrics) HedgeWins() int64 { return m.hedgeWins.Value() }

// Retries returns the number of re-attempts against a peer after a
// retryable failure.
func (m *Metrics) Retries() int64 { return m.retries.Value() }

// PeerErrors returns the number of peer attempts that ended in a
// transport error or retryable status after exhausting retries.
func (m *Metrics) PeerErrors() int64 { return m.peerErrors.Value() }

// Degraded returns the number of requests that fell back to local
// compute because the owning shard was unreachable.
func (m *Metrics) Degraded() int64 { return m.degraded.Value() }

// Remote returns the number of traced pre-routed requests this node
// served on behalf of a forwarding origin. It counts only requests
// carrying a trace ID — it is the counter twin of the "remote" span,
// so trace-derived remote totals reconcile against it exactly while
// untraced probes (the harness's convergence checks) stay invisible
// to both.
func (m *Metrics) Remote() int64 { return m.remote.Value() }
