package cluster

import "repro/internal/obs"

// Metrics is the per-node cluster instrumentation, registered on the
// same obs.Registry as the wrapped capserver so one /metrics page
// carries both layers. Every counter is a deterministic count of
// routing decisions; only which of primary/hedge wins a race is
// timing-dependent, and the harness asserts on the decision counters,
// not the race outcomes.
type Metrics struct {
	reg        *obs.Registry
	ownedLocal *obs.Counter
	forwards   *obs.Counter
	hedges     *obs.Counter
	hedgeWins  *obs.Counter
	retries    *obs.Counter
	peerErrors *obs.Counter
	degraded   *obs.Counter
	remote     *obs.Counter

	// Session routing counters. Sessions are stateful, so their routing
	// discipline differs from compute keys (no hedge, no degrade) and
	// they get their own families, deliberately outside NodeCounters:
	// capstat reconciles trace spans against the compute-routing
	// counters only, and session traffic must not perturb that.
	sessionOwned      *obs.Counter
	sessionForwards   *obs.Counter
	sessionRetries    *obs.Counter
	sessionPeerErrors *obs.Counter
}

// NewMetrics registers the node's metric families on reg (a nil reg
// gets a private registry). Registration order is exposition order.
// Pass the wrapped capserver's registry (capserver.Config.Metrics) so
// one /metrics page serves both layers.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg:        reg,
		ownedLocal: reg.Counter("cluster_owned_local_total"),
		forwards:   reg.Counter("cluster_forward_total"),
		hedges:     reg.Counter("cluster_hedge_total"),
		hedgeWins:  reg.Counter("cluster_hedge_wins_total"),
		retries:    reg.Counter("cluster_retry_total"),
		peerErrors: reg.Counter("cluster_peer_errors_total"),
		degraded:   reg.Counter("cluster_degraded_total"),
		remote:     reg.Counter("cluster_remote_serve_total"),

		sessionOwned:      reg.Counter("cluster_session_owned_total"),
		sessionForwards:   reg.Counter("cluster_session_forward_total"),
		sessionRetries:    reg.Counter("cluster_session_retry_total"),
		sessionPeerErrors: reg.Counter("cluster_session_peer_errors_total"),
	}
}

// Registry returns the backing registry.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// OwnedLocal returns the number of shardable requests this node
// served because it owns their keys (or received them pre-routed).
func (m *Metrics) OwnedLocal() int64 { return m.ownedLocal.Value() }

// Forwards returns the number of requests forwarded toward an owner.
func (m *Metrics) Forwards() int64 { return m.forwards.Value() }

// Hedges returns the number of hedged second requests fired.
func (m *Metrics) Hedges() int64 { return m.hedges.Value() }

// HedgeWins returns the number of forwards answered by the hedge.
func (m *Metrics) HedgeWins() int64 { return m.hedgeWins.Value() }

// Retries returns the number of re-attempts against a peer after a
// retryable failure.
func (m *Metrics) Retries() int64 { return m.retries.Value() }

// PeerErrors returns the number of peer attempts that ended in a
// transport error or retryable status after exhausting retries.
func (m *Metrics) PeerErrors() int64 { return m.peerErrors.Value() }

// Degraded returns the number of requests that fell back to local
// compute because the owning shard was unreachable.
func (m *Metrics) Degraded() int64 { return m.degraded.Value() }

// Remote returns the number of traced pre-routed requests this node
// served on behalf of a forwarding origin. It counts only requests
// carrying a trace ID — it is the counter twin of the "remote" span,
// so trace-derived remote totals reconcile against it exactly while
// untraced probes (the harness's convergence checks) stay invisible
// to both.
func (m *Metrics) Remote() int64 { return m.remote.Value() }

// SessionOwned returns the number of per-session requests this node
// served as the session's ring owner.
func (m *Metrics) SessionOwned() int64 { return m.sessionOwned.Value() }

// SessionForwards returns the number of per-session requests forwarded
// to their owning node.
func (m *Metrics) SessionForwards() int64 { return m.sessionForwards.Value() }

// SessionRetries returns the number of re-attempts of a forwarded
// session read after a retryable failure (ingests never retry: a POST
// is not idempotent through an ambiguous failure).
func (m *Metrics) SessionRetries() int64 { return m.sessionRetries.Value() }

// SessionPeerErrors returns the number of session forwards that failed
// because the owning node was unreachable. Unlike compute keys there
// is no degraded local fallback — session state lives only on the
// owner, and serving it elsewhere would fork the session.
func (m *Metrics) SessionPeerErrors() int64 { return m.sessionPeerErrors.Value() }
