package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nopLocal is the cheapest possible localServer: a stored no-op
// handler (fakeLocal builds a closure per Handler call, which would
// charge allocations to the router that belong to the stub) and a
// constant canonical key.
type nopLocal struct{ h http.Handler }

func (l *nopLocal) Handler() http.Handler { return l.h }

func (l *nopLocal) Canonicalize(*http.Request) (string, bool) { return "bounds?fixed", true }

// nopResponseWriter discards the response without allocating.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}

// TestOwnedFastPathZeroAlloc pins the tracing-off serving contract:
// the cluster router adds zero heap allocations to an owned request.
// Tracing is opt-in observability; a node that has it off must route
// at the wrapped server's cost, and this test is what keeps the
// trace-header stripping and status-path checks on the fast path
// allocation-free as they evolve.
func TestOwnedFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; run without -race")
	}
	mem := Membership{Members: []Member{{Name: "n1", URL: "http://127.0.0.1:1"}}}
	node, err := NewNode(&nopLocal{h: http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})},
		Config{Self: "n1", Membership: mem})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/bounds?n=4&pd=0.2", nil)
	w := &nopResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(1000, func() {
		node.serveHTTP(w, req)
	})
	if allocs != 0 {
		t.Fatalf("owned fast path allocates %.1f objects per request, want 0", allocs)
	}
	if node.Metrics().OwnedLocal() == 0 {
		t.Fatal("fast path never took the owned branch")
	}
}
