package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeLocal stands in for capserver.Server: /v1/bounds is shardable
// with key "bounds?<query>", the body is a pure function of the key,
// and the test can inject latency or a fixed status per node.
type fakeLocal struct {
	name  string
	delay time.Duration
	fail  atomic.Int32 // nonzero: respond with this status

	mu        sync.Mutex
	computes  int
	forwarded []string // ForwardedHeader values seen
	traced    []string // TraceHeader values seen (including "")
}

func (f *fakeLocal) Canonicalize(r *http.Request) (string, bool) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/bounds" {
		return "bounds?" + r.URL.RawQuery, true
	}
	return "", false
}

func (f *fakeLocal) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.computes++
		f.forwarded = append(f.forwarded, r.Header.Get(ForwardedHeader))
		f.traced = append(f.traced, r.Header.Get(TraceHeader))
		f.mu.Unlock()
		if f.delay > 0 {
			time.Sleep(f.delay)
		}
		if code := f.fail.Load(); code != 0 {
			w.WriteHeader(int(code))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Capserver-Cache", "miss")
		fmt.Fprintf(w, `{"body":%q}`, "bounds?"+r.URL.RawQuery)
	})
}

func (f *fakeLocal) snapshot() (int, []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.computes, append([]string(nil), f.forwarded...)
}

// tracedSeen returns the TraceHeader value of every request the local
// handler served, in order.
func (f *fakeLocal) tracedSeen() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.traced...)
}

// testCluster is three nodes over httptest servers sharing one
// membership.
type testCluster struct {
	locals  map[string]*fakeLocal
	nodes   map[string]*Node
	servers map[string]*httptest.Server
}

// hswitch lets the httptest servers start before the nodes exist (the
// membership needs the listener URLs, the nodes need the membership).
type hswitch struct{ h atomic.Value }

func (s *hswitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.h.Load().(http.Handler).ServeHTTP(w, r)
}

func newTestCluster(t *testing.T, tune func(name string, cfg *Config)) *testCluster {
	t.Helper()
	names := []string{"n1", "n2", "n3"}
	tc := &testCluster{
		locals:  make(map[string]*fakeLocal),
		nodes:   make(map[string]*Node),
		servers: make(map[string]*httptest.Server),
	}
	switches := make(map[string]*hswitch)
	var mem Membership
	for _, name := range names {
		sw := &hswitch{}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		switches[name] = sw
		tc.servers[name] = srv
		mem.Members = append(mem.Members, Member{Name: name, URL: srv.URL})
	}
	for _, name := range names {
		cfg := Config{
			Self:        name,
			Membership:  mem,
			HedgeDelay:  -1, // most tests exercise the primary path only
			PeerBackoff: time.Millisecond,
			PeerTimeout: 5 * time.Second,
		}
		if tune != nil {
			tune(name, &cfg)
		}
		local := &fakeLocal{name: name}
		node, err := NewNode(local, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.locals[name] = local
		tc.nodes[name] = node
		switches[name].h.Store(node.Handler())
	}
	return tc
}

// keyOwnedBy finds a /v1/bounds query whose canonical key the target
// owns.
func keyOwnedBy(t *testing.T, r *Ring, target string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		q := fmt.Sprintf("n=%d&pd=0.2", i)
		if r.Owner("bounds?"+q) == target {
			return q
		}
	}
	t.Fatalf("no key owned by %s in 10000 probes", target)
	return ""
}

func get(t *testing.T, n *Node, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	n.serveHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestOwnedKeyServesLocally(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n1")
	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get(PeerHeader) != "" || rec.Header().Get(DegradedHeader) != "" {
		t.Fatalf("owned key grew routing headers: %v", rec.Header())
	}
	m := tc.nodes["n1"].Metrics()
	if m.OwnedLocal() != 1 || m.Forwards() != 0 {
		t.Fatalf("owned=%d forwards=%d", m.OwnedLocal(), m.Forwards())
	}
	if c, _ := tc.locals["n1"].snapshot(); c != 1 {
		t.Fatalf("local computes: %d", c)
	}
}

func TestForwardToOwnerIsByteIdentical(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	want := fmt.Sprintf(`{"body":%q}`, "bounds?"+q)
	if rec.Body.String() != want {
		t.Fatalf("body %q want %q", rec.Body.String(), want)
	}
	if got := rec.Header().Get(PeerHeader); got != "n2" {
		t.Fatalf("peer header %q", got)
	}
	if got := rec.Header().Get("X-Capserver-Cache"); got != "miss" {
		t.Fatalf("cache class not relayed: %q", got)
	}
	if m := tc.nodes["n1"].Metrics(); m.Forwards() != 1 || m.Degraded() != 0 {
		t.Fatalf("forwards=%d degraded=%d", m.Forwards(), m.Degraded())
	}
	// The owner saw exactly one pre-routed request naming the sender.
	c, fwd := tc.locals["n2"].snapshot()
	if c != 1 || len(fwd) != 1 || fwd[0] != "n1" {
		t.Fatalf("owner computes=%d forwarded=%v", c, fwd)
	}
}

func TestForwardedRequestNeverReforwards(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
	req.Header.Set(ForwardedHeader, "harness")
	tc.nodes["n3"].serveHTTP(rec, req) // n3 is not the owner
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if m := tc.nodes["n3"].Metrics(); m.Forwards() != 0 {
		t.Fatalf("pre-routed request was re-forwarded")
	}
	if c, _ := tc.locals["n3"].snapshot(); c != 1 {
		t.Fatalf("n3 computes: %d", c)
	}
}

func TestNonShardableServesLocally(t *testing.T) {
	tc := newTestCluster(t, nil)
	rec := get(t, tc.nodes["n1"], "/v1/catalog")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	m := tc.nodes["n1"].Metrics()
	if m.Forwards() != 0 || m.OwnedLocal() != 0 {
		t.Fatalf("non-shardable request touched the ring: forwards=%d owned=%d", m.Forwards(), m.OwnedLocal())
	}
}

func TestOwnerDownDegradesToLocalCompute(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	tc.servers["n2"].Close()

	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	want := fmt.Sprintf(`{"body":%q}`, "bounds?"+q)
	if rec.Body.String() != want {
		t.Fatalf("degraded body %q want %q", rec.Body.String(), want)
	}
	if got := rec.Header().Get(DegradedHeader); got != "n2" {
		t.Fatalf("degraded header %q", got)
	}
	m := tc.nodes["n1"].Metrics()
	if m.Degraded() != 1 || m.Retries() != 1 || m.PeerErrors() != 1 {
		t.Fatalf("degraded=%d retries=%d peerErrors=%d", m.Degraded(), m.Retries(), m.PeerErrors())
	}
	if c, _ := tc.locals["n1"].snapshot(); c != 1 {
		t.Fatalf("local fallback computes: %d", c)
	}
}

func TestRetryableStatusExhaustsThenDegrades(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	tc.locals["n2"].fail.Store(http.StatusServiceUnavailable)

	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(DegradedHeader); got != "n2" {
		t.Fatalf("degraded header %q", got)
	}
	m := tc.nodes["n1"].Metrics()
	if m.Retries() != 1 || m.PeerErrors() != 1 || m.Degraded() != 1 {
		t.Fatalf("retries=%d peerErrors=%d degraded=%d", m.Retries(), m.PeerErrors(), m.Degraded())
	}
	// Both attempts landed on the owner before the fallback.
	if c, _ := tc.locals["n2"].snapshot(); c != 2 {
		t.Fatalf("owner attempts: %d", c)
	}
}

func TestAuthoritativeErrorStatusIsRelayedNotRetried(t *testing.T) {
	tc := newTestCluster(t, nil)
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	tc.locals["n2"].fail.Store(http.StatusBadRequest)

	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d want 400 relayed from owner", rec.Code)
	}
	m := tc.nodes["n1"].Metrics()
	if m.Retries() != 0 || m.Degraded() != 0 {
		t.Fatalf("authoritative status retried or degraded: retries=%d degraded=%d", m.Retries(), m.Degraded())
	}
}

func TestHedgeFiresAndWinsAgainstSlowOwner(t *testing.T) {
	tc := newTestCluster(t, func(name string, cfg *Config) {
		cfg.HedgeDelay = 5 * time.Millisecond
	})
	q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
	tc.locals["n2"].delay = 400 * time.Millisecond

	start := time.Now()
	rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	want := fmt.Sprintf(`{"body":%q}`, "bounds?"+q)
	if rec.Body.String() != want {
		t.Fatalf("hedged body %q want %q", rec.Body.String(), want)
	}
	if got := rec.Header().Get(HedgeHeader); got != "1" {
		t.Fatalf("hedge header %q", got)
	}
	if got := rec.Header().Get(PeerHeader); got == "n2" || got == "" {
		t.Fatalf("hedge win attributed to %q", got)
	}
	m := tc.nodes["n1"].Metrics()
	if m.Hedges() != 1 || m.HedgeWins() != 1 {
		t.Fatalf("hedges=%d wins=%d", m.Hedges(), m.HedgeWins())
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %v", elapsed)
	}
}

func TestNewNodeValidation(t *testing.T) {
	mem := Membership{Members: []Member{{Name: "n1", URL: "http://h1"}}}
	if _, err := NewNode(nil, Config{Self: "n1", Membership: mem}); err == nil {
		t.Fatal("nil local accepted")
	}
	if _, err := NewNode(&fakeLocal{}, Config{Membership: mem}); err == nil {
		t.Fatal("empty self accepted")
	}
	if _, err := NewNode(&fakeLocal{}, Config{Self: "nx", Membership: mem}); err == nil {
		t.Fatal("self outside membership accepted")
	}
}
