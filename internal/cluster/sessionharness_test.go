package cluster

import (
	"strings"
	"testing"
)

func TestSessionHarnessKillRestartRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node session fault harness")
	}
	rep, err := RunSessionHarness(SessionHarnessOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rep.Format(&buf)
	t.Logf("session harness report:\n%s", buf.String())
	if err := rep.Assert(); err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "n2" || !rep.Restarted {
		t.Fatalf("fault schedule: killed=%q restarted=%v", rep.Killed, rep.Restarted)
	}
	// The outage must have been visible: batches for sessions owned by
	// the dead node were refused, then drained to completion.
	if rep.Unavailable == 0 {
		t.Fatal("no batch was ever refused while the owner was down")
	}
	if rep.Applied == 0 {
		t.Fatal("no events applied")
	}
}

func TestSessionHarnessNoFaultRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node session harness")
	}
	rep, err := RunSessionHarness(SessionHarnessOptions{
		Sessions:  24,
		Rounds:    4,
		KillAfter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "" || rep.Unavailable != 0 || rep.Incomplete != 0 || rep.ReadMismatches != 0 {
		var buf strings.Builder
		rep.Format(&buf)
		t.Fatalf("clean run not clean:\n%s", buf.String())
	}
	// Every event applied exactly once.
	if rep.Applied != int64(24*4*rep.EventsPerBatch) {
		t.Fatalf("applied %d, want %d", rep.Applied, 24*4*rep.EventsPerBatch)
	}
	// With 24 sessions across 3 nodes, both ownership paths engage.
	tot := rep.Totals()
	if tot.Owned == 0 || tot.Forwards == 0 {
		t.Fatalf("routing never exercised both paths: %+v", tot)
	}
}
