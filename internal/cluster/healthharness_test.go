package cluster

import (
	"strings"
	"testing"
)

// TestHealthHarnessLifecycle runs the alert-lifecycle harness once at
// each of two parallelism levels and requires (a) the acceptance gate
// to pass and (b) the two timelines to be byte-identical: the alert
// verdict is a function of what happened, not of send interleaving.
func TestHealthHarnessLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness in -short")
	}
	run := func(jobs int) (*HealthReport, []string) {
		t.Helper()
		report, survivors, err := RunHealthHarness(HealthHarnessOptions{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if err := report.Assert(survivors); err != nil {
			t.Fatalf("jobs=%d: %v\ntimeline:\n%s", jobs, err, strings.Join(report.Timeline, "\n"))
		}
		return report, survivors
	}
	r1, _ := run(1)
	r8, _ := run(8)
	t1 := strings.Join(r1.Timeline, "\n")
	t8 := strings.Join(r8.Timeline, "\n")
	if t1 != t8 {
		t.Fatalf("timeline differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", t1, t8)
	}
	if r1.Killed != r8.Killed {
		t.Fatalf("kill target differs across runs: %s vs %s", r1.Killed, r8.Killed)
	}
}
