package cluster

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// sp is shorthand for building synthetic request spans.
func sp(id, node, path string, mut ...func(*obs.ReqSpan)) obs.ReqSpan {
	s := obs.ReqSpan{ID: id, Node: node, Path: path, Status: 200}
	for _, m := range mut {
		m(&s)
	}
	return s
}

func withPeer(p string) func(*obs.ReqSpan)   { return func(s *obs.ReqSpan) { s.Peer = p } }
func withWinner(w string) func(*obs.ReqSpan) { return func(s *obs.ReqSpan) { s.Winner = w } }
func withHedge() func(*obs.ReqSpan)          { return func(s *obs.ReqSpan) { s.Hedge = 1 } }
func withServe(us int64) func(*obs.ReqSpan)  { return func(s *obs.ReqSpan) { s.ServeUS = us } }

func TestAnalyzeSpansCleanChains(t *testing.T) {
	spans := []obs.ReqSpan{
		// r1: owned on n1.
		sp("r1", "n1", obs.PathOwned, withServe(10)),
		// r2: plain forward n1 -> n2, remote serve on n2.
		sp("r2", "n1", obs.PathForward, withPeer("n2"), withWinner("n2"), withServe(5)),
		sp("r2", "n2", obs.PathRemote, withPeer("n1"), withServe(40)),
		// r3: hedged forward, hedge peer n3 wins, both peers serve.
		sp("r3", "n1", obs.PathForward, withPeer("n2"), withWinner("n3"), withHedge(), withServe(3)),
		sp("r3", "n1", obs.PathHedge, withPeer("n3")),
		sp("r3", "n2", obs.PathRemote, withPeer("n1"), withServe(500)),
		sp("r3", "n3", obs.PathRemote, withPeer("n1"), withServe(20)),
		// r4: owner dead, two retries, degraded local serve.
		sp("r4", "n1", obs.PathForward, withPeer("n2")),
		sp("r4", "n1", obs.PathRetry, withPeer("n2")),
		sp("r4", "n1", obs.PathRetry, withPeer("n2")),
		sp("r4", "n1", obs.PathDegraded, withPeer("n2"), withServe(60)),
	}
	check := AnalyzeSpans(spans)
	if len(check.Violations) != 0 {
		t.Fatalf("clean chains produced violations: %v", check.Violations)
	}
	if check.Requests != 4 || check.Spans != len(spans) {
		t.Fatalf("requests=%d spans=%d", check.Requests, check.Spans)
	}
	want := map[string]int64{
		obs.PathOwned: 1, obs.PathForward: 3, obs.PathHedge: 1, HedgeWinPath: 1,
		obs.PathRetry: 2, obs.PathDegraded: 1, obs.PathRemote: 3,
	}
	for path, n := range want {
		if check.ByPath[path] != n {
			t.Errorf("ByPath[%s] = %d, want %d", path, check.ByPath[path], n)
		}
	}
	if check.PerNode["n1"][obs.PathForward] != 3 || check.PerNode["n2"][obs.PathRemote] != 2 {
		t.Fatalf("per-node accounting off: %v", check.PerNode)
	}

	// Chains are sorted by ID with terminal classification.
	wantChains := []struct{ id, origin, served, path string }{
		{"r1", "n1", "n1", obs.PathOwned},
		{"r2", "n1", "n2", obs.PathForward},
		{"r3", "n1", "n3", obs.PathForward},
		{"r4", "n1", "n1", obs.PathDegraded},
	}
	if len(check.Chains) != len(wantChains) {
		t.Fatalf("%d chains, want %d", len(check.Chains), len(wantChains))
	}
	for i, w := range wantChains {
		ch := check.Chains[i]
		if ch.ID != w.id || ch.Origin != w.origin || ch.Served != w.served || ch.Path != w.path {
			t.Errorf("chain %d = {%s %s->%s %s}, want {%s %s->%s %s}",
				i, ch.ID, ch.Origin, ch.Served, ch.Path, w.id, w.origin, w.served, w.path)
		}
	}
	// ServeUS is the slowest local serve in the chain; TopSlow orders by it.
	if check.Chains[2].ServeUS != 500 {
		t.Fatalf("r3 serve attribution %d, want the slow losing peer's 500", check.Chains[2].ServeUS)
	}
	top := check.TopSlow(2)
	if len(top) != 2 || top[0].ID != "r3" || top[1].ID != "r4" {
		t.Fatalf("TopSlow(2) = %v", top)
	}
	if got := check.TopSlow(99); len(got) != 4 {
		t.Fatalf("TopSlow over-asking returned %d chains", len(got))
	}
}

func TestAnalyzeSpansViolations(t *testing.T) {
	cases := []struct {
		name  string
		spans []obs.ReqSpan
		want  string
	}{
		{"unknown path", []obs.ReqSpan{sp("r", "n1", "weird")}, "unknown span path"},
		{"two origins", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
			sp("r", "n3", obs.PathHedge, withPeer("n2")),
		}, "more than one node"},
		{"duplicate forward", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
			sp("r", "n1", obs.PathForward, withPeer("n3"), withWinner("n3")),
		}, "duplicate origin span"},
		{"owned not exclusive", []obs.ReqSpan{
			sp("r", "n1", obs.PathOwned),
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
		}, "owned terminal is not exclusive"},
		{"retry without forward", []obs.ReqSpan{
			sp("r", "n1", obs.PathOwned),
			sp("r", "n1", obs.PathRetry, withPeer("n2")),
		}, "without a forward span"},
		{"no terminal", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2")),
		}, "winnerless forward without a degraded span"},
		{"degraded after win", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
			sp("r", "n1", obs.PathDegraded, withPeer("n2")),
		}, "degraded span after a winning forward"},
		{"hedge win without hedge span", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n3"), withHedge()),
			sp("r", "n3", obs.PathRemote, withPeer("n1")),
		}, "hedge-won forward without a hedge span"},
		{"remote on origin", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
			sp("r", "n1", obs.PathRemote, withPeer("n1")),
		}, "routing loop"},
		{"remote on untargeted node", []obs.ReqSpan{
			sp("r", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
			sp("r", "n3", obs.PathRemote, withPeer("n1")),
		}, "untargeted node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := AnalyzeSpans(tc.spans)
			found := false
			for _, v := range check.Violations {
				if strings.Contains(v, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("violations %v do not mention %q", check.Violations, tc.want)
			}
			if check.Healthy(nil) {
				t.Fatal("Healthy(nil) true despite violations")
			}
		})
	}
}

func TestReconcileExactBothDirections(t *testing.T) {
	check := AnalyzeSpans([]obs.ReqSpan{
		sp("r1", "n1", obs.PathOwned),
		sp("r2", "n1", obs.PathForward, withPeer("n2"), withWinner("n2")),
		sp("r2", "n2", obs.PathRemote, withPeer("n1")),
	})
	counters := map[string]NodeCounters{
		"n1": {Name: "n1", OwnedLocal: 1, Forwards: 1},
		"n2": {Name: "n2", Remote: 1},
	}
	if mm := check.Reconcile(counters); len(mm) != 0 {
		t.Fatalf("exact counters mismatch: %v", mm)
	}
	if !check.Healthy(counters) {
		t.Fatal("Healthy false on a reconciled trace")
	}

	// Counter without its span: the counter side drifted.
	over := map[string]NodeCounters{
		"n1": {Name: "n1", OwnedLocal: 2, Forwards: 1},
		"n2": {Name: "n2", Remote: 1},
	}
	mm := check.Reconcile(over)
	if len(mm) != 1 || !strings.Contains(mm[0], "cluster_owned_local_total is 2") {
		t.Fatalf("over-counted mismatch = %v", mm)
	}

	// Span without its counter: the trace side drifted — and a node the
	// counters never heard of is flagged too.
	short := map[string]NodeCounters{"n1": {Name: "n1", OwnedLocal: 1, Forwards: 1}}
	mm = check.Reconcile(short)
	found := false
	for _, m := range mm {
		if strings.Contains(m, "n2: spans from a node with no counters") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-node mismatch not reported: %v", mm)
	}
	if check.Healthy(short) {
		t.Fatal("Healthy true despite reconciliation mismatches")
	}
}

func TestFormatVerdictLines(t *testing.T) {
	check := AnalyzeSpans([]obs.ReqSpan{sp("r1", "n1", obs.PathOwned, withServe(7))})
	counters := map[string]NodeCounters{"n1": {Name: "n1", OwnedLocal: 1}}
	out := check.Format(counters, 3)
	for _, want := range []string{
		"capstat: 1 requests, 1 spans",
		"node n1: owned=1",
		"r1 n1->n1 owned hops=1 serve=7us",
		"invariants: all chains terminate at exactly one serving node",
		"accounting: trace reconciles exactly with routing counters",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}

	bad := check.Format(map[string]NodeCounters{"n1": {Name: "n1"}}, 0)
	if !strings.Contains(bad, "MISMATCH: ") || strings.Contains(bad, "reconciles exactly") {
		t.Fatalf("mismatch report wrong:\n%s", bad)
	}
}
