package cluster

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/capserver"
	"repro/internal/obs"
)

// TraceHeader re-exports the cross-hop trace-ID header for callers
// that configure clusters without importing internal/obs.
const TraceHeader = obs.TraceHeader

// requestID derives the deterministic trace ID for a request this node
// originates (DESIGN.md §12):
//
//	<self>-<seed>.<seq>-<keyhash>
//
// Self and a per-node atomic sequence make IDs unique across the
// cluster without coordination; TraceSeed distinguishes incarnations
// of the same member (a restart resets the sequence, and the fault
// harness bumps the seed per restart so replayed sequence numbers
// cannot collide); the low 32 bits of the key's ring hash tie the ID
// to the key it routed, which is what lets capstat group hops into
// per-request chains and still spot a span attributed to the wrong
// request. No wall clock, no randomness: a seeded harness run yields
// the same ID sequence every time.
func (n *Node) requestID(key string) string {
	return fmt.Sprintf("%s-%d.%d-%08x",
		n.cfg.Self, n.cfg.TraceSeed, n.seq.Add(1), uint32(fnv64(key)))
}

// statusRecorder captures the status code the local handler writes,
// for the hop's span.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// headerUS parses a microsecond-valued trace header set by the local
// capserver (0 when absent or malformed).
func headerUS(h http.Header, name string) int64 {
	v := h.Get(name)
	if v == "" {
		return 0
	}
	var us int64
	if _, err := fmt.Sscanf(v, "%d", &us); err != nil {
		return 0
	}
	return us
}

// serveTraced serves a request through the local capserver and records
// the hop as a span: the trace ID rides the request (so capserver
// exposes its queue/compute split) and the response (so clients and
// the harness can correlate), and the span captures the hop's status,
// cache class and timing split. peer carries path-specific context:
// the forwarding origin on a remote hop, the unreachable owner on a
// degraded hop, empty on an owned hop.
func (n *Node) serveTraced(w http.ResponseWriter, r *http.Request, id, path, peer string) {
	r.Header.Set(obs.TraceHeader, id)
	w.Header().Set(obs.TraceHeader, id)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	n.local.Handler().ServeHTTP(rec, r)
	h := w.Header()
	n.cfg.Tracer.ReqSpan(obs.ReqSpan{
		ID:        id,
		Node:      n.cfg.Self,
		Path:      path,
		Peer:      peer,
		Status:    int64(rec.status),
		Cache:     h.Get(capserver.CacheHeader),
		QueueUS:   headerUS(h, capserver.TraceQueueHeader),
		ComputeUS: headerUS(h, capserver.TraceComputeHeader),
		ServeUS:   time.Since(start).Microseconds(),
	})
}
