package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/capserver"
	"repro/internal/channel"
	"repro/internal/rng"
	"repro/internal/session"
)

// This file is the session-sharded counterpart of the fault harness in
// harness.go, behind `sessload -mode cluster` and `make
// sessions-smoke`: it stands up an N-node cluster, streams per-session
// event batches through whichever node the seeded client picks (the
// routers forward each batch to the session's ring owner), kills and
// restarts the owner of a slice of the sessions mid-run, and checks
// the properties session sharding promises:
//
//   - single ownership: every batch for a session lands on exactly one
//     node, wherever the client sent it, and reads through any node
//     return that owner's state;
//   - honest unavailability: while a session's owner is down, writes
//     and reads for it fail with 502 — they are never served from a
//     stale twin elsewhere (the no-degrade discipline of
//     Node.routeSession);
//   - recovery: after the owner restarts, clients resume their event
//     streams (use indices keep climbing past the outage) and every
//     session completes its full planned stream.
//
// Session state is in-memory by design — the estimator is a live
// tally, not a durable log — so a restarted owner serves resumed
// sessions with post-restart counts. The harness therefore asserts on
// the use cursor (monotone, client-driven, survives the outage), not
// on event totals.

// SessionHarnessOptions configures a session fault-harness run.
type SessionHarnessOptions struct {
	// Nodes are the member names (default n1, n2, n3).
	Nodes []string
	// Sessions is the concurrent session count (default 48).
	Sessions int
	// Rounds is the number of batch rounds: every session posts one
	// batch per round (default 9).
	Rounds int
	// EventsPerBatch sizes each NDJSON batch (default 40).
	EventsPerBatch int
	// Seed drives the event streams and the client's node picks
	// (default 1).
	Seed uint64
	// KillNode is the member to kill (default the middle node in
	// sorted order). Ignored when KillAfter < 0.
	KillNode string
	// KillAfter kills KillNode just before this round (default
	// Rounds/3). Negative disables the fault.
	KillAfter int
	// RestartAfter restarts the killed node just before this round
	// (default 2*Rounds/3). Negative leaves it down.
	RestartAfter int
	// Out receives progress lines (default: discard).
	Out io.Writer
}

func (o SessionHarnessOptions) withDefaults() SessionHarnessOptions {
	if len(o.Nodes) == 0 {
		o.Nodes = []string{"n1", "n2", "n3"}
	}
	if o.Sessions <= 0 {
		o.Sessions = 48
	}
	if o.Rounds <= 0 {
		o.Rounds = 9
	}
	if o.EventsPerBatch <= 0 {
		o.EventsPerBatch = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.KillAfter == 0 {
		o.KillAfter = o.Rounds / 3
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 2 * o.Rounds / 3
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// SessionNodeCounters is one member's session-routing activity summed
// across incarnations.
type SessionNodeCounters struct {
	Name       string `json:"name"`
	Owned      int64  `json:"owned"`
	Forwards   int64  `json:"forwards"`
	Retries    int64  `json:"retries"`
	PeerErrors int64  `json:"peer_errors"`
}

// SessionHarnessReport aggregates one session-harness run.
type SessionHarnessReport struct {
	Sessions       int `json:"sessions"`
	Rounds         int `json:"rounds"`
	EventsPerBatch int `json:"events_per_batch"`

	// Applied counts events acknowledged by an owner; Unavailable
	// counts batch posts refused because the owner was down (502 or
	// transport failure at every member); Replayed counts batches the
	// client re-sent after an ambiguous failure and found already
	// applied (409).
	Applied     int64 `json:"applied"`
	Unavailable int   `json:"unavailable"`
	Replayed    int   `json:"replayed"`

	Killed    string `json:"killed,omitempty"`
	Restarted bool   `json:"restarted"`

	// Incomplete counts sessions whose event stream did not finish;
	// ReadMismatches counts final reads that disagreed across nodes or
	// ended at the wrong use cursor.
	Incomplete     int `json:"incomplete"`
	ReadMismatches int `json:"read_mismatches"`

	Nodes []SessionNodeCounters `json:"nodes"`
	Wall  time.Duration         `json:"-"`
}

// Totals sums the per-node session counters.
func (r *SessionHarnessReport) Totals() SessionNodeCounters {
	t := SessionNodeCounters{Name: "total"}
	for _, n := range r.Nodes {
		t.Owned += n.Owned
		t.Forwards += n.Forwards
		t.Retries += n.Retries
		t.PeerErrors += n.PeerErrors
	}
	return t
}

// Format renders the report for humans.
func (r *SessionHarnessReport) Format(w io.Writer) {
	fmt.Fprintf(w, "sessions:   %d x %d rounds x %d events (%d applied) in %v\n",
		r.Sessions, r.Rounds, r.EventsPerBatch, r.Applied, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "fault:      unavailable=%d replayed=%d", r.Unavailable, r.Replayed)
	if r.Killed != "" {
		fmt.Fprintf(w, " killed=%s restarted=%v", r.Killed, r.Restarted)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "final:      incomplete=%d read_mismatches=%d\n", r.Incomplete, r.ReadMismatches)
	for _, n := range append(r.Nodes, r.Totals()) {
		fmt.Fprintf(w, "node %-6s owned=%-5d fwd=%-5d retry=%-3d peer_err=%d\n",
			n.Name, n.Owned, n.Forwards, n.Retries, n.PeerErrors)
	}
}

// Assert is the acceptance gate for the cluster leg of `make
// sessions-smoke`.
func (r *SessionHarnessReport) Assert() error {
	var fails []string
	t := r.Totals()
	if t.Owned == 0 {
		fails = append(fails, "no session batch was ever served by an owner")
	}
	if t.Forwards == 0 {
		fails = append(fails, "no session batch was ever forwarded (sharding never crossed nodes?)")
	}
	if r.Killed != "" {
		if r.Unavailable == 0 {
			fails = append(fails, "node killed but no session batch was refused as unavailable")
		}
		if t.PeerErrors == 0 {
			fails = append(fails, "node killed but no session forward failed toward it")
		}
	}
	if r.Incomplete != 0 {
		fails = append(fails, fmt.Sprintf("%d sessions did not complete their event streams", r.Incomplete))
	}
	if r.ReadMismatches != 0 {
		fails = append(fails, fmt.Sprintf("%d final reads diverged across nodes", r.ReadMismatches))
	}
	if len(fails) > 0 {
		return fmt.Errorf("cluster: session harness assertions failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// sessionPlanEvents builds session i's full deterministic event
// stream: Rounds*EventsPerBatch uses with seeded kinds and symbols.
func sessionPlanEvents(seed uint64, i, total int) []session.Event {
	src := rng.NewStream(seed, uint64(0x5e55)+uint64(i))
	events := make([]session.Event, total)
	for u := 0; u < total; u++ {
		ev := session.Event{Use: int64(u + 1)}
		sym := uint32(src.Intn(16))
		switch draw := src.Float64(); {
		case draw < 0.08:
			ev.Kind, ev.Sent = channel.EventDelete, sym
		case draw < 0.13:
			ev.Kind, ev.Received = channel.EventInsert, sym
		case draw < 0.17:
			ev.Kind, ev.Sent, ev.Received = channel.EventSubstitute, sym, sym^1
		default:
			ev.Kind, ev.Sent, ev.Received = channel.EventTransmit, sym, sym
		}
		events[u] = ev
	}
	return events
}

// RunSessionHarness executes a session-sharded cluster fault run.
func RunSessionHarness(o SessionHarnessOptions) (*SessionHarnessReport, error) {
	o = o.withDefaults()
	if o.KillAfter >= 0 && o.RestartAfter >= 0 && o.RestartAfter <= o.KillAfter {
		return nil, fmt.Errorf("cluster: restart round (%d) must exceed kill round (%d)", o.RestartAfter, o.KillAfter)
	}

	sortedNames := append([]string(nil), o.Nodes...)
	sort.Strings(sortedNames)
	var mem Membership
	listeners := make(map[string]net.Listener, len(sortedNames))
	for _, name := range sortedNames {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close() // no-op once a server owns it
		listeners[name] = l
		mem.Members = append(mem.Members, Member{Name: name, URL: "http://" + l.Addr().String()})
	}

	incarnations := make(map[string][]*Metrics)
	startNode := func(name string, l net.Listener) (*proc, error) {
		srv := capserver.New(capserver.Config{Workers: 2, SessionSweep: -1})
		node, err := NewNode(srv, Config{
			Self:        name,
			Membership:  mem,
			HedgeDelay:  -1, // sessions never hedge; compute traffic is absent here
			PeerBackoff: time.Millisecond,
			PeerTimeout: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		incarnations[name] = append(incarnations[name], node.Metrics())
		p := &proc{
			name: name,
			addr: l.Addr().String(),
			lis:  l,
			hsrv: &http.Server{Handler: node.Handler()},
			srv:  srv,
			node: node,
		}
		go func() { _ = p.hsrv.Serve(l) }()
		return p, nil
	}

	procs := make(map[string]*proc, len(sortedNames))
	for _, name := range sortedNames {
		p, err := startNode(name, listeners[name])
		if err != nil {
			return nil, err
		}
		procs[name] = p
	}
	defer func() {
		for _, p := range procs {
			if !p.dead {
				_ = p.hsrv.Close()
			}
		}
	}()

	killName := o.KillNode
	if killName == "" {
		killName = sortedNames[len(sortedNames)/2]
	}
	if _, ok := procs[killName]; !ok {
		return nil, fmt.Errorf("cluster: kill node %q is not a member", killName)
	}

	report := &SessionHarnessReport{Sessions: o.Sessions, Rounds: o.Rounds, EventsPerBatch: o.EventsPerBatch}
	client := &http.Client{Timeout: 30 * time.Second}
	dispatch := rng.NewStream(o.Seed, 0x5d15)

	total := o.Rounds * o.EventsPerBatch
	plans := make([][]session.Event, o.Sessions)
	cursors := make([]int, o.Sessions) // next un-acknowledged event index
	ids := make([]string, o.Sessions)
	for i := range plans {
		plans[i] = sessionPlanEvents(o.Seed, i, total)
		ids[i] = fmt.Sprintf("hs-%d-%04d", o.Seed, i)
	}

	// postBatch sends session i's next EventsPerBatch events through a
	// seeded node pick (rotating past dead listeners) and advances the
	// cursor on success. A 409 means an earlier ambiguous failure
	// actually landed: the owner's cursor is ahead, so resync from its
	// answer. Returns false when the owner was unreachable.
	postBatch := func(i int) (bool, error) {
		if cursors[i] >= total {
			return true, nil
		}
		end := cursors[i] + o.EventsPerBatch
		if end > total {
			end = total
		}
		var buf bytes.Buffer
		if err := session.EncodeEvents(&buf, plans[i][cursors[i]:end]); err != nil {
			return false, err
		}
		pick := dispatch.Intn(len(sortedNames))
		var resp *http.Response
		var lastErr error
		for attempt := 0; attempt < len(sortedNames); attempt++ {
			p := procs[sortedNames[(pick+attempt)%len(sortedNames)]]
			resp, lastErr = client.Post(
				"http://"+p.addr+"/v1/sessions/"+ids[i]+"/events",
				"application/x-ndjson", bytes.NewReader(buf.Bytes()))
			if lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			report.Unavailable++
			return false, nil
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			report.Unavailable++
			return false, nil
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var ack capserver.SessionIngestResponse
			if err := json.Unmarshal(body, &ack); err != nil {
				return false, fmt.Errorf("session %s: bad ingest ack: %v", ids[i], err)
			}
			report.Applied += int64(ack.Applied)
			cursors[i] = end
			return true, nil
		case http.StatusConflict:
			// The batch (or part of it) landed during an ambiguous
			// failure; trust the owner's cursor and move past it.
			report.Replayed++
			cursors[i] = end
			return true, nil
		case http.StatusBadGateway, http.StatusServiceUnavailable:
			report.Unavailable++
			return false, nil
		default:
			return false, fmt.Errorf("session %s: unexpected ingest status %d: %s", ids[i], resp.StatusCode, body)
		}
	}

	start := time.Now()
	for round := 0; round < o.Rounds; round++ {
		if o.KillAfter >= 0 && round == o.KillAfter {
			p := procs[killName]
			_ = p.hsrv.Close()
			p.dead = true
			report.Killed = killName
			fmt.Fprintf(o.Out, "round %d: killed %s (%s)\n", round, killName, p.addr)
		}
		if o.KillAfter >= 0 && o.RestartAfter >= 0 && round == o.RestartAfter {
			old := procs[killName]
			l, err := net.Listen("tcp", old.addr)
			if err != nil {
				return nil, fmt.Errorf("cluster: restart %s on %s: %v", killName, old.addr, err)
			}
			p, err := startNode(killName, l)
			if err != nil {
				return nil, err
			}
			procs[killName] = p
			report.Restarted = true
			fmt.Fprintf(o.Out, "round %d: restarted %s (%s)\n", round, killName, p.addr)
		}
		for i := range plans {
			if _, err := postBatch(i); err != nil {
				return nil, err
			}
		}
	}

	// Drain: sessions that lost rounds to the outage finish their
	// streams against the restarted owner. Bounded, and only useful
	// when the owner came back.
	for pass := 0; pass < 2*o.Rounds; pass++ {
		pending := 0
		for i := range plans {
			if cursors[i] < total {
				pending++
				if _, err := postBatch(i); err != nil {
					return nil, err
				}
			}
		}
		if pending == 0 {
			break
		}
	}
	for i := range plans {
		if cursors[i] < total {
			report.Incomplete++
		}
	}
	report.Wall = time.Since(start)

	// Final reads: each session through two distinct nodes must agree
	// byte-for-byte after dropping bounds_source (the only field that
	// legitimately differs between a cache miss and the hit it seeds),
	// and the owner's cursor must sit at the end of the planned stream.
	readVia := func(nodeIdx, sessIdx int) (map[string]json.RawMessage, error) {
		p := procs[sortedNames[nodeIdx%len(sortedNames)]]
		resp, err := client.Get("http://" + p.addr + "/v1/sessions/" + ids[sessIdx])
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			return nil, err
		}
		delete(m, "bounds_source")
		return m, nil
	}
	for i := range plans {
		a, errA := readVia(i, i)
		b, errB := readVia(i+1, i)
		if errA != nil || errB != nil {
			report.ReadMismatches++
			fmt.Fprintf(o.Out, "session %s: final read failed: %v / %v\n", ids[i], errA, errB)
			continue
		}
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if !bytes.Equal(ab, bb) {
			report.ReadMismatches++
			fmt.Fprintf(o.Out, "session %s: reads diverge across nodes\n", ids[i])
			continue
		}
		var lastUse int64
		if err := json.Unmarshal(a["last_use"], &lastUse); err != nil || lastUse != int64(total) {
			report.ReadMismatches++
			fmt.Fprintf(o.Out, "session %s: cursor at %d, want %d\n", ids[i], lastUse, total)
		}
	}

	for _, name := range sortedNames {
		c := SessionNodeCounters{Name: name}
		for _, m := range incarnations[name] {
			c.Owned += m.SessionOwned()
			c.Forwards += m.SessionForwards()
			c.Retries += m.SessionRetries()
			c.PeerErrors += m.SessionPeerErrors()
		}
		report.Nodes = append(report.Nodes, c)
	}
	return report, nil
}
