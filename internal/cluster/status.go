package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/health"
)

// Metrics federation (DESIGN.md §12). Any node answers
// GET /v1/cluster/status by probing every member — itself included,
// over the same HTTP path, so the answer does not depend on which node
// was asked — and merging the results into one deterministic snapshot:
// per-member counters, per-route latency quantiles, ring ownership
// arcs, and cluster-wide totals. A member that cannot answer within
// StatusTimeout degrades the snapshot to partial; it never fails it.

// StatusPath is the federation endpoint every cluster node serves.
const StatusPath = "/v1/cluster/status"

// StatusSchema versions the snapshot format.
const StatusSchema = "capest/cluster-status/v1"

// ClusterStatus is the merged snapshot. Members sort by name, the
// maps marshal with sorted keys, and scrape-time-dependent series
// (the process_ self-metrics, the healthz/readyz probe counters the
// fan-out itself perturbs) are excluded, so the rendered JSON is
// byte-identical no matter which node was queried — modulo the Self
// field, which names the answering node.
type ClusterStatus struct {
	Schema string `json:"schema"`
	// Self is the node that assembled the snapshot: the one field a
	// consumer must ignore when diffing snapshots across nodes.
	Self string `json:"self"`
	// Partial reports that at least one member could not be probed;
	// its entry carries Healthy: false and no counters.
	Partial bool `json:"partial"`
	// RingPermille is each member's share of the key space, in tenths
	// of a percent — a pure function of the membership.
	RingPermille map[string]int64 `json:"ring_permille"`
	// Totals sums every cluster_ routing counter across reachable
	// members (cluster_degraded_total is the fleet's degraded total).
	Totals map[string]int64 `json:"totals"`
	// Alerts aggregates the members' health verdicts: counts of firing
	// and pending rules fleet-wide, plus the sorted set of rule names
	// firing anywhere. Per-member detail lives on each MemberStatus.
	Alerts  AlertSummary   `json:"alerts"`
	Members []MemberStatus `json:"members"`
}

// AlertSummary is the cluster-wide roll-up of member alert state.
type AlertSummary struct {
	Firing  int `json:"firing"`
	Pending int `json:"pending"`
	// FiringRules lists rule names firing on at least one member,
	// sorted and deduplicated.
	FiringRules []string `json:"firing_rules,omitempty"`
}

// MemberStatus is one member's slice of the snapshot.
type MemberStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Error is a stable classification ("unreachable", "bad metrics"),
	// never a raw error string — raw strings vary with probe timing and
	// would break cross-node byte identity.
	Error string `json:"error,omitempty"`
	// Counters holds the member's deterministic integer series, keyed
	// exactly as exposed ("cluster_forward_total",
	// `capserver_requests_total{endpoint="bounds",code="200"}`).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Routes summarizes per-endpoint latency (count, p50, p99).
	Routes []RouteLatency `json:"routes,omitempty"`
	// Alerts is the member's own health verdict, exactly as its
	// /v1/health/alerts endpoint serves it (rules sorted by name, so
	// the nested document keeps the snapshot's byte identity).
	Alerts *health.AlertsDoc `json:"alerts,omitempty"`
}

// RouteLatency is one endpoint's latency summary on one member.
type RouteLatency struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// serveStatus answers the federation endpoint.
func (n *Node) serveStatus(w http.ResponseWriter, r *http.Request) {
	st := n.clusterStatus(r.Context())
	body, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(append(body, '\n'))
}

// clusterStatus probes every member concurrently and merges.
func (n *Node) clusterStatus(ctx context.Context) ClusterStatus {
	names := n.ring.Members()
	members := make([]MemberStatus, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			members[i] = n.probeMember(ctx, name, n.cfg.Membership.URL(name))
		}(i, name)
	}
	wg.Wait()

	st := ClusterStatus{
		Schema:       StatusSchema,
		Self:         n.cfg.Self,
		RingPermille: n.ring.OwnershipPermille(),
		Totals:       make(map[string]int64),
		Members:      members,
	}
	firing := make(map[string]bool)
	for _, m := range members {
		if !m.Healthy {
			st.Partial = true
			continue
		}
		for k, v := range m.Counters {
			if strings.HasPrefix(k, "cluster_") {
				st.Totals[k] += v
			}
		}
		if m.Alerts != nil {
			st.Alerts.Firing += m.Alerts.Firing
			st.Alerts.Pending += m.Alerts.Pending
			for _, a := range m.Alerts.Alerts {
				if a.State == "firing" {
					firing[a.Rule] = true
				}
			}
		}
	}
	for rule := range firing {
		st.Alerts.FiringRules = append(st.Alerts.FiringRules, rule)
	}
	sort.Strings(st.Alerts.FiringRules)
	return st
}

// probeMember fetches one member's health and metrics within the
// status timeout. Failures classify, they do not propagate: a dead
// member yields Healthy: false and marks the snapshot partial.
func (n *Node) probeMember(ctx context.Context, name, base string) MemberStatus {
	ms := MemberStatus{Name: name, URL: base}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.StatusTimeout)
	defer cancel()
	if _, err := n.probeGet(ctx, base+"/v1/healthz"); err != nil {
		ms.Error = "unreachable"
		return ms
	}
	body, err := n.probeGet(ctx, base+"/metrics")
	if err != nil {
		ms.Error = "unreachable"
		return ms
	}
	counters, routes, err := parseMetricsSnapshot(body)
	if err != nil {
		ms.Error = "bad metrics"
		return ms
	}
	alerts, err := n.probeGet(ctx, base+health.AlertsPath)
	if err != nil {
		ms.Error = "unreachable"
		return ms
	}
	var doc health.AlertsDoc
	if err := json.Unmarshal(alerts, &doc); err != nil || doc.Schema != health.Schema {
		ms.Error = "bad alerts"
		return ms
	}
	ms.Healthy = true
	ms.Counters = counters
	ms.Routes = routes
	ms.Alerts = &doc
	return ms
}

// probeGet performs one bounded GET and returns the body on a 200.
func (n *Node) probeGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s answered %d", url, resp.StatusCode)
	}
	return body, nil
}

// parseMetricsSnapshot turns one member's Prometheus exposition into
// the snapshot's counters map and route summaries, dropping the
// scrape-time-dependent series: the process_ self-metrics and the
// healthz/readyz series that the status fan-out's own probes perturb.
// Everything that remains is deterministic under a quiesced workload,
// which is what makes the merged snapshot byte-identical across
// querying nodes.
func parseMetricsSnapshot(data []byte) (map[string]int64, []RouteLatency, error) {
	counters := make(map[string]int64)
	byEndpoint := make(map[string]*RouteLatency)
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "process_") ||
			strings.Contains(line, `endpoint="healthz"`) ||
			strings.Contains(line, `endpoint="readyz"`) ||
			strings.Contains(line, `endpoint="health.alerts"`) {
			// health.alerts joins healthz/readyz in the excluded set: the
			// status fan-out's own alert probes perturb its request and
			// latency series, which would break cross-node byte identity.
			continue
		}
		series, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, nil, fmt.Errorf("cluster: unparseable metrics line %q", line)
		}
		if strings.HasPrefix(series, "capserver_latency_ms") {
			if err := mergeLatencyLine(byEndpoint, series, value); err != nil {
				return nil, nil, err
			}
			continue
		}
		v, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: non-integer sample %q", line)
		}
		counters[series] = v
	}
	routes := make([]RouteLatency, 0, len(byEndpoint))
	for _, r := range byEndpoint {
		routes = append(routes, *r)
	}
	sort.Slice(routes, func(a, b int) bool { return routes[a].Endpoint < routes[b].Endpoint })
	return counters, routes, nil
}

// mergeLatencyLine folds one capserver_latency_ms exposition line
// (count or quantile) into the per-endpoint summaries.
func mergeLatencyLine(byEndpoint map[string]*RouteLatency, series, value string) error {
	endpoint := labelValue(series, "endpoint")
	if endpoint == "" {
		return fmt.Errorf("cluster: latency series %q has no endpoint label", series)
	}
	r := byEndpoint[endpoint]
	if r == nil {
		r = &RouteLatency{Endpoint: endpoint}
		byEndpoint[endpoint] = r
	}
	if strings.HasPrefix(series, "capserver_latency_ms_count") {
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return fmt.Errorf("cluster: latency count %q: %v", value, err)
		}
		r.Count = n
		return nil
	}
	q := labelValue(series, "quantile")
	if q != "0.5" && q != "0.99" {
		return nil // 0.9 is exposed but not federated
	}
	v, err := strconv.ParseFloat(value, 64)
	if err != nil {
		return fmt.Errorf("cluster: latency quantile %q: %v", value, err)
	}
	if q == "0.5" {
		r.P50MS = v
	} else {
		r.P99MS = v
	}
	return nil
}

// labelValue extracts one label's value from a rendered series name
// ("" when absent). The exposition quotes with %q and no label value
// in this system contains a quote, so scanning to the closing quote
// is exact.
func labelValue(series, label string) string {
	marker := label + `="`
	i := strings.Index(series, marker)
	if i < 0 {
		return ""
	}
	rest := series[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
