package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Trace analysis (the capstat core, shared by cmd/capstat and the
// fault harness's reconciliation gate). The input is the merged
// request spans of every node's trace file; the output is per-request
// hop chains, per-path accounting, and the invariant violations. The
// accounting is exact, not statistical: spans are emitted at the same
// program points the routing counters increment, so Reconcile demands
// equality, and any drift between the two is a bug in the router.

// HedgeWinPath is the synthetic accounting row for forward spans won
// by the hedged request (ReqSpan.Hedge == 1). It is not a span path —
// it reconciles against cluster_hedge_wins_total.
const HedgeWinPath = "hedge_win"

// Chain is one request's reconstructed cross-node journey.
type Chain struct {
	// ID is the request's trace ID.
	ID string `json:"id"`
	// Origin is the node that minted the ID and routed the request.
	Origin string `json:"origin"`
	// Served is the node whose computation answered the client:
	// the origin itself (owned, degraded) or the winning peer.
	Served string `json:"served"`
	// Path is the terminal path: owned, forward or degraded.
	Path string `json:"path"`
	// Hops is the number of spans the request left across the cluster.
	Hops int `json:"hops"`
	// Spans is the request's spans in analysis order (origin spans
	// first, then remote spans by node).
	Spans []obs.ReqSpan `json:"spans"`
	// ServeUS is the slowest local serve in the chain, the analyzer's
	// latency attribution for the request (wall-clock measurement;
	// structure is deterministic, this field is not).
	ServeUS int64 `json:"serve_us"`
}

// TraceCheck is the analyzer's verdict over one set of trace files.
type TraceCheck struct {
	// Requests is the number of distinct trace IDs.
	Requests int `json:"requests"`
	// Spans is the total span count.
	Spans int `json:"spans"`
	// ByPath counts spans per path cluster-wide, plus HedgeWinPath.
	ByPath map[string]int64 `json:"by_path"`
	// PerNode counts spans per path per emitting node, plus
	// HedgeWinPath; this is the side Reconcile holds against the
	// routing counters.
	PerNode map[string]map[string]int64 `json:"per_node"`
	// Chains holds every request's journey, sorted by ID.
	Chains []Chain `json:"chains"`
	// Violations lists every invariant breach, sorted; an empty list
	// is the pass verdict.
	Violations []string `json:"violations"`
}

// AnalyzeSpans groups request spans into chains and checks the trace
// invariants:
//
//   - every span carries a known path code;
//   - a request's origin spans (owned, forward, hedge, retry,
//     degraded) all name one node — the origin;
//   - a request terminates at exactly one serving span: an owned span,
//     a degraded span, or a forward span with a winner — and an owned
//     terminal is exclusive (an owned request never forwards);
//   - at most one forward span per request, and hedge/retry/degraded
//     spans only accompany a forward span;
//   - a degraded span requires its forward span to be winnerless, and
//     a winning forward forbids one;
//   - a hedge-won forward requires a hedge span;
//   - remote spans appear only on nodes the origin actually targeted
//     (forward owner, hedge peer, retry peer, or recorded winner), and
//     never on the origin itself — which makes every chain acyclic.
func AnalyzeSpans(spans []obs.ReqSpan) TraceCheck {
	check := TraceCheck{
		Spans:   len(spans),
		ByPath:  make(map[string]int64),
		PerNode: make(map[string]map[string]int64),
	}
	count := func(node, path string) {
		check.ByPath[path]++
		per := check.PerNode[node]
		if per == nil {
			per = make(map[string]int64)
			check.PerNode[node] = per
		}
		per[path]++
	}
	violate := func(format string, args ...any) {
		check.Violations = append(check.Violations, fmt.Sprintf(format, args...))
	}

	byID := make(map[string][]obs.ReqSpan)
	ids := make([]string, 0)
	for _, sp := range spans {
		if _, ok := byID[sp.ID]; !ok {
			ids = append(ids, sp.ID)
		}
		byID[sp.ID] = append(byID[sp.ID], sp)
	}
	sort.Strings(ids)
	check.Requests = len(ids)

	for _, id := range ids {
		group := byID[id]
		var owned, forward, degraded []obs.ReqSpan
		var hedges, retries, remotes []obs.ReqSpan
		origin := ""
		originConflict := false
		for _, sp := range group {
			switch sp.Path {
			case obs.PathOwned:
				owned = append(owned, sp)
			case obs.PathForward:
				forward = append(forward, sp)
			case obs.PathHedge:
				hedges = append(hedges, sp)
			case obs.PathRetry:
				retries = append(retries, sp)
			case obs.PathDegraded:
				degraded = append(degraded, sp)
			case obs.PathRemote:
				remotes = append(remotes, sp)
				count(sp.Node, sp.Path)
				continue
			default:
				violate("request %s: unknown span path %q on %s", id, sp.Path, sp.Node)
				continue
			}
			count(sp.Node, sp.Path)
			if sp.Hedge == 1 && sp.Path == obs.PathForward {
				count(sp.Node, HedgeWinPath)
			}
			if origin == "" {
				origin = sp.Node
			} else if sp.Node != origin {
				originConflict = true
			}
		}
		if originConflict {
			violate("request %s: origin spans name more than one node", id)
		}
		if len(owned) > 1 || len(forward) > 1 || len(degraded) > 1 {
			violate("request %s: duplicate origin span (owned %d, forward %d, degraded %d)",
				id, len(owned), len(forward), len(degraded))
		}
		if len(owned) > 0 && len(group) > len(owned) {
			violate("request %s: owned terminal is not exclusive (%d extra spans)",
				id, len(group)-len(owned))
		}
		if len(forward) == 0 && (len(hedges) > 0 || len(retries) > 0 || len(degraded) > 0) {
			violate("request %s: hedge/retry/degraded spans without a forward span", id)
		}

		// Exactly one terminal serving span.
		terminals := len(owned) + len(degraded)
		winner := ""
		if len(forward) == 1 {
			winner = forward[0].Winner
			if winner != "" {
				terminals++
			}
			if winner != "" && len(degraded) > 0 {
				violate("request %s: degraded span after a winning forward", id)
			}
			if winner == "" && len(degraded) == 0 {
				violate("request %s: winnerless forward without a degraded span", id)
			}
			if forward[0].Hedge == 1 && len(hedges) == 0 {
				violate("request %s: hedge-won forward without a hedge span", id)
			}
		}
		if terminals != 1 {
			violate("request %s: %d terminal serving spans, want exactly 1", id, terminals)
		}

		// Remote spans only on targeted peers, never the origin.
		targets := make(map[string]bool)
		if len(forward) == 1 {
			targets[forward[0].Peer] = true
			if winner != "" {
				targets[winner] = true
			}
		}
		for _, sp := range hedges {
			targets[sp.Peer] = true
		}
		for _, sp := range retries {
			targets[sp.Peer] = true
		}
		for _, sp := range remotes {
			if sp.Node == origin {
				violate("request %s: remote span on its own origin %s (routing loop)", id, origin)
			} else if !targets[sp.Node] {
				violate("request %s: remote span on untargeted node %s", id, sp.Node)
			}
		}

		// The chain, regardless of violations: capstat reports what the
		// trace says even when the trace is inconsistent.
		chain := Chain{ID: id, Origin: origin, Hops: len(group)}
		chain.Spans = append(chain.Spans, owned...)
		chain.Spans = append(chain.Spans, forward...)
		chain.Spans = append(chain.Spans, hedges...)
		chain.Spans = append(chain.Spans, retries...)
		chain.Spans = append(chain.Spans, degraded...)
		sort.SliceStable(remotes, func(a, b int) bool { return remotes[a].Node < remotes[b].Node })
		chain.Spans = append(chain.Spans, remotes...)
		switch {
		case len(owned) > 0:
			chain.Path, chain.Served = obs.PathOwned, origin
		case len(degraded) > 0:
			chain.Path, chain.Served = obs.PathDegraded, origin
		case winner != "":
			chain.Path, chain.Served = obs.PathForward, winner
		}
		for _, sp := range chain.Spans {
			if sp.ServeUS > chain.ServeUS {
				chain.ServeUS = sp.ServeUS
			}
		}
		check.Chains = append(check.Chains, chain)
	}
	sort.Strings(check.Violations)
	return check
}

// Reconcile holds the trace-derived per-node accounting against the
// routing counters and returns every mismatch. Equality is exact in
// both directions: a span without its counter increment is as much a
// bug as an increment without its span. Peer-error counts have no
// span (an errored attempt serves nobody) and are not reconciled.
func (c TraceCheck) Reconcile(counters map[string]NodeCounters) []string {
	rows := []struct {
		path    string
		counter string
		value   func(NodeCounters) int64
	}{
		{obs.PathOwned, "cluster_owned_local_total", func(n NodeCounters) int64 { return n.OwnedLocal }},
		{obs.PathForward, "cluster_forward_total", func(n NodeCounters) int64 { return n.Forwards }},
		{obs.PathHedge, "cluster_hedge_total", func(n NodeCounters) int64 { return n.Hedges }},
		{HedgeWinPath, "cluster_hedge_wins_total", func(n NodeCounters) int64 { return n.HedgeWins }},
		{obs.PathRetry, "cluster_retry_total", func(n NodeCounters) int64 { return n.Retries }},
		{obs.PathDegraded, "cluster_degraded_total", func(n NodeCounters) int64 { return n.Degraded }},
		{obs.PathRemote, "cluster_remote_serve_total", func(n NodeCounters) int64 { return n.Remote }},
	}
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var mismatches []string
	for _, name := range names {
		nc := counters[name]
		for _, row := range rows {
			traced := c.PerNode[name][row.path]
			if counted := row.value(nc); traced != counted {
				mismatches = append(mismatches,
					fmt.Sprintf("%s: trace has %d %s spans, %s is %d",
						name, traced, row.path, row.counter, counted))
			}
		}
	}
	// A node that emitted spans but has no counters at all is itself a
	// mismatch (a trace file from outside the cluster under test).
	for node := range c.PerNode {
		if _, ok := counters[node]; !ok {
			mismatches = append(mismatches, fmt.Sprintf("%s: spans from a node with no counters", node))
		}
	}
	sort.Strings(mismatches)
	return mismatches
}

// TopSlow returns the k slowest chains by local serve time,
// descending, ties broken by ID so the report is deterministic for
// identical timings.
func (c TraceCheck) TopSlow(k int) []Chain {
	chains := append([]Chain(nil), c.Chains...)
	sort.SliceStable(chains, func(a, b int) bool {
		if chains[a].ServeUS != chains[b].ServeUS {
			return chains[a].ServeUS > chains[b].ServeUS
		}
		return chains[a].ID < chains[b].ID
	})
	if k > len(chains) {
		k = len(chains)
	}
	return chains[:k]
}

// Format renders the analyzer's human-readable report: cluster-wide
// accounting, per-node rows, the slowest chains, and either the
// violation list or the reconciliation verdict.
func (c TraceCheck) Format(counters map[string]NodeCounters, topK int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "capstat: %d requests, %d spans\n", c.Requests, c.Spans)
	paths := []string{obs.PathOwned, obs.PathForward, obs.PathHedge, HedgeWinPath,
		obs.PathRetry, obs.PathDegraded, obs.PathRemote}
	for _, p := range paths {
		fmt.Fprintf(&b, "  %-9s %d\n", p, c.ByPath[p])
	}
	nodes := make([]string, 0, len(c.PerNode))
	for node := range c.PerNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		fmt.Fprintf(&b, "node %s:", node)
		for _, p := range paths {
			if v := c.PerNode[node][p]; v != 0 {
				fmt.Fprintf(&b, " %s=%d", p, v)
			}
		}
		b.WriteByte('\n')
	}
	if topK > 0 {
		fmt.Fprintf(&b, "slowest %d:\n", topK)
		for _, ch := range c.TopSlow(topK) {
			fmt.Fprintf(&b, "  %s %s->%s %s hops=%d serve=%dus\n",
				ch.ID, ch.Origin, ch.Served, ch.Path, ch.Hops, ch.ServeUS)
		}
	}
	for _, v := range c.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	if len(c.Violations) == 0 {
		fmt.Fprintf(&b, "invariants: all chains terminate at exactly one serving node\n")
	}
	if counters != nil {
		if mismatches := c.Reconcile(counters); len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintf(&b, "MISMATCH: %s\n", m)
			}
		} else {
			fmt.Fprintf(&b, "accounting: trace reconciles exactly with routing counters\n")
		}
	}
	return b.String()
}

// Healthy reports the overall verdict: no violations and (when
// counters were supplied) exact reconciliation.
func (c TraceCheck) Healthy(counters map[string]NodeCounters) bool {
	return len(c.Violations) == 0 && (counters == nil || len(c.Reconcile(counters)) == 0)
}
