package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/capserver"
	"repro/internal/health"
	"repro/internal/obs"
)

// This file is the alert-lifecycle fault harness behind `capwatch -mode
// harness` and `make alerts-smoke`: it stands up a small cluster whose
// members run the health engine on explicit ticks (no wall-clock
// ticker), kills the node that owns the probe path, and checks the
// full verdict lifecycle the health layer promises:
//
//   - the surviving members walk degraded-routing through the exact
//     inactive -> pending -> firing sequence while the owner is down,
//     and back to inactive after it returns — a timeline that is a pure
//     function of the options, byte-identical at any -jobs level,
//     because per-tick counter increments depend on which requests were
//     sent, never on the order concurrent sends completed;
//   - a monitor-side engine polling the killed node's /metrics across
//     the restart sees its counters reset to zero and produces zero
//     spurious transitions (the counter-reset clamp in Ring.Increase).

// HealthHarnessOptions configures an alert-lifecycle harness run.
type HealthHarnessOptions struct {
	// Nodes are the member names (default h1, h2, h3).
	Nodes []string
	// Seed varies the probe path, and with it which member owns the
	// path and gets killed (default 1).
	Seed uint64
	// Jobs is the per-tick request send parallelism (default 4). The
	// timeline must not depend on it; the smoke gate runs two levels
	// and diffs.
	Jobs int
	// RequestsPerTick is the per-tick workload (default 12), spread
	// round-robin over the live members.
	RequestsPerTick int
	// WarmTicks, DeadTicks and RecoveryTicks are the phase lengths in
	// health ticks (defaults 4, 6, 10): all-healthy baseline, owner
	// down, owner restarted.
	WarmTicks, DeadTicks, RecoveryTicks int
	// Out receives progress lines (default: discard).
	Out io.Writer
}

func (o HealthHarnessOptions) withDefaults() HealthHarnessOptions {
	if len(o.Nodes) == 0 {
		o.Nodes = []string{"h1", "h2", "h3"}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = 4
	}
	if o.RequestsPerTick <= 0 {
		o.RequestsPerTick = 12
	}
	if o.WarmTicks <= 0 {
		o.WarmTicks = 4
	}
	if o.DeadTicks <= 0 {
		o.DeadTicks = 6
	}
	if o.RecoveryTicks <= 0 {
		o.RecoveryTicks = 10
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// harnessRules is the member-side rule set: one rule, so the expected
// timeline is exact. At the engine's default 5s tick the 10s window is
// two ticks; any degradation at all breaches, and two clean windows
// plus the clearfor hold resolve it.
const harnessRules = `rule degraded-routing: rate(cluster_degraded_total) > 0.01 over 10s for 2 clear 0.005 clearfor 3 severity page`

// monitorRules is the monitor-side rule set fed from the killed node's
// scraped /metrics. The reset guard can only fire if a windowed
// increase ever goes negative — exactly what a naive newest-minus-
// oldest implementation does when the scraped process restarts — so
// any transition at all is a spurious firing.
const monitorRules = `rule reset-guard: increase(cluster_owned_local_total) < 0 over 2s severity page`

// HealthReport aggregates one alert-lifecycle harness run.
type HealthReport struct {
	Ticks    int `json:"ticks"`
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Killed is the member that owned the probe path and was killed;
	// Restarted reports that it came back.
	Killed    string `json:"killed"`
	Restarted bool   `json:"restarted"`
	// Timeline is the merged member-side transition log, one line per
	// state change, in (tick, node) order — the artifact the -jobs
	// byte-identity gate diffs.
	Timeline []string `json:"timeline"`
	// MonitorTimeline is the monitor engine's transition log; any
	// entry is a spurious firing across the counter reset.
	MonitorTimeline []string `json:"monitor_timeline,omitempty"`
	// SawReset reports the monitor actually observed the killed node's
	// counters fall across the restart (the gate is vacuous otherwise),
	// and PreKillOwned the owned-local count it fell from.
	SawReset     bool  `json:"saw_reset"`
	PreKillOwned int64 `json:"pre_kill_owned"`

	Wall time.Duration `json:"-"`
}

// Format renders the report for humans.
func (r *HealthReport) Format(w io.Writer) {
	fmt.Fprintf(w, "ticks:     %d (%d requests, %d errors) in %v\n",
		r.Ticks, r.Requests, r.Errors, r.Wall.Round(time.Millisecond))
	fmt.Fprintf(w, "fault:     killed %s (restarted=%v), owned-local %d -> reset seen=%v\n",
		r.Killed, r.Restarted, r.PreKillOwned, r.SawReset)
	fmt.Fprintf(w, "timeline:\n")
	for _, line := range r.Timeline {
		fmt.Fprintf(w, "  %s\n", line)
	}
	if len(r.MonitorTimeline) > 0 {
		fmt.Fprintf(w, "monitor SPURIOUS transitions:\n")
		for _, line := range r.MonitorTimeline {
			fmt.Fprintf(w, "  %s\n", line)
		}
	} else {
		fmt.Fprintf(w, "monitor:   0 transitions across the counter reset\n")
	}
}

// Assert is the acceptance gate for `make alerts-smoke`.
func (r *HealthReport) Assert(survivors []string) error {
	var fails []string
	if r.Errors != 0 {
		fails = append(fails, fmt.Sprintf("%d requests failed", r.Errors))
	}
	joined := "\n" + strings.Join(r.Timeline, "\n") + "\n"
	for _, name := range survivors {
		for _, hop := range []string{"inactive->pending", "pending->firing", "firing->inactive"} {
			if !strings.Contains(joined, " node="+name+" rule=degraded-routing "+hop+" ") {
				fails = append(fails, fmt.Sprintf("%s never walked degraded-routing through %s", name, hop))
			}
		}
	}
	if strings.Contains(joined, " node="+r.Killed+" ") {
		fails = append(fails, fmt.Sprintf("killed node %s produced its own transitions", r.Killed))
	}
	if len(r.MonitorTimeline) != 0 {
		fails = append(fails, fmt.Sprintf("monitor produced %d spurious transitions across the restart", len(r.MonitorTimeline)))
	}
	if !r.SawReset {
		fails = append(fails, "monitor never observed the counter reset (gate vacuous)")
	}
	if r.PreKillOwned == 0 {
		fails = append(fails, "killed node owned nothing locally before the kill (gate vacuous)")
	}
	if len(fails) > 0 {
		return fmt.Errorf("cluster: health harness assertions failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// healthProc is one running member of the health harness.
type healthProc struct {
	name string
	addr string
	hsrv *http.Server
	srv  *capserver.Server
	dead bool
}

// RunHealthHarness executes one alert-lifecycle harness run and
// returns the report plus the surviving member names (Assert's input).
func RunHealthHarness(o HealthHarnessOptions) (*HealthReport, []string, error) {
	o = o.withDefaults()
	rules, err := health.ParseRules(harnessRules)
	if err != nil {
		return nil, nil, err
	}
	monRules, err := health.ParseRules(monitorRules)
	if err != nil {
		return nil, nil, err
	}

	sortedNames := append([]string(nil), o.Nodes...)
	sort.Strings(sortedNames)
	var mem Membership
	listeners := make(map[string]net.Listener, len(sortedNames))
	for _, name := range sortedNames {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer l.Close() // no-op once a server owns it
		listeners[name] = l
		mem.Members = append(mem.Members, Member{Name: name, URL: "http://" + l.Addr().String()})
	}

	// Every member runs the engine on explicit ticks (HealthTick 0: no
	// wall-clock ticker) over a registry shared between the capserver
	// and its cluster router, so the degraded-routing rule can see the
	// routing counters. Hedging is off: a hedge racing a retry would
	// make the per-tick degraded count depend on timing.
	startNode := func(name string, l net.Listener) (*healthProc, error) {
		reg := obs.NewRegistry()
		srv := capserver.New(capserver.Config{
			Workers:     2,
			QueueDepth:  64,
			Metrics:     reg,
			HealthRules: rules,
		})
		node, err := NewNode(srv, Config{
			Membership:  mem,
			Self:        name,
			Metrics:     NewMetrics(reg),
			HedgeDelay:  -1,
			PeerBackoff: time.Millisecond,
			PeerTimeout: 30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		p := &healthProc{
			name: name,
			addr: l.Addr().String(),
			hsrv: &http.Server{Handler: node.Handler()},
			srv:  srv,
		}
		go func() { _ = p.hsrv.Serve(l) }()
		return p, nil
	}

	procs := make(map[string]*healthProc, len(sortedNames))
	for _, name := range sortedNames {
		p, err := startNode(name, listeners[name])
		if err != nil {
			return nil, nil, err
		}
		procs[name] = p
	}
	defer func() {
		for _, p := range procs {
			if !p.dead {
				_ = p.hsrv.Close()
			}
		}
	}()

	// The probe path: every request in the run hits it, so its ring
	// owner is the member whose death degrades everyone else. The seed
	// picks the point, and with it the victim.
	path := fmt.Sprintf("/v1/bounds?n=%d&pd=0.2&pi=0.1", 4+int(o.Seed%8))
	req, err := http.NewRequest(http.MethodGet, "http://placeholder"+path, nil)
	if err != nil {
		return nil, nil, err
	}
	anyProc := procs[sortedNames[0]]
	key, ok := anyProc.srv.Canonicalize(req)
	if !ok {
		return nil, nil, fmt.Errorf("cluster: probe path %s is not canonicalizable", path)
	}
	ring, err := NewRing(sortedNames, 0)
	if err != nil {
		return nil, nil, err
	}
	killName := ring.Owner(key)
	var survivors []string
	for _, name := range sortedNames {
		if name != killName {
			survivors = append(survivors, name)
		}
	}

	report := &HealthReport{Killed: killName}
	monitor, err := health.NewEngine(health.Config{
		Rules:        monRules,
		TickInterval: time.Second,
	})
	if err != nil {
		return nil, nil, err
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// sendTick spreads the tick's requests round-robin over the live
	// members, o.Jobs at a time. Which member gets how many requests is
	// a pure function of the live set, so per-tick counter increments —
	// and therefore the whole timeline — do not depend on Jobs.
	sendTick := func() {
		var live []*healthProc
		for _, name := range sortedNames {
			if p := procs[name]; !p.dead {
				live = append(live, p)
			}
		}
		sem := make(chan struct{}, o.Jobs)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < o.RequestsPerTick; i++ {
			p := live[i%len(live)]
			wg.Add(1)
			sem <- struct{}{}
			go func(p *healthProc) {
				defer wg.Done()
				defer func() { <-sem }()
				resp, err := client.Get("http://" + p.addr + path)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
				mu.Lock()
				report.Requests++
				if err != nil {
					report.Errors++
				}
				mu.Unlock()
			}(p)
		}
		wg.Wait()
	}

	// monitorTick scrapes the killed member's /metrics into the monitor
	// engine; while it is down the engine gets an empty snapshot (every
	// series unknown: hold state, no transition).
	var lastOwned int64
	monitorTick := func(tick int) {
		var snap obs.RegistrySnapshot
		resp, err := client.Get("http://" + procs[killName].addr + "/metrics")
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				counters, _, perr := parseMetricsSnapshot(body)
				if perr == nil {
					for name, v := range counters {
						snap.Series = append(snap.Series, obs.SeriesSample{Name: name, Kind: "counter", Value: v})
					}
					if v := counters["cluster_owned_local_total"]; v < lastOwned {
						report.SawReset = true
					} else {
						lastOwned = v
					}
				}
			}
		}
		for _, tr := range monitor.Tick(snap) {
			report.MonitorTimeline = append(report.MonitorTimeline,
				fmt.Sprintf("tick=%02d rule=%s %s->%s value=%s", tick, tr.Rule, tr.From, tr.To, tr.Value))
		}
	}

	total := o.WarmTicks + o.DeadTicks + o.RecoveryTicks
	start := time.Now()
	for tick := 0; tick < total; tick++ {
		if tick == o.WarmTicks {
			p := procs[killName]
			report.PreKillOwned = lastOwned
			_ = p.hsrv.Close()
			p.dead = true
			fmt.Fprintf(o.Out, "tick %d: killed %s (%s), owner of %s\n", tick, killName, p.addr, path)
		}
		if tick == o.WarmTicks+o.DeadTicks {
			old := procs[killName]
			l, err := net.Listen("tcp", old.addr)
			if err != nil {
				return nil, nil, fmt.Errorf("cluster: restart %s on %s: %v", killName, old.addr, err)
			}
			p, err := startNode(killName, l)
			if err != nil {
				return nil, nil, err
			}
			procs[killName] = p
			report.Restarted = true
			fmt.Fprintf(o.Out, "tick %d: restarted %s (%s) with fresh counters\n", tick, killName, p.addr)
		}
		sendTick()
		for _, name := range sortedNames {
			p := procs[name]
			if p.dead {
				continue
			}
			for _, tr := range p.srv.TickHealth() {
				report.Timeline = append(report.Timeline,
					fmt.Sprintf("tick=%02d node=%s rule=%s %s->%s value=%s", tick, name, tr.Rule, tr.From, tr.To, tr.Value))
			}
		}
		monitorTick(tick)
	}
	report.Ticks = total
	report.Wall = time.Since(start)
	return report, survivors, nil
}
