package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// tracedTestCluster builds the standard three-node test cluster with a
// tracer per node, returning the per-node span buffers.
func tracedTestCluster(t *testing.T, tune func(name string, cfg *Config)) (*testCluster, map[string]*bytes.Buffer) {
	t.Helper()
	bufs := map[string]*bytes.Buffer{"n1": {}, "n2": {}, "n3": {}}
	tc := newTestCluster(t, func(name string, cfg *Config) {
		cfg.Tracer = obs.NewTracer(bufs[name])
		cfg.TraceSeed = 1
		if tune != nil {
			tune(name, cfg)
		}
	})
	return tc, bufs
}

// spansOf flushes and parses one node's request spans.
func spansOf(t *testing.T, tc *testCluster, bufs map[string]*bytes.Buffer, name string) []obs.ReqSpan {
	t.Helper()
	if err := tc.nodes[name].cfg.Tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadReqSpans(bytes.NewReader(bufs[name].Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestRoutingHeadersAcrossPaths is the header contract table: for
// every serveHTTP path, which of the X-Capserver-* headers must appear
// on the response, which incoming ones must be stripped before the
// local handler sees the request, and which survive a hop.
func TestRoutingHeadersAcrossPaths(t *testing.T) {
	spoof := func(r *http.Request) {
		// A client trying to impersonate cluster internals: every
		// routing header pre-set on the incoming request.
		r.Header.Set(TraceHeader, "spoofed-id")
		r.Header.Set(PeerHeader, "evil")
		r.Header.Set(HedgeHeader, "1")
		r.Header.Set(DegradedHeader, "evil")
	}

	t.Run("owned untraced strips spoofed trace", func(t *testing.T) {
		tc := newTestCluster(t, nil)
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n1")
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
		spoof(req)
		tc.nodes["n1"].serveHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		for _, h := range []string{TraceHeader, PeerHeader, HedgeHeader, DegradedHeader} {
			if got := rec.Header().Get(h); got != "" {
				t.Errorf("untraced owned response reflects %s=%q", h, got)
			}
		}
		if seen := tc.locals["n1"].tracedSeen(); len(seen) != 1 || seen[0] != "" {
			t.Errorf("local handler saw trace header %v, want one empty value", seen)
		}
	})

	t.Run("owned traced mints fresh id over spoof", func(t *testing.T) {
		tc, bufs := tracedTestCluster(t, nil)
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n1")
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
		spoof(req)
		tc.nodes["n1"].serveHTTP(rec, req)
		id := rec.Header().Get(TraceHeader)
		if id == "" || id == "spoofed-id" {
			t.Fatalf("traced owned response has id %q, want a fresh node-minted one", id)
		}
		if seen := tc.locals["n1"].tracedSeen(); len(seen) != 1 || seen[0] != id {
			t.Errorf("local handler saw %v, want the minted id %q", seen, id)
		}
		spans := spansOf(t, tc, bufs, "n1")
		if len(spans) != 1 || spans[0].Path != obs.PathOwned || spans[0].ID != id {
			t.Fatalf("spans %+v, want one owned span for %s", spans, id)
		}
	})

	t.Run("forward carries id to owner and back", func(t *testing.T) {
		tc, bufs := tracedTestCluster(t, nil)
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
		rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		id := rec.Header().Get(TraceHeader)
		if id == "" {
			t.Fatal("forwarded response lost the trace id")
		}
		if got := rec.Header().Get(PeerHeader); got != "n2" {
			t.Fatalf("peer header %q", got)
		}
		// The owner saw the hop pre-routed with the same id.
		_, fwd := tc.locals["n2"].snapshot()
		if len(fwd) != 1 || fwd[0] != "n1" {
			t.Fatalf("owner saw forwarded=%v", fwd)
		}
		if seen := tc.locals["n2"].tracedSeen(); len(seen) != 1 || seen[0] != id {
			t.Fatalf("owner saw trace %v, want %q", seen, id)
		}
		if got := tc.nodes["n2"].Metrics().Remote(); got != 1 {
			t.Fatalf("owner remote counter %d", got)
		}
		origin := spansOf(t, tc, bufs, "n1")
		if len(origin) != 1 || origin[0].Path != obs.PathForward ||
			origin[0].Peer != "n2" || origin[0].Winner != "n2" {
			t.Fatalf("origin spans %+v, want one forward n2->n2", origin)
		}
		remote := spansOf(t, tc, bufs, "n2")
		if len(remote) != 1 || remote[0].Path != obs.PathRemote ||
			remote[0].ID != id || remote[0].Peer != "n1" {
			t.Fatalf("owner spans %+v, want one remote span of %s from n1", remote, id)
		}
	})

	t.Run("pre-routed traced hop never re-forwards", func(t *testing.T) {
		tc, bufs := tracedTestCluster(t, nil)
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
		req.Header.Set(ForwardedHeader, "harness")
		req.Header.Set(TraceHeader, "h-1.9-cafecafe")
		tc.nodes["n3"].serveHTTP(rec, req) // n3 owns nothing here
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		m := tc.nodes["n3"].Metrics()
		if m.Forwards() != 0 {
			t.Fatal("pre-routed request was re-forwarded")
		}
		if m.Remote() != 1 {
			t.Fatalf("remote counter %d", m.Remote())
		}
		if got := rec.Header().Get(TraceHeader); got != "h-1.9-cafecafe" {
			t.Fatalf("pre-routed hop rewrote the id: %q", got)
		}
		spans := spansOf(t, tc, bufs, "n3")
		if len(spans) != 1 || spans[0].Path != obs.PathRemote || spans[0].ID != "h-1.9-cafecafe" {
			t.Fatalf("spans %+v, want one remote span with the incoming id", spans)
		}
	})

	t.Run("pre-routed untraced hop strips the id", func(t *testing.T) {
		tc := newTestCluster(t, nil) // tracing off
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/v1/bounds?"+q, nil)
		req.Header.Set(ForwardedHeader, "harness")
		req.Header.Set(TraceHeader, "stale-id")
		tc.nodes["n3"].serveHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		if got := tc.nodes["n3"].Metrics().Remote(); got != 0 {
			t.Fatalf("untraced hop bumped the remote counter: %d", got)
		}
		if seen := tc.locals["n3"].tracedSeen(); len(seen) != 1 || seen[0] != "" {
			t.Fatalf("stale trace id leaked through: %v", seen)
		}
		if got := rec.Header().Get(TraceHeader); got != "" {
			t.Fatalf("untraced response carries id %q", got)
		}
	})

	t.Run("degraded response keeps id and marker", func(t *testing.T) {
		tc, bufs := tracedTestCluster(t, nil)
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
		tc.servers["n2"].Close()
		rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get(DegradedHeader); got != "n2" {
			t.Fatalf("degraded header %q", got)
		}
		id := rec.Header().Get(TraceHeader)
		if id == "" {
			t.Fatal("degraded response lost the trace id")
		}
		spans := spansOf(t, tc, bufs, "n1")
		// One winnerless forward, retry spans from the attempts, and the
		// terminal degraded span — all with the same id.
		var forward, degraded, retries int
		for _, sp := range spans {
			if sp.ID != id {
				t.Fatalf("span %+v has foreign id, want %s", sp, id)
			}
			switch sp.Path {
			case obs.PathForward:
				forward++
				if sp.Winner != "" {
					t.Fatalf("degraded request's forward span has winner %q", sp.Winner)
				}
			case obs.PathDegraded:
				degraded++
			case obs.PathRetry:
				retries++
			}
		}
		if forward != 1 || degraded != 1 || retries == 0 {
			t.Fatalf("spans %+v: forward=%d degraded=%d retries=%d", spans, forward, degraded, retries)
		}
	})

	t.Run("hedged win marks span and header", func(t *testing.T) {
		tc, bufs := tracedTestCluster(t, func(name string, cfg *Config) {
			cfg.HedgeDelay = 5 * time.Millisecond
		})
		q := keyOwnedBy(t, tc.nodes["n1"].Ring(), "n2")
		tc.locals["n2"].delay = 400 * time.Millisecond
		rec := get(t, tc.nodes["n1"], "/v1/bounds?"+q)
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
		if got := rec.Header().Get(HedgeHeader); got != "1" {
			t.Fatalf("hedge header %q", got)
		}
		// Let the canceled primary attempt settle: it may emit one last
		// retry span microseconds after the hedged response returned.
		time.Sleep(100 * time.Millisecond)
		spans := spansOf(t, tc, bufs, "n1")
		var sawHedge, sawWin bool
		for _, sp := range spans {
			if sp.Path == obs.PathHedge {
				sawHedge = true
			}
			if sp.Path == obs.PathForward && sp.Hedge == 1 && sp.Winner != "" && sp.Winner != "n2" {
				sawWin = true
			}
		}
		if !sawHedge || !sawWin {
			t.Fatalf("spans %+v: hedge span=%v hedged forward win=%v", spans, sawHedge, sawWin)
		}
	})
}
