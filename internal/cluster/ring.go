package cluster

import (
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-member virtual node count. 64 points
// per member keeps the largest/smallest ownership arc within a few
// tens of percent for small clusters while the ring build and lookup
// stay trivially cheap.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over static member names with
// virtual nodes. Placement is a pure function of the sorted member
// names and the virtual node count: every process in the cluster
// builds the identical ring from the identical membership, with no
// coordination. Adding or removing one member moves only the arcs
// adjacent to its virtual points, which is the property that makes a
// static-membership cluster restartable one node at a time without
// resharding the world.
type Ring struct {
	names  []string // sorted member names
	hashes []uint64 // sorted virtual point hashes
	owner  []int    // owner[i] indexes names for hashes[i]
}

// NewRing builds the ring. Names must be unique and non-empty;
// vnodes <= 0 selects DefaultVirtualNodes.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", sorted[i])
		}
	}
	for _, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty ring member name")
		}
	}
	r := &Ring{names: sorted}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, len(sorted)*vnodes)
	for i, name := range sorted {
		for v := 0; v < vnodes; v++ {
			points = append(points, point{fnv64(name + "#" + strconv.Itoa(v)), i})
		}
	}
	// Ties (vanishingly rare with 64-bit FNV) break toward the lower
	// member index so the ring is still a pure function of the names.
	sort.Slice(points, func(a, b int) bool {
		if points[a].h != points[b].h {
			return points[a].h < points[b].h
		}
		return points[a].owner < points[b].owner
	})
	r.hashes = make([]uint64, len(points))
	r.owner = make([]int, len(points))
	for i, p := range points {
		r.hashes[i] = p.h
		r.owner[i] = p.owner
	}
	return r, nil
}

// Members returns the sorted member names.
func (r *Ring) Members() []string { return append([]string(nil), r.names...) }

// locate returns the index of the first virtual point at or clockwise
// of the key's hash.
func (r *Ring) locate(key string) int {
	h := fnv64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap
	}
	return i
}

// Owner returns the member that owns the key.
func (r *Ring) Owner(key string) string {
	return r.names[r.owner[r.locate(key)]]
}

// Replicas returns up to n distinct members for the key in ring
// order, starting at the owner. Replicas(key, 2)[1] is the hedge
// target: the member that takes over the arc if the owner leaves, so
// it is the peer most likely to have the point warm.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.names) {
		n = len(r.names)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, at := 0, r.locate(key); len(out) < n && i < len(r.hashes); i++ {
		o := r.owner[(at+i)%len(r.hashes)]
		if !seen[o] {
			seen[o] = true
			out = append(out, r.names[o])
		}
	}
	return out
}

// OwnershipPermille returns each member's share of the key space in
// permille (tenths of a percent), from the widths of the arcs its
// virtual points own. Widths accumulate in float64: the arcs of a ring
// sum to exactly 2^64, which a uint64 accumulator would wrap to zero
// (a one-member ring owns the whole circle in a single arc). The loss
// of integer precision is irrelevant at permille resolution. Every
// member appears in the result, even at share 0; the map is a pure
// function of the membership, so every node federates the same arcs.
func (r *Ring) OwnershipPermille() map[string]int64 {
	share := make(map[string]float64, len(r.names))
	for i := range r.hashes {
		// Width of the arc ending at point i: distance from the previous
		// point, wrapping at the top of the circle. Unsigned subtraction
		// wraps correctly for the first point.
		width := r.hashes[i] - r.hashes[(i+len(r.hashes)-1)%len(r.hashes)]
		if len(r.hashes) == 1 {
			width = ^uint64(0) // a single point owns the full circle
		}
		share[r.names[r.owner[i]]] += float64(width)
	}
	const circle = float64(1<<63) * 2
	out := make(map[string]int64, len(r.names))
	for _, name := range r.names {
		out[name] = int64(share[name] / circle * 1000)
	}
	return out
}

// fnv64 is the 64-bit FNV-1a hash run through a splitmix64-style
// avalanche finalizer. Both stages use explicit constants so the hash
// is stable across processes, platforms and Go releases, which
// placement determinism requires (maphash and friends are seeded
// per-process). The finalizer matters: raw FNV-1a of near-identical
// short strings — exactly what canonical request keys and "name#v"
// virtual points are — clusters in the 64-bit space badly enough to
// skew a 3-member ring to a 70/20/10 split. Avalanching the output
// restores uniform arc placement.
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
