package cluster

import (
	"path/filepath"
	"strings"
	"testing"
)

// smokeOptions is a scaled-down kill/restart run: small enough for the
// unit-test suite, large enough that every fault path engages.
func smokeOptions(t *testing.T) HarnessOptions {
	return HarnessOptions{
		Nodes:        []string{"n1", "n2", "n3"},
		Requests:     90,
		Seed:         1,
		Unique:       8,
		ExactN:       8,
		KillAfter:    30,
		RestartAfter: 60,
		StoreDir:     t.TempDir(),
	}
}

func TestHarnessKillRestartRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault harness")
	}
	o := smokeOptions(t)
	rep, err := RunHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rep.Format(&buf)
	t.Logf("harness report:\n%s", buf.String())
	if err := rep.Assert(); err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "n2" {
		t.Fatalf("killed %q, want the middle sorted member n2", rep.Killed)
	}
	if !rep.Restarted {
		t.Fatal("restart never happened")
	}
	if rep.Failovers == 0 {
		t.Fatal("no client failover despite a dead node in the dispatch rotation")
	}
	if rep.Convergence.Paths == 0 || rep.Convergence.Recomputed != 0 {
		t.Fatalf("convergence: %+v", rep.Convergence)
	}
	if rep.StoreEntries == 0 {
		t.Fatal("shared store is empty after the run")
	}

	// The trajectory round-trips through disk and passes validation.
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	traj := BuildTrajectory("test", o, rep)
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatal(err)
	}
	if err := CheckTrajectory(path); err != nil {
		t.Fatal(err)
	}
}

func TestHarnessNoFaultRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness")
	}
	o := HarnessOptions{
		Requests:  40,
		Unique:    6,
		ExactN:    7,
		KillAfter: -1,
		StoreDir:  t.TempDir(),
	}
	rep, err := RunHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "" || rep.Restarted {
		t.Fatalf("fault ran despite KillAfter=-1: %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d mismatches on a healthy cluster", rep.Mismatches)
	}
	if rep.Failovers != 0 {
		t.Fatalf("%d failovers on a healthy cluster", rep.Failovers)
	}
	if rep.Totals().Degraded != 0 {
		t.Fatal("degraded responses on a healthy cluster")
	}
}

func TestCheckTrajectoryRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, traj Trajectory) string {
		path := filepath.Join(dir, name)
		if err := WriteTrajectory(path, &traj); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := Trajectory{
		Schema: BenchSchema, Nodes: []string{"n1", "n2", "n3"}, Requests: 10,
		Killed: "n2", Totals: NodeCounters{Hedges: 1, Retries: 1, Degraded: 1}, Passed: true,
	}
	if err := CheckTrajectory(write("good.json", good)); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Schema = "capest/bench-cluster/v0"
	if err := CheckTrajectory(write("schema.json", bad)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = good
	bad.Mismatches = 3
	if err := CheckTrajectory(write("mismatch.json", bad)); err == nil {
		t.Fatal("mismatches accepted")
	}
	bad = good
	bad.Passed = false
	if err := CheckTrajectory(write("failed.json", bad)); err == nil {
		t.Fatal("failed run accepted")
	}
	bad = good
	bad.Totals.Degraded = 0
	if err := CheckTrajectory(write("idle.json", bad)); err == nil {
		t.Fatal("idle fault machinery accepted")
	}
	bad = good
	bad.Nodes = []string{"n1"}
	if err := CheckTrajectory(write("single.json", bad)); err == nil {
		t.Fatal("single-node file accepted")
	}
	if err := CheckTrajectory(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
