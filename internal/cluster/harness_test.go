package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// smokeOptions is a scaled-down kill/restart run: small enough for the
// unit-test suite, large enough that every fault path engages.
func smokeOptions(t *testing.T) HarnessOptions {
	return HarnessOptions{
		Nodes:        []string{"n1", "n2", "n3"},
		Requests:     90,
		Seed:         1,
		Unique:       8,
		ExactN:       8,
		KillAfter:    30,
		RestartAfter: 60,
		StoreDir:     t.TempDir(),
	}
}

func TestHarnessKillRestartRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault harness")
	}
	o := smokeOptions(t)
	rep, err := RunHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rep.Format(&buf)
	t.Logf("harness report:\n%s", buf.String())
	if err := rep.Assert(); err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "n2" {
		t.Fatalf("killed %q, want the middle sorted member n2", rep.Killed)
	}
	if !rep.Restarted {
		t.Fatal("restart never happened")
	}
	if rep.Failovers == 0 {
		t.Fatal("no client failover despite a dead node in the dispatch rotation")
	}
	if rep.Convergence.Paths == 0 || rep.Convergence.Recomputed != 0 {
		t.Fatalf("convergence: %+v", rep.Convergence)
	}
	if rep.StoreEntries == 0 {
		t.Fatal("shared store is empty after the run")
	}

	// The trajectory round-trips through disk and passes validation.
	path := filepath.Join(t.TempDir(), "BENCH_cluster.json")
	traj := BuildTrajectory("test", o, rep)
	if err := WriteTrajectory(path, traj); err != nil {
		t.Fatal(err)
	}
	if err := CheckTrajectory(path); err != nil {
		t.Fatal(err)
	}
}

func TestHarnessNoFaultRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node harness")
	}
	o := HarnessOptions{
		Requests:  40,
		Unique:    6,
		ExactN:    7,
		KillAfter: -1,
		StoreDir:  t.TempDir(),
	}
	rep, err := RunHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Killed != "" || rep.Restarted {
		t.Fatalf("fault ran despite KillAfter=-1: %+v", rep)
	}
	if rep.Mismatches != 0 {
		t.Fatalf("%d mismatches on a healthy cluster", rep.Mismatches)
	}
	if rep.Failovers != 0 {
		t.Fatalf("%d failovers on a healthy cluster", rep.Failovers)
	}
	if rep.Totals().Degraded != 0 {
		t.Fatal("degraded responses on a healthy cluster")
	}
}

func TestCheckTrajectoryRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, traj Trajectory) string {
		path := filepath.Join(dir, name)
		if err := WriteTrajectory(path, &traj); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := Trajectory{
		Schema: BenchSchema, Nodes: []string{"n1", "n2", "n3"}, Requests: 10,
		Killed: "n2", Totals: NodeCounters{Hedges: 1, Retries: 1, Degraded: 1}, Passed: true,
	}
	if err := CheckTrajectory(write("good.json", good)); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Schema = "capest/bench-cluster/v0"
	if err := CheckTrajectory(write("schema.json", bad)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	bad = good
	bad.Mismatches = 3
	if err := CheckTrajectory(write("mismatch.json", bad)); err == nil {
		t.Fatal("mismatches accepted")
	}
	bad = good
	bad.Passed = false
	if err := CheckTrajectory(write("failed.json", bad)); err == nil {
		t.Fatal("failed run accepted")
	}
	bad = good
	bad.Totals.Degraded = 0
	if err := CheckTrajectory(write("idle.json", bad)); err == nil {
		t.Fatal("idle fault machinery accepted")
	}
	bad = good
	bad.Nodes = []string{"n1"}
	if err := CheckTrajectory(write("single.json", bad)); err == nil {
		t.Fatal("single-node file accepted")
	}
	if err := CheckTrajectory(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestHarnessTracedKillRestartRun is the trace-reconciliation gate:
// a kill/restart run with tracing on must produce spans that satisfy
// every chain invariant and reconcile exactly with the routing
// counters — across both incarnations of the killed node — and the
// written trace directory must round-trip to the same verdict through
// the capstat file-ingestion path.
func TestHarnessTracedKillRestartRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node fault harness")
	}
	o := smokeOptions(t)
	o.TraceDir = t.TempDir() // implies Trace
	rep, err := RunHarness(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	rep.Format(&buf)
	t.Logf("traced harness report:\n%s", buf.String())
	if err := rep.Assert(); err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace.Spans == 0 {
		t.Fatal("traced run produced no trace verdict")
	}
	if len(rep.Trace.Violations) != 0 {
		t.Fatalf("trace violations: %v", rep.Trace.Violations)
	}
	if len(rep.TraceMismatches) != 0 {
		t.Fatalf("trace/counter mismatches: %v", rep.TraceMismatches)
	}
	// The killed-and-restarted member emitted spans too (two
	// incarnations merged under one member name).
	if len(rep.Trace.PerNode[rep.Killed]) == 0 {
		t.Fatalf("no spans from the killed member %s", rep.Killed)
	}

	// The on-disk trace directory feeds the capstat CLI path and must
	// reach the same verdict.
	var paths []string
	for _, name := range o.Nodes {
		paths = append(paths, filepath.Join(o.TraceDir, name+".jsonl"))
	}
	spans, err := obs.ReadReqSpanFiles(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != rep.Trace.Spans {
		t.Fatalf("trace dir holds %d spans, report has %d", len(spans), rep.Trace.Spans)
	}
	raw, err := os.ReadFile(filepath.Join(o.TraceDir, "counters.json"))
	if err != nil {
		t.Fatal(err)
	}
	var counters map[string]NodeCounters
	if err := json.Unmarshal(raw, &counters); err != nil {
		t.Fatal(err)
	}
	check := AnalyzeSpans(spans)
	if !check.Healthy(counters) {
		t.Fatalf("trace dir does not reconcile:\n%s", check.Format(counters, 3))
	}
}
