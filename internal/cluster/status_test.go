package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/capserver"
	"repro/internal/obs"
)

// statusTestCluster stands up three real capservers (registry, mux,
// /metrics, /v1/healthz) behind cluster routers on real listeners —
// the federation endpoint probes members over HTTP, so fakes without
// a /metrics page cannot exercise it.
func statusTestCluster(t *testing.T) (map[string]string, func(name string)) {
	t.Helper()
	names := []string{"n1", "n2", "n3"}
	var mem Membership
	listeners := make(map[string]net.Listener, len(names))
	bases := make(map[string]string, len(names))
	for _, name := range names {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[name] = l
		bases[name] = "http://" + l.Addr().String()
		mem.Members = append(mem.Members, Member{Name: name, URL: bases[name]})
	}
	servers := make(map[string]*http.Server, len(names))
	for _, name := range names {
		reg := obs.NewRegistry()
		srv := capserver.New(capserver.Config{Workers: 2, QueueDepth: 16, Metrics: reg})
		node, err := NewNode(srv, Config{
			Self:       name,
			Membership: mem,
			HedgeDelay: -1, // keep post-request counter state deterministic
			Metrics:    NewMetrics(reg),
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: node.Handler()}
		servers[name] = hs
		go func(l net.Listener) { _ = hs.Serve(l) }(listeners[name])
		t.Cleanup(func() { _ = hs.Close() })
	}
	kill := func(name string) { _ = servers[name].Close() }
	return bases, kill
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestClusterStatusByteIdentical: after a quiesced workload, the
// federation snapshot must be byte-identical no matter which member
// assembled it, modulo the self marker — the probes' own side effects
// (healthz counters, runtime gauges) are excluded by construction.
func TestClusterStatusByteIdentical(t *testing.T) {
	bases, _ := statusTestCluster(t)

	// A small deterministic workload through one door: forwards and
	// owned serves land wherever the ring says, identically for every
	// later snapshot.
	for i := 0; i < 8; i++ {
		code, _ := getBody(t, bases["n1"]+fmt.Sprintf("/v1/bounds?n=%d&pd=0.2", 4+i))
		if code != http.StatusOK {
			t.Fatalf("warm request %d: status %d", i, code)
		}
	}

	normalized := make(map[string]string, len(bases))
	for _, name := range []string{"n1", "n2", "n3"} {
		code, body := getBody(t, bases[name]+StatusPath)
		if code != http.StatusOK {
			t.Fatalf("status via %s: %d", name, code)
		}
		var st ClusterStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status via %s: %v", name, err)
		}
		if st.Self != name || st.Partial {
			t.Fatalf("status via %s: self=%q partial=%v", name, st.Self, st.Partial)
		}
		normalized[name] = strings.Replace(string(body),
			fmt.Sprintf("%q: %q", "self", name), `"self": "SELF"`, 1)
	}
	if normalized["n1"] != normalized["n2"] || normalized["n1"] != normalized["n3"] {
		t.Fatalf("snapshots differ across queried nodes:\n--- n1 ---\n%s\n--- n2 ---\n%s\n--- n3 ---\n%s",
			normalized["n1"], normalized["n2"], normalized["n3"])
	}

	// Spot-check the merged content: ring arcs for every member, the
	// forward totals from the warm workload, and per-route latency.
	var st ClusterStatus
	if err := json.Unmarshal([]byte(strings.Replace(normalized["n1"], `"self": "SELF"`, `"self": "n1"`, 1)), &st); err != nil {
		t.Fatal(err)
	}
	var arcs int64
	for _, name := range []string{"n1", "n2", "n3"} {
		arcs += st.RingPermille[name]
	}
	if arcs < 990 || arcs > 1000 {
		t.Fatalf("ring arcs sum to %d permille", arcs)
	}
	owned := st.Totals["cluster_owned_local_total"]
	forwards := st.Totals["cluster_forward_total"]
	if owned+forwards != 8 {
		t.Fatalf("owned %d + forwards %d != 8 warm requests", owned, forwards)
	}
	for _, m := range st.Members {
		if !m.Healthy {
			t.Fatalf("member %s unhealthy in a live cluster", m.Name)
		}
		for _, r := range m.Routes {
			if r.Endpoint == "healthz" || r.Endpoint == "readyz" {
				t.Fatalf("probe-perturbed route %q leaked into the snapshot", r.Endpoint)
			}
		}
		for k := range m.Counters {
			if strings.HasPrefix(k, "process_") || strings.Contains(k, `endpoint="healthz"`) ||
				strings.Contains(k, `endpoint="health.alerts"`) {
				t.Fatalf("excluded series %q leaked into the snapshot", k)
			}
		}
		// Every member federates its alert verdict: the full default rule
		// set, sorted, all inactive on an unticked healthy cluster.
		if m.Alerts == nil {
			t.Fatalf("member %s carries no alert verdict", m.Name)
		}
		if m.Alerts.Schema != "capest/health-alerts/v1" || len(m.Alerts.Alerts) == 0 {
			t.Fatalf("member %s alert doc: %+v", m.Name, m.Alerts)
		}
		for _, a := range m.Alerts.Alerts {
			if a.State != "inactive" {
				t.Fatalf("member %s rule %s state %q on a healthy cluster", m.Name, a.Rule, a.State)
			}
		}
	}
	if st.Alerts.Firing != 0 || st.Alerts.Pending != 0 || len(st.Alerts.FiringRules) != 0 {
		t.Fatalf("healthy cluster rolls up alerts %+v", st.Alerts)
	}
}

// TestClusterStatusPartialOnDeadMember: a dead member makes the
// snapshot partial, never an error.
func TestClusterStatusPartialOnDeadMember(t *testing.T) {
	bases, kill := statusTestCluster(t)
	kill("n2")

	code, body := getBody(t, bases["n1"]+StatusPath)
	if code != http.StatusOK {
		t.Fatalf("status with a dead member answered %d, want 200", code)
	}
	var st ClusterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Partial {
		t.Fatal("snapshot with a dead member is not marked partial")
	}
	for _, m := range st.Members {
		switch m.Name {
		case "n2":
			if m.Healthy || m.Error != "unreachable" {
				t.Fatalf("dead member reported %+v", m)
			}
			if len(m.Counters) != 0 {
				t.Fatalf("dead member carries counters: %v", m.Counters)
			}
		default:
			if !m.Healthy {
				t.Fatalf("live member %s reported unhealthy", m.Name)
			}
		}
	}
}
