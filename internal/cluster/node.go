package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/capserver"
	"repro/internal/obs"
)

// Forwarding headers. ForwardedHeader marks a request that has
// already been routed — the receiving node serves it locally without
// re-consulting the ring, which bounds every request to at most one
// forwarding hop and makes routing loops impossible by construction.
const (
	// ForwardedHeader carries the name of the node (or harness) that
	// routed the request here.
	ForwardedHeader = "X-Capserver-Forwarded"
	// PeerHeader names the peer that actually served a forwarded
	// response.
	PeerHeader = "X-Capserver-Peer"
	// HedgeHeader marks a forwarded response won by the hedged second
	// request.
	HedgeHeader = "X-Capserver-Hedge"
	// DegradedHeader names the unreachable owner when a node fell back
	// to computing a non-owned key locally.
	DegradedHeader = "X-Capserver-Degraded"
)

// Config tunes a cluster node. The zero value is not serviceable: the
// Self name and Membership are required.
type Config struct {
	// Self is this node's name in the membership.
	Self string
	// Membership is the static cluster membership (including Self).
	Membership Membership
	// VirtualNodes is the per-member virtual node count on the ring
	// (default DefaultVirtualNodes). Every node must use one value.
	VirtualNodes int
	// HedgeDelay is the deterministic delay after which a forward
	// still waiting on the owner fires a second request at the next
	// replica (default 25ms). Zero keeps the default; a negative value
	// disables hedging.
	HedgeDelay time.Duration
	// PeerAttempts bounds tries against the owner: 1 initial attempt
	// plus PeerAttempts-1 retries (default 2).
	PeerAttempts int
	// PeerBackoff is the base of the deterministic exponential backoff
	// between retries: backoff << attempt, like the PR-2 Supervisor's
	// use-budget backoff translated to wall clock (default 10ms).
	PeerBackoff time.Duration
	// PeerTimeout bounds one peer round trip (default 30s).
	PeerTimeout time.Duration
	// Client overrides the forwarding HTTP client (default: a fresh
	// client with PeerTimeout).
	Client *http.Client
	// Metrics, when non-nil, is the registry the node's counters
	// register on — pass the wrapped capserver's registry to serve one
	// /metrics page for both layers.
	Metrics *Metrics
	// Tracer, when non-nil, records one request span per hop this node
	// takes part in (DESIGN.md §12). Nil keeps the untraced fast path:
	// no IDs are minted, incoming trace headers are stripped, and the
	// owned-local serve adds zero allocations.
	Tracer *obs.Tracer
	// TraceSeed distinguishes incarnations of the same member in trace
	// IDs: a restarted node begins its span sequence at 1 again, so the
	// process that restarts it must hand the new incarnation a fresh
	// seed or replayed IDs would collide.
	TraceSeed uint64
	// StatusTimeout bounds each peer probe of the /v1/cluster/status
	// fan-out (default 2s). A member that cannot answer within it is
	// reported unreachable in a partial snapshot, never an error.
	StatusTimeout time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = DefaultVirtualNodes
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 25 * time.Millisecond
	}
	if c.PeerAttempts <= 0 {
		c.PeerAttempts = 2
	}
	if c.PeerBackoff <= 0 {
		c.PeerBackoff = 10 * time.Millisecond
	}
	if c.PeerTimeout <= 0 {
		c.PeerTimeout = 30 * time.Second
	}
	if c.StatusTimeout <= 0 {
		c.StatusTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.PeerTimeout}
	}
	return c
}

// localServer is the slice of capserver.Server the node needs: the
// request handler and the canonical-key router. Declared as an
// interface so node tests can substitute instrumented locals.
type localServer interface {
	Handler() http.Handler
	Canonicalize(r *http.Request) (key string, ok bool)
}

// Node routes requests for one member of a capserver cluster. It
// wraps the local capserver: shardable requests it owns (and every
// non-shardable or already-forwarded request) serve locally; the rest
// forward to their owner with hedging, bounded deterministic retry,
// and degradation to local compute when the owner is unreachable.
type Node struct {
	cfg     Config
	ring    *Ring
	local   localServer
	metrics *Metrics
	// seq numbers the requests this node originates, for trace IDs.
	seq atomic.Uint64
}

// NewNode builds the router for Self within the membership.
func NewNode(local localServer, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if local == nil {
		return nil, fmt.Errorf("cluster: node needs a local server")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: node needs a Self name")
	}
	if cfg.Membership.URL(cfg.Self) == "" {
		return nil, fmt.Errorf("cluster: self %q is not in the membership", cfg.Self)
	}
	ring, err := NewRing(cfg.Membership.Names(), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics(nil)
	}
	return &Node{cfg: cfg, ring: ring, local: local, metrics: cfg.Metrics}, nil
}

// Metrics returns the node's routing counters.
func (n *Node) Metrics() *Metrics { return n.metrics }

// Ring returns the node's placement ring (tests and diagnostics).
func (n *Node) Ring() *Ring { return n.ring }

// Handler returns the node's HTTP handler: the cluster router in
// front of the local capserver mux.
func (n *Node) Handler() http.Handler { return http.HandlerFunc(n.serveHTTP) }

func (n *Node) serveHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == StatusPath {
		n.serveStatus(w, r)
		return
	}
	if origin := r.Header.Get(ForwardedHeader); origin != "" {
		// Pre-routed: serve locally, never forward again. A trace ID on
		// the hop is trusted — the forwarding origin minted it — and
		// recorded as a remote span; without one (tracing off, or an
		// untraced probe) the header is stripped so a stale ID cannot
		// leak into the response.
		if id := r.Header.Get(obs.TraceHeader); id != "" && n.cfg.Tracer.Enabled() {
			n.metrics.remote.Inc()
			n.serveTraced(w, r, id, obs.PathRemote, origin)
			return
		}
		r.Header.Del(obs.TraceHeader)
		n.local.Handler().ServeHTTP(w, r)
		return
	}
	// This node is the request's origin: it mints the trace ID itself,
	// so a client-supplied one is always stripped (spoofed IDs must not
	// enter the cluster's accounting).
	r.Header.Del(obs.TraceHeader)
	if id, ok := capserver.SessionRouteID(r); ok {
		n.routeSession(w, r, id)
		return
	}
	key, ok := n.local.Canonicalize(r)
	if !ok {
		n.local.Handler().ServeHTTP(w, r)
		return
	}
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self {
		n.metrics.ownedLocal.Inc()
		if n.cfg.Tracer.Enabled() {
			n.serveTraced(w, r, n.requestID(key), obs.PathOwned, "")
			return
		}
		n.local.Handler().ServeHTTP(w, r)
		return
	}
	id := ""
	if n.cfg.Tracer.Enabled() {
		id = n.requestID(key)
	}
	n.forward(w, r, key, owner, id)
}

// SessionRingKey is the ring keyspace prefix for session ownership.
// Session keys live in the same ring as compute keys but a disjoint
// namespace: "session/{id}" can never collide with an endpoint-
// prefixed canonical cache key ("bounds?...").
const SessionRingKey = "session/"

// routeSession places one per-session request (ingest or snapshot
// read) on the ring by session ID. Sessions are stateful, so the
// discipline is stricter than for compute keys: the owner is the only
// node that may serve the request. There is no hedge (a second node
// would create a divergent twin of the session), no degraded local
// fallback (same reason), and an ingest is never retried through an
// ambiguous failure (a POST that may have landed must not be replayed
// — the session's ordering check would reject it, but the client
// deserves the first error, not a confusing 409). A dead owner
// surfaces as 502; the store-backed restart path in the harness shows
// the session resuming once the owner returns.
func (n *Node) routeSession(w http.ResponseWriter, r *http.Request, id string) {
	key := SessionRingKey + id
	owner := n.ring.Owner(key)
	if owner == n.cfg.Self {
		n.metrics.sessionOwned.Inc()
		n.local.Handler().ServeHTTP(w, r)
		return
	}
	n.metrics.sessionForwards.Inc()
	var body []byte
	if r.Body != nil {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Errorf("cluster: read request body: %w", err))
			return
		}
		body = b
	}
	attempts := 1
	if r.Method == http.MethodGet {
		attempts = n.cfg.PeerAttempts
	}
	base := n.cfg.Membership.URL(owner)
	uri := r.URL.RequestURI()
	var last peerResult
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			n.metrics.sessionRetries.Inc()
			backoff := n.cfg.PeerBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-r.Context().Done():
				writeJSONError(w, 499, r.Context().Err())
				return
			}
		}
		last = n.sessionRoundTrip(r, base, owner, uri, body)
		if last.err == nil {
			h := w.Header()
			if ct := last.header.Get("Content-Type"); ct != "" {
				h.Set("Content-Type", ct)
			}
			if ra := last.header.Get("Retry-After"); ra != "" {
				h.Set("Retry-After", ra)
			}
			h.Set(PeerHeader, owner)
			w.WriteHeader(last.status)
			_, _ = w.Write(last.body)
			return
		}
	}
	n.metrics.sessionPeerErrors.Inc()
	writeJSONError(w, http.StatusBadGateway,
		fmt.Errorf("cluster: session owner %s unreachable: %v", owner, last.err))
}

// sessionRoundTrip performs one forwarded session request, preserving
// the method and body. Only transport failures are errors; every HTTP
// status — including 429/503 backpressure — is the owner's
// authoritative answer about its own session state. (Retryable-status
// laundering would be wrong here: a 503 from the owner means "this
// session's node is shedding load", and no other node can answer
// instead.)
func (n *Node) sessionRoundTrip(r *http.Request, base, peer, uri string, body []byte) peerResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+uri, rd)
	if err != nil {
		return peerResult{peer: peer, err: err}
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return peerResult{peer: peer, err: err}
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return peerResult{peer: peer, err: err}
	}
	return peerResult{status: resp.StatusCode, header: resp.Header, body: respBody, peer: peer}
}

// writeJSONError renders an error in capserver's JSON error envelope,
// so cluster-originated failures read like local ones.
func writeJSONError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
}

// peerResult is one peer attempt's outcome.
type peerResult struct {
	status int
	header http.Header
	body   []byte
	peer   string
	hedged bool
	err    error
}

// forward resolves a non-owned key: primary attempts against the
// owner (bounded retry, deterministic backoff), a hedged second
// request at the next replica once the deterministic hedge delay
// elapses, and local degraded compute if every peer path fails. The
// first successful response wins; the loser's context is canceled.
// A non-empty id traces the attempt: spans are emitted at the same
// program points the counters increment (hedge at the timer, retry in
// tryPeer, the forward outcome in writePeerResponse or degrade), which
// is what lets capstat reconcile trace totals against counters exactly.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, key, owner, id string) {
	n.metrics.forwards.Inc()
	uri := r.URL.RequestURI()
	pctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	results := make(chan peerResult, 2)
	go func() {
		results <- n.tryPeer(pctx, owner, uri, n.cfg.PeerAttempts, false, id)
	}()
	inflight := 1

	// The hedge target is the next distinct replica on the ring —
	// the peer that inherits the owner's arc if it leaves, so the one
	// most likely to have the point warm in a shared store.
	hedge := ""
	for _, rep := range n.ring.Replicas(key, len(n.ring.names)) {
		if rep != owner && rep != n.cfg.Self {
			hedge = rep
			break
		}
	}
	var hedgeTimer <-chan time.Time
	if hedge != "" && n.cfg.HedgeDelay > 0 {
		t := time.NewTimer(n.cfg.HedgeDelay)
		defer t.Stop()
		hedgeTimer = t.C
	}

race:
	for inflight > 0 {
		select {
		case res := <-results:
			inflight--
			if res.err == nil {
				if res.hedged {
					n.metrics.hedgeWins.Inc()
				}
				n.writePeerResponse(w, res, owner, id)
				return
			}
			n.metrics.peerErrors.Inc()
			// When the primary is lost with no hedge racing, the loop
			// exits and degrades immediately: waiting out the hedge
			// timer buys nothing, and a non-owner peer would do the
			// same compute this node can do itself.
		case <-hedgeTimer:
			hedgeTimer = nil
			n.metrics.hedges.Inc()
			if id != "" {
				n.cfg.Tracer.ReqSpan(obs.ReqSpan{
					ID: id, Node: n.cfg.Self, Path: obs.PathHedge, Peer: hedge,
				})
			}
			inflight++
			go func() {
				results <- n.tryPeer(pctx, hedge, uri, 1, true, id)
			}()
		case <-r.Context().Done():
			// The client is gone; the local handler translates the
			// dead context into its 499 accounting.
			break race
		}
	}
	n.degrade(w, r, owner, id)
}

// degrade serves a non-owned key locally because the owning shard is
// unreachable, marking the response so clients and the harness can
// see the fallback. On a traced request, the failed routing attempt
// closes with a winnerless forward span and the local fallback serve
// records the terminal degraded span.
func (n *Node) degrade(w http.ResponseWriter, r *http.Request, owner, id string) {
	n.metrics.degraded.Inc()
	w.Header().Set(DegradedHeader, owner)
	if id != "" {
		n.cfg.Tracer.ReqSpan(obs.ReqSpan{
			ID: id, Node: n.cfg.Self, Path: obs.PathForward, Peer: owner,
		})
		n.serveTraced(w, r, id, obs.PathDegraded, owner)
		return
	}
	n.local.Handler().ServeHTTP(w, r)
}

// retryableStatus reports whether a peer status reflects transient
// load or lifecycle (retry elsewhere) rather than a deterministic
// verdict about the request (authoritative anywhere).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// tryPeer runs up to attempts round trips against one peer with
// deterministic exponential backoff between them (base << attempt).
func (n *Node) tryPeer(ctx context.Context, peer, uri string, attempts int, hedged bool, id string) peerResult {
	base := n.cfg.Membership.URL(peer)
	var last peerResult
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			n.metrics.retries.Inc()
			if id != "" {
				n.cfg.Tracer.ReqSpan(obs.ReqSpan{
					ID: id, Node: n.cfg.Self, Path: obs.PathRetry, Peer: peer,
				})
			}
			backoff := n.cfg.PeerBackoff << (attempt - 1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return peerResult{peer: peer, hedged: hedged, err: ctx.Err()}
			}
		}
		last = n.roundTrip(ctx, base, peer, uri, hedged, id)
		if last.err == nil {
			return last
		}
	}
	return last
}

// roundTrip performs one forwarded request. Retryable statuses come
// back as errors; every other status is the peer's authoritative,
// deterministic answer (a 400 or 500 would be byte-identical locally).
func (n *Node) roundTrip(ctx context.Context, base, peer, uri string, hedged bool, id string) peerResult {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+uri, nil)
	if err != nil {
		return peerResult{peer: peer, hedged: hedged, err: err}
	}
	req.Header.Set(ForwardedHeader, n.cfg.Self)
	if id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return peerResult{peer: peer, hedged: hedged, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return peerResult{peer: peer, hedged: hedged, err: err}
	}
	if retryableStatus(resp.StatusCode) {
		return peerResult{peer: peer, hedged: hedged, err: fmt.Errorf("cluster: peer %s answered %d", peer, resp.StatusCode)}
	}
	return peerResult{status: resp.StatusCode, header: resp.Header, body: body, peer: peer, hedged: hedged}
}

// writePeerResponse relays a peer's answer, preserving the serving
// headers and adding the routing trail. On a traced request it also
// records the terminal forward span: the routed owner, the peer whose
// answer actually came back (winner), and whether the hedge won.
func (n *Node) writePeerResponse(w http.ResponseWriter, res peerResult, owner, id string) {
	h := w.Header()
	if ct := res.header.Get("Content-Type"); ct != "" {
		h.Set("Content-Type", ct)
	}
	if class := res.header.Get("X-Capserver-Cache"); class != "" {
		h.Set("X-Capserver-Cache", class)
	}
	h.Set(PeerHeader, res.peer)
	if res.hedged {
		h.Set(HedgeHeader, "1")
	}
	if id != "" {
		h.Set(obs.TraceHeader, id)
		var hedge int64
		if res.hedged {
			hedge = 1
		}
		n.cfg.Tracer.ReqSpan(obs.ReqSpan{
			ID:     id,
			Node:   n.cfg.Self,
			Path:   obs.PathForward,
			Peer:   owner,
			Winner: res.peer,
			Hedge:  hedge,
			Status: int64(res.status),
			Cache:  res.header.Get("X-Capserver-Cache"),
		})
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}
