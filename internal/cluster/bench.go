package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// BenchSchema is BENCH_cluster.json's format tag. Bump on layout
// changes.
const BenchSchema = "capest/bench-cluster/v1"

// Trajectory is the BENCH_cluster.json document: one harness run's
// configuration, fault schedule, routing counters and outcome, written
// by `capload -mode cluster -bench-out` and validated by
// `capload -mode cluster-check` in the bench-smoke gate. Like
// BENCH_kernels.json it is a committed record of where the system's
// behaviour stands, machine-checkable by CI.
type Trajectory struct {
	Schema string `json:"schema"`
	Go     string `json:"go"`
	Mode   string `json:"mode"`

	Nodes        []string `json:"nodes"`
	Requests     int      `json:"requests"`
	Seed         uint64   `json:"seed"`
	Unique       int      `json:"unique"`
	ExactN       int      `json:"exact_n"`
	Killed       string   `json:"killed,omitempty"`
	KillAfter    int      `json:"kill_after"`
	RestartAfter int      `json:"restart_after"`
	HedgeDelayMS float64  `json:"hedge_delay_ms"`

	WallMS     float64 `json:"wall_ms"`
	Throughput float64 `json:"throughput_rps"`
	Failovers  int     `json:"failovers"`
	Mismatches int     `json:"mismatches"`

	PerNode      []NodeCounters `json:"per_node"`
	Totals       NodeCounters   `json:"totals"`
	Convergence  Convergence    `json:"convergence"`
	StoreEntries int            `json:"store_entries"`
	Passed       bool           `json:"passed"`
}

// BuildTrajectory assembles the document from a finished run.
func BuildTrajectory(mode string, o HarnessOptions, rep *HarnessReport) *Trajectory {
	o = o.withDefaults()
	return &Trajectory{
		Schema:       BenchSchema,
		Go:           runtime.Version(),
		Mode:         mode,
		Nodes:        o.Nodes,
		Requests:     rep.Requests,
		Seed:         o.Seed,
		Unique:       o.Unique,
		ExactN:       o.ExactN,
		Killed:       rep.Killed,
		KillAfter:    o.KillAfter,
		RestartAfter: o.RestartAfter,
		HedgeDelayMS: float64(o.HedgeDelay) / float64(time.Millisecond),
		WallMS:       float64(rep.Wall) / float64(time.Millisecond),
		Throughput:   rep.Throughput(),
		Failovers:    rep.Failovers,
		Mismatches:   rep.Mismatches,
		PerNode:      rep.Nodes,
		Totals:       rep.Totals(),
		Convergence:  rep.Convergence,
		StoreEntries: rep.StoreEntries,
		Passed:       rep.Assert() == nil,
	}
}

// WriteTrajectory writes the document as indented JSON.
func WriteTrajectory(path string, t *Trajectory) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// CheckTrajectory validates an existing trajectory file: it must
// parse, carry the current schema tag, and record a passing run — the
// committed BENCH_cluster.json must never describe a cluster that
// failed its own byte-identity or convergence assertions.
func CheckTrajectory(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var t Trajectory
	if err := json.Unmarshal(raw, &t); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if t.Schema != BenchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, t.Schema, BenchSchema)
	}
	if len(t.Nodes) < 2 {
		return fmt.Errorf("%s: %d nodes is not a cluster", path, len(t.Nodes))
	}
	if t.Requests <= 0 {
		return fmt.Errorf("%s: no requests recorded", path)
	}
	if t.Mismatches != 0 {
		return fmt.Errorf("%s: records %d oracle mismatches", path, t.Mismatches)
	}
	if !t.Passed {
		return fmt.Errorf("%s: records a failed harness run", path)
	}
	if t.Killed != "" {
		tt := t.Totals
		if tt.Hedges == 0 || tt.Retries == 0 || tt.Degraded == 0 {
			return fmt.Errorf("%s: fault run with idle fault machinery (hedges=%d retries=%d degraded=%d)",
				path, tt.Hedges, tt.Retries, tt.Degraded)
		}
	}
	return nil
}
