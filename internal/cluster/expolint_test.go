package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/capserver"
	"repro/internal/obs"
)

// Exposition lint: one full node's /metrics page — serving core,
// session subsystem, alert state, and cluster routing families on one
// registry — must be well-formed Prometheus text format v0.0.4 down to
// every name, label, escape and value, including a family carrying
// deliberately hostile label values. This lives in the cluster package
// because only here do all three family sets coexist on one page.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// lintExposition parses one exposition page strictly, returning the
// set of sample family names (label-stripped) and the first error.
func lintExposition(text string) (map[string]bool, error) {
	families := make(map[string]bool)
	typed := make(map[string]string)
	helped := make(map[string]bool)
	seenSeries := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := strings.Cut(strings.TrimPrefix(line, "# "), " ")
			if !ok {
				return nil, fmt.Errorf("line %d: bare comment %q", ln+1, line)
			}
			name, payload, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed %s line %q", ln+1, kind, line)
			}
			switch kind {
			case "HELP":
				if helped[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %s", ln+1, name)
				}
				helped[name] = true
				// Raw newlines cannot survive the line split; a trailing
				// lone backslash or a bad escape can.
				if err := checkEscapes(payload, false); err != nil {
					return nil, fmt.Errorf("line %d: HELP %s: %v", ln+1, name, err)
				}
			case "TYPE":
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
				}
				switch payload {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return nil, fmt.Errorf("line %d: TYPE %s %q invalid", ln+1, name, payload)
				}
				typed[name] = payload
			default:
				return nil, fmt.Errorf("line %d: unknown comment kind %q", ln+1, kind)
			}
			continue
		}
		series, value, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("line %d: no value separator in %q", ln+1, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return nil, fmt.Errorf("line %d: unparseable value %q", ln+1, value)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name = series[:i]
			if !strings.HasSuffix(series, "}") {
				return nil, fmt.Errorf("line %d: unterminated label set %q", ln+1, series)
			}
			if err := lintLabels(series[i+1 : len(series)-1]); err != nil {
				return nil, fmt.Errorf("line %d: %v", ln+1, err)
			}
		}
		if !metricNameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: invalid metric name %q", ln+1, name)
		}
		if seenSeries[series] {
			return nil, fmt.Errorf("line %d: duplicate series %q", ln+1, series)
		}
		seenSeries[series] = true
		families[strings.TrimSuffix(name, "_count")] = true
	}
	return families, nil
}

// lintLabels validates one rendered label set body (between braces).
func lintLabels(body string) error {
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("malformed label pair in %q", body)
		}
		name := body[:eq]
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest := body[eq+2:]
		// Scan to the closing unescaped quote.
		end := -1
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case '\\':
				i++
			case '"':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		if err := checkEscapes(rest[:end], true); err != nil {
			return fmt.Errorf("label %s: %v", name, err)
		}
		body = rest[end+1:]
		if body != "" {
			if body[0] != ',' {
				return fmt.Errorf("missing comma after label %s", name)
			}
			body = body[1:]
		}
	}
	return nil
}

// checkEscapes verifies a rendered HELP text or label value uses only
// the escapes the format defines (label values additionally escape the
// quote) and contains no raw quote that should have been escaped.
func checkEscapes(s string, labelValue bool) error {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return fmt.Errorf("trailing backslash in %q", s)
			}
			next := s[i+1]
			if next != '\\' && next != 'n' && !(labelValue && next == '"') {
				return fmt.Errorf("invalid escape \\%c in %q", next, s)
			}
			i++
		case '"':
			if labelValue {
				return fmt.Errorf("unescaped quote in %q", s)
			}
		}
	}
	return nil
}

func TestExpositionLintFullNode(t *testing.T) {
	reg := obs.NewRegistry()
	srv := capserver.New(capserver.Config{Metrics: reg, SessionSweep: -1})
	node, err := NewNode(srv, Config{
		Membership: Membership{Members: []Member{{Name: "n1", URL: "http://unused"}}},
		Self:       "n1",
		Metrics:    NewMetrics(reg),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(node.Handler())
	defer ts.Close()

	// Materialize labeled families across all three subsystems: serving
	// counters and latency, session stream stats, alert state.
	for _, path := range []string{
		"/v1/bounds?n=4&pd=0.2&pi=0.1",
		"/v1/exact?n=4&pd=0.2&pi=0.1",
		"/v1/nosuch",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/v1/sessions/lint-a/events", "application/x-ndjson",
		strings.NewReader(`{"u":1,"k":"T","s":1,"r":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	srv.TickHealth()
	// A family with hostile label values must still render lintably.
	reg.CounterVec("lint_hostile_total", "path").With("C:\\tmp\n\"q\",x=").Inc()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 0, 1<<16)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q", ct)
	}

	families, err := lintExposition(string(body))
	if err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}
	for _, want := range []string{
		// serving core
		"capserver_requests_total",
		"capserver_compute_total",
		"capserver_queue_rejected_total",
		"capserver_latency_ms",
		"capserver_build_info",
		// session subsystem
		"capserver_sessions_active",
		"capserver_sessions_limit",
		"capserver_session_stream_fires_total",
		"capserver_session_stream_uses_total",
		"capserver_session_false_alarm_ppm",
		"capserver_session_stream_false_alarm_ppm",
		// health verdicts
		"capserver_alert_state",
		// cluster routing
		"cluster_owned_local_total",
		"cluster_degraded_total",
		"cluster_session_owned_total",
		// hostile family survived escaping
		"lint_hostile_total",
	} {
		if !families[want] {
			t.Errorf("family %s missing from exposition", want)
		}
	}
}
