// Package cluster takes capserver from one process to N (DESIGN.md
// §11). The paper's capacity bounds are deterministic functions of a
// small parameter tuple, which makes the serving layer embarrassingly
// shardable: every canonicalized request key has exactly one owner,
// assigned by a consistent-hash ring over a static membership.
//
// The pieces:
//
//   - Ring: consistent hashing with virtual nodes over the
//     canonicalized request keyspace (the exact cache-key strings
//     capserver.Canonicalize produces);
//   - casstore (subpackage): a content-addressed on-disk result store
//     with atomic write-rename semantics, plugged into capserver's
//     ResultStore hook — nodes sharing a store directory can all serve
//     any cached point, and a restarted node warm-starts from disk;
//   - Node: the per-process router. Owned keys serve locally;
//     non-owned keys forward to the owner over HTTP with a hedged
//     second request to the next replica after a deterministic delay,
//     bounded deterministic retry/backoff on node loss, and graceful
//     degradation to local compute (with an X-Capserver-Degraded
//     response header) when the owning shard is unreachable;
//   - Harness: the multi-node kill/restart fault harness behind
//     `capload -mode cluster`, asserting byte-identical responses
//     against a single-node oracle and cache-hit convergence after
//     recovery.
//
// Everything that decides placement or retry timing is deterministic:
// the ring hashes only static names, the hedge delay and backoff
// schedule are fixed configuration, and response bodies are pure
// functions of request parameters — which is what makes the
// byte-identity assertion against a single-node oracle meaningful.
package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Member is one cluster node: a stable name (the ring hashes names,
// never addresses, so re-addressing a node does not reshard the
// keyspace) and its base URL.
type Member struct {
	Name string
	URL  string
}

// Membership is the static cluster configuration. Ordering does not
// matter: the ring sorts names, so every node derives the identical
// key assignment from any permutation of the same membership.
type Membership struct {
	Members []Member
}

// Names returns the member names in sorted order.
func (m Membership) Names() []string {
	names := make([]string, len(m.Members))
	for i, mem := range m.Members {
		names[i] = mem.Name
	}
	sort.Strings(names)
	return names
}

// URL returns the base URL for a member name ("" if unknown).
func (m Membership) URL(name string) string {
	for _, mem := range m.Members {
		if mem.Name == name {
			return mem.URL
		}
	}
	return ""
}

// ParseMembership parses the static membership flag syntax
// "n1=http://host1:8081,n2=http://host2:8082,...". Names must be
// unique and non-empty; URLs must be non-empty and are normalized to
// drop a trailing slash.
func ParseMembership(s string) (Membership, error) {
	var m Membership
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rawURL, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		rawURL = strings.TrimSpace(rawURL)
		if !ok || name == "" || rawURL == "" {
			return Membership{}, fmt.Errorf("cluster: membership entry %q is not name=url", part)
		}
		if seen[name] {
			return Membership{}, fmt.Errorf("cluster: duplicate member name %q", name)
		}
		seen[name] = true
		m.Members = append(m.Members, Member{Name: name, URL: strings.TrimRight(rawURL, "/")})
	}
	if len(m.Members) == 0 {
		return Membership{}, fmt.Errorf("cluster: membership %q lists no members", s)
	}
	return m, nil
}
