package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossPermutations(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("bounds?n=%d&pd=0.2", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q across permuted memberships", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("bounds?n=%d&pd=0.%03d&pf=0.01", i%12, i))]++
	}
	for _, name := range r.Members() {
		got := counts[name]
		// With 64 vnodes the per-member share stays within a loose
		// factor of the fair third; the point is no member is starved
		// or hot by an order of magnitude.
		if got < keys/9 || got > keys*2/3 {
			t.Fatalf("member %s owns %d of %d keys: ring badly imbalanced (%v)", name, got, keys, counts)
		}
	}
}

func TestRingMinimalMovementOnMemberLoss(t *testing.T) {
	full, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n1", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("predict?n=%d&pd=0.%03d", i%9, i)
		was, is := full.Owner(key), reduced.Owner(key)
		if was == "n2" {
			continue // orphaned keys must move somewhere
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner; consistent hashing should move only the lost member's arcs", moved)
	}
}

func TestRingReplicasDistinctAndOwnerFirst(t *testing.T) {
	r, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("simulate?n=%d&seed=%d", i%7, i)
		reps := r.Replicas(key, 3)
		if len(reps) != 3 {
			t.Fatalf("key %q: want 3 replicas, got %v", key, reps)
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: replicas %v do not start at owner %q", key, reps, r.Owner(key))
		}
		seen := map[string]bool{}
		for _, rep := range reps {
			if seen[rep] {
				t.Fatalf("key %q: duplicate replica in %v", key, reps)
			}
			seen[rep] = true
		}
	}
}

func TestRingRejectsBadMemberships(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"n1", "n1"}, 64); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := NewRing([]string{"n1", ""}, 64); err == nil {
		t.Fatal("empty member name accepted")
	}
}

func TestParseMembership(t *testing.T) {
	m, err := ParseMembership("n1=http://h1:8081/, n2=http://h2:8082")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.URL("n1"); got != "http://h1:8081" {
		t.Fatalf("trailing slash not normalized: %q", got)
	}
	if got := m.URL("n2"); got != "http://h2:8082" {
		t.Fatalf("n2 url: %q", got)
	}
	if got := m.URL("nope"); got != "" {
		t.Fatalf("unknown member url: %q", got)
	}
	names := m.Names()
	if len(names) != 2 || names[0] != "n1" || names[1] != "n2" {
		t.Fatalf("names: %v", names)
	}
	for _, bad := range []string{"", "n1", "n1=", "=http://h", "n1=http://a,n1=http://b"} {
		if _, err := ParseMembership(bad); err == nil {
			t.Fatalf("membership %q accepted", bad)
		}
	}
}
