package cluster

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/capserver"
	"repro/internal/cluster/casstore"
	"repro/internal/rng"
)

// This file is the multi-node fault harness behind `capload -mode
// cluster` and `make cluster-smoke`: it stands up an N-node cluster of
// real capserver processes-in-miniature (each with its own listener,
// LRU, worker pool and cluster router, all sharing one casstore
// directory), replays a seeded workload against it while killing and
// restarting a node mid-run, and checks the two properties the cluster
// design promises:
//
//   - byte identity: every response body equals what a single plain
//     capserver (the oracle) produces for the same path, regardless of
//     which node served it, whether it was forwarded, hedged, or
//     degraded;
//   - convergence: after the killed node restarts over the shared
//     store, re-issuing the run's unique paths against it directly is
//     pure cache traffic (LRU hit or store hit) — the cluster never
//     recomputes a point it has already computed anywhere.
//
// The workload, the per-request dispatch choice, and the kill/restart
// schedule are pure functions of the options, so a failing run is
// replayable bit-for-bit.

// HarnessOptions configures a cluster fault-harness run.
type HarnessOptions struct {
	// Nodes are the member names (default n1, n2, n3).
	Nodes []string
	// Requests is the workload length (default 200).
	Requests int
	// Seed drives both the request plan and the dispatch sequence
	// (default 1).
	Seed uint64
	// Unique is the number of distinct parameter points per endpoint
	// (default 12).
	Unique int
	// ExactN makes bounds misses pay a real exact-enumeration compute
	// (default 8, ~40ms — long enough that a forwarded cold compute
	// always outlives the hedge delay).
	ExactN int
	// KillNode is the member to kill (default the second node in
	// sorted order). Ignored when KillAfter < 0.
	KillNode string
	// KillAfter kills KillNode just before issuing this request index
	// (default Requests/3). Negative disables the fault entirely.
	KillAfter int
	// RestartAfter restarts the killed node just before this request
	// index (default 2*Requests/3). Negative leaves it down.
	RestartAfter int
	// HedgeDelay for every node (default 5ms: far below a cold exact
	// compute, so forwarded cold computes always hedge — but above the
	// primary's full retry budget against a dead peer (sub-ms refusals
	// plus PeerBackoff), so a dead owner deterministically degrades to
	// local compute instead of being absorbed by the hedge). Negative
	// disables hedging.
	HedgeDelay time.Duration
	// PeerBackoff for every node (default 1ms; see HedgeDelay).
	PeerBackoff time.Duration
	// StoreDir is the shared result-store directory (default: a fresh
	// temp directory, removed when the run ends).
	StoreDir string
	// Workers, QueueDepth, CacheEntries configure each node's
	// capserver (defaults: 2, 64, 1024).
	Workers, QueueDepth, CacheEntries int
	// Out receives progress lines (default: discard).
	Out io.Writer
}

func (o HarnessOptions) withDefaults() HarnessOptions {
	if len(o.Nodes) == 0 {
		o.Nodes = []string{"n1", "n2", "n3"}
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Unique <= 0 {
		o.Unique = 12
	}
	if o.ExactN == 0 {
		o.ExactN = 8
	}
	if o.KillAfter == 0 {
		o.KillAfter = o.Requests / 3
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 2 * o.Requests / 3
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 5 * time.Millisecond
	}
	if o.PeerBackoff <= 0 {
		o.PeerBackoff = time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// NodeCounters is one member's routing activity, summed across its
// incarnations (a killed-and-restarted node has two).
type NodeCounters struct {
	Name       string `json:"name"`
	OwnedLocal int64  `json:"owned_local"`
	Forwards   int64  `json:"forwards"`
	Hedges     int64  `json:"hedges"`
	HedgeWins  int64  `json:"hedge_wins"`
	Retries    int64  `json:"retries"`
	PeerErrors int64  `json:"peer_errors"`
	Degraded   int64  `json:"degraded"`
}

// Convergence is the post-restart cache-convergence check: every
// unique path the run served, re-issued directly against the restarted
// node.
type Convergence struct {
	Paths      int `json:"paths"`
	StoreHits  int `json:"store_hits"`
	CacheHits  int `json:"cache_hits"`
	Recomputed int `json:"recomputed"`
	Errors     int `json:"errors"`
}

// HarnessReport aggregates one harness run.
type HarnessReport struct {
	Requests     int         `json:"requests"`
	Failovers    int         `json:"failovers"`
	Mismatches   int         `json:"mismatches"`
	Status       map[int]int `json:"-"`
	DegradedSeen int         `json:"degraded_seen"` // responses carrying X-Capserver-Degraded
	HedgedSeen   int         `json:"hedged_seen"`   // responses carrying X-Capserver-Hedge
	ForwardSeen  int         `json:"forward_seen"`  // responses carrying X-Capserver-Peer

	Killed    string `json:"killed,omitempty"`
	Restarted bool   `json:"restarted"`

	Nodes       []NodeCounters `json:"nodes"`
	Convergence Convergence    `json:"convergence"`

	StoreEntries int           `json:"store_entries"`
	Wall         time.Duration `json:"-"`
}

// Throughput returns requests per second over the run.
func (r *HarnessReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Wall.Seconds()
}

// Totals sums the per-node counters.
func (r *HarnessReport) Totals() NodeCounters {
	t := NodeCounters{Name: "total"}
	for _, n := range r.Nodes {
		t.OwnedLocal += n.OwnedLocal
		t.Forwards += n.Forwards
		t.Hedges += n.Hedges
		t.HedgeWins += n.HedgeWins
		t.Retries += n.Retries
		t.PeerErrors += n.PeerErrors
		t.Degraded += n.Degraded
	}
	return t
}

// Format renders the report for humans.
func (r *HarnessReport) Format(w io.Writer) {
	fmt.Fprintf(w, "requests:   %d in %v (%.1f req/s), %d failovers, %d mismatches\n",
		r.Requests, r.Wall.Round(time.Millisecond), r.Throughput(), r.Failovers, r.Mismatches)
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "status %d: %d\n", c, r.Status[c])
	}
	fmt.Fprintf(w, "responses:  %d forwarded, %d hedged, %d degraded\n",
		r.ForwardSeen, r.HedgedSeen, r.DegradedSeen)
	if r.Killed != "" {
		fmt.Fprintf(w, "fault:      killed %s (restarted=%v)\n", r.Killed, r.Restarted)
	}
	for _, n := range append(r.Nodes, r.Totals()) {
		fmt.Fprintf(w, "node %-6s owned=%-4d fwd=%-4d hedge=%d/%d retry=%-3d peer_err=%-3d degraded=%d\n",
			n.Name, n.OwnedLocal, n.Forwards, n.HedgeWins, n.Hedges, n.Retries, n.PeerErrors, n.Degraded)
	}
	if r.Restarted {
		c := r.Convergence
		fmt.Fprintf(w, "convergence: %d paths -> %d store, %d hit, %d recomputed, %d errors\n",
			c.Paths, c.StoreHits, c.CacheHits, c.Recomputed, c.Errors)
	}
	fmt.Fprintf(w, "store:      %d entries\n", r.StoreEntries)
}

// Assert is the acceptance gate for `make cluster-smoke`: byte
// identity must hold for every response, the restarted node must be
// pure cache traffic, and when a node was killed the fault machinery
// must actually have engaged (hedge, retry and degraded counters all
// nonzero).
func (r *HarnessReport) Assert() error {
	var fails []string
	if r.Mismatches != 0 {
		fails = append(fails, fmt.Sprintf("%d responses differ from the single-node oracle", r.Mismatches))
	}
	t := r.Totals()
	if t.Forwards == 0 {
		fails = append(fails, "no request was ever forwarded (dispatch never crossed shards?)")
	}
	if t.Hedges == 0 {
		fails = append(fails, "no hedged request fired")
	}
	if r.Killed != "" {
		if t.Retries == 0 {
			fails = append(fails, "node killed but no peer attempt was retried")
		}
		if t.Degraded == 0 {
			fails = append(fails, "node killed but no request degraded to local compute")
		}
	}
	if r.Restarted {
		c := r.Convergence
		if c.Paths == 0 {
			fails = append(fails, "convergence check ran over zero paths")
		}
		if c.Recomputed != 0 {
			fails = append(fails, fmt.Sprintf("restarted node recomputed %d already-computed points", c.Recomputed))
		}
		if c.Errors != 0 {
			fails = append(fails, fmt.Sprintf("%d convergence probes failed", c.Errors))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("cluster: harness assertions failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// proc is one running node incarnation.
type proc struct {
	name  string
	addr  string
	lis   net.Listener
	hsrv  *http.Server
	srv   *capserver.Server
	node  *Node
	store *casstore.Store
	dead  bool
}

// RunHarness executes a cluster fault-harness run.
func RunHarness(o HarnessOptions) (*HarnessReport, error) {
	o = o.withDefaults()
	if o.KillAfter >= 0 && o.RestartAfter >= 0 && o.RestartAfter <= o.KillAfter {
		return nil, fmt.Errorf("cluster: -restart-after (%d) must exceed -kill-after (%d)", o.RestartAfter, o.KillAfter)
	}
	storeDir := o.StoreDir
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "capcluster-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}

	// Bind every listener first: the membership needs real addresses
	// before any node can route.
	sortedNames := append([]string(nil), o.Nodes...)
	sort.Strings(sortedNames)
	var mem Membership
	listeners := make(map[string]net.Listener, len(sortedNames))
	for _, name := range sortedNames {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close() // no-op once a server owns it
		listeners[name] = l
		mem.Members = append(mem.Members, Member{Name: name, URL: "http://" + l.Addr().String()})
	}

	srvCfg := capserver.Config{
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		CacheEntries: o.CacheEntries,
	}
	nodeCfg := Config{
		Membership:  mem,
		HedgeDelay:  o.HedgeDelay,
		PeerBackoff: o.PeerBackoff,
		PeerTimeout: 30 * time.Second,
	}

	// retired collects the metrics and store stats of replaced
	// incarnations so the report sums a member's whole history.
	retired := make(map[string][]*Metrics)
	startNode := func(name string, l net.Listener) (*proc, error) {
		st, err := casstore.Open(storeDir)
		if err != nil {
			return nil, err
		}
		cfg := srvCfg
		cfg.Store = st
		srv := capserver.New(cfg)
		ncfg := nodeCfg
		ncfg.Self = name
		ncfg.Metrics = nil // fresh counters per incarnation
		node, err := NewNode(srv, ncfg)
		if err != nil {
			return nil, err
		}
		p := &proc{
			name:  name,
			addr:  l.Addr().String(),
			lis:   l,
			hsrv:  &http.Server{Handler: node.Handler()},
			srv:   srv,
			node:  node,
			store: st,
		}
		go func() { _ = p.hsrv.Serve(l) }()
		return p, nil
	}

	procs := make(map[string]*proc, len(sortedNames))
	for _, name := range sortedNames {
		p, err := startNode(name, listeners[name])
		if err != nil {
			return nil, err
		}
		procs[name] = p
	}
	defer func() {
		for _, p := range procs {
			if !p.dead {
				_ = p.hsrv.Close()
			}
		}
	}()

	// The oracle: one plain capserver, no cluster, no store. Its
	// bodies are the ground truth every cluster response must match.
	oracleSrv := capserver.New(srvCfg)
	oracleLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = oracleSrv.Serve(oracleLis) }()
	defer func() { _ = oracleLis.Close() }()
	oracleBase := "http://" + oracleLis.Addr().String()

	client := &http.Client{Timeout: 60 * time.Second}
	oracleBodies := make(map[string][]byte)
	oracleBody := func(path string) ([]byte, error) {
		if b, ok := oracleBodies[path]; ok {
			return b, nil
		}
		resp, err := client.Get(oracleBase + path)
		if err != nil {
			return nil, fmt.Errorf("oracle %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("oracle %s: status %d", path, resp.StatusCode)
		}
		oracleBodies[path] = b
		return b, nil
	}

	plan := capserver.PlanPaths(capserver.LoadOptions{
		Requests: o.Requests,
		Seed:     o.Seed,
		Unique:   o.Unique,
		ExactN:   o.ExactN,
	})

	killName := o.KillNode
	if killName == "" {
		killName = sortedNames[len(sortedNames)/2]
	}
	if _, ok := procs[killName]; !ok {
		return nil, fmt.Errorf("cluster: kill node %q is not a member", killName)
	}

	report := &HarnessReport{Requests: len(plan), Status: make(map[int]int)}
	dispatch := rng.NewStream(o.Seed, 0xd15)
	var servedPaths []string
	seenPath := make(map[string]bool)

	start := time.Now()
	for i, req := range plan {
		if o.KillAfter >= 0 && i == o.KillAfter {
			p := procs[killName]
			_ = p.hsrv.Close()
			p.dead = true
			retired[killName] = append(retired[killName], p.node.Metrics())
			report.Killed = killName
			fmt.Fprintf(o.Out, "request %d: killed %s (%s)\n", i, killName, p.addr)
		}
		if o.KillAfter >= 0 && o.RestartAfter >= 0 && i == o.RestartAfter {
			old := procs[killName]
			l, err := net.Listen("tcp", old.addr)
			if err != nil {
				return nil, fmt.Errorf("cluster: restart %s on %s: %v", killName, old.addr, err)
			}
			p, err := startNode(killName, l)
			if err != nil {
				return nil, err
			}
			procs[killName] = p
			report.Restarted = true
			fmt.Fprintf(o.Out, "request %d: restarted %s (%s) cold over the shared store\n", i, killName, p.addr)
		}

		// Client-side dispatch: a seeded pick over all members, with
		// failover rotation on transport errors (the client does not
		// know which node is dead — it discovers it).
		pick := dispatch.Intn(len(sortedNames))
		var resp *http.Response
		var lastErr error
		for attempt := 0; attempt < len(sortedNames); attempt++ {
			p := procs[sortedNames[(pick+attempt)%len(sortedNames)]]
			resp, lastErr = client.Get("http://" + p.addr + req.Path)
			if lastErr == nil {
				break
			}
			report.Failovers++
		}
		if lastErr != nil {
			report.Mismatches++
			fmt.Fprintf(o.Out, "request %d: every node refused %s: %v\n", i, req.Path, lastErr)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			report.Mismatches++
			continue
		}
		report.Status[resp.StatusCode]++
		if resp.Header.Get(PeerHeader) != "" {
			report.ForwardSeen++
		}
		if resp.Header.Get(HedgeHeader) != "" {
			report.HedgedSeen++
		}
		if resp.Header.Get(DegradedHeader) != "" {
			report.DegradedSeen++
		}
		want, err := oracleBody(req.Path)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK || string(body) != string(want) {
			report.Mismatches++
			fmt.Fprintf(o.Out, "request %d: %s: status %d, body diverges from oracle\n", i, req.Path, resp.StatusCode)
			continue
		}
		if !seenPath[req.Path] {
			seenPath[req.Path] = true
			servedPaths = append(servedPaths, req.Path)
		}
	}
	report.Wall = time.Since(start)

	// Convergence: the restarted node, asked directly (pre-routed so
	// it cannot forward), must serve every path the run computed from
	// its LRU or the shared store — never by recomputing.
	if report.Restarted {
		p := procs[killName]
		report.Convergence.Paths = len(servedPaths)
		for _, path := range servedPaths {
			hreq, err := http.NewRequest(http.MethodGet, "http://"+p.addr+path, nil)
			if err != nil {
				return nil, err
			}
			hreq.Header.Set(ForwardedHeader, "harness")
			resp, err := client.Do(hreq)
			if err != nil {
				report.Convergence.Errors++
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report.Convergence.Errors++
				continue
			}
			switch resp.Header.Get("X-Capserver-Cache") {
			case "store":
				report.Convergence.StoreHits++
			case "hit":
				report.Convergence.CacheHits++
			default:
				report.Convergence.Recomputed++
			}
		}
	}

	// Per-member counters across every incarnation.
	for _, name := range sortedNames {
		c := NodeCounters{Name: name}
		metrics := append([]*Metrics(nil), retired[name]...)
		if p := procs[name]; !p.dead {
			metrics = append(metrics, p.node.Metrics())
		}
		for _, m := range metrics {
			c.OwnedLocal += m.OwnedLocal()
			c.Forwards += m.Forwards()
			c.Hedges += m.Hedges()
			c.HedgeWins += m.HedgeWins()
			c.Retries += m.Retries()
			c.PeerErrors += m.PeerErrors()
			c.Degraded += m.Degraded()
		}
		report.Nodes = append(report.Nodes, c)
	}

	if st, err := casstore.Open(storeDir); err == nil {
		if n, err := st.Len(); err == nil {
			report.StoreEntries = n
		}
	}
	return report, nil
}
