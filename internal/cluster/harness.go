package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/capserver"
	"repro/internal/cluster/casstore"
	"repro/internal/obs"
	"repro/internal/rng"
)

// This file is the multi-node fault harness behind `capload -mode
// cluster` and `make cluster-smoke`: it stands up an N-node cluster of
// real capserver processes-in-miniature (each with its own listener,
// LRU, worker pool and cluster router, all sharing one casstore
// directory), replays a seeded workload against it while killing and
// restarting a node mid-run, and checks the two properties the cluster
// design promises:
//
//   - byte identity: every response body equals what a single plain
//     capserver (the oracle) produces for the same path, regardless of
//     which node served it, whether it was forwarded, hedged, or
//     degraded;
//   - convergence: after the killed node restarts over the shared
//     store, re-issuing the run's unique paths against it directly is
//     pure cache traffic (LRU hit or store hit) — the cluster never
//     recomputes a point it has already computed anywhere.
//
// The workload, the per-request dispatch choice, and the kill/restart
// schedule are pure functions of the options, so a failing run is
// replayable bit-for-bit.

// HarnessOptions configures a cluster fault-harness run.
type HarnessOptions struct {
	// Nodes are the member names (default n1, n2, n3).
	Nodes []string
	// Requests is the workload length (default 200).
	Requests int
	// Seed drives both the request plan and the dispatch sequence
	// (default 1).
	Seed uint64
	// Unique is the number of distinct parameter points per endpoint
	// (default 12).
	Unique int
	// ExactN makes bounds misses pay a real exact-enumeration compute
	// (default 8, ~40ms — long enough that a forwarded cold compute
	// always outlives the hedge delay).
	ExactN int
	// KillNode is the member to kill (default the second node in
	// sorted order). Ignored when KillAfter < 0.
	KillNode string
	// KillAfter kills KillNode just before issuing this request index
	// (default Requests/3). Negative disables the fault entirely.
	KillAfter int
	// RestartAfter restarts the killed node just before this request
	// index (default 2*Requests/3). Negative leaves it down.
	RestartAfter int
	// HedgeDelay for every node (default 5ms: far below a cold exact
	// compute, so forwarded cold computes always hedge — but above the
	// primary's full retry budget against a dead peer (sub-ms refusals
	// plus PeerBackoff), so a dead owner deterministically degrades to
	// local compute instead of being absorbed by the hedge). Negative
	// disables hedging.
	HedgeDelay time.Duration
	// PeerBackoff for every node (default 1ms; see HedgeDelay).
	PeerBackoff time.Duration
	// StoreDir is the shared result-store directory (default: a fresh
	// temp directory, removed when the run ends).
	StoreDir string
	// Workers, QueueDepth, CacheEntries configure each node's
	// capserver (defaults: 2, 64, 1024).
	Workers, QueueDepth, CacheEntries int
	// Trace turns on request tracing: every incarnation gets its own
	// tracer (seeded with its generation number, so a restart cannot
	// replay IDs), and the run ends by analyzing the merged spans and
	// reconciling them against the routing counters.
	Trace bool
	// TraceDir, when set, implies Trace and writes each member's
	// merged trace to <dir>/<member>.jsonl plus the per-member routing
	// counters to <dir>/counters.json — the capstat CLI's input.
	TraceDir string
	// Out receives progress lines (default: discard).
	Out io.Writer
}

func (o HarnessOptions) withDefaults() HarnessOptions {
	if len(o.Nodes) == 0 {
		o.Nodes = []string{"n1", "n2", "n3"}
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Unique <= 0 {
		o.Unique = 12
	}
	if o.ExactN == 0 {
		o.ExactN = 8
	}
	if o.KillAfter == 0 {
		o.KillAfter = o.Requests / 3
	}
	if o.RestartAfter == 0 {
		o.RestartAfter = 2 * o.Requests / 3
	}
	if o.HedgeDelay == 0 {
		o.HedgeDelay = 5 * time.Millisecond
	}
	if o.PeerBackoff <= 0 {
		o.PeerBackoff = time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 1024
	}
	if o.TraceDir != "" {
		o.Trace = true
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// NodeCounters is one member's routing activity, summed across its
// incarnations (a killed-and-restarted node has two).
type NodeCounters struct {
	Name       string `json:"name"`
	OwnedLocal int64  `json:"owned_local"`
	Forwards   int64  `json:"forwards"`
	Hedges     int64  `json:"hedges"`
	HedgeWins  int64  `json:"hedge_wins"`
	Retries    int64  `json:"retries"`
	PeerErrors int64  `json:"peer_errors"`
	Degraded   int64  `json:"degraded"`
	Remote     int64  `json:"remote"`
}

// Convergence is the post-restart cache-convergence check: every
// unique path the run served, re-issued directly against the restarted
// node.
type Convergence struct {
	Paths      int `json:"paths"`
	StoreHits  int `json:"store_hits"`
	CacheHits  int `json:"cache_hits"`
	Recomputed int `json:"recomputed"`
	Errors     int `json:"errors"`
}

// HarnessReport aggregates one harness run.
type HarnessReport struct {
	Requests     int         `json:"requests"`
	Failovers    int         `json:"failovers"`
	Mismatches   int         `json:"mismatches"`
	Status       map[int]int `json:"-"`
	DegradedSeen int         `json:"degraded_seen"` // responses carrying X-Capserver-Degraded
	HedgedSeen   int         `json:"hedged_seen"`   // responses carrying X-Capserver-Hedge
	ForwardSeen  int         `json:"forward_seen"`  // responses carrying X-Capserver-Peer

	Killed    string `json:"killed,omitempty"`
	Restarted bool   `json:"restarted"`

	Nodes       []NodeCounters `json:"nodes"`
	Convergence Convergence    `json:"convergence"`

	// Trace is the capstat verdict over the run's merged spans (traced
	// runs only), and TraceMismatches its reconciliation against the
	// routing counters — both must be clean for Assert to pass.
	Trace           *TraceCheck `json:"trace,omitempty"`
	TraceMismatches []string    `json:"trace_mismatches,omitempty"`

	StoreEntries int           `json:"store_entries"`
	Wall         time.Duration `json:"-"`
}

// Throughput returns requests per second over the run.
func (r *HarnessReport) Throughput() float64 {
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Wall.Seconds()
}

// Totals sums the per-node counters.
func (r *HarnessReport) Totals() NodeCounters {
	t := NodeCounters{Name: "total"}
	for _, n := range r.Nodes {
		t.OwnedLocal += n.OwnedLocal
		t.Forwards += n.Forwards
		t.Hedges += n.Hedges
		t.HedgeWins += n.HedgeWins
		t.Retries += n.Retries
		t.PeerErrors += n.PeerErrors
		t.Degraded += n.Degraded
		t.Remote += n.Remote
	}
	return t
}

// CountersByName indexes the per-member counters for reconciliation.
func (r *HarnessReport) CountersByName() map[string]NodeCounters {
	m := make(map[string]NodeCounters, len(r.Nodes))
	for _, n := range r.Nodes {
		m[n.Name] = n
	}
	return m
}

// Format renders the report for humans.
func (r *HarnessReport) Format(w io.Writer) {
	fmt.Fprintf(w, "requests:   %d in %v (%.1f req/s), %d failovers, %d mismatches\n",
		r.Requests, r.Wall.Round(time.Millisecond), r.Throughput(), r.Failovers, r.Mismatches)
	codes := make([]int, 0, len(r.Status))
	for c := range r.Status {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "status %d: %d\n", c, r.Status[c])
	}
	fmt.Fprintf(w, "responses:  %d forwarded, %d hedged, %d degraded\n",
		r.ForwardSeen, r.HedgedSeen, r.DegradedSeen)
	if r.Killed != "" {
		fmt.Fprintf(w, "fault:      killed %s (restarted=%v)\n", r.Killed, r.Restarted)
	}
	for _, n := range append(r.Nodes, r.Totals()) {
		fmt.Fprintf(w, "node %-6s owned=%-4d fwd=%-4d hedge=%d/%d retry=%-3d peer_err=%-3d degraded=%d remote=%d\n",
			n.Name, n.OwnedLocal, n.Forwards, n.HedgeWins, n.Hedges, n.Retries, n.PeerErrors, n.Degraded, n.Remote)
	}
	if r.Trace != nil {
		fmt.Fprintf(w, "trace:      %d requests, %d spans, %d violations, %d counter mismatches\n",
			r.Trace.Requests, r.Trace.Spans, len(r.Trace.Violations), len(r.TraceMismatches))
	}
	if r.Restarted {
		c := r.Convergence
		fmt.Fprintf(w, "convergence: %d paths -> %d store, %d hit, %d recomputed, %d errors\n",
			c.Paths, c.StoreHits, c.CacheHits, c.Recomputed, c.Errors)
	}
	fmt.Fprintf(w, "store:      %d entries\n", r.StoreEntries)
}

// Assert is the acceptance gate for `make cluster-smoke`: byte
// identity must hold for every response, the restarted node must be
// pure cache traffic, and when a node was killed the fault machinery
// must actually have engaged (hedge, retry and degraded counters all
// nonzero).
func (r *HarnessReport) Assert() error {
	var fails []string
	if r.Mismatches != 0 {
		fails = append(fails, fmt.Sprintf("%d responses differ from the single-node oracle", r.Mismatches))
	}
	t := r.Totals()
	if t.Forwards == 0 {
		fails = append(fails, "no request was ever forwarded (dispatch never crossed shards?)")
	}
	if t.Hedges == 0 {
		fails = append(fails, "no hedged request fired")
	}
	if r.Killed != "" {
		if t.Retries == 0 {
			fails = append(fails, "node killed but no peer attempt was retried")
		}
		if t.Degraded == 0 {
			fails = append(fails, "node killed but no request degraded to local compute")
		}
	}
	if r.Restarted {
		c := r.Convergence
		if c.Paths == 0 {
			fails = append(fails, "convergence check ran over zero paths")
		}
		if c.Recomputed != 0 {
			fails = append(fails, fmt.Sprintf("restarted node recomputed %d already-computed points", c.Recomputed))
		}
		if c.Errors != 0 {
			fails = append(fails, fmt.Sprintf("%d convergence probes failed", c.Errors))
		}
	}
	if r.Trace != nil {
		if r.Trace.Spans == 0 {
			fails = append(fails, "tracing was on but no span was recorded")
		}
		for _, v := range r.Trace.Violations {
			fails = append(fails, "trace invariant: "+v)
		}
		for _, m := range r.TraceMismatches {
			fails = append(fails, "trace/counter mismatch: "+m)
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("cluster: harness assertions failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// incarnation is the observable state of one member generation: its
// routing counters and, on traced runs, its tracer and span buffer. A
// killed-and-restarted member has two; the report sums and merges all
// of them.
type incarnation struct {
	metrics *Metrics
	tracer  *obs.Tracer
	buf     *bytes.Buffer
}

// proc is one running node incarnation.
type proc struct {
	name  string
	addr  string
	lis   net.Listener
	hsrv  *http.Server
	srv   *capserver.Server
	node  *Node
	store *casstore.Store
	dead  bool
}

// RunHarness executes a cluster fault-harness run.
func RunHarness(o HarnessOptions) (*HarnessReport, error) {
	o = o.withDefaults()
	if o.KillAfter >= 0 && o.RestartAfter >= 0 && o.RestartAfter <= o.KillAfter {
		return nil, fmt.Errorf("cluster: -restart-after (%d) must exceed -kill-after (%d)", o.RestartAfter, o.KillAfter)
	}
	storeDir := o.StoreDir
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "capcluster-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		storeDir = dir
	}

	// Bind every listener first: the membership needs real addresses
	// before any node can route.
	sortedNames := append([]string(nil), o.Nodes...)
	sort.Strings(sortedNames)
	var mem Membership
	listeners := make(map[string]net.Listener, len(sortedNames))
	for _, name := range sortedNames {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer l.Close() // no-op once a server owns it
		listeners[name] = l
		mem.Members = append(mem.Members, Member{Name: name, URL: "http://" + l.Addr().String()})
	}

	srvCfg := capserver.Config{
		Workers:      o.Workers,
		QueueDepth:   o.QueueDepth,
		CacheEntries: o.CacheEntries,
	}
	nodeCfg := Config{
		Membership:  mem,
		HedgeDelay:  o.HedgeDelay,
		PeerBackoff: o.PeerBackoff,
		PeerTimeout: 30 * time.Second,
	}

	// incarnations collects every generation of every member — current
	// and replaced — so the report sums a member's whole history.
	incarnations := make(map[string][]*incarnation)
	startNode := func(name string, l net.Listener) (*proc, error) {
		st, err := casstore.Open(storeDir)
		if err != nil {
			return nil, err
		}
		cfg := srvCfg
		cfg.Store = st
		srv := capserver.New(cfg)
		ncfg := nodeCfg
		ncfg.Self = name
		ncfg.Metrics = nil // fresh counters per incarnation
		inc := &incarnation{}
		if o.Trace {
			// The generation number seeds the incarnation's trace IDs: a
			// restart resets the per-node sequence, and a distinct seed is
			// what keeps the new incarnation's IDs disjoint from the old.
			inc.buf = &bytes.Buffer{}
			inc.tracer = obs.NewTracer(inc.buf)
			ncfg.Tracer = inc.tracer
			ncfg.TraceSeed = uint64(len(incarnations[name]) + 1)
		}
		node, err := NewNode(srv, ncfg)
		if err != nil {
			return nil, err
		}
		inc.metrics = node.Metrics()
		incarnations[name] = append(incarnations[name], inc)
		p := &proc{
			name:  name,
			addr:  l.Addr().String(),
			lis:   l,
			hsrv:  &http.Server{Handler: node.Handler()},
			srv:   srv,
			node:  node,
			store: st,
		}
		go func() { _ = p.hsrv.Serve(l) }()
		return p, nil
	}

	procs := make(map[string]*proc, len(sortedNames))
	for _, name := range sortedNames {
		p, err := startNode(name, listeners[name])
		if err != nil {
			return nil, err
		}
		procs[name] = p
	}
	defer func() {
		for _, p := range procs {
			if !p.dead {
				_ = p.hsrv.Close()
			}
		}
	}()

	// The oracle: one plain capserver, no cluster, no store. Its
	// bodies are the ground truth every cluster response must match.
	oracleSrv := capserver.New(srvCfg)
	oracleLis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = oracleSrv.Serve(oracleLis) }()
	defer func() { _ = oracleLis.Close() }()
	oracleBase := "http://" + oracleLis.Addr().String()

	client := &http.Client{Timeout: 60 * time.Second}
	oracleBodies := make(map[string][]byte)
	oracleBody := func(path string) ([]byte, error) {
		if b, ok := oracleBodies[path]; ok {
			return b, nil
		}
		resp, err := client.Get(oracleBase + path)
		if err != nil {
			return nil, fmt.Errorf("oracle %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("oracle %s: status %d", path, resp.StatusCode)
		}
		oracleBodies[path] = b
		return b, nil
	}

	plan := capserver.PlanPaths(capserver.LoadOptions{
		Requests: o.Requests,
		Seed:     o.Seed,
		Unique:   o.Unique,
		ExactN:   o.ExactN,
	})

	killName := o.KillNode
	if killName == "" {
		killName = sortedNames[len(sortedNames)/2]
	}
	if _, ok := procs[killName]; !ok {
		return nil, fmt.Errorf("cluster: kill node %q is not a member", killName)
	}

	report := &HarnessReport{Requests: len(plan), Status: make(map[int]int)}
	dispatch := rng.NewStream(o.Seed, 0xd15)
	var servedPaths []string
	seenPath := make(map[string]bool)

	start := time.Now()
	for i, req := range plan {
		if o.KillAfter >= 0 && i == o.KillAfter {
			p := procs[killName]
			_ = p.hsrv.Close()
			p.dead = true
			report.Killed = killName
			fmt.Fprintf(o.Out, "request %d: killed %s (%s)\n", i, killName, p.addr)
		}
		if o.KillAfter >= 0 && o.RestartAfter >= 0 && i == o.RestartAfter {
			old := procs[killName]
			l, err := net.Listen("tcp", old.addr)
			if err != nil {
				return nil, fmt.Errorf("cluster: restart %s on %s: %v", killName, old.addr, err)
			}
			p, err := startNode(killName, l)
			if err != nil {
				return nil, err
			}
			procs[killName] = p
			report.Restarted = true
			fmt.Fprintf(o.Out, "request %d: restarted %s (%s) cold over the shared store\n", i, killName, p.addr)
		}

		// Client-side dispatch: a seeded pick over all members, with
		// failover rotation on transport errors (the client does not
		// know which node is dead — it discovers it).
		pick := dispatch.Intn(len(sortedNames))
		var resp *http.Response
		var lastErr error
		for attempt := 0; attempt < len(sortedNames); attempt++ {
			p := procs[sortedNames[(pick+attempt)%len(sortedNames)]]
			resp, lastErr = client.Get("http://" + p.addr + req.Path)
			if lastErr == nil {
				break
			}
			report.Failovers++
		}
		if lastErr != nil {
			report.Mismatches++
			fmt.Fprintf(o.Out, "request %d: every node refused %s: %v\n", i, req.Path, lastErr)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			report.Mismatches++
			continue
		}
		report.Status[resp.StatusCode]++
		if resp.Header.Get(PeerHeader) != "" {
			report.ForwardSeen++
		}
		if resp.Header.Get(HedgeHeader) != "" {
			report.HedgedSeen++
		}
		if resp.Header.Get(DegradedHeader) != "" {
			report.DegradedSeen++
		}
		want, err := oracleBody(req.Path)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK || string(body) != string(want) {
			report.Mismatches++
			fmt.Fprintf(o.Out, "request %d: %s: status %d, body diverges from oracle\n", i, req.Path, resp.StatusCode)
			continue
		}
		if !seenPath[req.Path] {
			seenPath[req.Path] = true
			servedPaths = append(servedPaths, req.Path)
		}
	}
	report.Wall = time.Since(start)

	// Convergence: the restarted node, asked directly (pre-routed so
	// it cannot forward), must serve every path the run computed from
	// its LRU or the shared store — never by recomputing.
	if report.Restarted {
		p := procs[killName]
		report.Convergence.Paths = len(servedPaths)
		for _, path := range servedPaths {
			hreq, err := http.NewRequest(http.MethodGet, "http://"+p.addr+path, nil)
			if err != nil {
				return nil, err
			}
			hreq.Header.Set(ForwardedHeader, "harness")
			resp, err := client.Do(hreq)
			if err != nil {
				report.Convergence.Errors++
				continue
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				report.Convergence.Errors++
				continue
			}
			switch resp.Header.Get("X-Capserver-Cache") {
			case "store":
				report.Convergence.StoreHits++
			case "hit":
				report.Convergence.CacheHits++
			default:
				report.Convergence.Recomputed++
			}
		}
	}

	// On traced runs, quiesce before reading counters and spans: a
	// hedge loser or backoff-waiting retry goroutine can increment its
	// counter and emit its span microseconds after the client already
	// has the response, and reconciliation demands both sides of every
	// such pair land in the snapshot. The settle bounds those
	// stragglers (their contexts are canceled; backoffs are
	// milliseconds), and the graceful shutdown then drains every
	// still-running handler so nothing races the collection.
	if o.Trace {
		time.Sleep(300 * time.Millisecond)
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for _, name := range sortedNames {
			if p := procs[name]; !p.dead {
				_ = p.hsrv.Shutdown(sctx)
				p.dead = true
			}
		}
		cancel()
	}

	// Per-member counters across every incarnation.
	for _, name := range sortedNames {
		c := NodeCounters{Name: name}
		for _, inc := range incarnations[name] {
			m := inc.metrics
			c.OwnedLocal += m.OwnedLocal()
			c.Forwards += m.Forwards()
			c.Hedges += m.Hedges()
			c.HedgeWins += m.HedgeWins()
			c.Retries += m.Retries()
			c.PeerErrors += m.PeerErrors()
			c.Degraded += m.Degraded()
			c.Remote += m.Remote()
		}
		report.Nodes = append(report.Nodes, c)
	}

	// Merge each member's incarnation traces, analyze, and reconcile
	// against the counters just read.
	if o.Trace {
		traces := make(map[string][]byte, len(sortedNames))
		var allSpans []obs.ReqSpan
		for _, name := range sortedNames {
			var merged bytes.Buffer
			for _, inc := range incarnations[name] {
				if err := inc.tracer.Flush(); err != nil {
					return nil, fmt.Errorf("cluster: flushing %s trace: %v", name, err)
				}
				merged.Write(inc.buf.Bytes())
			}
			traces[name] = append([]byte(nil), merged.Bytes()...)
			spans, err := obs.ReadReqSpans(&merged)
			if err != nil {
				return nil, fmt.Errorf("cluster: parsing %s trace: %v", name, err)
			}
			allSpans = append(allSpans, spans...)
		}
		check := AnalyzeSpans(allSpans)
		report.Trace = &check
		report.TraceMismatches = check.Reconcile(report.CountersByName())
		if o.TraceDir != "" {
			if err := writeTraceDir(o.TraceDir, traces, report.CountersByName()); err != nil {
				return nil, err
			}
			fmt.Fprintf(o.Out, "trace: wrote %d per-node files and counters.json to %s\n", len(traces), o.TraceDir)
		}
	}

	if st, err := casstore.Open(storeDir); err == nil {
		if n, err := st.Len(); err == nil {
			report.StoreEntries = n
		}
	}
	return report, nil
}

// writeTraceDir lays the run's traces out the way cmd/capstat ingests
// them: one JSONL trace per member plus the per-member routing
// counters, so `capstat -counters <dir>/counters.json <dir>/*.jsonl`
// replays exactly the reconciliation the harness just performed.
func writeTraceDir(dir string, traces map[string][]byte, counters map[string]NodeCounters) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, data := range traces {
		if err := os.WriteFile(filepath.Join(dir, name+".jsonl"), data, 0o644); err != nil {
			return err
		}
	}
	body, err := json.MarshalIndent(counters, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "counters.json"), append(body, '\n'), 0o644)
}
