// Package sched implements the paper's Section 3.1 operating-system
// substrate: a discrete-event uniprocessor simulator in which a covert
// sender and receiver communicate through a shared variable while a
// scheduler — the "candidate system implementation" the paper's method
// evaluates — decides who runs each quantum.
//
// Because only one process runs at a time, the sender may be scheduled
// twice before the receiver reads (the written symbol is overwritten: a
// deletion) or the receiver twice before the sender writes again (a
// stale value is re-read: an insertion). The package extracts the
// empirical deletion and insertion probabilities a scheduling policy
// induces and feeds them to the capacity estimates in package core, and
// it runs the full Appendix A counter protocol inside the simulated
// system end to end.
package sched

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Scheduler picks the next process to run from the ready set.
// Implementations may keep state across calls (for example round-robin
// position); a fresh scheduler must be used per simulation run.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick returns one element of ready (which is non-empty and sorted
	// ascending). src supplies any randomness the policy needs.
	Pick(ready []int, src *rng.Source) int
}

// RoundRobin cycles through processes in id order, skipping blocked
// ones. The zero value starts before process 0.
type RoundRobin struct {
	last int
	init bool
}

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler: the ready process with the smallest id
// strictly greater than the previously run id, wrapping around.
func (r *RoundRobin) Pick(ready []int, _ *rng.Source) int {
	if !r.init {
		r.init = true
		r.last = ready[0]
		return ready[0]
	}
	for _, id := range ready {
		if id > r.last {
			r.last = id
			return id
		}
	}
	r.last = ready[0]
	return ready[0]
}

// Random picks uniformly among ready processes, the memoryless policy
// that induces the textbook deletion–insertion behaviour.
type Random struct{}

// NewRandom returns the uniform random scheduler.
func NewRandom() *Random { return &Random{} }

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Pick implements Scheduler.
func (Random) Pick(ready []int, src *rng.Source) int {
	return ready[src.Intn(len(ready))]
}

// Lottery holds tickets per process id and picks with probability
// proportional to tickets (Waldspurger-style lottery scheduling).
type Lottery struct {
	tickets []int
}

// NewLottery returns a lottery scheduler with the given tickets per
// process id. It returns an error if any ticket count is non-positive.
func NewLottery(tickets []int) (*Lottery, error) {
	if len(tickets) == 0 {
		return nil, fmt.Errorf("sched: lottery needs tickets")
	}
	for i, n := range tickets {
		if n <= 0 {
			return nil, fmt.Errorf("sched: process %d has %d tickets, want positive", i, n)
		}
	}
	return &Lottery{tickets: append([]int(nil), tickets...)}, nil
}

// Name implements Scheduler.
func (l *Lottery) Name() string { return "lottery" }

// Pick implements Scheduler.
func (l *Lottery) Pick(ready []int, src *rng.Source) int {
	total := 0
	for _, id := range ready {
		total += l.ticketsFor(id)
	}
	draw := src.Intn(total)
	for _, id := range ready {
		draw -= l.ticketsFor(id)
		if draw < 0 {
			return id
		}
	}
	return ready[len(ready)-1]
}

func (l *Lottery) ticketsFor(id int) int {
	if id < len(l.tickets) {
		return l.tickets[id]
	}
	return 1
}

// Fuzzy wraps a base policy and, with probability pRandom, picks a
// uniformly random ready process instead — modeling the noise-injecting
// countermeasures high-assurance systems deploy against covert timing
// channels (Section 3.1's "make the covert channels harder to exploit").
type Fuzzy struct {
	base    Scheduler
	pRandom float64
}

// NewFuzzy wraps base with random perturbation probability pRandom.
func NewFuzzy(base Scheduler, pRandom float64) (*Fuzzy, error) {
	if base == nil {
		return nil, fmt.Errorf("sched: nil base scheduler")
	}
	if math.IsNaN(pRandom) || pRandom < 0 || pRandom > 1 {
		return nil, fmt.Errorf("sched: perturbation probability %v out of [0,1]", pRandom)
	}
	return &Fuzzy{base: base, pRandom: pRandom}, nil
}

// Name implements Scheduler.
func (f *Fuzzy) Name() string { return fmt.Sprintf("fuzzy(%s)", f.base.Name()) }

// Pick implements Scheduler.
func (f *Fuzzy) Pick(ready []int, src *rng.Source) int {
	if src.Bool(f.pRandom) {
		return ready[src.Intn(len(ready))]
	}
	return f.base.Pick(ready, src)
}
