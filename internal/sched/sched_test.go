package sched

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	valid := Config{Scheduler: NewRandom(), Quanta: 100, Seed: 1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		cfg  Config
	}{
		{"nil scheduler", Config{Quanta: 1}},
		{"negative bystanders", Config{Scheduler: NewRandom(), Bystanders: -1, Quanta: 1}},
		{"bad pblock", Config{Scheduler: NewRandom(), PBlock: 2, Quanta: 1}},
		{"bad meanblock", Config{Scheduler: NewRandom(), PBlock: 0.5, MeanBlock: 0.2, Quanta: 1}},
		{"zero quanta", Config{Scheduler: NewRandom()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestRoundRobinAlternationIsPerfect(t *testing.T) {
	// With no bystanders and no blocking, round-robin alternates
	// S,R,S,R: a perfectly synchronous covert channel (Pd = Pi = 0).
	rep, err := Run(Config{Scheduler: NewRoundRobin(), Quanta: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pd, pi := rep.Rates()
	if pd != 0 || pi != 0 {
		t.Fatalf("round-robin induced pd=%v pi=%v, want 0, 0", pd, pi)
	}
	if rep.Transmissions == 0 {
		t.Fatal("no transmissions recorded")
	}
}

func TestRandomSchedulerInducesDeletionsAndInsertions(t *testing.T) {
	// Uniform random between the pair: P(SS) = P(RR) = 1/4 of adjacent
	// pairs, so the induced channel has pd = pi ~ 1/3 (deletions and
	// insertions each make up a third of the induced uses: for a
	// symmetric random walk, transmissions = SR transitions).
	rep, err := Run(Config{Scheduler: NewRandom(), Quanta: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pd, pi := rep.Rates()
	if math.Abs(pd-pi) > 0.02 {
		t.Errorf("symmetric policy should induce pd ~ pi, got %v vs %v", pd, pi)
	}
	if pd < 0.2 || pd > 0.45 {
		t.Errorf("random policy pd = %v, expected a substantial rate", pd)
	}
	if rep.Uses() != rep.Transmissions+rep.Deletions+rep.Insertions {
		t.Error("Uses accounting inconsistent")
	}
}

func TestBystandersReduceThroughputNotRates(t *testing.T) {
	// Bystander quanta slow the pair down but S/R ordering statistics
	// (and hence pd, pi) stay roughly those of the random policy.
	with, err := Run(Config{Scheduler: NewRandom(), Bystanders: 6, Quanta: 400000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(Config{Scheduler: NewRandom(), Quanta: 400000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if with.BystanderRuns == 0 {
		t.Fatal("bystanders never ran")
	}
	if with.Uses() >= without.Uses() {
		t.Error("bystanders should reduce channel uses per quantum")
	}
	pdWith, _ := with.Rates()
	pdWithout, _ := without.Rates()
	if math.Abs(pdWith-pdWithout) > 0.05 {
		t.Errorf("pd changed with bystanders: %v vs %v", pdWith, pdWithout)
	}
}

func TestBlockingCreatesAsymmetry(t *testing.T) {
	rep, err := Run(Config{
		Scheduler: NewRoundRobin(),
		PBlock:    0.3,
		MeanBlock: 3,
		Quanta:    100000,
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	pd, pi := rep.Rates()
	// Blocking breaks round-robin's perfect alternation.
	if pd == 0 && pi == 0 {
		t.Fatal("blocking should induce deletions or insertions under round-robin")
	}
}

func TestFuzzySchedulerDegradesChannel(t *testing.T) {
	// The fuzzy countermeasure should push the induced Pd up relative
	// to plain round-robin, reducing estimated capacity (the paper's
	// stated use of the method: rank candidate schedulers).
	base, err := Run(Config{Scheduler: NewRoundRobin(), Quanta: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := NewFuzzy(NewRoundRobin(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fuzzed, err := Run(Config{Scheduler: fz, Quanta: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pdBase, _ := base.Rates()
	pdFuzz, _ := fuzzed.Rates()
	if pdFuzz <= pdBase {
		t.Fatalf("fuzzy policy pd %v should exceed round-robin pd %v", pdFuzz, pdBase)
	}
	// Corrected capacity estimate must drop accordingly.
	cBase, err := core.Degrade(1, pdBase)
	if err != nil {
		t.Fatal(err)
	}
	cFuzz, err := core.Degrade(1, pdFuzz)
	if err != nil {
		t.Fatal(err)
	}
	if cFuzz >= cBase {
		t.Fatalf("corrected capacity should drop: %v vs %v", cFuzz, cBase)
	}
}

func TestLotteryBiasMatters(t *testing.T) {
	// Favouring the sender 4:1 makes sender double-runs (deletions)
	// far more common than insertions.
	lot, err := NewLottery([]int{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Scheduler: lot, Quanta: 200000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pd, pi := rep.Rates()
	if pd <= pi {
		t.Fatalf("sender-biased lottery: pd %v should exceed pi %v", pd, pi)
	}
}

func TestLotteryValidation(t *testing.T) {
	if _, err := NewLottery(nil); err == nil {
		t.Error("expected error for empty tickets")
	}
	if _, err := NewLottery([]int{1, 0}); err == nil {
		t.Error("expected error for zero tickets")
	}
}

func TestLotteryDefaultTickets(t *testing.T) {
	lot, err := NewLottery([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Process 5 has no explicit tickets; default weight 1 applies and
	// Pick must still return a valid member.
	src := rng.New(7)
	for i := 0; i < 100; i++ {
		got := lot.Pick([]int{0, 5}, src)
		if got != 0 && got != 5 {
			t.Fatalf("Pick returned %d", got)
		}
	}
}

func TestFuzzyValidation(t *testing.T) {
	if _, err := NewFuzzy(nil, 0.5); err == nil {
		t.Error("expected error for nil base")
	}
	if _, err := NewFuzzy(NewRandom(), -0.1); err == nil {
		t.Error("expected error for bad probability")
	}
}

func TestSchedulerNames(t *testing.T) {
	lot, err := NewLottery([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := NewFuzzy(NewRoundRobin(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		s    Scheduler
		want string
	}{
		{NewRoundRobin(), "round-robin"},
		{NewRandom(), "random"},
		{lot, "lottery"},
		{fz, "fuzzy(round-robin)"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.want {
			t.Errorf("Name = %q, want %q", got, tt.want)
		}
	}
}

func TestRoundRobinPickCycles(t *testing.T) {
	rr := NewRoundRobin()
	ready := []int{0, 1, 2}
	src := rng.New(1)
	var got []int
	for i := 0; i < 6; i++ {
		got = append(got, rr.Pick(ready, src))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsBlocked(t *testing.T) {
	rr := NewRoundRobin()
	src := rng.New(1)
	if got := rr.Pick([]int{0, 1, 2}, src); got != 0 {
		t.Fatalf("first pick %d, want 0", got)
	}
	// Process 1 blocked: next pick should be 2.
	if got := rr.Pick([]int{0, 2}, src); got != 2 {
		t.Fatalf("pick with 1 blocked = %d, want 2", got)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{Scheduler: NewRandom(), Bystanders: 2, PBlock: 0.2, MeanBlock: 2, Quanta: 50000, Seed: 42}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheduler = NewRandom() // fresh stateful scheduler
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
}

func TestRunCovertSessionRoundRobin(t *testing.T) {
	// Perfect alternation: message delivered error-free, one symbol
	// per two quanta.
	msg := randomMessage(8, 500, 4)
	res, err := RunCovertSession(Config{Scheduler: NewRoundRobin(), Quanta: 100000, Seed: 9}, msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.SymbolErrors != 0 {
		t.Fatalf("round-robin session %+v", res)
	}
	if got := res.BitsPerQuantum(); math.Abs(got-2) > 0.1 {
		t.Fatalf("rate %v bits/quantum, want ~2 (4 bits per 2 quanta)", got)
	}
}

func TestRunCovertSessionRandomMatchesPrediction(t *testing.T) {
	// E8 end-to-end: run the counter protocol under the random
	// scheduler, and compare the measured rate with the paper's
	// corrected estimate computed from the scheduler's empirical rates.
	msg := randomMessage(10, 4000, 4)
	cfg := Config{Scheduler: NewRandom(), Quanta: 2000000, Seed: 11}
	res, err := RunCovertSession(cfg, msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("session did not complete")
	}
	if res.ErrorRate() == 0 {
		t.Fatal("random scheduling should cause stale-read errors")
	}
	// The counter protocol prevents overwrites, so the effective event
	// process differs from the naive Run probe; just require the
	// measured rate to be positive and below the 2 bits/quantum
	// synchronous ceiling (4-bit symbol per 2 quanta).
	rate := res.BitsPerQuantum()
	if rate <= 0 || rate >= 2 {
		t.Fatalf("rate %v bits/quantum out of (0, 2)", rate)
	}
}

func TestRunCovertSessionValidation(t *testing.T) {
	msg := []uint32{1}
	if _, err := RunCovertSession(Config{Quanta: 1}, msg, 4); err == nil {
		t.Error("expected config error")
	}
	if _, err := RunCovertSession(Config{Scheduler: NewRandom(), Quanta: 1}, msg, 0); err == nil {
		t.Error("expected width error")
	}
	if _, err := RunCovertSession(Config{Scheduler: NewRandom(), Quanta: 1}, []uint32{16}, 4); err == nil {
		t.Error("expected alphabet error")
	}
}

func TestRunCovertSessionIncomplete(t *testing.T) {
	msg := randomMessage(12, 1000, 4)
	res, err := RunCovertSession(Config{Scheduler: NewRoundRobin(), Quanta: 10, Seed: 13}, msg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("10 quanta cannot deliver 1000 symbols")
	}
	if res.Delivered >= len(msg) {
		t.Fatalf("delivered %d of %d", res.Delivered, len(msg))
	}
}

func TestSessionResultZero(t *testing.T) {
	var r SessionResult
	if r.BitsPerQuantum() != 0 || r.ErrorRate() != 0 {
		t.Fatal("zero SessionResult should report zero rates")
	}
}

// randomMessage builds a deterministic n-bit-symbol message.
func randomMessage(seed uint64, count, width int) []uint32 {
	src := rng.New(seed)
	msg := make([]uint32, count)
	for i := range msg {
		msg[i] = src.Symbol(width)
	}
	return msg
}
