package sched

import (
	"testing"

	"repro/internal/rng"
)

func TestNewPriorityAgingValidation(t *testing.T) {
	if _, err := NewPriorityAging(nil, -1); err == nil {
		t.Fatal("expected aging error")
	}
}

func TestPriorityAgingPrefersHighBase(t *testing.T) {
	p, err := NewPriorityAging([]int{0, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(1)
	for i := 0; i < 10; i++ {
		if got := p.Pick([]int{0, 1}, src); got != 1 {
			t.Fatalf("pick %d, want high-priority process 1", got)
		}
	}
}

func TestPriorityAgingPreventsStarvation(t *testing.T) {
	p, err := NewPriorityAging([]int{0, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(2)
	ranLow := false
	for i := 0; i < 20; i++ {
		if p.Pick([]int{0, 1}, src) == 0 {
			ranLow = true
			break
		}
	}
	if !ranLow {
		t.Fatal("aging never let the low-priority process run")
	}
}

func TestPriorityAgingAlternatesWhenEqual(t *testing.T) {
	// Equal base priorities with aging: strict alternation between two
	// processes (the waiter always accumulates more credit).
	p, err := NewPriorityAging([]int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(3)
	first := p.Pick([]int{0, 1}, src)
	for i := 0; i < 10; i++ {
		next := p.Pick([]int{0, 1}, src)
		if next == first {
			t.Fatalf("step %d: no alternation (ran %d twice)", i, next)
		}
		first = next
	}
}

func TestPriorityAgingOnSystem(t *testing.T) {
	p, err := NewPriorityAging([]int{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Scheduler: p, Quanta: 20000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pd, pi := rep.Rates()
	// Alternation means a clean covert channel.
	if pd != 0 || pi != 0 {
		t.Fatalf("aging alternation should induce pd=pi=0, got %v, %v", pd, pi)
	}
}

func TestNewMLFQValidation(t *testing.T) {
	if _, err := NewMLFQ(1, 10); err == nil {
		t.Error("expected level error")
	}
	if _, err := NewMLFQ(3, 0); err == nil {
		t.Error("expected boost error")
	}
}

func TestMLFQDemotesRunners(t *testing.T) {
	m, err := NewMLFQ(3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5)
	// First pick runs process 0 (round-robin from id 0), demoting it;
	// process 1 at the top level must run next.
	if got := m.Pick([]int{0, 1}, src); got != 0 && got != 1 {
		t.Fatalf("pick %d out of ready set", got)
	}
	first := m.lastInLevel[0]
	second := m.Pick([]int{0, 1}, src)
	if second == first {
		t.Fatalf("MLFQ ran %d twice while a top-level process waited", second)
	}
}

func TestMLFQBoostResets(t *testing.T) {
	m, err := NewMLFQ(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	for i := 0; i < 20; i++ {
		m.Pick([]int{0, 1, 2}, src)
	}
	// After many picks with periodic boosts nothing should be stuck at
	// the bottom level forever; just check state sanity.
	for id, lvl := range m.level {
		if lvl < 0 || lvl > 1 {
			t.Fatalf("process %d at invalid level %d", id, lvl)
		}
	}
}

func TestMLFQOnSystemInducesChannelEvents(t *testing.T) {
	m, err := NewMLFQ(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{Scheduler: m, Bystanders: 2, Quanta: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Uses() == 0 {
		t.Fatal("MLFQ system produced no channel events")
	}
}

func TestNewPolicyNames(t *testing.T) {
	p, err := NewPriorityAging(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "priority-aging" {
		t.Errorf("Name = %q", p.Name())
	}
	m, err := NewMLFQ(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mlfq" {
		t.Errorf("Name = %q", m.Name())
	}
}
