package sched

import (
	"fmt"

	"repro/internal/stats"
)

// SessionResult reports an end-to-end covert transfer inside the
// simulated system using the Appendix A counter protocol over shared
// variables: the data variable carries symbols, and the receiver's
// activation count — visible to the sender through a second shared
// variable — is the perfect feedback path.
type SessionResult struct {
	// Policy is the scheduler's name.
	Policy string
	// Quanta is the number of quanta consumed (may be less than the
	// budget if the message completed early).
	Quanta int
	// SenderRuns and ReceiverRuns count the pair's activations.
	SenderRuns, ReceiverRuns int
	// Delivered is the number of message positions resolved.
	Delivered int
	// SymbolErrors counts resolved positions holding a wrong symbol
	// (slots filled by stale re-reads).
	SymbolErrors int
	// SkippedSymbols counts message symbols skipped to re-synchronize.
	SkippedSymbols int
	// MutualInfoPerSlot is the empirical per-slot mutual information.
	MutualInfoPerSlot float64
	// Completed reports whether the whole message was resolved within
	// the quantum budget.
	Completed bool
}

// BitsPerQuantum returns the measured information rate in bits per
// scheduling quantum, the physical rate of the covert channel.
func (r SessionResult) BitsPerQuantum() float64 {
	if r.Quanta == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Quanta) * r.MutualInfoPerSlot
}

// ErrorRate returns the fraction of delivered slots in error.
func (r SessionResult) ErrorRate() float64 {
	if r.Delivered == 0 {
		return 0
	}
	return float64(r.SymbolErrors) / float64(r.Delivered)
}

// RunCovertSession executes the counter protocol between the simulated
// sender and receiver for an n-bit-symbol message. cfg.Quanta bounds the
// run; the session ends early once the message is fully resolved.
func RunCovertSession(cfg Config, msg []uint32, n int) (SessionResult, error) {
	if err := cfg.Validate(); err != nil {
		return SessionResult{}, err
	}
	if n < 1 || n > 16 {
		return SessionResult{}, fmt.Errorf("sched: symbol width %d out of [1,16]", n)
	}
	limit := uint32(1) << uint(n)
	for i, s := range msg {
		if s >= limit {
			return SessionResult{}, fmt.Errorf("sched: message symbol %d (=%d) outside %d-bit alphabet", i, s, n)
		}
	}

	res := SessionResult{Policy: cfg.Scheduler.Name()}
	var (
		data     uint32 // shared data variable (initially stale noise)
		received = make([]uint32, 0, len(msg))
		sent     int // sender counter: symbols sent or skipped
		done     bool
	)
	sys := newSystem(cfg, nil)
	data = sys.src.Symbol(n)
	sys.onRun = func(kind activationKind, q int) {
		if done {
			return
		}
		res.Quanta = q + 1
		switch kind {
		case actSender:
			res.SenderRuns++
			// Perfect feedback: the receiver's count is readable.
			r := len(received)
			if r >= len(msg) {
				done = true
				return
			}
			if r >= sent {
				// Skip past inserted slots, then send the symbol for
				// the receiver's next position.
				res.SkippedSymbols += r - sent
				data = msg[r]
				sent = r + 1
			}
			// r < sent: the written symbol is still unread; wait.
		case actReceiver:
			res.ReceiverRuns++
			if len(received) < len(msg) {
				received = append(received, data)
				if len(received) == len(msg) {
					done = true
				}
			}
		}
	}
	if err := sys.run(); err != nil {
		return SessionResult{}, err
	}
	res.Completed = len(received) == len(msg)
	res.Delivered = len(received)
	jc, err := stats.NewJointCounter(int(limit), int(limit))
	if err != nil {
		return SessionResult{}, err
	}
	for k, got := range received {
		if got != msg[k] {
			res.SymbolErrors++
		}
		if err := jc.Add(int(msg[k]), int(got)); err != nil {
			return SessionResult{}, err
		}
	}
	res.MutualInfoPerSlot = jc.MutualInformation()
	return res, nil
}
