package sched

import (
	"fmt"

	"repro/internal/rng"
)

// Additional scheduling policies for the Section 3 evaluation: a
// priority scheduler with aging and a multi-level feedback queue.
// Both are classic "candidate system implementations" whose effect on
// covert channel capacity the paper's method quantifies.

// PriorityAging schedules the highest-priority ready process, where a
// process's effective priority is its base priority plus an aging
// credit that grows while it waits (preventing starvation). Ties break
// by process id.
type PriorityAging struct {
	base  []int
	wait  []int
	aging int
}

// NewPriorityAging returns the policy. base[i] is process i's base
// priority (higher runs first; missing entries default to 0); aging is
// the priority gained per quantum spent waiting (>= 0).
func NewPriorityAging(base []int, aging int) (*PriorityAging, error) {
	if aging < 0 {
		return nil, fmt.Errorf("sched: negative aging %d", aging)
	}
	return &PriorityAging{base: append([]int(nil), base...), aging: aging}, nil
}

// Name implements Scheduler.
func (p *PriorityAging) Name() string { return "priority-aging" }

// Pick implements Scheduler.
func (p *PriorityAging) Pick(ready []int, _ *rng.Source) int {
	maxID := ready[len(ready)-1]
	for len(p.wait) <= maxID {
		p.wait = append(p.wait, 0)
	}
	best := ready[0]
	bestPrio := p.effective(best)
	for _, id := range ready[1:] {
		if prio := p.effective(id); prio > bestPrio {
			best, bestPrio = id, prio
		}
	}
	for _, id := range ready {
		if id == best {
			p.wait[id] = 0
		} else {
			p.wait[id]++
		}
	}
	return best
}

// effective returns base priority plus the aging credit.
func (p *PriorityAging) effective(id int) int {
	prio := 0
	if id < len(p.base) {
		prio = p.base[id]
	}
	return prio + p.aging*p.wait[id]
}

// MLFQ is a multi-level feedback queue: a process that runs drops one
// level (lower priority); a process that waits long enough is boosted
// back to the top level. Within a level, round-robin by id.
type MLFQ struct {
	levels      int
	boostEvery  int
	level       []int
	wait        []int
	lastInLevel []int
	ticks       int
}

// NewMLFQ returns an MLFQ with the given number of levels (>= 2) and
// boost period in quanta (>= 1).
func NewMLFQ(levels, boostEvery int) (*MLFQ, error) {
	if levels < 2 {
		return nil, fmt.Errorf("sched: MLFQ needs >= 2 levels, got %d", levels)
	}
	if boostEvery < 1 {
		return nil, fmt.Errorf("sched: MLFQ boost period %d, want >= 1", boostEvery)
	}
	return &MLFQ{levels: levels, boostEvery: boostEvery, lastInLevel: make([]int, levels)}, nil
}

// Name implements Scheduler.
func (m *MLFQ) Name() string { return "mlfq" }

// Pick implements Scheduler.
func (m *MLFQ) Pick(ready []int, _ *rng.Source) int {
	maxID := ready[len(ready)-1]
	for len(m.level) <= maxID {
		m.level = append(m.level, 0)
		m.wait = append(m.wait, 0)
	}
	m.ticks++
	if m.ticks%m.boostEvery == 0 {
		for i := range m.level {
			m.level[i] = 0
		}
	}
	// Highest level (smallest level index) wins; round-robin inside.
	bestLevel := m.levels
	for _, id := range ready {
		if m.level[id] < bestLevel {
			bestLevel = m.level[id]
		}
	}
	var pool []int
	for _, id := range ready {
		if m.level[id] == bestLevel {
			pool = append(pool, id)
		}
	}
	pick := pool[0]
	last := m.lastInLevel[bestLevel]
	for _, id := range pool {
		if id > last {
			pick = id
			break
		}
	}
	m.lastInLevel[bestLevel] = pick
	// The process that ran sinks one level.
	if m.level[pick] < m.levels-1 {
		m.level[pick]++
	}
	return pick
}
