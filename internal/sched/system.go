package sched

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

// Config describes one uniprocessor simulation.
type Config struct {
	// Scheduler is the policy under evaluation. Required; use a fresh
	// instance per run (policies may be stateful).
	Scheduler Scheduler
	// Bystanders is the number of unrelated CPU-bound processes sharing
	// the machine with the covert pair.
	Bystanders int
	// PBlock is the probability a process blocks (for I/O) at the end
	// of its quantum instead of staying ready.
	PBlock float64
	// MeanBlock is the mean block duration in quanta (geometric).
	// Ignored when PBlock is 0; otherwise must be >= 1.
	MeanBlock float64
	// Quanta is the number of scheduling quanta to simulate.
	Quanta int
	// Seed drives all randomness in the run.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Scheduler == nil {
		return fmt.Errorf("sched: nil scheduler")
	}
	if c.Bystanders < 0 {
		return fmt.Errorf("sched: negative bystander count %d", c.Bystanders)
	}
	if c.PBlock < 0 || c.PBlock > 1 {
		return fmt.Errorf("sched: block probability %v out of [0,1]", c.PBlock)
	}
	if c.PBlock > 0 && c.MeanBlock < 1 {
		return fmt.Errorf("sched: mean block %v quanta, want >= 1", c.MeanBlock)
	}
	if c.Quanta < 1 {
		return fmt.Errorf("sched: quanta %d, want >= 1", c.Quanta)
	}
	return nil
}

// Process ids of the covert pair.
const (
	SenderID   = 0
	ReceiverID = 1
)

// Report summarizes the channel a scheduling policy induces between the
// covert pair.
type Report struct {
	// Policy is the scheduler's name.
	Policy string
	// Quanta is the number of quanta simulated.
	Quanta int
	// SenderRuns, ReceiverRuns, BystanderRuns count activations.
	SenderRuns, ReceiverRuns, BystanderRuns int
	// Transmissions, Deletions, Insertions are the Definition 1 events
	// induced by the activation pattern: a sender activation that
	// overwrites an unread symbol is a deletion; a receiver activation
	// that re-reads a stale symbol is an insertion.
	Transmissions, Deletions, Insertions int
}

// Uses returns the induced channel uses.
func (r Report) Uses() int { return r.Transmissions + r.Deletions + r.Insertions }

// Rates returns the empirical Pd and Pi of the induced channel.
func (r Report) Rates() (pd, pi float64) {
	uses := r.Uses()
	if uses == 0 {
		return 0, 0
	}
	return float64(r.Deletions) / float64(uses), float64(r.Insertions) / float64(uses)
}

// activationKind tags who ran a quantum.
type activationKind int

const (
	actSender activationKind = iota + 1
	actReceiver
	actBystander
)

// system carries the mutable state of one simulation run.
type system struct {
	cfg     Config
	src     *rng.Source
	kernel  sim.Kernel
	blocked []bool
	// onRun, if non-nil, is invoked for every quantum with who ran.
	onRun func(activationKind, int)
}

// newSystem builds the process set: sender, receiver, bystanders.
func newSystem(cfg Config, onRun func(activationKind, int)) *system {
	return &system{
		cfg:     cfg,
		src:     rng.New(cfg.Seed),
		blocked: make([]bool, 2+cfg.Bystanders),
		onRun:   onRun,
	}
}

// run simulates cfg.Quanta scheduling quanta.
func (s *system) run() error {
	for q := 0; q < s.cfg.Quanta; q++ {
		// Unblock processes whose I/O completed by this quantum.
		s.kernel.RunUntil(float64(q))
		ready := make([]int, 0, len(s.blocked))
		for id, b := range s.blocked {
			if !b {
				ready = append(ready, id)
			}
		}
		if len(ready) == 0 {
			// Idle quantum: everyone is blocked.
			continue
		}
		id := s.cfg.Scheduler.Pick(ready, s.src)
		if s.onRun != nil {
			switch id {
			case SenderID:
				s.onRun(actSender, q)
			case ReceiverID:
				s.onRun(actReceiver, q)
			default:
				s.onRun(actBystander, q)
			}
		}
		// End of quantum: maybe block for I/O.
		if s.cfg.PBlock > 0 && s.src.Bool(s.cfg.PBlock) {
			s.blocked[id] = true
			// Geometric duration with the configured mean, at least 1.
			dur := 1.0
			for s.src.Float64() > 1/s.cfg.MeanBlock {
				dur++
			}
			id := id
			if err := s.kernel.Schedule(dur, func() { s.blocked[id] = false }); err != nil {
				return err
			}
		}
	}
	return nil
}

// Run simulates the system with a naive covert pair (the sender writes
// a fresh symbol every time it runs; the receiver reads every time it
// runs) and reports the induced channel events — the measurement the
// paper's method needs to estimate Pd for a given scheduler.
func Run(cfg Config) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Policy: cfg.Scheduler.Name(), Quanta: cfg.Quanta}
	pending := false // sender has written since the last read
	sys := newSystem(cfg, func(kind activationKind, _ int) {
		switch kind {
		case actSender:
			rep.SenderRuns++
			if pending {
				rep.Deletions++ // overwrote an unread symbol
			}
			pending = true
		case actReceiver:
			rep.ReceiverRuns++
			if pending {
				rep.Transmissions++
				pending = false
			} else {
				rep.Insertions++ // re-read a stale symbol
			}
		default:
			rep.BystanderRuns++
		}
	})
	if err := sys.run(); err != nil {
		return Report{}, err
	}
	return rep, nil
}
