package capserver

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// Latency histograms bin log10(milliseconds) over [10µs, 100s] — 0.1
// decade per bin — so one fixed-size histogram resolves both
// microsecond cache hits and multi-second cold computations.
const (
	latencyLogMin  = -2.0 // log10(ms): 10µs
	latencyLogMax  = 5.0  // log10(ms): 100s
	latencyLogBins = 70
)

// Metrics aggregates the serving core's observability: request and
// status counts, compute executions (the cache-correctness witness:
// deduplicated identical requests bump this once), cache and queue
// events, and per-endpoint latency histograms backed by
// stats.Histogram.
type Metrics struct {
	mu       sync.Mutex
	requests map[string]map[int]int64
	latency  map[string]*stats.Histogram
	computes map[string]int64
	hits     int64
	misses   int64
	shared   int64
	rejected int64
	panics   int64
}

// newMetrics returns an empty metrics set.
func newMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]map[int]int64),
		latency:  make(map[string]*stats.Histogram),
		computes: make(map[string]int64),
	}
}

// observe records one served request.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStatus, ok := m.requests[endpoint]
	if !ok {
		byStatus = make(map[int]int64)
		m.requests[endpoint] = byStatus
	}
	byStatus[status]++
	h, ok := m.latency[endpoint]
	if !ok {
		// The range is static and valid, so the constructor cannot fail.
		h, _ = stats.NewHistogram(latencyLogMin, latencyLogMax, latencyLogBins)
		m.latency[endpoint] = h
	}
	ms := float64(d) / float64(time.Millisecond)
	if ms <= 0 {
		ms = math.SmallestNonzeroFloat64
	}
	h.Add(math.Log10(ms))
}

// computeStart records one underlying computation actually executing
// for the endpoint (cache hits and deduplicated waiters do not count).
func (m *Metrics) computeStart(endpoint string) {
	m.mu.Lock()
	m.computes[endpoint]++
	m.mu.Unlock()
}

// ComputeCalls returns how many computations have executed for the
// endpoint; the singleflight tests assert on it.
func (m *Metrics) ComputeCalls(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.computes[endpoint]
}

// Requests returns how many requests the endpoint has answered with
// the given status.
func (m *Metrics) Requests(endpoint string, status int) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[endpoint][status]
}

func (m *Metrics) cacheHit()      { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *Metrics) cacheMiss()     { m.mu.Lock(); m.misses++; m.mu.Unlock() }
func (m *Metrics) cacheShared()   { m.mu.Lock(); m.shared++; m.mu.Unlock() }
func (m *Metrics) queueRejected() { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *Metrics) computePanic()  { m.mu.Lock(); m.panics++; m.mu.Unlock() }

// CacheHits returns the number of requests served from the LRU cache.
func (m *Metrics) CacheHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits
}

// CacheShared returns the number of requests that joined an in-flight
// identical computation instead of recomputing.
func (m *Metrics) CacheShared() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shared
}

// QueueRejected returns the number of requests rejected with 429.
func (m *Metrics) QueueRejected() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejected
}

// quantileMS approximates the q-th latency quantile in milliseconds
// from the log-binned histogram (upper bin edge, a conservative
// estimate). It returns 0 when the histogram is empty.
func quantileMS(h *stats.Histogram, q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	target := int(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	cum := 0
	counts := h.Counts()
	width := (latencyLogMax - latencyLogMin) / float64(len(counts))
	for i, c := range counts {
		cum += c
		if cum >= target {
			return math.Pow(10, latencyLogMin+float64(i+1)*width)
		}
	}
	return math.Pow(10, latencyLogMax)
}

// write renders the metrics in a flat, Prometheus-style text format
// with deterministic line ordering.
func (m *Metrics) write(w io.Writer, cs CacheStats, queueDepth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for code := range m.requests[ep] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "capserver_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, code, m.requests[ep][code])
		}
	}
	computeEPs := make([]string, 0, len(m.computes))
	for ep := range m.computes {
		computeEPs = append(computeEPs, ep)
	}
	sort.Strings(computeEPs)
	for _, ep := range computeEPs {
		fmt.Fprintf(w, "capserver_compute_total{endpoint=%q} %d\n", ep, m.computes[ep])
	}
	fmt.Fprintf(w, "capserver_compute_panics_total %d\n", m.panics)
	fmt.Fprintf(w, "capserver_cache_hits_total %d\n", m.hits)
	fmt.Fprintf(w, "capserver_cache_misses_total %d\n", m.misses)
	fmt.Fprintf(w, "capserver_cache_shared_total %d\n", m.shared)
	fmt.Fprintf(w, "capserver_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "capserver_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "capserver_cache_inflight %d\n", cs.Inflight)
	fmt.Fprintf(w, "capserver_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "capserver_queue_rejected_total %d\n", m.rejected)
	for _, ep := range endpoints {
		h := m.latency[ep]
		if h == nil {
			continue
		}
		fmt.Fprintf(w, "capserver_latency_ms_count{endpoint=%q} %d\n", ep, h.Total())
		for _, q := range []float64{0.5, 0.9, 0.99} {
			fmt.Fprintf(w, "capserver_latency_ms{endpoint=%q,quantile=\"%g\"} %.4g\n", ep, q, quantileMS(h, q))
		}
	}
}
