package capserver

import (
	"io"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Metrics is the serving core's observability, backed by the shared
// obs.Registry: request and status counts, compute executions (the
// cache-correctness witness: deduplicated identical requests bump this
// once), cache and queue events, and per-endpoint log-bucketed latency
// histograms. Families register in the exposition order the service
// has always used, so /metrics output is byte-identical to the
// pre-registry implementation.
type Metrics struct {
	reg       *obs.Registry
	requests  *obs.CounterVec
	computes  *obs.CounterVec
	panics    *obs.Counter
	abandoned *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	shared    *obs.Counter
	stores    *obs.Counter
	entries   *obs.Gauge
	evicted   *obs.Gauge
	inflight  *obs.Gauge
	depth     *obs.Gauge
	rejected  *obs.Counter
	latency   *obs.LatencyVec
}

// newMetrics registers the service's metric families on reg (a nil reg
// gets a private registry). Registration order is exposition order.
// Beyond the serving-core families, every server also exposes the
// Prometheus-convention build-info constant (value pinned to 1, the
// payload in the labels) and the process_ runtime self-metrics; the
// latter sample live runtime state at scrape time and are the one
// exception to the byte-identical exposition contract, which is why
// they register last and carry a prefix consumers can filter on.
func newMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := newServingMetrics(reg)
	reg.GaugeVec("capserver_build_info", "go_version").With(runtime.Version()).Set(1)
	obs.RegisterRuntimeMetrics(reg, time.Now())
	return m
}

// newServingMetrics registers only the serving-core families.
func newServingMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		reg:       reg,
		requests:  reg.CounterVec("capserver_requests_total", "endpoint", "code"),
		computes:  reg.CounterVec("capserver_compute_total", "endpoint"),
		panics:    reg.Counter("capserver_compute_panics_total"),
		abandoned: reg.Counter("capserver_compute_abandoned_total"),
		hits:      reg.Counter("capserver_cache_hits_total"),
		misses:    reg.Counter("capserver_cache_misses_total"),
		shared:    reg.Counter("capserver_cache_shared_total"),
		stores:    reg.Counter("capserver_store_hits_total"),
		entries:   reg.Gauge("capserver_cache_entries"),
		evicted:   reg.Gauge("capserver_cache_evictions_total"),
		inflight:  reg.Gauge("capserver_cache_inflight"),
		depth:     reg.Gauge("capserver_queue_depth"),
		rejected:  reg.Counter("capserver_queue_rejected_total"),
		latency:   reg.LatencyVec("capserver_latency_ms", "endpoint"),
	}
}

// Registry returns the backing registry, so an embedding process can
// expose the service's metrics alongside its own.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// observe records one served request.
func (m *Metrics) observe(endpoint string, status int, d time.Duration) {
	m.requests.With(endpoint, strconv.Itoa(status)).Inc()
	m.latency.Observe(endpoint, d)
}

// computeStart records one underlying computation actually executing
// for the endpoint (cache hits and deduplicated waiters do not count).
func (m *Metrics) computeStart(endpoint string) { m.computes.With(endpoint).Inc() }

// ComputeCalls returns how many computations have executed for the
// endpoint; the singleflight tests assert on it.
func (m *Metrics) ComputeCalls(endpoint string) int64 { return m.computes.Value(endpoint) }

// Requests returns how many requests the endpoint has answered with
// the given status.
func (m *Metrics) Requests(endpoint string, status int) int64 {
	return m.requests.Value(endpoint, strconv.Itoa(status))
}

func (m *Metrics) cacheHit()         { m.hits.Inc() }
func (m *Metrics) cacheMiss()        { m.misses.Inc() }
func (m *Metrics) cacheShared()      { m.shared.Inc() }
func (m *Metrics) storeHit()         { m.stores.Inc() }
func (m *Metrics) queueRejected()    { m.rejected.Inc() }
func (m *Metrics) computePanic()     { m.panics.Inc() }
func (m *Metrics) computeAbandoned() { m.abandoned.Inc() }

// CacheHits returns the number of requests served from the LRU cache.
func (m *Metrics) CacheHits() int64 { return m.hits.Value() }

// CacheShared returns the number of requests that joined an in-flight
// identical computation instead of recomputing.
func (m *Metrics) CacheShared() int64 { return m.shared.Value() }

// StoreHits returns the number of LRU misses resolved from the
// durable result store instead of recomputing.
func (m *Metrics) StoreHits() int64 { return m.stores.Value() }

// Abandoned returns the number of queued computations skipped because
// every waiting request went away first.
func (m *Metrics) Abandoned() int64 { return m.abandoned.Value() }

// QueueRejected returns the number of requests rejected with 429.
func (m *Metrics) QueueRejected() int64 { return m.rejected.Value() }

// sync copies the cache and queue state into their gauges. Both the
// exposition and the health engine's registry snapshot want current
// values, so the sampling is shared between them.
func (m *Metrics) sync(cs CacheStats, queueDepth int) {
	m.entries.Set(int64(cs.Entries))
	m.evicted.Set(cs.Evictions)
	m.inflight.Set(int64(cs.Inflight))
	m.depth.Set(int64(queueDepth))
}

// write syncs the gauges, then renders the whole registry in the
// deterministic Prometheus text format.
func (m *Metrics) write(w io.Writer, cs CacheStats, queueDepth int) {
	m.sync(cs, queueDepth)
	m.reg.WriteProm(w)
}
